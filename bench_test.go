// Package repro's root benchmark suite regenerates every table and figure
// of the paper's evaluation (one benchmark per exhibit — see DESIGN.md's
// experiment index), and adds ablation benchmarks for the design choices
// the relaxation search makes, plus micro-benchmarks of the hot paths.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate one exhibit:
//
//	go test -bench=BenchmarkFigure8 -benchtime=1x -v
package repro

import (
	"os"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/sqlx"
	"repro/internal/workloads"
)

func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Workloads = 2
	cfg.QueriesPerWorkload = 6
	cfg.MaxIterations = 40
	cfg.PTTTimeBudget = 10 * time.Second
	return cfg
}

func verbose() bool { return testing.Verbose() }

// --- one benchmark per paper exhibit ---

func BenchmarkTable1Requests(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && verbose() {
			experiments.RenderTable1(os.Stdout, rows)
		}
	}
}

func BenchmarkTable2Inventory(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2(cfg)
		if i == 0 && verbose() {
			experiments.RenderTable2(os.Stdout, rows)
		}
	}
}

func BenchmarkTable3TuningTime(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && verbose() {
			experiments.RenderTable3(os.Stdout, rows)
		}
	}
}

func BenchmarkFigure3Convergence(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && verbose() {
			experiments.RenderFigure3(os.Stdout, res)
		}
	}
}

func BenchmarkFigure4Frontier(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && verbose() {
			experiments.RenderFigure4(os.Stdout, res)
		}
	}
}

func BenchmarkFigure6Transformations(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		census, err := experiments.Figure6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && verbose() {
			experiments.RenderFigure6(os.Stdout, census)
		}
	}
}

func BenchmarkFigure8NoConstraints(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && verbose() {
			experiments.RenderDeltaRows(os.Stdout, "Figure 8 (bench run)", rows)
		}
	}
}

func BenchmarkFigure9Updates(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && verbose() {
			experiments.RenderDeltaRows(os.Stdout, "Figure 9 (bench run)", rows)
		}
	}
}

func BenchmarkFigure10SpaceSweep(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	cfg.MaxIterations = 30
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && verbose() {
			experiments.RenderFigure10(os.Stdout, rows)
		}
	}
}

// --- ablation benchmarks: the DESIGN.md design-choice list ---

func tunedCost(b *testing.B, opts core.Options) float64 {
	db := datagen.TPCH(0.001)
	w, err := workloads.TPCH22()
	if err != nil {
		b.Fatal(err)
	}
	tn, err := core.NewTuner(db, w, opts)
	if err != nil {
		b.Fatal(err)
	}
	res, err := tn.Tune()
	if err != nil {
		b.Fatal(err)
	}
	return res.Best.Cost
}

func benchAblation(b *testing.B, opts core.Options) {
	b.ReportAllocs()
	// Derive a consistent budget once.
	db := datagen.TPCH(0.001)
	w, _ := workloads.TPCH22()
	probe, err := core.NewTuner(db, w, core.Options{NoViews: true})
	if err != nil {
		b.Fatal(err)
	}
	optCfg, err := probe.OptimalConfiguration()
	if err != nil {
		b.Fatal(err)
	}
	opts.NoViews = true
	opts.MaxIterations = 40
	opts.SpaceBudget = probe.Opt.Sizer().ConfigBytes(optCfg) / 3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cost := tunedCost(b, opts)
		if i == 0 {
			b.ReportMetric(cost, "finalcost")
		}
	}
}

func BenchmarkAblationPaperHeuristics(b *testing.B) { benchAblation(b, core.Options{}) }
func BenchmarkAblationPlainPenalty(b *testing.B)    { benchAblation(b, core.Options{PlainPenalty: true}) }
func BenchmarkAblationNoChainCorrection(b *testing.B) {
	benchAblation(b, core.Options{DisableChainCorrection: true})
}
func BenchmarkAblationNoShortcut(b *testing.B) {
	benchAblation(b, core.Options{DisableShortcut: true})
}
func BenchmarkAblationFullReoptimize(b *testing.B) {
	benchAblation(b, core.Options{FullReoptimize: true})
}

// --- observability overhead guard ---
//
// Tracing must be effectively free when disabled (nil Options.Trace
// costs one pointer check per emission site; measured well under the
// 5% budget) and cheap when enabled. Compare:
//
//	go test -bench='BenchmarkTune(TracingOff|TracingOn)' -benchtime=5x

func benchTuneTracing(b *testing.B, trace bool) {
	b.ReportAllocs()
	db := datagen.TPCH(0.001)
	w, err := workloads.TPCH22()
	if err != nil {
		b.Fatal(err)
	}
	probe, err := core.NewTuner(db, w, core.Options{NoViews: true})
	if err != nil {
		b.Fatal(err)
	}
	optCfg, err := probe.OptimalConfiguration()
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{
		NoViews:       true,
		MaxIterations: 40,
		SpaceBudget:   probe.Opt.Sizer().ConfigBytes(optCfg) / 3,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if trace {
			opts.Trace = obs.NewTracer(obs.NewMemorySink())
		}
		tn, err := core.NewTuner(db, w, opts)
		if err != nil {
			b.Fatal(err)
		}
		res, err := tn.Tune()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Iterations), "iterations")
		}
	}
}

func BenchmarkTuneTracingOff(b *testing.B) { benchTuneTracing(b, false) }
func BenchmarkTuneTracingOn(b *testing.B)  { benchTuneTracing(b, true) }

// --- micro-benchmarks of the hot paths ---

func BenchmarkOptimizeSingleTable(b *testing.B) {
	b.ReportAllocs()
	db := datagen.TPCH(0.01)
	o := optimizer.New(db)
	cfg := datagen.BaseConfiguration(db)
	stmt, err := sqlx.Parse("SELECT l_shipmode, SUM(l_extendedprice) FROM lineitem WHERE l_shipdate > 9131 GROUP BY l_shipmode")
	if err != nil {
		b.Fatal(err)
	}
	q, err := optimizer.Bind(db, stmt)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Optimize(q, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeSixWayJoin(b *testing.B) {
	b.ReportAllocs()
	db := datagen.TPCH(0.01)
	o := optimizer.New(db)
	cfg := datagen.BaseConfiguration(db)
	src := workloads.TPCH22SQL()[4] // Q5: six tables
	stmt, err := sqlx.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	q, err := optimizer.Bind(db, stmt)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Optimize(q, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnumerateTransformations(b *testing.B) {
	b.ReportAllocs()
	db := datagen.TPCH(0.001)
	w, _ := workloads.TPCH22()
	tn, err := core.NewTuner(db, w, core.Options{NoViews: true})
	if err != nil {
		b.Fatal(err)
	}
	optCfg, err := tn.OptimalConfiguration()
	if err != nil {
		b.Fatal(err)
	}
	opts := physical.EnumerateOptions{NoViews: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trs := physical.Enumerate(optCfg, opts)
		if len(trs) == 0 {
			b.Fatal("no transformations")
		}
	}
}

func BenchmarkBoundDelta(b *testing.B) {
	b.ReportAllocs()
	db := datagen.TPCH(0.001)
	w, _ := workloads.TPCH22()
	tn, err := core.NewTuner(db, w, core.Options{NoViews: true})
	if err != nil {
		b.Fatal(err)
	}
	optCfg, err := tn.OptimalConfiguration()
	if err != nil {
		b.Fatal(err)
	}
	ec, err := tn.Evaluate(optCfg)
	if err != nil {
		b.Fatal(err)
	}
	trs := physical.Enumerate(optCfg, physical.EnumerateOptions{NoViews: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tn.BoundDelta(ec, trs[i%len(trs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseTPCHQuery(b *testing.B) {
	b.ReportAllocs()
	src := workloads.TPCH22SQL()[7]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqlx.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineBottomUp(b *testing.B) {
	b.ReportAllocs()
	db := datagen.TPCH(0.001)
	w, _ := workloads.TPCH22()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn, err := core.NewTuner(db, w, core.Options{NoViews: true})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := baseline.Tune(tn, baseline.Options{NoViews: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidateEstimates(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Validate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && verbose() {
			experiments.RenderValidate(os.Stdout, rows)
		}
	}
}

func BenchmarkExecuteTPCHQuery(b *testing.B) {
	b.ReportAllocs()
	db, store := datagen.TPCHData(0.001)
	stmt, err := sqlx.Parse(workloads.TPCH22SQL()[2]) // Q3: 3-way join + group
	if err != nil {
		b.Fatal(err)
	}
	q, err := optimizer.Bind(db, stmt)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := exec.ExecuteQuery(store, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaterializeTPCH(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db, store := datagen.TPCHData(0.001)
		if db == nil || store.Get("lineitem") == nil {
			b.Fatal("materialization failed")
		}
	}
}

func BenchmarkOptimalConfiguration(b *testing.B) {
	b.ReportAllocs()
	db := datagen.TPCH(0.001)
	w, _ := workloads.TPCH22()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn, err := core.NewTuner(db, w, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tn.OptimalConfiguration(); err != nil {
			b.Fatal(err)
		}
	}
}

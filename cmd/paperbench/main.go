// Command paperbench regenerates the paper's evaluation: every table and
// figure of §4 plus the in-text result figures (3, 4, and 6).
//
// Usage:
//
//	paperbench -exp all
//	paperbench -exp table1
//	paperbench -exp fig8 -workloads 8 -queries 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: table1, table2, table3, fig3, fig4, fig6, fig8, fig9, fig10, validate, or all")
		sf        = flag.Float64("sf", 0.001, "database scale factor")
		nwl       = flag.Int("workloads", 4, "generated workloads per database family")
		queries   = flag.Int("queries", 8, "queries per generated workload")
		iters     = flag.Int("iters", 60, "relaxation iterations per tuning run")
		pttBudget = flag.Duration("ptt-time", 0, "PTT time budget for the update sweep (0 = default)")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.SF = *sf
	cfg.Workloads = *nwl
	cfg.QueriesPerWorkload = *queries
	cfg.MaxIterations = *iters
	cfg.PTTTimeBudget = *pttBudget

	wanted := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		wanted[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := wanted["all"]
	run := func(name string) bool { return all || wanted[name] }
	out := os.Stdout

	if run("table1") {
		step("Table 1")
		rows, err := experiments.Table1(cfg)
		check(err)
		experiments.RenderTable1(out, rows)
		fmt.Fprintln(out)
	}
	if run("table2") {
		step("Table 2")
		experiments.RenderTable2(out, experiments.Table2(cfg))
		fmt.Fprintln(out)
	}
	if run("table3") {
		step("Table 3")
		rows, err := experiments.Table3(cfg)
		check(err)
		experiments.RenderTable3(out, rows)
		fmt.Fprintln(out)
	}
	if run("fig3") {
		step("Figure 3")
		res, err := experiments.Figure3(cfg)
		check(err)
		experiments.RenderFigure3(out, res)
		fmt.Fprintln(out)
	}
	if run("fig4") {
		step("Figure 4")
		res, err := experiments.Figure4(cfg)
		check(err)
		experiments.RenderFigure4(out, res)
		fmt.Fprintln(out)
	}
	if run("fig6") {
		step("Figure 6")
		census, err := experiments.Figure6(cfg)
		check(err)
		experiments.RenderFigure6(out, census)
		fmt.Fprintln(out)
	}
	if run("fig8") {
		step("Figure 8")
		rows, err := experiments.Figure8(cfg)
		check(err)
		experiments.RenderDeltaRows(out, "Figure 8: ΔImprovement (PTT − CTT), SELECT-only, no constraints", rows)
		fmt.Fprintln(out)
	}
	if run("fig9") {
		step("Figure 9")
		rows, err := experiments.Figure9(cfg)
		check(err)
		experiments.RenderDeltaRows(out, "Figure 9: ΔImprovement (PTT − CTT), UPDATE workloads, PTT time-budgeted", rows)
		fmt.Fprintln(out)
	}
	if run("fig10") {
		step("Figure 10")
		rows, err := experiments.Figure10(cfg)
		check(err)
		experiments.RenderFigure10(out, rows)
		fmt.Fprintln(out)
	}
	if run("validate") {
		step("Validation")
		rows, err := experiments.Validate(cfg)
		check(err)
		experiments.RenderValidate(out, rows)
		fmt.Fprintln(out)
	}
}

var stepStart = time.Now()

func step(name string) {
	fmt.Fprintf(os.Stderr, "[paperbench] %s (t=%s)\n", name, time.Since(stepStart).Round(time.Millisecond))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

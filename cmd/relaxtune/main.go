// Command relaxtune tunes the physical design of one of the built-in
// databases for a workload, using the relaxation-based algorithm (and
// optionally the bottom-up baseline for comparison).
//
// Usage:
//
//	relaxtune -db tpch -workload tpch22 -budget 64 -views=false
//	relaxtune -db ds1 -workload /path/to/workload.sql -budget 128
//	relaxtune -db bench -gen 12 -updates 0.3 -budget 32 -baseline
//	relaxtune -db tpch -budget 8 -progress -frontier frontier.csv
//	relaxtune -db tpch -workload tpch22 -budget 16 -workload-report
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/plan"
	"repro/tuner"
)

func main() {
	var (
		dbName   = flag.String("db", "tpch", "database: tpch, ds1, or bench")
		sf       = flag.Float64("sf", 0.001, "database scale factor")
		workload = flag.String("workload", "tpch22", "workload: 'tpch22', a .sql file path, or '' with -gen")
		gen      = flag.Int("gen", 0, "generate a random workload with this many statements")
		updates  = flag.Float64("updates", 0, "fraction of generated statements that modify data")
		seed     = flag.Int64("seed", 42, "workload generation seed")
		budgetMB = flag.Int64("budget", 0, "storage budget in MB (0 = unconstrained)")
		views    = flag.Bool("views", true, "consider materialized views")
		iters    = flag.Int("iters", 120, "maximum relaxation iterations")
		timeout  = flag.Duration("time", 0, "tuning time budget (0 = unbounded)")
		baseline = flag.Bool("baseline", false, "also run the bottom-up baseline advisor")
		frontier = flag.String("frontier", "", "write the space/cost frontier trajectory as CSV to this path ('-' = stdout)")
		progress = flag.Bool("progress", false, "render a live progress line (iteration, space, cost, budget gap) to stderr while tuning")
		jsonOut  = flag.String("json", "", "write a JSON tuning report to this path")
		whatIf   = flag.String("whatif", "", "skip tuning; evaluate the CREATE INDEX/VIEW script at this path")
		explain  = flag.Bool("explain", false, "print the per-structure decision log (why each index/view was kept, merged, or dropped)")
		plans    = flag.Bool("plans", false, "print each query's plan under the recommended configuration")
		traceOut = flag.String("trace", "", "write search trace events (JSONL) to this path")
		profile  = flag.Bool("profile", false, "print the per-phase performance profile (p50/p95/p99 wall time, allocations) after tuning")
		parallel = flag.Int("parallel", 0, "evaluation-engine workers (0 = all cores, 1 = exact serial algorithm)")
		replay   = flag.Bool("replay", false, "after tuning, materialize the database at -sf, execute the workload under baseline and recommended configurations, and score the cost model against measured reality")
		workRep  = flag.Bool("workload-report", false, "print the workload grouped by statement signature: weight/cost shares and the structures each signature demanded")
	)
	flag.Parse()

	db, err := database(*dbName, *sf)
	if err != nil {
		fatal(err)
	}
	w, err := loadWorkload(db, *workload, *gen, *updates, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("database: %s\nworkload: %s\n\n", db.Summary(), w)

	opts := tuner.Options{
		SpaceBudget:   *budgetMB << 20,
		NoViews:       !*views,
		MaxIterations: *iters,
		TimeBudget:    *timeout,
		Parallelism:   *parallel,
	}

	var trace *tuner.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		trace = tuner.NewTracer(tuner.NewJSONLTraceSink(f))
		opts.Trace = trace
	}

	var prof *tuner.Profiler
	if *profile {
		prof = tuner.NewProfiler()
		opts.Profile = prof
	}

	var progressDone chan struct{}
	if *progress {
		prog := tuner.NewProgress()
		opts.Progress = prog
		progressDone = renderProgress(prog)
	}

	if *whatIf != "" {
		runWhatIf(db, w, opts, *whatIf)
		closeTrace(trace, *traceOut)
		return
	}

	session, err := tuner.NewSession(db, w, opts)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	res, err := session.Tune()
	if err != nil {
		fatal(err) // the renderer goroutine dies with the process
	}
	if progressDone != nil {
		<-progressDone // let the renderer clear its line before printing
	}
	closeTrace(trace, *traceOut)
	printResult(res)
	fmt.Printf("relaxation tuning took %s (%d optimizer calls, %d workers)\n\n", time.Since(start).Round(time.Millisecond), res.OptimizerCalls, res.ParallelWorkers)

	if *frontier != "" {
		if err := writeFrontierCSV(*frontier, res.Frontier); err != nil {
			fatal(err)
		}
		if *frontier != "-" {
			fmt.Printf("wrote frontier trajectory to %s (%d points)\n\n", *frontier, len(res.Frontier))
		}
	}

	if prof != nil {
		rep := prof.Snapshot()
		rep.WallSeconds = res.Elapsed.Seconds()
		fmt.Println("phase profile:")
		rep.WriteText(os.Stdout)
		if cal := res.Explain.Calibration; cal != nil {
			fmt.Println("\ncost-model calibration (realized ΔT / estimated §3.3.2 bound):")
			cal.WriteText(os.Stdout)
		}
		fmt.Println()
	}

	if *replay {
		if err := runReplay(*dbName, *sf, w, res); err != nil {
			fatal(err)
		}
	}

	if *workRep {
		printWorkloadReport(w, res)
	}

	if *explain && res.Explain != nil {
		fmt.Println("decision log (why each structure ended up this way):")
		res.Explain.WriteText(os.Stdout)
		fmt.Println()
	}
	if *plans {
		printPlans(res)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		if err := session.BuildReport(w.Name, res).WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote JSON report to %s\n", *jsonOut)
	}

	if *baseline {
		bres, err := tuner.TuneBottomUp(db, w, tuner.BaselineOptions{
			SpaceBudget: *budgetMB << 20,
			NoViews:     !*views,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("bottom-up baseline: cost %.1f -> %.1f (improvement %.1f%%), %d candidates, took %s\n",
			bres.Initial.Cost, bres.Best.Cost, bres.ImprovementPct(), bres.Candidates, bres.Elapsed.Round(time.Millisecond))
	}
}

func database(name string, sf float64) (*tuner.Database, error) {
	switch strings.ToLower(name) {
	case "tpch":
		return tuner.TPCH(sf), nil
	case "ds1":
		return tuner.DS1(sf), nil
	case "bench":
		return tuner.Bench(sf), nil
	default:
		return nil, fmt.Errorf("unknown database %q (want tpch, ds1, or bench)", name)
	}
}

// databaseData is database with materialized rows, for -replay.
func databaseData(name string, sf float64) (*tuner.Database, *tuner.ExecStore, error) {
	switch strings.ToLower(name) {
	case "tpch":
		db, store := tuner.TPCHData(sf)
		return db, store, nil
	case "ds1":
		db, store := tuner.DS1Data(sf)
		return db, store, nil
	case "bench":
		db, store := tuner.BenchData(sf)
		return db, store, nil
	default:
		return nil, nil, fmt.Errorf("unknown database %q (want tpch, ds1, or bench)", name)
	}
}

// runReplay materializes the database with row data, executes the
// workload under the tuning result's baseline, sampled lineage, and
// recommended configurations, and prints the execution-grounded
// calibration report.
func runReplay(dbName string, sf float64, w *tuner.Workload, res *tuner.Result) error {
	rdb, store, err := databaseData(dbName, sf)
	if err != nil {
		return err
	}
	fmt.Printf("replaying workload against materialized %s ...\n", rdb.Summary())
	gt, err := tuner.Replay(rdb, store, w.Queries, res, tuner.ReplayOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d statements x %d configs x %d reps in %s (%d updates skipped)\n\n",
		gt.Statements, len(gt.Configs), gt.Repetitions,
		time.Duration(gt.DurationNanos).Round(time.Millisecond), gt.SkippedUpdates)
	fmt.Printf("%-16s %12s %14s %12s %10s\n", "config", "est cost", "measured", "rows scanned", "size MB")
	for _, c := range gt.Configs {
		fmt.Printf("%-16s %12.1f %14s %12d %10.2f\n", c.Label, c.EstCost,
			time.Duration(c.MeasuredNanos).Round(time.Microsecond), c.RowsScanned,
			float64(c.StructureBytes)/(1<<20))
	}
	fmt.Println()
	fmt.Println("cost-model calibration (execution-grounded):")
	cal := tuner.CalibrateGrounded(res.CalibSamples, res.Economy, gt)
	cal.WriteText(os.Stdout)
	fmt.Println()
	return nil
}

func loadWorkload(db *tuner.Database, spec string, gen int, updates float64, seed int64) (*tuner.Workload, error) {
	if gen > 0 {
		opts := tuner.GenOptions{
			Seed: seed, NumQueries: gen, MaxJoins: 4,
			UpdateFraction: updates, GroupByProb: 0.45, OrderByProb: 0.35,
			Name: "generated",
		}
		return tuner.GenerateWorkload(db, opts)
	}
	if spec == "tpch22" {
		if db.Name != "tpch" {
			return nil, fmt.Errorf("the tpch22 workload requires -db tpch")
		}
		return tuner.TPCH22Workload()
	}
	data, err := os.ReadFile(spec)
	if err != nil {
		return nil, fmt.Errorf("reading workload file: %w", err)
	}
	return tuner.ParseWorkload(spec, db.Name, string(data))
}

func printResult(res *tuner.Result) {
	fmt.Printf("initial configuration: cost %.1f, size %.1f MB\n",
		res.Initial.Cost, float64(res.Initial.SizeBytes)/(1<<20))
	fmt.Printf("optimal configuration: cost %.1f, size %.1f MB (unconstrained bound)\n",
		res.Optimal.Cost, float64(res.Optimal.SizeBytes)/(1<<20))
	fmt.Printf("recommendation:        cost %.1f, size %.1f MB (improvement %.1f%%)\n\n",
		res.Best.Cost, float64(res.Best.SizeBytes)/(1<<20), res.ImprovementPct())

	fmt.Println("recommended structures:")
	for _, v := range res.Best.Config.Views() {
		fmt.Printf("  VIEW  %s := %s\n", v.Name, v.SQL())
	}
	for _, ix := range res.Best.Config.Indexes() {
		req := ""
		if ix.Required {
			req = "  (required)"
		}
		fmt.Printf("  INDEX %s%s\n", ix.ID(), req)
	}
	fmt.Println()
	if migration := tuner.MigrationDDL(res.Initial.Config, res.Best.Config); migration != "" {
		fmt.Println("migration script (current design -> recommendation):")
		for _, line := range strings.Split(strings.TrimSpace(migration), "\n") {
			fmt.Println("  " + line)
		}
		fmt.Println()
	}
}

// writeFrontierCSV dumps the search trajectory — the paper's
// cost-vs-storage curve — as CSV, ready for plotting ("-" = stdout).
func writeFrontierCSV(path string, frontier []tuner.FrontierPoint) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	w := csv.NewWriter(out)
	if err := w.Write([]string{"iteration", "size_bytes", "cost", "fits", "transformation", "penalty"}); err != nil {
		return err
	}
	for _, p := range frontier {
		rec := []string{
			strconv.Itoa(p.Iteration),
			strconv.FormatInt(p.SizeBytes, 10),
			strconv.FormatFloat(p.Cost, 'g', -1, 64),
			strconv.FormatBool(p.Fits),
			p.Transformation,
			strconv.FormatFloat(p.Penalty, 'g', -1, 64),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// renderProgress consumes a live progress stream and keeps one status
// line current on stderr. The returned channel closes once the stream
// ends (the session is done), after clearing the line.
func renderProgress(prog *tuner.Progress) chan struct{} {
	sub := prog.Subscribe(64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		wrote := false
		for ev := range sub.C {
			line := fmt.Sprintf("\r[%s] iter %3d  space %8.2f MB  cost %10.1f",
				ev.Phase, ev.Iteration, float64(ev.SizeBytes)/(1<<20), ev.Cost)
			if ev.BudgetBytes > 0 {
				line += fmt.Sprintf("  gap %+7.2f MB", float64(ev.BudgetGapBytes)/(1<<20))
			}
			if ev.Transformation != "" {
				line += "  " + ev.Transformation
			}
			if len(line) < 100 {
				line += strings.Repeat(" ", 100-len(line)) // clear leftovers
			}
			fmt.Fprint(os.Stderr, line)
			wrote = true
			if ev.Done {
				break
			}
		}
		if wrote {
			fmt.Fprint(os.Stderr, "\r"+strings.Repeat(" ", 100)+"\r")
		}
		sub.Close()
	}()
	return done
}

// runWhatIf evaluates a user-supplied configuration script instead of
// tuning.
func runWhatIf(db *tuner.Database, w *tuner.Workload, opts tuner.Options, path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	session, err := tuner.NewSession(db, w, opts)
	if err != nil {
		fatal(err)
	}
	cfg, err := session.ParseConfigurationScript(string(data))
	if err != nil {
		fatal(err)
	}
	res, err := session.WhatIf(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("what-if configuration: %d indexes, %d views, %.1f MB\n",
		cfg.NumIndexes(), cfg.NumViews(), float64(res.Target.SizeBytes)/(1<<20))
	fmt.Printf("workload cost: %.1f -> %.1f (improvement %.1f%%)\n\n",
		res.Base.Cost, res.Target.Cost, res.ImprovementPct)
	fmt.Printf("%-14s %12s %12s %9s\n", "query", "base", "what-if", "impr")
	for _, d := range res.PerQuery {
		fmt.Printf("%-14s %12.1f %12.1f %8.1f%%\n", d.ID, d.BaseCost, d.TargetCost, d.ImprovementPct())
	}
}

// printWorkloadReport renders the workload grouped by canonical
// (S,N,O,A) statement signature: each group's weight share, the share of
// the recommended configuration's cost it carries, and the structures
// its plans demanded in the winning configuration.
func printWorkloadReport(w *tuner.Workload, res *tuner.Result) {
	costs := make([]float64, len(w.Queries))
	for i := range w.Queries {
		if i < len(res.Best.Results) {
			costs[i] = res.Best.Results[i].TotalCost()
		}
	}
	demanded := map[string][]string{}
	if res.Explain != nil {
		final := map[string]bool{}
		for _, ix := range res.Best.Config.Indexes() {
			final[ix.ID()] = true
		}
		for _, v := range res.Best.Config.Views() {
			final[v.Name] = true
		}
		for _, sd := range res.Explain.Structures {
			if !final[sd.ID] {
				continue
			}
			for _, qid := range sd.DemandedBy {
				demanded[qid] = append(demanded[qid], sd.ID)
			}
		}
	}
	groups := tuner.AttributeSignatures(w, costs, demanded)
	fmt.Printf("workload by signature (%d groups over %d statements):\n", len(groups), len(w.Queries))
	fmt.Printf("%-7s %-7s %-7s %-5s %s\n", "weight%", "cost%", "stmts", "upd", "signature")
	for _, g := range groups {
		fmt.Printf("%6.1f%% %6.1f%% %-7d %-5d %s\n",
			100*g.WeightShare, 100*g.CostShare, g.Statements, g.Updates, g.Signature)
		if len(g.Structures) > 0 {
			fmt.Printf("        demands %s\n", strings.Join(g.Structures, ", "))
		}
	}
	fmt.Println()
}

// printPlans renders each query's plan under the best configuration.
func printPlans(res *tuner.Result) {
	fmt.Println("plans under the recommended configuration:")
	for i, r := range res.Best.Results {
		if r.Plan == nil {
			continue
		}
		fmt.Printf("-- query %d (cost %.2f):\n%s\n", i+1, r.TotalCost(), plan.Format(r.Plan.Root))
	}
}

// closeTrace flushes the JSONL trace file, if tracing was requested.
func closeTrace(trace *tuner.Tracer, path string) {
	if trace == nil {
		return
	}
	if err := trace.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote search trace to %s\n\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "relaxtune:", err)
	os.Exit(1)
}

// Command tunerbench runs the tuner's standardized regression
// scenarios (batch TPC-H-style, an update mix, an online drift replay)
// and emits a schema-versioned BENCH_tuner.json: wall time, heap
// allocations, optimizer calls, recommendation quality against the
// unconstrained optimum, and the §3.3.2 calibration score.
//
// With -baseline it gates the run against a committed record and exits
// non-zero on any tolerance violation:
//
//	tunerbench -smoke -out BENCH_tuner.json
//	tunerbench -smoke -baseline BENCH_tuner.json -out BENCH_tuner.ci.json -wall-tolerance 4
//
// Deterministic metrics (optimizer calls, iterations, improvement) are
// gated tightly; wall time and allocations take CLI-tunable factors so
// CI hardware variance doesn't flap the gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/regress"
)

func main() {
	var (
		smoke    = flag.Bool("smoke", false, "run the quick smoke suite (the default and currently only suite)")
		sf       = flag.Float64("sf", 0, "override the database scale factor (0 = suite default)")
		seed     = flag.Int64("seed", 0, "override the workload generation seed (0 = suite default)")
		iters    = flag.Int("iters", 0, "override max relaxation iterations per session (0 = suite default)")
		parallel = flag.Int("parallel", 0, "workers for the parallel-speedup scenario's parallel leg (0 = all cores)")
		out      = flag.String("out", "BENCH_tuner.json", "write the benchmark record to this path ('' = stdout only)")
		baseline = flag.String("baseline", "", "gate the run against this committed record (exit 1 on violations)")
		quiet    = flag.Bool("q", false, "suppress per-scenario progress lines")

		wallTol     = flag.Float64("wall-tolerance", 0, "max wall-time factor vs baseline (0 = default 1.5)")
		allocTol    = flag.Float64("alloc-tolerance", 0, "max allocation factor vs baseline (0 = default 1.10)")
		callsTol    = flag.Float64("calls-tolerance", 0, "max optimizer-call factor vs baseline (0 = default 1.05)")
		qualityTol  = flag.Float64("quality-tolerance", 0, "allowed quality drop in percentage points (0 = default 0.5)")
		coverageMin = flag.Float64("coverage-floor", 0, "minimum profile coverage percent (0 = default 80)")
	)
	flag.Parse()
	_ = *smoke // one suite today; the flag names the intent in CI invocations

	cfg := regress.DefaultConfig()
	if *sf > 0 {
		cfg.SF = *sf
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *iters > 0 {
		cfg.MaxIterations = *iters
	}
	if *parallel > 0 {
		cfg.Parallelism = *parallel
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}

	start := time.Now()
	bench, err := regress.RunSuite(cfg)
	if err != nil {
		fatal(err)
	}
	bench.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	if !*quiet {
		fmt.Printf("suite done in %s\n", time.Since(start).Round(time.Millisecond))
	}

	if *out != "" {
		if err := regress.WriteFile(*out, bench); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	} else if err := bench.WriteJSON(os.Stdout); err != nil {
		fatal(err)
	}

	if *baseline == "" {
		return
	}
	base, err := regress.ReadFile(*baseline)
	if err != nil {
		fatal(fmt.Errorf("loading baseline: %w", err))
	}
	tol := regress.Tolerance{
		WallFactor:       *wallTol,
		AllocFactor:      *allocTol,
		CallsFactor:      *callsTol,
		QualityPoints:    *qualityTol,
		CoverageFloorPct: *coverageMin,
	}
	violations := regress.Gate(base, bench, tol)
	regress.FormatViolations(os.Stdout, violations)
	if len(violations) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tunerbench:", err)
	os.Exit(1)
}

// Command tunerd runs the online tuning service as an HTTP/JSON daemon:
// clients stream observed SQL statements at it, the service keeps a
// compressed sliding window of the workload, detects drift, and retunes
// incrementally — warm-starting from the previous recommendation so
// repeat statements cost zero extra optimizer calls.
//
// Usage:
//
//	tunerd -db tpch -sf 0.01 -budget 64 -addr :8347
//
// Endpoints:
//
//	POST /ingest          {"statements": ["SELECT ...", ...]}
//	GET  /recommendation  current physical design advice
//	GET  /explain         per-structure decision log of the last retune
//	GET  /profile         per-phase performance profile across retunes
//	POST /retune          tune the current window now (optional body
//	                      {"budget_mb": N} overrides the budget once)
//	GET  /progress        live per-iteration search events (SSE;
//	                      ?timeout=30s / ?max=N bound the stream)
//	GET  /workload        workload introspection: the window grouped by
//	                      statement signature with weight/cost shares,
//	                      demanded structures, sketch state, and the
//	                      latest drift movers (?format=text for a table)
//	GET  /sessions        flight-recorder session history
//	GET  /sessions/{id}   one recorded session in full
//	GET  /diff            structural delta between two sessions
//	                      (?from=&to=; defaults to the two most recent)
//	GET  /drift           assess workload drift
//	GET  /calibration     cost-model calibration of the last retune
//	                      (?ground_truth=1 runs an execution-backed
//	                      replay first; requires -replay)
//	GET  /metrics         activity counters (JSON; Prometheus text with
//	                      Accept: text/plain or ?format=prometheus)
//	GET  /metrics/history windowed metric time series sampled every
//	                      -history-interval (?series=a,b&points=N&since=5m)
//	GET  /alerts          SLO alert engine state: rules, firing/pending
//	                      instances, recent transitions (?format=text)
//	GET  /healthz         liveness (shared single-tenant/fleet shape)
//	GET  /readyz          readiness: 503 + Retry-After until the first
//	                      retune completes
//
// Quickstart:
//
//	curl -s -XPOST localhost:8347/ingest -d '{"statements": ["SELECT o_orderpriority, COUNT(*) FROM orders WHERE o_orderdate >= 9131 GROUP BY o_orderpriority"]}'
//	curl -s -XPOST localhost:8347/retune
//	curl -s localhost:8347/recommendation
//	curl -sN 'localhost:8347/progress?timeout=30s' &
//	curl -s localhost:8347/sessions
//	curl -s 'localhost:8347/diff?from=s-000001&to=s-000002'
//	curl -s -H 'Accept: text/plain' localhost:8347/metrics
//
// Fleet mode (-fleet) turns the daemon multi-tenant: tenants register at
// runtime and each gets the full API above scoped under its own prefix,
// while retunes run on a shared worker pool and per-statement caches are
// shared across tenants with identical catalogs:
//
//	tunerd -fleet -fleet-workers 4 -quota-rate 500
//
//	POST   /tenants                register {"id": "t1", "database": "tpch", ...}
//	GET    /tenants                list tenants with live status
//	GET    /tenants/{id}           one tenant's status
//	DELETE /tenants/{id}           deregister (drains its retune first)
//	ANY    /tenants/{id}/...       the single-tenant API, tenant-scoped
//	                               (ingest is quota-gated: 429 + Retry-After)
//	GET    /fleet                  fleet-wide status snapshot
//	GET    /metrics                fleet counters + per-tenant series with a
//	                               tenant label (Prometheus) or per-tenant
//	                               snapshots (JSON)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/service"
	"repro/internal/workloads"
	"repro/tuner"
)

func main() {
	var (
		addr       = flag.String("addr", ":8347", "listen address")
		debugAddr  = flag.String("debug-addr", "", "listen address for net/http/pprof profiling (empty = off)")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
		tracePath  = flag.String("trace", "", "write search trace events (JSONL) to this file")
		dbName     = flag.String("db", "tpch", "database: tpch, ds1, or bench")
		sf         = flag.Float64("sf", 0.001, "database scale factor")
		budgetMB   = flag.Float64("budget", 0, "storage budget in MB, fractions allowed (0 = unconstrained)")
		views      = flag.Bool("views", true, "consider materialized views")
		iters      = flag.Int("iters", 120, "maximum relaxation iterations per retune")
		tuneTime   = flag.Duration("tune-time", 0, "per-retune time budget (0 = unbounded)")
		windowObs  = flag.Int("window", 4096, "sliding window size in observations")
		maxUnique  = flag.Int("max-unique", 512, "max distinct statements kept in the window")
		halfLife   = flag.Int("half-life", 0, "statement weight half-life in observations (0 = no decay)")
		sketchSize = flag.Int("sketch-size", 0, "top-k signature sketch capacity for GET /workload (0 = default 128, negative = disable)")
		driftEvery = flag.Duration("drift-interval", 30*time.Second, "background drift check interval (0 = off)")
		driftMin   = flag.Int("drift-min", 8, "minimum window statements before drift can trigger")
		driftShape = flag.Float64("drift-shape", 0.5, "shape-histogram L1 distance threshold")
		driftCost  = flag.Float64("drift-cost", 1.25, "cost inflation ratio threshold")
		autoRetune = flag.Bool("auto-retune", true, "retune automatically when drift is detected")
		parallel   = flag.Int("parallel", 0, "evaluation-engine workers per retune (0 = all cores, 1 = exact serial algorithm)")
		replayOn   = flag.Bool("replay", false, "enable execution-backed ground-truth replay (GET /calibration?ground_truth=1); materializes the database at -sf lazily on first use")
		replayEach = flag.Bool("replay-each-retune", false, "run a ground-truth replay after every retune (implies -replay)")

		retuneBuckets = flag.String("retune-buckets", "", "comma-separated tuner_retune_duration_seconds bucket bounds (empty = defaults)")
		phaseBuckets  = flag.String("phase-buckets", "", "comma-separated tuner_phase_duration_seconds bucket bounds (empty = defaults)")

		historyPath  = flag.String("history", "", "persist the session flight recorder to this JSONL file (empty = in-memory only)")
		historyLimit = flag.Int("history-limit", 0, "sessions retained by the flight recorder (0 = default 256)")

		monInterval = flag.Duration("history-interval", 10*time.Second, "self-monitoring sample/evaluation interval for GET /metrics/history and GET /alerts (0 = disable self-monitoring)")
		monWindow   = flag.Duration("history-window", 15*time.Minute, "metric history retained for GET /metrics/history and alert lookbacks")
		alertRules  = flag.String("alert-rules", "", "JSON alert rule file evaluated by the SLO engine (empty = built-in default ruleset)")
		alertLog    = flag.String("alert-log", "", "persist alert transitions to this JSONL file so firings survive restarts (empty = in-memory only)")

		fleetMode    = flag.Bool("fleet", false, "serve a multi-tenant fleet (tenants register via POST /tenants; -db/-sf become per-tenant)")
		fleetWorkers = flag.Int("fleet-workers", 0, "retune worker pool size in fleet mode (0 = half of GOMAXPROCS)")
		quotaRate    = flag.Float64("quota-rate", 0, "default per-tenant ingestion quota in statements/sec (0 = unlimited)")
		quotaBurst   = flag.Int("quota-burst", 0, "default per-tenant ingestion burst (0 = ceil of -quota-rate)")
		costCacheCap = flag.Int("cost-cache-cap", 0, "shared cross-tenant what-if cost cache capacity in fleet mode (0 = default)")
	)
	flag.Parse()

	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fatal := func(msg string, err error) {
		logger.Error(msg, "error", err)
		os.Exit(1)
	}

	var buckets obs.TunerMetricsBuckets
	if buckets.RetuneDuration, err = parseBuckets(*retuneBuckets); err != nil {
		fatal("tunerd: bad -retune-buckets", err)
	}
	if buckets.PhaseDuration, err = parseBuckets(*phaseBuckets); err != nil {
		fatal("tunerd: bad -phase-buckets", err)
	}

	var traceSink obs.Sink
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal("tunerd: creating trace file", err)
		}
		traceSink = obs.NewJSONLSink(f)
		logger.Info("tunerd: tracing retunes", "path", *tracePath)
	}

	// baseOpts is the single-tenant configuration and, in fleet mode,
	// the template every registered tenant starts from.
	baseOpts := service.Options{
		Tuning: core.Options{
			SpaceBudget:   int64(*budgetMB * (1 << 20)),
			NoViews:       !*views,
			MaxIterations: *iters,
			TimeBudget:    *tuneTime,
			Parallelism:   *parallel,
		},
		Window: workloads.WindowOptions{
			MaxObservations: *windowObs,
			MaxUnique:       *maxUnique,
			HalfLife:        *halfLife,
			SketchSize:      *sketchSize,
		},
		Drift: service.DriftOptions{
			MinStatements:  *driftMin,
			ShapeThreshold: *driftShape,
			CostThreshold:  *driftCost,
		},
		DriftCheckInterval: *driftEvery,
		AutoRetune:         *autoRetune,
		Logf: func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		},
		Warnf: func(format string, args ...any) {
			logger.Warn(fmt.Sprintf(format, args...))
		},
		TraceSink:        traceSink,
		MetricsBuckets:   buckets,
		ReplayEachRetune: *replayEach,
		Monitor: service.MonitorOptions{
			HistoryInterval: *monInterval,
			HistoryWindow:   *monWindow,
			AlertLogPath:    *alertLog,
		},
	}
	if *replayEach {
		*replayOn = true
	}
	if *alertRules != "" {
		data, err := os.ReadFile(*alertRules)
		if err != nil {
			fatal("tunerd: reading -alert-rules", err)
		}
		rules, err := obs.ParseAlertRules(data)
		if err != nil {
			fatal("tunerd: bad -alert-rules", err)
		}
		baseOpts.Monitor.Rules = rules
		logger.Info("tunerd: alert rules loaded", "path", *alertRules, "rules", len(rules))
	}

	var (
		handler  http.Handler
		shutdown func() error
	)
	if *fleetMode {
		if *historyPath != "" {
			logger.Warn("tunerd: -history is ignored in fleet mode; tenant histories are in-memory")
		}
		if *alertLog != "" {
			logger.Warn("tunerd: -alert-log is ignored in fleet mode; tenant alert transitions are in-memory")
			baseOpts.Monitor.AlertLogPath = ""
		}
		fleetOpts := fleet.Options{
			Workers:           *fleetWorkers,
			Catalog:           database,
			Defaults:          baseOpts,
			DefaultQuota:      fleet.QuotaSpec{RatePerSec: *quotaRate, Burst: *quotaBurst},
			CostCacheCapacity: *costCacheCap,
			Logf: func(format string, args ...any) {
				logger.Info(fmt.Sprintf(format, args...))
			},
		}
		if *replayOn {
			fleetOpts.ReplaySource = databaseData
		}
		reg, err := fleet.New(fleetOpts)
		if err != nil {
			fatal("tunerd: starting fleet", err)
		}
		handler = fleet.NewHandler(reg)
		shutdown = reg.Close
		logger.Info("tunerd: fleet mode", "workers", reg.Pool().Workers(), "quota_rate", *quotaRate)
	} else {
		db, err := database(*dbName, *sf)
		if err != nil {
			fatal("tunerd: bad -db", err)
		}
		recorder, err := obs.NewRecorder(*historyPath, *historyLimit)
		if err != nil {
			fatal("tunerd: opening -history", err)
		}
		if *historyPath != "" {
			logger.Info("tunerd: session history", "path", *historyPath, "loaded", recorder.Len())
		}
		baseOpts.DB = db
		baseOpts.Recorder = recorder
		if *replayOn {
			name, scale := *dbName, *sf
			baseOpts.Replay = &replay.Source{Build: func() (*catalog.Database, *exec.Store, error) {
				return databaseData(name, scale)
			}}
			logger.Info("tunerd: ground-truth replay enabled", "each_retune", *replayEach)
		}
		svc, err := service.New(baseOpts)
		if err != nil {
			fatal("tunerd: starting service", err)
		}
		handler = service.NewHandler(svc)
		shutdown = svc.Close
		logger.Info("tunerd: single-tenant mode", "db", db.Name, "sf", *sf)
	}

	srv := &http.Server{Addr: *addr, Handler: service.AccessLog(logger, handler)}
	go func() {
		logger.Info("tunerd: serving", "addr", *addr, "fleet", *fleetMode)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("tunerd: listen", err)
		}
	}()

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{Addr: *debugAddr, Handler: pprofMux()}
		go func() {
			logger.Info("tunerd: pprof", "addr", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("tunerd: pprof listen", "error", err)
			}
		}()
	}

	// Graceful shutdown: stop accepting requests, then drain any
	// in-flight tuning session.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	logger.Info("tunerd: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Error("tunerd: http shutdown", "error", err)
	}
	if debugSrv != nil {
		_ = debugSrv.Shutdown(ctx)
	}
	if err := shutdown(); err != nil {
		logger.Error("tunerd: service close", "error", err)
	}
	logger.Info("tunerd: bye")
}

// parseBuckets parses a comma-separated list of ascending float bucket
// bounds; an empty string means "use the defaults" (nil).
func parseBuckets(spec string) ([]float64, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bucket %q: %w", p, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("bucket %q: bounds must be positive", p)
		}
		if n := len(out); n > 0 && v <= out[n-1] {
			return nil, fmt.Errorf("bucket %q: bounds must be strictly increasing", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// newLogger builds the process logger in the requested format.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	}
	return nil, fmt.Errorf("tunerd: unknown -log-format %q (want text or json)", format)
}

// pprofMux exposes net/http/pprof on a dedicated mux, so profiling never
// shares a listener with the service API.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func database(name string, sf float64) (*catalog.Database, error) {
	switch name {
	case "tpch":
		return tuner.TPCH(sf), nil
	case "ds1":
		return tuner.DS1(sf), nil
	case "bench":
		return tuner.Bench(sf), nil
	}
	return nil, fmt.Errorf("unknown database %q (want tpch, ds1, or bench)", name)
}

// databaseData is database with materialized row data — the replay
// substrate builder for -replay (single-tenant and fleet tenants alike).
func databaseData(name string, sf float64) (*catalog.Database, *exec.Store, error) {
	switch name {
	case "tpch":
		db, store := datagen.TPCHData(sf)
		return db, store, nil
	case "ds1":
		db, store := datagen.DS1Data(sf)
		return db, store, nil
	case "bench":
		db, store := datagen.BenchData(sf)
		return db, store, nil
	}
	return nil, nil, fmt.Errorf("unknown database %q (want tpch, ds1, or bench)", name)
}

// Command tunerd runs the online tuning service as an HTTP/JSON daemon:
// clients stream observed SQL statements at it, the service keeps a
// compressed sliding window of the workload, detects drift, and retunes
// incrementally — warm-starting from the previous recommendation so
// repeat statements cost zero extra optimizer calls.
//
// Usage:
//
//	tunerd -db tpch -sf 0.01 -budget 64 -addr :8347
//
// Endpoints:
//
//	POST /ingest          {"statements": ["SELECT ...", ...]}
//	GET  /recommendation  current physical design advice
//	POST /retune          tune the current window now
//	GET  /drift           assess workload drift
//	GET  /metrics         activity counters
//	GET  /healthz         liveness
//
// Quickstart:
//
//	curl -s -XPOST localhost:8347/ingest -d '{"statements": ["SELECT o_orderpriority, COUNT(*) FROM orders WHERE o_orderdate >= 9131 GROUP BY o_orderpriority"]}'
//	curl -s -XPOST localhost:8347/retune
//	curl -s localhost:8347/recommendation
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/workloads"
	"repro/tuner"
)

func main() {
	var (
		addr       = flag.String("addr", ":8347", "listen address")
		dbName     = flag.String("db", "tpch", "database: tpch, ds1, or bench")
		sf         = flag.Float64("sf", 0.001, "database scale factor")
		budgetMB   = flag.Int64("budget", 0, "storage budget in MB (0 = unconstrained)")
		views      = flag.Bool("views", true, "consider materialized views")
		iters      = flag.Int("iters", 120, "maximum relaxation iterations per retune")
		tuneTime   = flag.Duration("tune-time", 0, "per-retune time budget (0 = unbounded)")
		windowObs  = flag.Int("window", 4096, "sliding window size in observations")
		maxUnique  = flag.Int("max-unique", 512, "max distinct statements kept in the window")
		halfLife   = flag.Int("half-life", 0, "statement weight half-life in observations (0 = no decay)")
		driftEvery = flag.Duration("drift-interval", 30*time.Second, "background drift check interval (0 = off)")
		driftMin   = flag.Int("drift-min", 8, "minimum window statements before drift can trigger")
		driftShape = flag.Float64("drift-shape", 0.5, "shape-histogram L1 distance threshold")
		driftCost  = flag.Float64("drift-cost", 1.25, "cost inflation ratio threshold")
		autoRetune = flag.Bool("auto-retune", true, "retune automatically when drift is detected")
	)
	flag.Parse()

	db, err := database(*dbName, *sf)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := service.New(service.Options{
		DB: db,
		Tuning: core.Options{
			SpaceBudget:   *budgetMB << 20,
			NoViews:       !*views,
			MaxIterations: *iters,
			TimeBudget:    *tuneTime,
		},
		Window: workloads.WindowOptions{
			MaxObservations: *windowObs,
			MaxUnique:       *maxUnique,
			HalfLife:        *halfLife,
		},
		Drift: service.DriftOptions{
			MinStatements:  *driftMin,
			ShapeThreshold: *driftShape,
			CostThreshold:  *driftCost,
		},
		DriftCheckInterval: *driftEvery,
		AutoRetune:         *autoRetune,
		Logf:               log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{Addr: *addr, Handler: service.NewHandler(svc)}
	go func() {
		log.Printf("tunerd: serving %s (sf %g) on %s", db.Name, *sf, *addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("tunerd: %v", err)
		}
	}()

	// Graceful shutdown: stop accepting requests, then drain any
	// in-flight tuning session.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("tunerd: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("tunerd: http shutdown: %v", err)
	}
	if err := svc.Close(); err != nil {
		log.Printf("tunerd: service close: %v", err)
	}
	log.Printf("tunerd: bye")
}

func database(name string, sf float64) (*catalog.Database, error) {
	switch name {
	case "tpch":
		return tuner.TPCH(sf), nil
	case "ds1":
		return tuner.DS1(sf), nil
	case "bench":
		return tuner.Bench(sf), nil
	}
	return nil, fmt.Errorf("unknown database %q (want tpch, ds1, or bench)", name)
}

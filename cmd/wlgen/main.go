// Command wlgen generates random SPJG (and optionally update) workloads
// over the built-in databases and prints them as a SQL script that
// relaxtune can consume.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/tuner"
)

func main() {
	var (
		dbName  = flag.String("db", "tpch", "database: tpch, ds1, or bench")
		sf      = flag.Float64("sf", 0.001, "database scale factor (affects predicate constants)")
		n       = flag.Int("n", 10, "number of statements")
		joins   = flag.Int("joins", 4, "maximum joined tables per query")
		updates = flag.Float64("updates", 0, "fraction of update statements")
		seed    = flag.Int64("seed", 42, "generation seed")
	)
	flag.Parse()

	var db *tuner.Database
	switch strings.ToLower(*dbName) {
	case "tpch":
		db = tuner.TPCH(*sf)
	case "ds1":
		db = tuner.DS1(*sf)
	case "bench":
		db = tuner.Bench(*sf)
	default:
		fmt.Fprintf(os.Stderr, "wlgen: unknown database %q\n", *dbName)
		os.Exit(1)
	}

	w, err := tuner.GenerateWorkload(db, tuner.GenOptions{
		Seed: *seed, NumQueries: *n, MaxJoins: *joins,
		UpdateFraction: *updates, GroupByProb: 0.45, OrderByProb: 0.35,
		Name: "wlgen",
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wlgen:", err)
		os.Exit(1)
	}
	fmt.Printf("-- %s over %s (seed %d)\n", w.Name, db.Name, *seed)
	for _, q := range w.Queries {
		fmt.Printf("%s;\n", q.SQL)
	}
}

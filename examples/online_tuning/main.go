// online_tuning replays a shifting workload against an in-process online
// tuning service and prints how the recommendation changes as drift is
// detected.
//
// The stream has three phases: order-centric reporting queries, a mixed
// transition, and a lineitem/part-centric analytical phase. The service
// ingests the stream, checks drift after every batch, and retunes
// (warm-starting from the previous recommendation) whenever the windowed
// workload has drifted from the last-tuned one.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/workloads"
	"repro/tuner"
)

var phases = [][]string{
	{ // phase 1: order-priority reporting
		`SELECT o_orderpriority, COUNT(*) FROM orders WHERE o_orderdate >= 9131 AND o_orderdate < 9496 GROUP BY o_orderpriority`,
		`SELECT c_name, o_orderkey, o_totalprice FROM customer, orders WHERE c_custkey = o_custkey AND o_totalprice > 400000 ORDER BY o_totalprice DESC`,
		`SELECT o_orderstatus, SUM(o_totalprice) FROM orders WHERE o_orderdate >= 9131 GROUP BY o_orderstatus`,
	},
	{ // phase 2: transition — orders cool down, shipping heats up
		`SELECT c_name, o_orderkey, o_totalprice FROM customer, orders WHERE c_custkey = o_custkey AND o_totalprice > 400000 ORDER BY o_totalprice DESC`,
		`SELECT l_shipmode, SUM(l_extendedprice) FROM lineitem WHERE l_shipdate BETWEEN 9131 AND 9496 GROUP BY l_shipmode`,
		`SELECT l_returnflag, SUM(l_quantity) FROM lineitem WHERE l_discount > 0.05 GROUP BY l_returnflag`,
	},
	{ // phase 3: lineitem/part analytics
		`SELECT l_shipmode, SUM(l_extendedprice) FROM lineitem WHERE l_shipdate BETWEEN 9131 AND 9496 GROUP BY l_shipmode`,
		`SELECT l_returnflag, SUM(l_quantity) FROM lineitem WHERE l_discount > 0.05 GROUP BY l_returnflag`,
		`SELECT p_type, COUNT(*) FROM part WHERE p_size > 40 GROUP BY p_type`,
		`SELECT s_name, s_acctbal FROM supplier WHERE s_acctbal > 5000`,
	},
}

func main() {
	db := tuner.TPCH(0.001)
	base := tuner.BaseConfiguration(db)
	svc, err := service.New(service.Options{
		DB:     db,
		Tuning: core.Options{SpaceBudget: 2 << 20, MaxIterations: 80},
		// A short window with decay makes the service forget old phases.
		Window: workloads.WindowOptions{MaxObservations: 60, HalfLife: 30},
		Drift:  service.DriftOptions{MinStatements: 6, ShapeThreshold: 0.4},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	for p, stmts := range phases {
		fmt.Printf("=== phase %d: replaying %d statement shapes x5 ===\n", p+1, len(stmts))
		for round := 0; round < 5; round++ {
			var batch []string
			batch = append(batch, stmts...)
			res := svc.Ingest(batch)
			if res.Rejected > 0 {
				log.Fatalf("rejected %d statements", res.Rejected)
			}
		}
		rep := svc.CheckDrift()
		fmt.Printf("drift: distance=%.2f cost-ratio=%.2f -> %v (%s)\n",
			rep.ShapeDistance, rep.CostRatio, rep.Drifted, rep.Reason)
		if !rep.Drifted {
			fmt.Println("recommendation unchanged")
			continue
		}
		rec, err := svc.Retune()
		if err != nil {
			log.Fatal(err)
		}
		kind := "cold"
		if rec.WarmStart {
			kind = "warm"
		}
		fmt.Printf("retuned (%s): %d stmts, cost %.1f -> %.1f (%.1f%%), %d optimizer calls\n",
			kind, rec.Statements, rec.InitialCost, rec.Cost, rec.ImprovementPct, rec.OptimizerCalls)
		for _, ix := range rec.Indexes {
			if !base.HasIndex(ix) { // skip pre-existing constraint indexes
				fmt.Printf("  %s\n", ix)
			}
		}
		fmt.Println()
	}

	m := svc.MetricsSnapshot()
	fmt.Printf("=== totals ===\n")
	fmt.Printf("ingested %d statements (%d unique in window), %d drift events, %d retunes (%d warm)\n",
		m.StatementsIngested, m.WindowUnique, m.DriftEvents, m.Retunes, m.WarmRetunes)
	fmt.Printf("optimizer calls: %d tuning + %d drift probes; warm-start saved %d calls across %d cache hits\n",
		m.TuneOptimizerCalls, m.DriftOptimizerCalls, m.OptimizerCallsSaved, m.CacheHits)
}

// Quickstart: tune a small ad-hoc workload over the TPC-H database and
// print the recommended physical design.
package main

import (
	"fmt"
	"log"

	"repro/tuner"
)

func main() {
	// 1. Build a database (schema + synthetic statistics). Scale factor
	//    0.001 keeps everything instant.
	db := tuner.TPCH(0.001)

	// 2. Describe the workload as plain SQL.
	workloadSQL := `
		SELECT o_orderpriority, COUNT(*)
		FROM orders
		WHERE o_orderdate >= 9131 AND o_orderdate < 9496
		GROUP BY o_orderpriority;

		SELECT c_name, o_orderkey, o_totalprice
		FROM customer, orders
		WHERE c_custkey = o_custkey AND o_totalprice > 400000
		ORDER BY o_totalprice DESC;

		SELECT l_shipmode, SUM(l_extendedprice)
		FROM lineitem
		WHERE l_shipdate BETWEEN 9131 AND 9496
		GROUP BY l_shipmode;
	`
	w, err := tuner.ParseWorkload("quickstart", "tpch", workloadSQL)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Tune with a 2 MB storage budget for auxiliary structures.
	res, err := tuner.Tune(db, w, tuner.Options{
		SpaceBudget:   2 << 20,
		MaxIterations: 80,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Report.
	fmt.Printf("workload cost: %.1f -> %.1f (improvement %.1f%%)\n",
		res.Initial.Cost, res.Best.Cost, res.ImprovementPct())
	fmt.Printf("optimal (unconstrained) bound: %.1f at %.1f MB\n\n",
		res.Optimal.Cost, float64(res.Optimal.SizeBytes)/(1<<20))

	fmt.Println("recommended structures:")
	for _, v := range res.Best.Config.Views() {
		fmt.Printf("  CREATE VIEW %s AS %s\n", v.Name, v.SQL())
	}
	for _, ix := range res.Best.Config.Indexes() {
		if ix.Required {
			continue // primary-key indexes already exist
		}
		fmt.Printf("  CREATE INDEX %s\n", ix.ID())
	}
}

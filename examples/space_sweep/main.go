// space_sweep compares the relaxation-based tuner against the bottom-up
// baseline across a range of storage budgets (the Figure 10 experiment),
// showing that relaxation degrades gracefully as space shrinks while the
// greedy bottom-up tool can regress non-monotonically.
package main

import (
	"fmt"
	"log"

	"repro/tuner"
)

func main() {
	db := tuner.Bench(0.001)
	w, err := tuner.GenerateWorkload(db, tuner.GenOptions{
		Seed: 7, NumQueries: 10, MaxJoins: 3,
		GroupByProb: 0.4, OrderByProb: 0.3, Name: "sweep",
	})
	if err != nil {
		log.Fatal(err)
	}

	session, err := tuner.NewSession(db, w, tuner.Options{NoViews: true})
	if err != nil {
		log.Fatal(err)
	}
	optCfg, err := session.OptimalConfiguration()
	if err != nil {
		log.Fatal(err)
	}
	optSize := session.Opt.Sizer().ConfigBytes(optCfg)
	minSize := session.Opt.Sizer().ConfigBytes(tuner.BaseConfiguration(db))
	initial, err := session.Evaluate(tuner.BaseConfiguration(db))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s\nbudget sweep between %.1f MB (existing) and %.1f MB (optimal)\n\n",
		w, mb(minSize), mb(optSize))
	fmt.Printf("%8s %12s %18s %18s\n", "space%", "budget", "relaxation impr", "bottom-up impr")

	for _, pct := range []int{10, 25, 50, 75, 100} {
		budget := minSize + (optSize-minSize)*int64(pct)/100
		ptt, err := tuner.Tune(db, w, tuner.Options{
			NoViews: true, SpaceBudget: budget, MaxIterations: 100,
		})
		if err != nil {
			log.Fatal(err)
		}
		ctt, err := tuner.TuneBottomUp(db, w, tuner.BaselineOptions{
			NoViews: true, SpaceBudget: budget,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d%% %9.1f MB %17.1f%% %17.1f%%\n",
			pct, mb(budget),
			tuner.Improvement(initial.Cost, ptt.Best.Cost),
			tuner.Improvement(initial.Cost, ctt.Best.Cost))
	}
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }

// tpch_indexes reproduces the Figure 4 scenario interactively: tune the
// 22-query TPC-H workload for indexes under a storage constraint and
// print the space/cost frontier the relaxation search produces as a
// by-product — the information a DBA can use to decide whether buying
// more disk is worth it.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/tuner"
)

func main() {
	db := tuner.TPCH(0.002)
	w, err := tuner.TPCH22Workload()
	if err != nil {
		log.Fatal(err)
	}

	// First find the optimal configuration's size to position the budget.
	session, err := tuner.NewSession(db, w, tuner.Options{NoViews: true})
	if err != nil {
		log.Fatal(err)
	}
	optCfg, err := session.OptimalConfiguration()
	if err != nil {
		log.Fatal(err)
	}
	optSize := session.Opt.Sizer().ConfigBytes(optCfg)
	budget := optSize * 30 / 100

	res, err := tuner.Tune(db, w, tuner.Options{
		NoViews:       true,
		SpaceBudget:   budget,
		MaxIterations: 150,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("TPC-H 22 queries, indexes only\n")
	fmt.Printf("  initial: %8.1f time-units at %6.1f MB\n", res.Initial.Cost, mb(res.Initial.SizeBytes))
	fmt.Printf("  optimal: %8.1f time-units at %6.1f MB\n", res.Optimal.Cost, mb(res.Optimal.SizeBytes))
	fmt.Printf("  budget:  %6.1f MB -> best %8.1f time-units at %6.1f MB (%.1f%% improvement)\n\n",
		mb(budget), res.Best.Cost, mb(res.Best.SizeBytes), res.ImprovementPct())

	// The frontier, deduplicated to the best cost seen per size bucket,
	// tells the DBA what extra disk would buy (Figure 4's reading).
	type pt struct {
		size int64
		cost float64
	}
	bySize := map[int64]float64{}
	for _, p := range res.Frontier {
		bucket := p.SizeBytes / (64 << 10) // 64 KB buckets
		if c, ok := bySize[bucket]; !ok || p.Cost < c {
			bySize[bucket] = p.Cost
		}
	}
	var pts []pt
	for b, c := range bySize {
		pts = append(pts, pt{size: b * (64 << 10), cost: c})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].size < pts[j].size })

	fmt.Println("space/cost frontier (what more disk would buy):")
	for _, p := range pts {
		fmt.Printf("  %7.2f MB  %10.1f time-units\n", mb(p.size), p.cost)
	}
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }

// update_workload demonstrates §3.6: tuning a mixed SELECT/UPDATE
// workload. Index maintenance makes "more indexes" no longer free, so
// the tuner keeps relaxing even after the configuration fits, dropping
// structures whose update cost outweighs their query benefit.
package main

import (
	"fmt"
	"log"

	"repro/tuner"
)

func main() {
	db := tuner.DS1(0.001)

	workloadSQL := `
		SELECT st_region, SUM(sf_amount), COUNT(*)
		FROM sales_fact, dim_store
		WHERE sf_storekey = st_storekey AND sf_datekey >= 10227
		GROUP BY st_region;

		SELECT p_category, SUM(sf_amount)
		FROM sales_fact, dim_product
		WHERE sf_productkey = p_productkey AND p_price > 1000
		GROUP BY p_category;

		SELECT cu_segment, SUM(sf_profit)
		FROM sales_fact, dim_customer
		WHERE sf_custkey = cu_custkey AND cu_income > 200000
		GROUP BY cu_segment;

		UPDATE sales_fact SET sf_amount = sf_amount * 1.01 WHERE sf_datekey >= 10500;
		UPDATE sales_fact SET sf_profit = sf_profit - 1 WHERE sf_quantity > 90;
		INSERT INTO sales_fact VALUES (0, 0, 0, 0, 0, 0, 0, 0, 0);
		DELETE FROM returns_fact WHERE rf_datekey < 8400;
	`
	w, err := tuner.ParseWorkload("sales-mix", "ds1", workloadSQL)
	if err != nil {
		log.Fatal(err)
	}

	// Tune twice: pretending updates are free (SELECTs only) vs. the full
	// mixed workload, to show how maintenance costs change the answer.
	selectOnly := &tuner.Workload{Name: w.Name + "-selects", Database: w.Database}
	for _, q := range w.Queries {
		if !q.IsUpdate() {
			selectOnly.Queries = append(selectOnly.Queries, q)
		}
	}

	for _, run := range []struct {
		label string
		w     *tuner.Workload
	}{
		{"SELECT portion only", selectOnly},
		{"full mixed workload", w},
	} {
		res, err := tuner.Tune(db, run.w, tuner.Options{
			SpaceBudget:   8 << 20,
			MaxIterations: 80,
		})
		if err != nil {
			log.Fatal(err)
		}
		extra := 0
		for _, ix := range res.Best.Config.Indexes() {
			if !ix.Required {
				extra++
			}
		}
		fmt.Printf("%-20s cost %9.1f -> %9.1f (improvement %5.1f%%), %d auxiliary indexes, %d views\n",
			run.label, res.Initial.Cost, res.Best.Cost, res.ImprovementPct(),
			extra, res.Best.Config.NumViews())
	}
	fmt.Println("\nwith updates in the mix the tuner recommends fewer (or cheaper-to-maintain)")
	fmt.Println("structures on the updated tables — §3.6's select/update-shell separation at work")
}

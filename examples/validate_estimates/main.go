// validate_estimates materializes synthetic TPC-H rows, executes a
// workload for real, and compares true result sizes against the
// optimizer's cardinality estimates — the consistency check that makes
// the tuner's cost-based recommendations trustworthy.
package main

import (
	"fmt"
	"log"

	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/sqlx"
)

func main() {
	db, store := datagen.TPCHData(0.002)
	o := optimizer.New(db)
	cfg := datagen.BaseConfiguration(db)

	queries := []string{
		"SELECT o_orderkey FROM orders WHERE o_orderdate < 9131",
		"SELECT l_orderkey FROM lineitem WHERE l_quantity < 10",
		"SELECT l_orderkey FROM lineitem WHERE l_shipdate BETWEEN 9131 AND 9496",
		"SELECT o_orderpriority, COUNT(*) FROM orders GROUP BY o_orderpriority",
		"SELECT l_shipmode, COUNT(*) FROM lineitem GROUP BY l_shipmode",
		"SELECT o_orderkey, c_name FROM orders, customer WHERE o_custkey = c_custkey",
		"SELECT l_orderkey FROM lineitem, orders WHERE l_orderkey = o_orderkey AND o_orderdate < 8500",
		"SELECT s_name, COUNT(*) FROM supplier, nation WHERE s_nationkey = n_nationkey GROUP BY s_name",
	}

	fmt.Printf("%-4s %12s %12s %8s %10s  %s\n", "#", "estimated", "actual", "ratio", "scanned", "query")
	for i, src := range queries {
		stmt, err := sqlx.Parse(src)
		if err != nil {
			log.Fatal(err)
		}
		q, err := optimizer.Bind(db, stmt)
		if err != nil {
			log.Fatal(err)
		}
		p, err := o.Optimize(q, cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, st, err := exec.ExecuteQuery(store, q)
		if err != nil {
			log.Fatal(err)
		}
		est := p.Root.OutRows()
		actual := float64(res.Len())
		ratio := 0.0
		if actual > 0 {
			ratio = est / actual
		}
		fmt.Printf("%-4d %12.0f %12.0f %8.2f %10d  %s\n", i+1, est, actual, ratio, st.RowsScanned, src)
	}
	fmt.Println("\nratios near 1.0 mean the histogram/containment model that drives all")
	fmt.Println("tuning decisions agrees with ground truth on this synthetic data")
}

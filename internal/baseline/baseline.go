// Package baseline implements a bottom-up physical design advisor in the
// architecture the paper describes for state-of-the-art commercial tools
// (CTT): per-query candidate selection driven by syntactic heuristics,
// a separate candidate-merging step, and greedy knapsack-style
// enumeration that starts from the empty configuration and adds
// structures until the space budget is exhausted, estimating benefits
// with atomic configurations.
//
// The known weaknesses the paper attributes to this architecture are
// reproduced deliberately: candidate ranking can be off-sync with the
// optimizer, merging is eager and happens before any enumeration, and
// atomic-configuration benefits ignore structure interactions — which is
// why the relaxation-based tuner can beat it (Figures 8-10) and why its
// tuning times are much higher (Table 3).
package baseline

import (
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/physical"
	"repro/internal/sqlx"
)

// Options configure the bottom-up advisor.
type Options struct {
	// SpaceBudget in bytes (0 = unconstrained).
	SpaceBudget int64
	// NoViews restricts candidate generation to indexes.
	NoViews bool
	// MaxCandidatesPerQuery caps per-query candidates (the paper notes
	// such caps are how these tools stay scalable).
	MaxCandidatesPerQuery int
	// TimeBudget bounds tuning wall-clock time (0 = unbounded).
	TimeBudget time.Duration

	// CostBound, when positive, is a lower bound on achievable workload
	// cost (e.g. the relaxation tuner's optimal configuration, Figure 3).
	// Together with StopWithinPct it implements the paper's advisory:
	// stop tuning once the best configuration is within StopWithinPct
	// percent of the bound, since further search cannot pay off.
	CostBound     float64
	StopWithinPct float64
}

// ProgressPoint records the best configuration cost over time (Figure 3).
type ProgressPoint struct {
	Elapsed   time.Duration
	Step      int
	BestCost  float64
	SizeBytes int64
}

// Result is the advisor's outcome.
type Result struct {
	Initial *core.EvaluatedConfig
	Best    *core.EvaluatedConfig
	// Progress traces best-so-far cost after each greedy addition.
	Progress []ProgressPoint
	// Candidates is the number of structures considered after merging.
	Candidates     int
	OptimizerCalls int64
	Elapsed        time.Duration
	// StoppedAtBound reports that tuning ended early because the best
	// configuration reached the provided cost bound (Figure 3's advisory).
	StoppedAtBound bool
}

// ImprovementPct returns the paper's quality metric for the final
// recommendation.
func (r *Result) ImprovementPct() float64 {
	if r.Best == nil || r.Initial == nil {
		return 0
	}
	return core.Improvement(r.Initial.Cost, r.Best.Cost)
}

// Tune runs the bottom-up advisor over the session's workload. It shares
// the tuner's optimizer and evaluation machinery so both advisors are
// compared under identical cost models.
func Tune(t *core.Tuner, opts Options) (*Result, error) {
	start := time.Now()
	stats0 := t.Opt.Stats()
	if opts.MaxCandidatesPerQuery <= 0 {
		opts.MaxCandidatesPerQuery = 8
	}
	res := &Result{}

	initial, err := t.Evaluate(t.Base)
	if err != nil {
		return nil, err
	}
	res.Initial = initial

	cands := generateCandidates(t, opts)
	cands = mergeRound(t, cands)
	res.Candidates = len(cands)

	// Atomic-configuration benefits: each candidate is evaluated on top
	// of the base configuration in isolation.
	type scored struct {
		c       *candidateStruct
		benefit float64
		size    int64
	}
	var pool []scored
	for _, c := range cands {
		cfg := t.Base.Clone()
		c.addTo(cfg)
		ec, err := t.Evaluate(cfg)
		if err != nil {
			continue // unusable candidate (e.g. view that fails to bind)
		}
		benefit := initial.Cost - ec.Cost
		size := ec.SizeBytes - initial.SizeBytes
		if benefit <= 0 || size <= 0 {
			continue
		}
		pool = append(pool, scored{c: c, benefit: benefit, size: size})
	}
	sort.SliceStable(pool, func(i, j int) bool {
		return pool[i].benefit/float64(pool[i].size) > pool[j].benefit/float64(pool[j].size)
	})

	// Greedy knapsack over static atomic benefits.
	current := t.Base.Clone()
	best := initial
	currentSize := initial.SizeBytes
	step := 0
	for _, s := range pool {
		if opts.TimeBudget > 0 && time.Since(start) > opts.TimeBudget {
			break
		}
		if opts.SpaceBudget > 0 && currentSize+s.size > opts.SpaceBudget {
			continue
		}
		next := current.Clone()
		s.c.addTo(next)
		ec, err := t.Evaluate(next)
		if err != nil {
			continue
		}
		if opts.SpaceBudget > 0 && ec.SizeBytes > opts.SpaceBudget {
			continue
		}
		step++
		// Interactions can make an addition harmful; the greedy strategy
		// keeps it anyway when the atomic benefit was positive (the
		// paper's criticism), but the best-so-far configuration is
		// remembered.
		current = next
		currentSize = ec.SizeBytes
		if ec.Cost < best.Cost {
			best = ec
		}
		res.Progress = append(res.Progress, ProgressPoint{
			Elapsed: time.Since(start), Step: step, BestCost: best.Cost, SizeBytes: ec.SizeBytes,
		})
		// Figure 3's advisory: with a known lower bound on achievable
		// cost, stop once the remaining headroom is negligible.
		if opts.CostBound > 0 && opts.StopWithinPct > 0 {
			headroom := (best.Cost - opts.CostBound) / opts.CostBound * 100
			if headroom <= opts.StopWithinPct {
				res.StoppedAtBound = true
				break
			}
		}
	}

	res.Best = best
	stats1 := t.Opt.Stats()
	res.OptimizerCalls = stats1.OptimizeCalls - stats0.OptimizeCalls
	res.Elapsed = time.Since(start)
	return res, nil
}

// candidateStruct is either an index or a materialized view candidate.
type candidateStruct struct {
	index *physical.Index
	view  *physical.View
	vidx  []*physical.Index // indexes over the view (clustered first)
}

func (c *candidateStruct) addTo(cfg *physical.Configuration) {
	if c.index != nil {
		cfg.AddIndex(c.index)
	}
	if c.view != nil {
		v := cfg.AddView(c.view)
		for _, ix := range c.vidx {
			if !strings.EqualFold(ix.Table, v.Name) {
				// Rebuild instead of clone-and-mutate so the re-targeted
				// index carries a sealed identity cache.
				ix = physical.NewIndex(v.Name, ix.Keys, ix.Suffix, ix.Clustered)
			}
			cfg.AddIndex(ix)
		}
	}
}

func (c *candidateStruct) key() string {
	if c.index != nil {
		return c.index.ID()
	}
	return "v:" + c.view.Signature()
}

// generateCandidates derives per-query candidates from query syntax: the
// classic heuristics (equality/range columns as keys, covering variants,
// join columns, group-by and order-by columns, and whole-query views).
func generateCandidates(t *core.Tuner, opts Options) []*candidateStruct {
	seen := map[string]bool{}
	var out []*candidateStruct
	add := func(c *candidateStruct) {
		if c == nil {
			return
		}
		if k := c.key(); !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	for _, tq := range t.Queries {
		perQuery := candidatesForQuery(t, tq, opts)
		if len(perQuery) > opts.MaxCandidatesPerQuery {
			// Rank heuristically: larger tables first (a syntactic proxy
			// for benefit that can be off-sync with the optimizer).
			sort.SliceStable(perQuery, func(i, j int) bool {
				return candTableRows(t, perQuery[i]) > candTableRows(t, perQuery[j])
			})
			perQuery = perQuery[:opts.MaxCandidatesPerQuery]
		}
		for _, c := range perQuery {
			add(c)
		}
	}
	return out
}

func candTableRows(t *core.Tuner, c *candidateStruct) int64 {
	if c.index != nil {
		if tb := t.DB.Table(c.index.Table); tb != nil {
			return tb.Rows
		}
	}
	if c.view != nil {
		return c.view.EstRows
	}
	return 0
}

func candidatesForQuery(t *core.Tuner, tq *core.TunedQuery, opts Options) []*candidateStruct {
	q := tq.Bound
	var out []*candidateStruct
	for _, table := range q.Tables {
		tp := q.TablePred(table)
		needed := q.NeededCols(table)
		var eqCols, rangeCols []string
		for _, s := range tp.Sargs {
			if s.Iv.IsPoint() {
				eqCols = append(eqCols, s.Col)
			} else {
				rangeCols = append(rangeCols, s.Col)
			}
		}
		var joinCols []string
		for _, j := range q.Joins {
			if strings.EqualFold(j.L.Table, table) {
				joinCols = append(joinCols, j.L.Column)
			}
			if strings.EqualFold(j.R.Table, table) {
				joinCols = append(joinCols, j.R.Column)
			}
		}
		var groupCols, orderCols []string
		for _, g := range q.GroupBy {
			if strings.EqualFold(g.Table, table) {
				groupCols = append(groupCols, g.Column)
			}
		}
		for _, o := range q.OrderBy {
			if strings.EqualFold(o.Table, table) {
				orderCols = append(orderCols, o.Column)
			}
		}
		addIdx := func(keys []string, covering bool) {
			if len(keys) == 0 {
				return
			}
			var suffix []string
			if covering {
				suffix = needed
			}
			out = append(out, &candidateStruct{index: physical.NewIndex(table, keys, suffix, false)})
		}
		addIdx(eqCols, false)
		addIdx(append(append([]string(nil), eqCols...), rangeCols...), false)
		addIdx(append(append([]string(nil), eqCols...), rangeCols...), true)
		addIdx(joinCols, false)
		addIdx(joinCols, true)
		addIdx(groupCols, true)
		addIdx(orderCols, false)
	}
	if !opts.NoViews {
		if v := wholeQueryView(t, tq); v != nil {
			keys := viewClusterKeys(v)
			cix := physical.NewIndex(v.Name, keys, subtractStrings(v.AllColumnNames(), keys), true)
			out = append(out, &candidateStruct{view: v, vidx: []*physical.Index{cix}})
		}
	}
	return out
}

// wholeQueryView derives a materialized view covering the whole query
// block (the classic syntactic view candidate).
func wholeQueryView(t *core.Tuner, tq *core.TunedQuery) *physical.View {
	q := tq.Bound
	if q.IsUpdate() || len(q.Tables) == 0 {
		return nil
	}
	v := &physical.View{Tables: append([]string(nil), q.Tables...)}
	sort.Strings(v.Tables)
	v.Joins = append(v.Joins, q.Joins...)
	for _, table := range q.Tables {
		tp := q.TablePred(table)
		for _, s := range tp.Sargs {
			v.Ranges = append(v.Ranges, physical.RangeCond{
				Col: sqlx.ColRef{Table: table, Column: s.Col}, Iv: s.Iv,
			})
		}
		for _, oc := range tp.Others {
			v.Others = append(v.Others, oc.Expr)
		}
	}
	for _, oc := range q.CrossOthers {
		v.Others = append(v.Others, oc.Expr)
	}
	v.GroupBy = append(v.GroupBy, q.GroupBy...)
	for _, sc := range q.SelectCols {
		if vcExists(v, sc.Name) {
			continue
		}
		v.Cols = append(v.Cols, sc)
	}
	for _, g := range q.GroupBy {
		c := physical.BaseViewColumn(g, 8)
		if !vcExists(v, c.Name) {
			v.Cols = append(v.Cols, c)
		}
	}
	for _, o := range q.OrderBy {
		c := physical.BaseViewColumn(o, 8)
		if !vcExists(v, c.Name) {
			v.Cols = append(v.Cols, c)
		}
	}
	if len(v.Cols) == 0 {
		return nil
	}
	v.EstRows = t.Opt.EstimateViewRows(v)
	v.Name = physical.ViewNameFor(v)
	return v
}

func vcExists(v *physical.View, name string) bool { return v.Column(name) != nil }

func viewClusterKeys(v *physical.View) []string {
	if len(v.GroupBy) > 0 {
		var keys []string
		for _, g := range v.GroupBy {
			if vc := v.ColumnForSource(g); vc != nil {
				keys = append(keys, vc.Name)
			}
		}
		if len(keys) > 0 {
			return keys
		}
	}
	return v.AllColumnNames()[:1]
}

// mergeRound performs the eager candidate-merging step: every pair of
// same-table index candidates is merged once (following the restriction
// in the literature that each structure is merged at most once).
func mergeRound(t *core.Tuner, cands []*candidateStruct) []*candidateStruct {
	merged := map[string]bool{}
	seen := map[string]bool{}
	var out []*candidateStruct
	for _, c := range cands {
		if !seen[c.key()] {
			seen[c.key()] = true
			out = append(out, c)
		}
	}
	n := len(out)
	for i := 0; i < n; i++ {
		if out[i].index == nil || merged[out[i].key()] {
			continue
		}
		for j := i + 1; j < n; j++ {
			if out[j].index == nil || merged[out[j].key()] {
				continue
			}
			m := physical.MergeIndexes(out[i].index, out[j].index)
			if m == nil {
				continue
			}
			mc := &candidateStruct{index: m}
			if !seen[mc.key()] {
				seen[mc.key()] = true
				out = append(out, mc)
				merged[out[i].key()] = true
				merged[out[j].key()] = true
				break
			}
		}
	}
	return out
}

func subtractStrings(a, b []string) []string {
	var out []string
	for _, s := range a {
		found := false
		for _, x := range b {
			if strings.EqualFold(s, x) {
				found = true
				break
			}
		}
		if !found {
			out = append(out, s)
		}
	}
	return out
}

package baseline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/workloads"
)

func TestBottomUpTPCHIndexesOnly(t *testing.T) {
	db := datagen.TPCH(0.001)
	w, err := workloads.TPCH22()
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	tn, err := core.NewTuner(db, w, core.Options{NoViews: true})
	if err != nil {
		t.Fatalf("tuner: %v", err)
	}
	res, err := Tune(tn, Options{NoViews: true})
	if err != nil {
		t.Fatalf("tune: %v", err)
	}
	t.Logf("initial=%.1f best=%.1f improvement=%.1f%% candidates=%d calls=%d steps=%d",
		res.Initial.Cost, res.Best.Cost, res.ImprovementPct(), res.Candidates, res.OptimizerCalls, len(res.Progress))
	if res.Best.Cost > res.Initial.Cost {
		t.Errorf("baseline made things worse: %.1f > %.1f", res.Best.Cost, res.Initial.Cost)
	}
	if res.ImprovementPct() < 10 {
		t.Errorf("baseline found almost no improvement: %.1f%%", res.ImprovementPct())
	}
	if len(res.Progress) == 0 {
		t.Error("no progress trace recorded")
	}
	// Progress best-so-far must be non-increasing.
	for i := 1; i < len(res.Progress); i++ {
		if res.Progress[i].BestCost > res.Progress[i-1].BestCost+1e-9 {
			t.Errorf("best-so-far increased at step %d", i)
		}
	}
}

func TestBottomUpVsRelaxationUnconstrained(t *testing.T) {
	db := datagen.TPCH(0.001)
	w, err := workloads.TPCH22()
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	tn, err := core.NewTuner(db, w, core.Options{NoViews: true})
	if err != nil {
		t.Fatalf("tuner: %v", err)
	}
	ctt, err := Tune(tn, Options{NoViews: true})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	ptt, err := tn.Tune()
	if err != nil {
		t.Fatalf("relaxation: %v", err)
	}
	pttImpr := core.Improvement(ptt.Initial.Cost, ptt.Best.Cost)
	cttImpr := ctt.ImprovementPct()
	t.Logf("PTT improvement=%.1f%% (cost %.1f), CTT improvement=%.1f%% (cost %.1f)",
		pttImpr, ptt.Best.Cost, cttImpr, ctt.Best.Cost)
	// Unconstrained, the relaxation tuner starts at the optimal
	// configuration; it must never lose to the bottom-up baseline.
	if ptt.Best.Cost > ctt.Best.Cost*1.0001 {
		t.Errorf("PTT (%.2f) worse than CTT (%.2f) without constraints", ptt.Best.Cost, ctt.Best.Cost)
	}
}

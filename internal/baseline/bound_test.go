package baseline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/workloads"
)

// TestStopAtBoundSavesWork demonstrates the Figure 3 advisory: armed with
// the relaxation tuner's optimal-configuration bound, the bottom-up tool
// can stop early with almost no quality loss.
func TestStopAtBoundSavesWork(t *testing.T) {
	db := datagen.TPCH(0.001)
	w, err := workloads.TPCH22()
	if err != nil {
		t.Fatal(err)
	}
	// The bound comes from the relaxation tuner's §2 pass.
	boundTuner, err := core.NewTuner(db, w, core.Options{NoViews: true})
	if err != nil {
		t.Fatal(err)
	}
	optCfg, err := boundTuner.OptimalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	optimal, err := boundTuner.Evaluate(optCfg)
	if err != nil {
		t.Fatal(err)
	}

	tn1, err := core.NewTuner(db, w, core.Options{NoViews: true})
	if err != nil {
		t.Fatal(err)
	}
	unbounded, err := Tune(tn1, Options{NoViews: true})
	if err != nil {
		t.Fatal(err)
	}

	tn2, err := core.NewTuner(db, w, core.Options{NoViews: true})
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := Tune(tn2, Options{
		NoViews:       true,
		CostBound:     optimal.Cost,
		StopWithinPct: 10,
	})
	if err != nil {
		t.Fatal(err)
	}

	if !bounded.StoppedAtBound {
		t.Skip("bound not reached at this scale; nothing to verify")
	}
	if len(bounded.Progress) >= len(unbounded.Progress) {
		t.Errorf("bounded run should take fewer steps: %d >= %d",
			len(bounded.Progress), len(unbounded.Progress))
	}
	// Quality loss bounded by the stopping slack.
	if bounded.Best.Cost > optimal.Cost*1.10+1e-9 {
		t.Errorf("stopped too early: %.1f > %.1f×1.10", bounded.Best.Cost, optimal.Cost)
	}
}

func TestBudgetedBaselineRespectsBudget(t *testing.T) {
	db := datagen.Bench(0.001)
	w, err := workloads.Generate(db, workloads.DefaultGenOptions("b", 11, 8))
	if err != nil {
		t.Fatal(err)
	}
	tn, err := core.NewTuner(db, w, core.Options{NoViews: true})
	if err != nil {
		t.Fatal(err)
	}
	optCfg, err := tn.OptimalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	// Midpoint between the (unavoidable) base size and the optimal size.
	baseSize := tn.Opt.Sizer().ConfigBytes(tn.Base)
	optSize := tn.Opt.Sizer().ConfigBytes(optCfg)
	budget := baseSize + (optSize-baseSize)/2
	tn2, err := core.NewTuner(db, w, core.Options{NoViews: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Tune(tn2, Options{NoViews: true, SpaceBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.SizeBytes > budget {
		t.Errorf("baseline violated the budget: %d > %d", res.Best.SizeBytes, budget)
	}
	if res.Best.SizeBytes <= baseSize {
		t.Error("baseline should have added at least one structure within the budget")
	}
}

// Package catalog models database metadata: tables, columns, types, column
// statistics, and the base (constraint-enforcing) indexes that must be
// present in every configuration. The tuner and the optimizer consult the
// catalog for cardinalities, widths, and selectivities; no actual rows are
// stored (the paper's algorithms operate purely on optimizer estimates).
package catalog

import (
	"fmt"
	"sort"
	"strings"
)

// ColType is a column's data type.
type ColType int

// Column types.
const (
	TypeInt ColType = iota
	TypeFloat
	TypeVarchar
	TypeDate // stored as days since epoch
)

func (t ColType) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeVarchar:
		return "VARCHAR"
	case TypeDate:
		return "DATE"
	default:
		return "UNKNOWN"
	}
}

// Column is one column of a table.
type Column struct {
	Name string
	Type ColType
	// AvgWidth is the average stored width in bytes. For fixed-width types
	// it is the type's width; for varchars it is estimated by the data
	// generator via sampling, as in §3.3.1 of the paper.
	AvgWidth int
	// Stats summarizes the column's value distribution.
	Stats *ColumnStats
}

// FixedWidth returns the storage width of fixed-width types, or 0 for
// variable-width types.
func FixedWidth(t ColType) int {
	switch t {
	case TypeInt:
		return 4
	case TypeFloat:
		return 8
	case TypeDate:
		return 4
	default:
		return 0
	}
}

// Table is a base table with its columns and primary key.
type Table struct {
	Name    string
	Columns []Column
	Rows    int64
	// PrimaryKey lists the key column names; the base configuration always
	// contains a primary-key index (it enforces the constraint and cannot
	// be dropped by the tuner).
	PrimaryKey []string
	// Heap marks tables stored as heaps: their primary-key index is
	// non-clustered and the tuner may promote a secondary index to
	// clustered (§3.1.1's promotion transformation).
	Heap bool

	byName map[string]int
}

// NewTable builds a table and indexes its columns by name.
func NewTable(name string, rows int64, cols []Column, pk []string) (*Table, error) {
	t := &Table{Name: name, Columns: cols, Rows: rows, PrimaryKey: pk}
	t.byName = make(map[string]int, len(cols))
	for i, c := range cols {
		lower := strings.ToLower(c.Name)
		if _, dup := t.byName[lower]; dup {
			return nil, fmt.Errorf("catalog: duplicate column %s.%s", name, c.Name)
		}
		t.byName[lower] = i
	}
	for _, k := range pk {
		if _, ok := t.byName[strings.ToLower(k)]; !ok {
			return nil, fmt.Errorf("catalog: primary key column %s.%s does not exist", name, k)
		}
	}
	return t, nil
}

// Column returns the named column, or nil if absent. Lookup is
// case-insensitive, matching SQL identifier semantics.
func (t *Table) Column(name string) *Column {
	i, ok := t.byName[strings.ToLower(name)]
	if !ok {
		return nil
	}
	return &t.Columns[i]
}

// ColumnIndex returns the ordinal position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	i, ok := t.byName[strings.ToLower(name)]
	if !ok {
		return -1
	}
	return i
}

// RowWidth returns the average width in bytes of a full row.
func (t *Table) RowWidth() int {
	w := 0
	for _, c := range t.Columns {
		w += c.AvgWidth
	}
	return w
}

// ColumnNames returns the names of all columns in declaration order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// Database is a named collection of tables.
type Database struct {
	Name   string
	tables map[string]*Table
	order  []string

	// fpState lazily caches the schema+stats fingerprint (see
	// fingerprint.go). Build the catalog fully before the first
	// Fingerprint call.
	fpState fingerprintState
}

// NewDatabase returns an empty database.
func NewDatabase(name string) *Database {
	return &Database{Name: name, tables: make(map[string]*Table)}
}

// AddTable registers a table; it fails on duplicate names.
func (db *Database) AddTable(t *Table) error {
	lower := strings.ToLower(t.Name)
	if _, dup := db.tables[lower]; dup {
		return fmt.Errorf("catalog: duplicate table %s", t.Name)
	}
	db.tables[lower] = t
	db.order = append(db.order, lower)
	return nil
}

// MustAddTable is AddTable but panics on error; for use by generators whose
// schemas are statically known to be valid.
func (db *Database) MustAddTable(t *Table) {
	if err := db.AddTable(t); err != nil {
		panic(err)
	}
}

// Table returns the named table or nil. Lookup is case-insensitive.
func (db *Database) Table(name string) *Table {
	return db.tables[strings.ToLower(name)]
}

// Tables returns all tables in registration order.
func (db *Database) Tables() []*Table {
	out := make([]*Table, 0, len(db.order))
	for _, n := range db.order {
		out = append(out, db.tables[n])
	}
	return out
}

// TotalRows returns the sum of row counts over all tables.
func (db *Database) TotalRows() int64 {
	var n int64
	for _, t := range db.tables {
		n += t.Rows
	}
	return n
}

// DataSize returns the approximate raw data size in bytes (rows × row
// width, no index overhead); used to express storage budgets relative to
// database size, as the paper's experiments do.
func (db *Database) DataSize() int64 {
	var n int64
	for _, t := range db.tables {
		n += t.Rows * int64(t.RowWidth())
	}
	return n
}

// Validate checks referential consistency of column statistics.
func (db *Database) Validate() error {
	for _, t := range db.Tables() {
		if t.Rows < 0 {
			return fmt.Errorf("catalog: table %s has negative row count", t.Name)
		}
		for _, c := range t.Columns {
			if c.AvgWidth <= 0 {
				return fmt.Errorf("catalog: column %s.%s has non-positive width", t.Name, c.Name)
			}
			if c.Stats != nil {
				if err := c.Stats.Validate(); err != nil {
					return fmt.Errorf("catalog: column %s.%s: %w", t.Name, c.Name, err)
				}
			}
		}
	}
	return nil
}

// Summary returns a one-line description (for Table 2 style inventories).
func (db *Database) Summary() string {
	tables := db.Tables()
	names := make([]string, len(tables))
	for i, t := range tables {
		names[i] = t.Name
	}
	sort.Strings(names)
	return fmt.Sprintf("%s: %d tables, %d rows, %.1f MB raw",
		db.Name, len(tables), db.TotalRows(), float64(db.DataSize())/(1<<20))
}

package catalog

import (
	"testing"
)

func sampleTable(t *testing.T) *Table {
	t.Helper()
	cols := []Column{
		{Name: "id", Type: TypeInt, AvgWidth: 4, Stats: &ColumnStats{Distinct: 1000, Min: 1, Max: 1000, Numeric: true}},
		{Name: "name", Type: TypeVarchar, AvgWidth: 20, Stats: &ColumnStats{Distinct: 900}},
		{Name: "price", Type: TypeFloat, AvgWidth: 8, Stats: &ColumnStats{Distinct: 500, Min: 0, Max: 100, Numeric: true}},
	}
	tb, err := NewTable("items", 1000, cols, []string{"id"})
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	return tb
}

func TestTableLookupsCaseInsensitive(t *testing.T) {
	tb := sampleTable(t)
	if tb.Column("ID") == nil || tb.Column("Name") == nil {
		t.Error("column lookup should be case-insensitive")
	}
	if tb.Column("nope") != nil {
		t.Error("missing column should be nil")
	}
	if tb.ColumnIndex("price") != 2 {
		t.Errorf("ColumnIndex: %d", tb.ColumnIndex("price"))
	}
	if tb.ColumnIndex("nope") != -1 {
		t.Error("missing ColumnIndex should be -1")
	}
}

func TestTableRowWidth(t *testing.T) {
	tb := sampleTable(t)
	if got := tb.RowWidth(); got != 32 {
		t.Errorf("RowWidth = %d, want 32", got)
	}
}

func TestNewTableRejectsDuplicatesAndBadPK(t *testing.T) {
	cols := []Column{{Name: "a", Type: TypeInt, AvgWidth: 4}, {Name: "A", Type: TypeInt, AvgWidth: 4}}
	if _, err := NewTable("t", 1, cols, nil); err == nil {
		t.Error("duplicate columns (case-insensitive) should fail")
	}
	cols = []Column{{Name: "a", Type: TypeInt, AvgWidth: 4}}
	if _, err := NewTable("t", 1, cols, []string{"missing"}); err == nil {
		t.Error("unknown primary key column should fail")
	}
}

func TestDatabaseRegistry(t *testing.T) {
	db := NewDatabase("test")
	tb := sampleTable(t)
	if err := db.AddTable(tb); err != nil {
		t.Fatalf("AddTable: %v", err)
	}
	if err := db.AddTable(tb); err == nil {
		t.Error("duplicate table should fail")
	}
	if db.Table("ITEMS") == nil {
		t.Error("table lookup should be case-insensitive")
	}
	if db.TotalRows() != 1000 {
		t.Errorf("TotalRows: %d", db.TotalRows())
	}
	if db.DataSize() != 1000*32 {
		t.Errorf("DataSize: %d", db.DataSize())
	}
	if len(db.Tables()) != 1 {
		t.Errorf("Tables: %d", len(db.Tables()))
	}
}

func TestDatabaseValidate(t *testing.T) {
	db := NewDatabase("test")
	bad, err := NewTable("bad", 10, []Column{{Name: "a", Type: TypeInt, AvgWidth: 0}}, nil)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	db.MustAddTable(bad)
	if err := db.Validate(); err == nil {
		t.Error("zero-width column should fail validation")
	}
}

func TestFixedWidth(t *testing.T) {
	if FixedWidth(TypeInt) != 4 || FixedWidth(TypeFloat) != 8 || FixedWidth(TypeDate) != 4 {
		t.Error("fixed widths wrong")
	}
	if FixedWidth(TypeVarchar) != 0 {
		t.Error("varchar should have no fixed width")
	}
}

package catalog

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"math"
	"sync"
)

// fingerprintState caches the computed catalog fingerprint. Databases
// are built once (by a generator or DDL loader) and then only read, so
// the hash is computed lazily on first use and reused afterwards.
type fingerprintState struct {
	once sync.Once
	fp   string
}

// Fingerprint returns a stable digest of the database's schema and
// statistics: table names, row counts, column types/widths, primary
// keys, heap markers, and the full per-column statistics (distinct
// counts, min/max, histogram buckets). Two databases with the same
// fingerprint are indistinguishable to the optimizer, so any quantity
// derived purely from (catalog, statement) — per-statement optimal
// fragments, what-if costs — may be shared between them. This is the
// key that makes cross-tenant cache sharing correctness-preserving: a
// fleet tenant only ever reuses results computed over an identical
// catalog.
//
// The fingerprint is computed on first call and cached; the catalog
// must be fully built (tables and statistics attached) before the
// first call.
func (db *Database) Fingerprint() string {
	db.fpState.once.Do(func() {
		h := sha256.New()
		writeString(h, db.Name)
		for _, t := range db.Tables() {
			writeString(h, t.Name)
			writeInt64(h, t.Rows)
			writeBool(h, t.Heap)
			for _, k := range t.PrimaryKey {
				writeString(h, k)
			}
			for _, c := range t.Columns {
				writeString(h, c.Name)
				writeInt64(h, int64(c.Type))
				writeInt64(h, int64(c.AvgWidth))
				writeStats(h, c.Stats)
			}
		}
		db.fpState.fp = hex.EncodeToString(h.Sum(nil)[:16])
	})
	return db.fpState.fp
}

func writeStats(w io.Writer, s *ColumnStats) {
	if s == nil {
		writeString(w, "-")
		return
	}
	writeInt64(w, s.Distinct)
	writeFloat(w, s.Min)
	writeFloat(w, s.Max)
	writeBool(w, s.Numeric)
	if h := s.Histogram; h != nil {
		for _, b := range h.Bounds {
			writeFloat(w, b)
		}
		for _, f := range h.Fracs {
			writeFloat(w, f)
		}
		for _, d := range h.DistinctIn {
			writeFloat(w, d)
		}
	}
}

func writeString(w io.Writer, s string) {
	writeInt64(w, int64(len(s)))
	io.WriteString(w, s)
}

func writeInt64(w io.Writer, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	w.Write(buf[:])
}

func writeFloat(w io.Writer, v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	w.Write(buf[:])
}

func writeBool(w io.Writer, b bool) {
	if b {
		io.WriteString(w, "1")
	} else {
		io.WriteString(w, "0")
	}
}

// ShortFingerprint is the first 8 hex digits of Fingerprint, for log
// lines and status payloads.
func (db *Database) ShortFingerprint() string {
	fp := db.Fingerprint()
	if len(fp) > 8 {
		return fp[:8]
	}
	return fp
}

package catalog

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// DefaultHistogramBuckets is the number of buckets built per column.
const DefaultHistogramBuckets = 32

// Default selectivities used when statistics cannot answer a predicate;
// these mirror the classical System-R magic constants.
const (
	DefaultEqSelectivity    = 0.005
	DefaultRangeSelectivity = 1.0 / 3.0
	DefaultLikeSelectivity  = 0.10
	DefaultOtherSelectivity = 1.0 / 3.0
)

// ColumnStats summarizes a column's value distribution. Numeric and date
// columns carry min/max and an equi-depth histogram; varchar columns carry
// distinct counts only (equality selectivity) and fall back to defaults for
// range predicates.
type ColumnStats struct {
	Distinct  int64
	Min, Max  float64 // meaningful for numeric/date columns only
	Numeric   bool
	Histogram *Histogram // nil when not built (e.g. varchar)
}

// Validate checks internal consistency.
func (s *ColumnStats) Validate() error {
	if s.Distinct < 0 {
		return errors.New("negative distinct count")
	}
	if s.Numeric && s.Min > s.Max {
		return fmt.Errorf("min %g > max %g", s.Min, s.Max)
	}
	if s.Histogram != nil {
		return s.Histogram.Validate()
	}
	return nil
}

// EqSelectivity estimates the fraction of rows with column = v.
func (s *ColumnStats) EqSelectivity(v float64, isNumber bool) float64 {
	if s == nil {
		return DefaultEqSelectivity
	}
	if s.Numeric && isNumber && s.Histogram != nil {
		return clampSel(s.Histogram.EqFraction(v))
	}
	if s.Distinct > 0 {
		return clampSel(1 / float64(s.Distinct))
	}
	return DefaultEqSelectivity
}

// LtSelectivity estimates the fraction of rows with column < v (or <= v
// when inclusive is true).
func (s *ColumnStats) LtSelectivity(v float64, inclusive bool) float64 {
	if s == nil || !s.Numeric {
		return DefaultRangeSelectivity
	}
	if s.Histogram != nil {
		f := s.Histogram.LtFraction(v)
		if inclusive {
			f += s.Histogram.EqFraction(v)
		}
		return clampSel(f)
	}
	if s.Max <= s.Min {
		return DefaultRangeSelectivity
	}
	return clampSel((v - s.Min) / (s.Max - s.Min))
}

// GtSelectivity estimates the fraction of rows with column > v (or >= v).
func (s *ColumnStats) GtSelectivity(v float64, inclusive bool) float64 {
	lt := s.LtSelectivity(v, !inclusive)
	return clampSel(1 - lt)
}

// InSelectivity estimates the fraction matching an IN list of n constants.
func (s *ColumnStats) InSelectivity(n int) float64 {
	if s == nil || s.Distinct <= 0 {
		return clampSel(float64(n) * DefaultEqSelectivity)
	}
	return clampSel(float64(n) / float64(s.Distinct))
}

func clampSel(f float64) float64 {
	if math.IsNaN(f) || f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Histogram is an equi-depth histogram over numeric values. Bucket i spans
// (Bounds[i], Bounds[i+1]] with Fracs[i] of the rows and DistinctIn[i]
// distinct values; the overall minimum equals Bounds[0] and is included in
// bucket 0.
type Histogram struct {
	Bounds     []float64
	Fracs      []float64
	DistinctIn []float64
}

// BuildHistogram builds an equi-depth histogram with at most buckets
// buckets from a sample of values. It returns nil for an empty sample.
func BuildHistogram(sample []float64, buckets int) *Histogram {
	if len(sample) == 0 || buckets <= 0 {
		return nil
	}
	vals := make([]float64, len(sample))
	copy(vals, sample)
	sort.Float64s(vals)
	n := len(vals)
	if buckets > n {
		buckets = n
	}
	h := &Histogram{}
	h.Bounds = append(h.Bounds, vals[0])
	start := 0
	for b := 0; b < buckets; b++ {
		end := (b + 1) * n / buckets
		if end <= start {
			continue
		}
		// Extend the bucket so no value straddles a boundary.
		for end < n && vals[end] == vals[end-1] {
			end++
		}
		if end > n {
			end = n
		}
		seg := vals[start:end]
		h.Bounds = append(h.Bounds, seg[len(seg)-1])
		h.Fracs = append(h.Fracs, float64(len(seg))/float64(n))
		h.DistinctIn = append(h.DistinctIn, float64(countDistinctSorted(seg)))
		start = end
		if start >= n {
			break
		}
	}
	return h
}

func countDistinctSorted(vals []float64) int {
	d := 0
	for i, v := range vals {
		if i == 0 || vals[i-1] != v {
			d++
		}
	}
	return d
}

// Validate checks structural invariants.
func (h *Histogram) Validate() error {
	if len(h.Bounds) != len(h.Fracs)+1 || len(h.Fracs) != len(h.DistinctIn) {
		return errors.New("histogram: inconsistent lengths")
	}
	total := 0.0
	for i, f := range h.Fracs {
		if f < 0 {
			return errors.New("histogram: negative bucket fraction")
		}
		if h.Bounds[i] > h.Bounds[i+1] {
			return errors.New("histogram: bounds not sorted")
		}
		if h.DistinctIn[i] < 1 {
			return errors.New("histogram: bucket with no distinct values")
		}
		total += f
	}
	if math.Abs(total-1) > 1e-6 {
		return fmt.Errorf("histogram: fractions sum to %g, want 1", total)
	}
	return nil
}

// EqFraction estimates the fraction of rows equal to v, assuming uniformity
// among a bucket's distinct values.
func (h *Histogram) EqFraction(v float64) float64 {
	if len(h.Fracs) == 0 || v < h.Bounds[0] || v > h.Bounds[len(h.Bounds)-1] {
		return 0
	}
	b := h.bucketOf(v)
	return h.Fracs[b] / h.DistinctIn[b]
}

// LtFraction estimates the fraction of rows strictly below v using linear
// interpolation within the containing bucket.
func (h *Histogram) LtFraction(v float64) float64 {
	if len(h.Fracs) == 0 {
		return DefaultRangeSelectivity
	}
	if v <= h.Bounds[0] {
		return 0
	}
	last := h.Bounds[len(h.Bounds)-1]
	if v > last {
		return 1
	}
	b := h.bucketOf(v)
	f := 0.0
	for i := 0; i < b; i++ {
		f += h.Fracs[i]
	}
	lo, hi := h.Bounds[b], h.Bounds[b+1]
	if hi > lo {
		f += h.Fracs[b] * (v - lo) / (hi - lo)
	}
	return clampSel(f)
}

// bucketOf returns the index of the bucket containing v; v must lie within
// the histogram's range.
func (h *Histogram) bucketOf(v float64) int {
	// Find first bound >= v; value v belongs to the bucket ending at that
	// bound (bucket i spans (Bounds[i], Bounds[i+1]]).
	i := sort.SearchFloat64s(h.Bounds[1:], v)
	if i >= len(h.Fracs) {
		i = len(h.Fracs) - 1
	}
	return i
}

// TotalDistinct estimates the number of distinct values covered.
func (h *Histogram) TotalDistinct() float64 {
	d := 0.0
	for _, x := range h.DistinctIn {
		d += x
	}
	return d
}

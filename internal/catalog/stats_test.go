package catalog

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func uniformSample(r *rand.Rand, n int, lo, hi float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + r.Float64()*(hi-lo)
	}
	return out
}

func TestBuildHistogramValidates(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	h := BuildHistogram(uniformSample(r, 5000, 0, 100), 32)
	if h == nil {
		t.Fatal("nil histogram")
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestBuildHistogramEmptyAndTiny(t *testing.T) {
	if BuildHistogram(nil, 32) != nil {
		t.Error("empty sample should yield nil")
	}
	h := BuildHistogram([]float64{5}, 32)
	if h == nil || h.Validate() != nil {
		t.Error("single-value histogram should validate")
	}
	if got := h.EqFraction(5); got != 1 {
		t.Errorf("EqFraction(5) = %g, want 1", got)
	}
}

func TestHistogramLtFractionEndpoints(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	h := BuildHistogram(uniformSample(r, 2000, 10, 20), 16)
	if got := h.LtFraction(10); got != 0 {
		t.Errorf("LtFraction(min) = %g, want 0", got)
	}
	if got := h.LtFraction(25); got != 1 {
		t.Errorf("LtFraction(beyond max) = %g, want 1", got)
	}
	mid := h.LtFraction(15)
	if mid < 0.35 || mid > 0.65 {
		t.Errorf("LtFraction(midpoint) = %g, expected near 0.5 for uniform data", mid)
	}
}

// Property: LtFraction is monotone non-decreasing and stays in [0,1].
func TestHistogramLtFractionMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	h := BuildHistogram(uniformSample(r, 3000, -50, 50), 24)
	cfg := &quick.Config{MaxCount: 500, Values: func(vals []reflect.Value, r *rand.Rand) {
		a := -60 + r.Float64()*130
		b := -60 + r.Float64()*130
		if a > b {
			a, b = b, a
		}
		vals[0], vals[1] = reflect.ValueOf(a), reflect.ValueOf(b)
	}}
	if err := quick.Check(func(a, b float64) bool {
		fa, fb := h.LtFraction(a), h.LtFraction(b)
		return fa >= 0 && fb <= 1 && fa <= fb+1e-9
	}, cfg); err != nil {
		t.Error(err)
	}
}

// Property: EqFraction is non-negative and bounded by the containing
// bucket's fraction.
func TestHistogramEqFractionBounded(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	sample := uniformSample(r, 2000, 0, 1000)
	// Make values discrete so equality matches occur.
	for i := range sample {
		sample[i] = math.Round(sample[i])
	}
	h := BuildHistogram(sample, 16)
	for v := 0.0; v <= 1000; v += 37 {
		f := h.EqFraction(v)
		if f < 0 || f > 1 {
			t.Fatalf("EqFraction(%g) = %g out of range", v, f)
		}
	}
	if h.EqFraction(-5) != 0 || h.EqFraction(2000) != 0 {
		t.Error("out-of-range equality should be 0")
	}
}

// Property: bucket fractions sum to 1 and distinct counts are plausible.
func TestHistogramMassConservation(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 100 + r.Intn(5000)
		sample := uniformSample(r, n, 0, float64(1+r.Intn(10000)))
		h := BuildHistogram(sample, 1+r.Intn(64))
		if h == nil {
			t.Fatal("nil histogram")
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sorted := append([]float64(nil), sample...)
		sort.Float64s(sorted)
		trueDistinct := 1
		for i := 1; i < len(sorted); i++ {
			if sorted[i] != sorted[i-1] {
				trueDistinct++
			}
		}
		if got := h.TotalDistinct(); math.Abs(got-float64(trueDistinct)) > 1 {
			t.Errorf("seed %d: TotalDistinct %g != %d", seed, got, trueDistinct)
		}
	}
}

func TestColumnStatsSelectivities(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	sample := uniformSample(r, 4000, 0, 100)
	s := &ColumnStats{
		Distinct: 100, Min: 0, Max: 100, Numeric: true,
		Histogram: BuildHistogram(sample, 32),
	}
	if got := s.LtSelectivity(50, false); got < 0.4 || got > 0.6 {
		t.Errorf("LtSelectivity(50) = %g", got)
	}
	if got := s.GtSelectivity(50, false); got < 0.4 || got > 0.6 {
		t.Errorf("GtSelectivity(50) = %g", got)
	}
	// lt + gt must cover everything (within the point mass at 50).
	lt := s.LtSelectivity(50, false)
	gt := s.GtSelectivity(50, true)
	if math.Abs(lt+gt-1) > 1e-9 {
		t.Errorf("lt + ge = %g, want 1", lt+gt)
	}
}

func TestColumnStatsFallbacks(t *testing.T) {
	var nilStats *ColumnStats
	if got := nilStats.EqSelectivity(1, true); got != DefaultEqSelectivity {
		t.Errorf("nil eq: %g", got)
	}
	if got := nilStats.LtSelectivity(1, true); got != DefaultRangeSelectivity {
		t.Errorf("nil lt: %g", got)
	}
	str := &ColumnStats{Distinct: 40}
	if got := str.EqSelectivity(0, false); math.Abs(got-1.0/40) > 1e-12 {
		t.Errorf("string eq: %g", got)
	}
	if got := str.InSelectivity(4); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("in: %g", got)
	}
}

func TestColumnStatsValidate(t *testing.T) {
	bad := &ColumnStats{Distinct: -1}
	if bad.Validate() == nil {
		t.Error("negative distinct should fail")
	}
	bad2 := &ColumnStats{Distinct: 1, Numeric: true, Min: 10, Max: 0}
	if bad2.Validate() == nil {
		t.Error("min > max should fail")
	}
}

func TestInSelectivityClamped(t *testing.T) {
	s := &ColumnStats{Distinct: 3}
	if got := s.InSelectivity(10); got != 1 {
		t.Errorf("oversized IN list should clamp to 1, got %g", got)
	}
}

package core

import (
	"fmt"
	"sync"

	"repro/internal/physical"
)

// RequestCache memoizes the per-statement optimal configuration fragments
// derived by the §2 instrumented optimization. The fragment for a
// statement depends only on the database, the statement text, and whether
// views are enabled — so across successive tuning sessions over an
// evolving workload (the online retuning path), statements that were
// already seen can reuse their fragment and cost zero additional
// optimizer calls.
//
// A RequestCache is safe for concurrent use and may be shared by any
// number of sessions over the same database.
type RequestCache struct {
	mu    sync.Mutex
	frags map[string]*fragEntry

	hits, misses           int64
	callsSaved, callsSpent int64
}

// fragEntry is one cached fragment plus the optimizer calls that were
// spent deriving it (the amount a cache hit saves).
type fragEntry struct {
	cfg   *physical.Configuration
	calls int64
}

// NewRequestCache returns an empty cache.
func NewRequestCache() *RequestCache {
	return &RequestCache{frags: map[string]*fragEntry{}}
}

// CacheStats is a point-in-time snapshot of cache activity.
type CacheStats struct {
	Entries int
	Hits    int64
	Misses  int64
	// CallsSaved is the cumulative optimizer calls avoided by hits;
	// CallsSpent the calls invested building the cached fragments.
	CallsSaved int64
	CallsSpent int64
}

// Stats returns a snapshot of the cache counters.
func (c *RequestCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:    len(c.frags),
		Hits:       c.hits,
		Misses:     c.misses,
		CallsSaved: c.callsSaved,
		CallsSpent: c.callsSpent,
	}
}

// Len returns the number of cached fragments.
func (c *RequestCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frags)
}

// lookup returns an independent copy of the cached fragment for key.
func (c *RequestCache) lookup(key string) (*physical.Configuration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.frags[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.callsSaved += e.calls
	return deepCloneConfig(e.cfg), true
}

// store records the fragment derived for key at a cost of calls optimizer
// invocations. The fragment is copied, so the caller may keep mutating it.
func (c *RequestCache) store(key string, frag *physical.Configuration, calls int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.frags[key]; ok {
		return
	}
	c.frags[key] = &fragEntry{cfg: deepCloneConfig(frag), calls: calls}
	c.callsSpent += calls
}

// deepCloneConfig copies a configuration down to its indexes and views so
// no structure is shared across sessions (sessions may set estimated
// cardinalities on views they own).
func deepCloneConfig(cfg *physical.Configuration) *physical.Configuration {
	out := physical.NewConfiguration()
	for _, v := range cfg.Views() {
		out.AddView(v.Clone())
	}
	for _, ix := range cfg.Indexes() {
		out.AddIndex(ix.Clone())
	}
	return out
}

// cacheKey identifies one statement's fragment: same database, same
// statement text, same view setting → same optimal fragment.
func (t *Tuner) cacheKey(tq *TunedQuery) string {
	return fmt.Sprintf("%s|noviews=%v|%s", t.DB.Name, t.Options.NoViews, tq.Query.SQL)
}

package core

import (
	"fmt"
	"sync"

	"repro/internal/physical"
)

// RequestCache memoizes the per-statement optimal configuration fragments
// derived by the §2 instrumented optimization. The fragment for a
// statement depends only on the catalog (schema + statistics, captured
// by its fingerprint), the statement text, and whether views are
// enabled — so across successive tuning sessions over an evolving
// workload (the online retuning path), statements that were already
// seen can reuse their fragment and cost zero additional optimizer
// calls.
//
// Because the key includes the catalog fingerprint, one RequestCache
// may be shared by sessions over *different* databases — the fleet
// case, where N tenants tune concurrently: tenants with identical
// catalogs and overlapping statement shapes reuse each other's
// fragments, while tenants whose statistics differ never collide.
// Lookups carry the session's origin (Options.CacheOrigin, typically a
// tenant ID), so hits on entries stored by a different origin are
// counted separately as shared hits — the measurable proof of
// cross-tenant reuse.
//
// A RequestCache is safe for concurrent use by any number of sessions.
type RequestCache struct {
	mu    sync.Mutex
	frags map[string]*fragEntry

	hits, misses           int64
	sharedHits             int64
	callsSaved, callsSpent int64
	origins                map[string]*OriginStats
}

// fragEntry is one cached fragment plus the optimizer calls that were
// spent deriving it (the amount a cache hit saves) and the origin that
// stored it (for shared-hit attribution).
type fragEntry struct {
	cfg    *physical.Configuration
	calls  int64
	origin string
}

// NewRequestCache returns an empty cache.
func NewRequestCache() *RequestCache {
	return &RequestCache{
		frags:   map[string]*fragEntry{},
		origins: map[string]*OriginStats{},
	}
}

// OriginStats attributes cache activity to one origin (tenant).
// SharedHits counts this origin's hits on entries another origin
// stored — the cross-tenant reuse an isolated process could never get.
type OriginStats struct {
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	SharedHits int64 `json:"shared_hits"`
}

// CacheStats is a point-in-time snapshot of cache activity.
type CacheStats struct {
	Entries int   `json:"entries"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	// SharedHits counts hits whose entry was stored by a different
	// origin than the one looking it up (cross-tenant reuse).
	SharedHits int64 `json:"shared_hits"`
	// CallsSaved is the cumulative optimizer calls avoided by hits;
	// CallsSpent the calls invested building the cached fragments.
	CallsSaved int64 `json:"calls_saved"`
	CallsSpent int64 `json:"calls_spent"`
	// Origins breaks hits/misses/shared hits down per origin; empty
	// origins (single-tenant sessions) accumulate under "".
	Origins map[string]OriginStats `json:"origins,omitempty"`
}

// Stats returns a snapshot of the cache counters.
func (c *RequestCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	origins := make(map[string]OriginStats, len(c.origins))
	for k, v := range c.origins {
		origins[k] = *v
	}
	return CacheStats{
		Entries:    len(c.frags),
		Hits:       c.hits,
		Misses:     c.misses,
		SharedHits: c.sharedHits,
		CallsSaved: c.callsSaved,
		CallsSpent: c.callsSpent,
		Origins:    origins,
	}
}

// originLocked returns the per-origin accounting slot. Callers hold
// c.mu.
func (c *RequestCache) originLocked(origin string) *OriginStats {
	os, ok := c.origins[origin]
	if !ok {
		os = &OriginStats{}
		c.origins[origin] = os
	}
	return os
}

// Len returns the number of cached fragments.
func (c *RequestCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frags)
}

// lookup returns an independent copy of the cached fragment for key,
// attributing the hit or miss to origin. A hit on an entry stored by a
// different origin additionally counts as a shared hit.
func (c *RequestCache) lookup(key, origin string) (*physical.Configuration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	os := c.originLocked(origin)
	e, ok := c.frags[key]
	if !ok {
		c.misses++
		os.Misses++
		return nil, false
	}
	c.hits++
	os.Hits++
	if e.origin != origin {
		c.sharedHits++
		os.SharedHits++
	}
	c.callsSaved += e.calls
	return deepCloneConfig(e.cfg), true
}

// store records the fragment derived for key at a cost of calls optimizer
// invocations, tagged with the storing origin. The fragment is copied,
// so the caller may keep mutating it.
func (c *RequestCache) store(key string, frag *physical.Configuration, calls int64, origin string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.frags[key]; ok {
		return
	}
	c.frags[key] = &fragEntry{cfg: deepCloneConfig(frag), calls: calls, origin: origin}
	c.callsSpent += calls
}

// deepCloneConfig copies a configuration down to its indexes and views so
// no structure is shared across sessions (sessions may set estimated
// cardinalities on views they own).
func deepCloneConfig(cfg *physical.Configuration) *physical.Configuration {
	out := physical.NewConfiguration()
	for _, v := range cfg.Views() {
		out.AddView(v.Clone())
	}
	for _, ix := range cfg.Indexes() {
		// NewIndex rather than Clone: the rebuilt copy carries a sealed
		// identity cache, so configurations assembled from cached fragments
		// keep allocation-free ID lookups on the search hot path.
		out.AddIndex(physical.NewIndex(ix.Table, ix.Keys, ix.Suffix, ix.Clustered))
	}
	return out
}

// cacheKey identifies one statement's fragment: same catalog (schema +
// statistics, via the fingerprint), same statement text, same view
// setting → same optimal fragment. Keying on the fingerprint rather
// than the database name is what lets a fleet of tenants share one
// cache safely: two tenants named "tpch" at different scale factors
// hash apart, while identical catalogs hash together and reuse.
func (t *Tuner) cacheKey(tq *TunedQuery) string {
	return fmt.Sprintf("%s|noviews=%v|%s", t.DB.Fingerprint(), t.Options.NoViews, tq.Query.SQL)
}

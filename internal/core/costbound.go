package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/plan"
	"repro/internal/sqlx"
	"repro/internal/storage"
)

// scaledEstimateMargin pads linearly scaled access-cost estimates so the
// §3.3.2 bound stays an upper bound despite per-access cost floors the
// scaling cannot see.
const scaledEstimateMargin = 1.15

// Delta is the estimated effect of one transformation: an upper bound on
// the workload cost increase (which can be negative for update workloads)
// and the exact storage saving.
type Delta struct {
	// DT is the §3.3.2 upper bound on cost increase in time units.
	DT float64
	// DS is the space saved in bytes (Space(C) − Space(C')).
	DS int64
}

// BoundDelta computes (ΔT, ΔS) for applying tr to ec.Config without
// re-optimizing any workload query (§3.3.2). The only optimizer calls it
// may trigger are one-time cached CBV computations for view removals.
// Merged views in tr must already carry estimated cardinalities.
func (t *Tuner) BoundDelta(ec *EvaluatedConfig, tr *physical.Transformation) (Delta, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.boundDelta(ec, tr)
}

// penaltyPhase maps a transformation kind to its profiler phase name,
// precomputed so the per-candidate hot path never concatenates strings.
var penaltyPhase = func() (a [physical.TransRemoveView + 1]string) {
	for k := range a {
		a[k] = "search/penalty/" + physical.TransKind(k).String()
	}
	return a
}()

func penaltyPhaseName(k physical.TransKind) string {
	if int(k) < len(penaltyPhase) {
		return penaltyPhase[k]
	}
	return "search/penalty/" + k.String()
}

func (t *Tuner) boundDelta(ec *EvaluatedConfig, tr *physical.Transformation) (Delta, error) {
	if p := t.Options.Profile; p.Enabled() {
		defer p.Since(penaltyPhaseName(tr.Kind), time.Now())
	}
	cfgAfter := tr.Apply(ec.Config)
	sizer := t.Opt.Sizer()
	d := Delta{DS: ec.SizeBytes - sizer.ConfigBytes(cfgAfter)}

	// Removed structures, tracked in stack-backed slices: transformations
	// remove at most two indexes and two views directly, so the maps this
	// used to allocate per candidate were pure overhead (view-removal
	// cascades may grow past the arrays, which append handles).
	var remIdxArr [2]string
	removedIdx := remIdxArr[:0]
	if tr.I1 != nil {
		if id := tr.I1.ID(); !cfgAfter.HasIndex(id) {
			removedIdx = append(removedIdx, id)
		}
	}
	if tr.I2 != nil {
		if id := tr.I2.ID(); !cfgAfter.HasIndex(id) {
			removedIdx = append(removedIdx, id)
		}
	}
	var remViewArr [2]string
	removedViews := remViewArr[:0]
	for _, vn := range tr.RemovedViewNames() {
		if cfgAfter.View(vn) == nil {
			removedViews = append(removedViews, vn)
			// Cascaded view indexes count as removed too.
			for _, ix := range ec.Config.IndexesOn(vn) {
				removedIdx = append(removedIdx, ix.ID())
			}
		}
	}
	if len(removedIdx) == 0 && len(removedViews) == 0 {
		return d, nil
	}
	contains := func(list []string, s string) bool {
		for _, x := range list {
			if x == s {
				return true
			}
		}
		return false
	}

	for i, tq := range t.Queries {
		res := ec.Results[i]
		w := tq.Query.Weight
		if res.Plan != nil {
			for _, u := range res.Plan.Usages {
				if !contains(removedIdx, u.Index.ID()) && !(u.ViewName != "" && contains(removedViews, u.ViewName)) {
					continue
				}
				inc, err := t.usageBound(ec, cfgAfter, tr, u)
				if err != nil {
					return Delta{}, err
				}
				d.DT += w * inc
			}
		}
		// Update-shell deltas are exact and optimizer-free.
		if tq.Bound.IsUpdate() {
			newShell := t.Opt.UpdateShellCost(tq.Bound, cfgAfter, res.AffectedRows)
			d.DT += w * (newShell - res.UpdateCost)
		}
	}
	return d, nil
}

// usageBound bounds the cost increase of one index usage when its index
// disappears under tr (§3.3.2's per-usage procedure).
func (t *Tuner) usageBound(ec *EvaluatedConfig, cfgAfter *physical.Configuration, tr *physical.Transformation, u *plan.IndexUsage) (float64, error) {
	old := u.AccessCost.Total()
	switch tr.Kind {
	case physical.TransMergeIndexes, physical.TransPrefixIndex, physical.TransPromoteClustered:
		return t.replacementCost(ec, cfgAfter, u, tr.NewIdx[0]) - old, nil
	case physical.TransSplitIndexes:
		common, r1, r2 := physical.SplitIndexes(tr.I1, tr.I2)
		if common == nil {
			return 0, nil
		}
		resid := r1
		if u.Index.ID() == tr.I2.ID() {
			resid = r2
		}
		newCost := t.replacementCost(ec, cfgAfter, u, common)
		if resid != nil {
			newCost += t.replacementCost(ec, cfgAfter, u, resid)
			// Rid intersection of the two partial results.
			newCost += t.Opt.Model().CPUHash * 2 * u.Rows
		}
		return newCost - old, nil
	case physical.TransRemoveIndex:
		return t.removalBound(ec, cfgAfter, u) - old, nil
	case physical.TransMergeViews:
		return t.viewMergeBound(ec, cfgAfter, tr, u) - old, nil
	case physical.TransRemoveView:
		cbv, err := t.costFromBase(tr.V1)
		if err != nil {
			return 0, err
		}
		return cbv + t.viewScanCost(tr.V1) - old, nil
	default:
		return 0, nil
	}
}

// replacementCost bounds the cost of re-answering u's request with ir
// (§3.3.2): scans scale linearly with size; seeks scale with the shared
// key prefix's selectivity and size; missing columns add rid lookups;
// incompatible orders add a sort.
func (t *Tuner) replacementCost(ec *EvaluatedConfig, cfgAfter *physical.Configuration, u *plan.IndexUsage, ir *physical.Index) float64 {
	sizer := t.Opt.Sizer()
	model := t.Opt.Model()
	szI := float64(sizer.IndexBytes(u.Index, ec.Config))
	szR := float64(sizer.IndexBytes(ir, cfgAfter))
	if szI <= 0 {
		szI = 1
	}
	old := u.AccessCost.Total()
	var newCost float64
	if !u.Seek {
		newCost = old * szR / szI
	} else {
		// Longest common column prefix between the seek columns used on I
		// and IR's keys.
		n := 0
		for n < len(u.SeekCols) && n < len(ir.Keys) && strings.EqualFold(u.SeekCols[n], ir.Keys[n]) {
			n++
		}
		sIR := 1.0
		for i := 0; i < n && i < len(u.SeekColSels); i++ {
			sIR *= u.SeekColSels[i]
		}
		sI := u.Selectivity
		if sI <= 0 {
			sI = 1e-9
		}
		newCost = old * (sIR * szR) / (sI * szI)
	}
	// Linear scaling misses per-access floors (B-tree descent, minimum
	// page touches); pad the estimate so it stays an upper bound.
	newCost = newCost*scaledEstimateMargin + float64(t.Opt.Sizer().IndexHeight(ir, cfgAfter))*model.RandPage
	// Rid lookups when IR cannot provide every needed column.
	if !ir.Clustered && !ir.Covers(u.NeededCols) {
		rows, pages := t.primaryShape(ec, cfgAfter, ir.Table)
		newCost += model.RidLookupCost(rows, pages, u.Rows).Total()
	}
	// Sort when the exploited order is incompatible with IR's keys.
	if len(u.OrderCols) > 0 && u.Index.SharedKeyPrefixLen(ir) < len(u.OrderCols) {
		newCost += model.SortCost(u.Rows, u.Rows*64/storage.PageSize).Total()
	}
	return newCost
}

// removalBound bounds the cost of losing u.Index entirely: the cheapest
// replacement among the surviving indexes on the same relation, or a
// primary-structure scan.
func (t *Tuner) removalBound(ec *EvaluatedConfig, cfgAfter *physical.Configuration, u *plan.IndexUsage) float64 {
	best := t.primaryScanCost(ec, cfgAfter, u)
	for _, ir := range cfgAfter.IndexesOn(u.Index.Table) {
		if c := t.replacementCost(ec, cfgAfter, u, ir); c < best {
			best = c
		}
	}
	return best
}

// primaryScanCost is the fallback of scanning the relation's primary
// structure (clustered index or heap) plus any required sort.
func (t *Tuner) primaryScanCost(ec *EvaluatedConfig, cfgAfter *physical.Configuration, u *plan.IndexUsage) float64 {
	model := t.Opt.Model()
	rows, pages := t.primaryShape(ec, cfgAfter, u.Index.Table)
	// Scan CPU plus one residual-filter pass (the scan plan re-applies
	// the predicates the original seek evaluated implicitly).
	cost := float64(pages)*model.SeqPage + 2*float64(rows)*model.CPURow
	if len(u.OrderCols) > 0 {
		cost += model.SortCost(u.Rows, u.Rows*64/storage.PageSize).Total()
	}
	return cost
}

// primaryShape returns the row and page counts of a relation's primary
// structure under cfgAfter.
func (t *Tuner) primaryShape(ec *EvaluatedConfig, cfgAfter *physical.Configuration, table string) (int64, int64) {
	sizer := t.Opt.Sizer()
	if cl := cfgAfter.ClusteredOn(table); cl != nil {
		return sizer.IndexRows(cl, cfgAfter), sizer.IndexLeafPages(cl, cfgAfter)
	}
	if v := cfgAfter.View(table); v != nil {
		return v.EstRows, storage.HeapPages(v.EstRows, v.RowWidth())
	}
	tb := t.DB.Table(table)
	if tb == nil {
		return 1, 1
	}
	return tb.Rows, storage.HeapPages(tb.Rows, tb.RowWidth())
}

// viewMergeBound bounds the cost of answering u (an access to an index on
// V1 or V2) with the corresponding promoted index on VM, adding the
// compensating filter and group-by operations the rewriting needs.
func (t *Tuner) viewMergeBound(ec *EvaluatedConfig, cfgAfter *physical.Configuration, tr *physical.Transformation, u *plan.IndexUsage) float64 {
	model := t.Opt.Model()
	src := tr.V1
	if u.ViewName == tr.V2.Name {
		src = tr.V2
	}
	ir := physical.PromoteIndexToView(u.Index, src, tr.VM)
	if ir == nil {
		// The index could not be promoted: fall back to the clustered
		// index of the merged view.
		if cl := cfgAfter.ClusteredOn(tr.VM.Name); cl != nil {
			ir = cl
		} else {
			// Worst case: treat like view removal.
			cbv, err := t.costFromBase(src)
			if err != nil {
				cbv = u.AccessCost.Total() * 10
			}
			return cbv + t.viewScanCost(src)
		}
	}
	newCost := t.replacementCost(ec, cfgAfter, u, ir)
	// Rows surviving in VM that correspond to this access: scale by the
	// cardinality ratio (VM is a superset of V1/V2 rows).
	scaledRows := u.Rows
	if src.EstRows > 0 && tr.VM.EstRows > src.EstRows {
		scaledRows = u.Rows * float64(tr.VM.EstRows) / float64(src.EstRows)
	}
	// Compensating filter for predicates VM no longer applies (widened or
	// dropped ranges, dropped joins, dropped other conjuncts).
	if len(src.Ranges) > 0 || len(src.Joins) != len(tr.VM.Joins) || len(src.Others) != len(tr.VM.Others) {
		newCost += model.CPURow * scaledRows
	}
	// Compensating group-by when the grouping changed.
	if !sameGrouping(src, tr.VM) {
		newCost += model.HashAggCost(scaledRows).Total()
	}
	return newCost
}

func sameGrouping(a, b *physical.View) bool {
	if len(a.GroupBy) != len(b.GroupBy) {
		return false
	}
	for _, g := range a.GroupBy {
		found := false
		for _, h := range b.GroupBy {
			if g == h {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// viewScanCost is the cost of scanning the view's rows once (the implied
// plan after view removal replaces each index usage with a scan of V).
func (t *Tuner) viewScanCost(v *physical.View) float64 {
	model := t.Opt.Model()
	pages := storage.HeapPages(v.EstRows, v.RowWidth())
	return float64(pages)*model.SeqPage + float64(v.EstRows)*model.CPURow
}

// costFromBase returns CBV: the cost of computing the view's definition
// under the base configuration (§3.3.2's view-removal bound), cached by
// view signature. The computation is singleflighted: when parallel
// penalty-estimation workers race for the same signature, exactly one
// optimizes the view and the rest wait on it, so the session's
// optimizer-call count matches the serial run.
func (t *Tuner) costFromBase(v *physical.View) (float64, error) {
	sig := v.Signature()
	t.cbvMu.Lock()
	e, ok := t.cbvCache[sig]
	if !ok {
		e = &cbvEntry{}
		t.cbvCache[sig] = e
	}
	t.cbvMu.Unlock()
	e.once.Do(func() { e.cost, e.err = t.computeCBV(v) })
	return e.cost, e.err
}

// computeCBV optimizes the view's definition under the base configuration.
func (t *Tuner) computeCBV(v *physical.View) (float64, error) {
	stmt, err := sqlx.Parse(v.SQL())
	if err != nil {
		return 0, fmt.Errorf("core: rendering view %s for CBV: %w", v.Name, err)
	}
	bound, err := optimizer.Bind(t.DB, stmt)
	if err != nil {
		return 0, fmt.Errorf("core: binding view %s for CBV: %w", v.Name, err)
	}
	p, err := t.Opt.Optimize(bound, t.Base)
	if err != nil {
		return 0, fmt.Errorf("core: optimizing view %s for CBV: %w", v.Name, err)
	}
	return p.Cost.Total(), nil
}

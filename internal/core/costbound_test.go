package core

import (
	"math/rand"
	"testing"

	"repro/internal/physical"
)

// TestBoundDeltaIsUpperBound validates the central §3.3.2 guarantee: the
// transformation cost bound, computed without re-optimizing, is an upper
// bound on the actual cost increase observed when the relaxed
// configuration is evaluated for real.
func TestBoundDeltaIsUpperBound(t *testing.T) {
	tn := tpchTuner(t, Options{NoViews: true})
	optCfg, err := tn.OptimalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	ec, err := tn.Evaluate(optCfg)
	if err != nil {
		t.Fatal(err)
	}
	trs := physical.Enumerate(optCfg, physical.EnumerateOptions{
		NoViews:    true,
		HeapTables: tn.heapTables,
	})
	if len(trs) == 0 {
		t.Fatal("no transformations to test")
	}
	rng := rand.New(rand.NewSource(5))
	rng.Shuffle(len(trs), func(i, j int) { trs[i], trs[j] = trs[j], trs[i] })
	if len(trs) > 40 {
		trs = trs[:40]
	}
	checked := 0
	for _, tr := range trs {
		d, err := tn.BoundDelta(ec, tr)
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		after, ok, err := tn.EvaluateIncremental(ec, tr.Apply(optCfg), tr.RemovedIndexIDs(), tr.RemovedViewNames(), 0)
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		if !ok {
			continue
		}
		actual := after.Cost - ec.Cost
		if actual > d.DT+1e-6+0.001*ec.Cost {
			t.Errorf("%s: actual increase %.3f exceeds bound %.3f", tr, actual, d.DT)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("too few transformations checked: %d", checked)
	}
}

// TestBoundDeltaWithViews exercises the view-merge and view-removal
// bounds the same way.
func TestBoundDeltaWithViews(t *testing.T) {
	tn := tpchTuner(t, Options{})
	optCfg, err := tn.OptimalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	ec, err := tn.Evaluate(optCfg)
	if err != nil {
		t.Fatal(err)
	}
	trs := physical.Enumerate(optCfg, physical.EnumerateOptions{
		HeapTables: tn.heapTables,
		WidthOf:    tn.viewWidthFn(),
	})
	var viewTrs []*physical.Transformation
	for _, tr := range trs {
		if tr.Kind == physical.TransMergeViews || tr.Kind == physical.TransRemoveView {
			if tr.VM != nil && tr.VM.EstRows == 0 {
				tr.VM.EstRows = tn.Opt.EstimateViewRows(tr.VM)
			}
			viewTrs = append(viewTrs, tr)
		}
	}
	if len(viewTrs) == 0 {
		t.Fatal("no view transformations enumerated")
	}
	rng := rand.New(rand.NewSource(11))
	rng.Shuffle(len(viewTrs), func(i, j int) { viewTrs[i], viewTrs[j] = viewTrs[j], viewTrs[i] })
	if len(viewTrs) > 25 {
		viewTrs = viewTrs[:25]
	}
	violations, checked := 0, 0
	for _, tr := range viewTrs {
		d, err := tn.BoundDelta(ec, tr)
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		after, ok, err := tn.EvaluateIncremental(ec, tr.Apply(optCfg), tr.RemovedIndexIDs(), tr.RemovedViewNames(), 0)
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		if !ok {
			continue
		}
		checked++
		actual := after.Cost - ec.Cost
		if actual > d.DT+1e-6+0.02*ec.Cost {
			violations++
			t.Logf("%s: actual %.3f > bound %.3f", tr, actual, d.DT)
		}
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
	// View bounds involve approximations (merged-view cardinalities,
	// compensation costs); allow a small violation rate but not a broken
	// estimator.
	if violations*5 > checked {
		t.Errorf("view bound violated too often: %d of %d", violations, checked)
	}
}

// TestBoundDeltaSpaceSavings: ΔS equals the measured size difference.
func TestBoundDeltaSpaceSavings(t *testing.T) {
	tn := tpchTuner(t, Options{NoViews: true})
	optCfg, err := tn.OptimalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	ec, err := tn.Evaluate(optCfg)
	if err != nil {
		t.Fatal(err)
	}
	trs := physical.Enumerate(optCfg, physical.EnumerateOptions{NoViews: true, HeapTables: tn.heapTables})
	for _, tr := range trs[:20] {
		d, err := tn.BoundDelta(ec, tr)
		if err != nil {
			t.Fatal(err)
		}
		after := tr.Apply(optCfg)
		want := ec.SizeBytes - tn.Opt.Sizer().ConfigBytes(after)
		if d.DS != want {
			t.Errorf("%s: ΔS = %d, want %d", tr, d.DS, want)
		}
	}
}

// TestCostFromBaseCached: CBV computations are cached by signature.
func TestCostFromBaseCached(t *testing.T) {
	tn := tpchTuner(t, Options{})
	optCfg, err := tn.OptimalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	views := optCfg.Views()
	if len(views) == 0 {
		t.Skip("no views in optimal configuration")
	}
	v := views[0]
	before := tn.Opt.Stats().OptimizeCalls
	c1, err := tn.costFromBase(v)
	if err != nil {
		t.Fatal(err)
	}
	mid := tn.Opt.Stats().OptimizeCalls
	c2, err := tn.costFromBase(v)
	if err != nil {
		t.Fatal(err)
	}
	after := tn.Opt.Stats().OptimizeCalls
	if c1 != c2 {
		t.Errorf("cached CBV differs: %g vs %g", c1, c2)
	}
	if mid == before {
		t.Error("first CBV should call the optimizer")
	}
	if after != mid {
		t.Error("second CBV should hit the cache")
	}
}

package core

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/physical"
)

// Explain-report sources: how the recommended configuration was reached.
const (
	explainSourceOptimal   = "optimal"    // the §2 optimal config fit (or no budget)
	explainSourceRelaxed   = "relaxed"    // a relaxation-chain configuration won
	explainSourceWarmStart = "warm-start" // the warm-start seed remained the incumbent
	explainSourceInitial   = "initial"    // nothing fit; fell back to the base design
)

// DecisionEvent is one transformation along the winning lineage that
// touched a structure.
type DecisionEvent struct {
	// Iteration is the relaxation step (1-based) at which the
	// transformation was accepted.
	Iteration int `json:"iteration"`
	// Action is the transformation kind ("merge-indexes", "remove-view", ...).
	Action string `json:"action"`
	// Detail is the transformation's human-readable form.
	Detail string `json:"detail"`
	// RealizedPenalty is the observed ΔT/ΔS of the step that applied it.
	RealizedPenalty float64 `json:"realized_penalty,omitempty"`
}

// StructureDecision explains the fate of one physical structure: why it
// is (or is not) part of the recommendation.
type StructureDecision struct {
	// ID identifies the structure (index ID or view name).
	ID string `json:"id"`
	// Kind is "index" or "view".
	Kind string `json:"kind"`
	// DemandedBy lists the workload statements whose §2 instrumented
	// optimization requested the structure.
	DemandedBy []string `json:"demanded_by,omitempty"`
	// Outcome is one of: kept, required, removed, merged, split,
	// prefixed, promoted, dropped, created.
	Outcome string `json:"outcome"`
	// Detail is a one-line human-readable justification.
	Detail string `json:"detail"`
	// Events lists every winning-lineage transformation that touched the
	// structure, in application order.
	Events []DecisionEvent `json:"events,omitempty"`
}

// ExplainReport is the per-structure decision log of a tuning session:
// for every structure of the optimal configuration (and every structure
// the relaxation introduced), which statements demanded it, which
// transformations touched it, and why its final state won. Building the
// report costs no optimizer calls — it only replays recorded lineage.
type ExplainReport struct {
	// Source says how the recommendation was reached (optimal, relaxed,
	// warm-start, or initial).
	Source string `json:"source"`
	// Winner is a one-line justification of the final configuration.
	Winner string `json:"winner"`
	// Steps is the number of relaxation steps on the winning lineage.
	Steps int `json:"relaxation_steps"`
	// Structures holds one decision per structure, sorted by kind then ID.
	Structures []StructureDecision `json:"structures"`
	// Calibration scores the session's §3.3.2 ΔT bounds against the
	// realized costs and reports the optimizer-call economy. Attached
	// by Tune once the search statistics are final; nil for reports
	// built outside a tuning session.
	Calibration *obs.CalibrationReport `json:"calibration,omitempty"`
}

// buildExplain reconstructs the winning lineage (root → bestNode) and
// derives a decision per structure by diffing the optimal configuration
// against the recommendation through the recorded transformations.
func (t *Tuner) buildExplain(res *Result, bestNode *searchNode, source string) *ExplainReport {
	var lineage []*searchNode
	for n := bestNode; n != nil && n.parent != nil; n = n.parent {
		lineage = append(lineage, n)
	}
	for i, j := 0, len(lineage)-1; i < j; i, j = i+1, j-1 {
		lineage[i], lineage[j] = lineage[j], lineage[i]
	}

	res.Lineage = res.Lineage[:0]
	for _, n := range lineage {
		kind := "multi"
		if len(n.applied) == 1 {
			kind = n.applied[0].Kind.String()
		}
		res.Lineage = append(res.Lineage, LineageStep{
			Iteration: n.iteration,
			Kind:      kind,
			EstCost:   n.eval.Cost,
			SizeBytes: n.eval.SizeBytes,
			Config:    n.eval.Config,
		})
	}

	rep := &ExplainReport{Source: source, Steps: len(lineage)}
	switch source {
	case explainSourceOptimal:
		rep.Winner = "the optimal configuration fits the space budget; no relaxation was needed"
	case explainSourceInitial:
		rep.Winner = "no explored configuration fit the space budget; fell back to the existing design"
	case explainSourceWarmStart:
		rep.Winner = "the warm-start seed (previous recommendation) remained the cheapest configuration within budget"
	default:
		rep.Winner = fmt.Sprintf(
			"relaxed configuration reached after %d steps won: cheapest of %d evaluated configurations that fit the budget",
			len(lineage), len(res.Frontier))
	}

	// Index every lineage transformation by the structures it touched.
	touched := map[string][]DecisionEvent{}
	removal := map[string]DecisionEvent{}
	creation := map[string]DecisionEvent{}
	record := func(key string, ev DecisionEvent, m map[string]DecisionEvent) {
		touched[key] = append(touched[key], ev)
		if _, dup := m[key]; !dup {
			m[key] = ev
		}
	}
	for _, n := range lineage {
		for _, tf := range n.applied {
			ev := DecisionEvent{
				Iteration:       n.iteration,
				Action:          tf.Kind.String(),
				Detail:          tf.String(),
				RealizedPenalty: n.realizedPenalty,
			}
			// A transformation's product can be identical to one of its
			// inputs (e.g. merging a narrow index into a wider one whose
			// key already covers it). Such a structure is neither removed
			// nor created — it survived as the transformation target.
			produced := map[string]bool{}
			for _, ix := range tf.NewIdx {
				produced["i:"+ix.ID()] = true
			}
			for _, ix := range tf.Promoted {
				produced["i:"+ix.ID()] = true
			}
			if tf.VM != nil {
				produced["v:"+tf.VM.Name] = true
			}
			for _, id := range tf.RemovedIndexIDs() {
				key := "i:" + id
				if produced[key] {
					delete(produced, key)
					touched[key] = append(touched[key], ev)
					continue
				}
				record(key, ev, removal)
			}
			for _, vn := range tf.RemovedViewNames() {
				key := "v:" + vn
				if produced[key] {
					delete(produced, key)
					touched[key] = append(touched[key], ev)
					continue
				}
				record(key, ev, removal)
			}
			for key := range produced {
				record(key, ev, creation)
			}
		}
	}

	best := res.Best.Config
	optimal := res.Optimal.Config

	addIndex := func(ix *physical.Index, inOptimal bool) {
		key := "i:" + ix.ID()
		sd := StructureDecision{
			ID:         ix.ID(),
			Kind:       "index",
			DemandedBy: t.demandedBy[key],
			Events:     touched[key],
		}
		t.decideOutcome(&sd, key, inOptimal, best.HasIndex(ix.ID()), ix.Required,
			len(lineage), removal, creation, source)
		rep.Structures = append(rep.Structures, sd)
	}
	addView := func(name string, inOptimal bool) {
		key := "v:" + name
		sd := StructureDecision{
			ID:         name,
			Kind:       "view",
			DemandedBy: t.demandedBy[key],
			Events:     touched[key],
		}
		t.decideOutcome(&sd, key, inOptimal, best.View(name) != nil, false,
			len(lineage), removal, creation, source)
		rep.Structures = append(rep.Structures, sd)
	}

	seen := map[string]bool{}
	for _, ix := range optimal.Indexes() {
		seen["i:"+ix.ID()] = true
		addIndex(ix, true)
	}
	for _, v := range optimal.Views() {
		seen["v:"+v.Name] = true
		addView(v.Name, true)
	}
	// Structures the relaxation introduced (merge/split/prefix products).
	for _, ix := range best.Indexes() {
		if !seen["i:"+ix.ID()] {
			addIndex(ix, false)
		}
	}
	for _, v := range best.Views() {
		if !seen["v:"+v.Name] {
			addView(v.Name, false)
		}
	}

	sort.Slice(rep.Structures, func(i, j int) bool {
		a, b := rep.Structures[i], rep.Structures[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.ID < b.ID
	})
	return rep
}

// decideOutcome classifies one structure given where it appears and
// which lineage transformations touched it.
func (t *Tuner) decideOutcome(sd *StructureDecision, key string, inOptimal, inBest, required bool,
	steps int, removal, creation map[string]DecisionEvent, source string) {
	switch {
	case required:
		sd.Outcome = "required"
		sd.Detail = "constraint-enforcing index from the base configuration; never a transformation target"
	case inOptimal && inBest:
		sd.Outcome = "kept"
		if n := len(sd.Events); n > 0 {
			sd.Detail = fmt.Sprintf("retained as the surviving target of %d transformation(s)", n)
		} else {
			sd.Detail = fmt.Sprintf("survived %d relaxation steps untouched", steps)
		}
		if len(sd.DemandedBy) > 0 {
			sd.Detail += "; demanded by " + joinCapped(sd.DemandedBy, 5)
		}
	case inOptimal && !inBest:
		if ev, ok := removal[key]; ok {
			sd.Outcome = outcomeForAction(ev.Action)
			sd.Detail = fmt.Sprintf("step %d: %s (realized penalty %.3g)", ev.Iteration, ev.Detail, ev.RealizedPenalty)
		} else {
			sd.Outcome = "dropped"
			switch {
			case t.Options.ShrinkUnused:
				sd.Detail = "dropped as unused by any plan after relaxation (shrink-unused)"
			case source == explainSourceWarmStart:
				sd.Detail = "not part of the selected warm-start configuration"
			case source == explainSourceInitial:
				sd.Detail = "only in the optimal configuration, which exceeded the space budget"
			default:
				sd.Detail = "absent from the selected configuration"
			}
		}
	default: // created during relaxation
		sd.Outcome = "created"
		if ev, ok := creation[key]; ok {
			sd.Detail = fmt.Sprintf("step %d: introduced by %s", ev.Iteration, ev.Detail)
		} else {
			sd.Detail = "introduced during relaxation"
		}
	}
}

// outcomeForAction maps a transformation kind to the fate of a structure
// it removed.
func outcomeForAction(action string) string {
	switch action {
	case "merge-indexes", "merge-views":
		return "merged"
	case "split-indexes":
		return "split"
	case "prefix-index":
		return "prefixed"
	case "promote-clustered":
		return "promoted"
	case "remove-index", "remove-view":
		return "removed"
	default:
		return "transformed"
	}
}

func joinCapped(items []string, n int) string {
	if len(items) <= n {
		return strings.Join(items, ", ")
	}
	return strings.Join(items[:n], ", ") + fmt.Sprintf(", … (%d total)", len(items))
}

// WriteText renders the report for terminals (relaxtune --explain).
func (r *ExplainReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "Recommendation source: %s\n%s\n", r.Source, r.Winner)
	if r.Steps > 0 {
		fmt.Fprintf(w, "Winning lineage: %d relaxation step(s)\n", r.Steps)
	}
	fmt.Fprintln(w)
	for _, sd := range r.Structures {
		fmt.Fprintf(w, "%-7s %-9s %s\n", sd.Outcome, sd.Kind, sd.ID)
		fmt.Fprintf(w, "        %s\n", sd.Detail)
		if len(sd.DemandedBy) > 0 && sd.Outcome != "kept" {
			fmt.Fprintf(w, "        demanded by: %s\n", joinCapped(sd.DemandedBy, 5))
		}
		for _, ev := range sd.Events {
			// Skip the event already quoted in the one-line detail.
			if strings.Contains(sd.Detail, ev.Detail) {
				continue
			}
			fmt.Fprintf(w, "        step %d: %s %s\n", ev.Iteration, ev.Action, ev.Detail)
		}
	}
	if r.Calibration != nil {
		fmt.Fprintf(w, "\nCost-model calibration (realized ΔT / estimated §3.3.2 bound):\n")
		r.Calibration.WriteText(w)
	}
}

package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/sqlx"
)

// OptimalIndexesForRequest derives the physical structures that make an
// index request (S, N, O, A) as cheap as possible (§2.1).
//
// Lemmas 1 and 2 guarantee that, without a requested order, the optimal
// plan seeks a single covering index whose keys are the sargable columns
// ordered by selectivity (equality columns first, then the most selective
// range column) and whose suffix holds every other referenced column.
// With a requested order O, a second candidate keyed on O is generated;
// the optimizer picks whichever yields the cheaper plan.
func OptimalIndexesForRequest(req *optimizer.IndexRequest) []*physical.Index {
	var eqs, ranges []optimizer.SargCond
	for _, s := range req.S {
		if s.Iv.IsPoint() {
			eqs = append(eqs, s)
		} else {
			ranges = append(ranges, s)
		}
	}
	sort.SliceStable(eqs, func(i, j int) bool { return eqs[i].Sel < eqs[j].Sel })
	sort.SliceStable(ranges, func(i, j int) bool { return ranges[i].Sel < ranges[j].Sel })

	all := req.AllColumns()
	var keys []string
	for _, e := range eqs {
		keys = append(keys, e.Col)
	}
	if len(ranges) > 0 {
		keys = append(keys, ranges[0].Col)
	}
	var out []*physical.Index
	if len(keys) == 0 {
		// No sargable predicate: the best structure is the narrowest
		// covering index (a scan-only vertical slice of the table).
		if len(all) == 0 {
			return nil
		}
		keys = all[:1]
	}
	out = append(out, physical.NewIndex(req.Table, keys, subtract(all, keys), false))

	if len(req.O) > 0 {
		// Alternative avoiding the sort: keys start with O; if O ⊆ S the
		// remaining sargable columns extend the key, otherwise everything
		// else becomes suffix (§2.1).
		sCols := make([]string, 0, len(req.S))
		for _, s := range req.S {
			sCols = append(sCols, s.Col)
		}
		oKeys := append([]string(nil), req.O...)
		if isSubset(req.O, sCols) {
			for _, s := range sCols {
				if !containsFold(oKeys, s) {
					oKeys = append(oKeys, s)
				}
			}
		}
		out = append(out, physical.NewIndex(req.Table, oKeys, subtract(all, oKeys), false))
	}
	return out
}

// interceptor installs the §2 instrumentation: index requests materialize
// their optimal indexes into the working configuration; view requests
// materialize the requested SPJG block as a hypothetical view with a
// clustered index.
type interceptor struct {
	t    *Tuner
	work *physical.Configuration
	// created tracks the hypothetical structures this interception added.
	createdIdx   map[string]bool
	createdViews map[string]bool
}

func (t *Tuner) newInterceptor(work *physical.Configuration) *interceptor {
	return &interceptor{t: t, work: work, createdIdx: map[string]bool{}, createdViews: map[string]bool{}}
}

func (ic *interceptor) hooks() *optimizer.Hooks {
	h := &optimizer.Hooks{OnIndexRequest: ic.onIndexRequest}
	if !ic.t.Options.NoViews {
		h.OnViewRequest = ic.onViewRequest
	}
	return h
}

func (ic *interceptor) onIndexRequest(req *optimizer.IndexRequest) {
	for _, ix := range OptimalIndexesForRequest(req) {
		if !ic.work.HasIndex(ix.ID()) {
			added := ic.work.AddIndex(ix)
			ic.createdIdx[added.ID()] = true
		}
	}
}

func (ic *interceptor) onViewRequest(req *optimizer.ViewRequest) {
	block := req.Block
	if len(block.Cols) == 0 {
		return
	}
	if existing := ic.work.ViewBySignature(block.Signature()); existing != nil {
		return
	}
	v := block.Clone()
	v = ic.work.AddView(v)
	ic.createdViews[v.Name] = true
	// Materialize with a clustered index: grouped views cluster on their
	// grouping columns, others on their first column.
	keys := clusterKeysFor(v)
	cix := physical.NewIndex(v.Name, keys, subtract(v.AllColumnNames(), keys), true)
	if !ic.work.HasIndex(cix.ID()) {
		ic.work.AddIndex(cix)
		ic.createdIdx[cix.ID()] = true
	}
}

// clusterKeysFor picks clustered-index keys for a hypothetical view.
func clusterKeysFor(v *physical.View) []string {
	if len(v.GroupBy) > 0 {
		var keys []string
		for _, g := range v.GroupBy {
			if vc := v.ColumnForSource(g); vc != nil {
				keys = append(keys, vc.Name)
			}
		}
		if len(keys) > 0 {
			return keys
		}
	}
	return v.AllColumnNames()[:1]
}

// OptimalForQuery runs the instrumented optimization of §2 for one query:
// it returns the structures the optimal plan actually uses (a per-query
// optimal configuration fragment) along with the resulting plan.
func (t *Tuner) OptimalForQuery(tq *TunedQuery) (*physical.Configuration, *optimizer.QueryResult, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.optimalForQuery(tq)
}

func (t *Tuner) optimalForQuery(tq *TunedQuery) (*physical.Configuration, *optimizer.QueryResult, error) {
	return t.optimalForQueryOn(t.Opt, tq)
}

// optimalForQueryOn is optimalForQuery against an explicit optimizer:
// hooks are per-optimizer state, so the parallel §2 phase gives every
// worker its own fork and routes each query through it.
func (t *Tuner) optimalForQueryOn(opt *optimizer.Optimizer, tq *TunedQuery) (*physical.Configuration, *optimizer.QueryResult, error) {
	defer t.Options.Profile.StartAlloc("optimal-config/instrument")()
	work := t.Base.Clone()
	ic := t.newInterceptor(work)
	opt.SetHooks(ic.hooks())
	defer opt.SetHooks(nil)

	res, err := opt.OptimizeFull(tq.Bound, work)
	if err != nil {
		return nil, nil, fmt.Errorf("core: instrumented optimization of %s: %w", tq.Query.ID, err)
	}

	// Gather only the hypothetical structures the optimal plan exploits.
	frag := physical.NewConfiguration()
	for _, u := range res.Plan.Usages {
		id := u.Index.ID()
		if !ic.createdIdx[id] {
			continue
		}
		if u.ViewName != "" {
			if v := work.View(u.ViewName); v != nil {
				frag.AddView(v)
			}
		}
		frag.AddIndex(u.Index)
	}
	for _, vn := range res.Plan.UsedViews {
		if v := work.View(vn); v != nil && ic.createdViews[vn] {
			frag.AddView(v)
		}
	}
	// Every kept view needs a clustered index (it stores the view rows).
	for _, v := range frag.Views() {
		if frag.ClusteredOn(v.Name) == nil {
			if cix := work.ClusteredOn(v.Name); cix != nil {
				frag.AddIndex(cix)
			}
		}
	}
	return frag, res, nil
}

// OptimalConfiguration runs §2 over the whole workload: the union of the
// per-query optimal fragments over the base configuration. The returned
// configuration cannot be improved for SELECT-only workloads.
func (t *Tuner) OptimalConfiguration() (*physical.Configuration, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.optimalConfiguration()
}

// optimalConfiguration consults Options.Cache when present: statements
// whose fragment was derived by an earlier session reuse it without any
// optimizer calls (the warm-start fast path of the online retuner).
func (t *Tuner) optimalConfiguration() (*physical.Configuration, error) {
	if w := t.workers(); w > 1 && len(t.Queries) > 1 {
		return t.optimalConfigurationParallel(w)
	}
	union := t.Base.Clone()
	cache := t.Options.Cache
	trace := t.Options.Trace
	clear(t.demandedBy)
	for _, tq := range t.Queries {
		var frag *physical.Configuration
		cached := false
		if cache != nil {
			if hit, ok := cache.lookup(t.cacheKey(tq), t.Options.CacheOrigin); ok {
				frag = hit
				cached = true
			}
			if trace.Enabled() {
				trace.Emit(obs.EvCache, obs.F{"hit": cached, "query": tq.Query.ID})
			}
		}
		if frag == nil {
			before := t.Opt.Stats().OptimizeCalls
			f, _, err := t.optimalForQuery(tq)
			if err != nil {
				return nil, err
			}
			frag = f
			if cache != nil {
				cache.store(t.cacheKey(tq), f, t.Opt.Stats().OptimizeCalls-before, t.Options.CacheOrigin)
			}
		}
		if trace.Enabled() {
			trace.Emit(obs.EvFragment, obs.F{
				"query":   tq.Query.ID,
				"cached":  cached,
				"indexes": frag.NumIndexes(),
				"views":   frag.NumViews(),
			})
		}
		for _, v := range frag.Views() {
			union.AddView(v)
			t.demand("v:"+v.Name, tq.Query.ID)
		}
		for _, ix := range frag.Indexes() {
			union.AddIndex(ix)
			t.demand("i:"+ix.ID(), tq.Query.ID)
		}
	}
	return union, nil
}

// demand records that the statement qid requested the structure key
// during the §2 instrumented optimization (explain provenance).
func (t *Tuner) demand(key, qid string) {
	for _, q := range t.demandedBy[key] {
		if q == qid {
			return
		}
	}
	t.demandedBy[key] = append(t.demandedBy[key], qid)
}

// RequestCounts runs the instrumented optimization over the workload and
// reports the number of index and view requests issued (Table 1).
func (t *Tuner) RequestCounts() (indexReqs, viewReqs int64, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	before := t.Opt.Stats()
	if _, err := t.optimalConfiguration(); err != nil {
		return 0, 0, err
	}
	after := t.Opt.Stats()
	return after.IndexRequests - before.IndexRequests, after.ViewRequests - before.ViewRequests, nil
}

// --- small column-set helpers ---

func subtract(a, b []string) []string {
	var out []string
	for _, c := range a {
		if !containsFold(b, c) {
			out = append(out, c)
		}
	}
	return out
}

func containsFold(list []string, s string) bool {
	for _, x := range list {
		if strings.EqualFold(x, s) {
			return true
		}
	}
	return false
}

func isSubset(a, b []string) bool {
	for _, c := range a {
		if !containsFold(b, c) {
			return false
		}
	}
	return true
}

// viewWidthFn adapts the tuner's catalog to the signature MergeViews
// expects for sizing newly exposed base columns.
func (t *Tuner) viewWidthFn() func(sqlx.ColRef) int {
	return func(c sqlx.ColRef) int { return t.widthOf(c.Column, c.Table) }
}

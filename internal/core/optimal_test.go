package core

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/workloads"
)

func requestFixture() *optimizer.IndexRequest {
	return &optimizer.IndexRequest{
		Table: "t",
		S: []optimizer.SargCond{
			{Col: "a", Iv: physical.PointInterval(1), Sel: 0.10},
			{Col: "b", Iv: physical.PointInterval(2), Sel: 0.01},
			{Col: "r1", Iv: physical.Interval{Lo: 0, Hi: 10, LoIncl: true}, Sel: 0.2},
			{Col: "r2", Iv: physical.Interval{Lo: 0, Hi: 10, LoIncl: true}, Sel: 0.05},
		},
		N:    [][]string{{"n1", "n2"}},
		A:    []string{"x", "y"},
		Rows: 100000,
	}
}

// TestOptimalIndexNoOrder checks the §2.1 derivation: equality columns
// sorted by selectivity, then the most selective range column, with every
// other referenced column as suffix (Lemmas 1 and 2: no intersections, no
// lookups).
func TestOptimalIndexNoOrder(t *testing.T) {
	out := OptimalIndexesForRequest(requestFixture())
	if len(out) != 1 {
		t.Fatalf("expected one candidate, got %d", len(out))
	}
	ix := out[0]
	if strings.Join(ix.Keys, ",") != "b,a,r2" {
		t.Errorf("keys: %v (want most-selective eq first, then best range)", ix.Keys)
	}
	for _, c := range []string{"r1", "n1", "n2", "x", "y"} {
		if !ix.HasColumn(c) {
			t.Errorf("suffix missing %s", c)
		}
	}
}

// TestOptimalIndexWithOrder: a second candidate keyed on O appears; when
// O ⊆ S the remaining sargable columns extend the key.
func TestOptimalIndexWithOrder(t *testing.T) {
	req := requestFixture()
	req.O = []string{"o1"}
	out := OptimalIndexesForRequest(req)
	if len(out) != 2 {
		t.Fatalf("expected two candidates, got %d", len(out))
	}
	if out[1].Keys[0] != "o1" {
		t.Errorf("order candidate keys: %v", out[1].Keys)
	}
	// O ⊆ S case: order column is also sargable.
	req2 := requestFixture()
	req2.O = []string{"a"}
	out2 := OptimalIndexesForRequest(req2)
	keys := out2[1].Keys
	if keys[0] != "a" || len(keys) < 2 {
		t.Errorf("O ⊆ S should extend keys with remaining sargable columns: %v", keys)
	}
}

func TestOptimalIndexNoPredicates(t *testing.T) {
	req := &optimizer.IndexRequest{Table: "t", A: []string{"x", "y"}, Rows: 1000}
	out := OptimalIndexesForRequest(req)
	if len(out) != 1 {
		t.Fatalf("candidates: %d", len(out))
	}
	if !out[0].Covers([]string{"x", "y"}) {
		t.Error("scan-only covering index expected")
	}
}

func TestOptimalIndexEmptyRequest(t *testing.T) {
	if out := OptimalIndexesForRequest(&optimizer.IndexRequest{Table: "t"}); out != nil {
		t.Errorf("empty request should produce nothing: %v", out)
	}
}

func tpchTuner(t testing.TB, opts Options) *Tuner {
	t.Helper()
	db := datagen.TPCH(0.001)
	w, err := workloads.TPCH22()
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	tn, err := NewTuner(db, w, opts)
	if err != nil {
		t.Fatalf("tuner: %v", err)
	}
	return tn
}

// TestOptimalFragmentIsUsed: every structure in a per-query optimal
// fragment is actually read by the optimal plan.
func TestOptimalFragmentIsUsed(t *testing.T) {
	tn := tpchTuner(t, Options{})
	for _, tq := range tn.Queries[:6] {
		frag, res, err := tn.OptimalForQuery(tq)
		if err != nil {
			t.Fatalf("%s: %v", tq.Query.ID, err)
		}
		for _, ix := range frag.Indexes() {
			if strings.HasPrefix(ix.ID(), "cix:") && tn.Base.HasIndex(ix.ID()) {
				continue
			}
			usedDirectly := res.Plan.UsesIndex(ix.ID())
			// Clustered view indexes may be present only to materialize a
			// view whose secondary index the plan reads.
			onUsedView := false
			if v := frag.View(ix.Table); v != nil && res.Plan.UsesView(v.Name) {
				onUsedView = true
			}
			if !usedDirectly && !onUsedView {
				t.Errorf("%s: fragment structure %s is not used", tq.Query.ID, ix.ID())
			}
		}
	}
}

// TestOptimalBeatsHandPickedConfigs: the §2 optimal configuration is
// never beaten by hand-constructed alternatives (the paper's optimality
// claim for SELECT-only workloads).
func TestOptimalBeatsHandPickedConfigs(t *testing.T) {
	tn := tpchTuner(t, Options{NoViews: true})
	optCfg, err := tn.OptimalConfiguration()
	if err != nil {
		t.Fatalf("optimal: %v", err)
	}
	opt, err := tn.Evaluate(optCfg)
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	// Hand-built competitor: covering single-column indexes everywhere.
	rival := tn.Base.Clone()
	for _, tb := range tn.DB.Tables() {
		cols := tb.ColumnNames()
		for _, c := range cols[:minInt(3, len(cols))] {
			rival.AddIndex(physical.NewIndex(tb.Name, []string{c}, cols, false))
		}
	}
	rivalEval, err := tn.Evaluate(rival)
	if err != nil {
		t.Fatalf("evaluate rival: %v", err)
	}
	if opt.Cost > rivalEval.Cost*1.0001 {
		t.Errorf("optimal configuration beaten: %.2f > %.2f", opt.Cost, rivalEval.Cost)
	}
}

// TestOptimalMonotoneAgainstAdditions: adding any structure to the
// optimal configuration cannot reduce the workload cost further.
func TestOptimalMonotoneAgainstAdditions(t *testing.T) {
	tn := tpchTuner(t, Options{NoViews: true})
	optCfg, err := tn.OptimalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	opt, err := tn.Evaluate(optCfg)
	if err != nil {
		t.Fatal(err)
	}
	extra := optCfg.Clone()
	extra.AddIndex(physical.NewIndex("lineitem", []string{"l_discount", "l_tax"}, []string{"l_quantity"}, false))
	extra.AddIndex(physical.NewIndex("orders", []string{"o_clerk"}, []string{"o_totalprice"}, false))
	bigger, err := tn.Evaluate(extra)
	if err != nil {
		t.Fatal(err)
	}
	if bigger.Cost < opt.Cost*0.999 {
		t.Errorf("additions improved the 'optimal' configuration: %.2f < %.2f", bigger.Cost, opt.Cost)
	}
}

func TestRequestCountsPositive(t *testing.T) {
	tn := tpchTuner(t, Options{})
	ir, vr, err := tn.RequestCounts()
	if err != nil {
		t.Fatal(err)
	}
	if ir == 0 || vr == 0 {
		t.Errorf("requests: idx=%d view=%d", ir, vr)
	}
	// Small per query on average (Table 1's message).
	if ir > int64(len(tn.Queries))*100 {
		t.Errorf("index requests implausibly large: %d", ir)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

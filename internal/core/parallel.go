package core

import (
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/physical"
)

// This file is the parallel evaluation engine. Three independent fan-out
// layers share one worker budget (Options.Parallelism):
//
//  1. per-query what-if optimization: evalQueriesParallel spreads the
//     workload's queries over a pool; the reentrant optimizer and the
//     mutex-guarded sizer are shared, the §3.3.2 plan-reuse counters are
//     atomic, and the weighted cost is reduced in query order so the
//     total is bit-identical to the serial loop.
//  2. §3.3.2 penalty estimation: precomputeDeltas bounds every untried
//     candidate's (ΔT, ΔS) concurrently — pure arithmetic except for
//     singleflighted CBV computations.
//  3. speculative top-k: while the chosen transformation's child is
//     evaluated, the runner-up candidates of the same node are evaluated
//     too; losers park in specCache and are promoted into evalCache only
//     when a later iteration actually selects them.
//
// Determinism argument, layer by layer: (1) per-query costs are
// non-negative, so the serial prefix-abort of §3.5 prunes a
// configuration iff the full in-order sum exceeds the cutoff — the
// parallel path computes all results, sums in query order (bit-identical
// float sequence), and applies the same predicate; the cooperative early
// abort uses a relative margin so it can only fire on configurations the
// deterministic check would prune anyway. (2) candidate deltas are
// independent math: computing them concurrently changes wall time, not
// values. (3) a speculative result is keyed by (parent fingerprint,
// transformation, child fingerprint) and replayed only when the serial
// decision sequence reaches exactly that step, with the §3.5 cutoff
// re-applied at consumption time.

// atomicFloat is a CAS-looped float64 accumulator for the cooperative
// §3.5 running cost.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) float64 {
	for {
		old := f.bits.Load()
		nv := math.Float64frombits(old) + v
		if f.bits.CompareAndSwap(old, math.Float64bits(nv)) {
			return nv
		}
	}
}

// shortcutMargin pads the cooperative abort threshold so the unordered
// running sum can only trigger a prune the deterministic in-order check
// would also make (float summation order changes the value by parts in
// 1e-13; the margin is orders of magnitude above that and orders of
// magnitude below any meaningful cost difference).
const shortcutMargin = 1e-9

// evalQueriesParallel fans the per-query optimization of one
// configuration over a worker pool. Result ordering, cost reduction
// order, and the §3.5 prune decision match evalQueriesSerial exactly.
func (t *Tuner) evalQueriesParallel(parent *EvaluatedConfig, cfg *physical.Configuration, removedIdx, removedViews []string, cutoff float64, workers int) (*EvaluatedConfig, bool, error) {
	n := len(t.Queries)
	if workers > n {
		workers = n
	}
	ec := &EvaluatedConfig{Config: cfg, SizeBytes: t.Opt.Sizer().ConfigBytes(cfg)}
	shortcut := cutoff > 0 && !t.Options.DisableShortcut
	results := make([]*optimizer.QueryResult, n)
	errs := make([]error, n)
	var (
		next    atomic.Int64
		running atomicFloat
		pruned  atomic.Bool
		failed  atomic.Bool
		wg      sync.WaitGroup
	)
	prof := t.Options.Profile
	label := "evaluate"
	if parent != nil {
		label = "search/evaluate"
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if prof.Enabled() {
				defer prof.Since(label+"/worker-"+strconv.Itoa(w), time.Now())
			}
			for {
				if failed.Load() || pruned.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				res, err := t.evalOneQuery(i, parent, cfg, removedIdx, removedViews)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				results[i] = res
				if shortcut {
					// Cooperative §3.5 abort: once the running total
					// clearly exceeds the cutoff the remaining queries
					// cannot rescue this configuration.
					if running.add(t.Queries[i].Query.Weight*res.TotalCost()) > cutoff*(1+shortcutMargin) {
						pruned.Store(true)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return nil, false, err
			}
		}
	}
	if pruned.Load() {
		return nil, false, nil
	}
	// Deterministic reduction: summing the weighted costs in query order
	// reproduces the serial float sequence bit for bit, and the prune
	// predicate below is exactly the serial one.
	for i, tq := range t.Queries {
		ec.Results = append(ec.Results, results[i])
		ec.Cost += tq.Query.Weight * results[i].TotalCost()
		if shortcut && ec.Cost > cutoff {
			return nil, false, nil
		}
	}
	return ec, true, nil
}

// precomputeDeltas bounds every untried candidate of node that does not
// yet carry a (ΔT, ΔS) estimate, chunked across workers. Candidates
// whose bound fails are marked tried, exactly as the serial loop does.
func (t *Tuner) precomputeDeltas(node *searchNode, workers int) {
	var missing []*physical.Transformation
	for _, tr := range node.trans {
		if node.tried[tr.ID()] {
			continue
		}
		if _, ok := node.deltas[tr.ID()]; ok {
			continue
		}
		missing = append(missing, tr)
	}
	if len(missing) < 2 {
		return
	}
	if workers > len(missing) {
		workers = len(missing)
	}
	deltas := make([]Delta, len(missing))
	errs := make([]error, len(missing))
	var next atomic.Int64
	var wg sync.WaitGroup
	prof := t.Options.Profile
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if prof.Enabled() {
				defer prof.Since("search/penalty/worker-"+strconv.Itoa(w), time.Now())
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(missing) {
					return
				}
				deltas[i], errs[i] = t.boundDelta(node.eval, missing[i])
			}
		}(w)
	}
	wg.Wait()
	for i, tr := range missing {
		if errs[i] != nil {
			node.tried[tr.ID()] = true
			continue
		}
		node.deltas[tr.ID()] = deltas[i]
	}
}

// specCacheKey identifies one speculated relaxation step: the search
// only replays a cached result when the same transformation is applied
// to the same parent and yields the same child fingerprint.
func specCacheKey(parentFP, transID, childFP string) string {
	return parentFP + "\x00" + transID + "\x00" + childFP
}

// evaluateStep evaluates cfgNew as a child of node inside the search
// loop. It first consults the evaluation cache and the speculative side
// cache (applying the §3.5 cutoff at consumption, exactly as a fresh
// evaluation would); otherwise it evaluates — with speculative top-k
// prefetching of the node's runner-up candidates when the session is
// parallel and a single transformation was chosen.
func (t *Tuner) evaluateStep(node *searchNode, cfgNew *physical.Configuration, removedIdx, removedViews []string, cutoff float64, ranked []candidate, chosen []*physical.Transformation, seen map[string]bool) (*EvaluatedConfig, bool, error) {
	fp := cfgNew.Fingerprint()
	if hit, ok := t.evalCacheGet(fp); ok {
		return hit, true, nil
	}
	if len(chosen) == 1 {
		key := specCacheKey(node.eval.Config.Fingerprint(), chosen[0].ID(), fp)
		if ec, ok := t.specCache[key]; ok {
			delete(t.specCache, key)
			t.statSpecHits++
			if cutoff > 0 && !t.Options.DisableShortcut && ec.Cost > cutoff {
				return nil, false, nil
			}
			t.evalCachePut(fp, ec)
			return ec, true, nil
		}
	}
	if w := t.workers(); w > 1 && len(chosen) == 1 && len(ranked) > 1 {
		return t.evaluateSpeculative(node, cfgNew, removedIdx, removedViews, cutoff, ranked, chosen[0], seen, w, fp)
	}
	ec, ok, err := t.evalQueries(node.eval, cfgNew, removedIdx, removedViews, cutoff)
	if err != nil || !ok {
		return nil, false, err
	}
	t.evalCachePut(fp, ec)
	return ec, true, nil
}

// specTask is one runner-up candidate queued for speculative evaluation.
type specTask struct {
	key          string
	cfg          *physical.Configuration
	removedIdx   []string
	removedViews []string
}

// evaluateSpeculative evaluates the chosen child and up to workers-1 of
// the node's lowest-penalty runner-up candidates concurrently. Each
// evaluation runs the serial per-query loop so the k evaluations share
// the worker budget; the chosen child's evaluation (with the live §3.5
// cutoff) is the returned result, and the losers — evaluated without a
// cutoff so they stay valid under any future incumbent — park in
// specCache for later iterations.
func (t *Tuner) evaluateSpeculative(node *searchNode, cfgNew *physical.Configuration, removedIdx, removedViews []string, cutoff float64, ranked []candidate, chosenTr *physical.Transformation, seen map[string]bool, workers int, fp string) (*EvaluatedConfig, bool, error) {
	parentFP := node.eval.Config.Fingerprint()
	var specs []specTask
	claimed := map[string]bool{fp: true}
	for _, c := range ranked {
		if len(specs) >= workers-1 {
			break
		}
		id := c.tr.ID()
		if id == chosenTr.ID() || node.tried[id] {
			continue
		}
		cfgC := c.tr.Apply(node.eval.Config)
		fpC := cfgC.Fingerprint()
		// Skip children the search can never consume: already seen
		// fingerprints, already evaluated ones, and duplicates within
		// this speculation round.
		if claimed[fpC] || seen[fpC] {
			continue
		}
		if _, ok := t.evalCache[fpC]; ok {
			continue
		}
		key := specCacheKey(parentFP, id, fpC)
		if _, ok := t.specCache[key]; ok {
			continue
		}
		if len(t.specCache)+len(specs) >= specCacheCap {
			break
		}
		claimed[fpC] = true
		specs = append(specs, specTask{
			key:          key,
			cfg:          cfgC,
			removedIdx:   c.tr.RemovedIndexIDs(),
			removedViews: c.tr.RemovedViewNames(),
		})
	}

	prof := t.Options.Profile
	var (
		mainEC  *EvaluatedConfig
		mainOK  bool
		mainErr error
		wg      sync.WaitGroup
	)
	specResults := make([]*EvaluatedConfig, len(specs))
	wg.Add(1)
	go func() {
		defer wg.Done()
		if prof.Enabled() {
			defer prof.Since("search/evaluate/chosen", time.Now())
		}
		mainEC, mainOK, mainErr = t.evalQueriesSerial(node.eval, cfgNew, removedIdx, removedViews, cutoff)
	}()
	for si := range specs {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			if prof.Enabled() {
				defer prof.Since("search/evaluate/speculate", time.Now())
			}
			ec, ok, err := t.evalQueriesSerial(node.eval, specs[si].cfg, specs[si].removedIdx, specs[si].removedViews, 0)
			if err == nil && ok {
				specResults[si] = ec
			}
		}(si)
	}
	wg.Wait()
	for si, ec := range specResults {
		if ec != nil {
			t.specCache[specs[si].key] = ec
			t.statSpecEvals++
		}
	}
	if mainErr != nil {
		return nil, false, mainErr
	}
	if !mainOK {
		return nil, false, nil
	}
	t.evalCachePut(fp, mainEC)
	return mainEC, true, nil
}

// optimalConfigurationParallel is the parallel form of the §2 phase:
// each worker derives per-query optimal fragments on its own forked
// optimizer (hooks are per-optimizer state), then the fragments are
// merged — and trace events emitted — in query order on the calling
// goroutine, so the resulting configuration and the explain provenance
// are identical to the serial phase.
func (t *Tuner) optimalConfigurationParallel(workers int) (*physical.Configuration, error) {
	cache := t.Options.Cache
	trace := t.Options.Trace
	n := len(t.Queries)
	if workers > n {
		workers = n
	}
	type fragOut struct {
		frag   *physical.Configuration
		cached bool
		err    error
	}
	outs := make([]fragOut, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	forks := make([]*optimizer.Optimizer, workers)
	for w := 0; w < workers; w++ {
		forks[w] = t.Opt.Fork()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			opt := forks[w]
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				tq := t.Queries[i]
				if cache != nil {
					if hit, ok := cache.lookup(t.cacheKey(tq), t.Options.CacheOrigin); ok {
						outs[i] = fragOut{frag: hit, cached: true}
						continue
					}
				}
				before := opt.Stats().OptimizeCalls
				frag, _, err := t.optimalForQueryOn(opt, tq)
				if err != nil {
					outs[i] = fragOut{err: err}
					continue
				}
				if cache != nil {
					cache.store(t.cacheKey(tq), frag, opt.Stats().OptimizeCalls-before, t.Options.CacheOrigin)
				}
				outs[i] = fragOut{frag: frag}
			}
		}(w)
	}
	wg.Wait()
	for _, fork := range forks {
		t.Opt.AddStats(fork.Stats())
	}

	union := t.Base.Clone()
	clear(t.demandedBy)
	for i, tq := range t.Queries {
		o := outs[i]
		if o.err != nil {
			return nil, o.err
		}
		if cache != nil && trace.Enabled() {
			trace.Emit(obs.EvCache, obs.F{"hit": o.cached, "query": tq.Query.ID})
		}
		if trace.Enabled() {
			trace.Emit(obs.EvFragment, obs.F{
				"query":   tq.Query.ID,
				"cached":  o.cached,
				"indexes": o.frag.NumIndexes(),
				"views":   o.frag.NumViews(),
			})
		}
		for _, v := range o.frag.Views() {
			union.AddView(v)
			t.demand("v:"+v.Name, tq.Query.ID)
		}
		for _, ix := range o.frag.Indexes() {
			union.AddIndex(ix)
			t.demand("i:"+ix.ID(), tq.Query.ID)
		}
	}
	return union, nil
}

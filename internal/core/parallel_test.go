package core

import (
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/physical"
	"repro/internal/workloads"
)

// requireSameOutcome asserts the invariant the parallel engine promises:
// any Parallelism setting yields the same recommendation, cost,
// iteration count, and calibration trail as the serial algorithm.
func requireSameOutcome(t *testing.T, serial, parallel *Result) {
	t.Helper()
	if sfp, pfp := serial.Best.Config.Fingerprint(), parallel.Best.Config.Fingerprint(); sfp != pfp {
		t.Errorf("best fingerprint diverged: serial %s, parallel %s", sfp, pfp)
	}
	if serial.Best.Cost != parallel.Best.Cost {
		t.Errorf("best cost diverged: serial %v, parallel %v", serial.Best.Cost, parallel.Best.Cost)
	}
	if serial.Iterations != parallel.Iterations {
		t.Errorf("iterations diverged: serial %d, parallel %d", serial.Iterations, parallel.Iterations)
	}
	if len(serial.CalibSamples) != len(parallel.CalibSamples) {
		t.Fatalf("calibration samples diverged: serial %d, parallel %d",
			len(serial.CalibSamples), len(parallel.CalibSamples))
	}
	for i := range serial.CalibSamples {
		if serial.CalibSamples[i] != parallel.CalibSamples[i] {
			t.Errorf("calibration sample %d diverged: serial %+v, parallel %+v",
				i, serial.CalibSamples[i], parallel.CalibSamples[i])
		}
	}
}

// TestParallelTuneEquivalenceTPCH: a budget-constrained TPC-H session at
// Parallelism 8 must reproduce the serial recommendation exactly.
func TestParallelTuneEquivalenceTPCH(t *testing.T) {
	probe := tpchTuner(t, Options{NoViews: true})
	optCfg, err := probe.OptimalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	budget := probe.Opt.Sizer().ConfigBytes(optCfg) / 3

	run := func(parallelism int) *Result {
		tn := tpchTuner(t, Options{
			NoViews: true, SpaceBudget: budget, MaxIterations: 40, Parallelism: parallelism,
		})
		res, err := tn.Tune()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(8)
	requireSameOutcome(t, serial, parallel)
	if parallel.ParallelWorkers != 8 {
		t.Errorf("ParallelWorkers = %d, want 8", parallel.ParallelWorkers)
	}
	if serial.ParallelWorkers != 1 {
		t.Errorf("serial ParallelWorkers = %d, want 1", serial.ParallelWorkers)
	}
}

// TestParallelTuneEquivalenceUpdates exercises the update path: skyline
// filtering, update-shell recosting, and the cutoff-free search loop all
// under the parallel engine.
func TestParallelTuneEquivalenceUpdates(t *testing.T) {
	db := datagen.TPCH(0.001)
	w, err := workloads.FromStatements("upd-par", "tpch", []string{
		"SELECT o_orderpriority, COUNT(*) FROM orders WHERE o_orderdate >= 9131 GROUP BY o_orderpriority",
		"SELECT l_shipmode, SUM(l_extendedprice) FROM lineitem WHERE l_shipdate > 9131 GROUP BY l_shipmode",
		"UPDATE lineitem SET l_discount = l_discount + 0.01 WHERE l_shipdate >= 10400",
		"UPDATE orders SET o_totalprice = o_totalprice * 1.05 WHERE o_orderdate >= 10400",
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(parallelism int) *Result {
		tn, err := NewTuner(db, w, Options{NoViews: true, MaxIterations: 40, Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		res, err := tn.Tune()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	requireSameOutcome(t, run(1), run(8))
}

// TestParallelEvaluateMatchesSerial: one full-configuration evaluation
// fanned over workers must reduce to the bit-identical weighted cost.
func TestParallelEvaluateMatchesSerial(t *testing.T) {
	tn := tpchTuner(t, Options{NoViews: true, Parallelism: 1})
	optCfg, err := tn.OptimalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := tn.Evaluate(optCfg)
	if err != nil {
		t.Fatal(err)
	}
	tnP := tpchTuner(t, Options{NoViews: true, Parallelism: 8})
	parallel, err := tnP.Evaluate(optCfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Cost != parallel.Cost {
		t.Errorf("cost diverged: serial %v, parallel %v", serial.Cost, parallel.Cost)
	}
	if serial.SizeBytes != parallel.SizeBytes {
		t.Errorf("size diverged: serial %d, parallel %d", serial.SizeBytes, parallel.SizeBytes)
	}
	if len(serial.Results) != len(parallel.Results) {
		t.Fatalf("result count diverged: %d vs %d", len(serial.Results), len(parallel.Results))
	}
	for i := range serial.Results {
		if serial.Results[i].TotalCost() != parallel.Results[i].TotalCost() {
			t.Errorf("query %d cost diverged: %v vs %v",
				i, serial.Results[i].TotalCost(), parallel.Results[i].TotalCost())
		}
	}
}

// skylineQuadratic is the O(n²) reference the sweep replaced; the
// property test below checks the sweep agrees with it on random inputs.
func skylineQuadratic(cands []candidate) []candidate {
	var out []candidate
	for i, c := range cands {
		dominated := false
		for j, d := range cands {
			if i == j {
				continue
			}
			if d.delta.DT <= c.delta.DT && d.delta.DS >= c.delta.DS &&
				(d.delta.DT < c.delta.DT || d.delta.DS > c.delta.DS) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return cands
	}
	return out
}

// TestSkylineSweepMatchesQuadratic: random candidate sets — with exact
// ΔT/ΔS ties and duplicates to stress the strictness clause — must
// produce identical survivors in identical order from both filters.
func TestSkylineSweepMatchesQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(40)
		cands := make([]candidate, n)
		for i := range cands {
			// Small integer-valued grids force frequent exact ties.
			cands[i].delta = Delta{
				DT: float64(rng.Intn(11) - 5),
				DS: int64(rng.Intn(9) - 4),
			}
		}
		want := skylineQuadratic(cands)
		got := skyline(cands)
		if len(got) != len(want) {
			t.Fatalf("trial %d: sweep kept %d, quadratic kept %d\ncands: %+v",
				trial, len(got), len(want), cands)
		}
		for i := range want {
			if got[i].delta != want[i].delta {
				t.Fatalf("trial %d: survivor %d differs: sweep %+v, quadratic %+v",
					trial, i, got[i].delta, want[i].delta)
			}
		}
	}
}

// TestEvalCacheLRUEviction: the bounded cache evicts least-recently-used
// evaluations and keeps honest hit/miss/eviction counters.
func TestEvalCacheLRUEviction(t *testing.T) {
	tn := tpchTuner(t, Options{NoViews: true, Parallelism: 1, EvalCacheCap: 2})
	optCfg, err := tn.OptimalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	trs := physical.Enumerate(optCfg, physical.EnumerateOptions{NoViews: true, HeapTables: tn.heapTables})
	if len(trs) == 0 {
		t.Fatal("no transformations to build a third configuration from")
	}
	third := trs[0].Apply(optCfg)

	if _, err := tn.Evaluate(tn.Base); err != nil { // miss, cache: [base]
		t.Fatal(err)
	}
	if _, err := tn.Evaluate(optCfg); err != nil { // miss, cache: [opt base]
		t.Fatal(err)
	}
	if tn.statEvalHits != 0 || tn.statEvalMisses != 2 {
		t.Fatalf("after 2 cold evaluations: hits %d, misses %d", tn.statEvalHits, tn.statEvalMisses)
	}
	calls0 := tn.Opt.Stats().OptimizeCalls
	if _, err := tn.Evaluate(tn.Base); err != nil { // hit, base becomes MRU
		t.Fatal(err)
	}
	if tn.Opt.Stats().OptimizeCalls != calls0 {
		t.Error("cache hit still called the optimizer")
	}
	if tn.statEvalHits != 1 {
		t.Fatalf("hits = %d, want 1", tn.statEvalHits)
	}
	if _, err := tn.Evaluate(third); err != nil { // miss, evicts optCfg (LRU)
		t.Fatal(err)
	}
	if tn.statEvalEvicted != 1 {
		t.Fatalf("evictions = %d, want 1", tn.statEvalEvicted)
	}
	if _, ok := tn.evalCache[optCfg.Fingerprint()]; ok {
		t.Error("least-recently-used entry (optimal config) survived eviction")
	}
	if _, ok := tn.evalCache[tn.Base.Fingerprint()]; !ok {
		t.Error("recently used entry (base config) was evicted")
	}
}

// TestOptionsWorkers: the Parallelism knob resolves as documented.
func TestOptionsWorkers(t *testing.T) {
	if w := (Options{Parallelism: 3}).Workers(); w != 3 {
		t.Errorf("Parallelism 3 → %d workers", w)
	}
	if w := (Options{}).Workers(); w < 1 {
		t.Errorf("default workers = %d, want ≥ 1", w)
	}
	if w := (Options{Parallelism: 1}).Workers(); w != 1 {
		t.Errorf("Parallelism 1 → %d workers", w)
	}
}

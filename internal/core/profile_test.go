package core

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/obs"
	"repro/internal/workloads"
)

// TestProfileCoversSessionWallTime is the profiler's accounting check:
// the top-level phases must partition the session, so their total
// stays within 10% of the end-to-end wall time.
func TestProfileCoversSessionWallTime(t *testing.T) {
	db := datagen.TPCH(0.001)
	w, err := workloads.TPCH22()
	if err != nil {
		t.Fatal(err)
	}
	probe, err := NewTuner(db, w, Options{NoViews: true})
	if err != nil {
		t.Fatal(err)
	}
	optCfg, err := probe.OptimalConfiguration()
	if err != nil {
		t.Fatal(err)
	}

	prof := obs.NewProfiler()
	tn, err := NewTuner(db, w, Options{
		NoViews:       true,
		MaxIterations: 40,
		SpaceBudget:   probe.Opt.Sizer().ConfigBytes(optCfg) / 3,
		Profile:       prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tn.Tune()
	if err != nil {
		t.Fatal(err)
	}

	rep := prof.Snapshot()
	rep.WallSeconds = res.Elapsed.Seconds()
	if cov := rep.CoveragePct(); cov < 90 || cov > 110 {
		t.Errorf("top-level phases cover %.1f%% of wall time, want within 10%% (top-level %.3fs, wall %.3fs)",
			cov, rep.TopLevelSeconds, rep.WallSeconds)
	}

	// The search phase must exist, dominate, and carry the
	// optimizer-call attribution.
	search := rep.Phase("search")
	if search == nil {
		t.Fatal("no search phase recorded")
	}
	if search.Counters["optimizer_calls"] <= 0 {
		t.Errorf("search phase lost optimizer-call attribution: %+v", search.Counters)
	}
	// Sub-phases are recorded under their parent and excluded from the
	// top-level partition.
	if rank := rep.Phase("search/rank"); rank == nil || rank.Depth() != 1 {
		t.Errorf("search/rank sub-phase missing: %+v", rank)
	}

	// Calibration rides on the decision log: with a budget forcing
	// relaxation there must be rated samples and a sane economy.
	cal := res.Explain.Calibration
	if cal == nil {
		t.Fatal("no calibration report on Result.Explain")
	}
	if cal.Overall.Samples == 0 || cal.Overall.Rated == 0 {
		t.Errorf("calibration has no rated samples: %+v", cal.Overall)
	}
	if cal.Economy.OptimizerCalls != res.OptimizerCalls {
		t.Errorf("economy calls %d != session calls %d", cal.Economy.OptimizerCalls, res.OptimizerCalls)
	}
	if cal.Economy.PlansReused == 0 {
		t.Error("optimality-principle reuse never triggered during the search")
	}
}

// TestProfileDisabledByDefault guards the nil-profiler fast path: no
// Options.Profile means no phases anywhere, and tuning still works.
func TestProfileDisabledByDefault(t *testing.T) {
	db := datagen.TPCH(0.0005)
	w, err := workloads.TPCH22()
	if err != nil {
		t.Fatal(err)
	}
	tn, err := NewTuner(db, w, Options{NoViews: true, MaxIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tn.Tune()
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("tuning without a profiler broke")
	}
	// Calibration is recorded unconditionally — it needs no profiler.
	if res.Explain.Calibration == nil {
		t.Error("calibration missing without a profiler")
	}
}

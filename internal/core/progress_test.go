package core

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
)

// drainProgress collects every event a finished session published.
// Close() closes the channel; buffered events drain out before ok goes
// false, so this never blocks after Tune returned.
func drainProgress(sub *obs.ProgressSubscription) []obs.ProgressEvent {
	sub.Close()
	var evs []obs.ProgressEvent
	for ev := range sub.C {
		evs = append(evs, ev)
	}
	return evs
}

// TestTuneEmitsProgressPerIteration pins the tentpole contract: a
// budget-constrained session reports at least one live event per
// relaxation iteration, carrying the frontier point, the budget gap,
// and the chosen transformation; the stream ends with a Done event.
func TestTuneEmitsProgressPerIteration(t *testing.T) {
	probe := tpchTuner(t, Options{NoViews: true})
	optCfg, err := probe.OptimalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	budget := probe.Opt.Sizer().ConfigBytes(optCfg) / 3

	prog := obs.NewProgress()
	sub := prog.Subscribe(4096)
	tn := tpchTuner(t, Options{
		NoViews: true, SpaceBudget: budget, MaxIterations: 40, Parallelism: 1,
		Progress: prog,
	})
	res, err := tn.Tune()
	if err != nil {
		t.Fatal(err)
	}
	evs := drainProgress(sub)

	if res.Iterations == 0 {
		t.Fatal("scenario did not relax; budget no longer forces work")
	}
	var search, withTransform int
	for _, ev := range evs {
		if ev.Phase == "search" {
			search++
			if ev.Outcome == "" {
				t.Errorf("search event without outcome: %+v", ev)
			}
		}
		if ev.Transformation != "" {
			withTransform++
		}
		if ev.BudgetBytes != budget {
			t.Errorf("event budget %d, want %d", ev.BudgetBytes, budget)
		}
		if ev.BudgetGapBytes != ev.SizeBytes-budget {
			t.Errorf("budget gap %d != size %d - budget %d", ev.BudgetGapBytes, ev.SizeBytes, budget)
		}
	}
	if search < res.Iterations {
		t.Errorf("%d search events for %d iterations, want >= 1 per iteration", search, res.Iterations)
	}
	if withTransform == 0 {
		t.Error("no event carried a transformation label")
	}
	last := evs[len(evs)-1]
	if !last.Done || last.Phase != "done" {
		t.Errorf("stream does not end with a done event: %+v", last)
	}
	if last.BestCost != res.Best.Cost {
		t.Errorf("final best cost %g, want %g", last.BestCost, res.Best.Cost)
	}
	// Events are seq-ordered with no gaps (one publisher, one stream).
	for i, ev := range evs {
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}

	// The frontier by-product carries the same enrichment.
	if len(res.Frontier) == 0 {
		t.Fatal("Result.Frontier empty")
	}
	labeled := 0
	for _, fp := range res.Frontier {
		if fp.Transformation != "" {
			labeled++
		}
	}
	if labeled == 0 {
		t.Error("no frontier point carries its transformation")
	}
}

// TestProgressStreamSerialIdenticalUnderParallelism is the determinism
// acceptance criterion: with progress enabled, a Parallelism-8 run must
// produce the same recommendation AND the same event stream (up to
// timestamps) as the serial run, because events are emitted only from
// the serial main line.
func TestProgressStreamSerialIdenticalUnderParallelism(t *testing.T) {
	probe := tpchTuner(t, Options{NoViews: true})
	optCfg, err := probe.OptimalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	budget := probe.Opt.Sizer().ConfigBytes(optCfg) / 3

	run := func(parallelism int) (*Result, []obs.ProgressEvent) {
		prog := obs.NewProgress()
		sub := prog.Subscribe(4096)
		tn := tpchTuner(t, Options{
			NoViews: true, SpaceBudget: budget, MaxIterations: 40,
			Parallelism: parallelism, Progress: prog,
		})
		res, err := tn.Tune()
		if err != nil {
			t.Fatal(err)
		}
		return res, drainProgress(sub)
	}
	serialRes, serialEvs := run(1)
	parallelRes, parallelEvs := run(8)
	requireSameOutcome(t, serialRes, parallelRes)

	normalize := func(evs []obs.ProgressEvent) []obs.ProgressEvent {
		out := make([]obs.ProgressEvent, len(evs))
		for i, ev := range evs {
			ev.Time = time.Time{}
			ev.ElapsedMillis = 0
			out[i] = ev
		}
		return out
	}
	se, pe := normalize(serialEvs), normalize(parallelEvs)
	if len(se) != len(pe) {
		t.Fatalf("event count diverged: serial %d, parallel %d", len(se), len(pe))
	}
	for i := range se {
		if !reflect.DeepEqual(se[i], pe[i]) {
			t.Fatalf("event %d diverged:\n  serial   %+v\n  parallel %+v", i, se[i], pe[i])
		}
	}
}

// TestTuneNilProgressUnchanged: attaching no reporter must not change
// the search outcome relative to an attached one (reporting is
// observation, never steering).
func TestTuneNilProgressUnchanged(t *testing.T) {
	probe := tpchTuner(t, Options{NoViews: true})
	optCfg, err := probe.OptimalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	budget := probe.Opt.Sizer().ConfigBytes(optCfg) / 3

	base := Options{NoViews: true, SpaceBudget: budget, MaxIterations: 40, Parallelism: 1}
	bare, err := tpchTuner(t, base).Tune()
	if err != nil {
		t.Fatal(err)
	}
	withProg := base
	withProg.Progress = obs.NewProgress()
	observed, err := tpchTuner(t, withProg).Tune()
	if err != nil {
		t.Fatal(err)
	}
	requireSameOutcome(t, bare, observed)
}

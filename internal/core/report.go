package core

import (
	"encoding/json"
	"io"
	"time"

	"repro/internal/physical"
)

// Report is a serializable summary of one tuning session, suitable for
// archiving recommendations or diffing runs.
type Report struct {
	Paper       string        `json:"paper"`
	Database    string        `json:"database"`
	Workload    string        `json:"workload"`
	GeneratedAt time.Time     `json:"generated_at"`
	Budget      int64         `json:"space_budget_bytes,omitempty"`
	ViewsOn     bool          `json:"views_enabled"`
	Elapsed     time.Duration `json:"elapsed_ns"`

	Initial ConfigSummary `json:"initial"`
	Optimal ConfigSummary `json:"optimal"`
	Best    ConfigSummary `json:"best"`

	ImprovementPct float64 `json:"improvement_pct"`
	Iterations     int     `json:"iterations"`
	OptimizerCalls int64   `json:"optimizer_calls"`
	IndexRequests  int64   `json:"index_requests"`
	ViewRequests   int64   `json:"view_requests"`

	Frontier []FrontierPoint `json:"frontier,omitempty"`
	PerQuery []QueryReport   `json:"per_query"`
	// Explain is the per-structure decision log of the session.
	Explain *ExplainReport `json:"explain,omitempty"`
	// DDL is the executable script materializing the recommendation.
	DDL string `json:"ddl"`
}

// ConfigSummary captures one configuration's aggregates and structures.
type ConfigSummary struct {
	Cost      float64  `json:"cost"`
	SizeBytes int64    `json:"size_bytes"`
	Indexes   []string `json:"indexes"`
	Views     []string `json:"views,omitempty"`
}

// QueryReport is the per-query cost under the initial and recommended
// configurations.
type QueryReport struct {
	ID          string  `json:"id"`
	SQL         string  `json:"sql"`
	Weight      float64 `json:"weight"`
	InitialCost float64 `json:"initial_cost"`
	BestCost    float64 `json:"best_cost"`
	UsesViews   bool    `json:"uses_views,omitempty"`
}

// summarize renders a configuration's structures.
func summarize(ec *EvaluatedConfig) ConfigSummary {
	s := ConfigSummary{Cost: ec.Cost, SizeBytes: ec.SizeBytes}
	for _, ix := range ec.Config.Indexes() {
		s.Indexes = append(s.Indexes, ix.ID())
	}
	for _, v := range ec.Config.Views() {
		s.Views = append(s.Views, v.Name+" := "+v.SQL())
	}
	return s
}

// BuildReport assembles the report for a finished tuning session.
func (t *Tuner) BuildReport(workloadName string, res *Result) *Report {
	r := &Report{
		Paper:          "Bruno & Chaudhuri, Automatic Physical Database Tuning: A Relaxation-based Approach (SIGMOD 2005)",
		Database:       t.DB.Name,
		Workload:       workloadName,
		GeneratedAt:    time.Now().UTC(),
		Budget:         t.Options.SpaceBudget,
		ViewsOn:        !t.Options.NoViews,
		Elapsed:        res.Elapsed,
		Initial:        summarize(res.Initial),
		Optimal:        summarize(res.Optimal),
		Best:           summarize(res.Best),
		ImprovementPct: res.ImprovementPct(),
		Iterations:     res.Iterations,
		OptimizerCalls: res.OptimizerCalls,
		IndexRequests:  res.IndexRequests,
		ViewRequests:   res.ViewRequests,
		Frontier:       res.Frontier,
		Explain:        res.Explain,
		DDL:            physical.ConfigurationDDL(res.Best.Config),
	}
	for i, tq := range t.Queries {
		qr := QueryReport{
			ID:          tq.Query.ID,
			SQL:         tq.Query.SQL,
			Weight:      tq.Query.Weight,
			InitialCost: res.Initial.Results[i].TotalCost(),
			BestCost:    res.Best.Results[i].TotalCost(),
		}
		if p := res.Best.Results[i].Plan; p != nil && len(p.UsedViews) > 0 {
			qr.UsesViews = true
		}
		r.PerQuery = append(r.PerQuery, qr)
	}
	return r
}

// WriteJSON encodes the report with indentation.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport decodes a report written by WriteJSON.
func ReadReport(r io.Reader) (*Report, error) {
	var out Report
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

package core

import (
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/physical"
)

// FrontierPoint is one (space, cost) observation made during the search;
// the set of points is the by-product distribution of configurations the
// paper highlights (Figure 4) — the cost-vs-storage trajectory, captured
// as a first-class output on Result.Frontier.
type FrontierPoint struct {
	Iteration int     `json:"iteration"`
	SizeBytes int64   `json:"size_bytes"`
	Cost      float64 `json:"cost"`
	Fits      bool    `json:"fits"`
	// Transformation names the relaxation step that produced the point
	// (empty for the optimal/warm-start seeds); Penalty is its estimated
	// ΔT/ΔS penalty at selection time.
	Transformation string  `json:"transformation,omitempty"`
	Penalty        float64 `json:"penalty,omitempty"`
}

// Result is the outcome of a relaxation-based tuning session.
type Result struct {
	// Initial is the base configuration (existing indexes only).
	Initial *EvaluatedConfig
	// Optimal is the §2 optimal configuration (unconstrained lower bound
	// for SELECT-only workloads).
	Optimal *EvaluatedConfig
	// Best is the recommended configuration under the space constraint.
	Best *EvaluatedConfig
	// Frontier records every configuration evaluated during the search.
	Frontier []FrontierPoint
	// TransCensus is the number of candidate transformations available at
	// each iteration (Figure 6).
	TransCensus []int
	Iterations  int
	// OptimizerCalls, IndexRequests, ViewRequests count optimizer work.
	OptimizerCalls int64
	IndexRequests  int64
	ViewRequests   int64
	Elapsed        time.Duration
	// Explain is the per-structure decision log: which statements
	// demanded each structure, which transformations touched it along
	// the winning lineage, and why the final state won. Always built;
	// costs no optimizer calls.
	Explain *ExplainReport
	// CalibSamples pairs every accepted relaxation step's estimated ΔT
	// upper bound (§3.3.2) with the realized ΔT — the raw material of
	// the calibration report. Recorded unconditionally; each sample is
	// two floats and a kind string.
	CalibSamples []obs.CalibSample
	// Economy aggregates the session's optimizer-call economy: plans
	// reused vs re-optimized, shortcut prunes, duplicate skips, cache
	// savings.
	Economy obs.WhatIfEconomy
	// ParallelWorkers is the worker count the evaluation engine ran with
	// (Options.Workers()); 1 means the exact serial algorithm.
	ParallelWorkers int
	// Lineage is the winning relaxation lineage root-first: each entry is
	// one accepted step between the optimal configuration and Best, with
	// the full configuration at that point. Empty when no relaxation was
	// needed (Best is the optimal or initial configuration). The replay
	// harness re-executes these configurations against real data.
	Lineage []LineageStep
}

// LineageStep is one accepted step of the winning relaxation lineage.
type LineageStep struct {
	// Iteration is the search iteration that accepted the step.
	Iteration int
	// Kind is the transformation kind that produced it ("multi" when a
	// §3.4 multi-transformation step applied several at once).
	Kind string
	// EstCost / SizeBytes are the step's evaluated workload cost and
	// configuration size.
	EstCost   float64
	SizeBytes int64
	// Config is the configuration after the step (shared, do not mutate).
	Config *physical.Configuration
}

// ImprovementPct returns the paper's improvement metric for the final
// recommendation relative to the initial configuration.
func (r *Result) ImprovementPct() float64 {
	if r.Best == nil || r.Initial == nil {
		return 0
	}
	return Improvement(r.Initial.Cost, r.Best.Cost)
}

// searchNode is one configuration in the pool CP of Figure 5.
type searchNode struct {
	eval   *EvaluatedConfig
	parent *searchNode
	// realizedPenalty is the actual ΔT/ΔS observed when this node was
	// produced from its parent (heuristic 2 of §3.4).
	realizedPenalty float64
	trans           []*physical.Transformation
	deltas          map[string]Delta
	penalties       map[string]float64
	tried           map[string]bool
	// iteration and applied record the node's provenance (the
	// transformations that produced it from its parent, and when) so
	// the winning lineage can be replayed and explained.
	iteration int
	applied   []*physical.Transformation
}

func (n *searchNode) untried() int {
	c := 0
	for _, tr := range n.trans {
		if !n.tried[tr.ID()] {
			c++
		}
	}
	return c
}

// Tune runs the full relaxation-based algorithm (Figure 5 instantiated
// with the §3.4 heuristics) and returns the recommendation plus all
// by-products.
func (t *Tuner) Tune() (*Result, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tune()
}

func (t *Tuner) tune() (*Result, error) {
	start := time.Now()
	stats0 := t.Opt.Stats()
	reused0, reopt0 := t.statPlansReused.Load(), t.statPlansReopt.Load()
	evalHits0, evalMisses0, evalEvicted0 := t.statEvalHits, t.statEvalMisses, t.statEvalEvicted
	specEvals0, specHits0 := t.statSpecEvals, t.statSpecHits
	var cache0 CacheStats
	if t.Options.Cache != nil {
		cache0 = t.Options.Cache.Stats()
	}
	endTune := t.span("tune")
	res, err := t.runSearch(start)
	if err != nil {
		endTune(obs.F{"error": err.Error()})
		return nil, err
	}
	t.fillStats(res, stats0, start)
	res.ParallelWorkers = t.workers()
	res.Economy.OptimizerCalls = res.OptimizerCalls
	res.Economy.PlansReused = t.statPlansReused.Load() - reused0
	res.Economy.PlansReoptimized = t.statPlansReopt.Load() - reopt0
	res.Economy.EvalCacheHits = t.statEvalHits - evalHits0
	res.Economy.EvalCacheMisses = t.statEvalMisses - evalMisses0
	res.Economy.EvalCacheEvictions = t.statEvalEvicted - evalEvicted0
	res.Economy.SpeculativeEvals = t.statSpecEvals - specEvals0
	res.Economy.SpeculativeHits = t.statSpecHits - specHits0
	if c := t.Options.Cache; c != nil {
		cs := c.Stats()
		res.Economy.CacheHits = cs.Hits - cache0.Hits
		res.Economy.CacheCallsSaved = cs.CallsSaved - cache0.CallsSaved
	}
	res.Explain.Calibration = obs.Calibrate(res.CalibSamples, res.Economy)
	if t.Options.Trace.Enabled() {
		endTune(obs.F{
			"best_fp":              res.Best.Config.Fingerprint(),
			"best_cost":            res.Best.Cost,
			"best_size":            res.Best.SizeBytes,
			"improvement_pct":      res.ImprovementPct(),
			"iterations":           res.Iterations,
			"parallel_workers":     res.ParallelWorkers,
			"eval_cache_hits":      res.Economy.EvalCacheHits,
			"eval_cache_misses":    res.Economy.EvalCacheMisses,
			"eval_cache_evictions": res.Economy.EvalCacheEvictions,
			"speculative_evals":    res.Economy.SpeculativeEvals,
			"speculative_hits":     res.Economy.SpeculativeHits,
		})
	} else {
		endTune(nil)
	}
	return res, nil
}

// runSearch is the traced body of Tune: Figure 5 instantiated with the
// §3.4 heuristics, emitting one iteration/candidates/eval event group
// per relaxation step and recording the winning lineage for the
// explain report.
func (t *Tuner) runSearch(start time.Time) (*Result, error) {
	trace := t.Options.Trace
	prof := t.Options.Profile
	prog := t.Options.Progress
	res := &Result{}

	// report publishes one live progress event, stamping the fields every
	// event shares (budget, gap, iteration, elapsed). Call sites guard on
	// prog.Enabled() so the nil path never constructs an event.
	budget0 := t.Options.SpaceBudget
	report := func(ev obs.ProgressEvent) {
		if budget0 > 0 {
			ev.BudgetBytes = budget0
			ev.BudgetGapBytes = ev.SizeBytes - budget0
		}
		ev.Iteration = res.Iterations
		ev.ElapsedMillis = time.Since(start).Milliseconds()
		prog.Report(ev)
	}

	endPhase := t.phase("evaluate-initial")
	initial, err := t.evaluate(t.Base)
	if err != nil {
		endPhase(obs.F{"error": err.Error()})
		return nil, err
	}
	endPhase(obs.F{"cost": initial.Cost, "size": initial.SizeBytes})
	res.Initial = initial
	if prog.Enabled() {
		report(obs.ProgressEvent{
			Phase: "initial", SizeBytes: initial.SizeBytes, Cost: initial.Cost,
			Fits: budget0 <= 0 || initial.SizeBytes <= budget0,
		})
	}

	endPhase = t.phase("optimal-config")
	optimalCfg, err := t.optimalConfiguration()
	if err != nil {
		endPhase(obs.F{"error": err.Error()})
		return nil, err
	}
	endPhase(obs.F{"indexes": optimalCfg.NumIndexes(), "views": optimalCfg.NumViews()})

	endPhase = t.phase("evaluate-optimal")
	optimal, err := t.evaluate(optimalCfg)
	if err != nil {
		endPhase(obs.F{"error": err.Error()})
		return nil, err
	}
	endPhase(obs.F{"cost": optimal.Cost, "size": optimal.SizeBytes, "fp": optimal.Config.Fingerprint()})
	res.Optimal = optimal

	hasUpdates := t.hasUpdates()
	budget := t.Options.SpaceBudget
	unconstrained := budget <= 0
	if prog.Enabled() {
		report(obs.ProgressEvent{
			Phase: "optimal", SizeBytes: optimal.SizeBytes, Cost: optimal.Cost,
			Fits: unconstrained || optimal.SizeBytes <= budget,
		})
	}
	if unconstrained && !hasUpdates {
		// §2/§4.1: with no constraints and no updates the optimal
		// configuration is the answer; no search is needed.
		res.Best = optimal
		res.Frontier = append(res.Frontier,
			FrontierPoint{SizeBytes: optimal.SizeBytes, Cost: optimal.Cost, Fits: true})
		endExplain := prof.StartAlloc("explain")
		res.Explain = t.buildExplain(res, nil, explainSourceOptimal)
		endExplain()
		if prog.Enabled() {
			report(obs.ProgressEvent{
				Phase: "done", Outcome: "evaluated", Done: true,
				SizeBytes: optimal.SizeBytes, Cost: optimal.Cost,
				BestCost: optimal.Cost, Fits: true,
			})
		}
		return res, nil
	}
	effBudget := budget
	if unconstrained {
		effBudget = math.MaxInt64
	}

	fits := func(ec *EvaluatedConfig) bool { return ec.SizeBytes <= effBudget }
	endEnum := prof.StartAlloc("enumerate-root")
	root := t.newSearchNode(optimal, nil, 0)
	endEnum()
	var cbest *EvaluatedConfig
	var bestNode *searchNode
	if fits(initial) {
		cbest = initial
	}
	if fits(optimal) && (cbest == nil || optimal.Cost < cbest.Cost) {
		cbest, bestNode = optimal, root
	}

	pool := []*searchNode{root}
	seen := map[string]bool{optimalCfg.Fingerprint(): true}
	res.Frontier = append(res.Frontier,
		FrontierPoint{SizeBytes: optimal.SizeBytes, Cost: optimal.Cost, Fits: fits(optimal)})

	// Warm start (online retuning): evaluate the previous recommendation
	// under the current workload, let it join the pool, and adopt it as
	// the incumbent when it fits — the search then prunes against a good
	// bound immediately instead of rediscovering it by relaxation. The
	// evaluation is incremental from the optimal configuration: only
	// queries whose optimal plan used a structure absent from the warm
	// configuration are re-optimized, so a warm start over a repeat-heavy
	// workload costs only a handful of optimizer calls.
	if ws := t.Options.WarmStart; ws != nil {
		endPhase = t.phase("warm-start")
		warmCfg := ws.Clone()
		for _, ix := range t.Base.Indexes() {
			warmCfg.AddIndex(ix)
		}
		if fp := warmCfg.Fingerprint(); !seen[fp] {
			seen[fp] = true
			removedIdx, removedViews := optimalCfg.Diff(warmCfg)
			warm, ok, err := t.evaluateIncremental(optimal, warmCfg, removedIdx, removedViews, 0)
			if err != nil {
				endPhase(obs.F{"error": err.Error()})
				return nil, err
			}
			if ok {
				res.Frontier = append(res.Frontier,
					FrontierPoint{SizeBytes: warm.SizeBytes, Cost: warm.Cost, Fits: fits(warm)})
				warmNode := t.newSearchNode(warm, nil, 0)
				pool = append(pool, warmNode)
				if fits(warm) && (cbest == nil || warm.Cost < cbest.Cost) {
					cbest, bestNode = warm, warmNode
				}
				endPhase(obs.F{"cost": warm.Cost, "size": warm.SizeBytes, "adopted": cbest == warm})
				if prog.Enabled() {
					ev := obs.ProgressEvent{
						Phase: "warm-start", SizeBytes: warm.SizeBytes,
						Cost: warm.Cost, Fits: fits(warm), PoolSize: len(pool),
					}
					if cbest != nil {
						ev.BestCost = cbest.Cost
					}
					report(ev)
				}
			} else {
				endPhase(obs.F{"adopted": false, "pruned": true})
			}
		} else {
			endPhase(obs.F{"adopted": false, "duplicate": true})
		}
	}

	maxIter := t.Options.MaxIterations
	if maxIter <= 0 {
		maxIter = 200
	}
	last := root

	endSearch := t.phase("search")
	for iter := 0; iter < maxIter; iter++ {
		if t.Options.TimeBudget > 0 && time.Since(start) > t.Options.TimeBudget {
			if trace.Enabled() {
				trace.Emit(obs.EvSkip, obs.F{"reason": "time-budget", "iter": iter})
			}
			break
		}
		tPick := time.Now()
		node, pickReason := t.pickNode(pool, last, effBudget, hasUpdates)
		prof.Since("search/pick-node", tPick)
		if node == nil {
			break // no configuration has an applicable transformation left
		}
		res.TransCensus = append(res.TransCensus, poolCensus(pool))
		if trace.Enabled() {
			trace.Emit(obs.EvIteration, obs.F{
				"iter":        iter,
				"pick_reason": pickReason,
				"node_fp":     node.eval.Config.Fingerprint(),
				"node_cost":   node.eval.Cost,
				"node_size":   node.eval.SizeBytes,
				"pool":        len(pool),
				"untried":     node.untried(),
			})
		}

		tRank := time.Now()
		ranked, skyPruned := t.rankTransformations(node, effBudget, hasUpdates)
		prof.Since("search/rank", tRank)
		if trace.Enabled() {
			trace.Emit(obs.EvCandidates, candidateFields(iter, ranked, skyPruned))
		}
		if len(ranked) == 0 {
			// Exhausted this node; try another next iteration.
			markAllTried(node)
			last = nil
			if trace.Enabled() {
				trace.Emit(obs.EvSkip, obs.F{"reason": "exhausted", "iter": iter})
			}
			if prog.Enabled() {
				ev := obs.ProgressEvent{
					Phase: "search", Outcome: "exhausted",
					SizeBytes: node.eval.SizeBytes, Cost: node.eval.Cost,
					Fits: fits(node.eval), PoolSize: len(pool),
					CandidatesPruned: len(skyPruned),
				}
				if cbest != nil {
					ev.BestCost = cbest.Cost
				}
				report(ev)
			}
			continue
		}
		chosen := t.selectNonConflicting(ranked)
		cfgNew := node.eval.Config
		var removedIdx, removedViews []string
		var chosenIDs []string
		estDT, estDS := 0.0, int64(0)
		for _, tf := range chosen {
			node.tried[tf.ID()] = true
			cfgNew = tf.Apply(cfgNew)
			removedIdx = append(removedIdx, tf.RemovedIndexIDs()...)
			removedViews = append(removedViews, tf.RemovedViewNames()...)
			if d, ok := node.deltas[tf.ID()]; ok {
				estDT += d.DT
				estDS += d.DS
			}
			chosenIDs = append(chosenIDs, tf.ID())
		}
		res.Iterations++
		transLabel := strings.Join(chosenIDs, " + ")
		if trace.Enabled() {
			trace.Emit(obs.EvApply, obs.F{
				"iter": iter, "trans": chosenIDs,
				"est_dt": estDT, "est_ds": estDS, "penalty": ranked[0].penalty,
			})
		}

		fp := cfgNew.Fingerprint()
		if seen[fp] {
			last = node
			res.Economy.DuplicateSkips++
			if trace.Enabled() {
				trace.Emit(obs.EvSkip, obs.F{"reason": "duplicate", "iter": iter, "fp": fp})
			}
			if prog.Enabled() {
				ev := obs.ProgressEvent{
					Phase: "search", Outcome: "duplicate",
					SizeBytes: node.eval.SizeBytes, Cost: node.eval.Cost,
					Fits: fits(node.eval), PoolSize: len(pool),
					Transformation: transLabel, Penalty: ranked[0].penalty,
					CandidatesPruned: len(skyPruned),
				}
				if cbest != nil {
					ev.BestCost = cbest.Cost
				}
				report(ev)
			}
			continue
		}
		seen[fp] = true

		cutoff := 0.0
		if cbest != nil {
			cutoff = cbest.Cost
		}
		// Shortcut evaluation only prunes when the new configuration
		// could never beat the incumbent: relaxations only grow cost, so
		// a config above the incumbent's cost is a dead end (§3.5) —
		// except under updates, where removals can reduce cost.
		if hasUpdates {
			cutoff = 0
		}
		tEval := time.Now()
		evalNew, ok, err := t.evaluateStep(node, cfgNew, removedIdx, removedViews, cutoff, ranked, chosen, seen)
		prof.Since("search/evaluate", tEval)
		if err != nil {
			endSearch(obs.F{"error": err.Error()})
			return nil, err
		}
		if !ok {
			last = node
			res.Economy.ShortcutPrunes++
			if trace.Enabled() {
				trace.Emit(obs.EvSkip, obs.F{"reason": "shortcut", "iter": iter, "fp": fp, "cutoff": cutoff})
			}
			if prog.Enabled() {
				ev := obs.ProgressEvent{
					Phase: "search", Outcome: "shortcut",
					SizeBytes: node.eval.SizeBytes, Cost: node.eval.Cost,
					Fits: fits(node.eval), PoolSize: len(pool),
					Transformation: transLabel, Penalty: ranked[0].penalty,
					CandidatesPruned: len(skyPruned),
				}
				if cbest != nil {
					ev.BestCost = cbest.Cost
				}
				report(ev)
			}
			continue
		}
		if t.Options.ShrinkUnused {
			tShrink := time.Now()
			shrunk, serr := t.shrinkUnused(evalNew)
			prof.Since("search/shrink", tShrink)
			if serr != nil {
				endSearch(obs.F{"error": serr.Error()})
				return nil, serr
			}
			if shrunk != nil {
				evalNew = shrunk
			}
		}
		realized := realizedPenalty(node.eval, evalNew)
		tEnum := time.Now()
		child := t.newSearchNode(evalNew, node, realized)
		prof.Since("search/enumerate", tEnum)
		child.iteration = res.Iterations
		child.applied = chosen
		pool = append(pool, child)
		res.Frontier = append(res.Frontier, FrontierPoint{
			Iteration: res.Iterations, SizeBytes: evalNew.SizeBytes,
			Cost: evalNew.Cost, Fits: fits(evalNew),
			Transformation: transLabel, Penalty: ranked[0].penalty,
		})
		newBest := fits(evalNew) && (cbest == nil || evalNew.Cost < cbest.Cost)
		if newBest {
			cbest, bestNode = evalNew, child
		}
		realizedDT := evalNew.Cost - node.eval.Cost
		kind := "multi"
		if len(chosen) == 1 {
			kind = chosen[0].Kind.String()
		}
		res.CalibSamples = append(res.CalibSamples,
			obs.CalibSample{Kind: kind, EstDT: estDT, RealizedDT: realizedDT})
		if trace.Enabled() {
			f := obs.F{
				"iter":        iter,
				"fp":          evalNew.Config.Fingerprint(),
				"parent_fp":   node.eval.Config.Fingerprint(),
				"chosen":      chosenIDs,
				"cost":        evalNew.Cost,
				"size":        evalNew.SizeBytes,
				"fits":        fits(evalNew),
				"est_dt":      estDT,
				"realized_dt": realizedDT,
				"new_best":    newBest,
			}
			if budget0 > 0 {
				f["budget_gap"] = evalNew.SizeBytes - budget0
			}
			if estDT > 0 {
				// Bound tightness: the §3.3.2 estimate is an upper
				// bound, so values ≤ 1 mean the bound held.
				f["tightness"] = realizedDT / estDT
			}
			trace.Emit(obs.EvEval, f)
		}
		if prog.Enabled() {
			ev := obs.ProgressEvent{
				Phase: "search", Outcome: "evaluated",
				SizeBytes: evalNew.SizeBytes, Cost: evalNew.Cost,
				Fits: fits(evalNew), PoolSize: len(pool),
				Transformation: transLabel, Penalty: ranked[0].penalty,
				CandidatesPruned: len(skyPruned),
			}
			if cbest != nil {
				ev.BestCost = cbest.Cost
			}
			report(ev)
		}
		last = child
	}
	endSearch(obs.F{"iterations": res.Iterations, "pool": len(pool), "evaluated": len(res.Frontier)})

	source := explainSourceRelaxed
	if cbest == nil {
		cbest = initial // nothing fit: fall back to the existing design
		bestNode = nil
	}
	switch {
	case bestNode == nil:
		source = explainSourceInitial
	case bestNode == root:
		source = explainSourceOptimal
	case bestNode.parent == nil:
		source = explainSourceWarmStart
	}
	res.Best = cbest
	endExplain := prof.StartAlloc("explain")
	res.Explain = t.buildExplain(res, bestNode, source)
	endExplain()
	if prog.Enabled() {
		report(obs.ProgressEvent{
			Phase: "done", Done: true,
			SizeBytes: cbest.SizeBytes, Cost: cbest.Cost,
			BestCost: cbest.Cost, Fits: fits(cbest),
		})
	}
	return res, nil
}

// candidateFields renders the ranked-candidate trace payload: the
// penalty components of the top candidates plus skyline accounting.
// The list is capped so traces of transformation-rich nodes stay small.
func candidateFields(iter int, ranked, skyPruned []candidate) obs.F {
	const maxList = 16
	top := make([]obs.F, 0, min(len(ranked), maxList))
	for i, c := range ranked {
		if i >= maxList {
			break
		}
		top = append(top, obs.F{
			"id": c.tr.ID(), "kind": c.tr.Kind.String(),
			"dt": c.delta.DT, "ds": c.delta.DS, "penalty": c.penalty,
		})
	}
	f := obs.F{
		"iter":           iter,
		"survivors":      len(ranked),
		"skyline_pruned": len(skyPruned),
		"top":            top,
	}
	if len(skyPruned) > 0 {
		ids := make([]string, 0, min(len(skyPruned), maxList))
		for i, c := range skyPruned {
			if i >= maxList {
				break
			}
			ids = append(ids, c.tr.ID())
		}
		f["pruned"] = ids
	}
	if len(ranked) > maxList || len(skyPruned) > maxList {
		f["truncated"] = true
	}
	return f
}

func (t *Tuner) fillStats(res *Result, stats0 optimizer.Stats, start time.Time) {
	now := t.Opt.Stats()
	res.OptimizerCalls = now.OptimizeCalls - stats0.OptimizeCalls
	res.IndexRequests = now.IndexRequests - stats0.IndexRequests
	res.ViewRequests = now.ViewRequests - stats0.ViewRequests
	res.Elapsed = time.Since(start)
}

// selectNonConflicting picks the minimal-penalty transformation plus, in
// the §3.5 multiple-transformations variation, further low-penalty
// transformations whose inputs are disjoint from everything already
// chosen (merging I1 and I2 after removing I1 would be contradictory).
func (t *Tuner) selectNonConflicting(ranked []candidate) []*physical.Transformation {
	limit := t.Options.MultiTransform
	if limit < 2 {
		return []*physical.Transformation{ranked[0].tr}
	}
	touched := map[string]bool{}
	note := func(tr *physical.Transformation) {
		for _, id := range tr.RemovedIndexIDs() {
			touched[id] = true
		}
		for _, vn := range tr.RemovedViewNames() {
			touched["v:"+vn] = true
		}
	}
	conflicts := func(tr *physical.Transformation) bool {
		for _, id := range tr.RemovedIndexIDs() {
			if touched[id] {
				return true
			}
		}
		for _, vn := range tr.RemovedViewNames() {
			if touched["v:"+vn] {
				return true
			}
		}
		return false
	}
	out := []*physical.Transformation{ranked[0].tr}
	note(ranked[0].tr)
	for _, c := range ranked[1:] {
		if len(out) >= limit {
			break
		}
		if conflicts(c.tr) {
			continue
		}
		out = append(out, c.tr)
		note(c.tr)
	}
	return out
}

// shrinkUnused implements the §3.5 shrinking variation: structures no
// plan reads are dropped from the configuration. Returns nil when
// nothing shrinks. Plans stay valid because only unused structures go.
func (t *Tuner) shrinkUnused(ec *EvaluatedConfig) (*EvaluatedConfig, error) {
	used := map[string]bool{}
	usedViews := map[string]bool{}
	for _, res := range ec.Results {
		if res.Plan == nil {
			continue
		}
		for _, id := range res.Plan.UsedIndexIDs() {
			used[id] = true
		}
		for _, vn := range res.Plan.UsedViews {
			usedViews[vn] = true
		}
	}
	shrunk := ec.Config.Clone()
	changed := false
	for _, v := range ec.Config.Views() {
		if !usedViews[v.Name] {
			shrunk.RemoveView(v.Name)
			changed = true
		}
	}
	for _, ix := range ec.Config.Indexes() {
		if ix.Required || used[ix.ID()] {
			continue
		}
		// Keep the clustered index of a surviving view (it stores the
		// view's rows even when plans read a secondary view index).
		if ix.Clustered && shrunk.View(ix.Table) != nil {
			continue
		}
		if shrunk.RemoveIndex(ix.ID()) {
			changed = true
		}
	}
	if !changed {
		return nil, nil
	}
	out, ok, err := t.evaluateIncremental(ec, shrunk, nil, nil, 0)
	if err != nil || !ok {
		return nil, err
	}
	return out, nil
}

// realizedPenalty is the observed ΔT/ΔS of one relaxation step.
func realizedPenalty(parent, child *EvaluatedConfig) float64 {
	dT := child.Cost - parent.Cost
	dS := float64(parent.SizeBytes - child.SizeBytes)
	if dS < 1 {
		dS = 1
	}
	return dT / dS
}

// markAllTried exhausts a node in place — its existing tried map gains
// every transformation, without discarding entries already present.
func markAllTried(n *searchNode) {
	for _, tr := range n.trans {
		n.tried[tr.ID()] = true
	}
}

func poolCensus(pool []*searchNode) int {
	total := 0
	for _, n := range pool {
		total += n.untried()
	}
	return total
}

// newSearchNode enumerates the node's transformations eagerly (the census
// of Figure 6 needs them) and estimates merged-view cardinalities.
func (t *Tuner) newSearchNode(ec *EvaluatedConfig, parent *searchNode, realized float64) *searchNode {
	opts := physical.EnumerateOptions{
		NoViews:    t.Options.NoViews,
		HeapTables: t.heapTables,
		WidthOf:    t.viewWidthFn(),
	}
	trans := physical.Enumerate(ec.Config, opts)
	for _, tr := range trans {
		if tr.Kind == physical.TransMergeViews && tr.VM.EstRows == 0 {
			tr.VM.EstRows = t.Opt.EstimateViewRows(tr.VM)
		}
	}
	return &searchNode{
		eval:            ec,
		parent:          parent,
		realizedPenalty: realized,
		trans:           trans,
		deltas:          map[string]Delta{},
		penalties:       map[string]float64{},
		tried:           map[string]bool{},
	}
}

// pickNode implements §3.4's configuration-selection heuristics (with the
// §3.6 modification for update workloads):
//  1. keep relaxing the last configuration while it exceeds the budget
//     (or, with updates, while it improved on its parent);
//  2. otherwise revisit the chain node whose relaxation realized the
//     largest penalty;
//  3. otherwise pick the cheapest configuration with work left.
//
// The returned reason string labels which heuristic selected the node
// (for the trace): "relax-last", "chain-correction", or "cheapest".
func (t *Tuner) pickNode(pool []*searchNode, last *searchNode, budget int64, hasUpdates bool) (*searchNode, string) {
	if last != nil && last.untried() > 0 {
		over := last.eval.SizeBytes > budget
		improved := hasUpdates && last.parent != nil && last.eval.Cost < last.parent.eval.Cost
		if over || improved {
			return last, "relax-last"
		}
	}
	if !t.Options.DisableChainCorrection && last != nil {
		var best *searchNode
		for n := last; n != nil; n = n.parent {
			if n.untried() == 0 {
				continue
			}
			if best == nil || n.realizedPenalty > best.realizedPenalty {
				best = n
			}
		}
		if best != nil {
			return best, "chain-correction"
		}
	}
	var best *searchNode
	for _, n := range pool {
		if n.untried() == 0 {
			continue
		}
		if best == nil || n.eval.Cost < best.eval.Cost {
			best = n
		}
	}
	return best, "cheapest"
}

// rankTransformations returns the node's untried transformations sorted
// by increasing penalty, plus the candidates the §3.6 skyline filter
// discarded (for the trace; empty unless the workload has updates).
func (t *Tuner) rankTransformations(node *searchNode, budget int64, hasUpdates bool) (ranked, skyPruned []candidate) {
	if w := t.workers(); w > 1 {
		t.precomputeDeltas(node, w)
	}
	var cands []candidate
	spaceOver := node.eval.SizeBytes - budget
	fitsAlready := spaceOver <= 0

	for _, tr := range node.trans {
		id := tr.ID()
		if node.tried[id] {
			continue
		}
		d, ok := node.deltas[id]
		if !ok {
			var err error
			d, err = t.boundDelta(node.eval, tr)
			if err != nil {
				node.tried[id] = true
				continue
			}
			node.deltas[id] = d
		}
		// Useless moves: no space saved and no cost benefit.
		if d.DS <= 0 && d.DT >= 0 {
			continue
		}
		var pen float64
		switch {
		case t.Options.PlainPenalty:
			if d.DS <= 0 {
				continue
			}
			pen = d.DT / float64(d.DS)
		case fitsAlready:
			// Already under budget (update workloads keep relaxing):
			// space is irrelevant, rank by ΔT alone (§3.6).
			pen = d.DT
			if d.DT >= 0 {
				continue // only cost-reducing moves are useful now
			}
		default:
			denom := float64(d.DS)
			if over := float64(spaceOver); over < denom {
				denom = over
			}
			if denom <= 0 {
				continue
			}
			pen = d.DT / denom
		}
		cands = append(cands, candidate{tr: tr, delta: d, penalty: pen})
	}
	if len(cands) == 0 {
		return nil, nil
	}
	if hasUpdates && !t.Options.DisableSkyline {
		tSky := time.Now()
		kept := skyline(cands)
		t.Options.Profile.Since("search/skyline", tSky)
		if len(kept) < len(cands) {
			keptIDs := make(map[string]bool, len(kept))
			for _, c := range kept {
				keptIDs[c.tr.ID()] = true
			}
			for _, c := range cands {
				if !keptIDs[c.tr.ID()] {
					skyPruned = append(skyPruned, c)
				}
			}
		}
		cands = kept
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].penalty < cands[j].penalty })
	return cands, skyPruned
}

// candidate pairs a transformation with its estimated deltas and penalty.
type candidate struct {
	tr      *physical.Transformation
	delta   Delta
	penalty float64
}

// skyline keeps only non-dominated candidates: tr2 dominates tr1 when it
// costs no more (ΔT ≤) and saves at least as much space (ΔS ≥), strictly
// better in one dimension (§3.6 fixes the penalty function's poor
// behaviour when comparing two negative-cost transformations).
//
// The filter is a plane sweep in O(n log n): visiting candidates by
// decreasing ΔS, a candidate is dominated exactly when some
// strictly-larger-ΔS candidate has ΔT ≤ its own (prevMin), or an
// equal-ΔS candidate has strictly smaller ΔT (groupMin). Exact
// duplicates never dominate each other, matching the strictness clause.
// Survivors keep their input order.
func skyline(cands []candidate) []candidate {
	n := len(cands)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ca, cb := &cands[perm[a]].delta, &cands[perm[b]].delta
		if ca.DS != cb.DS {
			return ca.DS > cb.DS
		}
		return ca.DT < cb.DT
	})
	dominated := make([]bool, n)
	prevMin := math.Inf(1) // min ΔT over all strictly-larger-ΔS candidates
	for i := 0; i < n; {
		ds := cands[perm[i]].delta.DS
		groupMin := math.Inf(1)
		j := i
		for ; j < n && cands[perm[j]].delta.DS == ds; j++ {
			dt := cands[perm[j]].delta.DT
			if prevMin <= dt || groupMin < dt {
				dominated[perm[j]] = true
			}
			if dt < groupMin {
				groupMin = dt
			}
		}
		if groupMin < prevMin {
			prevMin = groupMin
		}
		i = j
	}
	var out []candidate
	for i, c := range cands {
		if !dominated[i] {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return cands
	}
	return out
}

// hasUpdates reports whether the workload modifies data.
func (t *Tuner) hasUpdates() bool {
	for _, tq := range t.Queries {
		if tq.Bound.IsUpdate() {
			return true
		}
	}
	return false
}

package core

import (
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/physical"
	"repro/internal/workloads"
)

// TestIncrementalEvaluationMatchesFull validates the optimality-principle
// optimization (§3/§3.3.2): re-optimizing only the queries that used a
// removed structure yields exactly the same configuration cost as
// re-optimizing everything.
func TestIncrementalEvaluationMatchesFull(t *testing.T) {
	tn := tpchTuner(t, Options{NoViews: true})
	optCfg, err := tn.OptimalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	parent, err := tn.Evaluate(optCfg)
	if err != nil {
		t.Fatal(err)
	}
	trs := physical.Enumerate(optCfg, physical.EnumerateOptions{NoViews: true, HeapTables: tn.heapTables})
	rng := rand.New(rand.NewSource(21))
	rng.Shuffle(len(trs), func(i, j int) { trs[i], trs[j] = trs[j], trs[i] })
	for _, tr := range trs[:15] {
		cfgNew := tr.Apply(optCfg)
		inc, ok, err := tn.EvaluateIncremental(parent, cfgNew, tr.RemovedIndexIDs(), tr.RemovedViewNames(), 0)
		if err != nil || !ok {
			t.Fatalf("%s: %v", tr, err)
		}
		// Fresh tuner avoids the eval cache, forcing full re-optimization.
		tn2 := tpchTuner(t, Options{NoViews: true, FullReoptimize: true})
		full, err := tn2.Evaluate(cfgNew)
		if err != nil {
			t.Fatal(err)
		}
		if diff := inc.Cost - full.Cost; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("%s: incremental %.6f != full %.6f", tr, inc.Cost, full.Cost)
		}
	}
}

// TestIncrementalSavesOptimizerCalls: the incremental path must call the
// optimizer far less than full re-evaluation.
func TestIncrementalSavesOptimizerCalls(t *testing.T) {
	tn := tpchTuner(t, Options{NoViews: true})
	optCfg, err := tn.OptimalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	parent, err := tn.Evaluate(optCfg)
	if err != nil {
		t.Fatal(err)
	}
	trs := physical.Enumerate(optCfg, physical.EnumerateOptions{NoViews: true, HeapTables: tn.heapTables})
	var tr *physical.Transformation
	for _, cand := range trs {
		if cand.Kind == physical.TransPrefixIndex {
			tr = cand
			break
		}
	}
	if tr == nil {
		t.Skip("no prefix transformation found")
	}
	before := tn.Opt.Stats().OptimizeCalls
	_, ok, err := tn.EvaluateIncremental(parent, tr.Apply(optCfg), tr.RemovedIndexIDs(), tr.RemovedViewNames(), 0)
	if err != nil || !ok {
		t.Fatal(err)
	}
	calls := tn.Opt.Stats().OptimizeCalls - before
	if calls >= int64(len(tn.Queries)) {
		t.Errorf("incremental evaluation used %d calls for %d queries", calls, len(tn.Queries))
	}
}

func TestTuneRespectsBudget(t *testing.T) {
	tn := tpchTuner(t, Options{NoViews: true})
	optCfg, err := tn.OptimalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	optSize := tn.Opt.Sizer().ConfigBytes(optCfg)
	for _, frac := range []int64{4, 2} {
		budget := optSize / frac
		tn2 := tpchTuner(t, Options{NoViews: true, SpaceBudget: budget, MaxIterations: 60})
		res, err := tn2.Tune()
		if err != nil {
			t.Fatal(err)
		}
		if res.Best.SizeBytes > budget {
			t.Errorf("budget %d violated: %d", budget, res.Best.SizeBytes)
		}
		if res.Best.Cost > res.Initial.Cost {
			t.Errorf("worse than doing nothing: %.1f > %.1f", res.Best.Cost, res.Initial.Cost)
		}
	}
}

func TestTuneMoreSpaceNeverHurts(t *testing.T) {
	tn := tpchTuner(t, Options{NoViews: true})
	optCfg, err := tn.OptimalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	optSize := tn.Opt.Sizer().ConfigBytes(optCfg)
	var prevCost float64
	for i, frac := range []int64{5, 3, 2, 1} {
		tn2 := tpchTuner(t, Options{NoViews: true, SpaceBudget: optSize / frac, MaxIterations: 80})
		res, err := tn2.Tune()
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.Best.Cost > prevCost*1.02 {
			t.Errorf("more space degraded the recommendation: %.1f (budget /%d) > %.1f", res.Best.Cost, frac, prevCost)
		}
		prevCost = res.Best.Cost
	}
}

func TestTuneUnconstrainedSelectOnlyReturnsOptimal(t *testing.T) {
	tn := tpchTuner(t, Options{NoViews: true})
	res, err := tn.Tune()
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != res.Optimal {
		t.Error("without constraints or updates the optimal configuration is the answer")
	}
	if res.Iterations != 0 {
		t.Errorf("no search should run: %d iterations", res.Iterations)
	}
}

func TestTuneFrontierAndCensusRecorded(t *testing.T) {
	tn := tpchTuner(t, Options{NoViews: true, MaxIterations: 25})
	optCfg, err := tn.OptimalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	budget := tn.Opt.Sizer().ConfigBytes(optCfg) / 3
	tn2 := tpchTuner(t, Options{NoViews: true, MaxIterations: 25, SpaceBudget: budget})
	res, err := tn2.Tune()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) < 2 {
		t.Errorf("frontier too small: %d", len(res.Frontier))
	}
	if len(res.TransCensus) == 0 {
		t.Error("transformation census missing")
	}
	for _, c := range res.TransCensus {
		if c <= 0 {
			t.Error("census entries must be positive while searching")
		}
	}
}

// TestTuneAblations: every ablation switch still produces a valid
// recommendation; the paper variants only change guidance quality.
func TestTuneAblations(t *testing.T) {
	db := datagen.TPCH(0.001)
	w, err := workloads.TPCH22()
	if err != nil {
		t.Fatal(err)
	}
	probe, err := NewTuner(db, w, Options{NoViews: true})
	if err != nil {
		t.Fatal(err)
	}
	optCfg, err := probe.OptimalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	budget := probe.Opt.Sizer().ConfigBytes(optCfg) / 3
	variants := map[string]Options{
		"paper":       {NoViews: true, SpaceBudget: budget, MaxIterations: 30},
		"plain":       {NoViews: true, SpaceBudget: budget, MaxIterations: 30, PlainPenalty: true},
		"no-chain":    {NoViews: true, SpaceBudget: budget, MaxIterations: 30, DisableChainCorrection: true},
		"no-shortcut": {NoViews: true, SpaceBudget: budget, MaxIterations: 30, DisableShortcut: true},
		"full-reopt":  {NoViews: true, SpaceBudget: budget, MaxIterations: 30, FullReoptimize: true},
	}
	for name, opts := range variants {
		tn, err := NewTuner(db, w, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tn.Tune()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Best.SizeBytes > budget {
			t.Errorf("%s: budget violated", name)
		}
		if res.Best.Cost > res.Initial.Cost {
			t.Errorf("%s: worse than initial", name)
		}
	}
}

// TestTuneUpdateWorkloadDropsMaintenanceHogs: with updates, unconstrained
// tuning must end below the raw optimal configuration's total cost (the
// §3.6 behaviour of relaxing past the fit point).
func TestTuneUpdateWorkloadDropsMaintenanceHogs(t *testing.T) {
	db := datagen.TPCH(0.001)
	w, err := workloads.FromStatements("upd", "tpch", []string{
		"SELECT o_orderpriority, COUNT(*) FROM orders WHERE o_orderdate >= 9131 GROUP BY o_orderpriority",
		"SELECT l_shipmode, SUM(l_extendedprice) FROM lineitem WHERE l_shipdate > 9131 GROUP BY l_shipmode",
		"UPDATE lineitem SET l_discount = l_discount + 0.01 WHERE l_shipdate >= 10400",
		"UPDATE orders SET o_totalprice = o_totalprice * 1.05 WHERE o_orderdate >= 10400",
	})
	if err != nil {
		t.Fatal(err)
	}
	tn, err := NewTuner(db, w, Options{NoViews: true, MaxIterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tn.Tune()
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Error("update workloads must search even without a space constraint")
	}
	if res.Best.Cost > res.Optimal.Cost {
		t.Errorf("search should not end above the starting configuration: %.1f > %.1f",
			res.Best.Cost, res.Optimal.Cost)
	}
}

func TestSkylineFiltersDominated(t *testing.T) {
	cands := []candidate{
		{penalty: -1, delta: Delta{DT: -10, DS: 10}},
		{penalty: -0.66, delta: Delta{DT: -20, DS: 30}}, // dominates the first
		{penalty: 5, delta: Delta{DT: 50, DS: 10}},      // dominated by the second
	}
	out := skyline(cands)
	if len(out) != 1 || out[0].delta.DT != -20 {
		t.Errorf("skyline: %+v", out)
	}
}

func TestSkylineKeepsIncomparable(t *testing.T) {
	cands := []candidate{
		{delta: Delta{DT: -10, DS: 10}},
		{delta: Delta{DT: -5, DS: 20}},
	}
	if got := skyline(cands); len(got) != 2 {
		t.Errorf("incomparable candidates must survive: %+v", got)
	}
}

func TestImprovementMetric(t *testing.T) {
	if got := Improvement(100, 40); got != 60 {
		t.Errorf("Improvement(100,40) = %g", got)
	}
	if got := Improvement(100, 150); got != -50 {
		t.Errorf("negative improvement: %g", got)
	}
	if got := Improvement(0, 10); got != 0 {
		t.Errorf("zero initial: %g", got)
	}
}

package core

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/workloads"
)

func TestSmokeTPCHOptimalConfiguration(t *testing.T) {
	db := datagen.TPCH(0.001)
	w, err := workloads.TPCH22()
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	tn, err := NewTuner(db, w, Options{})
	if err != nil {
		t.Fatalf("tuner: %v", err)
	}
	base, err := tn.Evaluate(tn.Base)
	if err != nil {
		t.Fatalf("evaluate base: %v", err)
	}
	cfg, err := tn.OptimalConfiguration()
	if err != nil {
		t.Fatalf("optimal: %v", err)
	}
	opt, err := tn.Evaluate(cfg)
	if err != nil {
		t.Fatalf("evaluate optimal: %v", err)
	}
	t.Logf("base: cost=%.1f size=%dMB", base.Cost, base.SizeBytes>>20)
	t.Logf("optimal: cost=%.1f size=%dMB indexes=%d views=%d",
		opt.Cost, opt.SizeBytes>>20, cfg.NumIndexes(), cfg.NumViews())
	if opt.Cost > base.Cost {
		t.Errorf("optimal configuration cost %.1f exceeds base %.1f", opt.Cost, base.Cost)
	}
	if opt.SizeBytes <= base.SizeBytes {
		t.Errorf("optimal configuration is not larger than base (%d <= %d)", opt.SizeBytes, base.SizeBytes)
	}
}

func TestSmokeTPCHTuneConstrained(t *testing.T) {
	db := datagen.TPCH(0.001)
	w, err := workloads.TPCH22()
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	tn, err := NewTuner(db, w, Options{NoViews: true, MaxIterations: 40})
	if err != nil {
		t.Fatalf("tuner: %v", err)
	}
	optimalCfg, err := tn.OptimalConfiguration()
	if err != nil {
		t.Fatalf("optimal: %v", err)
	}
	optSize := tn.Opt.Sizer().ConfigBytes(optimalCfg)
	tn2, err := NewTuner(db, w, Options{NoViews: true, MaxIterations: 40, SpaceBudget: optSize / 2})
	if err != nil {
		t.Fatalf("tuner2: %v", err)
	}
	res, err := tn2.Tune()
	if err != nil {
		t.Fatalf("tune: %v", err)
	}
	t.Logf("initial cost=%.1f optimal cost=%.1f best cost=%.1f size=%d/%d iters=%d calls=%d",
		res.Initial.Cost, res.Optimal.Cost, res.Best.Cost, res.Best.SizeBytes, optSize/2, res.Iterations, res.OptimizerCalls)
	if res.Best.SizeBytes > optSize/2 && res.Best != res.Initial {
		t.Errorf("best config does not fit budget: %d > %d", res.Best.SizeBytes, optSize/2)
	}
	if res.Best.Cost > res.Initial.Cost {
		t.Errorf("recommendation worse than initial: %.1f > %.1f", res.Best.Cost, res.Initial.Cost)
	}
}

// Package core implements the paper's contribution: the relaxation-based
// physical design tuner.
//
// Section 2: the optimizer is instrumented so that every index and view
// request yields the optimal physical structures for that request; the
// union over all requests is a time-wise optimal configuration.
//
// Section 3: the search starts from that optimal configuration and
// repeatedly relaxes it — merging, splitting, prefixing, promoting, and
// removing indexes and views — guided by the penalty heuristic
// ΔT / min(Space(C)−B, ΔS), where ΔT is an upper bound on the cost
// increase computed without optimizer calls (§3.3.2). Only queries whose
// plans used a removed structure are re-optimized (§3.3.2), updates are
// handled by select/update-shell separation with a transformation skyline
// (§3.6), and shortcut evaluation prunes hopeless configurations (§3.5).
package core

import (
	"container/list"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/workloads"
)

// Options configure a tuning session. The zero value means: no space
// constraint, no time bound, views enabled, all paper heuristics on.
type Options struct {
	// SpaceBudget is the storage constraint B in bytes (0 = unconstrained).
	SpaceBudget int64
	// MaxIterations bounds the number of relaxation steps (0 = default).
	MaxIterations int
	// TimeBudget bounds wall-clock tuning time (0 = unbounded).
	TimeBudget time.Duration
	// NoViews restricts tuning to indexes only.
	NoViews bool

	// Ablation switches (all false = the paper's algorithm).

	// DisableSkyline turns off the §3.6 transformation skyline for update
	// workloads.
	DisableSkyline bool
	// DisableShortcut turns off §3.5 shortcut evaluation.
	DisableShortcut bool
	// PlainPenalty uses ΔT/ΔS without the min(Space(C)−B, ΔS) clamp.
	PlainPenalty bool
	// DisableChainCorrection turns off heuristic 2 of §3.4 (revisiting
	// the chain configuration with the largest realized penalty).
	DisableChainCorrection bool
	// FullReoptimize re-optimizes every query on every evaluation instead
	// of only those that used removed structures (ablation for the
	// optimality-principle optimization).
	FullReoptimize bool

	// Variations of §3.5 (off by default, like the paper's main runs).

	// MultiTransform applies up to this many non-conflicting minimal-
	// penalty transformations per iteration (0 or 1 = single
	// transformation). Converges faster but compounds estimation error.
	MultiTransform int
	// ShrinkUnused drops structures no query plan reads after each
	// relaxation step, pruning the search space at some quality risk.
	ShrinkUnused bool

	// Parallelism is the worker count of the parallel evaluation engine:
	// per-query what-if optimization, §3.3.2 penalty estimation, and
	// speculative top-k candidate evaluation all fan out across this many
	// goroutines. 0 (the default) means runtime.GOMAXPROCS(0); 1 runs the
	// exact serial algorithm. Any setting produces the same recommendation
	// (same best configuration, cost, and iteration count) — only wall
	// time and the optimizer-call economy differ.
	Parallelism int
	// EvalCacheCap bounds the per-session evaluation cache (configuration
	// fingerprint → evaluation) with LRU eviction. 0 means the default
	// cap (4096 entries); negative means unbounded.
	EvalCacheCap int

	// Online/incremental retuning (the internal/service layer).

	// Cache, when set, memoizes per-statement optimal fragments across
	// sessions: statements whose fragment is cached skip the §2
	// instrumented optimization entirely (zero optimizer calls). Entries
	// are keyed by the catalog fingerprint, so one cache may be shared
	// between sessions over different databases (the multi-tenant fleet
	// case); only sessions whose catalogs hash identically ever reuse
	// each other's fragments.
	Cache *RequestCache
	// CacheOrigin attributes this session's Cache activity (typically a
	// tenant ID): hits on entries stored under a different origin are
	// counted as shared hits, the measurable cross-tenant reuse signal.
	// Empty is a valid origin (single-tenant deployments).
	CacheOrigin string
	// WarmStart seeds the relaxation search with a previously recommended
	// configuration: it is evaluated up front, joins the search pool, and
	// becomes the incumbent if it fits the budget, so shortcut evaluation
	// prunes against a good bound from the first iteration.
	WarmStart *physical.Configuration

	// Observability.

	// Trace receives span/event telemetry from the search: per-iteration
	// node selection, ranked candidates with penalty components, skyline
	// pruning, bound tightness, cache activity, and optimizer-call
	// attribution per phase. nil (the default) disables tracing at the
	// cost of one pointer check per emission site.
	Trace *obs.Tracer
	// Profile aggregates per-phase wall-clock/allocation/counter
	// profiles of the session (optimal-config construction, penalty
	// estimation per transformation kind, evaluation, skyline, ...).
	// nil (the default) disables profiling at the cost of one pointer
	// check per phase boundary.
	Profile *obs.Profiler
	// Progress receives one live event per relaxation iteration (plus
	// phase boundaries): the frontier point just visited, the budget gap,
	// the chosen transformation and penalty, and skyline pruning. Events
	// are published only from the serial main line of the search, so any
	// Parallelism setting emits the identical stream. nil (the default)
	// disables progress reporting at the cost of one pointer check per
	// iteration — the nil path adds zero allocations to the search loop.
	Progress *obs.Progress
}

// TunedQuery pairs a workload statement with its bound form.
type TunedQuery struct {
	Query *workloads.Query
	Bound *optimizer.BoundQuery
}

// Tuner is a tuning session over one database and workload. A session is
// safe for concurrent use: every public entry point serializes on an
// internal mutex, so concurrent calls execute one at a time against the
// shared optimizer and caches (single-owner semantics, enforced rather
// than documented).
type Tuner struct {
	DB      *catalog.Database
	Opt     *optimizer.Optimizer
	Base    *physical.Configuration
	Queries []*TunedQuery
	Options Options

	// mu serializes all public entry points; internal (lowercase)
	// implementations assume it is held.
	mu sync.Mutex

	heapTables map[string]bool
	// cbvCache caches the §3.3.2 cost of computing a view from the base
	// configuration (CBV), keyed by view signature. Entries are
	// singleflighted so a view's CBV is optimized exactly once even when
	// parallel penalty-estimation workers race for it.
	cbvMu    sync.Mutex
	cbvCache map[string]*cbvEntry
	// evalCache deduplicates configuration evaluations by fingerprint,
	// bounded by Options.EvalCacheCap with LRU eviction. Only the serial
	// main line of the search touches it, so its state (and therefore its
	// eviction order) is identical at every Parallelism setting.
	evalCache map[string]*list.Element
	evalLRU   *list.List
	// specCache holds speculative top-k evaluations keyed by
	// (parent fingerprint, transformation ID, child fingerprint). Results
	// are promoted into evalCache only when the search actually selects
	// the speculated step, so speculation never alters the search path.
	specCache map[string]*EvaluatedConfig
	// demandedBy maps each optimal-fragment structure ("i:"+index ID or
	// "v:"+view name) to the workload statements whose §2 instrumented
	// optimization requested it — the provenance half of the explain
	// report.
	demandedBy map[string][]string
	// statPlansReused / statPlansReopt count, across the session, the
	// per-query incremental evaluations answered by the §3.3.2
	// optimality principle (parent plan reused, zero optimizer calls)
	// vs those that had to re-optimize — the what-if economy accounting
	// surfaced in CalibrationReport. Atomic: evaluation workers update
	// them concurrently.
	statPlansReused atomic.Int64
	statPlansReopt  atomic.Int64
	// Eviction/hit accounting of the bounded evalCache plus speculation
	// accounting; main-line only, guarded by mu.
	statEvalHits    int64
	statEvalMisses  int64
	statEvalEvicted int64
	statSpecEvals   int64
	statSpecHits    int64
}

// cbvEntry singleflights one view's CBV computation.
type cbvEntry struct {
	once sync.Once
	cost float64
	err  error
}

// evalCacheEntry is one LRU slot of the evaluation cache.
type evalCacheEntry struct {
	fp string
	ec *EvaluatedConfig
}

// defaultEvalCacheCap bounds the evaluation cache when Options leave
// EvalCacheCap at zero.
const defaultEvalCacheCap = 4096

// specCacheCap bounds the speculative-evaluation side cache; losers that
// are never consumed age out only at session end, so the cap keeps a
// pathological search from hoarding evaluations.
const specCacheCap = 512

// NewTuner binds the workload against db and prepares a session. The base
// configuration (required primary-key indexes) is derived from the
// catalog.
func NewTuner(db *catalog.Database, w *workloads.Workload, opts Options) (*Tuner, error) {
	t := &Tuner{
		DB:         db,
		Opt:        optimizer.New(db),
		Base:       datagen.BaseConfiguration(db),
		Options:    opts,
		heapTables: datagen.HeapTables(db),
		cbvCache:   map[string]*cbvEntry{},
		evalCache:  map[string]*list.Element{},
		evalLRU:    list.New(),
		specCache:  map[string]*EvaluatedConfig{},
		demandedBy: map[string][]string{},
	}
	for _, q := range w.Queries {
		b, err := optimizer.Bind(db, q.Stmt)
		if err != nil {
			return nil, fmt.Errorf("core: binding %s: %w", q.ID, err)
		}
		t.Queries = append(t.Queries, &TunedQuery{Query: q, Bound: b})
	}
	return t, nil
}

// EvaluatedConfig is a configuration together with its per-query results
// and aggregate metrics.
type EvaluatedConfig struct {
	Config *physical.Configuration
	// Results holds one entry per workload query (same order as
	// Tuner.Queries).
	Results []*optimizer.QueryResult
	// Cost is the weighted total expected execution cost.
	Cost float64
	// SizeBytes is the configuration's storage consumption.
	SizeBytes int64
}

// Evaluate optimizes every workload query under cfg and returns the
// complete evaluation.
func (t *Tuner) Evaluate(cfg *physical.Configuration) (*EvaluatedConfig, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evaluate(cfg)
}

func (t *Tuner) evaluate(cfg *physical.Configuration) (*EvaluatedConfig, error) {
	fp := cfg.Fingerprint()
	if hit, ok := t.evalCacheGet(fp); ok {
		return hit, nil
	}
	ec, _, err := t.evalQueries(nil, cfg, nil, nil, 0)
	if err != nil {
		return nil, err
	}
	t.evalCachePut(fp, ec)
	return ec, nil
}

// EvaluateIncremental evaluates cfg reusing the parent's plans for every
// query that did not use a removed structure (the optimality-principle
// optimization of §3 and §3.3.2). Update-shell costs are always
// recomputed against cfg since they depend on all present indexes. When
// cutoff > 0 and the running total exceeds it, evaluation aborts
// (shortcut evaluation, §3.5) and returns (nil, false, nil).
func (t *Tuner) EvaluateIncremental(parent *EvaluatedConfig, cfg *physical.Configuration, removedIdx, removedViews []string, cutoff float64) (*EvaluatedConfig, bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evaluateIncremental(parent, cfg, removedIdx, removedViews, cutoff)
}

func (t *Tuner) evaluateIncremental(parent *EvaluatedConfig, cfg *physical.Configuration, removedIdx, removedViews []string, cutoff float64) (*EvaluatedConfig, bool, error) {
	fp := cfg.Fingerprint()
	if hit, ok := t.evalCacheGet(fp); ok {
		return hit, true, nil
	}
	ec, ok, err := t.evalQueries(parent, cfg, removedIdx, removedViews, cutoff)
	if err != nil || !ok {
		return nil, false, err
	}
	t.evalCachePut(fp, ec)
	return ec, true, nil
}

// evalQueries optimizes every workload query under cfg: the shared body
// of Evaluate and EvaluateIncremental. A non-nil parent enables the
// §3.3.2 plan-reuse path for queries untouched by the removed
// structures; cutoff > 0 enables §3.5 shortcut abort. Dispatches to the
// parallel engine when the session has more than one worker; the serial
// path is today's exact algorithm.
func (t *Tuner) evalQueries(parent *EvaluatedConfig, cfg *physical.Configuration, removedIdx, removedViews []string, cutoff float64) (*EvaluatedConfig, bool, error) {
	if w := t.workers(); w > 1 && len(t.Queries) > 1 {
		return t.evalQueriesParallel(parent, cfg, removedIdx, removedViews, cutoff, w)
	}
	return t.evalQueriesSerial(parent, cfg, removedIdx, removedViews, cutoff)
}

func (t *Tuner) evalQueriesSerial(parent *EvaluatedConfig, cfg *physical.Configuration, removedIdx, removedViews []string, cutoff float64) (*EvaluatedConfig, bool, error) {
	ec := &EvaluatedConfig{Config: cfg, SizeBytes: t.Opt.Sizer().ConfigBytes(cfg)}
	shortcut := cutoff > 0 && !t.Options.DisableShortcut
	for i, tq := range t.Queries {
		res, err := t.evalOneQuery(i, parent, cfg, removedIdx, removedViews)
		if err != nil {
			return nil, false, err
		}
		ec.Results = append(ec.Results, res)
		ec.Cost += tq.Query.Weight * res.TotalCost()
		if shortcut && ec.Cost > cutoff {
			return nil, false, nil
		}
	}
	return ec, true, nil
}

// evalOneQuery produces the i-th query's result under cfg, reusing the
// parent plan when the optimality principle allows it. Safe for
// concurrent use across distinct i: the optimizer is reentrant and the
// economy counters are atomic.
func (t *Tuner) evalOneQuery(i int, parent *EvaluatedConfig, cfg *physical.Configuration, removedIdx, removedViews []string) (*optimizer.QueryResult, error) {
	tq := t.Queries[i]
	if parent != nil && !t.Options.FullReoptimize && !usesAny(parent.Results[i], removedIdx, removedViews) {
		// The plan is still valid and, by the optimality principle,
		// still optimal under the relaxed configuration.
		t.statPlansReused.Add(1)
		prev := parent.Results[i]
		res := &optimizer.QueryResult{
			Plan:         prev.Plan,
			SelectCost:   prev.SelectCost,
			AffectedRows: prev.AffectedRows,
		}
		if tq.Bound.IsUpdate() {
			res.UpdateCost = t.Opt.UpdateShellCost(tq.Bound, cfg, res.AffectedRows)
		}
		return res, nil
	}
	if parent != nil {
		t.statPlansReopt.Add(1)
	}
	res, err := t.Opt.OptimizeFull(tq.Bound, cfg)
	if err != nil {
		verb := "evaluating"
		if parent != nil {
			verb = "re-optimizing"
		}
		return nil, fmt.Errorf("core: %s %s: %w", verb, tq.Query.ID, err)
	}
	return res, nil
}

// workers is the effective parallelism of the session.
func (t *Tuner) workers() int { return t.Options.Workers() }

// Workers resolves the Parallelism knob: 0 defaults to the runtime's
// processor count, anything positive is taken literally.
func (o Options) Workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// evalCacheGet looks up a configuration evaluation, refreshing its LRU
// position. Callers hold t.mu.
func (t *Tuner) evalCacheGet(fp string) (*EvaluatedConfig, bool) {
	if el, ok := t.evalCache[fp]; ok {
		t.evalLRU.MoveToFront(el)
		t.statEvalHits++
		return el.Value.(*evalCacheEntry).ec, true
	}
	t.statEvalMisses++
	return nil, false
}

// evalCachePut inserts an evaluation, evicting the least recently used
// entries beyond the cap. Callers hold t.mu.
func (t *Tuner) evalCachePut(fp string, ec *EvaluatedConfig) {
	if el, ok := t.evalCache[fp]; ok {
		el.Value.(*evalCacheEntry).ec = ec
		t.evalLRU.MoveToFront(el)
		return
	}
	t.evalCache[fp] = t.evalLRU.PushFront(&evalCacheEntry{fp: fp, ec: ec})
	cap := t.evalCacheCap()
	for cap > 0 && t.evalLRU.Len() > cap {
		back := t.evalLRU.Back()
		t.evalLRU.Remove(back)
		delete(t.evalCache, back.Value.(*evalCacheEntry).fp)
		t.statEvalEvicted++
	}
}

func (t *Tuner) evalCacheCap() int {
	switch c := t.Options.EvalCacheCap; {
	case c == 0:
		return defaultEvalCacheCap
	case c < 0:
		return 0 // unbounded
	default:
		return c
	}
}

// usesAny reports whether the query result reads any of the removed
// indexes or views.
func usesAny(res *optimizer.QueryResult, removedIdx, removedViews []string) bool {
	if res.Plan == nil {
		return false
	}
	for _, id := range removedIdx {
		if res.Plan.UsesIndex(id) {
			return true
		}
	}
	for _, v := range removedViews {
		if res.Plan.UsesView(v) {
			return true
		}
	}
	return false
}

// Improvement computes the paper's quality metric:
// 100 × (1 − cost(W,CR)/cost(W,CI)).
func Improvement(initial, recommended float64) float64 {
	if initial <= 0 {
		return 0
	}
	return 100 * (1 - recommended/initial)
}

// span opens a trace phase and returns its closer. The closer stamps
// the span-end event with the phase's elapsed time and optimizer-call
// attribution (the delta of the optimizer's counters across the span),
// merged with any extra fields. A disabled tracer costs one check.
func (t *Tuner) span(phase string) func(extra obs.F) {
	tr := t.Options.Trace
	if !tr.Enabled() {
		return func(obs.F) {}
	}
	before := t.Opt.Stats()
	end := tr.Span(phase, nil)
	return func(extra obs.F) {
		after := t.Opt.Stats()
		f := obs.F{
			"optimizer_calls": after.OptimizeCalls - before.OptimizeCalls,
			"index_requests":  after.IndexRequests - before.IndexRequests,
			"view_requests":   after.ViewRequests - before.ViewRequests,
		}
		for k, v := range extra {
			f[k] = v
		}
		end(f)
	}
}

// phase opens a combined trace span and profiler phase of the same
// name. The closer stamps the trace as span does, records wall time
// plus the heap-allocation delta under the profiler phase, and
// attributes the phase's optimizer calls to it. With both observers
// disabled the cost is two pointer checks.
func (t *Tuner) phase(name string) func(extra obs.F) {
	endSpan := t.span(name)
	p := t.Options.Profile
	if !p.Enabled() {
		return endSpan
	}
	before := t.Opt.Stats().OptimizeCalls
	endProf := p.StartAlloc(name)
	return func(extra obs.F) {
		endProf()
		if calls := t.Opt.Stats().OptimizeCalls - before; calls > 0 {
			p.Add(name, "optimizer_calls", float64(calls))
		}
		endSpan(extra)
	}
}

// widthOf returns the average width of a base column, for view merging.
func (t *Tuner) widthOf(col string, table string) int {
	tb := t.DB.Table(table)
	if tb == nil {
		return 8
	}
	c := tb.Column(col)
	if c == nil {
		return 8
	}
	return c.AvgWidth
}

package core

import (
	"testing"

	"repro/internal/physical"
)

// budgetFor computes a fraction of the optimal configuration's size.
func budgetFor(t *testing.T, tn *Tuner, num, den int64) int64 {
	t.Helper()
	optCfg, err := tn.OptimalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	return tn.Opt.Sizer().ConfigBytes(optCfg) * num / den
}

func TestMultiTransformConvergesFaster(t *testing.T) {
	probe := tpchTuner(t, Options{NoViews: true})
	budget := budgetFor(t, probe, 1, 4)

	single := tpchTuner(t, Options{NoViews: true, SpaceBudget: budget, MaxIterations: 200})
	resSingle, err := single.Tune()
	if err != nil {
		t.Fatal(err)
	}
	multi := tpchTuner(t, Options{NoViews: true, SpaceBudget: budget, MaxIterations: 200, MultiTransform: 4})
	resMulti, err := multi.Tune()
	if err != nil {
		t.Fatal(err)
	}
	if resMulti.Best.SizeBytes > budget {
		t.Error("multi-transform violated the budget")
	}
	// Reaching a fitting configuration should take fewer iterations when
	// several transformations apply per step.
	firstFit := func(res *Result) int {
		for _, p := range res.Frontier {
			if p.Fits {
				return p.Iteration
			}
		}
		return 1 << 30
	}
	if firstFit(resMulti) > firstFit(resSingle) {
		t.Errorf("multi-transform should reach a fitting configuration no later: %d > %d",
			firstFit(resMulti), firstFit(resSingle))
	}
}

func TestShrinkUnusedKeepsValidity(t *testing.T) {
	probe := tpchTuner(t, Options{NoViews: true})
	budget := budgetFor(t, probe, 1, 3)
	tn := tpchTuner(t, Options{NoViews: true, SpaceBudget: budget, MaxIterations: 60, ShrinkUnused: true})
	res, err := tn.Tune()
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.SizeBytes > budget {
		t.Error("shrinking violated the budget")
	}
	if res.Best.Cost > res.Initial.Cost {
		t.Error("shrinking produced a worse-than-initial recommendation")
	}
}

func TestShrinkUnusedRemovesOnlyUnused(t *testing.T) {
	tn := tpchTuner(t, Options{NoViews: true})
	optCfg, err := tn.OptimalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	// Plant an index nothing uses.
	planted := physical.NewIndex("region", []string{"r_comment"}, nil, false)
	withJunk := optCfg.Clone()
	withJunk.AddIndex(planted)
	ec, err := tn.Evaluate(withJunk)
	if err != nil {
		t.Fatal(err)
	}
	shrunk, err := tn.shrinkUnused(ec)
	if err != nil {
		t.Fatal(err)
	}
	if shrunk == nil {
		t.Fatal("planted junk should have been shrunk away")
	}
	if shrunk.Config.HasIndex(planted.ID()) {
		t.Error("unused planted index survived")
	}
	// Shrinking unused structures cannot change the select cost.
	if shrunk.Cost > ec.Cost+1e-9 {
		t.Errorf("shrink increased cost: %.3f > %.3f", shrunk.Cost, ec.Cost)
	}
	// Every surviving non-required index is used (or materializes a view).
	for _, ix := range shrunk.Config.Indexes() {
		if ix.Required {
			continue
		}
		usedSomewhere := false
		for _, r := range shrunk.Results {
			if r.Plan != nil && r.Plan.UsesIndex(ix.ID()) {
				usedSomewhere = true
				break
			}
		}
		if !usedSomewhere && shrunk.Config.View(ix.Table) == nil {
			t.Errorf("unused index %s survived shrinking", ix.ID())
		}
	}
}

func TestSelectNonConflicting(t *testing.T) {
	tn := tpchTuner(t, Options{NoViews: true, MultiTransform: 3})
	i1 := physical.NewIndex("t", []string{"a"}, nil, false)
	i2 := physical.NewIndex("t", []string{"b"}, nil, false)
	i3 := physical.NewIndex("t", []string{"c"}, nil, false)
	ranked := []candidate{
		{tr: &physical.Transformation{Kind: physical.TransRemoveIndex, I1: i1}},
		{tr: &physical.Transformation{Kind: physical.TransMergeIndexes, I1: i1, I2: i2,
			NewIdx: []*physical.Index{physical.MergeIndexes(i1, i2)}}}, // conflicts with removal of i1
		{tr: &physical.Transformation{Kind: physical.TransRemoveIndex, I1: i3}},
	}
	out := tn.selectNonConflicting(ranked)
	if len(out) != 2 {
		t.Fatalf("expected 2 non-conflicting transformations, got %d", len(out))
	}
	if out[1].I1.ID() != i3.ID() {
		t.Errorf("conflicting merge should have been skipped: %v", out[1])
	}
}

func TestSelectNonConflictingSingleMode(t *testing.T) {
	tn := tpchTuner(t, Options{})
	i1 := physical.NewIndex("t", []string{"a"}, nil, false)
	i2 := physical.NewIndex("t", []string{"b"}, nil, false)
	ranked := []candidate{
		{tr: &physical.Transformation{Kind: physical.TransRemoveIndex, I1: i1}},
		{tr: &physical.Transformation{Kind: physical.TransRemoveIndex, I1: i2}},
	}
	if got := tn.selectNonConflicting(ranked); len(got) != 1 {
		t.Errorf("default mode applies exactly one transformation, got %d", len(got))
	}
}

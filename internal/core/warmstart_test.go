package core

import (
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/workloads"
)

// wsWorkload builds a small SELECT workload used by the warm-start tests.
func wsWorkload(t *testing.T, extra ...string) *workloads.Workload {
	t.Helper()
	sqls := []string{
		`SELECT o_orderpriority, COUNT(*) FROM orders WHERE o_orderdate >= 9131 AND o_orderdate < 9496 GROUP BY o_orderpriority`,
		`SELECT c_name, o_orderkey FROM customer, orders WHERE c_custkey = o_custkey AND o_totalprice > 400000`,
		`SELECT l_shipmode, SUM(l_extendedprice) FROM lineitem WHERE l_shipdate BETWEEN 9131 AND 9496 GROUP BY l_shipmode`,
	}
	sqls = append(sqls, extra...)
	w, err := workloads.FromStatements("warmstart", "tpch", sqls)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	return w
}

// TestRequestCacheReuse: a second session over the same workload must
// reuse every cached fragment, produce the identical optimal
// configuration, and issue zero instrumented-optimization calls for the
// cached statements.
func TestRequestCacheReuse(t *testing.T) {
	db := datagen.TPCH(0.001)
	cache := NewRequestCache()

	w := wsWorkload(t)
	tn1, err := NewTuner(db, w, Options{Cache: cache})
	if err != nil {
		t.Fatalf("tuner1: %v", err)
	}
	cfg1, err := tn1.OptimalConfiguration()
	if err != nil {
		t.Fatalf("optimal1: %v", err)
	}
	s1 := cache.Stats()
	if s1.Entries != len(w.Queries) || s1.Misses != int64(len(w.Queries)) {
		t.Fatalf("cold run: got %d entries / %d misses, want %d", s1.Entries, s1.Misses, len(w.Queries))
	}
	if s1.CallsSpent <= 0 {
		t.Fatalf("cold run spent no optimizer calls")
	}

	tn2, err := NewTuner(db, w, Options{Cache: cache})
	if err != nil {
		t.Fatalf("tuner2: %v", err)
	}
	calls0 := tn2.Opt.Stats().OptimizeCalls
	cfg2, err := tn2.OptimalConfiguration()
	if err != nil {
		t.Fatalf("optimal2: %v", err)
	}
	if got := tn2.Opt.Stats().OptimizeCalls - calls0; got != 0 {
		t.Errorf("warm run issued %d optimizer calls, want 0", got)
	}
	if cfg1.Fingerprint() != cfg2.Fingerprint() {
		t.Errorf("cached optimal configuration differs:\n%s\nvs\n%s", cfg1, cfg2)
	}
	s2 := cache.Stats()
	if s2.Hits != int64(len(w.Queries)) {
		t.Errorf("warm run: got %d hits, want %d", s2.Hits, len(w.Queries))
	}
	if s2.CallsSaved != s1.CallsSpent {
		t.Errorf("calls saved %d != calls spent %d", s2.CallsSaved, s1.CallsSpent)
	}
}

// TestRequestCachePartialHit: growing the workload only pays for the new
// statement.
func TestRequestCachePartialHit(t *testing.T) {
	db := datagen.TPCH(0.001)
	cache := NewRequestCache()

	tn1, err := NewTuner(db, wsWorkload(t), Options{Cache: cache})
	if err != nil {
		t.Fatalf("tuner1: %v", err)
	}
	if _, err := tn1.OptimalConfiguration(); err != nil {
		t.Fatalf("optimal1: %v", err)
	}

	grown := wsWorkload(t,
		`SELECT s_name, s_acctbal FROM supplier WHERE s_acctbal > 5000`)
	tn2, err := NewTuner(db, grown, Options{Cache: cache})
	if err != nil {
		t.Fatalf("tuner2: %v", err)
	}
	if _, err := tn2.OptimalConfiguration(); err != nil {
		t.Fatalf("optimal2: %v", err)
	}
	s := cache.Stats()
	if s.Hits != 3 || s.Misses != 4 {
		t.Errorf("got %d hits / %d misses, want 3 / 4", s.Hits, s.Misses)
	}
	if s.Entries != 4 {
		t.Errorf("got %d cache entries, want 4", s.Entries)
	}
}

// TestWarmStartTune: retuning the same workload with the previous
// recommendation as warm start must cost strictly fewer optimizer calls
// and recommend a configuration at least as good.
func TestWarmStartTune(t *testing.T) {
	db := datagen.TPCH(0.001)
	w := wsWorkload(t)
	cache := NewRequestCache()
	opts := Options{SpaceBudget: 2 << 20, MaxIterations: 40, Cache: cache}

	tn1, err := NewTuner(db, w, opts)
	if err != nil {
		t.Fatalf("tuner1: %v", err)
	}
	cold, err := tn1.Tune()
	if err != nil {
		t.Fatalf("cold tune: %v", err)
	}

	warmOpts := opts
	warmOpts.WarmStart = cold.Best.Config
	tn2, err := NewTuner(db, w, warmOpts)
	if err != nil {
		t.Fatalf("tuner2: %v", err)
	}
	warm, err := tn2.Tune()
	if err != nil {
		t.Fatalf("warm tune: %v", err)
	}

	t.Logf("cold: cost=%.1f calls=%d; warm: cost=%.1f calls=%d",
		cold.Best.Cost, cold.OptimizerCalls, warm.Best.Cost, warm.OptimizerCalls)
	if warm.OptimizerCalls >= cold.OptimizerCalls {
		t.Errorf("warm retune did not save optimizer calls: %d >= %d",
			warm.OptimizerCalls, cold.OptimizerCalls)
	}
	if warm.Best.Cost > cold.Best.Cost+1e-9 {
		t.Errorf("warm retune recommendation worse than cold: %.3f > %.3f",
			warm.Best.Cost, cold.Best.Cost)
	}
	if warm.Best.SizeBytes > opts.SpaceBudget {
		t.Errorf("warm recommendation exceeds budget: %d > %d", warm.Best.SizeBytes, opts.SpaceBudget)
	}
}

// TestCacheDeterminism: with and without the cache, the optimal
// configuration and the tuned recommendation are identical.
func TestCacheDeterminism(t *testing.T) {
	db := datagen.TPCH(0.001)
	w := wsWorkload(t)
	opts := Options{SpaceBudget: 2 << 20, MaxIterations: 40}

	plain, err := NewTuner(db, w, opts)
	if err != nil {
		t.Fatalf("tuner: %v", err)
	}
	resPlain, err := plain.Tune()
	if err != nil {
		t.Fatalf("plain tune: %v", err)
	}

	cache := NewRequestCache()
	optsC := opts
	optsC.Cache = cache
	// Prime the cache with a first session, then tune a second one from it.
	prime, err := NewTuner(db, w, optsC)
	if err != nil {
		t.Fatalf("prime: %v", err)
	}
	if _, err := prime.OptimalConfiguration(); err != nil {
		t.Fatalf("prime optimal: %v", err)
	}
	cached, err := NewTuner(db, w, optsC)
	if err != nil {
		t.Fatalf("cached: %v", err)
	}
	resCached, err := cached.Tune()
	if err != nil {
		t.Fatalf("cached tune: %v", err)
	}

	if resPlain.Best.Config.Fingerprint() != resCached.Best.Config.Fingerprint() {
		t.Errorf("cache changed the recommendation:\n%s\nvs\n%s",
			resPlain.Best.Config, resCached.Best.Config)
	}
	if math.Abs(resPlain.Best.Cost-resCached.Best.Cost) > 1e-9 {
		t.Errorf("cache changed the recommended cost: %.6f vs %.6f",
			resPlain.Best.Cost, resCached.Best.Cost)
	}
}

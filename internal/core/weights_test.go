package core

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/workloads"
)

// TestWeightsSteerRecommendation: under a tight budget, the tuner must
// favour the heavily weighted query's structures.
func TestWeightsSteerRecommendation(t *testing.T) {
	db := datagen.TPCH(0.001)
	sqls := []string{
		// Benefits from an orders(o_orderdate) structure.
		"SELECT o_orderkey, o_totalprice FROM orders WHERE o_orderdate < 8400",
		// Benefits from a lineitem(l_quantity) structure.
		"SELECT l_orderkey, l_extendedprice FROM lineitem WHERE l_quantity < 3",
	}
	tuneWith := func(wOrders, wLineitem float64) (ordersBytes, lineitemBytes int64) {
		w, err := workloads.FromStatements("weighted", "tpch", sqls)
		if err != nil {
			t.Fatal(err)
		}
		w.Queries[0].Weight = wOrders
		w.Queries[1].Weight = wLineitem
		tn, err := NewTuner(db, w, Options{NoViews: true, MaxIterations: 60})
		if err != nil {
			t.Fatal(err)
		}
		optCfg, err := tn.OptimalConfiguration()
		if err != nil {
			t.Fatal(err)
		}
		baseSize := tn.Opt.Sizer().ConfigBytes(tn.Base)
		// Budget exactly the largest auxiliary structure (plus slack):
		// the tuner can afford the expensive index OR cheaper ones, and
		// the weights decide which queries deserve it.
		var largest int64
		for _, ix := range optCfg.Indexes() {
			if ix.Required {
				continue
			}
			if sz := tn.Opt.Sizer().IndexBytes(ix, optCfg); sz > largest {
				largest = sz
			}
		}
		budget := baseSize + largest + largest/4
		tn2, err := NewTuner(db, w, Options{NoViews: true, MaxIterations: 80, SpaceBudget: budget})
		if err != nil {
			t.Fatal(err)
		}
		res, err := tn2.Tune()
		if err != nil {
			t.Fatal(err)
		}
		for _, ix := range res.Best.Config.Indexes() {
			if ix.Required {
				continue
			}
			sz := tn2.Opt.Sizer().IndexBytes(ix, res.Best.Config)
			switch ix.Table {
			case "orders":
				ordersBytes += sz
			case "lineitem":
				lineitemBytes += sz
			}
		}
		return ordersBytes, lineitemBytes
	}

	oHeavy, _ := tuneWith(50, 1)
	_, lHeavy := tuneWith(1, 50)
	if oHeavy == 0 {
		t.Error("heavy orders weight should keep orders structures")
	}
	if lHeavy == 0 {
		t.Error("heavy lineitem weight should keep lineitem structures")
	}
}

// TestCompressPreservesTotalCost: compressing duplicate statements into
// weights leaves the evaluated workload cost unchanged.
func TestCompressPreservesTotalCost(t *testing.T) {
	db := datagen.TPCH(0.001)
	sql := "SELECT o_orderkey FROM orders WHERE o_orderdate < 8400"
	w, err := workloads.FromStatements("dup", "tpch", []string{sql, sql, sql,
		"SELECT l_orderkey FROM lineitem WHERE l_quantity < 5"})
	if err != nil {
		t.Fatal(err)
	}
	compressed := workloads.Compress(w)
	if len(compressed.Queries) != 2 {
		t.Fatalf("compressed to %d queries", len(compressed.Queries))
	}
	if compressed.TotalWeight() != w.TotalWeight() {
		t.Error("compression must preserve total weight")
	}
	tn1, err := NewTuner(db, w, Options{NoViews: true})
	if err != nil {
		t.Fatal(err)
	}
	tn2, err := NewTuner(db, compressed, Options{NoViews: true})
	if err != nil {
		t.Fatal(err)
	}
	e1, err := tn1.Evaluate(tn1.Base)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := tn2.Evaluate(tn2.Base)
	if err != nil {
		t.Fatal(err)
	}
	if diff := e1.Cost - e2.Cost; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("cost changed under compression: %g vs %g", e1.Cost, e2.Cost)
	}
}

package core

import (
	"fmt"
	"strings"

	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/sqlx"
)

// ParseConfigurationScript builds a what-if configuration from a SQL
// script of CREATE INDEX / CREATE VIEW statements, layered on top of the
// session's base configuration. Views must precede the indexes defined
// over them; every referenced table and column is validated against the
// catalog (or the view's output columns).
func (t *Tuner) ParseConfigurationScript(script string) (*physical.Configuration, error) {
	stmts, err := sqlx.ParseScript(script)
	if err != nil {
		return nil, fmt.Errorf("core: parsing configuration script: %w", err)
	}
	cfg := t.Base.Clone()
	// User-assigned view names map to the canonical generated names.
	viewNames := map[string]string{}
	for i, stmt := range stmts {
		switch s := stmt.(type) {
		case *sqlx.CreateViewStmt:
			bound, err := optimizer.Bind(t.DB, s.Select)
			if err != nil {
				return nil, fmt.Errorf("core: view %s: %w", s.Name, err)
			}
			def, err := t.Opt.ViewDefinition(bound)
			if err != nil {
				return nil, fmt.Errorf("core: view %s: %w", s.Name, err)
			}
			v := cfg.AddView(def)
			viewNames[strings.ToLower(s.Name)] = v.Name
		case *sqlx.CreateIndexStmt:
			target := s.Table
			if canon, ok := viewNames[strings.ToLower(s.Table)]; ok {
				target = canon
			}
			ix, err := t.buildWhatIfIndex(cfg, target, s)
			if err != nil {
				return nil, fmt.Errorf("core: statement %d (%s): %w", i+1, s.Name, err)
			}
			cfg.AddIndex(ix)
		default:
			return nil, fmt.Errorf("core: statement %d: configuration scripts accept only CREATE INDEX / CREATE VIEW, got %s", i+1, stmt.SQL())
		}
	}
	// Every view needs a clustered index to be materialized; add one per
	// view the script left bare.
	for _, v := range cfg.Views() {
		if cfg.ClusteredOn(v.Name) == nil {
			keys := v.AllColumnNames()
			cfg.AddIndex(physical.NewIndex(v.Name, keys[:1], keys[1:], true))
		}
	}
	return cfg, nil
}

// buildWhatIfIndex validates column references against a base table or a
// view already present in cfg. View indexes may name columns either by
// the view-local name or by the base "table.column" the view exposes.
func (t *Tuner) buildWhatIfIndex(cfg *physical.Configuration, target string, s *sqlx.CreateIndexStmt) (*physical.Index, error) {
	if v := cfg.View(target); v != nil {
		mapCol := func(name string) (string, error) {
			if v.Column(name) != nil {
				return v.Column(name).Name, nil
			}
			// Accept base-style names like lineitem_l_shipdate too.
			for _, c := range v.Cols {
				if strings.EqualFold(c.Name, strings.ReplaceAll(name, ".", "_")) {
					return c.Name, nil
				}
			}
			return "", fmt.Errorf("view %s has no column %q", v.Name, name)
		}
		keys := make([]string, 0, len(s.Keys))
		for _, k := range s.Keys {
			m, err := mapCol(k)
			if err != nil {
				return nil, err
			}
			keys = append(keys, m)
		}
		var suffix []string
		for _, k := range s.Include {
			m, err := mapCol(k)
			if err != nil {
				return nil, err
			}
			suffix = append(suffix, m)
		}
		return physical.NewIndex(v.Name, keys, suffix, s.Clustered), nil
	}
	tb := t.DB.Table(target)
	if tb == nil {
		return nil, fmt.Errorf("unknown table or view %q", target)
	}
	check := func(cols []string) ([]string, error) {
		out := make([]string, 0, len(cols))
		for _, c := range cols {
			col := tb.Column(c)
			if col == nil {
				return nil, fmt.Errorf("table %s has no column %q", tb.Name, c)
			}
			out = append(out, col.Name)
		}
		return out, nil
	}
	keys, err := check(s.Keys)
	if err != nil {
		return nil, err
	}
	suffix, err := check(s.Include)
	if err != nil {
		return nil, err
	}
	if s.Clustered && cfg.ClusteredOn(tb.Name) != nil {
		return nil, fmt.Errorf("table %s already has a clustered index", tb.Name)
	}
	return physical.NewIndex(tb.Name, keys, suffix, s.Clustered), nil
}

// WhatIf evaluates the workload under a user-supplied configuration and
// reports its cost, size, and improvement over the base configuration —
// the classical what-if analysis built on the same machinery the tuner
// uses.
func (t *Tuner) WhatIf(cfg *physical.Configuration) (*WhatIfResult, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	endSpan := t.phase("what-if")
	base, err := t.evaluate(t.Base)
	if err != nil {
		endSpan(obs.F{"error": err.Error()})
		return nil, err
	}
	target, err := t.evaluate(cfg)
	if err != nil {
		endSpan(obs.F{"error": err.Error()})
		return nil, err
	}
	endSpan(obs.F{
		"base_cost":       base.Cost,
		"target_cost":     target.Cost,
		"improvement_pct": Improvement(base.Cost, target.Cost),
	})
	res := &WhatIfResult{
		Base:           base,
		Target:         target,
		ImprovementPct: Improvement(base.Cost, target.Cost),
	}
	for i, tq := range t.Queries {
		res.PerQuery = append(res.PerQuery, QueryCostDelta{
			ID:         tq.Query.ID,
			SQL:        tq.Query.SQL,
			BaseCost:   base.Results[i].TotalCost(),
			TargetCost: target.Results[i].TotalCost(),
		})
	}
	return res, nil
}

// WhatIfResult is the outcome of evaluating one configuration.
type WhatIfResult struct {
	Base           *EvaluatedConfig
	Target         *EvaluatedConfig
	ImprovementPct float64
	PerQuery       []QueryCostDelta
}

// QueryCostDelta compares one query's cost under two configurations.
type QueryCostDelta struct {
	ID         string
	SQL        string
	BaseCost   float64
	TargetCost float64
}

// ImprovementPct is the per-query improvement.
func (d QueryCostDelta) ImprovementPct() float64 {
	return Improvement(d.BaseCost, d.TargetCost)
}

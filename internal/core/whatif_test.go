package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/physical"
)

func TestParseConfigurationScript(t *testing.T) {
	tn := tpchTuner(t, Options{})
	cfg, err := tn.ParseConfigurationScript(`
		CREATE INDEX ix1 ON lineitem (l_shipdate) INCLUDE (l_extendedprice, l_discount);
		CREATE CLUSTERED INDEX cix1 ON returnsless (l_orderkey);
	`)
	if err == nil {
		t.Fatal("unknown table should fail")
	}
	cfg, err = tn.ParseConfigurationScript(`
		CREATE INDEX ix1 ON lineitem (l_shipdate) INCLUDE (l_extendedprice, l_discount);
		CREATE VIEW vp AS SELECT o_orderpriority, COUNT(*) FROM orders GROUP BY o_orderpriority;
		CREATE INDEX ixv ON vp (orders_o_orderpriority);
	`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	// Base indexes + user index + view clustered index + user view index.
	if cfg.NumViews() != 1 {
		t.Errorf("views: %d", cfg.NumViews())
	}
	v := cfg.Views()[0]
	if cfg.ClusteredOn(v.Name) == nil {
		t.Error("materialized view must get a clustered index")
	}
	found := false
	for _, ix := range cfg.IndexesOn("lineitem") {
		if !ix.Required && ix.Keys[0] == "l_shipdate" {
			found = true
			if !ix.HasColumn("l_extendedprice") {
				t.Error("INCLUDE columns lost")
			}
		}
	}
	if !found {
		t.Error("user index missing")
	}
}

func TestParseConfigurationScriptErrors(t *testing.T) {
	tn := tpchTuner(t, Options{})
	cases := []string{
		"CREATE INDEX i ON lineitem (nope)",
		"CREATE INDEX i ON lineitem (l_shipdate) INCLUDE (nope)",
		"CREATE CLUSTERED INDEX i ON lineitem (l_shipdate)", // PK clustered exists
		"SELECT l_shipdate FROM lineitem",                   // not DDL
		"CREATE INDEX i ON v_undefined (x)",
	}
	for _, src := range cases {
		if _, err := tn.ParseConfigurationScript(src); err == nil {
			t.Errorf("script %q should fail", src)
		}
	}
}

func TestWhatIfImprovesWithGoodIndex(t *testing.T) {
	tn := tpchTuner(t, Options{})
	cfg, err := tn.ParseConfigurationScript(
		"CREATE INDEX i ON orders (o_orderdate) INCLUDE (o_custkey, o_orderkey, o_shippriority, o_orderstatus, o_orderpriority)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := tn.WhatIf(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ImprovementPct <= 0 {
		t.Errorf("useful index should improve the workload: %g%%", res.ImprovementPct)
	}
	if len(res.PerQuery) != len(tn.Queries) {
		t.Errorf("per-query entries: %d", len(res.PerQuery))
	}
	improvedSome := false
	for _, d := range res.PerQuery {
		if d.TargetCost < d.BaseCost {
			improvedSome = true
		}
		if d.TargetCost > d.BaseCost*1.0001 {
			t.Errorf("%s got worse under a pure addition: %g > %g", d.ID, d.TargetCost, d.BaseCost)
		}
	}
	if !improvedSome {
		t.Error("no query improved")
	}
}

func TestConfigurationDDLRoundTrips(t *testing.T) {
	tn := tpchTuner(t, Options{NoViews: true})
	optCfg, err := tn.OptimalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	ddl := physical.ConfigurationDDL(optCfg)
	if !strings.Contains(ddl, "CREATE INDEX") {
		t.Fatalf("no index DDL:\n%s", ddl)
	}
	// Strip comment lines (existing constraint indexes) and re-parse.
	var keep []string
	for _, line := range strings.Split(ddl, "\n") {
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		keep = append(keep, line)
	}
	reparsed, err := tn.ParseConfigurationScript(strings.Join(keep, "\n"))
	if err != nil {
		t.Fatalf("DDL does not round-trip: %v", err)
	}
	// Every non-required structure survives the round trip.
	for _, ix := range optCfg.Indexes() {
		if ix.Required {
			continue
		}
		if !reparsed.HasIndex(ix.ID()) {
			t.Errorf("index lost in round trip: %s", ix.ID())
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	tn := tpchTuner(t, Options{NoViews: true})
	res, err := tn.Tune()
	if err != nil {
		t.Fatal(err)
	}
	rep := tn.BuildReport("tpch22", res)
	if rep.ImprovementPct != res.ImprovementPct() {
		t.Error("improvement mismatch")
	}
	if len(rep.PerQuery) != 22 {
		t.Errorf("per-query entries: %d", len(rep.PerQuery))
	}
	if !strings.Contains(rep.DDL, "CREATE") {
		t.Error("report DDL missing")
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Database != rep.Database || back.ImprovementPct != rep.ImprovementPct {
		t.Error("JSON round trip lost fields")
	}
	if len(back.PerQuery) != len(rep.PerQuery) {
		t.Error("per-query entries lost")
	}
}

func TestViewDDLParsesBack(t *testing.T) {
	tn := tpchTuner(t, Options{})
	script := `CREATE VIEW v AS SELECT l_shipmode, SUM(l_extendedprice) FROM lineitem WHERE l_shipdate > 9131 GROUP BY l_shipmode`
	cfg, err := tn.ParseConfigurationScript(script)
	if err != nil {
		t.Fatal(err)
	}
	v := cfg.Views()[0]
	rendered := physical.ViewDDL(v)
	// Rename and reparse: definitions must be equivalent.
	cfg2, err := tn.ParseConfigurationScript(strings.Replace(rendered, v.Name, "v2", 1) + ";")
	if err != nil {
		t.Fatalf("view DDL does not round-trip: %v\n%s", err, rendered)
	}
	if cfg2.ViewBySignature(v.Signature()) == nil {
		t.Error("round-tripped view definition differs")
	}
}

package datagen

import (
	"fmt"

	"repro/internal/catalog"
)

// Bench builds the stand-in for the paper's synthetic "Bench" database: a
// family of generic tables t1..t8 with varied widths, cardinalities, and
// correlated integer domains, half of them stored as heaps. The generated
// workloads over it exercise many index shapes without TPC-H's specific
// join structure.
func Bench(sf float64) *catalog.Database {
	return buildDatabase("bench", benchSpecs(sf))
}

// benchSpecs defines the schema and statistical shape of every table.
func benchSpecs(sf float64) []tableSpec {
	i, f, v, d := catalog.TypeInt, catalog.TypeFloat, catalog.TypeVarchar, catalog.TypeDate
	var specs []tableSpec
	rowCounts := []int64{
		scaled(2_000_000, sf, 2000),
		scaled(1_000_000, sf, 1000),
		scaled(500_000, sf, 500),
		scaled(250_000, sf, 250),
		scaled(120_000, sf, 120),
		scaled(60_000, sf, 60),
		scaled(30_000, sf, 30),
		scaled(10_000, sf, 10),
	}
	for t, rows := range rowCounts {
		name := fmt.Sprintf("t%d", t+1)
		cols := []colSpec{
			{name: "id", typ: i, min: 1, max: float64(rows)},
			// Shared join domain: every table's fk column joins to the
			// next smaller table's id.
			{name: "fk", typ: i, distinct: fkDomain(rowCounts, t), min: 1, max: float64(fkDomain(rowCounts, t))},
			{name: "a", typ: i, distinct: 100, min: 0, max: 99, skew: 0.3},
			{name: "b", typ: i, distinct: 1000, min: 0, max: 999},
			{name: "c", typ: i, distinct: 10, min: 0, max: 9, skew: 0.6},
			{name: "d", typ: f, distinct: rows / 3, min: 0, max: 1e6, skew: 0.4},
			{name: "e", typ: f, distinct: rows / 5, min: -1000, max: 1000},
			{name: "ts", typ: d, distinct: 3650, min: DateMin, max: DateMax},
			{name: "pad1", typ: v, width: 20 + 6*t},
			{name: "pad2", typ: v, width: 40},
		}
		specs = append(specs, tableSpec{
			name: name,
			rows: rows,
			pk:   []string{"id"},
			heap: t%2 == 1, // every other table is a heap
			cols: cols,
		})
	}
	return specs
}

// fkDomain returns the id domain of the next smaller table (or this one
// for the last table).
func fkDomain(rowCounts []int64, t int) int64 {
	if t+1 < len(rowCounts) {
		return rowCounts[t+1]
	}
	return rowCounts[t]
}

// Package datagen builds the synthetic databases the experiments run
// against: a TPC-H-style schema, a "DS1" star schema standing in for the
// paper's real decision-support database, and a generic "BENCH" database.
// All statistics are generated deterministically from a fixed seed, so
// experiments are reproducible. No rows are materialized — the tuning
// algorithms consume only catalog statistics, like the paper's prototype
// consumes optimizer estimates.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/physical"
)

// Seed fixes all generated statistics.
const Seed = 20050614 // SIGMOD 2005

// colSpec describes how to synthesize one column's statistics.
type colSpec struct {
	name     string
	typ      catalog.ColType
	distinct int64   // 0 = all distinct (key-like)
	min, max float64 // numeric/date domain
	width    int     // varchar average width
	skew     float64 // 0 = uniform; >0 = zipf-ish concentration
	// values fixes a categorical varchar domain (TPC-H region names,
	// ship modes, …) so string predicates in the benchmark workloads
	// actually match generated data.
	values []string
}

// buildColumn synthesizes a column with a histogram sampled from the spec.
func buildColumn(rng *rand.Rand, rows int64, sp colSpec) catalog.Column {
	col := catalog.Column{Name: sp.name, Type: sp.typ}
	if w := catalog.FixedWidth(sp.typ); w > 0 {
		col.AvgWidth = w
	} else if len(sp.values) > 0 {
		total := 0
		for _, v := range sp.values {
			total += len(v)
		}
		col.AvgWidth = total / len(sp.values)
		if col.AvgWidth < 1 {
			col.AvgWidth = 1
		}
	} else {
		col.AvgWidth = sp.width
		if col.AvgWidth <= 0 {
			col.AvgWidth = 16
		}
	}
	distinct := sp.distinct
	if len(sp.values) > 0 {
		distinct = int64(len(sp.values))
	}
	if distinct <= 0 || distinct > rows {
		distinct = rows
	}
	if distinct < 1 {
		distinct = 1
	}
	stats := &catalog.ColumnStats{Distinct: distinct}
	if sp.typ != catalog.TypeVarchar {
		stats.Numeric = true
		stats.Min, stats.Max = sp.min, sp.max
		if stats.Max < stats.Min {
			stats.Max = stats.Min
		}
		sample := sampleValues(rng, sp, distinct, 2048)
		stats.Histogram = catalog.BuildHistogram(sample, catalog.DefaultHistogramBuckets)
	}
	col.Stats = stats
	return col
}

// sampleValues draws n values from the column's distribution.
func sampleValues(rng *rand.Rand, sp colSpec, distinct int64, n int) []float64 {
	span := sp.max - sp.min
	if span <= 0 {
		return []float64{sp.min}
	}
	vals := make([]float64, n)
	for i := range vals {
		var u float64
		if sp.skew > 0 {
			// Concentrate mass toward the low end of the domain.
			u = math.Pow(rng.Float64(), 1+sp.skew*3)
		} else {
			u = rng.Float64()
		}
		v := sp.min + u*span
		// Snap to the discrete value grid implied by the distinct count.
		if distinct > 1 {
			step := span / float64(distinct-1)
			v = sp.min + math.Round((v-sp.min)/step)*step
		} else {
			v = sp.min
		}
		vals[i] = v
	}
	return vals
}

// tableSpec couples a table definition with its storage layout.
type tableSpec struct {
	name string
	rows int64
	pk   []string
	heap bool
	cols []colSpec
}

func buildTable(rng *rand.Rand, sp tableSpec) (*catalog.Table, error) {
	cols := make([]catalog.Column, len(sp.cols))
	for i, cs := range sp.cols {
		cols[i] = buildColumn(rng, sp.rows, cs)
	}
	t, err := catalog.NewTable(sp.name, sp.rows, cols, sp.pk)
	if err != nil {
		return nil, err
	}
	t.Heap = sp.heap
	return t, nil
}

func buildDatabase(name string, specs []tableSpec) *catalog.Database {
	rng := rand.New(rand.NewSource(Seed + int64(len(name))*7919))
	db := catalog.NewDatabase(name)
	for _, sp := range specs {
		t, err := buildTable(rng, sp)
		if err != nil {
			panic(fmt.Sprintf("datagen: %v", err))
		}
		db.MustAddTable(t)
	}
	if err := db.Validate(); err != nil {
		panic(fmt.Sprintf("datagen: generated invalid database: %v", err))
	}
	return db
}

func scaled(base float64, sf float64, min int64) int64 {
	n := int64(base * sf)
	if n < min {
		n = min
	}
	return n
}

// BaseConfiguration returns the constraint-enforcing indexes every
// configuration must contain: a clustered primary-key index per regular
// table (with all remaining columns as the stored row) or a non-clustered
// primary-key index per heap table. These indexes are Required and can
// never be removed by the tuner.
func BaseConfiguration(db *catalog.Database) *physical.Configuration {
	cfg := physical.NewConfiguration()
	for _, t := range db.Tables() {
		if len(t.PrimaryKey) == 0 {
			continue
		}
		var suffix []string
		if !t.Heap {
			for _, c := range t.ColumnNames() {
				suffix = append(suffix, c)
			}
		}
		ix := physical.NewIndex(t.Name, t.PrimaryKey, suffix, !t.Heap)
		ix.Required = true
		cfg.AddIndex(ix)
	}
	return cfg
}

// HeapTables returns the lower-cased names of heap tables, as consumed by
// physical.EnumerateOptions.
func HeapTables(db *catalog.Database) map[string]bool {
	out := map[string]bool{}
	for _, t := range db.Tables() {
		if t.Heap {
			out[lower(t.Name)] = true
		}
	}
	return out
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
		}
	}
	return string(b)
}

// Date helpers: dates are stored as days since 1970-01-01; the TPC-H
// domain spans 1992-01-01 .. 1998-12-31.
const (
	DateMin = 8035  // 1992-01-01
	DateMax = 10592 // 1998-12-31
)

package datagen

import (
	"testing"

	"repro/internal/catalog"
)

func TestTPCHSchemaShape(t *testing.T) {
	db := TPCH(0.001)
	if len(db.Tables()) != 8 {
		t.Fatalf("tables: %d", len(db.Tables()))
	}
	li := db.Table("lineitem")
	if li == nil {
		t.Fatal("lineitem missing")
	}
	if li.Rows < 5000 {
		t.Errorf("lineitem rows: %d", li.Rows)
	}
	if len(li.PrimaryKey) != 2 {
		t.Errorf("lineitem pk: %v", li.PrimaryKey)
	}
	if db.Table("region").Rows != 5 || db.Table("nation").Rows != 25 {
		t.Error("fixed-size tables wrong")
	}
	if err := db.Validate(); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestTPCHScaling(t *testing.T) {
	small := TPCH(0.001)
	big := TPCH(0.01)
	if big.Table("lineitem").Rows <= small.Table("lineitem").Rows {
		t.Error("scale factor must grow row counts")
	}
	// Fixed tables do not scale.
	if big.Table("nation").Rows != small.Table("nation").Rows {
		t.Error("nation should not scale")
	}
}

func TestDeterminism(t *testing.T) {
	a := TPCH(0.001)
	b := TPCH(0.001)
	for _, ta := range a.Tables() {
		tb := b.Table(ta.Name)
		for i, ca := range ta.Columns {
			cb := tb.Columns[i]
			if ca.AvgWidth != cb.AvgWidth || ca.Stats.Distinct != cb.Stats.Distinct {
				t.Fatalf("%s.%s differs across builds", ta.Name, ca.Name)
			}
			if ca.Stats.Histogram != nil {
				ha, hb := ca.Stats.Histogram, cb.Stats.Histogram
				for j := range ha.Bounds {
					if ha.Bounds[j] != hb.Bounds[j] {
						t.Fatalf("%s.%s histogram differs", ta.Name, ca.Name)
					}
				}
			}
		}
	}
}

func TestDS1StarSchema(t *testing.T) {
	db := DS1(0.001)
	fact := db.Table("sales_fact")
	if fact == nil {
		t.Fatal("fact table missing")
	}
	for _, dim := range []string{"dim_date", "dim_store", "dim_product", "dim_customer", "dim_promotion"} {
		d := db.Table(dim)
		if d == nil {
			t.Fatalf("dimension %s missing", dim)
		}
		if d.Rows >= fact.Rows {
			t.Errorf("dimension %s (%d rows) should be smaller than the fact (%d)", dim, d.Rows, fact.Rows)
		}
	}
	if !db.Table("returns_fact").Heap {
		t.Error("returns_fact should be a heap")
	}
	if err := db.Validate(); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestBenchAlternatesHeaps(t *testing.T) {
	db := Bench(0.001)
	heaps := 0
	for _, tb := range db.Tables() {
		if tb.Heap {
			heaps++
		}
	}
	if heaps != 4 {
		t.Errorf("heap tables: %d, want 4", heaps)
	}
	if err := db.Validate(); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestBaseConfiguration(t *testing.T) {
	db := DS1(0.001)
	cfg := BaseConfiguration(db)
	for _, tb := range db.Tables() {
		ixs := cfg.IndexesOn(tb.Name)
		if len(ixs) != 1 {
			t.Fatalf("%s: %d base indexes", tb.Name, len(ixs))
		}
		ix := ixs[0]
		if !ix.Required {
			t.Errorf("%s: base index not required", tb.Name)
		}
		if ix.Clustered == tb.Heap {
			t.Errorf("%s: clustered=%v but heap=%v", tb.Name, ix.Clustered, tb.Heap)
		}
		if !tb.Heap && !ix.Covers(tb.ColumnNames()) {
			t.Errorf("%s: clustered PK must cover all columns", tb.Name)
		}
	}
}

func TestHeapTablesMap(t *testing.T) {
	db := Bench(0.001)
	heaps := HeapTables(db)
	if !heaps["t2"] || heaps["t1"] {
		t.Errorf("heap map wrong: %v", heaps)
	}
}

func TestHistogramsBuiltForNumericColumns(t *testing.T) {
	db := TPCH(0.001)
	for _, tb := range db.Tables() {
		for _, c := range tb.Columns {
			if c.Type == catalog.TypeVarchar {
				if c.Stats.Histogram != nil {
					t.Errorf("%s.%s: varchar should not carry a histogram", tb.Name, c.Name)
				}
				continue
			}
			if c.Stats.Histogram == nil {
				t.Errorf("%s.%s: numeric column lacks a histogram", tb.Name, c.Name)
			}
		}
	}
}

func TestSkewConcentratesMass(t *testing.T) {
	db := DS1(0.01)
	c := db.Table("sales_fact").Column("sf_amount")
	s := c.Stats
	// Skewed toward the low end: the median should sit well below the
	// domain midpoint.
	mid := (s.Min + s.Max) / 2
	if s.Histogram.LtFraction(mid) < 0.7 {
		t.Errorf("skewed column should have most mass below the midpoint: %g", s.Histogram.LtFraction(mid))
	}
}

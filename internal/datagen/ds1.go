package datagen

import "repro/internal/catalog"

// DS1 builds the stand-in for the paper's real decision-support customer
// database: a star schema with one large fact table, several dimensions,
// and skewed measure columns. Substitution note: the paper's DS1 is a
// proprietary customer database; this generator preserves its role in the
// experiments (a second schema family with different join and predicate
// structure than TPC-H).
func DS1(sf float64) *catalog.Database {
	return buildDatabase("ds1", ds1Specs(sf))
}

// ds1Specs defines the schema and statistical shape of every table.
func ds1Specs(sf float64) []tableSpec {
	i, f, v, d := catalog.TypeInt, catalog.TypeFloat, catalog.TypeVarchar, catalog.TypeDate
	stores := scaled(1_000, sf, 20)
	products := scaled(60_000, sf, 100)
	customers := scaled(400_000, sf, 400)
	promos := scaled(2_000, sf, 30)
	sales := scaled(8_000_000, sf, 8000)
	returns := scaled(800_000, sf, 800)

	specs := []tableSpec{
		{
			name: "dim_date", rows: 2557, pk: []string{"d_datekey"},
			cols: []colSpec{
				{name: "d_datekey", typ: d, min: DateMin, max: DateMax},
				{name: "d_year", typ: i, distinct: 7, min: 1992, max: 1998},
				{name: "d_quarter", typ: i, distinct: 4, min: 1, max: 4},
				{name: "d_month", typ: i, distinct: 12, min: 1, max: 12},
				{name: "d_week", typ: i, distinct: 53, min: 1, max: 53},
				{name: "d_dayofweek", typ: i, distinct: 7, min: 1, max: 7},
				{name: "d_holidayflag", typ: i, distinct: 2, min: 0, max: 1},
			},
		},
		{
			name: "dim_store", rows: stores, pk: []string{"st_storekey"},
			cols: []colSpec{
				{name: "st_storekey", typ: i, min: 1, max: float64(stores)},
				{name: "st_name", typ: v, width: 20},
				{name: "st_city", typ: v, distinct: 250, width: 16},
				{name: "st_state", typ: v, distinct: 50, width: 2},
				{name: "st_region", typ: i, distinct: 8, min: 1, max: 8},
				{name: "st_sqft", typ: i, distinct: stores / 2, min: 5000, max: 120000},
				{name: "st_opendate", typ: d, distinct: stores, min: DateMin - 7300, max: DateMax},
			},
		},
		{
			name: "dim_product", rows: products, pk: []string{"p_productkey"},
			cols: []colSpec{
				{name: "p_productkey", typ: i, min: 1, max: float64(products)},
				{name: "p_name", typ: v, width: 30},
				{name: "p_category", typ: i, distinct: 40, min: 1, max: 40},
				{name: "p_subcategory", typ: i, distinct: 400, min: 1, max: 400},
				{name: "p_brandkey", typ: i, distinct: 1200, min: 1, max: 1200},
				{name: "p_price", typ: f, distinct: products / 5, min: 0.5, max: 2500, skew: 0.6},
				{name: "p_cost", typ: f, distinct: products / 5, min: 0.2, max: 1800, skew: 0.6},
			},
		},
		{
			name: "dim_customer", rows: customers, pk: []string{"cu_custkey"},
			cols: []colSpec{
				{name: "cu_custkey", typ: i, min: 1, max: float64(customers)},
				{name: "cu_name", typ: v, width: 22},
				{name: "cu_city", typ: v, distinct: 1500, width: 16},
				{name: "cu_state", typ: v, distinct: 50, width: 2},
				{name: "cu_segment", typ: i, distinct: 6, min: 1, max: 6},
				{name: "cu_income", typ: f, distinct: customers / 3, min: 8000, max: 450000, skew: 0.7},
				{name: "cu_birthdate", typ: d, distinct: 20000, min: -18000, max: 3000},
			},
		},
		{
			name: "dim_promotion", rows: promos, pk: []string{"pr_promokey"},
			cols: []colSpec{
				{name: "pr_promokey", typ: i, min: 1, max: float64(promos)},
				{name: "pr_name", typ: v, width: 24},
				{name: "pr_channel", typ: i, distinct: 6, min: 1, max: 6},
				{name: "pr_discountpct", typ: f, distinct: 20, min: 0, max: 0.5},
				{name: "pr_startdate", typ: d, distinct: promos, min: DateMin, max: DateMax},
			},
		},
		{
			name: "sales_fact", rows: sales, pk: []string{"sf_saleskey"},
			cols: []colSpec{
				{name: "sf_saleskey", typ: i, min: 1, max: float64(sales)},
				{name: "sf_datekey", typ: d, distinct: 2557, min: DateMin, max: DateMax},
				{name: "sf_storekey", typ: i, distinct: stores, min: 1, max: float64(stores), skew: 0.5},
				{name: "sf_productkey", typ: i, distinct: products, min: 1, max: float64(products), skew: 0.8},
				{name: "sf_custkey", typ: i, distinct: customers, min: 1, max: float64(customers), skew: 0.4},
				{name: "sf_promokey", typ: i, distinct: promos, min: 1, max: float64(promos), skew: 0.9},
				{name: "sf_quantity", typ: i, distinct: 100, min: 1, max: 100, skew: 0.7},
				{name: "sf_amount", typ: f, distinct: sales / 6, min: 0.5, max: 30000, skew: 0.8},
				{name: "sf_profit", typ: f, distinct: sales / 6, min: -2000, max: 9000, skew: 0.5},
			},
		},
		{
			// A second, smaller fact table stored as a heap: exercises
			// promotion-to-clustered during relaxation.
			name: "returns_fact", rows: returns, pk: []string{"rf_returnkey"}, heap: true,
			cols: []colSpec{
				{name: "rf_returnkey", typ: i, min: 1, max: float64(returns)},
				{name: "rf_datekey", typ: d, distinct: 2557, min: DateMin, max: DateMax},
				{name: "rf_storekey", typ: i, distinct: stores, min: 1, max: float64(stores)},
				{name: "rf_productkey", typ: i, distinct: products, min: 1, max: float64(products), skew: 0.6},
				{name: "rf_custkey", typ: i, distinct: customers, min: 1, max: float64(customers)},
				{name: "rf_reason", typ: i, distinct: 30, min: 1, max: 30},
				{name: "rf_amount", typ: f, distinct: returns / 4, min: 0.5, max: 12000, skew: 0.7},
			},
		},
	}
	return specs
}

package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/catalog"
	"repro/internal/exec"
)

// MaxMaterializedRows caps the rows generated per table by the *Data
// constructors; materialization targets validation at tiny scale factors.
const MaxMaterializedRows = 200_000

// TPCHData builds the TPC-H-style database together with materialized
// rows. Unlike TPCH, the returned catalog's statistics are derived from
// the generated rows themselves, so optimizer estimates can be validated
// against exact execution results.
func TPCHData(sf float64) (*catalog.Database, *exec.Store) {
	return materialize("tpch", tpchSpecs(sf))
}

// DS1Data is the materialized variant of DS1.
func DS1Data(sf float64) (*catalog.Database, *exec.Store) {
	return materialize("ds1", ds1Specs(sf))
}

// BenchData is the materialized variant of Bench.
func BenchData(sf float64) (*catalog.Database, *exec.Store) {
	return materialize("bench", benchSpecs(sf))
}

func materialize(name string, specs []tableSpec) (*catalog.Database, *exec.Store) {
	rng := rand.New(rand.NewSource(Seed + int64(len(name))*7919 + 1))
	db := catalog.NewDatabase(name)
	store := exec.NewStore()
	for _, sp := range specs {
		t, rel := materializeTable(rng, sp)
		db.MustAddTable(t)
		store.Put(t.Name, rel)
	}
	if err := db.Validate(); err != nil {
		panic(fmt.Sprintf("datagen: materialized database invalid: %v", err))
	}
	return db, store
}

// materializeTable generates actual rows from the spec's distributions
// and derives the catalog statistics from those rows.
func materializeTable(rng *rand.Rand, sp tableSpec) (*catalog.Table, *exec.Relation) {
	n := sp.rows
	if n > MaxMaterializedRows {
		n = MaxMaterializedRows
	}
	colNames := make([]string, len(sp.cols))
	data := make([][]exec.Value, len(sp.cols))
	cols := make([]catalog.Column, len(sp.cols))
	for ci, cs := range sp.cols {
		colNames[ci] = sp.name + "." + cs.name
		vals := generateColumn(rng, n, cs)
		data[ci] = vals
		cols[ci] = columnFromData(cs, vals)
	}
	t, err := catalog.NewTable(sp.name, n, cols, sp.pk)
	if err != nil {
		panic(fmt.Sprintf("datagen: %v", err))
	}
	t.Heap = sp.heap
	rel := exec.NewRelation(colNames)
	for r := int64(0); r < n; r++ {
		row := make(exec.Row, len(sp.cols))
		for ci := range sp.cols {
			row[ci] = data[ci][r]
		}
		rel.Append(row)
	}
	return t, rel
}

// generateColumn draws n values from the column's distribution. The id
// column convention (distinct == rows) generates a dense unique domain so
// primary keys behave like keys.
func generateColumn(rng *rand.Rand, n int64, cs colSpec) []exec.Value {
	out := make([]exec.Value, n)
	if cs.typ == catalog.TypeVarchar {
		if len(cs.values) > 0 {
			for i := range out {
				out[i] = exec.Str(cs.values[rng.Intn(len(cs.values))])
			}
			return out
		}
		distinct := cs.distinct
		if distinct <= 0 || distinct > n {
			distinct = n
		}
		if distinct < 1 {
			distinct = 1
		}
		for i := range out {
			v := rng.Int63n(distinct)
			out[i] = exec.Str(fmt.Sprintf("%s_%0*d", cs.name, padWidth(cs.width, cs.name), v))
		}
		return out
	}
	distinct := cs.distinct
	unique := distinct <= 0 || distinct >= n
	span := cs.max - cs.min
	if unique {
		// Dense shuffled domain (key-like columns).
		perm := rng.Perm(int(n))
		step := 1.0
		if n > 1 && span > 0 {
			step = span / float64(n-1)
		}
		for i := range out {
			out[i] = exec.Num(cs.min + float64(perm[i])*step)
		}
		return out
	}
	for i := range out {
		var u float64
		if cs.skew > 0 {
			u = math.Pow(rng.Float64(), 1+cs.skew*3)
		} else {
			u = rng.Float64()
		}
		v := cs.min + u*span
		if distinct > 1 && span > 0 {
			step := span / float64(distinct-1)
			v = cs.min + math.Round((v-cs.min)/step)*step
		} else if span <= 0 {
			v = cs.min
		}
		out[i] = exec.Num(v)
	}
	return out
}

// padWidth sizes generated strings so their average width approximates
// the spec's.
func padWidth(width int, name string) int {
	w := width - len(name) - 1
	if w < 3 {
		w = 3
	}
	return w
}

// columnFromData derives catalog statistics from generated values.
func columnFromData(cs colSpec, vals []exec.Value) catalog.Column {
	col := catalog.Column{Name: cs.name, Type: cs.typ}
	if len(vals) == 0 {
		col.AvgWidth = 4
		col.Stats = &catalog.ColumnStats{Distinct: 1}
		return col
	}
	if cs.typ == catalog.TypeVarchar {
		distinct := map[string]bool{}
		totalLen := 0
		for _, v := range vals {
			distinct[v.S] = true
			totalLen += len(v.S)
		}
		col.AvgWidth = totalLen / len(vals)
		if col.AvgWidth < 1 {
			col.AvgWidth = 1
		}
		col.Stats = &catalog.ColumnStats{Distinct: int64(len(distinct))}
		return col
	}
	col.AvgWidth = catalog.FixedWidth(cs.typ)
	nums := make([]float64, len(vals))
	for i, v := range vals {
		nums[i] = v.F
	}
	sorted := append([]float64(nil), nums...)
	sort.Float64s(sorted)
	distinct := int64(1)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1] {
			distinct++
		}
	}
	col.Stats = &catalog.ColumnStats{
		Distinct:  distinct,
		Min:       sorted[0],
		Max:       sorted[len(sorted)-1],
		Numeric:   true,
		Histogram: catalog.BuildHistogram(nums, catalog.DefaultHistogramBuckets),
	}
	return col
}

package datagen

import "repro/internal/catalog"

// TPCH builds a TPC-H-style database at the given scale factor (SF 1.0 is
// the standard 6M-lineitem scale; experiments default to much smaller
// factors since only statistics matter). Substitution note: the paper
// tunes a real TPC-H instance inside SQL Server; here the same schema and
// value domains are synthesized statistically.
func TPCH(sf float64) *catalog.Database {
	return buildDatabase("tpch", tpchSpecs(sf))
}

// tpchSpecs defines the schema and statistical shape of every table.
func tpchSpecs(sf float64) []tableSpec {
	i, f, v, d := catalog.TypeInt, catalog.TypeFloat, catalog.TypeVarchar, catalog.TypeDate
	supplier := scaled(10_000, sf, 10)
	part := scaled(200_000, sf, 200)
	partsupp := scaled(800_000, sf, 800)
	customer := scaled(150_000, sf, 150)
	orders := scaled(1_500_000, sf, 1500)
	lineitem := scaled(6_000_000, sf, 6000)

	specs := []tableSpec{
		{
			name: "region", rows: 5, pk: []string{"r_regionkey"},
			cols: []colSpec{
				{name: "r_regionkey", typ: i, min: 0, max: 4},
				{name: "r_name", typ: v, values: tpchRegions},
				{name: "r_comment", typ: v, distinct: 5, width: 64},
			},
		},
		{
			name: "nation", rows: 25, pk: []string{"n_nationkey"},
			cols: []colSpec{
				{name: "n_nationkey", typ: i, min: 0, max: 24},
				{name: "n_name", typ: v, values: tpchNations},
				{name: "n_regionkey", typ: i, distinct: 5, min: 0, max: 4},
				{name: "n_comment", typ: v, distinct: 25, width: 72},
			},
		},
		{
			name: "supplier", rows: supplier, pk: []string{"s_suppkey"},
			cols: []colSpec{
				{name: "s_suppkey", typ: i, min: 1, max: float64(supplier)},
				{name: "s_name", typ: v, width: 18},
				{name: "s_address", typ: v, width: 24},
				{name: "s_nationkey", typ: i, distinct: 25, min: 0, max: 24},
				{name: "s_phone", typ: v, width: 15},
				{name: "s_acctbal", typ: f, distinct: supplier / 2, min: -999, max: 9999},
				{name: "s_comment", typ: v, width: 62},
			},
		},
		{
			name: "part", rows: part, pk: []string{"p_partkey"},
			cols: []colSpec{
				{name: "p_partkey", typ: i, min: 1, max: float64(part)},
				{name: "p_name", typ: v, width: 32},
				{name: "p_mfgr", typ: v, values: tpchMfgrs},
				{name: "p_brand", typ: v, values: tpchBrands},
				{name: "p_type", typ: v, values: tpchTypes},
				{name: "p_size", typ: i, distinct: 50, min: 1, max: 50},
				{name: "p_container", typ: v, values: tpchContainers},
				{name: "p_retailprice", typ: f, distinct: part / 4, min: 900, max: 2100},
				{name: "p_comment", typ: v, width: 14},
			},
		},
		{
			name: "partsupp", rows: partsupp, pk: []string{"ps_partkey", "ps_suppkey"},
			cols: []colSpec{
				{name: "ps_partkey", typ: i, distinct: part, min: 1, max: float64(part)},
				{name: "ps_suppkey", typ: i, distinct: supplier, min: 1, max: float64(supplier)},
				{name: "ps_availqty", typ: i, distinct: 9999, min: 1, max: 9999},
				{name: "ps_supplycost", typ: f, distinct: partsupp / 8, min: 1, max: 1000},
				{name: "ps_comment", typ: v, width: 124},
			},
		},
		{
			name: "customer", rows: customer, pk: []string{"c_custkey"},
			cols: []colSpec{
				{name: "c_custkey", typ: i, min: 1, max: float64(customer)},
				{name: "c_name", typ: v, width: 18},
				{name: "c_address", typ: v, width: 24},
				{name: "c_nationkey", typ: i, distinct: 25, min: 0, max: 24},
				{name: "c_phone", typ: v, width: 15},
				{name: "c_acctbal", typ: f, distinct: customer / 2, min: -999, max: 9999},
				{name: "c_mktsegment", typ: v, values: tpchSegments},
				{name: "c_comment", typ: v, width: 72},
			},
		},
		{
			name: "orders", rows: orders, pk: []string{"o_orderkey"},
			cols: []colSpec{
				{name: "o_orderkey", typ: i, min: 1, max: float64(orders) * 4},
				{name: "o_custkey", typ: i, distinct: customer, min: 1, max: float64(customer)},
				{name: "o_orderstatus", typ: v, values: tpchOrderStats},
				{name: "o_totalprice", typ: f, distinct: orders / 2, min: 850, max: 560000, skew: 0.4},
				{name: "o_orderdate", typ: d, distinct: DateMax - DateMin - 151, min: DateMin, max: DateMax - 151},
				{name: "o_orderpriority", typ: v, values: tpchPriorities},
				{name: "o_clerk", typ: v, distinct: supplier / 10, width: 15},
				{name: "o_shippriority", typ: i, distinct: 1, min: 0, max: 0},
				{name: "o_comment", typ: v, width: 49},
			},
		},
		{
			name: "lineitem", rows: lineitem, pk: []string{"l_orderkey", "l_linenumber"},
			cols: []colSpec{
				{name: "l_orderkey", typ: i, distinct: orders, min: 1, max: float64(orders) * 4},
				{name: "l_partkey", typ: i, distinct: part, min: 1, max: float64(part)},
				{name: "l_suppkey", typ: i, distinct: supplier, min: 1, max: float64(supplier)},
				{name: "l_linenumber", typ: i, distinct: 7, min: 1, max: 7},
				{name: "l_quantity", typ: f, distinct: 50, min: 1, max: 50},
				{name: "l_extendedprice", typ: f, distinct: lineitem / 4, min: 900, max: 105000, skew: 0.3},
				{name: "l_discount", typ: f, distinct: 11, min: 0, max: 0.1},
				{name: "l_tax", typ: f, distinct: 9, min: 0, max: 0.08},
				{name: "l_returnflag", typ: v, values: tpchFlags},
				{name: "l_linestatus", typ: v, values: tpchStatuses},
				{name: "l_shipdate", typ: d, distinct: DateMax - DateMin, min: DateMin, max: DateMax},
				{name: "l_commitdate", typ: d, distinct: DateMax - DateMin, min: DateMin, max: DateMax},
				{name: "l_receiptdate", typ: d, distinct: DateMax - DateMin, min: DateMin, max: DateMax},
				{name: "l_shipinstruct", typ: v, values: tpchInstructs},
				{name: "l_shipmode", typ: v, values: tpchShipModes},
				{name: "l_comment", typ: v, width: 27},
			},
		},
	}
	return specs
}

// Standard TPC-H categorical domains, so the benchmark workloads' string
// predicates ('EUROPE', 'BUILDING', 'PROMO%', …) match generated data.
var (
	tpchRegions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	tpchNations = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
		"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
		"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
		"UNITED STATES",
	}
	tpchSegments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	tpchPriorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	tpchShipModes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	tpchInstructs  = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	tpchFlags      = []string{"R", "A", "N"}
	tpchStatuses   = []string{"O", "F"}
	tpchOrderStats = []string{"O", "F", "P"}
	tpchBrands     = tpchCross([]string{"Brand#"}, tpchDigits(), tpchDigits())
	tpchTypes      = tpchCross(
		[]string{"STANDARD ", "SMALL ", "MEDIUM ", "LARGE ", "ECONOMY ", "PROMO "},
		[]string{"ANODIZED ", "BURNISHED ", "PLATED ", "POLISHED ", "BRUSHED "},
		[]string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"})
	tpchContainers = tpchCross(
		[]string{"SM ", "LG ", "MED ", "JUMBO ", "WRAP "},
		[]string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"})
	tpchMfgrs = tpchCross([]string{"Manufacturer#"}, tpchDigits())
)

func tpchDigits() []string {
	return []string{"1", "2", "3", "4", "5"}
}

// tpchCross concatenates every combination of the given string sets.
func tpchCross(sets ...[]string) []string {
	out := []string{""}
	for _, set := range sets {
		var next []string
		for _, prefix := range out {
			for _, v := range set {
				next = append(next, prefix+v)
			}
		}
		out = next
	}
	return out
}

package exec

import (
	"testing"

	"repro/internal/physical"
	"repro/internal/sqlx"
)

// emptyStore is tinyStore's schema with zero rows in both tables — the
// empty-relation edge the executor must survive everywhere (selection,
// joins, aggregation, view materialization).
func emptyStore() *Store {
	s := NewStore()
	s.Put("r", NewRelation([]string{"r.a", "r.b", "r.s"}))
	s.Put("u", NewRelation([]string{"u.fk", "u.x"}))
	return s
}

// nullHeavyStore approximates NULL-heavy data the way the engine can
// represent it: zero-valued numerics and empty strings dominating a
// column. Aggregates and predicates must stay well-defined over them.
func nullHeavyStore() *Store {
	s := NewStore()
	r := NewRelation([]string{"r.a", "r.b", "r.s"})
	rows := []struct {
		a, b float64
		s    string
	}{
		{1, 0, ""}, {1, 0, ""}, {2, 0, ""}, {2, 30, "x"}, {3, 0, ""},
	}
	for _, t := range rows {
		r.Append(Row{Num(t.a), Num(t.b), Str(t.s)})
	}
	s.Put("r", r)
	u := NewRelation([]string{"u.fk", "u.x"})
	s.Put("u", u) // empty side of the join
	return s
}

func TestExecuteOverEmptyRelation(t *testing.T) {
	store := emptyStore()
	for _, src := range []string{
		"SELECT r.b FROM r WHERE r.a = 1",
		"SELECT r.b, u.x FROM r, u WHERE r.a = u.fk",
		"SELECT r.a, SUM(r.b), COUNT(*) FROM r GROUP BY r.a",
		"SELECT r.b FROM r WHERE r.s = 'x'",
	} {
		res, st, err := ExecuteQuery(store, bindOn(t, src))
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if res.Len() != 0 {
			t.Errorf("%q: empty tables produced %d rows", src, res.Len())
		}
		if st.RowsScanned != 0 {
			t.Errorf("%q: scanned %d rows of nothing", src, st.RowsScanned)
		}
	}
}

func TestIndexOverEmptyRelation(t *testing.T) {
	store := emptyStore()
	if err := store.AddIndex("ix:r:a", "r", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	res, st, err := ExecuteQuery(store, bindOn(t, "SELECT r.b FROM r WHERE r.a = 1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 || st.RowsScanned != 0 {
		t.Errorf("indexed empty table: %d rows, %+v", res.Len(), st)
	}
}

func TestAggregatesOverEmptyInput(t *testing.T) {
	store := emptyStore()
	// Grouped aggregate over nothing: zero groups (SQL semantics for
	// GROUP BY over an empty input).
	res, _, err := ExecuteQuery(store, bindOn(t, "SELECT r.a, SUM(r.b), MIN(r.b), MAX(r.b), AVG(r.b) FROM r GROUP BY r.a"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("grouping empty input yields %d groups", res.Len())
	}
}

func TestNullHeavyAggregation(t *testing.T) {
	store := nullHeavyStore()
	res, _, err := ExecuteQuery(store, bindOn(t, "SELECT r.a, SUM(r.b), COUNT(*) FROM r GROUP BY r.a"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("groups: %d", res.Len())
	}
	ai := res.ColIndex(res.Cols[0])
	for _, row := range res.Rows {
		switch row[ai].F {
		case 1:
			if row[1].F != 0 || row[2].F != 2 {
				t.Errorf("group a=1 over zero-heavy column: %v", row)
			}
		case 2:
			if row[1].F != 30 || row[2].F != 2 {
				t.Errorf("group a=2: %v", row)
			}
		}
	}
}

func TestNullHeavyStringPredicates(t *testing.T) {
	store := nullHeavyStore()
	res, _, err := ExecuteQuery(store, bindOn(t, "SELECT r.a FROM r WHERE r.s = ''"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Errorf("empty-string rows: %d, want 4", res.Len())
	}
	res, _, err = ExecuteQuery(store, bindOn(t, "SELECT r.a FROM r WHERE r.s = 'x'"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("'x' rows: %d, want 1", res.Len())
	}
}

func TestJoinAgainstEmptySide(t *testing.T) {
	store := nullHeavyStore() // r populated, u empty
	res, _, err := ExecuteQuery(store, bindOn(t, "SELECT r.b, u.x FROM r, u WHERE r.a = u.fk"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("join against empty side: %d rows", res.Len())
	}
}

// viewOf lowers a query to its view definition shape by hand, so
// ExecuteView is covered without the optimizer package (unit scope).
func viewOf(tables []string, ranges []physical.RangeCond, joins []physical.JoinPred, groupBy []sqlx.ColRef, outs []physical.ViewColumn) *physical.View {
	return &physical.View{
		Name: "v_test", Tables: tables, Ranges: ranges,
		Joins: joins, GroupBy: groupBy, Cols: outs,
	}
}

func TestExecuteViewSelectionAndProjection(t *testing.T) {
	store := tinyStore()
	v := viewOf(
		[]string{"r"},
		[]physical.RangeCond{{
			Col: sqlx.ColRef{Table: "r", Column: "a"},
			Iv:  physical.Interval{Lo: 2, Hi: 3, LoIncl: true, HiIncl: true},
		}},
		nil, nil,
		[]physical.ViewColumn{
			{Name: "a", Source: sqlx.ColRef{Table: "r", Column: "a"}},
			{Name: "b", Source: sqlx.ColRef{Table: "r", Column: "b"}},
		},
	)
	res, st, err := ExecuteView(store, v)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("view rows: %d", res.Len())
	}
	if st.RowsScanned != 5 || st.TableScans != 1 {
		t.Errorf("view stats: %+v", st)
	}
}

func TestExecuteViewGroupedJoin(t *testing.T) {
	store := tinyStore()
	v := viewOf(
		[]string{"r", "u"},
		nil,
		[]physical.JoinPred{{
			L: sqlx.ColRef{Table: "r", Column: "a"},
			R: sqlx.ColRef{Table: "u", Column: "fk"},
		}},
		[]sqlx.ColRef{{Table: "r", Column: "a"}},
		[]physical.ViewColumn{
			{Name: "a", Source: sqlx.ColRef{Table: "r", Column: "a"}},
			{Name: "sum_x", Agg: sqlx.AggSum, Source: sqlx.ColRef{Table: "u", Column: "x"}},
			{Name: "cnt", Agg: sqlx.AggCount},
		},
	)
	res, _, err := ExecuteView(store, v)
	if err != nil {
		t.Fatal(err)
	}
	// a=1 joins u.fk=1 twice (x=100 each), a=2 joins fk=2 twice.
	if res.Len() != 2 {
		t.Fatalf("groups: %d", res.Len())
	}
	ai := res.ColIndex("a")
	for _, row := range res.Rows {
		if row[ai].F == 1 && (row[1].F != 200 || row[2].F != 2) {
			t.Errorf("group a=1: %v", row)
		}
	}
}

func TestExecuteViewOverEmptyTables(t *testing.T) {
	store := emptyStore()
	v := viewOf(
		[]string{"r"}, nil, nil,
		[]sqlx.ColRef{{Table: "r", Column: "a"}},
		[]physical.ViewColumn{
			{Name: "a", Source: sqlx.ColRef{Table: "r", Column: "a"}},
			{Name: "cnt", Agg: sqlx.AggCount},
		},
	)
	res, st, err := ExecuteView(store, v)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 || st.RowsScanned != 0 {
		t.Errorf("view over empty table: %d rows, %+v", res.Len(), st)
	}
}

func TestExecuteViewMissingTable(t *testing.T) {
	store := emptyStore()
	v := viewOf([]string{"ghost"}, nil, nil, nil,
		[]physical.ViewColumn{{Name: "g", Source: sqlx.ColRef{Table: "ghost", Column: "g"}}})
	if _, _, err := ExecuteView(store, v); err == nil {
		t.Error("view over an unknown table must error")
	}
}

package exec

import (
	"fmt"
	"strings"

	"repro/internal/sqlx"
)

// env resolves qualified column references against one row.
type env struct {
	rel *Relation
	row Row
}

func (e env) lookup(c sqlx.ColRef) (Value, error) {
	name := c.Table + "." + c.Column
	i := e.rel.ColIndex(name)
	if i < 0 {
		// View-local (unqualified) columns.
		i = e.rel.ColIndex(c.Column)
	}
	if i < 0 {
		return Value{}, fmt.Errorf("exec: row has no column %q", name)
	}
	return e.row[i], nil
}

// EvalExpr evaluates a scalar expression against one row.
func EvalExpr(rel *Relation, row Row, e sqlx.Expr) (Value, error) {
	return env{rel: rel, row: row}.eval(e)
}

func (ev env) eval(e sqlx.Expr) (Value, error) {
	switch x := e.(type) {
	case sqlx.ColRef:
		return ev.lookup(x)
	case sqlx.Const:
		if x.Kind == sqlx.ConstString {
			return Str(x.Str), nil
		}
		return Num(x.Num), nil
	case *sqlx.BinExpr:
		l, err := ev.eval(x.L)
		if err != nil {
			return Value{}, err
		}
		r, err := ev.eval(x.R)
		if err != nil {
			return Value{}, err
		}
		if l.IsStr || r.IsStr {
			return Value{}, fmt.Errorf("exec: arithmetic over strings")
		}
		switch x.Op {
		case "+":
			return Num(l.F + r.F), nil
		case "-":
			return Num(l.F - r.F), nil
		case "*":
			return Num(l.F * r.F), nil
		case "/":
			if r.F == 0 {
				return Num(0), nil
			}
			return Num(l.F / r.F), nil
		case "%":
			if int64(r.F) == 0 {
				return Num(0), nil
			}
			return Num(float64(int64(l.F) % int64(r.F))), nil
		default:
			return Value{}, fmt.Errorf("exec: unknown operator %q", x.Op)
		}
	default:
		return Value{}, fmt.Errorf("exec: %T is not a scalar expression", e)
	}
}

// EvalPred evaluates a predicate expression against one row.
func EvalPred(rel *Relation, row Row, e sqlx.Expr) (bool, error) {
	ev := env{rel: rel, row: row}
	return ev.pred(e)
}

func (ev env) pred(e sqlx.Expr) (bool, error) {
	switch x := e.(type) {
	case *sqlx.CmpExpr:
		l, err := ev.eval(x.L)
		if err != nil {
			return false, err
		}
		r, err := ev.eval(x.R)
		if err != nil {
			return false, err
		}
		return compare(x.Op, l, r)
	case *sqlx.BoolExpr:
		switch x.Op {
		case "AND":
			lv, err := ev.pred(x.L)
			if err != nil || !lv {
				return false, err
			}
			return ev.pred(x.R)
		case "OR":
			lv, err := ev.pred(x.L)
			if err != nil {
				return false, err
			}
			if lv {
				return true, nil
			}
			return ev.pred(x.R)
		case "NOT":
			lv, err := ev.pred(x.L)
			return !lv, err
		}
		return false, fmt.Errorf("exec: unknown boolean op %q", x.Op)
	case *sqlx.InExpr:
		v, err := ev.lookup(x.Col)
		if err != nil {
			return false, err
		}
		for _, c := range x.Values {
			var cv Value
			if c.Kind == sqlx.ConstString {
				cv = Str(c.Str)
			} else {
				cv = Num(c.Num)
			}
			if v.Equal(cv) {
				return true, nil
			}
		}
		return false, nil
	case *sqlx.LikeExpr:
		v, err := ev.lookup(x.Col)
		if err != nil {
			return false, err
		}
		ok := matchLike(v.S, x.Pattern)
		if x.Negated {
			ok = !ok
		}
		return ok, nil
	default:
		return false, fmt.Errorf("exec: %T is not a predicate", e)
	}
}

func compare(op sqlx.CmpOp, l, r Value) (bool, error) {
	if l.IsStr != r.IsStr {
		return false, fmt.Errorf("exec: comparing %v with %v", l, r)
	}
	var lt, eq bool
	if l.IsStr {
		lt, eq = l.S < r.S, l.S == r.S
	} else {
		lt, eq = l.F < r.F, l.F == r.F
	}
	switch op {
	case sqlx.CmpEQ:
		return eq, nil
	case sqlx.CmpNE:
		return !eq, nil
	case sqlx.CmpLT:
		return lt, nil
	case sqlx.CmpLE:
		return lt || eq, nil
	case sqlx.CmpGT:
		return !lt && !eq, nil
	case sqlx.CmpGE:
		return !lt, nil
	default:
		return false, fmt.Errorf("exec: unknown comparison %v", op)
	}
}

// matchLike implements SQL LIKE with % (any run) and _ (any single rune).
func matchLike(s, pattern string) bool {
	return likeMatch([]rune(s), []rune(pattern))
}

func likeMatch(s, p []rune) bool {
	if len(p) == 0 {
		return len(s) == 0
	}
	switch p[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if likeMatch(s[i:], p[1:]) {
				return true
			}
		}
		return false
	case '_':
		return len(s) > 0 && likeMatch(s[1:], p[1:])
	default:
		return len(s) > 0 && strings.EqualFold(string(s[0]), string(p[0])) && likeMatch(s[1:], p[1:])
	}
}

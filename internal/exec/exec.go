package exec

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/sqlx"
)

// block is the executable form of an SPJG query block: per-table range
// conditions, residual predicates, equi-joins, grouping, and outputs. Both
// bound queries and view definitions lower to this form, so results are
// directly comparable.
type block struct {
	tables  []string
	ranges  []physical.RangeCond
	others  []sqlx.Expr
	joins   []physical.JoinPred
	groupBy []sqlx.ColRef
	outs    []physical.ViewColumn
}

// ExecuteQuery runs a bound SELECT against the store and returns its
// result together with execution counters (rows scanned, pages touched,
// access-path decisions). Aggregates over compound expressions are
// evaluated over their representative column (mirroring how the tuner
// models them), so results are internally consistent rather than full
// SQL semantics.
func ExecuteQuery(store *Store, q *optimizer.BoundQuery) (*Relation, ExecStats, error) {
	if q.IsUpdate() {
		return nil, ExecStats{}, fmt.Errorf("exec: only SELECT statements are executable")
	}
	b := &block{
		tables:  q.Tables,
		joins:   q.Joins,
		groupBy: q.GroupBy,
		outs:    q.SelectCols,
	}
	for _, t := range q.Tables {
		tp := q.TablePred(t)
		for _, s := range tp.Sargs {
			b.ranges = append(b.ranges, physical.RangeCond{
				Col: sqlx.ColRef{Table: t, Column: s.Col}, Iv: s.Iv,
			})
		}
		for _, oc := range tp.Others {
			b.others = append(b.others, oc.Expr)
		}
	}
	for _, oc := range q.CrossOthers {
		b.others = append(b.others, oc.Expr)
	}
	return executeBlock(store, b)
}

// ExecuteView materializes a view definition's contents, with the same
// execution counters as ExecuteQuery.
func ExecuteView(store *Store, v *physical.View) (*Relation, ExecStats, error) {
	b := &block{
		tables:  v.Tables,
		ranges:  v.Ranges,
		others:  v.Others,
		joins:   v.Joins,
		groupBy: v.GroupBy,
		outs:    v.Cols,
	}
	return executeBlock(store, b)
}

func executeBlock(store *Store, b *block) (*Relation, ExecStats, error) {
	var stats ExecStats
	// 1. Per-table selection, through the cheapest registered access
	// path: an index whose leading key column is bound by one of the
	// block's ranges scans only its binary-searched span; otherwise the
	// full table.
	filtered := map[string]*Relation{}
	for _, t := range b.tables {
		base := store.Get(t)
		if base == nil {
			return nil, stats, fmt.Errorf("exec: no data for table %q", t)
		}
		path := store.chooseAccessPath(t, base, b.ranges)
		stats.RowsScanned += path.scanned
		stats.PagesTouched += path.pages
		if path.indexed {
			stats.IndexSeeks++
		} else {
			stats.TableScans++
		}
		out := NewRelation(base.Cols)
		for _, row := range path.rows {
			keep := true
			for _, rc := range b.ranges {
				if !strings.EqualFold(rc.Col.Table, t) {
					continue
				}
				v, err := EvalExpr(base, row, rc.Col)
				if err != nil {
					return nil, stats, err
				}
				if !inInterval(v, rc.Iv) {
					keep = false
					break
				}
			}
			if keep {
				ok, err := singleTableOthers(base, row, t, b.others)
				if err != nil {
					return nil, stats, err
				}
				keep = ok
			}
			if keep {
				out.Append(row)
			}
		}
		filtered[strings.ToLower(t)] = out
	}

	// 2. Join along the equi-join edges (hash joins), cartesian fallback.
	joined, err := joinAll(b, filtered)
	if err != nil {
		return nil, stats, err
	}

	// 3. Residual predicates spanning tables.
	joined, err = filterCross(joined, b)
	if err != nil {
		return nil, stats, err
	}

	// 4. Grouping / projection.
	res, err := projectOrAggregate(joined, b)
	return res, stats, err
}

// singleTableOthers applies the residual conjuncts fully contained in one
// table.
func singleTableOthers(rel *Relation, row Row, table string, others []sqlx.Expr) (bool, error) {
	for _, e := range others {
		if !exprWithinTable(e, table) {
			continue
		}
		ok, err := EvalPred(rel, row, e)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

func exprWithinTable(e sqlx.Expr, table string) bool {
	cols := e.Columns(nil)
	if len(cols) == 0 {
		return true
	}
	for _, c := range cols {
		if !strings.EqualFold(c.Table, table) {
			return false
		}
	}
	return true
}

// joinAll hash-joins the filtered tables along the block's join edges.
func joinAll(b *block, filtered map[string]*Relation) (*Relation, error) {
	remaining := append([]string(nil), b.tables...)
	cur := filtered[strings.ToLower(remaining[0])]
	joinedSet := map[string]bool{strings.ToLower(remaining[0]): true}
	remaining = remaining[1:]

	for len(remaining) > 0 {
		// Find a table connected to the joined set.
		pick := -1
		var edges []physical.JoinPred
		for i, t := range remaining {
			edges = edges[:0]
			for _, j := range b.joins {
				lIn := joinedSet[strings.ToLower(j.L.Table)]
				rIn := joinedSet[strings.ToLower(j.R.Table)]
				tIsL := strings.EqualFold(j.L.Table, t)
				tIsR := strings.EqualFold(j.R.Table, t)
				if (lIn && tIsR) || (rIn && tIsL) {
					edges = append(edges, j)
				}
			}
			if len(edges) > 0 {
				pick = i
				break
			}
		}
		if pick < 0 {
			pick = 0 // cartesian product fallback
			edges = nil
		}
		next := filtered[strings.ToLower(remaining[pick])]
		var err error
		cur, err = hashJoin(cur, next, remaining[pick], edges, joinedSet)
		if err != nil {
			return nil, err
		}
		joinedSet[strings.ToLower(remaining[pick])] = true
		remaining = append(remaining[:pick], remaining[pick+1:]...)
	}
	return cur, nil
}

func hashJoin(l, r *Relation, rTable string, edges []physical.JoinPred, joinedSet map[string]bool) (*Relation, error) {
	outCols := append(append([]string(nil), l.Cols...), r.Cols...)
	out := NewRelation(outCols)
	if len(edges) == 0 {
		for _, lr := range l.Rows {
			for _, rr := range r.Rows {
				out.Append(append(append(Row{}, lr...), rr...))
			}
		}
		return out, nil
	}
	// Orient every edge: left column in l, right column in r.
	type pair struct{ li, ri int }
	var pairs []pair
	for _, e := range edges {
		lc, rc := e.L, e.R
		if strings.EqualFold(lc.Table, rTable) {
			lc, rc = rc, lc
		}
		li := l.ColIndex(lc.Table + "." + lc.Column)
		ri := r.ColIndex(rc.Table + "." + rc.Column)
		if li < 0 || ri < 0 {
			return nil, fmt.Errorf("exec: join column missing (%v = %v)", e.L, e.R)
		}
		pairs = append(pairs, pair{li, ri})
	}
	// Build on r.
	buckets := map[string][]Row{}
	for _, rr := range r.Rows {
		var key strings.Builder
		for _, p := range pairs {
			key.WriteString(rr[p.ri].Key())
			key.WriteString("|")
		}
		buckets[key.String()] = append(buckets[key.String()], rr)
	}
	for _, lr := range l.Rows {
		var key strings.Builder
		for _, p := range pairs {
			key.WriteString(lr[p.li].Key())
			key.WriteString("|")
		}
		for _, rr := range buckets[key.String()] {
			out.Append(append(append(Row{}, lr...), rr...))
		}
	}
	return out, nil
}

// filterCross applies residual conjuncts that span multiple tables.
func filterCross(rel *Relation, b *block) (*Relation, error) {
	var cross []sqlx.Expr
	for _, e := range b.others {
		single := false
		for _, t := range b.tables {
			if exprWithinTable(e, t) {
				single = true
				break
			}
		}
		if !single {
			cross = append(cross, e)
		}
	}
	if len(cross) == 0 {
		return rel, nil
	}
	out := NewRelation(rel.Cols)
	for _, row := range rel.Rows {
		keep := true
		for _, e := range cross {
			ok, err := EvalPred(rel, row, e)
			if err != nil {
				return nil, err
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			out.Append(row)
		}
	}
	return out, nil
}

// projectOrAggregate produces the block's output columns, grouping when
// the block aggregates.
func projectOrAggregate(rel *Relation, b *block) (*Relation, error) {
	grouped := len(b.groupBy) > 0 || hasAgg(b.outs)
	outNames := make([]string, len(b.outs))
	for i, c := range b.outs {
		outNames[i] = c.Name
	}
	out := NewRelation(outNames)
	if !grouped {
		for _, row := range rel.Rows {
			nr := make(Row, len(b.outs))
			for i, c := range b.outs {
				v, err := EvalExpr(rel, row, c.Source)
				if err != nil {
					return nil, err
				}
				nr[i] = v
			}
			out.Append(nr)
		}
		return out, nil
	}

	type aggState struct {
		rep   Row // representative row for group-key outputs
		sums  []float64
		mins  []float64
		maxs  []float64
		count int64
	}
	groups := map[string]*aggState{}
	var order []string
	for _, row := range rel.Rows {
		var key strings.Builder
		for _, g := range b.groupBy {
			v, err := EvalExpr(rel, row, g)
			if err != nil {
				return nil, err
			}
			key.WriteString(v.Key())
			key.WriteString("|")
		}
		k := key.String()
		st, ok := groups[k]
		if !ok {
			st = &aggState{
				rep:  row,
				sums: make([]float64, len(b.outs)),
				mins: make([]float64, len(b.outs)),
				maxs: make([]float64, len(b.outs)),
			}
			for i := range st.mins {
				st.mins[i] = math.Inf(1)
				st.maxs[i] = math.Inf(-1)
			}
			groups[k] = st
			order = append(order, k)
		}
		st.count++
		for i, c := range b.outs {
			if c.Agg == sqlx.AggNone || c.Source == (sqlx.ColRef{}) {
				continue
			}
			v, err := EvalExpr(rel, row, c.Source)
			if err != nil {
				return nil, err
			}
			if v.IsStr {
				continue
			}
			st.sums[i] += v.F
			if v.F < st.mins[i] {
				st.mins[i] = v.F
			}
			if v.F > st.maxs[i] {
				st.maxs[i] = v.F
			}
		}
	}
	for _, k := range order {
		st := groups[k]
		nr := make(Row, len(b.outs))
		for i, c := range b.outs {
			switch c.Agg {
			case sqlx.AggNone:
				v, err := EvalExpr(rel, st.rep, c.Source)
				if err != nil {
					return nil, err
				}
				nr[i] = v
			case sqlx.AggCount:
				nr[i] = Num(float64(st.count))
			case sqlx.AggSum:
				nr[i] = Num(st.sums[i])
			case sqlx.AggAvg:
				nr[i] = Num(st.sums[i] / float64(st.count))
			case sqlx.AggMin:
				nr[i] = Num(st.mins[i])
			case sqlx.AggMax:
				nr[i] = Num(st.maxs[i])
			}
		}
		out.Append(nr)
	}
	return out, nil
}

func hasAgg(outs []physical.ViewColumn) bool {
	for _, c := range outs {
		if c.Agg != sqlx.AggNone {
			return true
		}
	}
	return false
}

// inInterval checks a value against a range condition's interval.
func inInterval(v Value, iv physical.Interval) bool {
	if iv.IsString {
		return v.IsStr && v.S == iv.StrVal
	}
	if v.IsStr {
		return iv.Unbounded()
	}
	if !math.IsInf(iv.Lo, -1) {
		if v.F < iv.Lo || (v.F == iv.Lo && !iv.LoIncl) {
			return false
		}
	}
	if !math.IsInf(iv.Hi, 1) {
		if v.F > iv.Hi || (v.F == iv.Hi && !iv.HiIncl) {
			return false
		}
	}
	return true
}

package exec

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/optimizer"
	"repro/internal/sqlx"
)

// tinyStore builds a two-table store by hand for exact-result tests.
func tinyStore() *Store {
	s := NewStore()
	r := NewRelation([]string{"r.a", "r.b", "r.s"})
	rows := []struct {
		a, b float64
		s    string
	}{
		{1, 10, "x"}, {1, 20, "y"}, {2, 30, "x"}, {2, 40, "y"}, {3, 50, "x"},
	}
	for _, t := range rows {
		r.Append(Row{Num(t.a), Num(t.b), Str(t.s)})
	}
	s.Put("r", r)
	u := NewRelation([]string{"u.fk", "u.x"})
	for _, t := range []struct{ fk, x float64 }{{1, 100}, {2, 200}, {9, 900}} {
		u.Append(Row{Num(t.fk), Num(t.x)})
	}
	s.Put("u", u)
	return s
}

// tinyCatalog matches tinyStore so queries bind.
func tinyCatalog(t *testing.T) *catalog.Database {
	t.Helper()
	db := catalog.NewDatabase("tiny")
	r, err := catalog.NewTable("r", 5, []catalog.Column{
		{Name: "a", Type: catalog.TypeInt, AvgWidth: 4, Stats: &catalog.ColumnStats{Distinct: 3, Min: 1, Max: 3, Numeric: true}},
		{Name: "b", Type: catalog.TypeInt, AvgWidth: 4, Stats: &catalog.ColumnStats{Distinct: 5, Min: 10, Max: 50, Numeric: true}},
		{Name: "s", Type: catalog.TypeVarchar, AvgWidth: 1, Stats: &catalog.ColumnStats{Distinct: 2}},
	}, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	u, err := catalog.NewTable("u", 3, []catalog.Column{
		{Name: "fk", Type: catalog.TypeInt, AvgWidth: 4, Stats: &catalog.ColumnStats{Distinct: 3, Min: 1, Max: 9, Numeric: true}},
		{Name: "x", Type: catalog.TypeInt, AvgWidth: 4, Stats: &catalog.ColumnStats{Distinct: 3, Min: 100, Max: 900, Numeric: true}},
	}, []string{"fk"})
	if err != nil {
		t.Fatal(err)
	}
	db.MustAddTable(r)
	db.MustAddTable(u)
	return db
}

func bindOn(t *testing.T, src string) *optimizer.BoundQuery {
	t.Helper()
	stmt, err := sqlx.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	q, err := optimizer.Bind(tinyCatalog(t), stmt)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	return q
}

func TestExecuteSelectionAndProjection(t *testing.T) {
	store := tinyStore()
	q := bindOn(t, "SELECT r.b FROM r WHERE r.a = 1")
	res, _, err := ExecuteQuery(store, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows: %d", res.Len())
	}
}

func TestExecuteStringPredicate(t *testing.T) {
	store := tinyStore()
	q := bindOn(t, "SELECT r.b FROM r WHERE r.s = 'x'")
	res, _, err := ExecuteQuery(store, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("rows: %d", res.Len())
	}
}

func TestExecuteJoin(t *testing.T) {
	store := tinyStore()
	q := bindOn(t, "SELECT r.b, u.x FROM r, u WHERE r.a = u.fk")
	res, _, err := ExecuteQuery(store, q)
	if err != nil {
		t.Fatal(err)
	}
	// a=1 matches twice, a=2 twice, a=3 unmatched -> 4 rows.
	if res.Len() != 4 {
		t.Fatalf("join rows: %d", res.Len())
	}
}

func TestExecuteGroupBy(t *testing.T) {
	store := tinyStore()
	q := bindOn(t, "SELECT r.a, SUM(r.b), COUNT(*) FROM r GROUP BY r.a")
	res, _, err := ExecuteQuery(store, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("groups: %d", res.Len())
	}
	// Find group a=1: sum 30, count 2.
	ai := res.ColIndex(res.Cols[0])
	found := false
	for _, row := range res.Rows {
		if row[ai].F == 1 {
			found = true
			if row[1].F != 30 || row[2].F != 2 {
				t.Errorf("group a=1: %v", row)
			}
		}
	}
	if !found {
		t.Error("group a=1 missing")
	}
}

func TestExecuteNonSargable(t *testing.T) {
	store := tinyStore()
	q := bindOn(t, "SELECT r.b FROM r WHERE r.a + r.b > 32")
	res, _, err := ExecuteQuery(store, q)
	if err != nil {
		t.Fatal(err)
	}
	// Qualifying rows: (2,40) → 42 and (3,50) → 53.
	if res.Len() != 2 {
		t.Fatalf("rows: %d", res.Len())
	}
}

func TestExecuteCrossTablePredicate(t *testing.T) {
	store := tinyStore()
	q := bindOn(t, "SELECT r.b FROM r, u WHERE r.a = u.fk AND r.b + u.x > 150")
	res, _, err := ExecuteQuery(store, q)
	if err != nil {
		t.Fatal(err)
	}
	// Joined rows: (b=10,x=100)=110 no, (20,100)=120 no, (30,200)=230 yes, (40,200)=240 yes.
	if res.Len() != 2 {
		t.Fatalf("rows: %d", res.Len())
	}
}

func TestFingerprintOrderInsensitive(t *testing.T) {
	a := NewRelation([]string{"x"})
	a.Append(Row{Num(1)})
	a.Append(Row{Num(2)})
	b := NewRelation([]string{"x"})
	b.Append(Row{Num(2)})
	b.Append(Row{Num(1)})
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint should ignore row order")
	}
	b.Append(Row{Num(3)})
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different contents must differ")
	}
}

func TestLikeMatching(t *testing.T) {
	cases := []struct {
		s, p string
		ok   bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "x%", false},
		{"", "%", true},
		{"special requests", "%special%requests%", true},
	}
	for _, c := range cases {
		if got := matchLike(c.s, c.p); got != c.ok {
			t.Errorf("matchLike(%q, %q) = %v", c.s, c.p, got)
		}
	}
}

func TestSortByAndProject(t *testing.T) {
	r := NewRelation([]string{"a", "b"})
	r.Append(Row{Num(2), Str("x")})
	r.Append(Row{Num(1), Str("y")})
	if err := r.SortBy([]string{"a"}); err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].F != 1 {
		t.Error("sort failed")
	}
	p, err := r.Project([]string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cols) != 1 || p.Rows[0][0].S != "y" {
		t.Errorf("project: %+v", p)
	}
}

package exec

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/physical"
	"repro/internal/storage"
)

// ExecStats are the execution counters returned alongside every result:
// how many base-table rows the access paths read, an estimate of the
// pages those reads touched (using the §3.3.1 size-model constants), and
// how each table was reached. They are the measured half of the
// ground-truth calibration: the optimizer predicts page I/O, the
// executor counts what actually happened.
type ExecStats struct {
	// RowsScanned counts base-table rows read by access paths, before
	// filtering. An index-served table contributes only its binary-
	// searched key span; a full scan contributes the whole table.
	RowsScanned int64 `json:"rows_scanned"`
	// PagesTouched estimates the pages those reads covered: heap pages
	// for table scans, B-tree descent plus spanned leaf pages for index
	// seeks (same constants as the size model in internal/storage).
	PagesTouched int64 `json:"pages_touched"`
	// IndexSeeks and TableScans count access-path decisions per table
	// reference.
	IndexSeeks int64 `json:"index_seeks"`
	TableScans int64 `json:"table_scans"`
}

// Add accumulates another statement's counters into s.
func (s *ExecStats) Add(o ExecStats) {
	s.RowsScanned += o.RowsScanned
	s.PagesTouched += o.PagesTouched
	s.IndexSeeks += o.IndexSeeks
	s.TableScans += o.TableScans
}

// tableIndex is an in-memory secondary index: the table's rows re-sorted
// by the key columns, so a range on the leading key column becomes a
// binary-searched contiguous span instead of a full scan.
type tableIndex struct {
	id   string
	keys []int // key column positions in the base relation
	rows []Row // base rows sorted by the key columns
}

// AddIndex registers an index over the table's key columns, mirroring a
// physical.Index at execution level. Rows are copied (by reference) and
// sorted once at registration.
func (s *Store) AddIndex(id, table string, keyCols []string) error {
	rel := s.Get(table)
	if rel == nil {
		return fmt.Errorf("exec: AddIndex: no data for table %q", table)
	}
	keys := make([]int, len(keyCols))
	for i, c := range keyCols {
		j := rel.ColIndex(table + "." + c)
		if j < 0 {
			j = rel.ColIndex(c)
		}
		if j < 0 {
			return fmt.Errorf("exec: AddIndex: table %q has no column %q", table, c)
		}
		keys[i] = j
	}
	sorted := append([]Row(nil), rel.Rows...)
	sort.SliceStable(sorted, func(a, b int) bool {
		for _, k := range keys {
			if sorted[a][k].Less(sorted[b][k]) {
				return true
			}
			if sorted[b][k].Less(sorted[a][k]) {
				return false
			}
		}
		return false
	})
	if s.indexes == nil {
		s.indexes = map[string][]*tableIndex{}
	}
	key := strings.ToLower(table)
	s.indexes[key] = append(s.indexes[key], &tableIndex{id: id, keys: keys, rows: sorted})
	return nil
}

// AddConfigIndexes registers every index of a configuration whose table
// has data in the store, returning how many were registered. Indexes
// over unknown tables (e.g. view-backing indexes) are skipped.
func (s *Store) AddConfigIndexes(cfg *physical.Configuration) int {
	n := 0
	for _, ix := range cfg.Indexes() {
		if s.Get(ix.Table) == nil {
			continue
		}
		if err := s.AddIndex(ix.ID(), ix.Table, ix.Columns()); err == nil {
			n++
		}
	}
	return n
}

// ResetIndexes drops every registered index, returning the store to
// full-scan-only execution.
func (s *Store) ResetIndexes() { s.indexes = nil }

// NumIndexes reports the registered index count across all tables.
func (s *Store) NumIndexes() int {
	n := 0
	for _, list := range s.indexes {
		n += len(list)
	}
	return n
}

// accessPath is the chosen way to read one table: either a span of an
// index's sorted rows or a full scan of the base relation.
type accessPath struct {
	rows    []Row
	scanned int64
	pages   int64
	indexed bool
}

// chooseAccessPath picks the cheapest way to read table t under the
// block's range conditions: the registered index whose leading key
// column is bound by a range, with the smallest binary-searched span —
// or a full scan when no index applies.
func (s *Store) chooseAccessPath(t string, base *Relation, ranges []physical.RangeCond) accessPath {
	rowWidth := avgRowWidth(base)
	best := accessPath{
		rows:    base.Rows,
		scanned: int64(len(base.Rows)),
		pages:   storage.HeapPages(int64(len(base.Rows)), rowWidth),
	}
	for _, ix := range s.indexes[strings.ToLower(t)] {
		lead := ix.keys[0]
		for _, rc := range ranges {
			if !strings.EqualFold(rc.Col.Table, t) {
				continue
			}
			ci := base.ColIndex(rc.Col.Table + "." + rc.Col.Column)
			if ci < 0 || ci != lead || !bounded(rc.Iv) {
				continue
			}
			lo, hi := indexSpan(ix, rc.Iv)
			if span := int64(hi - lo); span < best.scanned {
				// Seek cost: one page per descent level plus the leaf
				// pages the span covers (key + rid per leaf entry).
				entryWidth := avgColWidth(base, lead) + storage.RidWidth
				height := storage.BTreeHeight(int64(len(ix.rows)), entryWidth, entryWidth)
				best = accessPath{
					rows:    ix.rows[lo:hi],
					scanned: span,
					pages:   int64(height) + storage.BTreeLeafPages(max64(span, 1), entryWidth),
					indexed: true,
				}
			}
		}
	}
	return best
}

// bounded reports whether the interval actually restricts the leading
// key column (an unbounded range would just re-scan everything).
func bounded(iv physical.Interval) bool {
	return iv.IsString || !iv.Unbounded()
}

// indexSpan binary-searches the sorted index rows for the half-open
// span [lo, hi) satisfying the interval on the leading key column.
func indexSpan(ix *tableIndex, iv physical.Interval) (lo, hi int) {
	lead := ix.keys[0]
	n := len(ix.rows)
	loB, hiB, loIncl, hiIncl, haveLo, haveHi := intervalBounds(iv)
	lo = 0
	if haveLo {
		lo = sort.Search(n, func(i int) bool {
			v := ix.rows[i][lead]
			if loIncl {
				return !v.Less(loB)
			}
			return loB.Less(v)
		})
	}
	hi = n
	if haveHi {
		hi = sort.Search(n, func(i int) bool {
			v := ix.rows[i][lead]
			if hiIncl {
				return hiB.Less(v)
			}
			return !v.Less(hiB)
		})
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// intervalBounds lowers a physical.Interval to comparable Values.
func intervalBounds(iv physical.Interval) (lo, hi Value, loIncl, hiIncl, haveLo, haveHi bool) {
	if iv.IsString {
		p := Str(iv.StrVal)
		return p, p, true, true, true, true
	}
	haveLo = !math.IsInf(iv.Lo, -1)
	haveHi = !math.IsInf(iv.Hi, 1)
	return Num(iv.Lo), Num(iv.Hi), iv.LoIncl, iv.HiIncl, haveLo, haveHi
}

// avgRowWidth estimates a relation's byte width per row from a bounded
// sample (8 bytes per numeric, string length per string).
func avgRowWidth(r *Relation) int {
	if len(r.Rows) == 0 {
		return 8 * len(r.Cols)
	}
	total := 0
	sample := len(r.Rows)
	if sample > 64 {
		sample = 64
	}
	for _, row := range r.Rows[:sample] {
		for _, v := range row {
			total += valueWidth(v)
		}
	}
	w := total / sample
	if w < 1 {
		w = 1
	}
	return w
}

// avgColWidth estimates one column's byte width from a bounded sample.
func avgColWidth(r *Relation, col int) int {
	if len(r.Rows) == 0 {
		return 8
	}
	total := 0
	sample := len(r.Rows)
	if sample > 64 {
		sample = 64
	}
	for _, row := range r.Rows[:sample] {
		total += valueWidth(row[col])
	}
	w := total / sample
	if w < 1 {
		w = 1
	}
	return w
}

func valueWidth(v Value) int {
	if v.IsStr {
		if len(v.S) == 0 {
			return 1
		}
		return len(v.S)
	}
	return 8
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

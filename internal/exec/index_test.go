package exec

import (
	"math"
	"testing"

	"repro/internal/physical"
)

// execOn binds and executes a query over the tiny store, returning the
// result and counters.
func execOn(t *testing.T, store *Store, src string) (*Relation, ExecStats) {
	t.Helper()
	q := bindOn(t, src)
	res, st, err := ExecuteQuery(store, q)
	if err != nil {
		t.Fatal(err)
	}
	return res, st
}

func TestExecStatsFullScan(t *testing.T) {
	store := tinyStore()
	_, st := execOn(t, store, "SELECT r.b FROM r WHERE r.a = 1")
	if st.RowsScanned != 5 {
		t.Errorf("full scan should read all 5 rows, got %d", st.RowsScanned)
	}
	if st.TableScans != 1 || st.IndexSeeks != 0 {
		t.Errorf("expected one table scan, got %+v", st)
	}
	if st.PagesTouched < 1 {
		t.Errorf("pages touched must be positive, got %d", st.PagesTouched)
	}
}

func TestIndexSeekNarrowsScan(t *testing.T) {
	store := tinyStore()
	if err := store.AddIndex("ix:r:a", "r", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	res, st := execOn(t, store, "SELECT r.b FROM r WHERE r.a = 1")
	if res.Len() != 2 {
		t.Fatalf("rows: %d", res.Len())
	}
	if st.RowsScanned != 2 {
		t.Errorf("point seek on a=1 should read 2 rows, got %d", st.RowsScanned)
	}
	if st.IndexSeeks != 1 || st.TableScans != 0 {
		t.Errorf("expected one index seek, got %+v", st)
	}
}

func TestIndexSeekRangePredicate(t *testing.T) {
	store := tinyStore()
	if err := store.AddIndex("ix:r:a", "r", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	res, st := execOn(t, store, "SELECT r.b FROM r WHERE r.a >= 2")
	if res.Len() != 3 {
		t.Fatalf("rows: %d", res.Len())
	}
	if st.RowsScanned != 3 {
		t.Errorf("range seek a>=2 should read 3 rows, got %d", st.RowsScanned)
	}
}

func TestIndexSeekStringPoint(t *testing.T) {
	store := tinyStore()
	if err := store.AddIndex("ix:r:s", "r", []string{"s"}); err != nil {
		t.Fatal(err)
	}
	res, st := execOn(t, store, "SELECT r.b FROM r WHERE r.s = 'x'")
	if res.Len() != 3 {
		t.Fatalf("rows: %d", res.Len())
	}
	if st.RowsScanned != 3 || st.IndexSeeks != 1 {
		t.Errorf("string point seek: %+v", st)
	}
}

// TestIndexedResultsMatchFullScan: indexes are an access path, never a
// semantic change — every query must produce identical results with and
// without them.
func TestIndexedResultsMatchFullScan(t *testing.T) {
	queries := []string{
		"SELECT r.b FROM r WHERE r.a = 1",
		"SELECT r.b FROM r WHERE r.a >= 2",
		"SELECT r.b FROM r WHERE r.a > 1 AND r.b < 40",
		"SELECT r.b, u.x FROM r, u WHERE r.a = u.fk",
		"SELECT r.a, SUM(r.b), COUNT(*) FROM r GROUP BY r.a",
		"SELECT r.b FROM r WHERE r.s = 'y'",
	}
	plain := tinyStore()
	indexed := tinyStore()
	for _, spec := range [][2]string{{"r", "a"}, {"r", "s"}, {"u", "fk"}} {
		if err := indexed.AddIndex("ix:"+spec[0]+":"+spec[1], spec[0], []string{spec[1]}); err != nil {
			t.Fatal(err)
		}
	}
	for _, src := range queries {
		want, _ := execOn(t, plain, src)
		got, _ := execOn(t, indexed, src)
		if want.Fingerprint() != got.Fingerprint() {
			t.Errorf("%q: indexed result differs from full scan (%d vs %d rows)",
				src, got.Len(), want.Len())
		}
	}
}

func TestResetIndexesRestoresFullScan(t *testing.T) {
	store := tinyStore()
	if err := store.AddIndex("ix:r:a", "r", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if store.NumIndexes() != 1 {
		t.Fatalf("NumIndexes: %d", store.NumIndexes())
	}
	store.ResetIndexes()
	if store.NumIndexes() != 0 {
		t.Fatalf("indexes survive reset: %d", store.NumIndexes())
	}
	_, st := execOn(t, store, "SELECT r.b FROM r WHERE r.a = 1")
	if st.IndexSeeks != 0 || st.RowsScanned != 5 {
		t.Errorf("after reset execution must full-scan: %+v", st)
	}
}

func TestAddIndexErrors(t *testing.T) {
	store := tinyStore()
	if err := store.AddIndex("ix", "nope", []string{"a"}); err == nil {
		t.Error("unknown table must error")
	}
	if err := store.AddIndex("ix", "r", []string{"zzz"}); err == nil {
		t.Error("unknown column must error")
	}
}

func TestAddConfigIndexes(t *testing.T) {
	store := tinyStore()
	cfg := physical.NewConfiguration()
	cfg.AddIndex(&physical.Index{Table: "r", Keys: []string{"a"}})
	cfg.AddIndex(&physical.Index{Table: "ghost", Keys: []string{"g"}})
	if n := store.AddConfigIndexes(cfg); n != 1 {
		t.Fatalf("registered %d indexes, want 1 (ghost table skipped)", n)
	}
	_, st := execOn(t, store, "SELECT r.b FROM r WHERE r.a = 1")
	if st.IndexSeeks != 1 {
		t.Errorf("config index unused: %+v", st)
	}
}

func TestExecStatsAdd(t *testing.T) {
	a := ExecStats{RowsScanned: 1, PagesTouched: 2, IndexSeeks: 3, TableScans: 4}
	a.Add(ExecStats{RowsScanned: 10, PagesTouched: 20, IndexSeeks: 30, TableScans: 40})
	if a != (ExecStats{RowsScanned: 11, PagesTouched: 22, IndexSeeks: 33, TableScans: 44}) {
		t.Errorf("Add: %+v", a)
	}
}

func TestIndexSpanBounds(t *testing.T) {
	store := tinyStore()
	if err := store.AddIndex("ix:r:a", "r", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	ix := store.indexes["r"][0]
	cases := []struct {
		iv     physical.Interval
		lo, hi int
	}{
		{physical.Interval{Lo: 1, Hi: 1, LoIncl: true, HiIncl: true}, 0, 2},
		{physical.Interval{Lo: 2, Hi: math.Inf(1), LoIncl: true, HiIncl: true}, 2, 5},
		{physical.Interval{Lo: math.Inf(-1), Hi: 2, LoIncl: true, HiIncl: false}, 0, 2},
		{physical.Interval{Lo: 7, Hi: 9, LoIncl: true, HiIncl: true}, 5, 5}, // empty span
	}
	for _, c := range cases {
		lo, hi := indexSpan(ix, c.iv)
		if lo != c.lo || hi != c.hi {
			t.Errorf("span(%+v) = [%d,%d), want [%d,%d)", c.iv, lo, hi, c.lo, c.hi)
		}
	}
}

// Package exec is a small in-memory query execution engine over
// materialized synthetic rows. The tuner itself never executes queries
// (like the paper, it works purely on optimizer estimates); this engine
// exists to *validate* the reproduction: cardinality estimates are
// checked against true result sizes, view definitions against their
// materialized contents, and view-matching compensations against ground
// truth.
package exec

import (
	"fmt"
	"sort"
	"strings"
)

// Value is a scalar: a float64 or a string.
type Value struct {
	F     float64
	S     string
	IsStr bool
}

// Num wraps a numeric value.
func Num(f float64) Value { return Value{F: f} }

// Str wraps a string value.
func Str(s string) Value { return Value{S: s, IsStr: true} }

// Equal compares two values.
func (v Value) Equal(o Value) bool {
	if v.IsStr != o.IsStr {
		return false
	}
	if v.IsStr {
		return v.S == o.S
	}
	return v.F == o.F
}

// Less orders values (strings after numbers, lexicographic within kind).
func (v Value) Less(o Value) bool {
	if v.IsStr != o.IsStr {
		return !v.IsStr
	}
	if v.IsStr {
		return v.S < o.S
	}
	return v.F < o.F
}

func (v Value) String() string {
	if v.IsStr {
		return "'" + v.S + "'"
	}
	return fmt.Sprintf("%g", v.F)
}

// Key renders a value for hashing.
func (v Value) Key() string {
	if v.IsStr {
		return "s:" + v.S
	}
	return fmt.Sprintf("n:%g", v.F)
}

// Row is one tuple.
type Row []Value

// Relation is a named bag of rows with qualified column names
// ("table.column" for base data, view-local names for view contents).
type Relation struct {
	Cols []string
	Rows []Row

	colIdx map[string]int
}

// NewRelation builds an empty relation with the given columns.
func NewRelation(cols []string) *Relation {
	r := &Relation{Cols: cols}
	r.buildIndex()
	return r
}

func (r *Relation) buildIndex() {
	r.colIdx = make(map[string]int, len(r.Cols))
	for i, c := range r.Cols {
		r.colIdx[strings.ToLower(c)] = i
	}
}

// ColIndex returns the position of a column, or -1.
func (r *Relation) ColIndex(name string) int {
	if r.colIdx == nil {
		r.buildIndex()
	}
	if i, ok := r.colIdx[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Append adds a row (must match the column count).
func (r *Relation) Append(row Row) {
	if len(row) != len(r.Cols) {
		panic(fmt.Sprintf("exec: row width %d != %d columns", len(row), len(r.Cols)))
	}
	r.Rows = append(r.Rows, row)
}

// Len returns the row count.
func (r *Relation) Len() int { return len(r.Rows) }

// Project returns a new relation with the selected columns.
func (r *Relation) Project(cols []string) (*Relation, error) {
	idxs := make([]int, len(cols))
	for i, c := range cols {
		j := r.ColIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("exec: unknown column %q", c)
		}
		idxs[i] = j
	}
	out := NewRelation(append([]string(nil), cols...))
	for _, row := range r.Rows {
		nr := make(Row, len(idxs))
		for i, j := range idxs {
			nr[i] = row[j]
		}
		out.Append(nr)
	}
	return out, nil
}

// SortBy orders rows by the given columns ascending.
func (r *Relation) SortBy(cols []string) error {
	idxs := make([]int, len(cols))
	for i, c := range cols {
		j := r.ColIndex(c)
		if j < 0 {
			return fmt.Errorf("exec: unknown sort column %q", c)
		}
		idxs[i] = j
	}
	sort.SliceStable(r.Rows, func(a, b int) bool {
		for _, j := range idxs {
			if r.Rows[a][j].Less(r.Rows[b][j]) {
				return true
			}
			if r.Rows[b][j].Less(r.Rows[a][j]) {
				return false
			}
		}
		return false
	})
	return nil
}

// Fingerprint returns an order-insensitive digest of the relation's
// contents (for result-equivalence checks).
func (r *Relation) Fingerprint() string {
	lines := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		var sb strings.Builder
		for _, v := range row {
			sb.WriteString(v.Key())
			sb.WriteString("|")
		}
		lines[i] = sb.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// Store holds the materialized contents of a database's tables (keyed by
// lower-case table name, columns qualified as "table.column"), plus any
// in-memory secondary indexes registered with AddIndex.
type Store struct {
	relations map[string]*Relation
	indexes   map[string][]*tableIndex
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{relations: map[string]*Relation{}} }

// Put registers a relation under a name. Replacing a table's data drops
// any indexes registered over the previous contents.
func (s *Store) Put(name string, r *Relation) {
	s.relations[strings.ToLower(name)] = r
	delete(s.indexes, strings.ToLower(name))
}

// Get returns a relation, or nil.
func (s *Store) Get(name string) *Relation {
	return s.relations[strings.ToLower(name)]
}

// Tables lists stored relation names, sorted.
func (s *Store) Tables() []string {
	var out []string
	for n := range s.relations {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

package exec_test

import (
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/sqlx"
)

// TestCardinalityEstimatesAgainstExecution validates the optimizer's
// cardinality model against exact execution over materialized rows built
// from the same distributions: estimates must land within an order of
// magnitude for selections and within a generous factor for joins and
// groupings (the classical quality bar for histogram-based estimation).
func TestCardinalityEstimatesAgainstExecution(t *testing.T) {
	db, store := datagen.TPCHData(0.001)
	o := optimizer.New(db)
	cfg := datagen.BaseConfiguration(db)

	cases := []struct {
		src    string
		factor float64 // allowed ratio between estimate and actual
	}{
		{"SELECT o_orderkey FROM orders WHERE o_orderdate < 9131", 3},
		{"SELECT l_orderkey FROM lineitem WHERE l_quantity < 10", 3},
		{"SELECT l_orderkey FROM lineitem WHERE l_shipdate BETWEEN 9131 AND 9496", 3},
		{"SELECT o_orderpriority, COUNT(*) FROM orders GROUP BY o_orderpriority", 4},
		{"SELECT l_shipmode, COUNT(*) FROM lineitem GROUP BY l_shipmode", 4},
		{"SELECT o_orderkey, c_name FROM orders, customer WHERE o_custkey = c_custkey", 6},
		{"SELECT l_orderkey FROM lineitem, orders WHERE l_orderkey = o_orderkey AND o_orderdate < 8500", 8},
	}
	for _, c := range cases {
		stmt, err := sqlx.Parse(c.src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		q, err := optimizer.Bind(db, stmt)
		if err != nil {
			t.Fatalf("bind: %v", err)
		}
		p, err := o.Optimize(q, cfg)
		if err != nil {
			t.Fatalf("optimize: %v", err)
		}
		actualRel, _, err := exec.ExecuteQuery(store, q)
		if err != nil {
			t.Fatalf("execute: %v", err)
		}
		actual := float64(actualRel.Len())
		est := p.Root.OutRows()
		if actual == 0 {
			if est > 50 {
				t.Errorf("%q: empty result estimated at %g", c.src, est)
			}
			continue
		}
		ratio := est / actual
		if ratio < 1/c.factor || ratio > c.factor {
			t.Errorf("%q: estimate %g vs actual %g (ratio %.2f, allowed ×%g)",
				c.src, est, actual, ratio, c.factor)
		}
	}
}

// TestViewCardinalityAgainstExecution: EstimateViewRows must agree with
// the view's materialized size within a reasonable factor.
func TestViewCardinalityAgainstExecution(t *testing.T) {
	db, store := datagen.TPCHData(0.001)
	o := optimizer.New(db)
	for _, src := range []string{
		"SELECT o_orderpriority, COUNT(*) FROM orders WHERE o_orderdate < 9131 GROUP BY o_orderpriority",
		"SELECT l_shipmode, SUM(l_extendedprice) FROM lineitem GROUP BY l_shipmode",
		"SELECT o_orderkey, c_name FROM orders, customer WHERE o_custkey = c_custkey AND o_totalprice > 100000",
	} {
		stmt, err := sqlx.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		q, err := optimizer.Bind(db, stmt)
		if err != nil {
			t.Fatal(err)
		}
		v, err := o.ViewDefinition(q)
		if err != nil {
			t.Fatal(err)
		}
		content, _, err := exec.ExecuteView(store, v)
		if err != nil {
			t.Fatalf("materialize view: %v", err)
		}
		actual := float64(content.Len())
		est := float64(o.EstimateViewRows(v))
		if actual == 0 {
			continue
		}
		ratio := est / actual
		if ratio < 0.1 || ratio > 10 {
			t.Errorf("%q: view estimate %g vs actual %g", src, est, actual)
		}
	}
}

// TestViewDefinitionMatchesQueryResult: a view built from a query's own
// definition must materialize exactly the query's result (the semantic
// foundation of exact view matching).
func TestViewDefinitionMatchesQueryResult(t *testing.T) {
	db, store := datagen.TPCHData(0.001)
	o := optimizer.New(db)
	for _, src := range []string{
		"SELECT o_orderpriority, COUNT(*) FROM orders WHERE o_orderdate < 9131 GROUP BY o_orderpriority",
		"SELECT l_shipmode, SUM(l_quantity) FROM lineitem WHERE l_shipdate > 9131 GROUP BY l_shipmode",
	} {
		stmt, err := sqlx.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		q, err := optimizer.Bind(db, stmt)
		if err != nil {
			t.Fatal(err)
		}
		v, err := o.ViewDefinition(q)
		if err != nil {
			t.Fatal(err)
		}
		content, _, err := exec.ExecuteView(store, v)
		if err != nil {
			t.Fatal(err)
		}
		direct, _, err := exec.ExecuteQuery(store, q)
		if err != nil {
			t.Fatal(err)
		}
		// The view may expose extra columns (order-by etc.); compare on
		// the query's output columns.
		var qCols []string
		for _, c := range q.SelectCols {
			qCols = append(qCols, c.Name)
		}
		pContent, err := content.Project(qCols)
		if err != nil {
			t.Fatalf("view lacks query outputs: %v", err)
		}
		pDirect, err := direct.Project(qCols)
		if err != nil {
			t.Fatal(err)
		}
		if pContent.Fingerprint() != pDirect.Fingerprint() {
			t.Errorf("%q: view contents differ from query result (%d vs %d rows)",
				src, content.Len(), direct.Len())
		}
	}
}

// TestWiderViewWithResidualFilterMatchesQuery validates the §3.1.2
// rewriting semantics: a view with a wider range answers the query after
// the compensating residual filter, producing the same cardinality.
func TestWiderViewWithResidualFilterMatchesQuery(t *testing.T) {
	db, store := datagen.TPCHData(0.001)
	o := optimizer.New(db)
	stmt, err := sqlx.Parse("SELECT o_orderkey, o_totalprice FROM orders WHERE o_orderdate < 9000")
	if err != nil {
		t.Fatal(err)
	}
	q, err := optimizer.Bind(db, stmt)
	if err != nil {
		t.Fatal(err)
	}
	qBlock, err := o.ViewDefinition(q)
	if err != nil {
		t.Fatal(err)
	}
	// Wider view: o_orderdate < 9500.
	wider := qBlock.Clone()
	for i := range wider.Ranges {
		wider.Ranges[i].Iv.Hi = 9500
	}
	wider.Name = physical.ViewNameFor(wider)
	wider.EstRows = o.EstimateViewRows(wider)

	m := physical.MatchView(qBlock, wider)
	if m == nil {
		t.Fatal("wider view must match")
	}
	if len(m.ResidualRanges) != 1 {
		t.Fatalf("expected one residual range: %+v", m)
	}

	content, _, err := exec.ExecuteView(store, wider)
	if err != nil {
		t.Fatal(err)
	}
	// Apply the residual filter over the view contents.
	kept := 0
	for _, row := range content.Rows {
		ok := true
		for _, rr := range m.ResidualRanges {
			vc := wider.ColumnForSource(rr.Col)
			if vc == nil {
				t.Fatalf("residual column %v not exposed", rr.Col)
			}
			idx := content.ColIndex(vc.Name)
			if idx < 0 {
				t.Fatalf("view content lacks %s", vc.Name)
			}
			v := row[idx]
			if v.IsStr || !within(v.F, rr.Iv) {
				ok = false
				break
			}
		}
		if ok {
			kept++
		}
	}
	direct, _, err := exec.ExecuteQuery(store, q)
	if err != nil {
		t.Fatal(err)
	}
	if kept != direct.Len() {
		t.Errorf("rewriting over the wider view yields %d rows, direct execution %d", kept, direct.Len())
	}
}

func within(f float64, iv physical.Interval) bool {
	if !math.IsInf(iv.Lo, -1) {
		if f < iv.Lo || (f == iv.Lo && !iv.LoIncl) {
			return false
		}
	}
	if !math.IsInf(iv.Hi, 1) {
		if f > iv.Hi || (f == iv.Hi && !iv.HiIncl) {
			return false
		}
	}
	return true
}

// TestMaterializedStatsConsistent: the *Data constructors must produce
// statistics that reflect the materialized rows exactly (distinct counts
// and min/max), since validation hinges on that consistency.
func TestMaterializedStatsConsistent(t *testing.T) {
	db, store := datagen.TPCHData(0.001)
	for _, tb := range db.Tables() {
		rel := store.Get(tb.Name)
		if rel == nil {
			t.Fatalf("no rows for %s", tb.Name)
		}
		if int64(rel.Len()) != tb.Rows {
			t.Errorf("%s: %d rows vs catalog %d", tb.Name, rel.Len(), tb.Rows)
		}
		for _, col := range tb.Columns {
			idx := rel.ColIndex(tb.Name + "." + col.Name)
			if idx < 0 {
				t.Fatalf("%s.%s missing from rows", tb.Name, col.Name)
			}
			if !col.Stats.Numeric {
				continue
			}
			lo, hi := math.Inf(1), math.Inf(-1)
			distinct := map[float64]bool{}
			for _, row := range rel.Rows {
				f := row[idx].F
				distinct[f] = true
				if f < lo {
					lo = f
				}
				if f > hi {
					hi = f
				}
			}
			if col.Stats.Min != lo || col.Stats.Max != hi {
				t.Errorf("%s.%s: stats min/max (%g,%g) vs data (%g,%g)",
					tb.Name, col.Name, col.Stats.Min, col.Stats.Max, lo, hi)
			}
			if col.Stats.Distinct != int64(len(distinct)) {
				t.Errorf("%s.%s: stats distinct %d vs data %d",
					tb.Name, col.Name, col.Stats.Distinct, len(distinct))
			}
		}
	}
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) plus the two in-text result figures (Figures 3 and 4),
// mapping each to a function that returns printable rows. The paperbench
// command and bench_test.go are thin wrappers over this package.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/workloads"
)

// Config scales the experiment suite. The defaults target CI-sized runs;
// raise SF and Workloads for paper-sized sweeps.
type Config struct {
	// SF is the database scale factor (fraction of full TPC-H scale).
	SF float64
	// Seed drives workload generation.
	Seed int64
	// Workloads is the number of generated workloads per database family
	// in the Figure 8/9 sweeps.
	Workloads int
	// QueriesPerWorkload sizes each generated workload.
	QueriesPerWorkload int
	// MaxIterations bounds each relaxation search.
	MaxIterations int
	// PTTTimeBudget bounds each relaxation run (Figure 9 gives PTT a
	// fixed budget, as §4.2 does).
	PTTTimeBudget time.Duration
}

// DefaultConfig returns the CI-sized configuration.
func DefaultConfig() Config {
	return Config{
		SF:                 0.001,
		Seed:               datagen.Seed,
		Workloads:          4,
		QueriesPerWorkload: 8,
		MaxIterations:      60,
	}
}

// database materializes one of the three schema families by name.
func (c Config) database(name string) *catalog.Database {
	switch name {
	case "tpch":
		return datagen.TPCH(c.SF)
	case "ds1":
		return datagen.DS1(c.SF)
	case "bench":
		return datagen.Bench(c.SF)
	default:
		panic(fmt.Sprintf("experiments: unknown database %q", name))
	}
}

// Families lists the three database families used across experiments.
func Families() []string { return []string{"tpch", "ds1", "bench"} }

// ---------------------------------------------------------------------
// Table 1: index and view requests for the 22-query TPC-H workload.
// ---------------------------------------------------------------------

// Table1Row is the per-query request count.
type Table1Row struct {
	QueryID       string
	Tables        int
	IndexRequests int64
	ViewRequests  int64
}

// Table1 counts the requests the instrumented optimizer issues per TPC-H
// query; the paper's point is that these counts stay small even for
// complex queries.
func Table1(cfg Config) ([]Table1Row, error) {
	db := cfg.database("tpch")
	w, err := workloads.TPCH22()
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, q := range w.Queries {
		single := &workloads.Workload{Name: q.ID, Database: w.Database, Queries: []*workloads.Query{q}}
		tn, err := core.NewTuner(db, single, core.Options{})
		if err != nil {
			return nil, err
		}
		ir, vr, err := tn.RequestCounts()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{QueryID: q.ID, Tables: countTables(tn), IndexRequests: ir, ViewRequests: vr})
	}
	return rows, nil
}

func countTables(tn *core.Tuner) int {
	if len(tn.Queries) == 0 {
		return 0
	}
	return len(tn.Queries[0].Bound.Tables)
}

// ---------------------------------------------------------------------
// Table 2: databases and workloads used in the experiments.
// ---------------------------------------------------------------------

// Table2Row summarizes one database family and its workloads.
type Table2Row struct {
	Database  string
	Tables    int
	Rows      int64
	RawMB     float64
	Workloads string
}

// Table2 reproduces the experimental-setting inventory.
func Table2(cfg Config) []Table2Row {
	var rows []Table2Row
	for _, fam := range Families() {
		db := cfg.database(fam)
		kind := "generated SPJG + update mixes"
		if fam == "tpch" {
			kind = "22-query TPC-H batch, refresh mixes, generated SPJG"
		}
		rows = append(rows, Table2Row{
			Database:  db.Name,
			Tables:    len(db.Tables()),
			Rows:      db.TotalRows(),
			RawMB:     float64(db.DataSize()) / (1 << 20),
			Workloads: kind,
		})
	}
	return rows
}

// ---------------------------------------------------------------------
// Table 3: tuning time for the most expensive workloads (CTT vs PTT,
// no constraints).
// ---------------------------------------------------------------------

// Table3Row compares both tuners on one workload.
type Table3Row struct {
	Workload string
	TimeCTT  time.Duration
	TimePTT  time.Duration
	CallsCTT int64
	CallsPTT int64
	ImprCTT  float64
	ImprPTT  float64
}

// Table3 runs both tuners without constraints over a pool of workloads
// and reports the most expensive ones by CTT tuning time. PTT's time is
// the instrumented-optimization pass only (its starting point is already
// the answer, §4.1).
func Table3(cfg Config) ([]Table3Row, error) {
	var rows []Table3Row
	pool, err := workloadPool(cfg, false)
	if err != nil {
		return nil, err
	}
	for _, item := range pool {
		row := Table3Row{Workload: item.label}

		tnC, err := core.NewTuner(item.db, item.w, core.Options{NoViews: item.noViews})
		if err != nil {
			return nil, err
		}
		ctt, err := baseline.Tune(tnC, baseline.Options{NoViews: item.noViews})
		if err != nil {
			return nil, err
		}
		row.TimeCTT = ctt.Elapsed
		row.CallsCTT = ctt.OptimizerCalls
		row.ImprCTT = ctt.ImprovementPct()

		tnP, err := core.NewTuner(item.db, item.w, core.Options{NoViews: item.noViews, MaxIterations: cfg.MaxIterations})
		if err != nil {
			return nil, err
		}
		ptt, err := tnP.Tune()
		if err != nil {
			return nil, err
		}
		row.TimePTT = ptt.Elapsed
		row.CallsPTT = ptt.OptimizerCalls
		row.ImprPTT = ptt.ImprovementPct()
		rows = append(rows, row)
	}
	// Most expensive CTT runs first, top 10.
	sortRows := rows
	for i := 1; i < len(sortRows); i++ {
		for j := i; j > 0 && sortRows[j].TimeCTT > sortRows[j-1].TimeCTT; j-- {
			sortRows[j], sortRows[j-1] = sortRows[j-1], sortRows[j]
		}
	}
	if len(sortRows) > 10 {
		sortRows = sortRows[:10]
	}
	return sortRows, nil
}

// poolItem is one (database, workload, mode) tuning task.
type poolItem struct {
	label   string
	db      *catalog.Database
	w       *workloads.Workload
	noViews bool
}

// workloadPool builds the generated-workload pool used by Table 3 and
// Figures 8/9.
func workloadPool(cfg Config, withUpdates bool) ([]poolItem, error) {
	var out []poolItem
	for _, fam := range Families() {
		db := cfg.database(fam)
		for i := 0; i < cfg.Workloads; i++ {
			opt := workloads.DefaultGenOptions(fmt.Sprintf("%s-w%d", fam, i+1), cfg.Seed+int64(i)*101, cfg.QueriesPerWorkload)
			if withUpdates {
				opt.UpdateFraction = 0.35
				opt.Name += "-upd"
			}
			w, err := workloads.Generate(db, opt)
			if err != nil {
				return nil, err
			}
			for _, noViews := range []bool{true, false} {
				label := w.Name + "-I"
				if !noViews {
					label = w.Name + "-IV"
				}
				out = append(out, poolItem{label: label, db: db, w: w, noViews: noViews})
			}
		}
	}
	// The TPC-H 22-query batch joins the pool (SELECT-only case).
	if !withUpdates {
		db := cfg.database("tpch")
		w, err := workloads.TPCH22()
		if err != nil {
			return nil, err
		}
		out = append(out, poolItem{label: "tpch22-I", db: db, w: w, noViews: true})
		out = append(out, poolItem{label: "tpch22-IV", db: db, w: w, noViews: false})
	}
	return out, nil
}

package experiments

import (
	"os"
	"testing"
)

func tinyConfig() Config {
	c := DefaultConfig()
	c.Workloads = 1
	c.QueriesPerWorkload = 4
	c.MaxIterations = 20
	return c
}

func TestTable1RequestsAreSmall(t *testing.T) {
	rows, err := Table1(tinyConfig())
	if err != nil {
		t.Fatalf("table1: %v", err)
	}
	if len(rows) != 22 {
		t.Fatalf("expected 22 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.IndexRequests == 0 {
			t.Errorf("%s issued no index requests", r.QueryID)
		}
		// The paper's point: request counts per query stay small even for
		// complex queries (no combinatorial explosion of candidates).
		if r.IndexRequests > 200 {
			t.Errorf("%s issued %d index requests (expected small)", r.QueryID, r.IndexRequests)
		}
	}
	if testing.Verbose() {
		RenderTable1(os.Stdout, rows)
	}
}

func TestTable2Inventory(t *testing.T) {
	rows := Table2(tinyConfig())
	if len(rows) != 3 {
		t.Fatalf("expected 3 database families, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Tables == 0 || r.Rows == 0 {
			t.Errorf("family %s has empty inventory", r.Database)
		}
	}
}

func TestFigure4FrontierShape(t *testing.T) {
	res, err := Figure4(tinyConfig())
	if err != nil {
		t.Fatalf("figure4: %v", err)
	}
	if res.OptimalCost > res.InitialCost {
		t.Errorf("optimal cost %.1f above initial %.1f", res.OptimalCost, res.InitialCost)
	}
	if res.OptimalSize <= res.InitialSize {
		t.Errorf("optimal size %d not above initial %d", res.OptimalSize, res.InitialSize)
	}
	if res.BestSize > res.Budget {
		t.Errorf("recommendation exceeds budget: %d > %d", res.BestSize, res.Budget)
	}
	if res.BestCost < res.OptimalCost {
		t.Errorf("constrained best %.1f beats unconstrained optimal %.1f", res.BestCost, res.OptimalCost)
	}
	if len(res.Frontier) < 5 {
		t.Errorf("frontier has only %d points", len(res.Frontier))
	}
	if testing.Verbose() {
		RenderFigure4(os.Stdout, res)
	}
}

func TestFigure6CensusGrows(t *testing.T) {
	census, err := Figure6(tinyConfig())
	if err != nil {
		t.Fatalf("figure6: %v", err)
	}
	if len(census) == 0 {
		t.Fatal("empty census")
	}
	max := 0
	for _, c := range census {
		if c > max {
			max = c
		}
	}
	// The paper reports hundreds of candidate transformations per
	// iteration; even at tiny scale there should be scores of them.
	if max < 50 {
		t.Errorf("peak transformation count %d is implausibly small", max)
	}
}

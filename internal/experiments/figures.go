package experiments

import (
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/workloads"
)

// ---------------------------------------------------------------------
// Figure 3: best-configuration improvement over time for the bottom-up
// tool (the plateau that motivates knowing the optimal configuration).
// ---------------------------------------------------------------------

// Fig3Result is the bottom-up convergence trace plus the optimal bound
// the paper argues a DBA should be shown.
type Fig3Result struct {
	Progress    []baseline.ProgressPoint
	InitialCost float64
	OptimalCost float64
}

// Figure3 traces CTT's best configuration over a complex 30-query
// workload and reports the relaxation tuner's optimal-configuration bound
// for comparison.
func Figure3(cfg Config) (*Fig3Result, error) {
	db := cfg.database("tpch")
	opt := workloads.DefaultGenOptions("fig3", cfg.Seed+9, 30)
	opt.MaxJoins = 5
	w, err := workloads.Generate(db, opt)
	if err != nil {
		return nil, err
	}
	tn, err := core.NewTuner(db, w, core.Options{NoViews: true})
	if err != nil {
		return nil, err
	}
	ctt, err := baseline.Tune(tn, baseline.Options{NoViews: true})
	if err != nil {
		return nil, err
	}
	optimalCfg, err := tn.OptimalConfiguration()
	if err != nil {
		return nil, err
	}
	optimal, err := tn.Evaluate(optimalCfg)
	if err != nil {
		return nil, err
	}
	return &Fig3Result{
		Progress:    ctt.Progress,
		InitialCost: ctt.Initial.Cost,
		OptimalCost: optimal.Cost,
	}, nil
}

// ---------------------------------------------------------------------
// Figure 4: the relaxation frontier (space vs. cost) for a TPC-H
// workload tuned for indexes.
// ---------------------------------------------------------------------

// Fig4Result is the space/cost frontier produced as a by-product of one
// relaxation run.
type Fig4Result struct {
	Frontier    []core.FrontierPoint
	InitialCost float64
	InitialSize int64
	OptimalCost float64
	OptimalSize int64
	BestCost    float64
	BestSize    int64
	Budget      int64
}

// Figure4 tunes the 22-query TPC-H workload for indexes under a budget of
// about 30% of the optimal configuration's size and returns the frontier.
func Figure4(cfg Config) (*Fig4Result, error) {
	db := cfg.database("tpch")
	w, err := workloads.TPCH22()
	if err != nil {
		return nil, err
	}
	probe, err := core.NewTuner(db, w, core.Options{NoViews: true})
	if err != nil {
		return nil, err
	}
	optCfg, err := probe.OptimalConfiguration()
	if err != nil {
		return nil, err
	}
	optSize := probe.Opt.Sizer().ConfigBytes(optCfg)
	budget := optSize * 3 / 10

	tn, err := core.NewTuner(db, w, core.Options{
		NoViews:       true,
		SpaceBudget:   budget,
		MaxIterations: cfg.MaxIterations * 2,
	})
	if err != nil {
		return nil, err
	}
	res, err := tn.Tune()
	if err != nil {
		return nil, err
	}
	return &Fig4Result{
		Frontier:    res.Frontier,
		InitialCost: res.Initial.Cost,
		InitialSize: res.Initial.SizeBytes,
		OptimalCost: res.Optimal.Cost,
		OptimalSize: res.Optimal.SizeBytes,
		BestCost:    res.Best.Cost,
		BestSize:    res.Best.SizeBytes,
		Budget:      budget,
	}, nil
}

// ---------------------------------------------------------------------
// Figure 6: candidate transformations per iteration.
// ---------------------------------------------------------------------

// Figure6 returns the per-iteration count of applicable transformations
// during a TPC-H relaxation run; the paper's point is that the space is
// far too large for exhaustive search.
func Figure6(cfg Config) ([]int, error) {
	db := cfg.database("tpch")
	w, err := workloads.TPCH22()
	if err != nil {
		return nil, err
	}
	probe, err := core.NewTuner(db, w, core.Options{NoViews: true})
	if err != nil {
		return nil, err
	}
	optCfg, err := probe.OptimalConfiguration()
	if err != nil {
		return nil, err
	}
	optSize := probe.Opt.Sizer().ConfigBytes(optCfg)
	tn, err := core.NewTuner(db, w, core.Options{
		NoViews:       true,
		SpaceBudget:   optSize / 4,
		MaxIterations: cfg.MaxIterations,
	})
	if err != nil {
		return nil, err
	}
	res, err := tn.Tune()
	if err != nil {
		return nil, err
	}
	return res.TransCensus, nil
}

// ---------------------------------------------------------------------
// Figures 8 and 9: ΔImprovement = Impr(PTT) − Impr(CTT).
// ---------------------------------------------------------------------

// DeltaRow is one tuned workload in a Figure 8/9 sweep.
type DeltaRow struct {
	Workload string
	Database string
	Views    bool
	ImprPTT  float64
	ImprCTT  float64
	Delta    float64
}

// Figure8 compares the two tuners without constraints on SELECT-only
// workloads over all three database families, with and without views.
func Figure8(cfg Config) ([]DeltaRow, error) {
	pool, err := workloadPool(cfg, false)
	if err != nil {
		return nil, err
	}
	return runDeltaSweep(cfg, pool, 0)
}

// Figure9 compares the tuners on UPDATE workloads. PTT runs with a time
// budget (15/30 minutes in the paper, scaled here), CTT unbounded.
func Figure9(cfg Config) ([]DeltaRow, error) {
	pool, err := workloadPool(cfg, true)
	if err != nil {
		return nil, err
	}
	budget := cfg.PTTTimeBudget
	if budget == 0 {
		budget = 20 * time.Second
	}
	return runDeltaSweep(cfg, pool, budget)
}

func runDeltaSweep(cfg Config, pool []poolItem, pttBudget time.Duration) ([]DeltaRow, error) {
	var rows []DeltaRow
	for _, item := range pool {
		tnC, err := core.NewTuner(item.db, item.w, core.Options{NoViews: item.noViews})
		if err != nil {
			return nil, err
		}
		ctt, err := baseline.Tune(tnC, baseline.Options{NoViews: item.noViews})
		if err != nil {
			return nil, err
		}
		tnP, err := core.NewTuner(item.db, item.w, core.Options{
			NoViews:       item.noViews,
			MaxIterations: cfg.MaxIterations,
			TimeBudget:    pttBudget,
		})
		if err != nil {
			return nil, err
		}
		ptt, err := tnP.Tune()
		if err != nil {
			return nil, err
		}
		rows = append(rows, DeltaRow{
			Workload: item.label,
			Database: item.db.Name,
			Views:    !item.noViews,
			ImprPTT:  ptt.ImprovementPct(),
			ImprCTT:  ctt.ImprovementPct(),
			Delta:    ptt.ImprovementPct() - ctt.ImprovementPct(),
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Figure 10: recommendation quality under varying storage constraints.
// ---------------------------------------------------------------------

// Fig10Row is one storage-budget point of the sweep.
type Fig10Row struct {
	// PctSpace is the budget position between the base configuration's
	// size (0) and the optimal configuration's size (100).
	PctSpace int
	Budget   int64
	ImprPTT  float64
	ImprCTT  float64
}

// Figure10 sweeps the storage constraint between the minimum and optimal
// configuration sizes for the TPC-H workload (indexes only) and tunes
// with both tools at every point. The paper's shape: PTT improves
// monotonically with space, CTT may regress.
func Figure10(cfg Config) ([]Fig10Row, error) {
	db := cfg.database("tpch")
	w, err := workloads.TPCH22()
	if err != nil {
		return nil, err
	}
	probe, err := core.NewTuner(db, w, core.Options{NoViews: true})
	if err != nil {
		return nil, err
	}
	optCfg, err := probe.OptimalConfiguration()
	if err != nil {
		return nil, err
	}
	optSize := probe.Opt.Sizer().ConfigBytes(optCfg)
	minSize := probe.Opt.Sizer().ConfigBytes(probe.Base)
	initial, err := probe.Evaluate(probe.Base)
	if err != nil {
		return nil, err
	}

	var rows []Fig10Row
	for _, pct := range []int{10, 25, 40, 55, 70, 85, 100} {
		budget := minSize + (optSize-minSize)*int64(pct)/100
		tnP, err := core.NewTuner(db, w, core.Options{
			NoViews:       true,
			SpaceBudget:   budget,
			MaxIterations: cfg.MaxIterations,
		})
		if err != nil {
			return nil, err
		}
		ptt, err := tnP.Tune()
		if err != nil {
			return nil, err
		}
		tnC, err := core.NewTuner(db, w, core.Options{NoViews: true})
		if err != nil {
			return nil, err
		}
		ctt, err := baseline.Tune(tnC, baseline.Options{NoViews: true, SpaceBudget: budget})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig10Row{
			PctSpace: pct,
			Budget:   budget,
			ImprPTT:  core.Improvement(initial.Cost, ptt.Best.Cost),
			ImprCTT:  core.Improvement(initial.Cost, ctt.Best.Cost),
		})
	}
	return rows, nil
}

package experiments

import (
	"fmt"
	"io"
	"strings"
)

// RenderTable1 prints Table 1 rows.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1: index and view requests for the 22-query TPC-H workload")
	fmt.Fprintf(w, "%-12s %7s %14s %13s\n", "query", "tables", "index reqs", "view reqs")
	var ti, tv int64
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %7d %14d %13d\n", r.QueryID, r.Tables, r.IndexRequests, r.ViewRequests)
		ti += r.IndexRequests
		tv += r.ViewRequests
	}
	fmt.Fprintf(w, "%-12s %7s %14d %13d\n", "total", "", ti, tv)
}

// RenderTable2 prints the experimental-setting inventory.
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2: databases and workloads used in the experiments")
	fmt.Fprintf(w, "%-8s %7s %12s %9s  %s\n", "database", "tables", "rows", "raw MB", "workloads")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %7d %12d %9.1f  %s\n", r.Database, r.Tables, r.Rows, r.RawMB, r.Workloads)
	}
}

// RenderTable3 prints tuning-time comparisons.
func RenderTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table 3: tuning time for the most expensive workloads (no constraints)")
	fmt.Fprintf(w, "%-16s %10s %10s %9s %9s %9s %9s\n",
		"workload", "time CTT", "time PTT", "callsCTT", "callsPTT", "imprCTT", "imprPTT")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %10s %10s %9d %9d %8.1f%% %8.1f%%\n",
			r.Workload, r.TimeCTT.Round(1e6), r.TimePTT.Round(1e6),
			r.CallsCTT, r.CallsPTT, r.ImprCTT, r.ImprPTT)
	}
}

// RenderFigure3 prints the convergence trace.
func RenderFigure3(w io.Writer, res *Fig3Result) {
	fmt.Fprintln(w, "Figure 3: bottom-up best configuration over time vs. the optimal bound")
	fmt.Fprintf(w, "initial cost: %.1f   optimal-configuration bound: %.1f\n", res.InitialCost, res.OptimalCost)
	fmt.Fprintf(w, "%7s %12s %12s %9s\n", "step", "elapsed", "best cost", "impr")
	for _, p := range res.Progress {
		fmt.Fprintf(w, "%7d %12s %12.1f %8.1f%%\n",
			p.Step, p.Elapsed.Round(1e6), p.BestCost, 100*(1-p.BestCost/res.InitialCost))
	}
}

// RenderFigure4 prints the relaxation frontier.
func RenderFigure4(w io.Writer, res *Fig4Result) {
	fmt.Fprintln(w, "Figure 4: relaxation-based search frontier (TPC-H, indexes only)")
	fmt.Fprintf(w, "initial: size=%s cost=%.1f | optimal: size=%s cost=%.1f | budget=%s -> best: size=%s cost=%.1f\n",
		mb(res.InitialSize), res.InitialCost, mb(res.OptimalSize), res.OptimalCost,
		mb(res.Budget), mb(res.BestSize), res.BestCost)
	fmt.Fprintf(w, "%6s %12s %12s %6s\n", "iter", "size", "cost", "fits")
	for _, p := range res.Frontier {
		fits := ""
		if p.Fits {
			fits = "yes"
		}
		fmt.Fprintf(w, "%6d %12s %12.1f %6s\n", p.Iteration, mb(p.SizeBytes), p.Cost, fits)
	}
}

// RenderFigure6 prints the transformation census.
func RenderFigure6(w io.Writer, census []int) {
	fmt.Fprintln(w, "Figure 6: candidate transformations available per iteration")
	fmt.Fprintf(w, "%6s %16s\n", "iter", "transformations")
	for i, c := range census {
		fmt.Fprintf(w, "%6d %16d\n", i+1, c)
	}
}

// RenderDeltaRows prints a Figure 8/9 sweep with a summary histogram.
func RenderDeltaRows(w io.Writer, title string, rows []DeltaRow) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-18s %-7s %-6s %9s %9s %9s\n", "workload", "db", "views", "imprPTT", "imprCTT", "delta")
	ties, wins, losses := 0, 0, 0
	for _, r := range rows {
		views := "no"
		if r.Views {
			views = "yes"
		}
		fmt.Fprintf(w, "%-18s %-7s %-6s %8.1f%% %8.1f%% %+8.1f%%\n",
			r.Workload, r.Database, views, r.ImprPTT, r.ImprCTT, r.Delta)
		switch {
		case r.Delta > 1:
			wins++
		case r.Delta < -1:
			losses++
		default:
			ties++
		}
	}
	n := len(rows)
	if n == 0 {
		return
	}
	fmt.Fprintf(w, "summary: %d workloads — PTT wins %d (%.0f%%), ties %d (%.0f%%), losses %d (%.0f%%)\n",
		n, wins, pct(wins, n), ties, pct(ties, n), losses, pct(losses, n))
}

// RenderFigure10 prints the storage-constraint sweep.
func RenderFigure10(w io.Writer, rows []Fig10Row) {
	fmt.Fprintln(w, "Figure 10: recommendation quality under varying storage constraints")
	fmt.Fprintf(w, "%8s %12s %9s %9s\n", "space%", "budget", "imprPTT", "imprCTT")
	for _, r := range rows {
		fmt.Fprintf(w, "%7d%% %12s %8.1f%% %8.1f%%\n", r.PctSpace, mb(r.Budget), r.ImprPTT, r.ImprCTT)
	}
}

func pct(a, n int) float64 { return 100 * float64(a) / float64(n) }

func mb(bytes int64) string {
	switch {
	case bytes >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(bytes)/(1<<30))
	case bytes >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(bytes)/(1<<20))
	default:
		return fmt.Sprintf("%.0fKB", float64(bytes)/(1<<10))
	}
}

// Sparkline renders a tiny ASCII trend of values (for logs).
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	marks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var sb strings.Builder
	for _, v := range values {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(marks)-1))
		}
		sb.WriteRune(marks[i])
	}
	return sb.String()
}

package experiments

import (
	"testing"
	"time"
)

func microConfig() Config {
	c := DefaultConfig()
	c.Workloads = 1
	c.QueriesPerWorkload = 4
	c.MaxIterations = 15
	c.PTTTimeBudget = 5 * time.Second
	return c
}

func TestFigure8ShapeAtMicroScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep; skipped in -short mode")
	}
	rows, err := Figure8(microConfig())
	if err != nil {
		t.Fatalf("figure8: %v", err)
	}
	// 1 workload × 3 families × 2 modes + tpch22 × 2 modes.
	if len(rows) != 8 {
		t.Fatalf("rows: %d", len(rows))
	}
	losses := 0
	for _, r := range rows {
		if r.Delta < -1 {
			losses++
		}
		if r.ImprPTT < 0 {
			t.Errorf("%s: negative PTT improvement %g", r.Workload, r.ImprPTT)
		}
	}
	// The paper's headline: PTT loses on at most a small fraction.
	if losses > 1 {
		t.Errorf("PTT lost %d of %d workloads", losses, len(rows))
	}
}

func TestFigure9UpdatesAtMicroScale(t *testing.T) {
	rows, err := Figure9(microConfig())
	if err != nil {
		t.Fatalf("figure9: %v", err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		// Improvements can be small with updates but PTT must not crater.
		if r.Delta < -10 {
			t.Errorf("%s: PTT lost badly (%+.1f)", r.Workload, r.Delta)
		}
	}
}

func TestFigure10Monotone(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep; skipped in -short mode")
	}
	cfg := microConfig()
	cfg.MaxIterations = 40
	rows, err := Figure10(cfg)
	if err != nil {
		t.Fatalf("figure10: %v", err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows: %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].ImprPTT < rows[i-1].ImprPTT-2 {
			t.Errorf("PTT not monotone in space: %.1f%% at %d%% < %.1f%% at %d%%",
				rows[i].ImprPTT, rows[i].PctSpace, rows[i-1].ImprPTT, rows[i-1].PctSpace)
		}
	}
	// PTT should dominate CTT at the tightest budget (the paper's gap).
	if rows[0].ImprPTT < rows[0].ImprCTT-2 {
		t.Errorf("PTT (%.1f%%) behind CTT (%.1f%%) at the tightest budget",
			rows[0].ImprPTT, rows[0].ImprCTT)
	}
}

func TestTable3PTTFasterThanCTT(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep; skipped in -short mode")
	}
	rows, err := Table3(microConfig())
	if err != nil {
		t.Fatalf("table3: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	fasterCount := 0
	for _, r := range rows {
		if r.TimePTT < r.TimeCTT {
			fasterCount++
		}
		if r.CallsPTT >= r.CallsCTT {
			t.Errorf("%s: PTT used more optimizer calls (%d >= %d)", r.Workload, r.CallsPTT, r.CallsCTT)
		}
	}
	if fasterCount*2 < len(rows) {
		t.Errorf("PTT faster on only %d of %d workloads", fasterCount, len(rows))
	}
}

func TestValidateRatiosReasonable(t *testing.T) {
	rows, err := Validate(microConfig())
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if len(rows) != 22 {
		t.Fatalf("rows: %d", len(rows))
	}
	bad := 0
	for _, r := range rows {
		if r.Actual == 0 {
			continue // tiny-scale sparsity, not an estimator failure
		}
		if ratio := r.Ratio(); ratio > 25 || ratio < 1.0/25 {
			bad++
			t.Logf("%s: ratio %.2f (est %.0f, actual %d)", r.Query, ratio, r.Estimated, r.Actual)
		}
	}
	if bad > 3 {
		t.Errorf("%d of 22 queries estimated off by more than 25x", bad)
	}
}

package experiments

import (
	"fmt"
	"io"

	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/sqlx"
	"repro/internal/workloads"
)

// ValidateRow compares one query's estimated and executed cardinality.
type ValidateRow struct {
	Query     string
	Estimated float64
	Actual    int
	// RowsScanned counts base-table rows the executor's access paths
	// actually read for this query.
	RowsScanned int64
}

// Ratio returns estimate/actual (0 when the result is empty).
func (r ValidateRow) Ratio() float64 {
	if r.Actual == 0 {
		return 0
	}
	return r.Estimated / float64(r.Actual)
}

// Validate executes the 22-query TPC-H workload over materialized rows
// and compares true result sizes with optimizer estimates — the sanity
// experiment backing every cost-based number in the suite (not an exhibit
// of the paper; the paper trusts SQL Server's estimator the same way).
func Validate(cfg Config) ([]ValidateRow, error) {
	db, store := datagen.TPCHData(cfg.SF)
	o := optimizer.New(db)
	base := datagen.BaseConfiguration(db)
	var rows []ValidateRow
	for i, src := range workloads.TPCH22SQL() {
		stmt, err := sqlx.Parse(src)
		if err != nil {
			return nil, err
		}
		q, err := optimizer.Bind(db, stmt)
		if err != nil {
			return nil, err
		}
		p, err := o.Optimize(q, base)
		if err != nil {
			return nil, err
		}
		res, st, err := exec.ExecuteQuery(store, q)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ValidateRow{
			Query:       fmt.Sprintf("q%d", i+1),
			Estimated:   p.Root.OutRows(),
			Actual:      res.Len(),
			RowsScanned: st.RowsScanned,
		})
	}
	return rows, nil
}

// RenderValidate prints the estimate-vs-actual table.
func RenderValidate(w io.Writer, rows []ValidateRow) {
	fmt.Fprintln(w, "Validation: optimizer estimates vs. executed TPC-H results")
	fmt.Fprintf(w, "%-6s %12s %12s %8s %12s\n", "query", "estimated", "actual", "ratio", "scanned")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %12.0f %12d %8.2f %12d\n", r.Query, r.Estimated, r.Actual, r.Ratio(), r.RowsScanned)
	}
}

package fleet

import (
	"container/list"
	"sync"

	"repro/internal/core"
)

// DefaultCostCacheCapacity bounds the shared drift-cost cache when the
// registry options don't say otherwise.
const DefaultCostCacheCapacity = 65536

// SharedCostCache is a bounded LRU implementation of service.CostCache:
// it shares drift-probe what-if costs across a fleet of tenants. Keys
// already encode the (catalog fingerprint, configuration fingerprint,
// statement) triple, so entries are only ever reused by tenants in an
// identical tuning state — sharing is correctness-preserving by
// construction, the cache just bounds memory and attributes activity.
type SharedCostCache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      int64
	misses    int64
	shared    int64
	evictions int64
	origins   map[string]*core.OriginStats
}

// costEntry is one cached what-if cost plus the origin that computed it.
type costEntry struct {
	key    string
	origin string
	cost   float64
}

// NewSharedCostCache returns an empty cache holding at most capacity
// entries (<= 0 = DefaultCostCacheCapacity).
func NewSharedCostCache(capacity int) *SharedCostCache {
	if capacity <= 0 {
		capacity = DefaultCostCacheCapacity
	}
	return &SharedCostCache{
		capacity: capacity,
		ll:       list.New(),
		items:    map[string]*list.Element{},
		origins:  map[string]*core.OriginStats{},
	}
}

// Get implements service.CostCache.
func (c *SharedCostCache) Get(key, origin string) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	os := c.originLocked(origin)
	el, ok := c.items[key]
	if !ok {
		c.misses++
		os.Misses++
		return 0, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*costEntry)
	c.hits++
	os.Hits++
	if e.origin != origin {
		c.shared++
		os.SharedHits++
	}
	return e.cost, true
}

// Put implements service.CostCache.
func (c *SharedCostCache) Put(key, origin string, cost float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*costEntry).cost = cost
		return
	}
	c.items[key] = c.ll.PushFront(&costEntry{key: key, origin: origin, cost: cost})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*costEntry).key)
		c.evictions++
	}
}

func (c *SharedCostCache) originLocked(origin string) *core.OriginStats {
	os, ok := c.origins[origin]
	if !ok {
		os = &core.OriginStats{}
		c.origins[origin] = os
	}
	return os
}

// CostCacheStats is a point-in-time snapshot of shared cost-cache
// activity.
type CostCacheStats struct {
	Entries  int   `json:"entries"`
	Capacity int   `json:"capacity"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	// SharedHits counts hits on costs another tenant computed.
	SharedHits int64                       `json:"shared_hits"`
	Evictions  int64                       `json:"evictions"`
	Origins    map[string]core.OriginStats `json:"origins,omitempty"`
}

// Stats returns a snapshot of the cache counters.
func (c *SharedCostCache) Stats() CostCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	origins := make(map[string]core.OriginStats, len(c.origins))
	for k, v := range c.origins {
		origins[k] = *v
	}
	return CostCacheStats{
		Entries:    c.ll.Len(),
		Capacity:   c.capacity,
		Hits:       c.hits,
		Misses:     c.misses,
		SharedHits: c.shared,
		Evictions:  c.evictions,
		Origins:    origins,
	}
}

// Package fleet runs many online tuning services — tenants — inside one
// tunerd process, the way a managed database provider would: a registry
// tenants join and leave at runtime, a bounded worker pool that shards
// retune sessions across tenants (one in flight per tenant, FIFO with
// priority for drift-triggered work), per-tenant ingestion quotas with
// backpressure, and shared cross-tenant caches.
//
// The sharing is correctness-preserving by construction: both shared
// caches key their entries by catalog fingerprint (schema + statistics),
// so tenants with identical catalogs and overlapping statement shapes
// reuse each other's per-statement optimal fragments and what-if costs,
// while tenants whose catalogs differ in any way never collide. Each
// tenant's recommendations are therefore identical to what an isolated
// single-tenant process would produce — the fleet only changes how many
// optimizer calls it takes to get there.
package fleet

import (
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/replay"
	"repro/internal/service"
)

// TenantSpec declares one tenant: which catalog it tunes against and
// its per-tenant budgets. It is the POST /tenants payload.
type TenantSpec struct {
	// ID names the tenant (required; [a-z0-9] plus interior '-' or '_',
	// at most 64 characters). It becomes the session-ID prefix, the
	// cache origin, and the Prometheus tenant label.
	ID string `json:"id"`
	// Database selects the catalog ("tpch", "ds1", "bench" under
	// tunerd; required).
	Database string `json:"database"`
	// ScaleFactor sizes the catalog (default 0.001).
	ScaleFactor float64 `json:"scale_factor,omitempty"`
	// BudgetMB is the tenant's storage budget in MB, fractions allowed
	// (0 = unconstrained).
	BudgetMB float64 `json:"budget_mb,omitempty"`
	// NoViews restricts this tenant's tuning to indexes only.
	NoViews bool `json:"no_views,omitempty"`
	// MaxIterations overrides the per-retune iteration cap (0 = fleet
	// default).
	MaxIterations int `json:"max_iterations,omitempty"`
	// WindowObservations / WindowMaxUnique / HalfLife override the
	// tenant's sliding-window shape (0 = fleet default).
	WindowObservations int `json:"window_observations,omitempty"`
	WindowMaxUnique    int `json:"window_max_unique,omitempty"`
	HalfLife           int `json:"half_life,omitempty"`
	// AutoRetune makes detected drift queue a retune with the pool.
	AutoRetune bool `json:"auto_retune,omitempty"`
	// DriftCheckEvery runs a drift check after every N ingested
	// statements (0 = fleet default).
	DriftCheckEvery int `json:"drift_check_every,omitempty"`
	// Quota bounds this tenant's ingestion (zero value = the registry's
	// default quota).
	Quota QuotaSpec `json:"quota,omitempty"`
}

// Options configure a fleet registry.
type Options struct {
	// Workers sizes the shared retune worker pool (0 = half the
	// process's GOMAXPROCS, at least 1).
	Workers int
	// Catalog builds a tenant's catalog database from its spec
	// (required); cmd/tunerd passes its -db name resolver.
	Catalog func(database string, scaleFactor float64) (*catalog.Database, error)
	// ReplaySource builds a tenant's ground-truth replay substrate
	// (materialized catalog + rows) from its spec; cmd/tunerd passes the
	// datagen materializer. nil disables fleet-wide ground-truth
	// replays. Each tenant's substrate is built lazily on its first
	// replay and cached by its service.
	ReplaySource func(database string, scaleFactor float64) (*catalog.Database, *exec.Store, error)
	// Defaults is the service.Options template every tenant starts
	// from. The registry overwrites DB, Tenant, Cache, CostCache,
	// Recorder, and RetuneScheduler; TenantSpec fields override the
	// rest per tenant.
	Defaults service.Options
	// DefaultQuota applies to tenants whose spec leaves Quota zero
	// (zero value = unlimited).
	DefaultQuota QuotaSpec
	// CostCacheCapacity bounds the shared drift-cost LRU
	// (0 = DefaultCostCacheCapacity).
	CostCacheCapacity int
	// Logf receives fleet log lines (nil = silent).
	Logf func(format string, args ...any)
}

// Tenant is one registered tenant: its spec, its running service, and
// its quota state.
type Tenant struct {
	Spec      TenantSpec
	Service   *service.Service
	CreatedAt time.Time

	handler http.Handler
	quota   *tokenBucket
	// quotaRejected counts 429'd ingest requests (mirrored into the
	// fleet Prometheus registry; kept here so DELETE cleans it up).
	rejMu         sync.Mutex
	quotaRejected int64
}

// Registry is the fleet: the tenant set, the shared caches, and the
// retune worker pool. All methods are safe for concurrent use.
type Registry struct {
	opts    Options
	frags   *core.RequestCache
	costs   *SharedCostCache
	pool    *Pool
	metrics *fleetMetrics
	started time.Time

	mu      sync.RWMutex
	tenants map[string]*Tenant
	closed  bool
}

// New starts an empty fleet registry.
func New(opts Options) (*Registry, error) {
	if opts.Catalog == nil {
		return nil, errors.New("fleet: Options.Catalog is required")
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0) / 2
		if opts.Workers < 1 {
			opts.Workers = 1
		}
	}
	r := &Registry{
		opts:    opts,
		frags:   core.NewRequestCache(),
		costs:   NewSharedCostCache(opts.CostCacheCapacity),
		metrics: newFleetMetrics(),
		started: time.Now(),
		tenants: map[string]*Tenant{},
	}
	r.pool = newPool(opts.Workers, r.runRetune, opts.Logf)
	return r, nil
}

// runRetune is the pool's runnerFunc: resolve the tenant at run time
// (it may have been removed while queued) and run one session.
func (r *Registry) runRetune(tenant, trigger string, budget int64, overrideBudget bool) (*service.Recommendation, error) {
	t := r.Get(tenant)
	if t == nil {
		return nil, fmt.Errorf("%w: %s", ErrTenantRemoved, tenant)
	}
	rec, err := t.Service.RetuneSession(trigger, budget, overrideBudget)
	if err == nil {
		r.metrics.retunes.Add(tenant, 1)
	}
	return rec, err
}

// validateID enforces the tenant-ID alphabet: DNS-label-ish, safe in
// URLs, file names, session-ID prefixes, and Prometheus label values.
func validateID(id string) error {
	if id == "" {
		return errors.New("fleet: tenant id is required")
	}
	if len(id) > 64 {
		return fmt.Errorf("fleet: tenant id %q too long (max 64)", id)
	}
	for i, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case (c == '-' || c == '_') && i > 0 && i < len(id)-1:
		default:
			return fmt.Errorf("fleet: tenant id %q: want [a-z0-9] with interior '-' or '_'", id)
		}
	}
	return nil
}

// Add registers a tenant and starts its tuning service wired into the
// fleet: shared fragment + cost caches, pool-scheduled retunes, and a
// tenant-prefixed session recorder.
func (r *Registry) Add(spec TenantSpec) (*Tenant, error) {
	if err := validateID(spec.ID); err != nil {
		return nil, err
	}
	if spec.Database == "" {
		return nil, errors.New("fleet: tenant database is required")
	}
	if spec.ScaleFactor <= 0 {
		spec.ScaleFactor = 0.001
	}
	if spec.Quota == (QuotaSpec{}) {
		spec.Quota = r.opts.DefaultQuota
	}
	spec.Quota = spec.Quota.withDefaults()

	db, err := r.opts.Catalog(spec.Database, spec.ScaleFactor)
	if err != nil {
		return nil, fmt.Errorf("fleet: tenant %s: %w", spec.ID, err)
	}

	id := spec.ID
	svcOpts := r.opts.Defaults
	svcOpts.DB = db
	svcOpts.Tenant = id
	svcOpts.Cache = r.frags
	svcOpts.CostCache = r.costs
	svcOpts.Recorder = nil // per-tenant in-memory recorder, ID-prefixed by tenant
	// Self-monitoring cadence and rules come from the fleet template, but
	// a shared transition-log file would interleave every tenant's
	// writes; per-tenant alerting stays in memory (the fleet rollup and
	// /alerts aggregation are the durable surfaces).
	svcOpts.Monitor.AlertLogPath = ""
	// A Defaults-level replay source would point every tenant at the
	// same substrate; rebuild it from this tenant's own spec instead.
	svcOpts.Replay = nil
	if build := r.opts.ReplaySource; build != nil {
		database, sf := spec.Database, spec.ScaleFactor
		svcOpts.Replay = &replay.Source{Build: func() (*catalog.Database, *exec.Store, error) {
			return build(database, sf)
		}}
	}
	svcOpts.RetuneScheduler = func(trigger string) {
		if r.Get(id) != nil {
			r.pool.EnqueueAuto(id, trigger)
		}
	}
	if spec.BudgetMB > 0 {
		svcOpts.Tuning.SpaceBudget = int64(spec.BudgetMB * (1 << 20))
	}
	if spec.NoViews {
		svcOpts.Tuning.NoViews = true
	}
	if spec.MaxIterations > 0 {
		svcOpts.Tuning.MaxIterations = spec.MaxIterations
	}
	if spec.WindowObservations > 0 {
		svcOpts.Window.MaxObservations = spec.WindowObservations
	}
	if spec.WindowMaxUnique > 0 {
		svcOpts.Window.MaxUnique = spec.WindowMaxUnique
	}
	if spec.HalfLife > 0 {
		svcOpts.Window.HalfLife = spec.HalfLife
	}
	if spec.AutoRetune {
		svcOpts.AutoRetune = true
	}
	if spec.DriftCheckEvery > 0 {
		svcOpts.DriftCheckEvery = spec.DriftCheckEvery
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, errors.New("fleet: registry closed")
	}
	if _, dup := r.tenants[id]; dup {
		return nil, fmt.Errorf("fleet: tenant %q already registered", id)
	}
	svc, err := service.New(svcOpts)
	if err != nil {
		return nil, fmt.Errorf("fleet: tenant %s: %w", id, err)
	}
	t := &Tenant{
		Spec:      spec,
		Service:   svc,
		CreatedAt: time.Now().UTC(),
		handler:   service.NewHandler(svc),
		quota:     newTokenBucket(spec.Quota, time.Now()),
	}
	r.tenants[id] = t
	r.logf("fleet: tenant %s registered (db=%s sf=%g budget=%gMB quota=%+v)",
		id, spec.Database, spec.ScaleFactor, spec.BudgetMB, spec.Quota)
	return t, nil
}

// Remove deregisters a tenant: queued retunes fail, its in-flight
// session (if any) drains, then its service closes. Removing an unknown
// tenant is an error.
func (r *Registry) Remove(id string) error {
	r.mu.Lock()
	t, ok := r.tenants[id]
	if ok {
		delete(r.tenants, id)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("fleet: unknown tenant %q", id)
	}
	r.pool.DropTenant(id)
	err := t.Service.Close()
	r.metrics.forget(id)
	r.logf("fleet: tenant %s removed", id)
	return err
}

// Get returns a tenant by ID, or nil.
func (r *Registry) Get(id string) *Tenant {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tenants[id]
}

// List returns the registered tenants sorted by ID.
func (r *Registry) List() []*Tenant {
	r.mu.RLock()
	out := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, t)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.ID < out[j].Spec.ID })
	return out
}

// Len returns the number of registered tenants.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tenants)
}

// FragmentCache exposes the shared per-statement fragment cache (for
// status surfaces and tests).
func (r *Registry) FragmentCache() *core.RequestCache { return r.frags }

// CostCache exposes the shared drift-cost cache.
func (r *Registry) CostCache() *SharedCostCache { return r.costs }

// Pool exposes the retune worker pool.
func (r *Registry) Pool() *Pool { return r.pool }

// Retune submits a retune session for a tenant to the worker pool and
// waits for it to finish — the synchronous counterpart of the POST
// /tenants/{tenant}/retune route, honoring the same per-tenant
// serialization.
func (r *Registry) Retune(id, trigger string) (*service.Recommendation, error) {
	res := <-r.pool.Submit(id, trigger, 0, false)
	return res.rec, res.err
}

// noteQuotaRejection records one 429'd ingest for a tenant.
func (r *Registry) noteQuotaRejection(t *Tenant) {
	t.rejMu.Lock()
	t.quotaRejected++
	t.rejMu.Unlock()
	r.metrics.quotaRejections.Add(t.Spec.ID, 1)
}

// quotaRejections reads a tenant's 429 count.
func (t *Tenant) quotaRejections() int64 {
	t.rejMu.Lock()
	defer t.rejMu.Unlock()
	return t.quotaRejected
}

func (r *Registry) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

// TenantStatus is one tenant's row in the GET /fleet payload.
type TenantStatus struct {
	ID                 string    `json:"id"`
	Database           string    `json:"database"`
	ScaleFactor        float64   `json:"scale_factor"`
	CreatedAt          time.Time `json:"created_at"`
	QueueDepth         int       `json:"queue_depth"`
	InFlight           bool      `json:"in_flight"`
	Retunes            int64     `json:"retunes"`
	Sessions           int64     `json:"sessions"`
	WindowObservations int64     `json:"window_observations"`
	StatementsIngested int64     `json:"statements_ingested"`
	QuotaRejections    int64     `json:"quota_rejections"`
	CacheHits          int64     `json:"cache_hits"`
	CacheSharedHits    int64     `json:"cache_shared_hits"`
	HasRecommendation  bool      `json:"has_recommendation"`
	AlertsFiring       int       `json:"alerts_firing"`
}

// AlertRollup is the fleet-level alert summary in GET /fleet: firing
// instances across every tenant's alert engine, broken down by severity
// and by tenant.
type AlertRollup struct {
	Firing     int            `json:"firing"`
	BySeverity map[string]int `json:"by_severity,omitempty"`
	ByTenant   map[string]int `json:"by_tenant,omitempty"`
}

// Status is the GET /fleet payload: the fleet-wide view a operator
// dashboard scrapes.
type Status struct {
	UptimeSeconds    float64         `json:"uptime_seconds"`
	Workers          int             `json:"workers"`
	Tenants          []TenantStatus  `json:"tenants"`
	QueueDepth       int             `json:"queue_depth"`
	RetunesCompleted int64           `json:"retunes_completed"`
	FragmentCache    core.CacheStats `json:"fragment_cache"`
	CostCache        CostCacheStats  `json:"cost_cache"`
	Alerts           AlertRollup     `json:"alerts"`
}

// Status assembles the fleet-wide status snapshot.
func (r *Registry) Status() Status {
	depths := r.pool.Depths()
	fragStats := r.frags.Stats()
	st := Status{
		UptimeSeconds:    time.Since(r.started).Seconds(),
		Workers:          r.pool.Workers(),
		Tenants:          []TenantStatus{},
		RetunesCompleted: r.pool.Completed(),
		FragmentCache:    fragStats,
		CostCache:        r.costs.Stats(),
	}
	for _, d := range depths {
		st.QueueDepth += d.Queued
	}
	for _, t := range r.List() {
		snap := t.Service.MetricsSnapshot()
		d := depths[t.Spec.ID]
		firing := 0
		for sev, n := range t.Service.Alerts().FiringBySeverity() {
			firing += n
			if st.Alerts.BySeverity == nil {
				st.Alerts.BySeverity = map[string]int{}
			}
			st.Alerts.BySeverity[sev] += n
		}
		if firing > 0 {
			if st.Alerts.ByTenant == nil {
				st.Alerts.ByTenant = map[string]int{}
			}
			st.Alerts.ByTenant[t.Spec.ID] = firing
		}
		st.Alerts.Firing += firing
		st.Tenants = append(st.Tenants, TenantStatus{
			ID:                 t.Spec.ID,
			Database:           t.Spec.Database,
			ScaleFactor:        t.Spec.ScaleFactor,
			CreatedAt:          t.CreatedAt,
			QueueDepth:         d.Queued,
			InFlight:           d.InFlight,
			Retunes:            snap.Retunes,
			Sessions:           snap.RecordedSessions,
			WindowObservations: snap.WindowObservations,
			StatementsIngested: snap.StatementsIngested,
			QuotaRejections:    t.quotaRejections(),
			CacheHits:          snap.CacheHits,
			CacheSharedHits:    snap.CacheSharedHits,
			HasRecommendation:  t.Service.Recommendation() != nil,
			AlertsFiring:       firing,
		})
	}
	return st
}

// readyQueueFactor bounds the retune backlog readiness tolerates: the
// fleet reports not-ready once more than readyQueueFactor sessions per
// worker are queued — a saturated pool means new tenants' retunes wait
// behind a long backlog, so a balancer should prefer another replica.
const readyQueueFactor = 4

// Ready reports whether the fleet is ready to take on tenant traffic —
// the GET /readyz predicate. An empty fleet is ready (tenants register
// at runtime); saturation of the shared retune pool is what flips it.
func (r *Registry) Ready() (bool, []string) {
	var reasons []string
	r.mu.RLock()
	closed := r.closed
	r.mu.RUnlock()
	if closed {
		reasons = append(reasons, "registry closed")
	}
	workers := r.pool.Workers()
	depth := 0
	for _, d := range r.pool.Depths() {
		depth += d.Queued
	}
	if depth > readyQueueFactor*workers {
		reasons = append(reasons, fmt.Sprintf(
			"retune pool saturated: %d sessions queued over %d workers (limit %d)",
			depth, workers, readyQueueFactor*workers))
	}
	return len(reasons) == 0, reasons
}

// Health assembles the shared /healthz payload — the same HealthStatus
// shape the single-tenant service serves, with Mode "fleet" and the
// tenant count present.
func (r *Registry) Health() service.HealthStatus {
	ready, _ := r.Ready()
	sessions, firing := 0, 0
	hasRec := false
	for _, t := range r.List() {
		sessions += t.Service.SessionCount()
		for _, n := range t.Service.Alerts().FiringBySeverity() {
			firing += n
		}
		if t.Service.Recommendation() != nil {
			hasRec = true
		}
	}
	tenants := r.Len()
	return service.HealthStatus{
		Status:        "ok",
		Mode:          "fleet",
		UptimeSeconds: time.Since(r.started).Seconds(),
		Ready:         ready,
		HasRec:        hasRec,
		Sessions:      sessions,
		Tenants:       &tenants,
		AlertsFiring:  firing,
	}
}

// Close shuts the fleet down: the pool drains its in-flight sessions,
// then every tenant service closes. Idempotent.
func (r *Registry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	tenants := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		tenants = append(tenants, t)
	}
	r.mu.Unlock()
	r.pool.Close()
	var firstErr error
	for _, t := range tenants {
		if err := t.Service.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

package fleet

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/service"
)

// Overlapping statement shapes shared by every test tenant, plus a few
// tenant-specific ones mixed in by index.
var sharedShapes = []string{
	`SELECT o_orderpriority, COUNT(*) FROM orders WHERE o_orderdate >= 9131 AND o_orderdate < 9496 GROUP BY o_orderpriority`,
	`SELECT c_name, o_orderkey FROM customer, orders WHERE c_custkey = o_custkey AND o_totalprice > 400000`,
	`SELECT l_shipmode, SUM(l_extendedprice) FROM lineitem WHERE l_shipdate BETWEEN 9131 AND 9496 GROUP BY l_shipmode`,
	`SELECT s_name, s_acctbal FROM supplier WHERE s_acctbal > 5000`,
}

var extraShapes = []string{
	`SELECT p_type, COUNT(*) FROM part WHERE p_size > 40 GROUP BY p_type`,
	`SELECT l_returnflag, SUM(l_quantity) FROM lineitem WHERE l_discount > 0.05 GROUP BY l_returnflag`,
	`SELECT n_name, COUNT(*) FROM nation, region WHERE n_regionkey = r_regionkey GROUP BY n_name`,
}

func testCatalog(database string, sf float64) (*catalog.Database, error) {
	switch database {
	case "tpch":
		return datagen.TPCH(sf), nil
	case "bench":
		return datagen.Bench(sf), nil
	}
	return nil, fmt.Errorf("unknown database %q", database)
}

func testDefaults() service.Options {
	return service.Options{
		Tuning: core.Options{SpaceBudget: 2 << 20, MaxIterations: 40},
	}
}

func newTestRegistry(t *testing.T, opts Options) *Registry {
	t.Helper()
	if opts.Catalog == nil {
		opts.Catalog = testCatalog
	}
	if opts.Defaults.DB == nil && opts.Defaults.Tuning == (core.Options{}) {
		opts.Defaults = testDefaults()
	}
	r, err := New(opts)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// retuneTenant runs one pooled retune and fails the test on error.
func retuneTenant(t *testing.T, r *Registry, id string) *service.Recommendation {
	t.Helper()
	res := <-r.Pool().Submit(id, "manual", 0, false)
	if res.err != nil {
		t.Fatalf("retune %s: %v", id, res.err)
	}
	return res.rec
}

// TestFleetSharedCacheParity is the acceptance scenario: three tenants
// with identical catalogs and overlapping statement shapes must (a)
// produce shared-cache hits — cross-tenant reuse — and (b) each produce
// exactly the recommendation an isolated single-tenant process computes
// for its workload.
func TestFleetSharedCacheParity(t *testing.T) {
	r := newTestRegistry(t, Options{Workers: 2})
	workloadFor := func(i int) []string {
		return append(append([]string{}, sharedShapes...), extraShapes[i])
	}
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("tenant-%d", i)
		if _, err := r.Add(TenantSpec{ID: id, Database: "tpch"}); err != nil {
			t.Fatalf("add %s: %v", id, err)
		}
		res := r.Get(id).Service.Ingest(workloadFor(i))
		if res.Rejected != 0 {
			t.Fatalf("%s: %d statements rejected", id, res.Rejected)
		}
	}

	fleetRecs := map[string]*service.Recommendation{}
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("tenant-%d", i)
		fleetRecs[id] = retuneTenant(t, r, id)
	}

	stats := r.FragmentCache().Stats()
	if stats.SharedHits == 0 {
		t.Fatalf("no shared cache hits across 3 tenants with overlapping shapes: %+v", stats)
	}
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("tenant-%d", i)
		os := stats.Origins[id]
		if i > 0 && os.SharedHits == 0 {
			t.Errorf("%s: no attributed shared hits (origins %+v)", id, stats.Origins)
		}
	}

	// Parity: isolated single-tenant services over the same catalog and
	// workload must produce identical recommendations.
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("tenant-%d", i)
		solo, err := service.New(service.Options{
			DB:     datagen.TPCH(0.001),
			Tuning: core.Options{SpaceBudget: 2 << 20, MaxIterations: 40},
		})
		if err != nil {
			t.Fatalf("solo service: %v", err)
		}
		solo.Ingest(workloadFor(i))
		soloRec, err := solo.Retune()
		solo.Close()
		if err != nil {
			t.Fatalf("solo retune: %v", err)
		}
		if soloRec.DDL != fleetRecs[id].DDL {
			t.Errorf("%s: fleet recommendation diverged from single-tenant run\nfleet:\n%s\nsolo:\n%s",
				id, fleetRecs[id].DDL, soloRec.DDL)
		}
		if soloRec.Cost != fleetRecs[id].Cost {
			t.Errorf("%s: fleet cost %.4f != solo cost %.4f", id, fleetRecs[id].Cost, soloRec.Cost)
		}
	}
}

// TestFleetTenantIsolation: tenants whose catalogs differ (same schema,
// different statistics) must never reuse each other's fragments, and
// each still matches its single-tenant recommendation.
func TestFleetTenantIsolation(t *testing.T) {
	r := newTestRegistry(t, Options{Workers: 2})
	specs := []TenantSpec{
		{ID: "small", Database: "tpch", ScaleFactor: 0.001},
		{ID: "large", Database: "tpch", ScaleFactor: 0.01},
	}
	for _, spec := range specs {
		if _, err := r.Add(spec); err != nil {
			t.Fatalf("add %s: %v", spec.ID, err)
		}
		r.Get(spec.ID).Service.Ingest(sharedShapes)
		retuneTenant(t, r, spec.ID)
	}
	stats := r.FragmentCache().Stats()
	if stats.SharedHits != 0 {
		t.Fatalf("tenants with different statistics shared %d fragments: %+v", stats.SharedHits, stats)
	}
	small := r.Get("small").Service.Recommendation()
	large := r.Get("large").Service.Recommendation()
	if small == nil || large == nil {
		t.Fatal("missing recommendations")
	}

	for _, spec := range specs {
		solo, err := service.New(service.Options{
			DB:     datagen.TPCH(spec.ScaleFactor),
			Tuning: core.Options{SpaceBudget: 2 << 20, MaxIterations: 40},
		})
		if err != nil {
			t.Fatalf("solo service: %v", err)
		}
		solo.Ingest(sharedShapes)
		soloRec, err := solo.Retune()
		solo.Close()
		if err != nil {
			t.Fatalf("solo retune: %v", err)
		}
		got := r.Get(spec.ID).Service.Recommendation()
		if got.DDL != soloRec.DDL {
			t.Errorf("%s: fleet recommendation diverged from single-tenant run", spec.ID)
		}
	}
}

// TestFleetConcurrentTenants hammers 8 tenants with concurrent ingests
// and pooled retunes (run under -race). Session records must stay
// tenant-attributed with tenant-prefixed IDs — the cross-Service
// singleton-collision regression.
func TestFleetConcurrentTenants(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent fleet test is not short")
	}
	const tenants = 8
	r := newTestRegistry(t, Options{Workers: 4})
	for i := 0; i < tenants; i++ {
		id := fmt.Sprintf("t%d", i)
		if _, err := r.Add(TenantSpec{ID: id, Database: "tpch"}); err != nil {
			t.Fatalf("add %s: %v", id, err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		id := fmt.Sprintf("t%d", i)
		extra := extraShapes[i%len(extraShapes)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			svc := r.Get(id).Service
			for round := 0; round < 3; round++ {
				svc.Ingest(append(append([]string{}, sharedShapes...), extra))
				if res := <-r.Pool().Submit(id, "manual", 0, false); res.err != nil {
					t.Errorf("%s round %d: %v", id, round, res.err)
					return
				}
			}
		}()
	}
	wg.Wait()

	seen := map[string]bool{}
	for i := 0; i < tenants; i++ {
		id := fmt.Sprintf("t%d", i)
		svc := r.Get(id).Service
		if svc.Recommendation() == nil {
			t.Errorf("%s: no recommendation after 3 retunes", id)
		}
		for _, sum := range svc.Sessions() {
			if sum.Tenant != id {
				t.Errorf("%s: session %s attributed to tenant %q", id, sum.ID, sum.Tenant)
			}
			if !strings.HasPrefix(sum.ID, id+"-s-") {
				t.Errorf("%s: session ID %q lacks tenant prefix", id, sum.ID)
			}
			if seen[sum.ID] {
				t.Errorf("session ID %q minted by two services", sum.ID)
			}
			seen[sum.ID] = true
		}
	}
	if got := r.Pool().Completed(); got != tenants*3 {
		t.Errorf("pool completed %d sessions, want %d", got, tenants*3)
	}
	if stats := r.FragmentCache().Stats(); stats.SharedHits == 0 {
		t.Errorf("no cross-tenant fragment reuse across %d identical tenants: %+v", tenants, stats)
	}
}

// TestFleetAddValidation covers the registration error paths.
func TestFleetAddValidation(t *testing.T) {
	r := newTestRegistry(t, Options{Workers: 1})
	cases := []TenantSpec{
		{ID: "", Database: "tpch"},
		{ID: "Bad-Caps", Database: "tpch"},
		{ID: "-lead", Database: "tpch"},
		{ID: "trail-", Database: "tpch"},
		{ID: strings.Repeat("x", 65), Database: "tpch"},
		{ID: "ok", Database: ""},
		{ID: "ok", Database: "nosuchdb"},
	}
	for _, spec := range cases {
		if _, err := r.Add(spec); err == nil {
			t.Errorf("Add(%+v) accepted, want error", spec)
		}
	}
	if _, err := r.Add(TenantSpec{ID: "ok", Database: "tpch"}); err != nil {
		t.Fatalf("valid add: %v", err)
	}
	if _, err := r.Add(TenantSpec{ID: "ok", Database: "tpch"}); err == nil {
		t.Error("duplicate add accepted, want error")
	}
	if err := r.Remove("ok"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if err := r.Remove("ok"); err == nil {
		t.Error("double remove accepted, want error")
	}
	if r.Get("ok") != nil {
		t.Error("removed tenant still resolvable")
	}
}

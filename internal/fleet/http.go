package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// errorResponse is the uniform JSON error shape (matches the
// single-tenant service surface).
type errorResponse struct {
	Error string `json:"error"`
}

// ingestRequest mirrors the tenant service's POST /ingest payload; the
// fleet layer decodes it itself so the quota sees the batch size before
// any statement is admitted.
type ingestRequest struct {
	Statements []string `json:"statements"`
}

// retuneRequest mirrors the tenant service's POST /retune payload.
type retuneRequest struct {
	BudgetMB *float64 `json:"budget_mb,omitempty"`
}

type retuneResponse struct {
	Recommendation *service.Recommendation `json:"recommendation"`
}

// tenantsResponse wraps GET /tenants.
type tenantsResponse struct {
	Tenants []TenantStatus `json:"tenants"`
}

// readyResponse mirrors the single-tenant GET /readyz payload.
type readyResponse struct {
	Ready   bool     `json:"ready"`
	Reasons []string `json:"reasons,omitempty"`
}

// fleetAlerts is the GET /alerts payload: the rollup plus every
// tenant's full alert-engine status.
type fleetAlerts struct {
	Rollup  AlertRollup                `json:"rollup"`
	Tenants map[string]obs.AlertStatus `json:"tenants"`
}

// fleetMetricsJSON is the GET /metrics JSON payload: fleet-wide status
// plus each tenant's full service snapshot.
type fleetMetricsJSON struct {
	Fleet   Status                             `json:"fleet"`
	Tenants map[string]service.MetricsSnapshot `json:"tenants"`
}

// NewHandler exposes the fleet over HTTP/JSON:
//
//	POST   /tenants                register a tenant (TenantSpec body)
//	GET    /tenants                list tenants with live status
//	GET    /tenants/{tenant}       one tenant's status row
//	DELETE /tenants/{tenant}       deregister (drains its retune first)
//	ANY    /tenants/{tenant}/...   the full single-tenant API, scoped:
//	                               /ingest /recommendation /retune
//	                               /sessions /diff /progress /metrics ...
//	GET    /fleet                  fleet-wide status snapshot
//	GET    /metrics                all tenants + fleet counters (JSON;
//	                               Prometheus text with a tenant label
//	                               per series when Accept: text/plain
//	                               or ?format=prometheus)
//	GET    /healthz                liveness (shared HealthStatus shape)
//	GET    /readyz                 readiness: 503 + Retry-After while the
//	                               shared retune pool is saturated
//	GET    /alerts                 per-tenant alert statuses + rollup
//	                               (?format=text for a plain rendering)
//
// Tenant-scoped ingest passes through the tenant's quota: over-rate
// batches are rejected whole with 429 and a Retry-After header. Tenant
// retunes run on the shared worker pool (serialized per tenant), not on
// the request goroutine's own schedule.
func NewHandler(r *Registry) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /tenants", func(w http.ResponseWriter, req *http.Request) {
		var spec TenantSpec
		if err := json.NewDecoder(req.Body).Decode(&spec); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON: " + err.Error()})
			return
		}
		t, err := r.Add(spec)
		if err != nil {
			status := http.StatusBadRequest
			if strings.Contains(err.Error(), "already registered") {
				status = http.StatusConflict
			}
			writeJSON(w, status, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusCreated, r.tenantStatus(t))
	})

	mux.HandleFunc("GET /tenants", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, tenantsResponse{Tenants: r.Status().Tenants})
	})

	mux.HandleFunc("GET /tenants/{tenant}", func(w http.ResponseWriter, req *http.Request) {
		t := r.Get(req.PathValue("tenant"))
		if t == nil {
			writeUnknownTenant(w, req.PathValue("tenant"))
			return
		}
		writeJSON(w, http.StatusOK, r.tenantStatus(t))
	})

	mux.HandleFunc("DELETE /tenants/{tenant}", func(w http.ResponseWriter, req *http.Request) {
		id := req.PathValue("tenant")
		if err := r.Remove(id); err != nil {
			writeUnknownTenant(w, id)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"removed": id})
	})

	mux.HandleFunc("/tenants/{tenant}/{rest...}", func(w http.ResponseWriter, req *http.Request) {
		id := req.PathValue("tenant")
		t := r.Get(id)
		if t == nil {
			writeUnknownTenant(w, id)
			return
		}
		switch rest := req.PathValue("rest"); {
		case rest == "ingest" && req.Method == http.MethodPost:
			r.serveIngest(t, w, req)
		case rest == "retune" && req.Method == http.MethodPost:
			r.serveRetune(t, w, req)
		default:
			http.StripPrefix("/tenants/"+id, t.handler).ServeHTTP(w, req)
		}
	})

	mux.HandleFunc("GET /fleet", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.Status())
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, req *http.Request) {
		if wantsPrometheus(req) {
			r.renderPrometheus(w)
			return
		}
		out := fleetMetricsJSON{Fleet: r.Status(), Tenants: map[string]service.MetricsSnapshot{}}
		for _, t := range r.List() {
			out.Tenants[t.Spec.ID] = t.Service.MetricsSnapshot()
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.Health())
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, req *http.Request) {
		ready, reasons := r.Ready()
		serveFleetReady(w, req, ready, reasons)
	})

	mux.HandleFunc("GET /alerts", func(w http.ResponseWriter, req *http.Request) {
		if r.opts.Defaults.Monitor.HistoryInterval <= 0 {
			writeJSON(w, http.StatusConflict, errorResponse{
				Error: "self-monitoring disabled; start with -history-interval > 0",
			})
			return
		}
		out := fleetAlerts{Rollup: r.Status().Alerts, Tenants: map[string]obs.AlertStatus{}}
		tenants := r.List()
		for _, t := range tenants {
			out.Tenants[t.Spec.ID] = t.Service.Alerts().Status()
		}
		if wantsText(req) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintf(w, "fleet alerts: %d firing across %d tenants\n",
				out.Rollup.Firing, len(tenants))
			for _, t := range tenants {
				st := out.Tenants[t.Spec.ID]
				fmt.Fprintf(w, "\n=== tenant %s ===\n", t.Spec.ID)
				st.WriteText(w)
			}
			return
		}
		writeJSON(w, http.StatusOK, out)
	})

	return mux
}

// serveFleetReady mirrors the single-tenant /readyz contract: 200 when
// ready, 503 + Retry-After when not, text or JSON by ?format.
func serveFleetReady(w http.ResponseWriter, req *http.Request, ready bool, reasons []string) {
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "5")
	}
	if wantsText(req) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(status)
		if ready {
			fmt.Fprintln(w, "ready")
			return
		}
		fmt.Fprintln(w, "not ready")
		for _, reason := range reasons {
			fmt.Fprintf(w, "  - %s\n", reason)
		}
		return
	}
	writeJSON(w, status, readyResponse{Ready: ready, Reasons: reasons})
}

// wantsText reports whether the request asked for the plain-text
// rendering of a JSON endpoint (?format=text).
func wantsText(r *http.Request) bool {
	return r.URL.Query().Get("format") == "text"
}

// tenantStatus builds one tenant's status row.
func (r *Registry) tenantStatus(t *Tenant) TenantStatus {
	for _, row := range r.Status().Tenants {
		if row.ID == t.Spec.ID {
			return row
		}
	}
	// Raced with removal; report the identity fields only.
	return TenantStatus{ID: t.Spec.ID, Database: t.Spec.Database, ScaleFactor: t.Spec.ScaleFactor, CreatedAt: t.CreatedAt}
}

// serveIngest is the quota-gated tenant ingest: the whole batch is
// admitted or the whole batch is rejected with 429 + Retry-After.
func (r *Registry) serveIngest(t *Tenant, w http.ResponseWriter, req *http.Request) {
	var body ingestRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON: " + err.Error()})
		return
	}
	if len(body.Statements) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "statements is empty"})
		return
	}
	if ok, retryAfter := t.quota.take(len(body.Statements), time.Now()); !ok {
		r.noteQuotaRejection(t)
		secs := int(retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{
			Error: fmt.Sprintf("tenant %s over ingestion quota (%g statements/s, burst %d); retry after %ds",
				t.Spec.ID, t.Spec.Quota.RatePerSec, t.Spec.Quota.Burst, secs),
		})
		return
	}
	writeJSON(w, http.StatusOK, t.Service.Ingest(body.Statements))
}

// serveRetune runs a tenant retune through the shared worker pool —
// synchronous for the caller, serialized per tenant, fair across the
// fleet.
func (r *Registry) serveRetune(t *Tenant, w http.ResponseWriter, req *http.Request) {
	var body retuneRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil && !errors.Is(err, io.EOF) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON: " + err.Error()})
		return
	}
	budget, override := int64(0), false
	if body.BudgetMB != nil {
		budget, override = int64(*body.BudgetMB*(1<<20)), true
	}
	ch := r.pool.Submit(t.Spec.ID, "manual", budget, override)
	select {
	case <-req.Context().Done():
		// The client left; the queued session still runs (its result
		// lands in the recorder), there is just no one to answer.
		return
	case res := <-ch:
		if res.err != nil {
			status := http.StatusInternalServerError
			switch {
			case errors.Is(res.err, service.ErrEmptyWindow):
				status = http.StatusConflict
			case errors.Is(res.err, ErrTenantRemoved), errors.Is(res.err, ErrPoolClosed):
				status = http.StatusGone
			}
			writeJSON(w, status, errorResponse{Error: res.err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, retuneResponse{Recommendation: res.rec})
	}
}

// renderPrometheus writes the fleet scrape: the fleet's own registry
// plain, then every tenant registry's families merged with a
// tenant="<id>" label on each sample.
func (r *Registry) renderPrometheus(w http.ResponseWriter) {
	r.metrics.refresh(r)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.metrics.reg.Render(w)
	tenants := r.List()
	regs := make([]obs.LabeledRegistry, 0, len(tenants))
	for _, t := range tenants {
		t.Service.RefreshPromGauges()
		regs = append(regs, obs.LabeledRegistry{Value: t.Spec.ID, Registry: t.Service.PromRegistry()})
	}
	obs.RenderMerged(w, "tenant", regs)
}

// writeUnknownTenant is the uniform 404 for a missing tenant ID.
func writeUnknownTenant(w http.ResponseWriter, id string) {
	writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown tenant %q", id)})
}

// wantsPrometheus mirrors the single-tenant /metrics content
// negotiation.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "prom", "text":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

func newTestServer(t *testing.T, opts Options) (*Registry, *httptest.Server) {
	t.Helper()
	r := newTestRegistry(t, opts)
	srv := httptest.NewServer(NewHandler(r))
	t.Cleanup(srv.Close)
	return r, srv
}

func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, data
}

// TestFleetHTTPLifecycle walks the fleet API end to end: register,
// ingest, pooled retune, tenant-scoped reads, status, and removal.
func TestFleetHTTPLifecycle(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 2})

	resp, body := doJSON(t, "POST", srv.URL+"/tenants", TenantSpec{ID: "alpha", Database: "tpch"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /tenants = %d: %s", resp.StatusCode, body)
	}
	if resp, body = doJSON(t, "POST", srv.URL+"/tenants", TenantSpec{ID: "alpha", Database: "tpch"}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate POST /tenants = %d: %s", resp.StatusCode, body)
	}
	if resp, body = doJSON(t, "POST", srv.URL+"/tenants", TenantSpec{ID: "UPPER", Database: "tpch"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid-ID POST /tenants = %d: %s", resp.StatusCode, body)
	}

	resp, body = doJSON(t, "POST", srv.URL+"/tenants/alpha/ingest",
		map[string][]string{"statements": sharedShapes})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d: %s", resp.StatusCode, body)
	}
	var ing struct {
		Accepted int `json:"accepted"`
	}
	if err := json.Unmarshal(body, &ing); err != nil || ing.Accepted != len(sharedShapes) {
		t.Fatalf("ingest accepted %d (%v): %s", ing.Accepted, err, body)
	}

	if resp, body = doJSON(t, "GET", srv.URL+"/tenants/alpha/recommendation", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("recommendation before retune = %d: %s", resp.StatusCode, body)
	}

	resp, body = doJSON(t, "POST", srv.URL+"/tenants/alpha/retune", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retune = %d: %s", resp.StatusCode, body)
	}
	var ret struct {
		Recommendation struct {
			DDL string `json:"ddl"`
		} `json:"recommendation"`
	}
	if err := json.Unmarshal(body, &ret); err != nil || ret.Recommendation.DDL == "" {
		t.Fatalf("retune response (%v): %s", err, body)
	}

	resp, body = doJSON(t, "GET", srv.URL+"/tenants/alpha/sessions", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"alpha-s-000001"`) {
		t.Fatalf("sessions = %d: %s", resp.StatusCode, body)
	}
	if resp, body = doJSON(t, "GET", srv.URL+"/tenants/alpha/sessions/alpha-s-000001", nil); resp.StatusCode != http.StatusOK ||
		!strings.Contains(string(body), `"tenant":"alpha"`) {
		t.Fatalf("session fetch = %d: %s", resp.StatusCode, body)
	}

	resp, body = doJSON(t, "GET", srv.URL+"/fleet", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /fleet = %d", resp.StatusCode)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("fleet status: %v", err)
	}
	if len(st.Tenants) != 1 || st.Tenants[0].ID != "alpha" || st.Tenants[0].Retunes != 1 {
		t.Fatalf("fleet status %+v", st)
	}

	if resp, _ = doJSON(t, "GET", srv.URL+"/tenants/nosuch/recommendation", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant = %d, want 404", resp.StatusCode)
	}

	if resp, body = doJSON(t, "DELETE", srv.URL+"/tenants/alpha", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d: %s", resp.StatusCode, body)
	}
	if resp, _ = doJSON(t, "GET", srv.URL+"/tenants/alpha/sessions", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("removed tenant = %d, want 404", resp.StatusCode)
	}
}

// TestFleetHTTPQuota: over-rate ingestion answers 429 with Retry-After
// and counts a rejection; the batch is rejected whole.
func TestFleetHTTPQuota(t *testing.T) {
	r, srv := newTestServer(t, Options{Workers: 1})
	if _, err := r.Add(TenantSpec{ID: "metered", Database: "tpch",
		Quota: QuotaSpec{RatePerSec: 1, Burst: len(sharedShapes)}}); err != nil {
		t.Fatalf("add: %v", err)
	}

	resp, body := doJSON(t, "POST", srv.URL+"/tenants/metered/ingest",
		map[string][]string{"statements": sharedShapes})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first ingest = %d: %s", resp.StatusCode, body)
	}
	resp, body = doJSON(t, "POST", srv.URL+"/tenants/metered/ingest",
		map[string][]string{"statements": sharedShapes})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota ingest = %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	snap := r.Get("metered").Service.MetricsSnapshot()
	if snap.StatementsIngested != int64(len(sharedShapes)) {
		t.Errorf("rejected batch partially ingested: %d statements", snap.StatementsIngested)
	}
	if got := r.Get("metered").quotaRejections(); got != 1 {
		t.Errorf("quota rejections = %d, want 1", got)
	}
	if st := r.Status(); st.Tenants[0].QuotaRejections != 1 {
		t.Errorf("status quota rejections = %d, want 1", st.Tenants[0].QuotaRejections)
	}
}

// TestFleetHTTPMetrics: the Prometheus exposition merges fleet counters
// with per-tenant series labeled tenant="<id>", each metric family
// declared exactly once.
func TestFleetHTTPMetrics(t *testing.T) {
	r, srv := newTestServer(t, Options{Workers: 2})
	for _, id := range []string{"m1", "m2"} {
		if _, err := r.Add(TenantSpec{ID: id, Database: "tpch"}); err != nil {
			t.Fatalf("add %s: %v", id, err)
		}
		r.Get(id).Service.Ingest(sharedShapes)
		retuneTenant(t, r, id)
	}

	resp, body := doJSON(t, "GET", srv.URL+"/metrics?format=prometheus", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"tuner_fleet_tenants 2",
		`tuner_fleet_retunes_total{tenant="m1"} 1`,
		`tuner_fleet_retunes_total{tenant="m2"} 1`,
		"tuner_fleet_cache_shared_hits_total",
		`tuner_retunes{tenant="m1"} 1`,
		`tuner_retunes{tenant="m2"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The second tenant reused the first's fragments.
	var shared float64
	if _, err := fmt.Sscanf(findLine(text, "tuner_fleet_cache_shared_hits_total "), "tuner_fleet_cache_shared_hits_total %f", &shared); err != nil {
		t.Fatalf("parsing shared-hits sample: %v", err)
	}
	if shared == 0 {
		t.Error("tuner_fleet_cache_shared_hits_total is 0 after overlapping retunes")
	}
	// Each family's HELP/TYPE header appears exactly once.
	for _, family := range []string{"tuner_retunes", "tuner_uptime_seconds", "tuner_fleet_tenants"} {
		if n := strings.Count(text, "# TYPE "+family+" "); n != 1 {
			t.Errorf("# TYPE %s appears %d times, want 1", family, n)
		}
	}

	// JSON mode returns per-tenant snapshots.
	resp, body = doJSON(t, "GET", srv.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("json metrics = %d", resp.StatusCode)
	}
	var js fleetMetricsJSON
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatalf("json metrics: %v", err)
	}
	if len(js.Tenants) != 2 || js.Tenants["m2"].Retunes != 1 {
		t.Fatalf("json metrics tenants: %+v", js.Tenants)
	}
	if js.Fleet.FragmentCache.SharedHits == 0 {
		t.Error("json metrics shared hits = 0")
	}
}

// TestFleetWorkloadAndExpositionLint: the tenant passthrough must scope
// GET /workload, and the merged fleet exposition must lint clean and
// contain every sample a single-tenant labeled render would produce.
func TestFleetWorkloadAndExpositionLint(t *testing.T) {
	r, srv := newTestServer(t, Options{Workers: 2})
	for _, id := range []string{"w1", "w2"} {
		if _, err := r.Add(TenantSpec{ID: id, Database: "tpch"}); err != nil {
			t.Fatalf("add %s: %v", id, err)
		}
		r.Get(id).Service.Ingest(sharedShapes)
		retuneTenant(t, r, id)
	}

	// Tenant-scoped workload introspection, JSON and text.
	resp, body := doJSON(t, "GET", srv.URL+"/tenants/w1/workload", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /tenants/w1/workload = %d: %s", resp.StatusCode, body)
	}
	var rep struct {
		Statements int `json:"statements"`
		Signatures []struct {
			Signature   string  `json:"signature"`
			WeightShare float64 `json:"weight_share"`
		} `json:"signatures"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("workload payload: %v", err)
	}
	if rep.Statements != len(sharedShapes) || len(rep.Signatures) == 0 {
		t.Fatalf("workload payload: %s", body)
	}
	resp, body = doJSON(t, "GET", srv.URL+"/tenants/w1/workload?format=text", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "signature") {
		t.Fatalf("text workload = %d: %s", resp.StatusCode, body)
	}
	if resp, body = doJSON(t, "GET", srv.URL+"/tenants/nope/workload", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant workload = %d: %s", resp.StatusCode, body)
	}

	// Merged exposition: structurally valid, and a superset of each
	// tenant's own labeled render.
	resp, body = doJSON(t, "GET", srv.URL+"/metrics?format=prometheus", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	merged := string(body)
	if probs := obs.LintExposition(strings.NewReader(merged)); len(probs) != 0 {
		t.Fatalf("fleet exposition lint: %v", probs)
	}
	var single bytes.Buffer
	r.Get("w1").Service.PromRegistry().RenderLabeled(&single, "tenant", "w1")
	for _, line := range strings.Split(strings.TrimSpace(single.String()), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(merged, line) {
			t.Errorf("merged exposition missing single-tenant sample %q", line)
		}
	}
	for _, series := range []string{
		`tuner_workload_signatures{tenant="w1"}`,
		`tuner_workload_topk_weight_share{tenant="w2"}`,
		`tuner_window_statements{tenant="w1",kind="select"}`,
	} {
		if !strings.Contains(merged, series) {
			t.Errorf("merged exposition missing %s", series)
		}
	}
}

// findLine returns the first exposition line starting with prefix.
func findLine(text, prefix string) string {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) {
			return line
		}
	}
	return ""
}

package fleet

import (
	"sync"

	"repro/internal/obs"
)

// fleetMetrics is the fleet-level Prometheus surface. Per-tenant search
// and service metrics live in each tenant's own registry and are merged
// into the scrape with a tenant label (obs.RenderMerged); this registry
// holds only what the fleet itself owns: the tenant count, pool queue
// depths, quota rejections, and the shared-cache counters that prove
// cross-tenant reuse.
type fleetMetrics struct {
	reg *obs.Registry

	tenants         *obs.Gauge
	queueDepth      *obs.GaugeVec
	inFlight        *obs.GaugeVec
	retunes         *obs.CounterVec
	quotaRejections *obs.CounterVec

	fragEntries      *obs.Gauge
	fragSharedHits   *obs.Counter
	fragHits         *obs.CounterVec
	costEntries      *obs.Gauge
	costSharedHits   *obs.Counter
	callsSaved       *obs.Gauge
	retunesCompleted *obs.Gauge

	// refreshMu serializes scrape-time refreshes; the set-to-value
	// counters (Add of the delta since the last scrape) need it.
	refreshMu sync.Mutex
}

func newFleetMetrics() *fleetMetrics {
	reg := obs.NewRegistry()
	return &fleetMetrics{
		reg:     reg,
		tenants: reg.NewGauge("tuner_fleet_tenants", "Registered fleet tenants."),
		queueDepth: reg.NewGaugeVec("tuner_fleet_queue_depth",
			"Retunes queued in the fleet worker pool, per tenant.", "tenant"),
		inFlight: reg.NewGaugeVec("tuner_fleet_inflight",
			"Whether a retune is running for the tenant (0 or 1).", "tenant"),
		retunes: reg.NewCounterVec("tuner_fleet_retunes_total",
			"Retune sessions completed by the fleet worker pool, per tenant.", "tenant"),
		quotaRejections: reg.NewCounterVec("tuner_fleet_quota_rejected_total",
			"Ingest requests rejected by the tenant's quota (HTTP 429).", "tenant"),
		fragEntries: reg.NewGauge("tuner_fleet_cache_entries",
			"Entries in the shared cross-tenant fragment cache."),
		fragSharedHits: reg.NewCounter("tuner_fleet_cache_shared_hits_total",
			"Fragment-cache hits on entries another tenant stored — cross-tenant reuse."),
		fragHits: reg.NewCounterVec("tuner_fleet_cache_hits_total",
			"Fragment-cache hits, attributed to the tenant that looked up.", "tenant"),
		costEntries: reg.NewGauge("tuner_fleet_cost_cache_entries",
			"Entries in the shared cross-tenant what-if cost cache."),
		costSharedHits: reg.NewCounter("tuner_fleet_cost_cache_shared_hits_total",
			"Cost-cache hits on entries another tenant computed."),
		callsSaved: reg.NewGauge("tuner_fleet_optimizer_calls_saved",
			"Optimizer calls avoided fleet-wide by fragment-cache hits."),
		retunesCompleted: reg.NewGauge("tuner_fleet_pool_retunes_completed",
			"Retune sessions completed by the worker pool since start."),
	}
}

// refresh brings the scrape-time metrics up to date from the registry
// state. Monotonic totals sourced from cache snapshots are advanced by
// their delta so they stay honest counters.
func (m *fleetMetrics) refresh(r *Registry) {
	m.refreshMu.Lock()
	defer m.refreshMu.Unlock()

	m.tenants.Set(float64(r.Len()))
	m.retunesCompleted.Set(float64(r.pool.Completed()))

	depths := r.pool.Depths()
	for _, t := range r.List() {
		id := t.Spec.ID
		d := depths[id]
		m.queueDepth.Set(id, float64(d.Queued))
		inf := 0.0
		if d.InFlight {
			inf = 1
		}
		m.inFlight.Set(id, inf)
	}

	frag := r.frags.Stats()
	m.fragEntries.Set(float64(frag.Entries))
	m.callsSaved.Set(float64(frag.CallsSaved))
	if d := float64(frag.SharedHits) - m.fragSharedHits.Value(); d > 0 {
		m.fragSharedHits.Add(d)
	}
	for origin, os := range frag.Origins {
		if origin == "" {
			continue
		}
		if d := float64(os.Hits) - m.fragHits.Value(origin); d > 0 {
			m.fragHits.Add(origin, d)
		}
	}

	cost := r.costs.Stats()
	m.costEntries.Set(float64(cost.Entries))
	if d := float64(cost.SharedHits) - m.costSharedHits.Value(); d > 0 {
		m.costSharedHits.Add(d)
	}
}

// forget drops a removed tenant's pool-state series so stale gauges
// don't linger in scrapes (its counters remain — history is history).
func (m *fleetMetrics) forget(id string) {
	m.queueDepth.Delete(id)
	m.inFlight.Delete(id)
}

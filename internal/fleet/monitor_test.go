package fleet

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

var fleetMonT0 = time.Date(2026, 3, 4, 5, 6, 7, 0, time.UTC)

// monitorDefaults is testDefaults plus an enabled (but quiescent —
// one-hour interval) self-monitoring subsystem; tests drive the
// sampler and engine by hand for determinism.
func monitorDefaults() service.Options {
	opts := testDefaults()
	opts.Monitor = service.MonitorOptions{HistoryInterval: time.Hour}
	return opts
}

// TestFleetMonitorEndToEnd covers the fleet observability surface:
// the shared health shape, fleet readiness, per-tenant alert rollup in
// /fleet, the /alerts aggregation endpoint, tenant-scoped passthrough
// of the single-tenant monitor endpoints, and a lint-clean merged
// exposition with engine meta-series present.
func TestFleetMonitorEndToEnd(t *testing.T) {
	r, srv := newTestServer(t, Options{Workers: 2, Defaults: monitorDefaults()})

	// Empty fleet: healthy, ready, zero tenants (key present).
	resp, body := doJSON(t, "GET", srv.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d: %s", resp.StatusCode, body)
	}
	var raw map[string]any
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	if raw["mode"] != "fleet" || raw["tenants"] != float64(0) || raw["ready"] != true {
		t.Fatalf("empty-fleet healthz: %v", raw)
	}
	if resp, _ = doJSON(t, "GET", srv.URL+"/readyz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("empty-fleet readyz = %d", resp.StatusCode)
	}

	// Two tenants; alpha retunes, beta stays cold.
	for _, id := range []string{"alpha", "beta"} {
		if resp, body = doJSON(t, "POST", srv.URL+"/tenants", TenantSpec{ID: id, Database: "tpch"}); resp.StatusCode != http.StatusCreated {
			t.Fatalf("add %s = %d: %s", id, resp.StatusCode, body)
		}
	}
	alpha := r.Get("alpha")
	alpha.Service.Ingest(sharedShapes)
	retuneTenant(t, r, "alpha")
	for _, tn := range r.List() {
		tn.Service.History().Sample(fleetMonT0)
		tn.Service.Alerts().Evaluate(fleetMonT0)
	}

	// Fleet status rolls alerts up; each tenant row carries its count.
	st := r.Status()
	if st.Alerts.Firing != 0 || st.Alerts.ByTenant == nil && len(st.Alerts.BySeverity) != 0 {
		t.Fatalf("fleet alert rollup: %+v", st.Alerts)
	}
	for _, row := range st.Tenants {
		if row.AlertsFiring != 0 {
			t.Fatalf("tenant %s alerts_firing = %d", row.ID, row.AlertsFiring)
		}
	}

	// Health after work: sessions and recommendation reach the payload.
	var health service.HealthStatus
	if resp, body = doJSON(t, "GET", srv.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Tenants == nil || *health.Tenants != 2 || !health.HasRec || health.Sessions < 1 {
		t.Fatalf("fleet healthz: %s", body)
	}

	// Fleet /alerts aggregates every tenant's engine status.
	var agg fleetAlerts
	if resp, body = doJSON(t, "GET", srv.URL+"/alerts", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("alerts = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &agg); err != nil {
		t.Fatal(err)
	}
	if len(agg.Tenants) != 2 || len(agg.Tenants["alpha"].Rules) != len(obs.DefaultAlertRules()) {
		t.Fatalf("alerts aggregation: %s", body)
	}
	if resp, body = doJSON(t, "GET", srv.URL+"/alerts?format=text", nil); resp.StatusCode != http.StatusOK ||
		!strings.Contains(string(body), "=== tenant alpha ===") {
		t.Fatalf("alerts text: %d %s", resp.StatusCode, body)
	}

	// The single-tenant monitor surface passes through tenant-scoped.
	if resp, _ = doJSON(t, "GET", srv.URL+"/tenants/alpha/readyz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("alpha readyz = %d", resp.StatusCode)
	}
	if resp, _ = doJSON(t, "GET", srv.URL+"/tenants/beta/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("beta readyz = %d, want 503", resp.StatusCode)
	}
	var snap obs.HistorySnapshot
	if resp, body = doJSON(t, "GET", srv.URL+"/tenants/alpha/metrics/history?series=tuner_retunes", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("alpha history = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Series) != 1 || snap.Series[0].Name != "tuner_retunes" {
		t.Fatalf("alpha history: %s", body)
	}

	// Merged exposition carries tenant-labeled meta-series, lint-clean.
	resp, body = doJSON(t, "GET", srv.URL+"/metrics?format=prometheus", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	text := string(body)
	if !strings.Contains(text, `tuner_alerts_firing{tenant="alpha"`) {
		t.Fatalf("merged exposition missing tenant-labeled meta-series:\n%s", text)
	}
	if problems := obs.LintExposition(strings.NewReader(text)); len(problems) != 0 {
		t.Fatalf("merged exposition lint: %v", problems)
	}
}

// TestFleetMonitorDisabled: a fleet whose defaults carry no history
// interval answers 409 on /alerts with the enabling hint.
func TestFleetMonitorDisabled(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1})
	resp, body := doJSON(t, "GET", srv.URL+"/alerts", nil)
	if resp.StatusCode != http.StatusConflict || !strings.Contains(string(body), "-history-interval") {
		t.Fatalf("disabled /alerts = %d: %s", resp.StatusCode, body)
	}
}

// TestFleetReadySaturation exercises the readiness predicate's two
// not-ready branches: a saturated retune pool (stuffed white-box so the
// test is deterministic) and a closed registry.
func TestFleetReadySaturation(t *testing.T) {
	r, srv := newTestServer(t, Options{Workers: 1})
	if ok, reasons := r.Ready(); !ok {
		t.Fatalf("idle fleet not ready: %v", reasons)
	}

	// Stuff a queue past readyQueueFactor*workers; inflight keeps the
	// workers from picking it, so the depth is stable when read.
	r.pool.mu.Lock()
	ghost := &tenantQueue{inflight: true}
	for i := 0; i < readyQueueFactor+2; i++ {
		ghost.jobs = append(ghost.jobs, &job{tenant: "ghost", trigger: "test"})
	}
	r.pool.queues["ghost"] = ghost
	r.pool.mu.Unlock()

	ok, reasons := r.Ready()
	if ok || len(reasons) != 1 || !strings.Contains(reasons[0], "retune pool saturated") {
		t.Fatalf("saturated Ready() = %v, %v", ok, reasons)
	}
	resp, body := doJSON(t, "GET", srv.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("saturated readyz = %d (Retry-After %q)", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	var ready readyResponse
	if err := json.Unmarshal(body, &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Ready || len(ready.Reasons) != 1 {
		t.Fatalf("saturated readyz payload: %s", body)
	}

	r.pool.mu.Lock()
	delete(r.pool.queues, "ghost")
	r.pool.mu.Unlock()
	if ok, reasons := r.Ready(); !ok {
		t.Fatalf("drained fleet not ready: %v", reasons)
	}

	r.Close()
	if ok, reasons := r.Ready(); ok || !strings.Contains(strings.Join(reasons, ";"), "registry closed") {
		t.Fatalf("closed Ready() = %v, %v", ok, reasons)
	}
}

package fleet

import (
	"errors"
	"sync"

	"repro/internal/service"
)

// ErrPoolClosed is returned to submitters whose retune was still queued
// when the pool shut down.
var ErrPoolClosed = errors.New("fleet: worker pool closed")

// ErrTenantRemoved is returned to submitters whose tenant was
// deregistered while their retune was still queued.
var ErrTenantRemoved = errors.New("fleet: tenant removed")

// runnerFunc executes one retune for a tenant; the registry supplies it
// so the pool stays ignorant of services and catalogs.
type runnerFunc func(tenant, trigger string, budget int64, overrideBudget bool) (*service.Recommendation, error)

// job is one queued retune. done == nil marks a fire-and-forget
// drift-triggered retune; synchronous submitters wait on done (buffered,
// so a worker never blocks on a departed submitter).
type job struct {
	tenant         string
	trigger        string
	budget         int64
	overrideBudget bool
	priority       bool
	seq            int64
	done           chan jobResult
}

type jobResult struct {
	rec *service.Recommendation
	err error
}

// tenantQueue is one tenant's pending retunes. inflight enforces the
// fleet invariant — at most one retune per tenant runs at a time — so
// tenants never contend with themselves for workers, and a worker is
// never parked on a tenant's session mutex.
type tenantQueue struct {
	jobs     []*job
	inflight bool
	// autoPending dedupes fire-and-forget retunes: drift may fire many
	// times while one retune is queued, but rerunning it buys nothing —
	// the retune reads the window at start time.
	autoPending bool
	removed     bool
}

// Pool shards retune sessions across a fleet of tenants: a fixed set of
// workers drains per-tenant FIFO queues, running at most one session
// per tenant at a time. Drift-triggered retunes are prioritized over
// interactively submitted ones — keeping recommendations fresh under
// load matters more than interactive latency — and within a priority
// class tenants are served oldest-job-first, so no tenant starves.
type Pool struct {
	run  runnerFunc
	logf func(format string, args ...any)

	mu        sync.Mutex
	cond      *sync.Cond
	queues    map[string]*tenantQueue
	seq       int64
	closed    bool
	wg        sync.WaitGroup
	workers   int
	completed int64
}

// newPool starts a pool of the given size (workers >= 1).
func newPool(workers int, run runnerFunc, logf func(string, ...any)) *Pool {
	if workers < 1 {
		workers = 1
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	p := &Pool{run: run, logf: logf, queues: map[string]*tenantQueue{}, workers: workers}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// queueLocked returns (creating if needed) tenant's queue.
func (p *Pool) queueLocked(tenant string) *tenantQueue {
	q, ok := p.queues[tenant]
	if !ok {
		q = &tenantQueue{}
		p.queues[tenant] = q
	}
	return q
}

// EnqueueAuto queues a fire-and-forget retune (the RetuneScheduler hook
// path: drift detection and TriggerRetune). Duplicate requests while
// one is still pending are coalesced.
func (p *Pool) EnqueueAuto(tenant, trigger string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	q := p.queueLocked(tenant)
	if q.removed || q.autoPending {
		return
	}
	q.autoPending = true
	p.seq++
	q.jobs = append(q.jobs, &job{tenant: tenant, trigger: trigger, priority: true, seq: p.seq})
	p.cond.Broadcast()
}

// Submit queues a synchronous retune and returns the channel its result
// will arrive on (buffered; the worker never blocks on it). Submissions
// against a closed pool or removed tenant fail immediately.
func (p *Pool) Submit(tenant, trigger string, budget int64, overrideBudget bool) <-chan jobResult {
	ch := make(chan jobResult, 1)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		ch <- jobResult{err: ErrPoolClosed}
		return ch
	}
	q := p.queueLocked(tenant)
	if q.removed {
		ch <- jobResult{err: ErrTenantRemoved}
		return ch
	}
	p.seq++
	q.jobs = append(q.jobs, &job{
		tenant: tenant, trigger: trigger,
		budget: budget, overrideBudget: overrideBudget,
		seq: p.seq, done: ch,
	})
	p.cond.Broadcast()
	return ch
}

// pickLocked selects the next runnable job: among tenants that have
// work and nothing in flight, a queue whose head is a priority
// (drift-triggered) job wins; ties and the rest go oldest-first.
func (p *Pool) pickLocked() (string, *tenantQueue) {
	var (
		bestID   string
		bestQ    *tenantQueue
		bestPrio bool
		bestSeq  int64
	)
	for id, q := range p.queues {
		if q.inflight || len(q.jobs) == 0 {
			continue
		}
		head := q.jobs[0]
		better := bestQ == nil ||
			(head.priority && !bestPrio) ||
			(head.priority == bestPrio && head.seq < bestSeq)
		if better {
			bestID, bestQ, bestPrio, bestSeq = id, q, head.priority, head.seq
		}
	}
	return bestID, bestQ
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		var (
			id string
			q  *tenantQueue
		)
		for {
			if p.closed {
				p.mu.Unlock()
				return
			}
			id, q = p.pickLocked()
			if q != nil {
				break
			}
			p.cond.Wait()
		}
		j := q.jobs[0]
		q.jobs = q.jobs[1:]
		q.inflight = true
		if j.done == nil {
			// From here on, new drift signals warrant a new retune: the
			// window will have moved past what this session reads.
			q.autoPending = false
		}
		p.mu.Unlock()

		rec, err := p.run(j.tenant, j.trigger, j.budget, j.overrideBudget)
		if j.done != nil {
			j.done <- jobResult{rec: rec, err: err}
		} else if err != nil {
			p.logf("fleet: tenant %s: %s retune failed: %v", j.tenant, j.trigger, err)
		}

		p.mu.Lock()
		q.inflight = false
		p.completed++
		if q.removed && len(q.jobs) == 0 && !q.inflight {
			delete(p.queues, id)
		}
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// DropTenant fails the tenant's queued jobs, waits for its in-flight
// retune (if any) to finish, and forgets the queue. After it returns,
// no pool worker touches the tenant's service again — the registry may
// safely close it.
func (p *Pool) DropTenant(tenant string) {
	p.mu.Lock()
	q, ok := p.queues[tenant]
	if !ok {
		// Mark-removed via an empty queue so a racing Submit fails.
		q = p.queueLocked(tenant)
	}
	q.removed = true
	for _, j := range q.jobs {
		if j.done != nil {
			j.done <- jobResult{err: ErrTenantRemoved}
		}
	}
	q.jobs = nil
	q.autoPending = false
	for q.inflight && !p.closed {
		p.cond.Wait()
	}
	delete(p.queues, tenant)
	p.mu.Unlock()
}

// Depths reports each tenant's queued job count and whether a retune is
// in flight.
func (p *Pool) Depths() map[string]QueueDepth {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]QueueDepth, len(p.queues))
	for id, q := range p.queues {
		out[id] = QueueDepth{Queued: len(q.jobs), InFlight: q.inflight}
	}
	return out
}

// QueueDepth is one tenant's pool state.
type QueueDepth struct {
	Queued   int  `json:"queued"`
	InFlight bool `json:"in_flight"`
}

// Completed returns the number of retunes the pool has finished.
func (p *Pool) Completed() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.completed
}

// Close stops the workers after their current sessions, failing every
// still-queued synchronous job with ErrPoolClosed.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for _, q := range p.queues {
		for _, j := range q.jobs {
			if j.done != nil {
				j.done <- jobResult{err: ErrPoolClosed}
			}
		}
		q.jobs = nil
		q.autoPending = false
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

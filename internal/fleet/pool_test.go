package fleet

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// gatedRunner is a stub runnerFunc whose executions block until
// released, recording per-tenant concurrency and execution order.
type gatedRunner struct {
	mu       sync.Mutex
	order    []string
	inUse    map[string]int
	maxInUse map[string]int
	calls    atomic.Int64
	gate     chan struct{} // receive to proceed; closed = free-running
}

func newGatedRunner(buffered int) *gatedRunner {
	return &gatedRunner{
		inUse:    map[string]int{},
		maxInUse: map[string]int{},
		gate:     make(chan struct{}, buffered),
	}
}

func (g *gatedRunner) run(tenant, trigger string, budget int64, override bool) (*service.Recommendation, error) {
	g.calls.Add(1)
	g.mu.Lock()
	g.order = append(g.order, tenant+"/"+trigger)
	g.inUse[tenant]++
	if g.inUse[tenant] > g.maxInUse[tenant] {
		g.maxInUse[tenant] = g.inUse[tenant]
	}
	g.mu.Unlock()
	<-g.gate
	g.mu.Lock()
	g.inUse[tenant]--
	g.mu.Unlock()
	return &service.Recommendation{}, nil
}

func (g *gatedRunner) executionOrder() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.order...)
}

// TestPoolPerTenantSerialization: many queued retunes for one tenant
// never run concurrently, even with spare workers.
func TestPoolPerTenantSerialization(t *testing.T) {
	g := newGatedRunner(0)
	close(g.gate) // free-running
	p := newPool(4, g.run, nil)
	defer p.Close()

	var chans []<-chan jobResult
	for i := 0; i < 12; i++ {
		chans = append(chans, p.Submit("t1", "manual", 0, false))
	}
	for _, ch := range chans {
		if res := <-ch; res.err != nil {
			t.Fatalf("submit: %v", res.err)
		}
	}
	if g.maxInUse["t1"] != 1 {
		t.Fatalf("tenant t1 ran %d sessions concurrently, want 1", g.maxInUse["t1"])
	}
	if got := g.calls.Load(); got != 12 {
		t.Fatalf("runner ran %d times, want 12", got)
	}
}

// TestPoolPriority: a drift-triggered (auto) retune queued later jumps
// ahead of an earlier manual submission once a worker frees up.
func TestPoolPriority(t *testing.T) {
	g := newGatedRunner(16)
	p := newPool(1, g.run, nil)
	defer p.Close()

	// Occupy the only worker.
	blocker := p.Submit("t0", "manual", 0, false)
	waitFor(t, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return len(g.order) == 1
	})

	manual := p.Submit("t1", "manual", 0, false)
	p.EnqueueAuto("t2", "auto")

	for i := 0; i < 3; i++ {
		g.gate <- struct{}{}
	}
	<-blocker
	if res := <-manual; res.err != nil {
		t.Fatalf("manual: %v", res.err)
	}
	waitFor(t, func() bool { return p.Completed() == 3 })

	order := g.executionOrder()
	if len(order) != 3 || order[1] != "t2/auto" || order[2] != "t1/manual" {
		t.Fatalf("execution order %v, want auto before manual", order)
	}
}

// TestPoolAutoDedupe: drift may fire many times while one auto retune is
// queued; only one session runs.
func TestPoolAutoDedupe(t *testing.T) {
	g := newGatedRunner(16)
	p := newPool(1, g.run, nil)
	defer p.Close()

	blocker := p.Submit("t0", "manual", 0, false)
	waitFor(t, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return len(g.order) == 1
	})
	for i := 0; i < 5; i++ {
		p.EnqueueAuto("t1", "auto")
	}
	g.gate <- struct{}{}
	g.gate <- struct{}{}
	<-blocker
	waitFor(t, func() bool { return p.Completed() == 2 })
	if got := g.calls.Load(); got != 2 {
		t.Fatalf("runner ran %d times, want 2 (blocker + one deduped auto)", got)
	}
}

// TestPoolDropTenant: queued synchronous jobs fail with
// ErrTenantRemoved, and DropTenant waits for the in-flight session.
func TestPoolDropTenant(t *testing.T) {
	g := newGatedRunner(16)
	p := newPool(1, g.run, nil)
	defer p.Close()

	inflight := p.Submit("t1", "manual", 0, false)
	waitFor(t, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return len(g.order) == 1
	})
	queued := p.Submit("t1", "manual", 0, false)

	dropped := make(chan struct{})
	go func() {
		p.DropTenant("t1")
		close(dropped)
	}()
	if res := <-queued; !errors.Is(res.err, ErrTenantRemoved) {
		t.Fatalf("queued job err = %v, want ErrTenantRemoved", res.err)
	}
	select {
	case <-dropped:
		t.Fatal("DropTenant returned while a session was in flight")
	case <-time.After(50 * time.Millisecond):
	}
	g.gate <- struct{}{}
	<-inflight
	select {
	case <-dropped:
	case <-time.After(2 * time.Second):
		t.Fatal("DropTenant did not return after the in-flight session finished")
	}
	// A fresh submit for the dropped tenant starts a new queue.
	ch := p.Submit("t1", "manual", 0, false)
	g.gate <- struct{}{}
	if res := <-ch; res.err != nil {
		t.Fatalf("resubmit after drop: %v", res.err)
	}
}

// TestPoolClose: still-queued synchronous jobs fail with ErrPoolClosed,
// and submits after close fail immediately.
func TestPoolClose(t *testing.T) {
	g := newGatedRunner(16)
	p := newPool(1, g.run, nil)

	inflight := p.Submit("t1", "manual", 0, false)
	waitFor(t, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return len(g.order) == 1
	})
	queued := p.Submit("t2", "manual", 0, false)

	closed := make(chan struct{})
	go func() {
		p.Close()
		close(closed)
	}()
	if res := <-queued; !errors.Is(res.err, ErrPoolClosed) {
		t.Fatalf("queued job err = %v, want ErrPoolClosed", res.err)
	}
	g.gate <- struct{}{}
	<-inflight
	<-closed
	if res := <-p.Submit("t3", "manual", 0, false); !errors.Is(res.err, ErrPoolClosed) {
		t.Fatalf("submit after close err = %v, want ErrPoolClosed", res.err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

package fleet

import (
	"math"
	"sync"
	"time"
)

// QuotaSpec is a per-tenant ingestion quota: a token bucket refilled at
// RatePerSec statements per second with capacity Burst. A zero value
// (or RatePerSec <= 0) means unlimited.
type QuotaSpec struct {
	// RatePerSec is the sustained statement admission rate (<= 0 =
	// unlimited; the bucket is then never consulted).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket capacity — the largest batch admissible at
	// once (default: ceil(RatePerSec), at least 1). Batches larger than
	// Burst can never be admitted whole; clients must split them.
	Burst int `json:"burst,omitempty"`
}

// unlimited reports whether the spec disables quota enforcement.
func (q QuotaSpec) unlimited() bool { return q.RatePerSec <= 0 }

// withDefaults fills Burst from the rate when unset.
func (q QuotaSpec) withDefaults() QuotaSpec {
	if q.unlimited() {
		return QuotaSpec{}
	}
	if q.Burst <= 0 {
		q.Burst = int(math.Ceil(q.RatePerSec))
		if q.Burst < 1 {
			q.Burst = 1
		}
	}
	return q
}

// tokenBucket enforces one tenant's QuotaSpec. A nil *tokenBucket
// admits everything, so unlimited tenants pay no locking.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// newTokenBucket builds the bucket for spec (nil when unlimited). The
// bucket starts full, so a tenant's first burst is always admitted.
func newTokenBucket(spec QuotaSpec, now time.Time) *tokenBucket {
	spec = spec.withDefaults()
	if spec.unlimited() {
		return nil
	}
	return &tokenBucket{
		rate:   spec.RatePerSec,
		burst:  float64(spec.Burst),
		tokens: float64(spec.Burst),
		last:   now,
	}
}

// take atomically admits n statements or rejects the whole batch —
// partial admission would silently drop statements the client believes
// were observed. On rejection, retryAfter is how long until n tokens
// will have accumulated (capped by what the burst allows; a batch
// larger than the burst can never succeed and reports the time to a
// full bucket).
func (b *tokenBucket) take(n int, now time.Time) (ok bool, retryAfter time.Duration) {
	if b == nil || n <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens = math.Min(b.burst, b.tokens+elapsed*b.rate)
	}
	b.last = now
	need := float64(n)
	if need <= b.tokens {
		b.tokens -= need
		return true, 0
	}
	missing := math.Min(need, b.burst) - b.tokens
	retryAfter = time.Duration(missing / b.rate * float64(time.Second))
	if retryAfter < time.Second {
		retryAfter = time.Second
	}
	return false, retryAfter
}

package fleet

import (
	"fmt"
	"testing"
	"time"
)

func TestTokenBucket(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := newTokenBucket(QuotaSpec{RatePerSec: 10, Burst: 20}, t0)

	if ok, _ := b.take(20, t0); !ok {
		t.Fatal("full bucket rejected a burst-sized batch")
	}
	ok, retry := b.take(1, t0)
	if ok {
		t.Fatal("empty bucket admitted a statement")
	}
	if retry < time.Second {
		t.Fatalf("retryAfter %v, want >= 1s floor", retry)
	}
	// 10 tokens/s: after 500ms, 5 tokens accumulated.
	if ok, _ := b.take(5, t0.Add(500*time.Millisecond)); !ok {
		t.Fatal("refilled tokens not admitted")
	}
	if ok, _ := b.take(1, t0.Add(500*time.Millisecond)); ok {
		t.Fatal("admitted beyond the refill")
	}
	// A batch larger than the burst can never succeed; retryAfter must
	// still be finite (time to a full bucket).
	ok, retry = b.take(1000, t0.Add(time.Hour))
	if ok {
		t.Fatal("admitted a batch larger than the burst")
	}
	if retry <= 0 || retry > 3*time.Second {
		t.Fatalf("oversized-batch retryAfter %v, want (0, 3s]", retry)
	}
}

func TestTokenBucketUnlimited(t *testing.T) {
	if b := newTokenBucket(QuotaSpec{}, time.Now()); b != nil {
		t.Fatal("zero quota should build a nil (unlimited) bucket")
	}
	var b *tokenBucket
	if ok, _ := b.take(1_000_000, time.Now()); !ok {
		t.Fatal("nil bucket rejected")
	}
}

func TestQuotaSpecDefaults(t *testing.T) {
	q := QuotaSpec{RatePerSec: 2.5}.withDefaults()
	if q.Burst != 3 {
		t.Fatalf("Burst = %d, want ceil(2.5) = 3", q.Burst)
	}
	if got := (QuotaSpec{RatePerSec: -1, Burst: 7}).withDefaults(); !got.unlimited() {
		t.Fatalf("negative rate should normalize to unlimited, got %+v", got)
	}
}

func TestSharedCostCache(t *testing.T) {
	c := NewSharedCostCache(3)
	if _, ok := c.Get("a", "t1"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", "t1", 1.5)
	if v, ok := c.Get("a", "t1"); !ok || v != 1.5 {
		t.Fatalf("Get(a) = %v %v", v, ok)
	}
	// Same key from another tenant: a shared hit.
	if _, ok := c.Get("a", "t2"); !ok {
		t.Fatal("cross-tenant get missed")
	}
	st := c.Stats()
	if st.SharedHits != 1 || st.Origins["t2"].SharedHits != 1 || st.Origins["t1"].SharedHits != 0 {
		t.Fatalf("shared-hit attribution wrong: %+v", st)
	}

	// LRU eviction: touch "a", insert past capacity, oldest untouched
	// entries fall out.
	c.Put("b", "t1", 2)
	c.Put("c", "t1", 3)
	c.Get("a", "t1")
	c.Put("d", "t1", 4) // evicts b (least recently used)
	if _, ok := c.Get("b", "t1"); ok {
		t.Fatal("LRU kept the least-recently-used entry")
	}
	if _, ok := c.Get("a", "t1"); !ok {
		t.Fatal("LRU evicted a recently-touched entry")
	}
	if st := c.Stats(); st.Entries != 3 || st.Evictions != 1 {
		t.Fatalf("entries/evictions = %d/%d, want 3/1", st.Entries, st.Evictions)
	}
}

func TestSharedCostCacheConcurrent(t *testing.T) {
	c := NewSharedCostCache(128)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			origin := fmt.Sprintf("t%d", g)
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%200)
				if _, ok := c.Get(key, origin); !ok {
					c.Put(key, origin, float64(i))
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if st := c.Stats(); st.Entries > 128 {
		t.Fatalf("cache exceeded capacity: %d entries", st.Entries)
	}
}

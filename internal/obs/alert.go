package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// AlertDuration is a time.Duration that marshals as a Go duration
// string ("30s", "5m") and additionally accepts bare numbers (seconds)
// when unmarshaling — the forgiving form for hand-written rule files.
type AlertDuration time.Duration

// MarshalJSON renders the duration string.
func (d AlertDuration) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(time.Duration(d).String())), nil
}

// UnmarshalJSON accepts "5m"-style strings or numeric seconds.
func (d *AlertDuration) UnmarshalJSON(b []byte) error {
	s := strings.TrimSpace(string(b))
	if len(s) > 1 && s[0] == '"' {
		unq, err := strconv.Unquote(s)
		if err != nil {
			return err
		}
		dur, err := time.ParseDuration(unq)
		if err != nil {
			return err
		}
		*d = AlertDuration(dur)
		return nil
	}
	secs, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("obs: duration %s: want \"30s\"-style string or seconds", s)
	}
	*d = AlertDuration(time.Duration(secs * float64(time.Second)))
	return nil
}

// Alert rule predicate kinds.
const (
	AlertKindThreshold = "threshold" // compare the latest sample
	AlertKindRate      = "rate"      // compare the per-second change over the lookback
	AlertKindAbsent    = "absent"    // fire when no fresh sample exists
)

// Alert severities, mildest first.
const (
	SeverityInfo     = "info"
	SeverityWarning  = "warning"
	SeverityCritical = "critical"
)

// Alert instance states.
const (
	AlertStateInactive = "inactive"
	AlertStatePending  = "pending" // predicate true, waiting out `for`
	AlertStateFiring   = "firing"
)

// AlertRule is one declarative SLO rule, evaluated against the metrics
// history every sampling tick. Rules are plain JSON — tunerd loads them
// from -alert-rules — and reference series by metric name with an
// optional label selector (`tuner_phase_alloc_bytes_total` matches
// every phase series; `...{phase="search"}` exactly one). A rule whose
// series never appears is inert, never an error, so one default ruleset
// serves both single-tenant and fleet deployments.
type AlertRule struct {
	// Name identifies the rule (required, unique); it becomes the `rule`
	// label of the meta-series.
	Name string `json:"name"`
	// Severity is info, warning, or critical (default warning).
	Severity string `json:"severity,omitempty"`
	// Metric names the series the predicate reads (required), with an
	// optional {label="value"} selector.
	Metric string `json:"metric"`
	// Kind selects the predicate: threshold (latest value), rate
	// (per-second change over the Over lookback), or absent (no sample
	// within Over). Default threshold.
	Kind string `json:"kind,omitempty"`
	// Op compares the observed value against Value: one of > < >= <=
	// (ignored by absent rules; default >).
	Op string `json:"op,omitempty"`
	// Value is the comparison bound.
	Value float64 `json:"value,omitempty"`
	// Per, when set, divides the observed value by the same-kind
	// aggregate of this series (summed across its matches) — how a rule
	// expresses a ratio such as cache hits per miss or alloc bytes per
	// optimizer call. A zero or missing denominator makes the sample "no
	// data" rather than a division blow-up.
	Per string `json:"per,omitempty"`
	// Over is the lookback for rate and absent predicates (0 = the whole
	// retained window).
	Over AlertDuration `json:"over,omitempty"`
	// For is the hysteresis duration, applied symmetrically: the
	// predicate must hold For before the alert fires, and must fail For
	// before a firing alert resolves. 0 = transition immediately.
	For AlertDuration `json:"for,omitempty"`
	// IgnoreZero treats an exact-zero observation as "no data" — for
	// gauges like tuner_replay_speedup_ratio where 0 means "never
	// measured", not "infinitely slow".
	IgnoreZero bool `json:"ignore_zero,omitempty"`
	// Summary is the human line surfaced with firings.
	Summary string `json:"summary,omitempty"`
}

// DefaultAlertRules is the built-in SLO ruleset tunerd evaluates when
// no -alert-rules file overrides it. Every rule references series the
// tuner already exports; rules over fleet-only series (quota 429s) are
// inert in single-tenant mode.
func DefaultAlertRules() []AlertRule {
	return []AlertRule{
		{
			Name: "retune-p95-latency", Severity: SeverityWarning,
			Metric: "tuner_retune_duration_seconds_p95",
			Kind:   AlertKindThreshold, Op: ">", Value: 30,
			For:     AlertDuration(time.Minute),
			Summary: "p95 retune latency above 30s",
		},
		{
			Name: "bound-violation-rate", Severity: SeverityWarning,
			Metric: "tuner_bound_violations_total",
			Kind:   AlertKindRate, Op: ">", Value: 0.05,
			Over: AlertDuration(5 * time.Minute), For: AlertDuration(time.Minute),
			Summary: "§3.3.2 ΔT penalty bound violated more than 3x/min — penalty ranking may be misled",
		},
		{
			Name: "eval-cache-collapse", Severity: SeverityWarning,
			Metric: "tuner_eval_cache_hits_total", Per: "tuner_eval_cache_misses_total",
			Kind: AlertKindRate, Op: "<", Value: 0.25,
			Over: AlertDuration(5 * time.Minute), For: AlertDuration(2 * time.Minute),
			Summary: "evaluation cache hit/miss ratio collapsed below 0.25",
		},
		{
			Name: "fragment-cache-collapse", Severity: SeverityWarning,
			Metric: "tuner_fragment_cache_hits_total", Per: "tuner_fragment_cache_misses_total",
			Kind: AlertKindRate, Op: "<", Value: 0.25,
			Over: AlertDuration(5 * time.Minute), For: AlertDuration(2 * time.Minute),
			Summary: "request-cache hit/miss ratio collapsed below 0.25 — warm starts are not warm",
		},
		{
			Name: "replay-regression", Severity: SeverityCritical,
			Metric: "tuner_replay_speedup_ratio",
			Kind:   AlertKindThreshold, Op: "<", Value: 1, IgnoreZero: true,
			For:     AlertDuration(30 * time.Second),
			Summary: "measured replay speedup below 1 — the recommendation regresses the incumbent",
		},
		{
			Name: "quota-429-rate", Severity: SeverityWarning,
			Metric: "tuner_fleet_quota_rejected_total",
			Kind:   AlertKindRate, Op: ">", Value: 1,
			Over: AlertDuration(time.Minute), For: AlertDuration(time.Minute),
			Summary: "tenants rejected by ingestion quota at more than 1 batch/s",
		},
		{
			Name: "progress-drops", Severity: SeverityInfo,
			Metric: "tuner_progress_events_dropped",
			Kind:   AlertKindRate, Op: ">", Value: 0,
			Over: AlertDuration(time.Minute), For: AlertDuration(time.Minute),
			Summary: "live progress subscribers are dropping events",
		},
		{
			Name: "alloc-creep", Severity: SeverityWarning,
			Metric: "tuner_phase_alloc_bytes_total", Per: "tuner_optimizer_calls_total",
			Kind: AlertKindRate, Op: ">", Value: 4e6,
			Over: AlertDuration(10 * time.Minute), For: AlertDuration(5 * time.Minute),
			Summary: "per-optimizer-call allocation creep above 4MB in one phase",
		},
	}
}

// ParseAlertRules decodes a rule file: either a bare JSON array of
// rules or an object {"rules": [...]}. Every rule is validated.
func ParseAlertRules(data []byte) ([]AlertRule, error) {
	var rules []AlertRule
	if err := json.Unmarshal(data, &rules); err != nil {
		var wrapped struct {
			Rules []AlertRule `json:"rules"`
		}
		if err2 := json.Unmarshal(data, &wrapped); err2 != nil {
			return nil, fmt.Errorf("obs: alert rules: %w", err)
		}
		rules = wrapped.Rules
	}
	if len(rules) == 0 {
		return nil, errors.New("obs: alert rules: no rules defined")
	}
	seen := map[string]bool{}
	for i := range rules {
		if _, err := compileRule(rules[i]); err != nil {
			return nil, err
		}
		if seen[rules[i].Name] {
			return nil, fmt.Errorf("obs: alert rules: duplicate rule %q", rules[i].Name)
		}
		seen[rules[i].Name] = true
	}
	return rules, nil
}

// compiledRule is a validated rule with its selectors pre-parsed.
type compiledRule struct {
	rule    AlertRule
	name    string
	sel     map[string]string
	perName string
	perSel  map[string]string
	forDur  time.Duration
	over    time.Duration
}

func compileRule(r AlertRule) (*compiledRule, error) {
	if r.Name == "" {
		return nil, errors.New("obs: alert rule: name is required")
	}
	if r.Metric == "" {
		return nil, fmt.Errorf("obs: alert rule %s: metric is required", r.Name)
	}
	if r.Severity == "" {
		r.Severity = SeverityWarning
	}
	switch r.Severity {
	case SeverityInfo, SeverityWarning, SeverityCritical:
	default:
		return nil, fmt.Errorf("obs: alert rule %s: unknown severity %q", r.Name, r.Severity)
	}
	if r.Kind == "" {
		r.Kind = AlertKindThreshold
	}
	switch r.Kind {
	case AlertKindThreshold, AlertKindRate, AlertKindAbsent:
	default:
		return nil, fmt.Errorf("obs: alert rule %s: unknown kind %q", r.Name, r.Kind)
	}
	if r.Op == "" {
		r.Op = ">"
	}
	switch r.Op {
	case ">", "<", ">=", "<=":
	default:
		return nil, fmt.Errorf("obs: alert rule %s: unknown op %q", r.Name, r.Op)
	}
	if r.Per != "" && r.Kind == AlertKindAbsent {
		return nil, fmt.Errorf("obs: alert rule %s: per does not apply to absent rules", r.Name)
	}
	cr := &compiledRule{rule: r, forDur: time.Duration(r.For), over: time.Duration(r.Over)}
	var err error
	if cr.name, cr.sel, err = parseMetricSelector(r.Metric); err != nil {
		return nil, fmt.Errorf("obs: alert rule %s: %w", r.Name, err)
	}
	if r.Per != "" {
		if cr.perName, cr.perSel, err = parseMetricSelector(r.Per); err != nil {
			return nil, fmt.Errorf("obs: alert rule %s: per: %w", r.Name, err)
		}
	}
	return cr, nil
}

// parseMetricSelector splits `name{a="x",b="y"}` into the metric name
// and a label map (nil when unlabeled).
func parseMetricSelector(s string) (string, map[string]string, error) {
	open := strings.IndexByte(s, '{')
	if open < 0 {
		return s, nil, nil
	}
	if !strings.HasSuffix(s, "}") {
		return "", nil, fmt.Errorf("bad metric selector %q", s)
	}
	name := s[:open]
	body := s[open+1 : len(s)-1]
	sel := parseLabelPairs(body)
	if len(sel) == 0 {
		return "", nil, fmt.Errorf("bad metric selector %q", s)
	}
	return name, sel, nil
}

func (cr *compiledRule) compare(v float64) bool {
	switch cr.rule.Op {
	case ">":
		return v > cr.rule.Value
	case "<":
		return v < cr.rule.Value
	case ">=":
		return v >= cr.rule.Value
	default:
		return v <= cr.rule.Value
	}
}

// AlertTransition is one state change worth reporting: an alert started
// firing or resolved. Transitions are surfaced in GET /alerts, counted
// in the tuner_alert_transitions_total meta-series, handed to the
// OnTransition hook (the service logs them), and — with an AlertLog
// attached — persisted as JSONL so firings survive restarts.
type AlertTransition struct {
	Time      time.Time `json:"time"`
	Origin    string    `json:"origin,omitempty"` // tenant ID in fleet mode
	Rule      string    `json:"rule"`
	Severity  string    `json:"severity"`
	Series    string    `json:"series,omitempty"` // label pairs of the instance
	From      string    `json:"from"`
	To        string    `json:"to"` // "firing" or "resolved"
	Value     float64   `json:"value"`
	Threshold float64   `json:"threshold"`
	Summary   string    `json:"summary,omitempty"`
}

// AlertEngineOptions configure an alert engine.
type AlertEngineOptions struct {
	// Rules is the evaluated ruleset (obs.DefaultAlertRules for the
	// built-in SLOs). Invalid rules fail NewAlertEngine.
	Rules []AlertRule
	// Registry, when set, receives the meta-series
	// <prefix>_alerts_firing{rule,severity} and
	// <prefix>_alert_transitions_total{rule,to}.
	Registry *Registry
	// MetricPrefix defaults to "tuner".
	MetricPrefix string
	// Origin stamps transitions (the tenant ID in fleet mode).
	Origin string
	// OnTransition receives each firing/resolved transition after the
	// evaluation tick completes (never called re-entrantly under the
	// engine lock).
	OnTransition func(AlertTransition)
	// Log, when set, persists transitions and seeds the recent-
	// transitions buffer from its tail on startup.
	Log *AlertLog
	// MaxTransitions bounds the in-memory recent-transitions buffer
	// (default 128).
	MaxTransitions int
}

// AlertEngine evaluates declarative SLO rules over a metrics History.
// Evaluation is single-threaded by contract (the monitor worker ticks
// it); the public read surface is concurrency-safe. A nil *AlertEngine
// is a valid no-op engine.
type AlertEngine struct {
	hist     *History
	rules    []*compiledRule
	origin   string
	maxTrans int
	onTrans  func(AlertTransition)
	log      *AlertLog

	firingVec *GaugeVec2
	transVec  *CounterVec2

	mu          sync.Mutex
	states      map[string]*alertState
	transitions []AlertTransition
	evaluatedAt time.Time
	evals       int64
}

type alertState struct {
	rule       *compiledRule
	series     string
	state      string
	since      time.Time // entered pending/firing
	clearSince time.Time // firing predicate last went false
	lastValue  float64
}

// NewAlertEngine validates rules and builds an engine reading hist.
func NewAlertEngine(hist *History, opts AlertEngineOptions) (*AlertEngine, error) {
	if opts.MetricPrefix == "" {
		opts.MetricPrefix = "tuner"
	}
	if opts.MaxTransitions <= 0 {
		opts.MaxTransitions = 128
	}
	e := &AlertEngine{
		hist:     hist,
		origin:   opts.Origin,
		maxTrans: opts.MaxTransitions,
		onTrans:  opts.OnTransition,
		log:      opts.Log,
		states:   map[string]*alertState{},
	}
	seen := map[string]bool{}
	for _, r := range opts.Rules {
		cr, err := compileRule(r)
		if err != nil {
			return nil, err
		}
		if seen[cr.rule.Name] {
			return nil, fmt.Errorf("obs: alert rules: duplicate rule %q", cr.rule.Name)
		}
		seen[cr.rule.Name] = true
		e.rules = append(e.rules, cr)
	}
	if opts.Registry != nil {
		e.firingVec = opts.Registry.NewGaugeVec2(opts.MetricPrefix+"_alerts_firing",
			"Alert instances currently firing, by rule and severity (0 = healthy).", "rule", "severity")
		e.transVec = opts.Registry.NewCounterVec2(opts.MetricPrefix+"_alert_transitions_total",
			"Alert state transitions since start, by rule and destination state.", "rule", "to")
		// Seed every rule at zero so the series exist before anything
		// fires — dashboards and the fleet's tenant-labeled merge see a
		// stable series set from the first scrape.
		for _, cr := range e.rules {
			e.firingVec.Set(cr.rule.Name, cr.rule.Severity, 0)
			e.transVec.Add(cr.rule.Name, "firing", 0)
			e.transVec.Add(cr.rule.Name, "resolved", 0)
		}
	}
	if opts.Log != nil {
		// Restart persistence: the previous process's transitions stay
		// visible in GET /alerts.
		e.transitions = opts.Log.Recent(opts.MaxTransitions)
	}
	return e, nil
}

// Enabled reports whether the engine exists.
func (e *AlertEngine) Enabled() bool { return e != nil }

// RuleCount returns the number of configured rules.
func (e *AlertEngine) RuleCount() int {
	if e == nil {
		return 0
	}
	return len(e.rules)
}

// Rules returns the configured ruleset.
func (e *AlertEngine) Rules() []AlertRule {
	if e == nil {
		return nil
	}
	out := make([]AlertRule, len(e.rules))
	for i, cr := range e.rules {
		out[i] = cr.rule
	}
	return out
}

// Evaluations returns the number of completed evaluation ticks.
func (e *AlertEngine) Evaluations() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.evals
}

// observation is one (series, value) the predicate saw this tick.
type observation struct {
	series string // rendered label pairs ("" for unlabeled)
	value  float64
	ok     bool // false = no data (missing, stale, reset, zero denominator)
}

// Evaluate runs one tick: every rule's predicate over the current
// history, the `for` hysteresis state machines, the meta-series, and
// transition dispatch. The caller supplies the clock, which makes the
// engine a pure function of (samples, now) — replayable and
// deterministic under any tuner parallelism.
func (e *AlertEngine) Evaluate(now time.Time) {
	if e == nil {
		return
	}
	var fired []AlertTransition
	e.mu.Lock()
	e.evaluatedAt = now
	e.evals++
	for _, cr := range e.rules {
		var obsvs []observation
		if cr.rule.Kind == AlertKindAbsent {
			obsvs = []observation{e.observeAbsent(cr, now)}
		} else {
			obsvs = e.observeValued(cr, now)
		}
		seen := map[string]bool{}
		for _, o := range obsvs {
			seen[o.series] = true
			breach := o.ok && cr.compare(o.value)
			if cr.rule.Kind == AlertKindAbsent {
				breach = o.ok // for absent rules, ok means "is absent"
			}
			if tr, changed := e.step(cr, o.series, o.value, breach, now); changed {
				fired = append(fired, tr)
			}
		}
		// Instances whose series produced nothing this tick decay as
		// "predicate false" — a vanished signal resolves after `for`.
		// Keys are sorted so transition order never depends on map
		// iteration order.
		var decayed []string
		for key, st := range e.states {
			if st.rule == cr && !seen[st.series] {
				decayed = append(decayed, key)
			}
		}
		sort.Strings(decayed)
		for _, key := range decayed {
			st := e.states[key]
			if tr, changed := e.step(cr, st.series, st.lastValue, false, now); changed {
				fired = append(fired, tr)
			}
		}
	}
	// Refresh the firing meta-series to the post-tick counts.
	if e.firingVec != nil {
		counts := map[string]int{}
		for _, st := range e.states {
			if st.state == AlertStateFiring {
				counts[st.rule.rule.Name]++
			}
		}
		for _, cr := range e.rules {
			e.firingVec.Set(cr.rule.Name, cr.rule.Severity, float64(counts[cr.rule.Name]))
		}
	}
	for _, tr := range fired {
		e.transitions = append(e.transitions, tr)
		if e.transVec != nil {
			e.transVec.Add(tr.Rule, tr.To, 1)
		}
	}
	if over := len(e.transitions) - e.maxTrans; over > 0 {
		e.transitions = append([]AlertTransition(nil), e.transitions[over:]...)
	}
	e.mu.Unlock()

	// Hooks and persistence run outside the lock: they may scrape the
	// engine (slog handlers, recorders) without deadlocking.
	for _, tr := range fired {
		e.log.Append(tr)
		if e.onTrans != nil {
			e.onTrans(tr)
		}
	}
}

// observeValued computes the predicate input for each matching series.
func (e *AlertEngine) observeValued(cr *compiledRule, now time.Time) []observation {
	var out []observation
	e.hist.lockedView(cr.name, cr.sel, func(r *seriesRing) {
		v, ok := cr.extract(r, now)
		out = append(out, observation{series: r.labels, value: v, ok: ok})
	})
	if cr.rule.Per == "" || len(out) == 0 {
		return out
	}
	denom, denomOK := 0.0, false
	e.hist.lockedView(cr.perName, cr.perSel, func(r *seriesRing) {
		if v, ok := cr.extract(r, now); ok {
			denom += v
			denomOK = true
		}
	})
	for i := range out {
		if !out[i].ok {
			continue
		}
		if !denomOK || denom <= 0 {
			out[i].ok = false
			continue
		}
		out[i].value /= denom
	}
	return out
}

// observeAbsent reports whether the rule's series has any fresh sample;
// ok=true means "absent" (the breach condition).
func (e *AlertEngine) observeAbsent(cr *compiledRule, now time.Time) observation {
	cutoff := int64(0)
	if cr.over > 0 {
		cutoff = now.Add(-cr.over).UnixMilli()
	}
	present := false
	e.hist.lockedView(cr.name, cr.sel, func(r *seriesRing) {
		if t, _, ok := r.last(); ok && t >= cutoff {
			present = true
		}
	})
	return observation{ok: !present}
}

// extract computes one series' predicate input: the latest sample for
// threshold rules, the per-second change over the lookback for rate
// rules. Counter resets (negative deltas) and IgnoreZero zeros read as
// "no data".
func (cr *compiledRule) extract(r *seriesRing, now time.Time) (float64, bool) {
	switch cr.rule.Kind {
	case AlertKindRate:
		cutoff := int64(0)
		if cr.over > 0 {
			cutoff = now.Add(-cr.over).UnixMilli()
		}
		firstT, firstV := int64(-1), 0.0
		lastT, lastV := int64(-1), 0.0
		for i := 0; i < r.n; i++ {
			t, v := r.at(i)
			if t < cutoff {
				continue
			}
			if firstT < 0 {
				firstT, firstV = t, v
			}
			lastT, lastV = t, v
		}
		if firstT < 0 || lastT <= firstT {
			return 0, false
		}
		delta := lastV - firstV
		if delta < 0 {
			return 0, false // counter reset mid-window
		}
		return delta / (float64(lastT-firstT) / 1000.0), true
	default: // threshold
		_, v, ok := r.last()
		if !ok {
			return 0, false
		}
		if cr.rule.IgnoreZero && v == 0 {
			return 0, false
		}
		return v, true
	}
}

// step advances one instance's hysteresis state machine; the returned
// transition is meaningful only when changed is true. The `for`
// duration is symmetric: breach must hold that long before firing, and
// must stay clear that long before a firing instance resolves.
func (e *AlertEngine) step(cr *compiledRule, series string, value float64, breach bool, now time.Time) (AlertTransition, bool) {
	key := cr.rule.Name + "|" + series
	st := e.states[key]
	if st == nil {
		st = &alertState{rule: cr, series: series, state: AlertStateInactive}
		e.states[key] = st
	}
	st.lastValue = value
	mk := func(from, to string) AlertTransition {
		return AlertTransition{
			Time: now, Origin: e.origin,
			Rule: cr.rule.Name, Severity: cr.rule.Severity, Series: series,
			From: from, To: to,
			Value: value, Threshold: cr.rule.Value, Summary: cr.rule.Summary,
		}
	}
	switch st.state {
	case AlertStateInactive:
		if !breach {
			return AlertTransition{}, false
		}
		st.since = now
		if cr.forDur > 0 {
			st.state = AlertStatePending
			return AlertTransition{}, false
		}
		st.state = AlertStateFiring
		st.clearSince = time.Time{}
		return mk(AlertStateInactive, AlertStateFiring), true
	case AlertStatePending:
		if !breach {
			st.state = AlertStateInactive
			st.since = time.Time{}
			return AlertTransition{}, false
		}
		if now.Sub(st.since) >= cr.forDur {
			st.state = AlertStateFiring
			st.since = now
			st.clearSince = time.Time{}
			return mk(AlertStatePending, AlertStateFiring), true
		}
		return AlertTransition{}, false
	default: // firing
		if breach {
			st.clearSince = time.Time{}
			return AlertTransition{}, false
		}
		if st.clearSince.IsZero() {
			st.clearSince = now
		}
		if now.Sub(st.clearSince) >= cr.forDur {
			st.state = AlertStateInactive
			st.since = time.Time{}
			st.clearSince = time.Time{}
			return mk(AlertStateFiring, "resolved"), true
		}
		return AlertTransition{}, false
	}
}

// AlertInstance is one (rule, series) state row in GET /alerts.
type AlertInstance struct {
	Series string    `json:"series,omitempty"`
	State  string    `json:"state"`
	Value  float64   `json:"value"`
	Since  time.Time `json:"since"`
}

// AlertRuleStatus is one rule's row in GET /alerts: the rule, its worst
// instance state, and every non-inactive instance.
type AlertRuleStatus struct {
	Rule      AlertRule       `json:"rule"`
	State     string          `json:"state"`
	Instances []AlertInstance `json:"instances,omitempty"`
}

// AlertStatus is the GET /alerts payload.
type AlertStatus struct {
	EvaluatedAt time.Time         `json:"evaluated_at"`
	Evaluations int64             `json:"evaluations"`
	Firing      int               `json:"firing"`
	Pending     int               `json:"pending"`
	Rules       []AlertRuleStatus `json:"rules"`
	Transitions []AlertTransition `json:"recent_transitions"`
}

// Status snapshots every rule's state plus the recent transitions.
func (e *AlertEngine) Status() AlertStatus {
	if e == nil {
		return AlertStatus{Rules: []AlertRuleStatus{}, Transitions: []AlertTransition{}}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st := AlertStatus{
		EvaluatedAt: e.evaluatedAt,
		Evaluations: e.evals,
		Rules:       make([]AlertRuleStatus, 0, len(e.rules)),
		Transitions: append([]AlertTransition{}, e.transitions...),
	}
	for _, cr := range e.rules {
		row := AlertRuleStatus{Rule: cr.rule, State: AlertStateInactive}
		var keys []string
		for key, inst := range e.states {
			if inst.rule == cr && inst.state != AlertStateInactive {
				keys = append(keys, key)
			}
		}
		sort.Strings(keys)
		for _, key := range keys {
			inst := e.states[key]
			row.Instances = append(row.Instances, AlertInstance{
				Series: inst.series, State: inst.state, Value: inst.lastValue, Since: inst.since,
			})
			switch inst.state {
			case AlertStateFiring:
				st.Firing++
				row.State = AlertStateFiring
			case AlertStatePending:
				st.Pending++
				if row.State != AlertStateFiring {
					row.State = AlertStatePending
				}
			}
		}
		st.Rules = append(st.Rules, row)
	}
	return st
}

// FiringBySeverity counts firing instances per severity — the fleet's
// per-tenant rollup row.
func (e *AlertEngine) FiringBySeverity() map[string]int {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var out map[string]int
	for _, st := range e.states {
		if st.state != AlertStateFiring {
			continue
		}
		if out == nil {
			out = map[string]int{}
		}
		out[st.rule.rule.Severity]++
	}
	return out
}

// WriteText renders the status as the table served by
// GET /alerts?format=text.
func (s *AlertStatus) WriteText(w io.Writer) {
	fmt.Fprintf(w, "alerts: %d firing, %d pending (%d rules, %d evaluations)\n",
		s.Firing, s.Pending, len(s.Rules), s.Evaluations)
	fmt.Fprintf(w, "%-24s %-9s %-8s %-12s %s\n", "RULE", "SEVERITY", "STATE", "VALUE", "SERIES")
	for _, r := range s.Rules {
		if len(r.Instances) == 0 {
			fmt.Fprintf(w, "%-24s %-9s %-8s %-12s %s\n", r.Rule.Name, r.Rule.Severity, r.State, "-", "")
			continue
		}
		for _, inst := range r.Instances {
			fmt.Fprintf(w, "%-24s %-9s %-8s %-12.4g %s\n", r.Rule.Name, r.Rule.Severity, inst.State, inst.Value, inst.Series)
		}
	}
	if len(s.Transitions) > 0 {
		fmt.Fprintf(w, "\nrecent transitions (oldest first):\n")
		for _, tr := range s.Transitions {
			series := ""
			if tr.Series != "" {
				series = "{" + tr.Series + "}"
			}
			fmt.Fprintf(w, "  %s %s%s -> %s (value %.4g, threshold %.4g)\n",
				tr.Time.Format(time.RFC3339), tr.Rule, series, tr.To, tr.Value, tr.Threshold)
		}
	}
}

package obs

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// newAlertFixture builds a registry + history + engine trio with a
// 1-second sampling cadence and the given rules.
func newAlertFixture(t *testing.T, rules []AlertRule, opts AlertEngineOptions) (*Registry, *History, *AlertEngine) {
	t.Helper()
	reg := NewRegistry()
	hist := NewHistory(reg, HistoryOptions{Window: time.Minute, Interval: time.Second})
	opts.Rules = rules
	eng, err := NewAlertEngine(hist, opts)
	if err != nil {
		t.Fatal(err)
	}
	return reg, hist, eng
}

func TestAlertThresholdHysteresis(t *testing.T) {
	rules := []AlertRule{{
		Name: "depth-high", Metric: "t_depth",
		Kind: AlertKindThreshold, Op: ">", Value: 5,
		For: AlertDuration(2 * time.Second), Severity: SeverityCritical,
		Summary: "depth too high",
	}}
	var transitions []AlertTransition
	reg, hist, eng := newAlertFixture(t, rules, AlertEngineOptions{
		Registry:     reg0(t),
		OnTransition: func(tr AlertTransition) { transitions = append(transitions, tr) },
	})
	metaReg := engineRegistry(eng)
	g := reg.NewGauge("t_depth", "Depth.")

	tick := func(i int, v float64) {
		g.Set(v)
		now := histT0.Add(time.Duration(i) * time.Second)
		hist.Sample(now)
		eng.Evaluate(now)
	}

	// Below threshold: inactive.
	tick(0, 1)
	if st := eng.Status(); st.Firing != 0 || st.Pending != 0 {
		t.Fatalf("healthy tick: firing=%d pending=%d", st.Firing, st.Pending)
	}

	// Breach — pending until `for` elapses.
	tick(1, 10)
	if st := eng.Status(); st.Pending != 1 || st.Firing != 0 {
		t.Fatalf("first breach: firing=%d pending=%d, want pending", st.Firing, st.Pending)
	}
	tick(2, 10)
	tick(3, 10) // 2s since pending began → fires
	st := eng.Status()
	if st.Firing != 1 {
		t.Fatalf("after for-duration: firing=%d, want 1", st.Firing)
	}
	if st.Rules[0].State != AlertStateFiring {
		t.Errorf("rule state = %s, want firing", st.Rules[0].State)
	}
	if len(transitions) != 1 || transitions[0].To != AlertStateFiring || transitions[0].Rule != "depth-high" {
		t.Fatalf("transitions = %+v, want one →firing", transitions)
	}
	if v := metaReg.firing.Value("depth-high", SeverityCritical); v != 1 {
		t.Errorf("tuner_alerts_firing = %v, want 1", v)
	}
	if v := metaReg.trans.Value("depth-high", "firing"); v != 1 {
		t.Errorf("tuner_alert_transitions_total{to=firing} = %v, want 1", v)
	}

	// Clears, but must stay clear `for` before resolving.
	tick(4, 2)
	if st := eng.Status(); st.Firing != 1 {
		t.Fatalf("immediately after clear: firing=%d, want still 1 (hysteresis)", st.Firing)
	}
	tick(5, 2)
	tick(6, 2) // 2s clear → resolves
	if st := eng.Status(); st.Firing != 0 || st.Pending != 0 {
		t.Fatalf("after clear-duration: firing=%d pending=%d, want 0/0", st.Firing, st.Pending)
	}
	if len(transitions) != 2 || transitions[1].To != "resolved" {
		t.Fatalf("transitions = %+v, want firing then resolved", transitions)
	}
	if v := metaReg.firing.Value("depth-high", SeverityCritical); v != 0 {
		t.Errorf("tuner_alerts_firing after resolve = %v, want 0", v)
	}
	if v := metaReg.trans.Value("depth-high", "resolved"); v != 1 {
		t.Errorf("transitions_total{to=resolved} = %v, want 1", v)
	}

	// A flap shorter than `for` never fires.
	tick(7, 10)
	tick(8, 2)
	if st := eng.Status(); st.Firing != 0 {
		t.Fatalf("one-tick flap fired: %+v", st)
	}
	if len(transitions) != 2 {
		t.Fatalf("flap produced transitions: %+v", transitions)
	}
}

func TestAlertRateAndPerPredicates(t *testing.T) {
	rules := []AlertRule{
		{
			Name: "err-rate", Metric: "t_errors_total",
			Kind: AlertKindRate, Op: ">", Value: 0.5,
			Over: AlertDuration(10 * time.Second),
		},
		{
			Name: "hit-ratio", Metric: "t_hits_total", Per: "t_misses_total",
			Kind: AlertKindRate, Op: "<", Value: 0.25,
			Over: AlertDuration(10 * time.Second),
		},
	}
	reg, hist, eng := newAlertFixture(t, rules, AlertEngineOptions{})
	errs := reg.NewCounter("t_errors_total", "E.")
	hits := reg.NewCounter("t_hits_total", "H.")
	misses := reg.NewCounter("t_misses_total", "M.")

	tick := func(i int) {
		now := histT0.Add(time.Duration(i) * time.Second)
		hist.Sample(now)
		eng.Evaluate(now)
	}

	// Slow error rate, healthy hit ratio: nothing fires.
	for i := 0; i < 4; i++ {
		errs.Add(0.2) // 0.2/s < 0.5
		hits.Add(10)
		misses.Add(1)
		tick(i)
	}
	if st := eng.Status(); st.Firing != 0 {
		t.Fatalf("healthy rates fired: %+v", st.Rules)
	}

	// Error burst: 2/s > 0.5 → err-rate fires (For=0, immediate).
	for i := 4; i < 7; i++ {
		errs.Add(2)
		hits.Add(10)
		misses.Add(1)
		tick(i)
	}
	st := eng.Status()
	if ruleState(st, "err-rate") != AlertStateFiring {
		t.Fatalf("err-rate = %s, want firing; rules=%+v", ruleState(st, "err-rate"), st.Rules)
	}
	if ruleState(st, "hit-ratio") != AlertStateInactive {
		t.Fatalf("hit-ratio = %s, want inactive", ruleState(st, "hit-ratio"))
	}

	// Cache collapse: hits stall while misses surge. Run long enough
	// that the whole 10s lookback lies inside the collapse.
	for i := 7; i < 22; i++ {
		hits.Add(0.1)
		misses.Add(10)
		tick(i)
	}
	st = eng.Status()
	if ruleState(st, "hit-ratio") != AlertStateFiring {
		t.Fatalf("hit-ratio = %s, want firing after collapse; rules=%+v", ruleState(st, "hit-ratio"), st.Rules)
	}
}

func TestAlertRateCounterResetIsNoData(t *testing.T) {
	rules := []AlertRule{{
		Name: "r", Metric: "t_c_total",
		Kind: AlertKindRate, Op: ">", Value: 0,
		Over: AlertDuration(10 * time.Second),
	}}
	reg, hist, eng := newAlertFixture(t, rules, AlertEngineOptions{})
	c := reg.NewCounter("t_c_total", "C.")
	c.Add(100)
	hist.Sample(histT0)
	eng.Evaluate(histT0)
	// Simulate a restart reset by registering a fresh counter value below
	// the prior sample: inject via a second registry is overkill — a
	// negative delta can only appear through process restart, which the
	// ring sees as last < first. Emulate by pushing a smaller value
	// directly.
	hist.mu.Lock()
	hist.series["t_c_total"].push(histT0.Add(time.Second).UnixMilli(), 5)
	hist.mu.Unlock()
	eng.Evaluate(histT0.Add(time.Second))
	if st := eng.Status(); st.Firing != 0 || st.Pending != 0 {
		t.Fatalf("counter reset treated as breach: %+v", st.Rules)
	}
}

func TestAlertAbsentAndIgnoreZero(t *testing.T) {
	rules := []AlertRule{
		{
			Name: "heartbeat-absent", Metric: "t_beat",
			Kind: AlertKindAbsent, Over: AlertDuration(3 * time.Second),
		},
		{
			Name: "speedup-low", Metric: "t_speedup",
			Kind: AlertKindThreshold, Op: "<", Value: 1, IgnoreZero: true,
		},
	}
	reg, hist, eng := newAlertFixture(t, rules, AlertEngineOptions{})
	speedup := reg.NewGauge("t_speedup", "S.")

	// t_beat never registered → absent fires immediately (For=0).
	// t_speedup is 0 → IgnoreZero keeps speedup-low quiet.
	hist.Sample(histT0)
	eng.Evaluate(histT0)
	st := eng.Status()
	if ruleState(st, "heartbeat-absent") != AlertStateFiring {
		t.Fatalf("absent rule = %s, want firing", ruleState(st, "heartbeat-absent"))
	}
	if ruleState(st, "speedup-low") != AlertStateInactive {
		t.Fatalf("ignore_zero breached on zero: %+v", st.Rules)
	}

	// The series appears and is fresh → absent resolves. A real sub-1
	// speedup now breaches.
	beat := reg.NewGauge("t_beat", "B.")
	beat.Set(1)
	speedup.Set(0.8)
	now := histT0.Add(time.Second)
	hist.Sample(now)
	eng.Evaluate(now)
	st = eng.Status()
	if ruleState(st, "heartbeat-absent") != AlertStateInactive {
		t.Fatalf("absent rule after series appeared = %s, want inactive", ruleState(st, "heartbeat-absent"))
	}
	if ruleState(st, "speedup-low") != AlertStateFiring {
		t.Fatalf("speedup 0.8 did not fire: %+v", st.Rules)
	}

	// The series goes stale past Over → absent fires again.
	now = histT0.Add(10 * time.Second)
	eng.Evaluate(now)
	if st := eng.Status(); ruleState(st, "heartbeat-absent") != AlertStateFiring {
		t.Fatalf("stale series did not re-fire absent rule: %+v", st.Rules)
	}
}

func TestAlertLabeledInstancesAndDecay(t *testing.T) {
	rules := []AlertRule{{
		Name: "phase-alloc", Metric: `t_alloc{phase="search"}`,
		Kind: AlertKindThreshold, Op: ">", Value: 100,
	}}
	reg, hist, eng := newAlertFixture(t, rules, AlertEngineOptions{})
	gv := reg.NewGaugeVec("t_alloc", "A.", "phase")
	gv.Set("search", 500)
	gv.Set("eval", 500) // does not match the selector
	hist.Sample(histT0)
	eng.Evaluate(histT0)
	st := eng.Status()
	if st.Firing != 1 {
		t.Fatalf("selector matched %d instances, want 1: %+v", st.Firing, st.Rules)
	}
	if got := st.Rules[0].Instances[0].Series; got != `phase="search"` {
		t.Errorf("instance series = %q, want phase=\"search\"", got)
	}
}

func TestAlertEngineDeterminism(t *testing.T) {
	run := func() []AlertTransition {
		rules := []AlertRule{
			{Name: "a", Metric: "t_x", Op: ">", Value: 1},
			{Name: "b", Metric: "t_y", Op: ">", Value: 1},
			{Name: "c", Metric: "t_z", Kind: AlertKindAbsent},
		}
		reg, hist, eng := newAlertFixture(t, rules, AlertEngineOptions{})
		x := reg.NewGauge("t_x", "X.")
		y := reg.NewGauge("t_y", "Y.")
		for i := 0; i < 10; i++ {
			x.Set(float64(i % 4))
			y.Set(float64((i + 2) % 4))
			now := histT0.Add(time.Duration(i) * time.Second)
			hist.Sample(now)
			eng.Evaluate(now)
		}
		return eng.Status().Transitions
	}
	first := run()
	if len(first) == 0 {
		t.Fatal("determinism fixture produced no transitions")
	}
	for i := 0; i < 5; i++ {
		if again := run(); !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d diverged:\n%+v\nvs\n%+v", i, again, first)
		}
	}
}

func TestAlertStatusTextRendering(t *testing.T) {
	rules := []AlertRule{{Name: "depth", Metric: "t_d", Op: ">", Value: 1, Summary: "deep"}}
	reg, hist, eng := newAlertFixture(t, rules, AlertEngineOptions{})
	reg.NewGauge("t_d", "D.").Set(5)
	hist.Sample(histT0)
	eng.Evaluate(histT0)
	var sb strings.Builder
	st := eng.Status()
	st.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"1 firing", "depth", "firing", "recent transitions"} {
		if !strings.Contains(out, want) {
			t.Errorf("text status missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultAlertRulesCompile(t *testing.T) {
	rules := DefaultAlertRules()
	if len(rules) < 7 {
		t.Fatalf("default ruleset has %d rules, want >= 7", len(rules))
	}
	_, _, eng := newAlertFixture(t, rules, AlertEngineOptions{})
	if eng.RuleCount() != len(rules) {
		t.Fatalf("engine kept %d of %d default rules", eng.RuleCount(), len(rules))
	}
	// Inert over an empty history: evaluating must not fire anything
	// except rules that are absent-kind (the defaults have none).
	eng.Evaluate(histT0)
	if st := eng.Status(); st.Firing != 0 || st.Pending != 0 {
		t.Fatalf("default rules fired on empty history: %+v", st.Rules)
	}
}

// TestParseAlertRulesExampleFile keeps the committed example rule file
// valid: it must parse, compile, and carry at least one rule of each
// documented kind.
func TestParseAlertRulesExampleFile(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "alert-rules.json"))
	if err != nil {
		t.Fatalf("reading example rule file: %v", err)
	}
	rules, err := ParseAlertRules(data)
	if err != nil {
		t.Fatalf("example rule file does not parse: %v", err)
	}
	kinds := map[string]bool{}
	for _, r := range rules {
		kinds[r.Kind] = true
	}
	if len(rules) < 3 || !kinds[AlertKindThreshold] || !kinds[AlertKindRate] || !kinds[AlertKindAbsent] {
		t.Fatalf("example rules lost coverage: %d rules, kinds %v", len(rules), kinds)
	}
	if _, err := NewAlertEngine(NewHistory(NewRegistry(), HistoryOptions{Interval: time.Second}),
		AlertEngineOptions{Rules: rules}); err != nil {
		t.Fatalf("example rules do not compile: %v", err)
	}
}

func TestParseAlertRulesForms(t *testing.T) {
	bare := `[{"name":"r1","metric":"t_x","op":">","value":3,"for":"30s"}]`
	rules, err := ParseAlertRules([]byte(bare))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || time.Duration(rules[0].For) != 30*time.Second {
		t.Fatalf("bare array parse = %+v", rules)
	}

	wrapped := `{"rules":[{"name":"r1","metric":"t_x","value":1,"for":15,"over":"2m"}]}`
	rules, err = ParseAlertRules([]byte(wrapped))
	if err != nil {
		t.Fatal(err)
	}
	if time.Duration(rules[0].For) != 15*time.Second || time.Duration(rules[0].Over) != 2*time.Minute {
		t.Fatalf("numeric-seconds / string durations parse = %+v", rules[0])
	}

	bad := []string{
		`[]`,                 // empty
		`[{"metric":"t_x"}]`, // no name
		`[{"name":"r"}]`,     // no metric
		`[{"name":"r","metric":"t_x","op":"!="}]`,                   // bad op
		`[{"name":"r","metric":"t_x","kind":"avg"}]`,                // bad kind
		`[{"name":"r","metric":"t_x","severity":"fatal"}]`,          // bad severity
		`[{"name":"r","metric":"t_x{"}]`,                            // bad selector
		`[{"name":"r","metric":"t_x"},{"name":"r","metric":"t_y"}]`, // dupe
		`[{"name":"r","metric":"t_x","kind":"absent","per":"t_y"}]`, // per on absent
		`[{"name":"r","metric":"t_x","for":"soon"}]`,                // bad duration
	}
	for _, src := range bad {
		if _, err := ParseAlertRules([]byte(src)); err == nil {
			t.Errorf("ParseAlertRules(%s) accepted invalid input", src)
		}
	}
}

func TestAlertLogPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "alerts.jsonl")

	log1, err := NewAlertLog(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	tr := AlertTransition{
		Time: histT0, Rule: "depth-high", Severity: SeverityWarning,
		From: AlertStatePending, To: AlertStateFiring, Value: 9, Threshold: 5,
	}
	log1.Append(tr)
	log1.Append(AlertTransition{Time: histT0.Add(time.Minute), Rule: "depth-high", To: "resolved"})
	if err := log1.Close(); err != nil {
		t.Fatal(err)
	}

	// A new process sees the previous transitions…
	log2, err := NewAlertLog(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	got := log2.Recent(0)
	if len(got) != 2 || got[0].Rule != "depth-high" || got[0].To != AlertStateFiring || got[1].To != "resolved" {
		t.Fatalf("reloaded transitions = %+v", got)
	}

	// …and an engine seeded with the log exposes them in Status.
	_, _, eng := newAlertFixture(t, []AlertRule{{Name: "depth-high", Metric: "t_d", Value: 5}},
		AlertEngineOptions{Log: log2})
	if trs := eng.Status().Transitions; len(trs) != 2 {
		t.Fatalf("engine seeded %d transitions from log, want 2", len(trs))
	}
}

func TestAlertLogCorruptLineAndCompaction(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "alerts.jsonl")
	seed := `{"time":"2026-01-02T03:04:05Z","rule":"ok","severity":"info","from":"inactive","to":"firing","value":1,"threshold":0}
{torn garbage
{"time":"2026-01-02T03:05:05Z","rule":"ok","severity":"info","from":"firing","to":"resolved","value":0,"threshold":0}
`
	if err := os.WriteFile(path, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	log, err := NewAlertLog(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if log.Len() != 2 {
		t.Fatalf("corrupt-line load kept %d entries, want 2", log.Len())
	}

	// Push past 2x the limit to force a compaction.
	for i := 0; i < 20; i++ {
		log.Append(AlertTransition{Time: histT0.Add(time.Duration(i) * time.Second), Rule: "flood", To: "firing"})
	}
	log.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(string(data)), "\n") + 1
	if lines > 8 {
		t.Fatalf("compaction left %d lines for limit 4", lines)
	}
	log2, err := NewAlertLog(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	recent := log2.Recent(0)
	if len(recent) != 4 || recent[3].Rule != "flood" {
		t.Fatalf("post-compaction tail = %+v", recent)
	}
}

func TestNilAlertEngineAndLog(t *testing.T) {
	var e *AlertEngine
	e.Evaluate(histT0)
	if e.Enabled() || e.RuleCount() != 0 || e.Rules() != nil || e.Evaluations() != 0 || e.FiringBySeverity() != nil {
		t.Error("nil engine should report zero values")
	}
	if st := e.Status(); len(st.Rules) != 0 || len(st.Transitions) != 0 {
		t.Error("nil engine status should be empty, not nil-panicking")
	}
	var l *AlertLog
	l.Append(AlertTransition{})
	if l.Len() != 0 || l.Recent(0) != nil || l.Close() != nil {
		t.Error("nil alert log should be a no-op")
	}
}

// ruleState finds one rule's aggregate state in a status payload.
func ruleState(st AlertStatus, name string) string {
	for _, r := range st.Rules {
		if r.Rule.Name == name {
			return r.State
		}
	}
	return "<missing>"
}

// reg0 returns a fresh registry for engine meta-series.
func reg0(t *testing.T) *Registry {
	t.Helper()
	return NewRegistry()
}

// engineRegistry exposes the engine's meta-series for assertions.
type metaSeries struct {
	firing *GaugeVec2
	trans  *CounterVec2
}

func engineRegistry(e *AlertEngine) metaSeries {
	return metaSeries{firing: e.firingVec, trans: e.transVec}
}

package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// AlertLog persists alert transitions as append-only JSONL, one
// AlertTransition per line — the flight-recorder discipline applied to
// alerting, so "what fired last night" survives a restart. Loading
// tolerates corrupt lines (a crashed writer loses at most its last
// line), and the file compacts once it doubles the retention limit.
//
// A nil *AlertLog is a valid no-op log.
type AlertLog struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	limit   int
	lines   int // lines currently in the file (including dropped tail)
	entries []AlertTransition
}

// DefaultAlertLogLimit bounds retained transitions when the caller
// passes 0.
const DefaultAlertLogLimit = 512

// NewAlertLog opens (creating if needed) a transition log at path,
// loading its tail. limit bounds the retained transitions (0 = 512);
// an empty path keeps the log in memory only.
func NewAlertLog(path string, limit int) (*AlertLog, error) {
	if limit <= 0 {
		limit = DefaultAlertLogLimit
	}
	l := &AlertLog{path: path, limit: limit}
	if path == "" {
		return l, nil
	}
	if err := l.load(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: alert log: %w", err)
	}
	l.f = f
	return l, nil
}

func (l *AlertLog) load() error {
	f, err := os.Open(l.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("obs: alert log: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		l.lines++
		var tr AlertTransition
		if err := json.Unmarshal(line, &tr); err != nil {
			continue // torn or corrupt line; keep what parses
		}
		l.entries = append(l.entries, tr)
		if len(l.entries) > l.limit {
			l.entries = l.entries[1:]
		}
	}
	return sc.Err()
}

// Append records one transition, best-effort: a write error never
// breaks alerting (the in-memory tail stays correct either way).
func (l *AlertLog) Append(tr AlertTransition) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, tr)
	if len(l.entries) > l.limit {
		l.entries = l.entries[1:]
	}
	if l.f == nil {
		return
	}
	data, err := json.Marshal(tr)
	if err != nil {
		return
	}
	if _, err := l.f.Write(append(data, '\n')); err != nil {
		return
	}
	l.lines++
	if l.lines > 2*l.limit {
		l.compactLocked()
	}
}

// compactLocked rewrites the file with only the retained tail.
func (l *AlertLog) compactLocked() {
	tmp := l.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return
	}
	w := bufio.NewWriter(f)
	for _, tr := range l.entries {
		data, err := json.Marshal(tr)
		if err != nil {
			continue
		}
		w.Write(data)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, l.path); err != nil {
		os.Remove(tmp)
		return
	}
	_ = l.f.Close()
	if nf, err := os.OpenFile(l.path, os.O_WRONLY|os.O_APPEND, 0o644); err == nil {
		l.f = nf
	} else {
		l.f = nil
	}
	l.lines = len(l.entries)
}

// Recent returns up to n retained transitions, oldest first (n <= 0 =
// all).
func (l *AlertLog) Recent(n int) []AlertTransition {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := l.entries
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return append([]AlertTransition(nil), out...)
}

// Len returns the number of retained transitions.
func (l *AlertLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Close flushes and closes the backing file.
func (l *AlertLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

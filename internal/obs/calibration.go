package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// CalibrationSchemaVersion identifies the serialized CalibrationReport
// layout for archived reports and the tunerbench regression gate.
// Version 2 added the execution-grounded sample stream (Ground) and the
// per-kind NonFinite counter.
const CalibrationSchemaVersion = 2

// CalibSample pairs one accepted relaxation step's §3.3.2 estimated ΔT
// upper bound with the ΔT the evaluation then realized. Kind labels the
// transformation that produced the step (merge-indexes, remove-view,
// ...; "multi" when several transformations were applied at once).
type CalibSample struct {
	Kind       string  `json:"kind"`
	EstDT      float64 `json:"est_dt"`
	RealizedDT float64 `json:"realized_dt"`
}

// WhatIfEconomy aggregates the optimizer-call economy of one tuning
// session: how much what-if work the paper's optimizations avoided.
type WhatIfEconomy struct {
	// OptimizerCalls is the total what-if optimizer invocations spent.
	OptimizerCalls int64 `json:"optimizer_calls"`
	// PlansReused counts per-query evaluations answered by the §3.3.2
	// optimality principle (parent plan still valid, zero calls);
	// PlansReoptimized counts the ones that had to call the optimizer.
	PlansReused      int64 `json:"plans_reused"`
	PlansReoptimized int64 `json:"plans_reoptimized"`
	// ShortcutPrunes counts evaluations aborted early by §3.5 shortcut
	// evaluation; DuplicateSkips counts configurations skipped because
	// their fingerprint was already evaluated.
	ShortcutPrunes int64 `json:"shortcut_prunes"`
	DuplicateSkips int64 `json:"duplicate_skips"`
	// CacheHits / CacheCallsSaved account the cross-session fragment
	// cache (zero unless Options.Cache is set).
	CacheHits       int64 `json:"cache_hits,omitempty"`
	CacheCallsSaved int64 `json:"cache_calls_saved,omitempty"`
	// Bounded evaluation-cache accounting: full-configuration evaluations
	// answered from the fingerprint-keyed LRU cache, the misses that had
	// to evaluate, and the entries evicted by the cap.
	EvalCacheHits      int64 `json:"eval_cache_hits,omitempty"`
	EvalCacheMisses    int64 `json:"eval_cache_misses,omitempty"`
	EvalCacheEvictions int64 `json:"eval_cache_evictions,omitempty"`
	// Speculative top-k accounting (parallel sessions only):
	// SpeculativeEvals counts runner-up candidate configurations
	// evaluated ahead of need; SpeculativeHits counts the ones a later
	// iteration actually consumed.
	SpeculativeEvals int64 `json:"speculative_evals,omitempty"`
	SpeculativeHits  int64 `json:"speculative_hits,omitempty"`
}

// ReuseRatio is the fraction of per-query evaluations that reused the
// parent plan instead of calling the optimizer.
func (e WhatIfEconomy) ReuseRatio() float64 {
	total := e.PlansReused + e.PlansReoptimized
	if total == 0 {
		return 0
	}
	return float64(e.PlansReused) / float64(total)
}

// KindCalibration scores the §3.3.2 bound for one transformation kind
// (or "overall"). The per-sample statistic is the tightness ratio
// realized/estimated: 1 means the upper bound is exact, below 1 the
// bound over-estimates (conservative, wasteful ranking), above 1 the
// bound was violated.
type KindCalibration struct {
	Kind    string `json:"kind"`
	Samples int    `json:"samples"`
	// Rated counts the samples with a positive estimate (the only ones
	// a tightness ratio is defined for).
	Rated int `json:"rated"`
	// MeanRatio / quantiles summarize realized/estimated over the
	// rated samples.
	MeanRatio float64 `json:"mean_ratio"`
	P50Ratio  float64 `json:"p50_ratio"`
	P90Ratio  float64 `json:"p90_ratio"`
	MaxRatio  float64 `json:"max_ratio"`
	// BoundViolations counts rated samples with realized > estimated
	// (the §3.3.2 bound failed to be an upper bound).
	BoundViolations int `json:"bound_violations"`
	// NonFinite counts rated samples whose tightness ratio overflowed or
	// was undefined (NaN/±Inf, e.g. a denormal-tiny estimate). They are
	// excluded from the ratio statistics so the report always
	// JSON-marshals (encoding/json rejects non-finite floats).
	NonFinite int `json:"non_finite,omitempty"`
	// RankCorrelation is the Spearman correlation between the estimated
	// and realized ΔT orderings: the penalty ranking only needs the
	// *order* to be right, so high rank correlation with loose ratios
	// still means trustworthy candidate selection. Zero when fewer than
	// two samples exist.
	RankCorrelation float64 `json:"rank_correlation"`
}

// CalibrationReport aggregates bound-calibration scores per
// transformation kind plus the session's optimizer-call economy — the
// measured answer to the paper's what-if economy claim.
type CalibrationReport struct {
	SchemaVersion int               `json:"schema_version"`
	Overall       KindCalibration   `json:"overall"`
	PerKind       []KindCalibration `json:"per_kind,omitempty"`
	Economy       WhatIfEconomy     `json:"economy"`
	// Ground is the execution-grounded second sample stream: the same
	// per-kind tightness scoring, but with "realized" ΔT measured by
	// actually replaying the workload through the executor instead of
	// estimated by another what-if call. Present only after a replay.
	Ground *GroundCalibration `json:"ground,omitempty"`
}

// GroundCalibration scores the cost model against measured execution:
// per-kind tightness of estimated ΔT against measured ΔT (normalized to
// the optimizer's cost unit), whether estimates at least order the
// replayed configurations correctly, and the measured speedup of the
// recommendation over the unindexed baseline.
type GroundCalibration struct {
	Overall KindCalibration   `json:"overall"`
	PerKind []KindCalibration `json:"per_kind,omitempty"`
	// ConfigRankCorrelation is the Spearman correlation between
	// estimated workload cost and measured wall time across all replayed
	// configurations — the "does the cost model order configurations
	// correctly?" number. 1 is a perfect ordering.
	ConfigRankCorrelation float64 `json:"config_rank_correlation"`
	// SpeedupMeasured is baseline measured wall time / recommended
	// measured wall time. Below 1 means the recommendation is measurably
	// *worse* than no tuning — the inversion the regress gate forbids.
	SpeedupMeasured float64 `json:"speedup_measured"`
	// SpeedupEstimated is the optimizer's predicted speedup for the same
	// pair of configurations at replay scale, for direct comparison.
	SpeedupEstimated float64 `json:"speedup_estimated"`
	// RowsScannedBaseline / RowsScannedRecommended compare the access-path
	// work of the two endpoint configurations (deterministic, noise-free).
	RowsScannedBaseline    int64 `json:"rows_scanned_baseline"`
	RowsScannedRecommended int64 `json:"rows_scanned_recommended"`
}

// Calibrate scores a session's est-vs-realized ΔT pairs. Samples with a
// non-positive estimate are counted but excluded from ratio statistics
// (a zero estimate admits no tightness ratio); a zero realized ΔT
// yields ratio 0 (the bound was maximally conservative).
func Calibrate(samples []CalibSample, economy WhatIfEconomy) *CalibrationReport {
	rep := &CalibrationReport{
		SchemaVersion: CalibrationSchemaVersion,
		Overall:       scoreKind("overall", samples),
		Economy:       economy,
	}
	byKind := map[string][]CalibSample{}
	var kinds []string
	for _, s := range samples {
		if _, ok := byKind[s.Kind]; !ok {
			kinds = append(kinds, s.Kind)
		}
		byKind[s.Kind] = append(byKind[s.Kind], s)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		rep.PerKind = append(rep.PerKind, scoreKind(k, byKind[k]))
	}
	return rep
}

// CalibrateGrounded extends Calibrate with the execution-grounded sample
// stream from a replay: the ground samples get the same per-kind scoring
// as the estimate-vs-estimate stream, plus the configuration-level rank
// correlation and measured speedup carried over from the replay report.
// A nil ground report degrades to plain Calibrate.
func CalibrateGrounded(samples []CalibSample, economy WhatIfEconomy, gt *GroundTruthReport) *CalibrationReport {
	rep := Calibrate(samples, economy)
	rep.AttachGroundTruth(gt)
	return rep
}

// AttachGroundTruth fills the report's Ground block from a replay
// report. nil is a no-op, so callers can attach unconditionally.
func (r *CalibrationReport) AttachGroundTruth(gt *GroundTruthReport) {
	if gt == nil {
		return
	}
	g := &GroundCalibration{
		Overall:               scoreKind("overall", gt.Samples),
		ConfigRankCorrelation: gt.RankCorrelation,
		SpeedupMeasured:       gt.SpeedupMeasured,
		SpeedupEstimated:      gt.SpeedupEstimated,
	}
	if base, rec := gt.Baseline(), gt.Recommended(); base != nil && rec != nil {
		g.RowsScannedBaseline = base.RowsScanned
		g.RowsScannedRecommended = rec.RowsScanned
	}
	byKind := map[string][]CalibSample{}
	var kinds []string
	for _, s := range gt.Samples {
		if _, ok := byKind[s.Kind]; !ok {
			kinds = append(kinds, s.Kind)
		}
		byKind[s.Kind] = append(byKind[s.Kind], s)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		g.PerKind = append(g.PerKind, scoreKind(k, byKind[k]))
	}
	r.Ground = g
}

func scoreKind(kind string, samples []CalibSample) KindCalibration {
	kc := KindCalibration{Kind: kind, Samples: len(samples)}
	var ratios []float64
	var est, realized []float64
	for _, s := range samples {
		if math.IsNaN(s.EstDT) || math.IsNaN(s.RealizedDT) ||
			math.IsInf(s.EstDT, 0) || math.IsInf(s.RealizedDT, 0) {
			kc.NonFinite++
			continue
		}
		est = append(est, s.EstDT)
		realized = append(realized, s.RealizedDT)
		if s.EstDT <= 0 {
			continue
		}
		r := s.RealizedDT / s.EstDT
		if math.IsNaN(r) || math.IsInf(r, 0) {
			// A denormal-tiny estimate can overflow the ratio even though
			// both inputs are finite; keep it out of the quantile math so
			// mean/p50/p90 (and the JSON encoding) stay well-defined.
			kc.NonFinite++
			continue
		}
		ratios = append(ratios, r)
		if s.RealizedDT > s.EstDT*(1+1e-9) {
			kc.BoundViolations++
		}
	}
	kc.Rated = len(ratios)
	if len(ratios) > 0 {
		sum := 0.0
		kc.MaxRatio = math.Inf(-1)
		for _, r := range ratios {
			sum += r
			if r > kc.MaxRatio {
				kc.MaxRatio = r
			}
		}
		kc.MeanRatio = sum / float64(len(ratios))
		sorted := append([]float64(nil), ratios...)
		sort.Float64s(sorted)
		kc.P50Ratio = quantileSorted(sorted, 0.50)
		kc.P90Ratio = quantileSorted(sorted, 0.90)
	}
	kc.RankCorrelation = Spearman(est, realized)
	return kc
}

// quantileSorted returns the q-quantile of an ascending slice using
// linear interpolation between closest ranks (the R-7 / numpy default).
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Spearman computes the Spearman rank-correlation coefficient between
// two equal-length series, using average ranks for ties. It returns 0
// for fewer than two samples or when either series is constant.
func Spearman(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ra := ranks(a)
	rb := ranks(b)
	// Pearson correlation of the rank vectors (exact under ties).
	n := float64(len(ra))
	var sa, sb float64
	for i := range ra {
		sa += ra[i]
		sb += rb[i]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range ra {
		da, db := ra[i]-ma, rb[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// ranks assigns 1-based ranks with ties receiving their average rank.
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return xs[idx[i]] < xs[idx[j]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Positions i..j share the same value; average their ranks.
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// WriteText renders the calibration report as a compact table.
func (r *CalibrationReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "%-16s %7s %7s %8s %8s %8s %6s %8s\n",
		"kind", "samples", "rated", "mean", "p50", "p90", "viol", "rankcorr")
	row := func(kc KindCalibration) {
		fmt.Fprintf(w, "%-16s %7d %7d %8.3f %8.3f %8.3f %6d %8.3f\n",
			kc.Kind, kc.Samples, kc.Rated, kc.MeanRatio, kc.P50Ratio, kc.P90Ratio,
			kc.BoundViolations, kc.RankCorrelation)
	}
	row(r.Overall)
	for _, kc := range r.PerKind {
		row(kc)
	}
	e := r.Economy
	fmt.Fprintf(w, "economy: %d optimizer calls; plans %d reused / %d re-optimized (%.0f%% reuse); %d shortcut prunes; %d duplicate skips",
		e.OptimizerCalls, e.PlansReused, e.PlansReoptimized, 100*e.ReuseRatio(), e.ShortcutPrunes, e.DuplicateSkips)
	if e.CacheHits > 0 || e.CacheCallsSaved > 0 {
		fmt.Fprintf(w, "; cache saved %d calls over %d hits", e.CacheCallsSaved, e.CacheHits)
	}
	fmt.Fprintln(w)
	if g := r.Ground; g != nil {
		fmt.Fprintln(w, "\nground truth (measured ΔT / estimated §3.3.2 bound, executor replay):")
		row(g.Overall)
		for _, kc := range g.PerKind {
			row(kc)
		}
		fmt.Fprintf(w, "measured speedup %.2fx (estimated %.2fx); config rank correlation %.3f; rows scanned %d -> %d\n",
			g.SpeedupMeasured, g.SpeedupEstimated, g.ConfigRankCorrelation,
			g.RowsScannedBaseline, g.RowsScannedRecommended)
	}
}

package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestCalibrateKnownPairs(t *testing.T) {
	// Four rated samples with tightness ratios 0.5, 0.5, 1.0, 2.0:
	// mean 1.0, p50 0.75 (R-7 interpolation), one bound violation.
	samples := []CalibSample{
		{Kind: "merge-indexes", EstDT: 10, RealizedDT: 5},
		{Kind: "merge-indexes", EstDT: 4, RealizedDT: 2},
		{Kind: "remove-index", EstDT: 8, RealizedDT: 8},
		{Kind: "remove-index", EstDT: 3, RealizedDT: 6},
	}
	rep := Calibrate(samples, WhatIfEconomy{OptimizerCalls: 42, PlansReused: 3, PlansReoptimized: 1})
	if rep.SchemaVersion != CalibrationSchemaVersion {
		t.Errorf("schema version = %d", rep.SchemaVersion)
	}
	o := rep.Overall
	if o.Samples != 4 || o.Rated != 4 {
		t.Fatalf("samples/rated = %d/%d, want 4/4", o.Samples, o.Rated)
	}
	if math.Abs(o.MeanRatio-1.0) > 1e-12 {
		t.Errorf("mean ratio = %g, want 1", o.MeanRatio)
	}
	if math.Abs(o.P50Ratio-0.75) > 1e-12 {
		t.Errorf("p50 ratio = %g, want 0.75", o.P50Ratio)
	}
	if o.MaxRatio != 2.0 {
		t.Errorf("max ratio = %g, want 2", o.MaxRatio)
	}
	if o.BoundViolations != 1 {
		t.Errorf("bound violations = %d, want 1 (est 3 < realized 6)", o.BoundViolations)
	}
	// Per-kind groups come back sorted by kind name.
	if len(rep.PerKind) != 2 || rep.PerKind[0].Kind != "merge-indexes" || rep.PerKind[1].Kind != "remove-index" {
		t.Fatalf("per-kind grouping wrong: %+v", rep.PerKind)
	}
	if rep.PerKind[0].BoundViolations != 0 || rep.PerKind[1].BoundViolations != 1 {
		t.Errorf("per-kind violations misattributed: %+v", rep.PerKind)
	}
	if got := rep.Economy.ReuseRatio(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("reuse ratio = %g, want 0.75", got)
	}
}

func TestCalibrateZeroRealizedDT(t *testing.T) {
	// A zero realized ΔT means the bound was maximally conservative:
	// ratio 0, no violation, still rated.
	rep := Calibrate([]CalibSample{{Kind: "remove-index", EstDT: 5, RealizedDT: 0}}, WhatIfEconomy{})
	o := rep.Overall
	if o.Rated != 1 || o.MeanRatio != 0 || o.P50Ratio != 0 || o.BoundViolations != 0 {
		t.Errorf("zero-realized sample misscored: %+v", o)
	}
}

func TestCalibrateNonPositiveEstimateExcluded(t *testing.T) {
	// est ≤ 0 admits no tightness ratio: counted in Samples, not Rated,
	// and never a violation regardless of the realized value.
	rep := Calibrate([]CalibSample{
		{Kind: "multi", EstDT: 0, RealizedDT: 9},
		{Kind: "multi", EstDT: -1, RealizedDT: 9},
		{Kind: "multi", EstDT: 2, RealizedDT: 1},
	}, WhatIfEconomy{})
	o := rep.Overall
	if o.Samples != 3 || o.Rated != 1 {
		t.Errorf("samples/rated = %d/%d, want 3/1", o.Samples, o.Rated)
	}
	if o.BoundViolations != 0 {
		t.Errorf("unrated samples produced violations: %+v", o)
	}
	if math.Abs(o.MeanRatio-0.5) > 1e-12 {
		t.Errorf("mean over rated = %g, want 0.5", o.MeanRatio)
	}
}

func TestCalibrateSingleSample(t *testing.T) {
	rep := Calibrate([]CalibSample{{Kind: "merge-views", EstDT: 4, RealizedDT: 3}}, WhatIfEconomy{})
	o := rep.Overall
	if o.Samples != 1 || o.Rated != 1 {
		t.Fatalf("samples/rated = %d/%d", o.Samples, o.Rated)
	}
	// All quantiles collapse to the single ratio; rank correlation is
	// undefined and must report 0, not NaN.
	if o.MeanRatio != 0.75 || o.P50Ratio != 0.75 || o.P90Ratio != 0.75 || o.MaxRatio != 0.75 {
		t.Errorf("single-sample quantiles: %+v", o)
	}
	if o.RankCorrelation != 0 {
		t.Errorf("rank correlation = %g, want 0 for n=1", o.RankCorrelation)
	}
}

func TestCalibrateEmpty(t *testing.T) {
	rep := Calibrate(nil, WhatIfEconomy{})
	if rep.Overall.Samples != 0 || len(rep.PerKind) != 0 {
		t.Errorf("empty calibration not empty: %+v", rep)
	}
	var sb strings.Builder
	rep.WriteText(&sb) // must not panic on the empty report
	if !strings.Contains(sb.String(), "overall") {
		t.Errorf("WriteText missing overall row:\n%s", sb.String())
	}
}

func TestSpearman(t *testing.T) {
	inc := []float64{1, 2, 3, 4, 5}
	dec := []float64{5, 4, 3, 2, 1}
	if got := Spearman(inc, inc); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical series: %g, want 1", got)
	}
	if got := Spearman(inc, dec); math.Abs(got+1) > 1e-12 {
		t.Errorf("reversed series: %g, want -1", got)
	}
	// Monotone but nonlinear: rank correlation stays exactly 1.
	if got := Spearman(inc, []float64{1, 10, 100, 1000, 10000}); math.Abs(got-1) > 1e-12 {
		t.Errorf("monotone nonlinear: %g, want 1", got)
	}
	if got := Spearman([]float64{7, 7, 7}, inc[:3]); got != 0 {
		t.Errorf("constant series: %g, want 0", got)
	}
	if got := Spearman([]float64{1}, []float64{2}); got != 0 {
		t.Errorf("n=1: %g, want 0", got)
	}
	if got := Spearman(inc, inc[:3]); got != 0 {
		t.Errorf("length mismatch: %g, want 0", got)
	}
	// Ties take average ranks: still well-defined and bounded.
	if got := Spearman([]float64{1, 1, 2, 2}, []float64{1, 2, 3, 4}); math.Abs(got) > 1 {
		t.Errorf("tied ranks out of bounds: %g", got)
	}
}

// Satellite fix: kinds with degenerate or pathological samples must keep
// the report finite and JSON-marshalable (encoding/json rejects NaN/±Inf).
func TestCalibrateNonFiniteGuard(t *testing.T) {
	samples := []CalibSample{
		{Kind: "k", EstDT: math.NaN(), RealizedDT: 1},
		{Kind: "k", EstDT: 1, RealizedDT: math.Inf(1)},
		// Denormal-tiny estimate: both inputs finite, ratio overflows.
		{Kind: "k", EstDT: math.SmallestNonzeroFloat64, RealizedDT: math.MaxFloat64},
		{Kind: "k", EstDT: 10, RealizedDT: 5},
	}
	rep := Calibrate(samples, WhatIfEconomy{})
	o := rep.Overall
	if o.NonFinite != 3 {
		t.Errorf("non-finite samples = %d, want 3", o.NonFinite)
	}
	if o.Rated != 1 || o.MeanRatio != 0.5 || o.P50Ratio != 0.5 || o.P90Ratio != 0.5 {
		t.Errorf("surviving sample misscored: %+v", o)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report with pathological samples must marshal: %v", err)
	}
}

func TestCalibrateQuantilesZeroAndOneSample(t *testing.T) {
	// Zero rated samples: all quantiles zero, no NaN.
	rep := Calibrate([]CalibSample{{Kind: "k", EstDT: 0, RealizedDT: 1}}, WhatIfEconomy{})
	o := rep.Overall
	for name, v := range map[string]float64{
		"mean": o.MeanRatio, "p50": o.P50Ratio, "p90": o.P90Ratio, "max": o.MaxRatio,
	} {
		if v != 0 || math.IsNaN(v) {
			t.Errorf("zero-rated %s = %g, want 0", name, v)
		}
	}
	// One rated sample: every quantile collapses to that ratio.
	rep = Calibrate([]CalibSample{{Kind: "k", EstDT: 4, RealizedDT: 3}}, WhatIfEconomy{})
	o = rep.Overall
	if o.P50Ratio != 0.75 || o.P90Ratio != 0.75 || o.MaxRatio != 0.75 {
		t.Errorf("single-sample quantiles: %+v", o)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}

func TestAttachGroundTruth(t *testing.T) {
	gt := &GroundTruthReport{
		SchemaVersion: 1,
		Configs: []ReplayConfig{
			{Label: "baseline", EstCost: 100, MeasuredNanos: 1000, RowsScanned: 500},
			{Label: "step-3", Kind: "merge-indexes", EstCost: 60, MeasuredNanos: 700, RowsScanned: 300},
			{Label: "recommended", Kind: "remove-index", EstCost: 40, MeasuredNanos: 500, RowsScanned: 200},
		},
		Samples: []CalibSample{
			{Kind: "merge-indexes", EstDT: 40, RealizedDT: 30},
			{Kind: "remove-index", EstDT: 20, RealizedDT: 20},
		},
		RankCorrelation:  1,
		SpeedupMeasured:  2,
		SpeedupEstimated: 2.5,
	}
	rep := CalibrateGrounded(nil, WhatIfEconomy{}, gt)
	g := rep.Ground
	if g == nil {
		t.Fatal("ground block missing")
	}
	if g.Overall.Samples != 2 || g.Overall.Rated != 2 {
		t.Errorf("ground overall: %+v", g.Overall)
	}
	if len(g.PerKind) != 2 {
		t.Fatalf("ground per-kind: %d", len(g.PerKind))
	}
	if g.SpeedupMeasured != 2 || g.ConfigRankCorrelation != 1 {
		t.Errorf("ground carried fields: %+v", g)
	}
	if g.RowsScannedBaseline != 500 || g.RowsScannedRecommended != 200 {
		t.Errorf("rows scanned: %d -> %d", g.RowsScannedBaseline, g.RowsScannedRecommended)
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	if !strings.Contains(sb.String(), "measured speedup 2.00x") {
		t.Errorf("WriteText ground block:\n%s", sb.String())
	}

	// Attaching nil is a no-op; Calibrate alone leaves Ground unset.
	plain := Calibrate(nil, WhatIfEconomy{})
	plain.AttachGroundTruth(nil)
	if plain.Ground != nil {
		t.Error("nil attach must not create a ground block")
	}
}

func TestGroundTruthEndpointLookups(t *testing.T) {
	gt := &GroundTruthReport{Configs: []ReplayConfig{
		{Label: "baseline"}, {Label: "step-1"}, {Label: "recommended"},
	}}
	if gt.Baseline() == nil || gt.Baseline().Label != "baseline" {
		t.Error("Baseline lookup failed")
	}
	if gt.Recommended() == nil || gt.Recommended().Label != "recommended" {
		t.Error("Recommended lookup failed")
	}
	empty := &GroundTruthReport{}
	if empty.Baseline() != nil || empty.Recommended() != nil {
		t.Error("empty report lookups must be nil")
	}
}

package obs

import (
	"math"
	"strings"
	"testing"
)

func TestCalibrateKnownPairs(t *testing.T) {
	// Four rated samples with tightness ratios 0.5, 0.5, 1.0, 2.0:
	// mean 1.0, p50 0.75 (R-7 interpolation), one bound violation.
	samples := []CalibSample{
		{Kind: "merge-indexes", EstDT: 10, RealizedDT: 5},
		{Kind: "merge-indexes", EstDT: 4, RealizedDT: 2},
		{Kind: "remove-index", EstDT: 8, RealizedDT: 8},
		{Kind: "remove-index", EstDT: 3, RealizedDT: 6},
	}
	rep := Calibrate(samples, WhatIfEconomy{OptimizerCalls: 42, PlansReused: 3, PlansReoptimized: 1})
	if rep.SchemaVersion != CalibrationSchemaVersion {
		t.Errorf("schema version = %d", rep.SchemaVersion)
	}
	o := rep.Overall
	if o.Samples != 4 || o.Rated != 4 {
		t.Fatalf("samples/rated = %d/%d, want 4/4", o.Samples, o.Rated)
	}
	if math.Abs(o.MeanRatio-1.0) > 1e-12 {
		t.Errorf("mean ratio = %g, want 1", o.MeanRatio)
	}
	if math.Abs(o.P50Ratio-0.75) > 1e-12 {
		t.Errorf("p50 ratio = %g, want 0.75", o.P50Ratio)
	}
	if o.MaxRatio != 2.0 {
		t.Errorf("max ratio = %g, want 2", o.MaxRatio)
	}
	if o.BoundViolations != 1 {
		t.Errorf("bound violations = %d, want 1 (est 3 < realized 6)", o.BoundViolations)
	}
	// Per-kind groups come back sorted by kind name.
	if len(rep.PerKind) != 2 || rep.PerKind[0].Kind != "merge-indexes" || rep.PerKind[1].Kind != "remove-index" {
		t.Fatalf("per-kind grouping wrong: %+v", rep.PerKind)
	}
	if rep.PerKind[0].BoundViolations != 0 || rep.PerKind[1].BoundViolations != 1 {
		t.Errorf("per-kind violations misattributed: %+v", rep.PerKind)
	}
	if got := rep.Economy.ReuseRatio(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("reuse ratio = %g, want 0.75", got)
	}
}

func TestCalibrateZeroRealizedDT(t *testing.T) {
	// A zero realized ΔT means the bound was maximally conservative:
	// ratio 0, no violation, still rated.
	rep := Calibrate([]CalibSample{{Kind: "remove-index", EstDT: 5, RealizedDT: 0}}, WhatIfEconomy{})
	o := rep.Overall
	if o.Rated != 1 || o.MeanRatio != 0 || o.P50Ratio != 0 || o.BoundViolations != 0 {
		t.Errorf("zero-realized sample misscored: %+v", o)
	}
}

func TestCalibrateNonPositiveEstimateExcluded(t *testing.T) {
	// est ≤ 0 admits no tightness ratio: counted in Samples, not Rated,
	// and never a violation regardless of the realized value.
	rep := Calibrate([]CalibSample{
		{Kind: "multi", EstDT: 0, RealizedDT: 9},
		{Kind: "multi", EstDT: -1, RealizedDT: 9},
		{Kind: "multi", EstDT: 2, RealizedDT: 1},
	}, WhatIfEconomy{})
	o := rep.Overall
	if o.Samples != 3 || o.Rated != 1 {
		t.Errorf("samples/rated = %d/%d, want 3/1", o.Samples, o.Rated)
	}
	if o.BoundViolations != 0 {
		t.Errorf("unrated samples produced violations: %+v", o)
	}
	if math.Abs(o.MeanRatio-0.5) > 1e-12 {
		t.Errorf("mean over rated = %g, want 0.5", o.MeanRatio)
	}
}

func TestCalibrateSingleSample(t *testing.T) {
	rep := Calibrate([]CalibSample{{Kind: "merge-views", EstDT: 4, RealizedDT: 3}}, WhatIfEconomy{})
	o := rep.Overall
	if o.Samples != 1 || o.Rated != 1 {
		t.Fatalf("samples/rated = %d/%d", o.Samples, o.Rated)
	}
	// All quantiles collapse to the single ratio; rank correlation is
	// undefined and must report 0, not NaN.
	if o.MeanRatio != 0.75 || o.P50Ratio != 0.75 || o.P90Ratio != 0.75 || o.MaxRatio != 0.75 {
		t.Errorf("single-sample quantiles: %+v", o)
	}
	if o.RankCorrelation != 0 {
		t.Errorf("rank correlation = %g, want 0 for n=1", o.RankCorrelation)
	}
}

func TestCalibrateEmpty(t *testing.T) {
	rep := Calibrate(nil, WhatIfEconomy{})
	if rep.Overall.Samples != 0 || len(rep.PerKind) != 0 {
		t.Errorf("empty calibration not empty: %+v", rep)
	}
	var sb strings.Builder
	rep.WriteText(&sb) // must not panic on the empty report
	if !strings.Contains(sb.String(), "overall") {
		t.Errorf("WriteText missing overall row:\n%s", sb.String())
	}
}

func TestSpearman(t *testing.T) {
	inc := []float64{1, 2, 3, 4, 5}
	dec := []float64{5, 4, 3, 2, 1}
	if got := Spearman(inc, inc); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical series: %g, want 1", got)
	}
	if got := Spearman(inc, dec); math.Abs(got+1) > 1e-12 {
		t.Errorf("reversed series: %g, want -1", got)
	}
	// Monotone but nonlinear: rank correlation stays exactly 1.
	if got := Spearman(inc, []float64{1, 10, 100, 1000, 10000}); math.Abs(got-1) > 1e-12 {
		t.Errorf("monotone nonlinear: %g, want 1", got)
	}
	if got := Spearman([]float64{7, 7, 7}, inc[:3]); got != 0 {
		t.Errorf("constant series: %g, want 0", got)
	}
	if got := Spearman([]float64{1}, []float64{2}); got != 0 {
		t.Errorf("n=1: %g, want 0", got)
	}
	if got := Spearman(inc, inc[:3]); got != 0 {
		t.Errorf("length mismatch: %g, want 0", got)
	}
	// Ties take average ranks: still well-defined and bounded.
	if got := Spearman([]float64{1, 1, 2, 2}, []float64{1, 2, 3, 4}); math.Abs(got) > 1 {
		t.Errorf("tied ranks out of bounds: %g", got)
	}
}

package obs

import "sort"

// StructureDelta describes one structure's fate between two recorded
// recommendations.
type StructureDelta struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// Change is "added", "removed", "changed", or "unchanged" (the
	// latter only when requested; DiffSessions omits unchanged rows).
	Change string `json:"change"`

	FromSizeBytes int64   `json:"from_size_bytes,omitempty"`
	ToSizeBytes   int64   `json:"to_size_bytes,omitempty"`
	SizeDelta     int64   `json:"size_delta,omitempty"`
	FromCostShare float64 `json:"from_cost_share,omitempty"`
	ToCostShare   float64 `json:"to_cost_share,omitempty"`
	CostDelta     float64 `json:"cost_delta,omitempty"`
}

// SessionDiff is the structural comparison between two recorded
// tuning sessions: which indexes/views the recommendation gained,
// lost, or resized, plus the aggregate cost/space/budget movement.
type SessionDiff struct {
	From string `json:"from"`
	To   string `json:"to"`

	Added     int `json:"added"`
	Removed   int `json:"removed"`
	Changed   int `json:"changed"`
	Unchanged int `json:"unchanged"`

	// Structures lists every added/removed/changed structure, removed
	// first, then changed, then added; alphabetical within a group.
	Structures []StructureDelta `json:"structures"`

	CostDelta        float64 `json:"cost_delta"`
	SizeDelta        int64   `json:"size_delta"`
	BudgetDelta      int64   `json:"budget_delta"`
	ImprovementDelta float64 `json:"improvement_delta"`

	// Measured deltas, present only when both sessions carry a
	// ground-truth replay: the measured speedups and the change in
	// measured recommended-config wall time between them.
	FromMeasuredSpeedup float64 `json:"from_measured_speedup,omitempty"`
	ToMeasuredSpeedup   float64 `json:"to_measured_speedup,omitempty"`
	MeasuredNanosDelta  int64   `json:"measured_nanos_delta,omitempty"`

	// Drift digests of drift-triggered sessions: why each side fired
	// (nil for manual/CLI sessions), so a diff between two auto retunes
	// shows which signatures moved the workload each time.
	FromDrift *DriftDigest `json:"from_drift,omitempty"`
	ToDrift   *DriftDigest `json:"to_drift,omitempty"`
}

// structureKey identifies a structure across sessions. The kind joins
// the key so an index and a view sharing a name never alias.
func structureKey(s StructureRecord) string { return s.Kind + "\x00" + s.ID }

// DiffSessions compares two session records structurally. Both
// arguments must be non-nil.
func DiffSessions(from, to *SessionRecord) *SessionDiff {
	d := &SessionDiff{
		From:             from.ID,
		To:               to.ID,
		CostDelta:        to.Cost - from.Cost,
		SizeDelta:        to.SizeBytes - from.SizeBytes,
		BudgetDelta:      to.SpaceBudgetBytes - from.SpaceBudgetBytes,
		ImprovementDelta: to.ImprovementPct - from.ImprovementPct,
		FromDrift:        from.Drift,
		ToDrift:          to.Drift,
	}
	if from.GroundTruth != nil && to.GroundTruth != nil {
		d.FromMeasuredSpeedup = from.GroundTruth.SpeedupMeasured
		d.ToMeasuredSpeedup = to.GroundTruth.SpeedupMeasured
		fr, tr := from.GroundTruth.Recommended(), to.GroundTruth.Recommended()
		if fr != nil && tr != nil {
			d.MeasuredNanosDelta = tr.MeasuredNanos - fr.MeasuredNanos
		}
	}
	fromBy := make(map[string]StructureRecord, len(from.Structures))
	for _, s := range from.Structures {
		fromBy[structureKey(s)] = s
	}
	var removed, changed, added []StructureDelta
	for _, s := range to.Structures {
		old, ok := fromBy[structureKey(s)]
		if !ok {
			d.Added++
			added = append(added, StructureDelta{
				ID: s.ID, Kind: s.Kind, Change: "added",
				ToSizeBytes: s.SizeBytes, SizeDelta: s.SizeBytes,
				ToCostShare: s.CostShare, CostDelta: s.CostShare,
			})
			continue
		}
		delete(fromBy, structureKey(s))
		if old.SizeBytes == s.SizeBytes && old.CostShare == s.CostShare {
			d.Unchanged++
			continue
		}
		d.Changed++
		changed = append(changed, StructureDelta{
			ID: s.ID, Kind: s.Kind, Change: "changed",
			FromSizeBytes: old.SizeBytes, ToSizeBytes: s.SizeBytes,
			SizeDelta:     s.SizeBytes - old.SizeBytes,
			FromCostShare: old.CostShare, ToCostShare: s.CostShare,
			CostDelta: s.CostShare - old.CostShare,
		})
	}
	for _, s := range fromBy {
		d.Removed++
		removed = append(removed, StructureDelta{
			ID: s.ID, Kind: s.Kind, Change: "removed",
			FromSizeBytes: s.SizeBytes, SizeDelta: -s.SizeBytes,
			FromCostShare: s.CostShare, CostDelta: -s.CostShare,
		})
	}
	for _, group := range [][]StructureDelta{removed, changed, added} {
		sort.Slice(group, func(i, j int) bool {
			if group[i].Kind != group[j].Kind {
				return group[i].Kind < group[j].Kind
			}
			return group[i].ID < group[j].ID
		})
		d.Structures = append(d.Structures, group...)
	}
	return d
}

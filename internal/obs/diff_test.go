package obs

import "testing"

func diffSession(id string, structures ...StructureRecord) *SessionRecord {
	return &SessionRecord{
		ID:               id,
		SpaceBudgetBytes: 1000,
		Cost:             50,
		SizeBytes:        900,
		ImprovementPct:   50,
		Structures:       structures,
	}
}

func TestDiffIdenticalSessions(t *testing.T) {
	a := diffSession("s-000001",
		StructureRecord{ID: "ix_a", Kind: "index", SizeBytes: 100, CostShare: 10},
		StructureRecord{ID: "v_b", Kind: "view", SizeBytes: 200, CostShare: 20},
	)
	b := diffSession("s-000002", a.Structures...)

	d := DiffSessions(a, b)
	if d.From != "s-000001" || d.To != "s-000002" {
		t.Fatalf("endpoints: %+v", d)
	}
	if d.Added != 0 || d.Removed != 0 || d.Changed != 0 || d.Unchanged != 2 {
		t.Fatalf("identical sessions diffed: %+v", d)
	}
	if len(d.Structures) != 0 {
		t.Fatalf("unchanged rows listed: %+v", d.Structures)
	}
	if d.CostDelta != 0 || d.SizeDelta != 0 || d.BudgetDelta != 0 || d.ImprovementDelta != 0 {
		t.Fatalf("aggregate deltas nonzero: %+v", d)
	}
}

func TestDiffDisjointSessions(t *testing.T) {
	a := diffSession("s-000001",
		StructureRecord{ID: "ix_a", Kind: "index", SizeBytes: 100, CostShare: 10},
		StructureRecord{ID: "ix_b", Kind: "index", SizeBytes: 150, CostShare: 15},
	)
	b := diffSession("s-000002",
		StructureRecord{ID: "v_c", Kind: "view", SizeBytes: 300, CostShare: 30},
	)
	b.Cost, b.SizeBytes, b.SpaceBudgetBytes, b.ImprovementPct = 30, 300, 500, 70

	d := DiffSessions(a, b)
	if d.Added != 1 || d.Removed != 2 || d.Changed != 0 || d.Unchanged != 0 {
		t.Fatalf("disjoint counts: %+v", d)
	}
	// Removed first (sorted by kind then ID), added last.
	if len(d.Structures) != 3 ||
		d.Structures[0].Change != "removed" || d.Structures[0].ID != "ix_a" ||
		d.Structures[1].Change != "removed" || d.Structures[1].ID != "ix_b" ||
		d.Structures[2].Change != "added" || d.Structures[2].ID != "v_c" {
		t.Fatalf("ordering: %+v", d.Structures)
	}
	if d.Structures[0].SizeDelta != -100 || d.Structures[2].SizeDelta != 300 {
		t.Fatalf("per-structure deltas: %+v", d.Structures)
	}
	if d.CostDelta != -20 || d.SizeDelta != -600 || d.BudgetDelta != -500 || d.ImprovementDelta != 20 {
		t.Fatalf("aggregate deltas: %+v", d)
	}
}

func TestDiffPartialOverlap(t *testing.T) {
	a := diffSession("s-000001",
		StructureRecord{ID: "ix_keep", Kind: "index", SizeBytes: 100, CostShare: 10},
		StructureRecord{ID: "ix_grow", Kind: "index", SizeBytes: 100, CostShare: 10},
		StructureRecord{ID: "ix_gone", Kind: "index", SizeBytes: 50, CostShare: 5},
	)
	b := diffSession("s-000002",
		StructureRecord{ID: "ix_keep", Kind: "index", SizeBytes: 100, CostShare: 10},
		StructureRecord{ID: "ix_grow", Kind: "index", SizeBytes: 180, CostShare: 12},
		StructureRecord{ID: "v_new", Kind: "view", SizeBytes: 400, CostShare: 25},
	)

	d := DiffSessions(a, b)
	if d.Added != 1 || d.Removed != 1 || d.Changed != 1 || d.Unchanged != 1 {
		t.Fatalf("overlap counts: %+v", d)
	}
	var grow *StructureDelta
	for i := range d.Structures {
		if d.Structures[i].ID == "ix_grow" {
			grow = &d.Structures[i]
		}
	}
	if grow == nil || grow.Change != "changed" ||
		grow.FromSizeBytes != 100 || grow.ToSizeBytes != 180 || grow.SizeDelta != 80 ||
		grow.CostDelta != 2 {
		t.Fatalf("changed structure: %+v", grow)
	}
}

// TestDiffKindDisambiguates pins the key design: an index and a view
// sharing a name are different structures, not a change.
func TestDiffKindDisambiguates(t *testing.T) {
	a := diffSession("s-000001", StructureRecord{ID: "orders_x", Kind: "index", SizeBytes: 100})
	b := diffSession("s-000002", StructureRecord{ID: "orders_x", Kind: "view", SizeBytes: 100})
	d := DiffSessions(a, b)
	if d.Added != 1 || d.Removed != 1 || d.Changed != 0 {
		t.Fatalf("kind aliasing: %+v", d)
	}
}

package obs

// GroundTruthReport is the outcome of one execution-backed replay: the
// recommended configuration (and sampled points of its winning lineage)
// materialized in the in-repo storage engine at sampled scale, the
// workload executed for real, and measured wall time / rows scanned /
// structure bytes recorded next to the optimizer's estimates for the
// same statements. It lives in obs (not internal/replay) for the same
// reason FrontierSample does: session records and calibration reports
// embed it, and core cannot import the packages that produce it.
type GroundTruthReport struct {
	SchemaVersion int `json:"schema_version"`

	// Scale of the replay substrate.
	Database   string `json:"database"`
	TotalRows  int64  `json:"total_rows"`
	TotalBytes int64  `json:"total_bytes"`

	// Statements replayed per configuration; updates are estimated-only
	// (the executor runs SELECTs) and counted, not timed.
	Statements     int `json:"statements"`
	SkippedUpdates int `json:"skipped_updates,omitempty"`
	// Repetitions is how many times each statement ran per
	// configuration; measured times are the minimum over repetitions.
	Repetitions int `json:"repetitions"`

	// Configs are the replayed configurations in lineage order: the
	// unindexed baseline first, sampled intermediate lineage steps, the
	// recommendation last.
	Configs []ReplayConfig `json:"configs"`

	// Samples are the execution-grounded calibration stream: one sample
	// per consecutive lineage pair, pairing the step's estimated ΔT with
	// the measured ΔT (wall-time delta normalized to the optimizer's
	// cost unit via the baseline ratio).
	Samples []CalibSample `json:"samples,omitempty"`

	// RankCorrelation is Spearman's ρ between estimated workload cost
	// and measured wall time across Configs.
	RankCorrelation float64 `json:"rank_correlation"`
	// SpeedupMeasured is baseline wall / recommended wall;
	// SpeedupEstimated is the optimizer's prediction of the same ratio.
	SpeedupMeasured  float64 `json:"speedup_measured"`
	SpeedupEstimated float64 `json:"speedup_estimated"`

	// DurationNanos is the wall time of the whole replay (materialize +
	// execute + score).
	DurationNanos int64 `json:"duration_nanos"`
}

// ReplayConfig is one configuration's measured replay record.
type ReplayConfig struct {
	// Label identifies the configuration: "baseline", "recommended", or
	// "step-<iteration>" for sampled lineage points.
	Label string `json:"label"`
	// Kind is the transformation kind that produced this lineage step
	// ("" for the baseline).
	Kind      string `json:"kind,omitempty"`
	Iteration int    `json:"iteration,omitempty"`

	Indexes int `json:"indexes"`
	Views   int `json:"views"`
	// StructureBytes is the §3.3.1 size-model bytes of the
	// configuration's structures over the *materialized* row counts.
	StructureBytes int64 `json:"structure_bytes"`

	// EstCost is the optimizer's weighted workload cost under this
	// configuration at replay scale.
	EstCost float64 `json:"est_cost"`
	// MeasuredNanos is the weighted sum over statements of each
	// statement's minimum-over-repetitions wall time.
	MeasuredNanos int64 `json:"measured_nanos"`

	// Executor counters summed over statements (single repetition).
	RowsScanned  int64 `json:"rows_scanned"`
	PagesTouched int64 `json:"pages_touched"`
	IndexSeeks   int64 `json:"index_seeks"`
	TableScans   int64 `json:"table_scans"`

	// PerStatement breaks the measurement down per replayed statement.
	PerStatement []ReplayStatement `json:"per_statement,omitempty"`
}

// ReplayStatement is one statement's measurement under one configuration.
type ReplayStatement struct {
	ID            string  `json:"id"`
	Weight        float64 `json:"weight"`
	EstCost       float64 `json:"est_cost"`
	MeasuredNanos int64   `json:"measured_nanos"`
	RowsScanned   int64   `json:"rows_scanned"`
	ResultRows    int     `json:"result_rows"`
}

// Baseline returns the baseline configuration's record, or nil.
func (g *GroundTruthReport) Baseline() *ReplayConfig {
	for i := range g.Configs {
		if g.Configs[i].Label == "baseline" {
			return &g.Configs[i]
		}
	}
	return nil
}

// Recommended returns the recommendation's record, or nil.
func (g *GroundTruthReport) Recommended() *ReplayConfig {
	for i := range g.Configs {
		if g.Configs[i].Label == "recommended" {
			return &g.Configs[i]
		}
	}
	return nil
}

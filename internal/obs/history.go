package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"
)

// HistoryOptions configure a metrics-history sampler.
type HistoryOptions struct {
	// Window is how far back samples are retained (default 15m).
	Window time.Duration
	// Interval is the expected sampling cadence; it sizes the per-series
	// ring (Window/Interval points) and is reported to clients so they
	// can render sparklines with the right time step (default 10s).
	Interval time.Duration
	// MaxSeries caps the number of distinct series tracked; series first
	// seen past the cap are counted as dropped, never stored (default
	// 1024).
	MaxSeries int
	// BeforeSample, when set, runs before each scrape — the service
	// installs RefreshPromGauges here so scrape-time gauges are current.
	BeforeSample func()
}

const (
	defaultHistoryWindow   = 15 * time.Minute
	defaultHistoryInterval = 10 * time.Second
	defaultHistoryMax      = 1024
)

// History is a bounded ring-buffer sampler over a Prometheus registry:
// Sample scrapes every current series value into a per-series ring
// sized to hold one Window of points, and Query serves windowed,
// optionally downsampled time series — the data behind
// GET /metrics/history and the alert engine's predicates.
//
// A nil *History is a valid no-op sampler: every method returns zero
// values without allocating, so a disabled monitor costs nothing.
type History struct {
	reg  *Registry
	opts HistoryOptions
	cap  int

	mu      sync.Mutex
	series  map[string]*seriesRing
	order   []string // insertion-ordered keys, for stable query output
	rounds  int64
	dropped int64
}

// seriesRing is one series' bounded sample history.
type seriesRing struct {
	name   string
	labels string            // rendered pairs, e.g. `phase="search"`
	labelv map[string]string // parsed pairs for selector matching
	t      []int64           // unix milliseconds
	v      []float64
	head   int // index of the oldest point
	n      int
}

// NewHistory builds a sampler over reg. Zero option fields take the
// defaults; the caller drives Sample on its own cadence (the service's
// monitor worker ticks every Interval).
func NewHistory(reg *Registry, opts HistoryOptions) *History {
	if opts.Window <= 0 {
		opts.Window = defaultHistoryWindow
	}
	if opts.Interval <= 0 {
		opts.Interval = defaultHistoryInterval
	}
	if opts.MaxSeries <= 0 {
		opts.MaxSeries = defaultHistoryMax
	}
	capacity := int(opts.Window/opts.Interval) + 1
	if capacity < 2 {
		capacity = 2
	}
	return &History{
		reg:    reg,
		opts:   opts,
		cap:    capacity,
		series: map[string]*seriesRing{},
	}
}

// Enabled reports whether the sampler exists.
func (h *History) Enabled() bool { return h != nil }

// Window returns the retention window (0 when disabled).
func (h *History) Window() time.Duration {
	if h == nil {
		return 0
	}
	return h.opts.Window
}

// Interval returns the sampling cadence (0 when disabled).
func (h *History) Interval() time.Duration {
	if h == nil {
		return 0
	}
	return h.opts.Interval
}

// Rounds returns the number of completed scrapes.
func (h *History) Rounds() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.rounds
}

// SeriesCount returns the number of tracked series.
func (h *History) SeriesCount() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.series)
}

// DroppedSeries returns how many samples were discarded because the
// series cap was reached.
func (h *History) DroppedSeries() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}

// Sample scrapes the registry once, stamping every sample with now.
// Points older than the retention window fall out of each ring by
// capacity; callers sampling faster than Interval simply see a shorter
// effective window.
func (h *History) Sample(now time.Time) {
	if h == nil {
		return
	}
	if h.opts.BeforeSample != nil {
		h.opts.BeforeSample()
	}
	ms := now.UnixMilli()
	h.mu.Lock()
	defer h.mu.Unlock()
	h.reg.VisitSamples(func(name, labels string, value float64) {
		key := name
		if labels != "" {
			key = name + "{" + labels + "}"
		}
		r, ok := h.series[key]
		if !ok {
			if len(h.series) >= h.opts.MaxSeries {
				h.dropped++
				return
			}
			r = &seriesRing{
				name:   name,
				labels: labels,
				labelv: parseLabelPairs(labels),
				t:      make([]int64, h.cap),
				v:      make([]float64, h.cap),
			}
			h.series[key] = r
			h.order = append(h.order, key)
		}
		r.push(ms, value)
	})
	h.rounds++
}

func (r *seriesRing) push(t int64, v float64) {
	if r.n < len(r.t) {
		i := (r.head + r.n) % len(r.t)
		r.t[i], r.v[i] = t, v
		r.n++
		return
	}
	r.t[r.head], r.v[r.head] = t, v
	r.head = (r.head + 1) % len(r.t)
}

// at returns the i-th retained point, oldest first.
func (r *seriesRing) at(i int) (int64, float64) {
	j := (r.head + i) % len(r.t)
	return r.t[j], r.v[j]
}

// last returns the newest point (ok=false when empty).
func (r *seriesRing) last() (int64, float64, bool) {
	if r.n == 0 {
		return 0, 0, false
	}
	t, v := r.at(r.n - 1)
	return t, v, true
}

// parseLabelPairs splits a rendered pair list (`a="x",b="y"`) back into
// a map — rings keep both forms so rule selectors match without
// re-parsing on every evaluation. Escapes are rare in practice
// (tenant/phase/rule names are identifier-like); values keep their
// unescaped form best-effort.
func parseLabelPairs(labels string) map[string]string {
	if labels == "" {
		return nil
	}
	out := map[string]string{}
	for _, part := range splitLabelPairs(labels) {
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			continue
		}
		k := part[:eq]
		v := strings.TrimSuffix(strings.TrimPrefix(part[eq+1:], `"`), `"`)
		v = strings.ReplaceAll(v, `\n`, "\n")
		v = strings.ReplaceAll(v, `\\`, `\`)
		out[k] = v
	}
	return out
}

// splitLabelPairs splits on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// HistoryPoint is one retained sample; it marshals as a compact
// [unix_millis, value] pair, the shape sparkline widgets consume.
type HistoryPoint struct {
	T int64
	V float64
}

// MarshalJSON renders the point as a two-element array.
func (p HistoryPoint) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("[%d,%s]", p.T, formatFloat(p.V))), nil
}

// UnmarshalJSON accepts the two-element array form back.
func (p *HistoryPoint) UnmarshalJSON(b []byte) error {
	var pair [2]float64
	if err := json.Unmarshal(b, &pair); err != nil {
		return err
	}
	p.T, p.V = int64(pair[0]), pair[1]
	return nil
}

// HistorySeries is one series' windowed samples.
type HistorySeries struct {
	Name   string         `json:"name"`
	Labels string         `json:"labels,omitempty"`
	Points []HistoryPoint `json:"points"`
}

// HistoryQuery scopes a Query.
type HistoryQuery struct {
	// Names restricts output to series whose metric name equals one of
	// these (empty = every series). A name with a "{...}" suffix matches
	// one exact labeled series.
	Names []string
	// Since drops points older than this instant (zero = whole window).
	Since time.Time
	// MaxPoints downsamples each series to at most this many points,
	// always retaining the newest (0 = no downsampling).
	MaxPoints int
}

// HistorySnapshot is the GET /metrics/history payload.
type HistorySnapshot struct {
	WindowSeconds   float64         `json:"window_seconds"`
	IntervalSeconds float64         `json:"interval_seconds"`
	Rounds          int64           `json:"rounds"`
	DroppedSeries   int64           `json:"dropped_series,omitempty"`
	Series          []HistorySeries `json:"series"`
}

// Query returns the retained samples matching q, series in first-seen
// order, points oldest first. Downsampling picks evenly strided points
// and always keeps the newest one, so a sparkline's right edge is the
// current value.
func (h *History) Query(q HistoryQuery) HistorySnapshot {
	if h == nil {
		return HistorySnapshot{Series: []HistorySeries{}}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := HistorySnapshot{
		WindowSeconds:   h.opts.Window.Seconds(),
		IntervalSeconds: h.opts.Interval.Seconds(),
		Rounds:          h.rounds,
		DroppedSeries:   h.dropped,
		Series:          []HistorySeries{},
	}
	var sinceMs int64
	if !q.Since.IsZero() {
		sinceMs = q.Since.UnixMilli()
	}
	for _, key := range h.order {
		r := h.series[key]
		if !q.matches(r, key) {
			continue
		}
		pts := make([]HistoryPoint, 0, r.n)
		for i := 0; i < r.n; i++ {
			t, v := r.at(i)
			if t < sinceMs {
				continue
			}
			pts = append(pts, HistoryPoint{T: t, V: v})
		}
		snap.Series = append(snap.Series, HistorySeries{
			Name:   r.name,
			Labels: r.labels,
			Points: downsample(pts, q.MaxPoints),
		})
	}
	return snap
}

func (q *HistoryQuery) matches(r *seriesRing, key string) bool {
	if len(q.Names) == 0 {
		return true
	}
	for _, n := range q.Names {
		if n == r.name || n == key {
			return true
		}
	}
	return false
}

// downsample strides pts down to at most max points, keeping the last.
func downsample(pts []HistoryPoint, max int) []HistoryPoint {
	if max <= 0 || len(pts) <= max {
		return pts
	}
	if max == 1 {
		return pts[len(pts)-1:]
	}
	out := make([]HistoryPoint, 0, max)
	// Evenly stride the first max-1 picks over everything but the final
	// point, then append the final point itself.
	span := len(pts) - 1
	for i := 0; i < max-1; i++ {
		out = append(out, pts[i*span/(max-1)])
	}
	return append(out, pts[len(pts)-1])
}

// matchSeries returns the rings whose metric name equals name and whose
// labels are a superset of sel — the alert engine's series resolver.
// Callers must hold no History locks; results are live rings guarded by
// h.mu, so the engine copies what it needs under lockedView.
func (h *History) lockedView(name string, sel map[string]string, f func(r *seriesRing)) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, key := range h.order {
		r := h.series[key]
		if r.name != name {
			continue
		}
		if !labelsMatch(r.labelv, sel) {
			continue
		}
		f(r)
	}
}

func labelsMatch(have, want map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

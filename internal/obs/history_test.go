package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

var histT0 = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

func TestHistorySampleAndQuery(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("t_reqs_total", "Requests.")
	g := reg.NewGauge("t_depth", "Depth.")
	h := reg.NewHistogram("t_lat_seconds", "Latency.", []float64{0.1, 1, 10})

	hist := NewHistory(reg, HistoryOptions{Window: time.Minute, Interval: time.Second})
	for i := 0; i < 3; i++ {
		c.Add(10)
		g.Set(float64(i))
		h.Observe(0.5)
		hist.Sample(histT0.Add(time.Duration(i) * time.Second))
	}
	if got := hist.Rounds(); got != 3 {
		t.Fatalf("Rounds = %d, want 3", got)
	}

	snap := hist.Query(HistoryQuery{})
	byName := map[string][]HistoryPoint{}
	for _, s := range snap.Series {
		byName[s.Name] = s.Points
	}
	for _, name := range []string{"t_reqs_total", "t_depth", "t_lat_seconds_sum", "t_lat_seconds_count", "t_lat_seconds_p95"} {
		if len(byName[name]) == 0 {
			t.Errorf("series %s missing from query", name)
		}
	}
	pts := byName["t_reqs_total"]
	if len(pts) != 3 || pts[0].V != 10 || pts[2].V != 30 {
		t.Fatalf("counter points = %+v, want 3 points 10..30", pts)
	}
	if pts[0].T != histT0.UnixMilli() {
		t.Errorf("first point at %d, want %d", pts[0].T, histT0.UnixMilli())
	}

	// Scoped query by name.
	scoped := hist.Query(HistoryQuery{Names: []string{"t_depth"}})
	if len(scoped.Series) != 1 || scoped.Series[0].Name != "t_depth" {
		t.Fatalf("scoped query = %+v, want just t_depth", scoped.Series)
	}

	// Points marshal as [t, v] pairs.
	data, err := json.Marshal(pts[0])
	if err != nil {
		t.Fatal(err)
	}
	if want := `[1767323045000,10]`; string(data) != want {
		t.Errorf("point JSON = %s, want %s", data, want)
	}
}

func TestHistoryDownsampleKeepsNewest(t *testing.T) {
	reg := NewRegistry()
	g := reg.NewGauge("t_v", "V.")
	hist := NewHistory(reg, HistoryOptions{Window: time.Hour, Interval: time.Second})
	for i := 0; i < 100; i++ {
		g.Set(float64(i))
		hist.Sample(histT0.Add(time.Duration(i) * time.Second))
	}
	snap := hist.Query(HistoryQuery{MaxPoints: 10})
	pts := snap.Series[0].Points
	if len(pts) != 10 {
		t.Fatalf("downsampled to %d points, want 10", len(pts))
	}
	if pts[0].V != 0 {
		t.Errorf("first point %v, want the oldest (0)", pts[0].V)
	}
	if pts[9].V != 99 {
		t.Errorf("last point %v, want the newest (99)", pts[9].V)
	}
}

func TestHistoryRingEviction(t *testing.T) {
	reg := NewRegistry()
	g := reg.NewGauge("t_v", "V.")
	// Window/Interval = 5 points + 1.
	hist := NewHistory(reg, HistoryOptions{Window: 5 * time.Second, Interval: time.Second})
	for i := 0; i < 20; i++ {
		g.Set(float64(i))
		hist.Sample(histT0.Add(time.Duration(i) * time.Second))
	}
	pts := hist.Query(HistoryQuery{}).Series[0].Points
	if len(pts) != 6 {
		t.Fatalf("ring kept %d points, want 6", len(pts))
	}
	if pts[0].V != 14 || pts[5].V != 19 {
		t.Errorf("ring window = %v..%v, want 14..19", pts[0].V, pts[5].V)
	}
}

func TestHistoryMaxSeries(t *testing.T) {
	reg := NewRegistry()
	reg.NewGauge("t_a", "A.")
	reg.NewGauge("t_b", "B.")
	hist := NewHistory(reg, HistoryOptions{Window: time.Minute, Interval: time.Second, MaxSeries: 1})
	hist.Sample(histT0)
	if got := hist.SeriesCount(); got != 1 {
		t.Fatalf("SeriesCount = %d, want 1 (capped)", got)
	}
	if hist.DroppedSeries() == 0 {
		t.Error("expected dropped-series accounting at the cap")
	}
}

func TestHistoryNilIsNoop(t *testing.T) {
	var h *History
	h.Sample(histT0) // must not panic
	if h.Enabled() || h.SeriesCount() != 0 || h.Rounds() != 0 || h.Window() != 0 || h.Interval() != 0 {
		t.Error("nil history should report zero values")
	}
	if n := len(h.Query(HistoryQuery{}).Series); n != 0 {
		t.Errorf("nil history query returned %d series", n)
	}
}

// The disabled monitor path is pinned zero-alloc: a service without a
// sampler/engine calls through nil receivers and must not allocate.
func TestDisabledMonitorPathZeroAlloc(t *testing.T) {
	var h *History
	var e *AlertEngine
	allocs := testing.AllocsPerRun(1000, func() {
		h.Sample(histT0)
		e.Evaluate(histT0)
		_ = h.Rounds()
		_ = e.RuleCount()
		_ = e.FiringBySeverity()
	})
	if allocs != 0 {
		t.Fatalf("disabled sampler/engine path allocates %.1f per op, want 0", allocs)
	}
}

func TestVisitSamplesLabeledAndQuantiles(t *testing.T) {
	reg := NewRegistry()
	cv := reg.NewCounterVec("t_calls_total", "Calls.", "phase")
	cv.Add("search", 3)
	cv.Add("eval", 7)
	h := reg.NewHistogram("t_d", "D.", []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	got := map[string]float64{}
	reg.VisitSamples(func(name, labels string, v float64) {
		key := name
		if labels != "" {
			key = name + "{" + labels + "}"
		}
		got[key] = v
	})
	if got[`t_calls_total{phase="search"}`] != 3 || got[`t_calls_total{phase="eval"}`] != 7 {
		t.Errorf("labeled counter samples wrong: %v", got)
	}
	p95 := got["t_d_p95"]
	if p95 < 1 || p95 > 2 {
		t.Errorf("p95 = %v, want within the (1,2] bucket", p95)
	}
	if q := h.Quantile(1.0); q < 1 || q > 2 {
		t.Errorf("Quantile(1.0) = %v, want within (1,2]", q)
	}
	if q := (&Histogram{}).Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
}

func TestVec2ExpositionLints(t *testing.T) {
	reg := NewRegistry()
	gv := reg.NewGaugeVec2("t_alerts_firing", "Firing alerts.", "rule", "severity")
	gv.Set("slow", "warning", 1)
	gv.Set("broken", "critical", 0)
	cv := reg.NewCounterVec2("t_alert_transitions_total", "Transitions.", "rule", "to")
	cv.Add("slow", "firing", 2)

	var sb strings.Builder
	reg.Render(&sb)
	out := sb.String()
	for _, want := range []string{
		`t_alerts_firing{rule="broken",severity="critical"} 0`,
		`t_alerts_firing{rule="slow",severity="warning"} 1`,
		`t_alert_transitions_total{rule="slow",to="firing"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if problems := LintExposition(strings.NewReader(out)); len(problems) > 0 {
		t.Errorf("two-label exposition lint problems: %v", problems)
	}

	// Tenant-labeled merge stays lint-clean too.
	var mb strings.Builder
	RenderMerged(&mb, "tenant", []LabeledRegistry{{Value: "t1", Registry: reg}})
	if problems := LintExposition(strings.NewReader(mb.String())); len(problems) > 0 {
		t.Errorf("merged two-label exposition lint problems: %v", problems)
	}
	if !strings.Contains(mb.String(), `t_alerts_firing{tenant="t1",rule="broken",severity="critical"} 0`) {
		t.Errorf("merged exposition missing tenant-labeled sample:\n%s", mb.String())
	}

	if gv.Value("slow", "warning") != 1 || cv.Value("slow", "firing") != 2 {
		t.Error("Vec2 Value readback wrong")
	}
	gv.Delete("slow", "warning")
	if gv.Value("slow", "warning") != 0 {
		t.Error("Vec2 Delete left the series behind")
	}
}

package obs

// TunerMetrics bundles the Prometheus metrics describing the relaxation
// search. The search-internal metrics are fed from trace events via
// Sink; the session-level ones (optimizer calls, retune duration) are
// recorded directly by the caller that owns the tuning session.
type TunerMetrics struct {
	// OptimizerCalls counts what-if optimizer invocations across all
	// tuning sessions (tuner_optimizer_calls_total).
	OptimizerCalls *Counter
	// PhaseOptimizerCalls attributes optimizer calls to search phases
	// (initial/optimal/warm-start/search), fed from span-end events.
	PhaseOptimizerCalls *CounterVec
	// RetuneDuration is the wall-clock distribution of tuning sessions.
	RetuneDuration *Histogram
	// BoundTightness is realizedΔT/estimatedΔT per accepted relaxation
	// step: the §3.3.2 estimate is an upper bound, so samples near 1
	// mean the bound is tight and the penalty ranking trustworthy.
	BoundTightness *Histogram
	// PhaseDuration is the per-phase latency distribution
	// (tuner_phase_duration_seconds), fed by a Profiler observer — see
	// Profiler.SetObserver.
	PhaseDuration *HistogramVec
	// PhaseAllocBytes attributes heap allocation to tuning phases
	// (tuner_phase_alloc_bytes_total), fed by a Profiler alloc observer
	// — see Profiler.SetAllocObserver. Only phases profiled with
	// StartAlloc report; the what-if hot path is allocation-disciplined,
	// so a phase's series creeping up is an alertable regression.
	PhaseAllocBytes *CounterVec

	Iterations       *Counter
	Evaluations      *Counter
	ShortcutPrunes   *Counter
	DuplicateSkips   *Counter
	SkylinePruned    *Counter
	CandidatesRanked *Counter
	CacheHits        *Counter
	CacheMisses      *Counter

	// Bounded evaluation-cache economy, fed from the "tune" span-end
	// event: hits/misses of the fingerprint-keyed LRU plus entries
	// evicted by the cap.
	EvalCacheHits      *Counter
	EvalCacheMisses    *Counter
	EvalCacheEvictions *Counter
	// Speculative top-k economy (parallel sessions): evaluations made
	// ahead of need and the ones later iterations consumed.
	SpeculativeEvals *Counter
	SpeculativeHits  *Counter

	// Flight-recorder live series, fed from evaluation events:
	// FrontierSpace is the size of the configuration the search last
	// visited, BudgetGap is how far that configuration sits above the
	// space budget (negative once it fits), and BoundViolations counts
	// accepted steps whose realized ΔT exceeded the §3.3.2 upper bound —
	// the alertable form of the calibration report.
	FrontierSpace   *Gauge
	BudgetGap       *Gauge
	BoundViolations *Counter

	// Ground-truth replay series, recorded by the caller that ran the
	// replay (the service retune hook or an explicit /calibration
	// trigger): replay wall time, the measured baseline/recommended
	// speedup, Spearman's ρ between estimated cost and measured wall
	// time across replayed configs, and executor rows scanned.
	ReplayDuration  *Histogram
	ReplaySpeedup   *Gauge
	RankCorrelation *Gauge
	ReplayRows      *Counter
}

// TunerMetricsBuckets overrides histogram bucket boundaries for the
// tuner metric family. A nil field keeps that metric's default.
// Tuning phases span microseconds to minutes, so deployments that care
// about one end of the range can trade resolution accordingly —
// ExpBuckets builds suitable geometric ladders.
type TunerMetricsBuckets struct {
	// RetuneDuration bounds tuner_retune_duration_seconds (seconds).
	RetuneDuration []float64
	// BoundTightness bounds tuner_penalty_bound_tightness (ratio).
	BoundTightness []float64
	// PhaseDuration bounds tuner_phase_duration_seconds (seconds).
	PhaseDuration []float64
	// ReplayDuration bounds tuner_replay_duration_seconds (seconds).
	ReplayDuration []float64
}

// Default bucket boundaries (exported so callers can extend rather
// than replace them).
var (
	DefaultRetuneBuckets    = []float64{0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}
	DefaultTightnessBuckets = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1, 1.1, 1.25, 1.5, 2, 5}
	// DefaultPhaseBuckets covers 10µs .. ~40s geometrically: phase
	// latencies range from per-candidate penalty estimation (µs) to
	// whole search loops (tens of seconds).
	DefaultPhaseBuckets = ExpBuckets(1e-5, 4, 12)
	// DefaultReplayBuckets covers 1ms .. ~1min: a replay materializes
	// data, registers indexes, and runs the workload several times.
	DefaultReplayBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}
)

// NewTunerMetrics registers the tuner metric family on reg with
// default bucket boundaries.
func NewTunerMetrics(reg *Registry) *TunerMetrics {
	return NewTunerMetricsWith(reg, TunerMetricsBuckets{})
}

// NewTunerMetricsWith registers the tuner metric family with custom
// histogram buckets; zero-value fields keep the defaults.
func NewTunerMetricsWith(reg *Registry, buckets TunerMetricsBuckets) *TunerMetrics {
	if buckets.RetuneDuration == nil {
		buckets.RetuneDuration = DefaultRetuneBuckets
	}
	if buckets.BoundTightness == nil {
		buckets.BoundTightness = DefaultTightnessBuckets
	}
	if buckets.PhaseDuration == nil {
		buckets.PhaseDuration = DefaultPhaseBuckets
	}
	if buckets.ReplayDuration == nil {
		buckets.ReplayDuration = DefaultReplayBuckets
	}
	return &TunerMetrics{
		OptimizerCalls: reg.NewCounter("tuner_optimizer_calls_total",
			"What-if optimizer calls made by tuning sessions."),
		PhaseOptimizerCalls: reg.NewCounterVec("tuner_phase_optimizer_calls_total",
			"Optimizer calls attributed to each search phase.", "phase"),
		RetuneDuration: reg.NewHistogram("tuner_retune_duration_seconds",
			"Wall-clock duration of tuning sessions.",
			buckets.RetuneDuration),
		BoundTightness: reg.NewHistogram("tuner_penalty_bound_tightness",
			"Realized ΔT over estimated ΔT bound per accepted relaxation step (≤1 means the §3.3.2 bound held).",
			buckets.BoundTightness),
		PhaseDuration: reg.NewHistogramVec("tuner_phase_duration_seconds",
			"Wall-clock distribution of tuning phases (fed by the phase profiler).", "phase",
			buckets.PhaseDuration),
		PhaseAllocBytes: reg.NewCounterVec("tuner_phase_alloc_bytes_total",
			"Heap bytes allocated in each tuning phase (fed by the phase profiler).", "phase"),
		Iterations: reg.NewCounter("tuner_search_iterations_total",
			"Relaxation search loop iterations."),
		Evaluations: reg.NewCounter("tuner_search_evaluations_total",
			"Configuration evaluations completed during search."),
		ShortcutPrunes: reg.NewCounter("tuner_search_shortcut_prunes_total",
			"Evaluations aborted by §3.5 shortcut pruning."),
		DuplicateSkips: reg.NewCounter("tuner_search_duplicate_skips_total",
			"Iterations skipped because the configuration fingerprint was already seen."),
		SkylinePruned: reg.NewCounter("tuner_skyline_pruned_total",
			"Transformation candidates pruned by the §3.6 skyline filter."),
		CandidatesRanked: reg.NewCounter("tuner_candidates_ranked_total",
			"Transformation candidates that survived ranking."),
		CacheHits: reg.NewCounter("tuner_fragment_cache_hits_total",
			"Per-statement optimal-fragment cache hits."),
		CacheMisses: reg.NewCounter("tuner_fragment_cache_misses_total",
			"Per-statement optimal-fragment cache misses."),
		EvalCacheHits: reg.NewCounter("tuner_eval_cache_hits_total",
			"Configuration evaluations answered from the bounded evaluation cache."),
		EvalCacheMisses: reg.NewCounter("tuner_eval_cache_misses_total",
			"Configuration evaluations not present in the evaluation cache."),
		EvalCacheEvictions: reg.NewCounter("tuner_eval_cache_evictions_total",
			"Evaluation-cache entries evicted by the LRU cap."),
		SpeculativeEvals: reg.NewCounter("tuner_speculative_evals_total",
			"Runner-up candidate configurations evaluated speculatively."),
		SpeculativeHits: reg.NewCounter("tuner_speculative_hits_total",
			"Speculative evaluations consumed by a later search iteration."),
		FrontierSpace: reg.NewGauge("tuner_frontier_space_bytes",
			"Size of the configuration the relaxation search last visited."),
		BudgetGap: reg.NewGauge("tuner_budget_gap_bytes",
			"How far the last-visited configuration sits above the space budget (negative once it fits)."),
		BoundViolations: reg.NewCounter("tuner_bound_violations_total",
			"Accepted relaxation steps whose realized ΔT exceeded the §3.3.2 upper bound."),
		ReplayDuration: reg.NewHistogram("tuner_replay_duration_seconds",
			"Wall-clock duration of ground-truth replay runs (materialize + execute + score).",
			buckets.ReplayDuration),
		ReplaySpeedup: reg.NewGauge("tuner_replay_speedup_ratio",
			"Measured baseline/recommended wall-time ratio from the last ground-truth replay."),
		RankCorrelation: reg.NewGauge("tuner_costmodel_rank_correlation",
			"Spearman's ρ between estimated workload cost and measured wall time across replayed configurations."),
		ReplayRows: reg.NewCounter("tuner_replay_rows_scanned_total",
			"Executor rows scanned by ground-truth replay runs."),
	}
}

// ObserveReplay records a ground-truth replay's outcome on the replay
// series. Nil-safe on both receiver and report.
func (m *TunerMetrics) ObserveReplay(gt *GroundTruthReport) {
	if m == nil || gt == nil {
		return
	}
	m.ReplayDuration.Observe(float64(gt.DurationNanos) / 1e9)
	m.ReplaySpeedup.Set(gt.SpeedupMeasured)
	m.RankCorrelation.Set(gt.RankCorrelation)
	var rows int64
	for i := range gt.Configs {
		rows += gt.Configs[i].RowsScanned
	}
	m.ReplayRows.Add(float64(rows))
}

// Sink returns a trace sink that keeps the search-internal metrics
// current. Install it (possibly fanned out with a JSONL sink) as the
// tuning session's tracer sink.
func (m *TunerMetrics) Sink() Sink { return &metricsSink{m: m} }

type metricsSink struct{ m *TunerMetrics }

func (s *metricsSink) Emit(e Event) {
	m := s.m
	switch e.Type {
	case EvIteration:
		m.Iterations.Inc()
	case EvCandidates:
		m.CandidatesRanked.Add(fieldFloat(e.Fields, "survivors"))
		m.SkylinePruned.Add(fieldFloat(e.Fields, "skyline_pruned"))
	case EvEval:
		m.Evaluations.Inc()
		m.FrontierSpace.Set(fieldFloat(e.Fields, "size"))
		if _, ok := e.Fields["budget_gap"]; ok {
			m.BudgetGap.Set(fieldFloat(e.Fields, "budget_gap"))
		}
		if est := fieldFloat(e.Fields, "est_dt"); est > 0 {
			tightness := fieldFloat(e.Fields, "realized_dt") / est
			m.BoundTightness.Observe(tightness)
			if tightness > 1+1e-9 {
				m.BoundViolations.Inc()
			}
		}
	case EvSkip:
		switch e.Fields["reason"] {
		case "shortcut":
			m.ShortcutPrunes.Inc()
		case "duplicate":
			m.DuplicateSkips.Inc()
		}
	case EvCache:
		if hit, _ := e.Fields["hit"].(bool); hit {
			m.CacheHits.Inc()
		} else {
			m.CacheMisses.Inc()
		}
	case EvSpanEnd:
		// Attribute phase-level optimizer calls; the "tune" span is the
		// sum of its children and would double-count.
		if e.Phase != "" && e.Phase != "tune" {
			if calls := fieldFloat(e.Fields, "optimizer_calls"); calls > 0 {
				m.PhaseOptimizerCalls.Add(e.Phase, calls)
			}
		}
		// The session-level cache/speculation economy rides on the "tune"
		// span's closing fields.
		if e.Phase == "tune" {
			m.EvalCacheHits.Add(fieldFloat(e.Fields, "eval_cache_hits"))
			m.EvalCacheMisses.Add(fieldFloat(e.Fields, "eval_cache_misses"))
			m.EvalCacheEvictions.Add(fieldFloat(e.Fields, "eval_cache_evictions"))
			m.SpeculativeEvals.Add(fieldFloat(e.Fields, "speculative_evals"))
			m.SpeculativeHits.Add(fieldFloat(e.Fields, "speculative_hits"))
		}
	}
}

func (s *metricsSink) Close() error { return nil }

// fieldFloat reads a numeric field regardless of the concrete type the
// instrumentation (or a JSON round-trip) stored.
func fieldFloat(f F, key string) float64 {
	switch v := f[key].(type) {
	case float64:
		return v
	case int:
		return float64(v)
	case int64:
		return float64(v)
	}
	return 0
}

// Package obs is the tuner's observability layer: a lightweight
// span/event tracer for the relaxation search, a dependency-free
// Prometheus text-format metrics registry, and the glue that turns
// trace events into metrics.
//
// The tracer is nil-safe by design: a nil *Tracer is a valid no-op
// tracer, so instrumented hot paths pay a single pointer comparison
// when tracing is disabled. Callers guard expensive field construction
// with Enabled():
//
//	if tr.Enabled() {
//		tr.Emit(obs.EvIteration, obs.F{"iter": i, "cost": c})
//	}
//
// Events flow into a Sink (JSONL file, in-memory buffer, Prometheus
// metrics, or any fan-out of those).
package obs

import (
	"sync"
	"time"
)

// F is shorthand for an event's field map.
type F = map[string]any

// Event types emitted by the relaxation search instrumentation.
const (
	// EvSpanStart / EvSpanEnd bracket one search phase. Span-end events
	// carry elapsed_ms and the optimizer-call attribution of the phase
	// (optimizer_calls, index_requests, view_requests).
	EvSpanStart = "span_start"
	EvSpanEnd   = "span_end"
	// EvIteration is one pass of the relaxation loop: which node was
	// selected and why (pick_reason), its cost/size, and pool state.
	EvIteration = "iteration"
	// EvCandidates is the ranked transformation list for the selected
	// node, with per-candidate penalty components (dt, ds, penalty) and
	// skyline survivors vs pruned.
	EvCandidates = "candidates"
	// EvApply records the transformation(s) chosen this iteration.
	EvApply = "apply"
	// EvEval is one configuration evaluation: estimated-bound ΔT vs the
	// realized ΔT (bound tightness), cost, size, fits, and the lineage
	// links (parent_fp -> fp via chosen transformation IDs) a replay
	// needs.
	EvEval = "eval"
	// EvSkip is an iteration that produced no new configuration, with a
	// reason: "duplicate" (fingerprint already seen), "shortcut"
	// (§3.5 pruning), or "exhausted" (node had no useful candidate).
	EvSkip = "skip"
	// EvCache is one per-statement fragment-cache lookup (hit bool).
	EvCache = "cache"
	// EvFragment is one statement's §2 optimal fragment: the structures
	// the instrumented optimization demanded for it.
	EvFragment = "fragment"
)

// Event is one trace record. Fields hold event-specific payload; Phase
// is the innermost open span at emission time.
type Event struct {
	Seq    int64     `json:"seq"`
	Time   time.Time `json:"time"`
	Type   string    `json:"type"`
	Phase  string    `json:"phase,omitempty"`
	Fields F         `json:"fields,omitempty"`
}

// Tracer stamps events with a sequence number and the current phase and
// forwards them to its sink. A nil Tracer is a valid no-op. Tracer is
// safe for concurrent use, though the relaxation search itself is
// serialized by the session mutex.
type Tracer struct {
	mu     sync.Mutex
	sink   Sink
	seq    int64
	phases []string
	// now is swappable for tests.
	now func() time.Time
}

// NewTracer returns a tracer writing to sink (nil sink = no-op tracer).
func NewTracer(sink Sink) *Tracer {
	return &Tracer{sink: sink, now: time.Now}
}

// Enabled reports whether emitted events go anywhere. Hot paths use it
// to skip field-map construction entirely.
func (t *Tracer) Enabled() bool { return t != nil && t.sink != nil }

// Emit sends one event to the sink. Safe on a nil tracer.
func (t *Tracer) Emit(typ string, fields F) {
	if !t.Enabled() {
		return
	}
	t.mu.Lock()
	t.seq++
	e := Event{Seq: t.seq, Time: t.now(), Type: typ, Fields: fields}
	if n := len(t.phases); n > 0 {
		e.Phase = t.phases[n-1]
	}
	sink := t.sink
	t.mu.Unlock()
	sink.Emit(e)
}

// Span opens a named phase and returns the closure that closes it. The
// span-end event merges extra into the timing fields. Safe on a nil
// tracer (returns a no-op closure).
func (t *Tracer) Span(phase string, fields F) func(extra F) {
	if !t.Enabled() {
		return func(F) {}
	}
	t.mu.Lock()
	t.phases = append(t.phases, phase)
	t.mu.Unlock()
	start := time.Now()
	t.Emit(EvSpanStart, fields)
	return func(extra F) {
		f := F{"elapsed_ms": float64(time.Since(start).Microseconds()) / 1e3}
		for k, v := range extra {
			f[k] = v
		}
		t.Emit(EvSpanEnd, f)
		t.mu.Lock()
		if n := len(t.phases); n > 0 && t.phases[n-1] == phase {
			t.phases = t.phases[:n-1]
		}
		t.mu.Unlock()
	}
}

// Close flushes and closes the underlying sink. Safe on a nil tracer.
func (t *Tracer) Close() error {
	if !t.Enabled() {
		return nil
	}
	return t.sink.Close()
}

package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Emit(EvIteration, F{"iter": 1})
	end := tr.Span("tune", nil)
	end(F{"ok": true})
	if err := tr.Close(); err != nil {
		t.Fatalf("nil tracer Close: %v", err)
	}
	// A tracer over a nil sink is equally inert.
	tr2 := NewTracer(nil)
	if tr2.Enabled() {
		t.Fatal("nil-sink tracer reports enabled")
	}
	tr2.Emit(EvEval, nil)
}

func TestTracerSequencingAndPhases(t *testing.T) {
	mem := NewMemorySink()
	tr := NewTracer(mem)
	endTune := tr.Span("tune", F{"db": "tpch"})
	tr.Emit(EvIteration, F{"iter": 0})
	endSearch := tr.Span("search", nil)
	tr.Emit(EvEval, F{"cost": 1.5})
	endSearch(F{"optimizer_calls": int64(3)})
	endTune(nil)

	ev := mem.Events()
	if len(ev) != 6 {
		t.Fatalf("got %d events, want 6", len(ev))
	}
	for i, e := range ev {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	if ev[1].Phase != "tune" {
		t.Fatalf("iteration phase = %q, want tune", ev[1].Phase)
	}
	if ev[3].Phase != "search" {
		t.Fatalf("eval phase = %q, want search", ev[3].Phase)
	}
	if ev[4].Type != EvSpanEnd || ev[4].Phase != "search" {
		t.Fatalf("span_end phase = %q, want search", ev[4].Phase)
	}
	if _, ok := ev[4].Fields["elapsed_ms"]; !ok {
		t.Fatal("span_end missing elapsed_ms")
	}
	if ev[5].Phase != "tune" {
		t.Fatalf("outer span_end phase = %q, want tune", ev[5].Phase)
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := NewTracer(sink)
	tr.Emit(EvApply, F{"trans": []string{"remove(a)"}, "iter": 3})
	tr.Emit(EvSkip, F{"reason": "duplicate"})
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		lines = append(lines, e)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0].Type != EvApply || lines[1].Fields["reason"] != "duplicate" {
		t.Fatalf("round trip mangled events: %+v", lines)
	}
}

func TestMultiSinkFansOut(t *testing.T) {
	a, b := NewMemorySink(), NewMemorySink()
	s := MultiSink(a, nil, b)
	s.Emit(Event{Type: EvEval})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out missed a sink: %d/%d", a.Len(), b.Len())
	}
	if MultiSink() != nil {
		t.Fatal("empty MultiSink should be nil")
	}
	if MultiSink(nil, a) != Sink(a) {
		t.Fatal("single-sink MultiSink should collapse")
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	mem := NewMemorySink()
	tr := NewTracer(mem)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Emit(EvIteration, F{"iter": i})
			}
		}()
	}
	wg.Wait()
	if mem.Len() != 800 {
		t.Fatalf("got %d events, want 800", mem.Len())
	}
	seen := map[int64]bool{}
	for _, e := range mem.Events() {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestMetricsSinkFromEvents(t *testing.T) {
	reg := NewRegistry()
	tm := NewTunerMetrics(reg)
	tr := NewTracer(tm.Sink())

	end := tr.Span("search", nil)
	tr.Emit(EvIteration, F{"iter": 0})
	tr.Emit(EvCandidates, F{"survivors": 5, "skyline_pruned": 2})
	tr.Emit(EvEval, F{"est_dt": 10.0, "realized_dt": 8.0})
	tr.Emit(EvEval, F{"est_dt": 0.0, "realized_dt": -1.0}) // no tightness sample
	tr.Emit(EvSkip, F{"reason": "shortcut"})
	tr.Emit(EvSkip, F{"reason": "duplicate"})
	tr.Emit(EvCache, F{"hit": true})
	tr.Emit(EvCache, F{"hit": false})
	end(F{"optimizer_calls": int64(7)})

	if got := tm.Iterations.Value(); got != 1 {
		t.Fatalf("iterations = %v", got)
	}
	if got := tm.CandidatesRanked.Value(); got != 5 {
		t.Fatalf("candidates = %v", got)
	}
	if got := tm.SkylinePruned.Value(); got != 2 {
		t.Fatalf("skyline pruned = %v", got)
	}
	if got := tm.Evaluations.Value(); got != 2 {
		t.Fatalf("evaluations = %v", got)
	}
	if got := tm.BoundTightness.Count(); got != 1 {
		t.Fatalf("tightness samples = %v", got)
	}
	if tm.ShortcutPrunes.Value() != 1 || tm.DuplicateSkips.Value() != 1 {
		t.Fatal("skip counters wrong")
	}
	if tm.CacheHits.Value() != 1 || tm.CacheMisses.Value() != 1 {
		t.Fatal("cache counters wrong")
	}
	if got := tm.PhaseOptimizerCalls.Value("search"); got != 7 {
		t.Fatalf("phase calls = %v", got)
	}

	var buf bytes.Buffer
	reg.Render(&buf)
	out := buf.String()
	for _, want := range []string{
		"tuner_optimizer_calls_total",
		"tuner_penalty_bound_tightness_bucket{le=\"1\"} 1",
		"tuner_retune_duration_seconds_bucket",
		`tuner_phase_optimizer_calls_total{phase="search"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

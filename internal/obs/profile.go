package obs

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
	"strings"
	"sync"
	"time"
)

// ProfileSchemaVersion identifies the serialized ProfileReport layout.
// Bump it on any incompatible change so archived profiles and the
// tunerbench regression gate can refuse to compare apples to oranges.
const ProfileSchemaVersion = 1

// StreamHist is a fixed-size streaming histogram with exponentially
// growing bucket widths, built for values spanning many orders of
// magnitude (tuning phases run from microseconds to minutes, so linear
// buckets waste resolution at one end or the other). Observations cost
// O(1) and constant memory; quantiles are interpolated geometrically
// within the matched bucket and clamped to the observed [min, max].
//
// StreamHist is not synchronized; the Profiler serializes access.
type StreamHist struct {
	lo        float64
	logLo     float64
	logGrowth float64
	counts    []uint64
	total     uint64
	sum       float64
	min, max  float64
}

// NewStreamHist covers [lo, hi] with buckets whose upper bounds grow by
// factor growth (> 1). Values below lo land in the first bucket, values
// above hi in the last.
func NewStreamHist(lo, hi, growth float64) *StreamHist {
	if lo <= 0 || hi <= lo || growth <= 1 {
		panic("obs: NewStreamHist needs 0 < lo < hi and growth > 1")
	}
	n := int(math.Ceil(math.Log(hi/lo)/math.Log(growth))) + 2
	return &StreamHist{
		lo:        lo,
		logLo:     math.Log(lo),
		logGrowth: math.Log(growth),
		counts:    make([]uint64, n),
		min:       math.Inf(1),
		max:       math.Inf(-1),
	}
}

// bucket returns the index covering v: bucket 0 is (-inf, lo), bucket
// i ≥ 1 covers [lo·g^(i-1), lo·g^i).
func (h *StreamHist) bucket(v float64) int {
	if v < h.lo {
		return 0
	}
	i := 1 + int((math.Log(v)-h.logLo)/h.logGrowth)
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	return i
}

// Observe records one sample.
func (h *StreamHist) Observe(v float64) {
	h.counts[h.bucket(v)]++
	h.total++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *StreamHist) Count() uint64 { return h.total }

// Sum returns the sum of all observations.
func (h *StreamHist) Sum() float64 { return h.sum }

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1): the
// geometric midpoint of the bucket holding the rank, clamped to the
// observed extremes so single-sample histograms report exact values.
func (h *StreamHist) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	cum := uint64(0)
	idx := len(h.counts) - 1
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			idx = i
			break
		}
	}
	var v float64
	if idx == 0 {
		v = h.lo / 2
	} else {
		lower := h.lo * math.Exp(float64(idx-1)*h.logGrowth)
		upper := lower * math.Exp(h.logGrowth)
		v = math.Sqrt(lower * upper)
	}
	if v < h.min {
		v = h.min
	}
	if v > h.max {
		v = h.max
	}
	return v
}

// Profiler aggregates per-phase wall-clock, allocation, and counter
// profiles of a tuning session. Phase names follow a path convention:
// a name without '/' is a top-level phase — the top-level phases
// partition the session's wall time — and "parent/child" is a
// sub-phase measured inside its parent (sub-phases may overlap other
// sub-phases and never enter the top-level total).
//
// A nil *Profiler is a valid no-op, so instrumented hot paths pay one
// pointer comparison when profiling is disabled. All methods are safe
// for concurrent use.
type Profiler struct {
	mu            sync.Mutex
	phases        map[string]*phaseAgg
	order         []string
	observer      func(phase string, seconds float64)
	allocObserver func(phase string, bytes uint64)
}

type phaseAgg struct {
	hist     *StreamHist
	total    float64
	count    int64
	alloc    uint64
	counters map[string]float64
}

// profNop is the shared closer handed out by a disabled profiler.
var profNop = func() {}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{phases: map[string]*phaseAgg{}}
}

// Enabled reports whether observations are recorded.
func (p *Profiler) Enabled() bool { return p != nil }

// SetObserver mirrors every observation to fn (phase, seconds) — the
// bridge into a Prometheus histogram family. fn must be safe for
// concurrent use; it is called outside the profiler's lock.
func (p *Profiler) SetObserver(fn func(phase string, seconds float64)) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.observer = fn
	p.mu.Unlock()
}

// SetAllocObserver mirrors the heap-allocation delta of every
// StartAlloc-profiled phase execution to fn (phase, bytes) — the
// bridge into a per-phase allocation counter family
// (tuner_phase_alloc_bytes_total). fn must be safe for concurrent use;
// it is called outside the profiler's lock, and only for observations
// that actually measured an allocation delta.
func (p *Profiler) SetAllocObserver(fn func(phase string, bytes uint64)) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.allocObserver = fn
	p.mu.Unlock()
}

// Start begins timing one execution of phase and returns the closure
// that records it. Safe on a nil profiler.
func (p *Profiler) Start(phase string) func() {
	if p == nil {
		return profNop
	}
	t0 := time.Now()
	return func() { p.observe(phase, time.Since(t0).Seconds(), 0) }
}

// StartAlloc is Start plus the heap-allocation delta across the phase.
// Reading the runtime allocation counter costs ~100ns per boundary, so
// reserve it for coarse phases.
func (p *Profiler) StartAlloc(phase string) func() {
	if p == nil {
		return profNop
	}
	a0 := heapAllocBytes()
	t0 := time.Now()
	return func() {
		secs := time.Since(t0).Seconds()
		var da uint64
		if a1 := heapAllocBytes(); a1 > a0 {
			da = a1 - a0
		}
		p.observe(phase, secs, da)
	}
}

// Since records one execution of phase that started at t0 — the
// defer-friendly form: defer p.Since("search/penalty", time.Now()).
// Safe on a nil profiler.
func (p *Profiler) Since(phase string, t0 time.Time) {
	if p == nil {
		return
	}
	p.observe(phase, time.Since(t0).Seconds(), 0)
}

// Observe records one execution of phase with an explicit duration.
func (p *Profiler) Observe(phase string, d time.Duration) {
	if p == nil {
		return
	}
	p.observe(phase, d.Seconds(), 0)
}

// Add accumulates a named counter under phase (e.g. optimizer calls
// attributed to it). Safe on a nil profiler.
func (p *Profiler) Add(phase, counter string, v float64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	a := p.agg(phase)
	if a.counters == nil {
		a.counters = map[string]float64{}
	}
	a.counters[counter] += v
	p.mu.Unlock()
}

func (p *Profiler) observe(phase string, secs float64, alloc uint64) {
	p.mu.Lock()
	a := p.agg(phase)
	a.hist.Observe(secs)
	a.total += secs
	a.count++
	a.alloc += alloc
	fn := p.observer
	allocFn := p.allocObserver
	p.mu.Unlock()
	if fn != nil {
		fn(phase, secs)
	}
	if allocFn != nil && alloc > 0 {
		allocFn(phase, alloc)
	}
}

// agg returns the phase aggregate, creating it on first use. Callers
// hold p.mu.
func (p *Profiler) agg(phase string) *phaseAgg {
	a, ok := p.phases[phase]
	if !ok {
		// 1µs .. 10min with ~12% geometric resolution.
		a = &phaseAgg{hist: NewStreamHist(1e-6, 600, 1.25)}
		p.phases[phase] = a
		p.order = append(p.order, phase)
	}
	return a
}

// Reset discards all recorded phases.
func (p *Profiler) Reset() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.phases = map[string]*phaseAgg{}
	p.order = nil
	p.mu.Unlock()
}

// HeapAllocBytes reads the runtime's cumulative heap-allocation
// counter in bytes — the clock regression harnesses diff across a run.
func HeapAllocBytes() uint64 { return heapAllocBytes() }

// heapAllocBytes reads the cumulative heap allocation counter without
// stopping the world.
func heapAllocBytes() uint64 {
	s := []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(s)
	if s[0].Value.Kind() == metrics.KindUint64 {
		return s[0].Value.Uint64()
	}
	return 0
}

// PhaseProfile is the aggregated profile of one phase.
type PhaseProfile struct {
	Phase        string  `json:"phase"`
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MeanSeconds  float64 `json:"mean_seconds"`
	P50Seconds   float64 `json:"p50_seconds"`
	P95Seconds   float64 `json:"p95_seconds"`
	P99Seconds   float64 `json:"p99_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
	// AllocBytes is the heap allocated across the phase's executions
	// (only recorded for phases profiled with StartAlloc).
	AllocBytes uint64 `json:"alloc_bytes,omitempty"`
	// Counters holds named attributions (e.g. "optimizer_calls").
	Counters map[string]float64 `json:"counters,omitempty"`
}

// Depth returns the phase's nesting depth (0 = top-level).
func (pp PhaseProfile) Depth() int { return strings.Count(pp.Phase, "/") }

// ProfileReport is the serializable snapshot of a profiler.
type ProfileReport struct {
	SchemaVersion int `json:"schema_version"`
	// WallSeconds is the measured end-to-end wall time of the profiled
	// session, filled in by the caller that owns the outer clock.
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	// TopLevelSeconds sums the top-level phases; it should approach
	// WallSeconds when the phase partition is complete.
	TopLevelSeconds float64 `json:"top_level_seconds"`
	// Phases appear in first-execution order.
	Phases []PhaseProfile `json:"phases"`
}

// Snapshot renders the profiler's current state.
func (p *Profiler) Snapshot() *ProfileReport {
	rep := &ProfileReport{SchemaVersion: ProfileSchemaVersion}
	if p == nil {
		return rep
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, name := range p.order {
		a := p.phases[name]
		pp := PhaseProfile{
			Phase:        name,
			Count:        a.count,
			TotalSeconds: a.total,
			P50Seconds:   a.hist.Quantile(0.50),
			P95Seconds:   a.hist.Quantile(0.95),
			P99Seconds:   a.hist.Quantile(0.99),
			MaxSeconds:   a.hist.max,
			AllocBytes:   a.alloc,
		}
		if a.count > 0 {
			pp.MeanSeconds = a.total / float64(a.count)
		}
		if len(a.counters) > 0 {
			pp.Counters = make(map[string]float64, len(a.counters))
			for k, v := range a.counters {
				pp.Counters[k] = v
			}
		}
		rep.Phases = append(rep.Phases, pp)
		if pp.Depth() == 0 {
			rep.TopLevelSeconds += a.total
		}
	}
	return rep
}

// Phase returns the named phase profile, or nil.
func (r *ProfileReport) Phase(name string) *PhaseProfile {
	for i := range r.Phases {
		if r.Phases[i].Phase == name {
			return &r.Phases[i]
		}
	}
	return nil
}

// CoveragePct is the share of measured wall time the top-level phases
// account for (0 when WallSeconds is unset).
func (r *ProfileReport) CoveragePct() float64 {
	if r.WallSeconds <= 0 {
		return 0
	}
	return 100 * r.TopLevelSeconds / r.WallSeconds
}

// TopLevelPhaseSeconds maps each top-level phase to its total seconds.
func (r *ProfileReport) TopLevelPhaseSeconds() map[string]float64 {
	out := map[string]float64{}
	for _, pp := range r.Phases {
		if pp.Depth() == 0 {
			out[pp.Phase] = pp.TotalSeconds
		}
	}
	return out
}

// WriteText renders the report as an indented table: top-level phases
// in execution order, each followed by its sub-phases.
func (r *ProfileReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "%-34s %8s %12s %10s %10s %10s %10s\n",
		"phase", "count", "total", "p50", "p95", "p99", "alloc")
	var emit func(prefix string, depth int)
	emit = func(prefix string, depth int) {
		for _, pp := range r.Phases {
			if pp.Depth() != depth {
				continue
			}
			if depth > 0 && !strings.HasPrefix(pp.Phase, prefix+"/") {
				continue
			}
			name := strings.Repeat("  ", depth) + pp.Phase
			alloc := ""
			if pp.AllocBytes > 0 {
				alloc = fmtBytes(pp.AllocBytes)
			}
			fmt.Fprintf(w, "%-34s %8d %12s %10s %10s %10s %10s\n",
				name, pp.Count,
				fmtSeconds(pp.TotalSeconds), fmtSeconds(pp.P50Seconds),
				fmtSeconds(pp.P95Seconds), fmtSeconds(pp.P99Seconds), alloc)
			emit(pp.Phase, depth+1)
		}
	}
	emit("", 0)
	if r.WallSeconds > 0 {
		fmt.Fprintf(w, "%-34s %8s %12s   (%.1f%% of %s measured wall time)\n",
			"top-level total", "", fmtSeconds(r.TopLevelSeconds),
			r.CoveragePct(), fmtSeconds(r.WallSeconds))
	}
}

// fmtSeconds renders a duration with a unit that keeps 3 significant
// digits readable from µs to minutes.
func fmtSeconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	case s < 120:
		return fmt.Sprintf("%.3fs", s)
	}
	return fmt.Sprintf("%.1fm", s/60)
}

func fmtBytes(b uint64) string {
	switch {
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	case b < 1<<30:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	}
	return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
}

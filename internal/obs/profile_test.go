package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilProfilerIsSafe(t *testing.T) {
	var p *Profiler
	if p.Enabled() {
		t.Fatal("nil profiler reports enabled")
	}
	// Every entry point must be a no-op, not a panic.
	p.Start("x")()
	p.StartAlloc("x")()
	p.Since("x", time.Now())
	p.Observe("x", 500*time.Millisecond)
	p.Add("x", "c", 1)
	p.SetObserver(func(string, float64) {})
	p.Reset()
	rep := p.Snapshot()
	if len(rep.Phases) != 0 {
		t.Fatalf("nil profiler snapshot has phases: %+v", rep.Phases)
	}
}

func TestProfilerAggregatesPhases(t *testing.T) {
	p := NewProfiler()
	p.Observe("search", 100*time.Millisecond)
	p.Observe("search", 300*time.Millisecond)
	p.Observe("search/rank", 40*time.Millisecond)
	p.Observe("explain", 50*time.Millisecond)
	p.Add("search", "optimizer_calls", 7)

	rep := p.Snapshot()
	if rep.SchemaVersion != ProfileSchemaVersion {
		t.Errorf("schema version = %d, want %d", rep.SchemaVersion, ProfileSchemaVersion)
	}
	s := rep.Phase("search")
	if s == nil {
		t.Fatal("search phase missing from snapshot")
	}
	if s.Count != 2 || math.Abs(s.TotalSeconds-0.4) > 1e-9 {
		t.Errorf("search count/total = %d/%.3f, want 2/0.400", s.Count, s.TotalSeconds)
	}
	if s.Counters["optimizer_calls"] != 7 {
		t.Errorf("optimizer_calls counter = %v", s.Counters)
	}
	// Only depth-0 phases contribute to the top-level partition:
	// search/rank is measured inside search and must not double-count.
	want := 0.4 + 0.05
	if math.Abs(rep.TopLevelSeconds-want) > 1e-9 {
		t.Errorf("top-level seconds = %.3f, want %.3f", rep.TopLevelSeconds, want)
	}
	if sub := rep.Phase("search/rank"); sub == nil || sub.Depth() != 1 {
		t.Errorf("sub-phase missing or wrong depth: %+v", sub)
	}

	rep.WallSeconds = 0.5
	if cov := rep.CoveragePct(); math.Abs(cov-90) > 1e-6 {
		t.Errorf("coverage = %.2f%%, want 90%%", cov)
	}
}

func TestProfilerObserverAndReset(t *testing.T) {
	p := NewProfiler()
	var mu sync.Mutex
	got := map[string]float64{}
	p.SetObserver(func(phase string, sec float64) {
		mu.Lock()
		got[phase] += sec
		mu.Unlock()
	})
	p.Observe("a", 250*time.Millisecond)
	p.Observe("a", 250*time.Millisecond)
	if math.Abs(got["a"]-0.5) > 1e-9 {
		t.Errorf("observer saw %v, want a=0.5", got)
	}
	p.Reset()
	if rep := p.Snapshot(); len(rep.Phases) != 0 {
		t.Errorf("phases survive Reset: %+v", rep.Phases)
	}
}

func TestProfilerStartMeasuresElapsed(t *testing.T) {
	p := NewProfiler()
	end := p.StartAlloc("work")
	time.Sleep(5 * time.Millisecond)
	// Allocate something attributable.
	buf := make([]byte, 1<<20)
	_ = buf[0]
	end()
	ph := p.Snapshot().Phase("work")
	if ph == nil || ph.TotalSeconds < 0.004 {
		t.Fatalf("elapsed not captured: %+v", ph)
	}
	if ph.AllocBytes < 1<<19 {
		t.Errorf("allocation delta too small: %d bytes", ph.AllocBytes)
	}
}

func TestStreamHistQuantiles(t *testing.T) {
	h := NewStreamHist(1e-6, 600, 1.25)
	// 1..1000 ms uniform: p50 ≈ 0.5 s, p99 ≈ 0.99 s, within one
	// exponential bucket (25% growth) of the exact value.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.50, 0.500, 0.13},
		{0.95, 0.950, 0.25},
		{0.99, 0.990, 0.25},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("q%.2f = %.4f, want %.3f ± %.3f", tc.q, got, tc.want, tc.tol)
		}
	}
	// Quantiles clamp to the observed range: never below min or above max.
	if q := h.Quantile(0); q < 0.001-1e-9 {
		t.Errorf("q0 = %.6f below observed min", q)
	}
	if q := h.Quantile(1); q > 1.0+1e-9 {
		t.Errorf("q1 = %.6f above observed max", q)
	}
}

func TestStreamHistOutOfRange(t *testing.T) {
	h := NewStreamHist(1e-6, 600, 1.25)
	h.Observe(1e-9) // below lo: lands in the underflow bucket
	h.Observe(1e9)  // above hi: clamps to the top bucket
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(0.5); math.IsNaN(q) || math.IsInf(q, 0) {
		t.Errorf("quantile not finite: %v", q)
	}
}

func TestProfilerConcurrentObserve(t *testing.T) {
	p := NewProfiler()
	p.SetObserver(func(string, float64) {})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p.Observe("shared", time.Millisecond)
				p.Add("shared", "n", 1)
				p.Since("goroutine", time.Now())
			}
		}(g)
	}
	wg.Wait()
	ph := p.Snapshot().Phase("shared")
	if ph == nil || ph.Count != 1600 || ph.Counters["n"] != 1600 {
		t.Fatalf("lost observations: %+v", ph)
	}
}

func TestProfileReportWriteText(t *testing.T) {
	p := NewProfiler()
	p.Observe("search", 200*time.Millisecond)
	p.Observe("search/rank", 50*time.Millisecond)
	rep := p.Snapshot()
	rep.WallSeconds = 0.25
	var sb strings.Builder
	rep.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"search", "rank", "p95", "wall time"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestHeapAllocBytesMonotonic(t *testing.T) {
	a := HeapAllocBytes()
	sink := make([]byte, 1<<20)
	_ = sink[0]
	if b := HeapAllocBytes(); b < a {
		t.Errorf("cumulative alloc counter went backwards: %d -> %d", a, b)
	}
}

package obs

import (
	"sync"
	"time"
)

// ProgressEvent is one live observation of the relaxation search: the
// frontier point the search just visited, the chosen transformation and
// its penalty, and the budget gap still to close. The relax loop emits
// one event per iteration (plus phase-boundary and completion events),
// so a subscriber watching the stream sees the paper's cost-vs-storage
// trajectory unfold in real time instead of reading it post-hoc from
// Result.Frontier.
type ProgressEvent struct {
	// Seq is a monotonically increasing event number (per Progress).
	Seq int64 `json:"seq"`
	// Time is the emission timestamp.
	Time time.Time `json:"time"`
	// Session labels the tuning session the event belongs to (the
	// flight-recorder session ID when the service drives the search).
	Session string `json:"session,omitempty"`
	// Phase is the search phase emitting the event: "initial",
	// "optimal", "warm-start", "search", or "done".
	Phase string `json:"phase"`
	// Iteration is the relaxation step count so far (Result.Iterations).
	Iteration int `json:"iteration"`
	// Outcome says what the step produced: "evaluated" (a new frontier
	// point), "duplicate", "shortcut", or "exhausted".
	Outcome string `json:"outcome,omitempty"`
	// SizeBytes and Cost describe the configuration just visited — the
	// live frontier point (Cost is the workload's estimated total
	// execution time under the configuration).
	SizeBytes int64   `json:"size_bytes"`
	Cost      float64 `json:"cost"`
	// BestCost is the incumbent recommendation's cost (0 until some
	// configuration fits the budget).
	BestCost float64 `json:"best_cost,omitempty"`
	// BudgetBytes is the session's space budget (0 = unconstrained);
	// BudgetGapBytes is SizeBytes − BudgetBytes (positive while the
	// configuration is still over budget).
	BudgetBytes    int64 `json:"budget_bytes,omitempty"`
	BudgetGapBytes int64 `json:"budget_gap_bytes,omitempty"`
	// Fits reports whether the configuration is within budget.
	Fits bool `json:"fits"`
	// Transformation names the relaxation step chosen this iteration
	// (possibly several IDs joined by " + " under multi-transform);
	// Penalty is its estimated ΔT/ΔS penalty.
	Transformation string  `json:"transformation,omitempty"`
	Penalty        float64 `json:"penalty,omitempty"`
	// CandidatesPruned is the number of candidates the §3.6 skyline
	// filter discarded at this iteration.
	CandidatesPruned int `json:"candidates_pruned,omitempty"`
	// PoolSize is the number of configurations in the search pool.
	PoolSize int `json:"pool_size,omitempty"`
	// Done marks the final event of a session.
	Done bool `json:"done,omitempty"`
	// ElapsedMillis is the session wall time at emission.
	ElapsedMillis int64 `json:"elapsed_millis,omitempty"`
}

// Progress fans live search progress out to subscribers. It follows the
// same nil-safety contract as Tracer and Profiler: a nil *Progress is a
// valid no-op reporter, so the search hot loop pays exactly one pointer
// comparison (and zero allocations) per iteration when progress
// reporting is disabled.
//
// Delivery is non-blocking: each subscriber owns a bounded buffer and a
// publisher that finds it full drops the oldest buffered event, so a
// slow SSE client can never stall (or leak memory into) a tuning
// session. All methods are safe for concurrent use.
type Progress struct {
	mu      sync.Mutex
	seq     int64
	nextSub int
	subs    map[int]chan ProgressEvent
	last    ProgressEvent
	hasLast bool
	session string
	dropped int64
}

// NewProgress returns an empty progress reporter.
func NewProgress() *Progress {
	return &Progress{subs: map[int]chan ProgressEvent{}}
}

// Enabled reports whether Report records anything. Hot paths use it to
// skip event construction entirely.
func (p *Progress) Enabled() bool { return p != nil }

// SetSession labels subsequent events with the given session ID (events
// carrying their own Session keep it). Safe on a nil reporter.
func (p *Progress) SetSession(id string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.session = id
	p.mu.Unlock()
}

// Report publishes one event to every subscriber, stamping it with a
// sequence number, timestamp, and the current session label. Never
// blocks: full subscriber buffers drop their oldest event. Safe on a
// nil reporter.
func (p *Progress) Report(ev ProgressEvent) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.seq++
	ev.Seq = p.seq
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	if ev.Session == "" {
		ev.Session = p.session
	}
	p.last, p.hasLast = ev, true
	for _, ch := range p.subs {
		p.send(ch, ev)
	}
	p.mu.Unlock()
}

// send delivers without blocking: when the subscriber's buffer is full
// the oldest buffered event is dropped to make room (the newest state
// is always the most valuable one for a live view). Callers hold p.mu,
// so only one goroutine ever sends on or drains a subscriber channel.
func (p *Progress) send(ch chan ProgressEvent, ev ProgressEvent) {
	select {
	case ch <- ev:
		return
	default:
	}
	select {
	case <-ch:
		p.dropped++
	default:
		// The receiver drained the buffer between our two selects.
	}
	select {
	case ch <- ev:
	default:
		p.dropped++
	}
}

// Last returns the most recently published event, if any.
func (p *Progress) Last() (ProgressEvent, bool) {
	if p == nil {
		return ProgressEvent{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.last, p.hasLast
}

// Dropped is the total number of events discarded across all
// subscribers because their buffers were full.
func (p *Progress) Dropped() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// Subscribers is the current subscriber count.
func (p *Progress) Subscribers() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.subs)
}

// ProgressSubscription is one subscriber's view of the stream. Close it
// when done; the channel is closed and the subscriber removed.
type ProgressSubscription struct {
	// C delivers events in publication order. It is closed by Close.
	C <-chan ProgressEvent

	p    *Progress
	id   int
	once sync.Once
}

// closedProgressCh backs subscriptions on a nil reporter: reads complete
// immediately with ok=false, so range loops terminate.
var closedProgressCh = func() chan ProgressEvent {
	ch := make(chan ProgressEvent)
	close(ch)
	return ch
}()

// Subscribe registers a subscriber with the given buffer capacity
// (minimum 1). The most recent event, if any, is pre-seeded so a late
// joiner immediately sees the current state. Safe on a nil reporter
// (returns a subscription whose channel is already closed).
func (p *Progress) Subscribe(buf int) *ProgressSubscription {
	if p == nil {
		return &ProgressSubscription{C: closedProgressCh}
	}
	if buf < 1 {
		buf = 1
	}
	ch := make(chan ProgressEvent, buf)
	p.mu.Lock()
	id := p.nextSub
	p.nextSub++
	p.subs[id] = ch
	if p.hasLast {
		ch <- p.last // fresh buffered channel: never blocks
	}
	p.mu.Unlock()
	return &ProgressSubscription{C: ch, p: p, id: id}
}

// Close removes the subscriber and closes its channel. Idempotent.
func (s *ProgressSubscription) Close() {
	if s.p == nil {
		return
	}
	s.once.Do(func() {
		s.p.mu.Lock()
		ch := s.p.subs[s.id]
		delete(s.p.subs, s.id)
		s.p.mu.Unlock()
		// The publisher only sends while the subscriber is in the map
		// (under p.mu), so closing after removal cannot race a send.
		if ch != nil {
			close(ch)
		}
	})
}

package obs

import (
	"sync"
	"testing"
)

func TestProgressNilIsNoOp(t *testing.T) {
	var p *Progress
	if p.Enabled() {
		t.Fatal("nil Progress reports Enabled")
	}
	// Every method must be callable on nil.
	p.SetSession("s-000001")
	p.Report(ProgressEvent{Phase: "search"})
	if _, ok := p.Last(); ok {
		t.Fatal("nil Progress has a last event")
	}
	if p.Dropped() != 0 || p.Subscribers() != 0 {
		t.Fatal("nil Progress has state")
	}
	sub := p.Subscribe(8)
	if _, ok := <-sub.C; ok {
		t.Fatal("nil-reporter subscription delivered an event")
	}
	sub.Close() // idempotent no-op
}

// TestProgressNilReportAllocates pins the acceptance criterion: the
// disabled path adds zero allocations to the search hot loop. The hot
// loop guards event construction with Enabled(), so the measured
// operation is exactly what runs per iteration with progress off.
func TestProgressNilReportAllocates(t *testing.T) {
	var p *Progress
	allocs := testing.AllocsPerRun(1000, func() {
		if p.Enabled() {
			p.Report(ProgressEvent{Phase: "search"})
		}
	})
	if allocs != 0 {
		t.Fatalf("nil-progress path allocates %.1f per iteration, want 0", allocs)
	}
}

// BenchmarkProgressDisabled is the ReportAllocs form of the same
// criterion, for trend tracking.
func BenchmarkProgressDisabled(b *testing.B) {
	var p *Progress
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if p.Enabled() {
			p.Report(ProgressEvent{Phase: "search"})
		}
	}
}

func TestProgressStampsAndDelivers(t *testing.T) {
	p := NewProgress()
	p.SetSession("s-000042")
	sub := p.Subscribe(4)
	defer sub.Close()

	p.Report(ProgressEvent{Phase: "initial", SizeBytes: 100, Cost: 9})
	p.Report(ProgressEvent{Phase: "search", Iteration: 1, Session: "override"})

	ev1 := <-sub.C
	if ev1.Seq != 1 || ev1.Session != "s-000042" || ev1.Time.IsZero() {
		t.Fatalf("first event not stamped: %+v", ev1)
	}
	ev2 := <-sub.C
	if ev2.Seq != 2 || ev2.Session != "override" {
		t.Fatalf("event-carried session not preserved: %+v", ev2)
	}
	if last, ok := p.Last(); !ok || last.Seq != 2 {
		t.Fatalf("Last() = %+v, %v", last, ok)
	}
}

// TestProgressLateSubscriberSeesLast checks a late joiner is seeded with
// the current state instead of waiting for the next event.
func TestProgressLateSubscriberSeesLast(t *testing.T) {
	p := NewProgress()
	p.Report(ProgressEvent{Phase: "search", Iteration: 7})
	sub := p.Subscribe(1)
	defer sub.Close()
	ev := <-sub.C
	if ev.Iteration != 7 {
		t.Fatalf("late subscriber got %+v, want the last event", ev)
	}
}

// TestProgressDropOldest checks the non-blocking contract: a full
// subscriber buffer drops its oldest event, never stalls the publisher,
// and the newest state survives.
func TestProgressDropOldest(t *testing.T) {
	p := NewProgress()
	sub := p.Subscribe(2)
	defer sub.Close()

	for i := 1; i <= 10; i++ {
		p.Report(ProgressEvent{Iteration: i})
	}
	if p.Dropped() == 0 {
		t.Fatal("no events dropped despite a full buffer")
	}
	// The buffer holds the newest two events.
	ev1, ev2 := <-sub.C, <-sub.C
	if ev1.Iteration != 9 || ev2.Iteration != 10 {
		t.Fatalf("buffer kept %d,%d; want the newest 9,10", ev1.Iteration, ev2.Iteration)
	}
}

// TestProgressConcurrentPublishSubscribe hammers publish, subscribe,
// drain, and close from many goroutines; run under -race this pins the
// locking discipline (notably: close-after-map-removal cannot race a
// publisher's send).
func TestProgressConcurrentPublishSubscribe(t *testing.T) {
	p := NewProgress()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			p.Report(ProgressEvent{Iteration: i})
		}
		close(stop)
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				sub := p.Subscribe(4)
				for n := 0; n < 3; n++ {
					select {
					case <-sub.C:
					case <-stop:
						sub.Close()
						return
					}
				}
				sub.Close()
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	if p.Subscribers() != 0 {
		t.Fatalf("%d subscribers leaked", p.Subscribers())
	}
}

func TestProgressSubscriptionCloseIdempotent(t *testing.T) {
	p := NewProgress()
	sub := p.Subscribe(1)
	sub.Close()
	sub.Close() // second close must not panic
	if p.Subscribers() != 0 {
		t.Fatalf("subscriber not removed")
	}
	// Publishing after close must not panic either.
	p.Report(ProgressEvent{Iteration: 1})
}

package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a minimal, dependency-free Prometheus metrics registry:
// counters, gauges, one-label counter vectors, and histograms, exposed
// in the text exposition format (version 0.0.4). Metrics render in
// registration order. All operations are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	metrics []promMetric
	byName  map[string]promMetric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]promMetric{}}
}

type promMetric interface {
	meta() (name, help, typ string)
	// write renders the metric's samples. extra, when non-empty, is a
	// pre-rendered label pair (e.g. `tenant="t1"`) injected into every
	// sample's label set — how fleet deployments attribute one
	// registry's metrics to one tenant without a full label model.
	write(w io.Writer, extra string)
}

func (r *Registry) register(m promMetric) {
	name, _, _ := m.meta()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	r.byName[name] = m
	r.metrics = append(r.metrics, m)
}

// Render writes every metric in the Prometheus text format.
func (r *Registry) Render(w io.Writer) { r.RenderLabeled(w, "", "") }

// RenderLabeled renders every metric with an extra label pair injected
// into each sample (label == "" renders plain). The HELP/TYPE headers
// are unaffected; only sample label sets grow.
func (r *Registry) RenderLabeled(w io.Writer, label, value string) {
	extra := ""
	if label != "" {
		extra = fmt.Sprintf("%s=%q", label, escapeLabel(value))
	}
	r.mu.Lock()
	ms := make([]promMetric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	for _, m := range ms {
		name, help, typ := m.meta()
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		m.write(w, extra)
	}
}

// LabeledRegistry pairs a registry with the label value (e.g. a tenant
// ID) its samples render under in a merged exposition.
type LabeledRegistry struct {
	Value    string
	Registry *Registry
}

// RenderMerged renders several registries as one valid exposition:
// each metric family appears exactly once (HELP/TYPE from its first
// occurrence, families ordered by first appearance across registries),
// followed by every registry's samples for it with label=value
// injected. This is the fleet /metrics surface — N per-tenant
// registries become one scrape with a tenant label, without the
// tenants' metric objects knowing about each other.
func RenderMerged(w io.Writer, label string, regs []LabeledRegistry) {
	type family struct {
		name, help, typ string
		samples         []struct {
			extra string
			m     promMetric
		}
	}
	var order []string
	families := map[string]*family{}
	for _, lr := range regs {
		if lr.Registry == nil {
			continue
		}
		extra := fmt.Sprintf("%s=%q", label, escapeLabel(lr.Value))
		lr.Registry.mu.Lock()
		ms := make([]promMetric, len(lr.Registry.metrics))
		copy(ms, lr.Registry.metrics)
		lr.Registry.mu.Unlock()
		for _, m := range ms {
			name, help, typ := m.meta()
			f, ok := families[name]
			if !ok {
				f = &family{name: name, help: help, typ: typ}
				families[name] = f
				order = append(order, name)
			}
			f.samples = append(f.samples, struct {
				extra string
				m     promMetric
			}{extra, m})
		}
	}
	for _, name := range order {
		f := families[name]
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, s := range f.samples {
			s.m.write(w, s.extra)
		}
	}
}

// Handler serves the registry over HTTP with the canonical content type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Render(w)
	})
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// atomicFloat is a float64 with atomic add/load (counters and gauges).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(d float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct {
	name, help string
	v          atomicFloat
}

// NewCounter registers a counter; by convention the name ends in
// "_total".
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.add(1) }

// Add adds d (must be non-negative for Prometheus semantics).
func (c *Counter) Add(d float64) { c.v.add(d) }

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.load() }

func (c *Counter) meta() (string, string, string) { return c.name, c.help, "counter" }
func (c *Counter) write(w io.Writer, extra string) {
	writePlain(w, c.name, extra, c.v.load())
}

// writePlain renders one unlabeled sample, wrapping it in the injected
// label pair when present.
func writePlain(w io.Writer, name, extra string, v float64) {
	if extra == "" {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(v))
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, extra, formatFloat(v))
}

// Gauge is a value that can go up and down.
type Gauge struct {
	name, help string
	v          atomicFloat
}

// NewGauge registers a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.v.store(v) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) { g.v.add(d) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.load() }

func (g *Gauge) meta() (string, string, string) { return g.name, g.help, "gauge" }
func (g *Gauge) write(w io.Writer, extra string) {
	writePlain(w, g.name, extra, g.v.load())
}

// CounterVec is a counter partitioned by one label (enough for phase
// attribution without pulling in a full label model).
type CounterVec struct {
	name, help, label string
	mu                sync.Mutex
	vals              map[string]float64
}

// NewCounterVec registers a one-label counter family.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{name: name, help: help, label: label, vals: map[string]float64{}}
	r.register(v)
	return v
}

// Add adds d to the series with the given label value.
func (v *CounterVec) Add(labelValue string, d float64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.vals[labelValue] += d
}

// Value returns the count for one label value.
func (v *CounterVec) Value(labelValue string) float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.vals[labelValue]
}

func (v *CounterVec) meta() (string, string, string) { return v.name, v.help, "counter" }
func (v *CounterVec) write(w io.Writer, extra string) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.vals))
	for k := range v.vals {
		keys = append(keys, k)
	}
	vals := make(map[string]float64, len(v.vals))
	for k, x := range v.vals {
		vals[k] = x
	}
	v.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s%s=%q} %s\n", v.name, prefixLabel(extra), v.label, escapeLabel(k), formatFloat(vals[k]))
	}
}

// GaugeVec is a gauge partitioned by one label — the fleet uses one for
// per-tenant queue depths, refreshed at scrape time.
type GaugeVec struct {
	name, help, label string
	mu                sync.Mutex
	vals              map[string]float64
}

// NewGaugeVec registers a one-label gauge family.
func (r *Registry) NewGaugeVec(name, help, label string) *GaugeVec {
	v := &GaugeVec{name: name, help: help, label: label, vals: map[string]float64{}}
	r.register(v)
	return v
}

// Set replaces the value of the series with the given label value.
func (v *GaugeVec) Set(labelValue string, x float64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.vals[labelValue] = x
}

// Delete removes one series (e.g. a deregistered tenant).
func (v *GaugeVec) Delete(labelValue string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.vals, labelValue)
}

// Value returns the value for one label value.
func (v *GaugeVec) Value(labelValue string) float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.vals[labelValue]
}

func (v *GaugeVec) meta() (string, string, string) { return v.name, v.help, "gauge" }
func (v *GaugeVec) write(w io.Writer, extra string) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.vals))
	for k := range v.vals {
		keys = append(keys, k)
	}
	vals := make(map[string]float64, len(v.vals))
	for k, x := range v.vals {
		vals[k] = x
	}
	v.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s%s=%q} %s\n", v.name, prefixLabel(extra), v.label, escapeLabel(k), formatFloat(vals[k]))
	}
}

// sampleFunc receives one current sample during VisitSamples: the
// series name (a family may derive several — histograms contribute
// _sum/_count plus quantile series), its rendered label pairs
// (`phase="search"`, "" when unlabeled), and the value.
type sampleFunc func(name, labels string, value float64)

// sampler is the optional enumeration side of a metric: the numeric
// view of the same samples write renders as text.
type sampler interface {
	sample(f sampleFunc)
}

// VisitSamples enumerates every metric's current samples as numbers, in
// registration order. Counters and gauges yield one sample (vectors one
// per label value, labels pre-rendered); histograms yield
// <name>_sum, <name>_count, and — once observations exist — derived
// <name>_p50/_p95/_p99 quantile series interpolated from the cumulative
// buckets. This is how obs.History scrapes the registry without
// round-tripping through the text exposition.
func (r *Registry) VisitSamples(f func(name, labels string, value float64)) {
	r.mu.Lock()
	ms := make([]promMetric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	for _, m := range ms {
		if s, ok := m.(sampler); ok {
			s.sample(f)
		}
	}
}

func (c *Counter) sample(f sampleFunc) { f(c.name, "", c.v.load()) }
func (g *Gauge) sample(f sampleFunc)   { f(g.name, "", g.v.load()) }

func (v *CounterVec) sample(f sampleFunc) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.vals))
	for k := range v.vals {
		keys = append(keys, k)
	}
	vals := make(map[string]float64, len(v.vals))
	for k, x := range v.vals {
		vals[k] = x
	}
	v.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		f(v.name, fmt.Sprintf("%s=%q", v.label, escapeLabel(k)), vals[k])
	}
}

func (v *GaugeVec) sample(f sampleFunc) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.vals))
	for k := range v.vals {
		keys = append(keys, k)
	}
	vals := make(map[string]float64, len(v.vals))
	for k, x := range v.vals {
		vals[k] = x
	}
	v.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		f(v.name, fmt.Sprintf("%s=%q", v.label, escapeLabel(k)), vals[k])
	}
}

func (h *Histogram) sample(f sampleFunc) {
	h.mu.Lock()
	sum, total := h.sum, h.total
	p50 := h.quantileLocked(0.50)
	p95 := h.quantileLocked(0.95)
	p99 := h.quantileLocked(0.99)
	h.mu.Unlock()
	f(h.name+"_sum", "", sum)
	f(h.name+"_count", "", float64(total))
	if total > 0 {
		f(h.name+"_p50", "", p50)
		f(h.name+"_p95", "", p95)
		f(h.name+"_p99", "", p99)
	}
}

// Quantile estimates the q-quantile (0 < q <= 1) from the cumulative
// buckets, interpolating linearly within the bucket that crosses the
// rank — the in-process analogue of PromQL's histogram_quantile.
// Observations in the +Inf overflow bucket clamp to the highest finite
// bound. Returns 0 before any observation.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.total == 0 || len(h.bounds) == 0 {
		return 0
	}
	rank := q * float64(h.total)
	cum := uint64(0)
	lower := 0.0
	for i, b := range h.bounds {
		prev := cum
		cum += h.counts[i]
		if float64(cum) >= rank {
			if h.counts[i] == 0 {
				return b
			}
			frac := (rank - float64(prev)) / float64(h.counts[i])
			return lower + frac*(b-lower)
		}
		lower = b
	}
	return h.bounds[len(h.bounds)-1]
}

func (v *HistogramVec) sample(f sampleFunc) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sums := make(map[string]float64, len(v.children))
	totals := make(map[string]uint64, len(v.children))
	for k, s := range v.children {
		sums[k], totals[k] = s.sum, s.total
	}
	v.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		lbl := fmt.Sprintf("%s=%q", v.label, escapeLabel(k))
		f(v.name+"_sum", lbl, sums[k])
		f(v.name+"_count", lbl, float64(totals[k]))
	}
}

// prefixLabel renders the injected label pair as a leading list element
// ("" stays empty; `tenant="t1"` becomes `tenant="t1",`).
func prefixLabel(extra string) string {
	if extra == "" {
		return ""
	}
	return extra + ","
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// ExpBuckets returns count exponentially growing histogram bounds
// starting at start (start, start·factor, start·factor², ...) — the
// bucket shape that fits quantities spanning many orders of magnitude,
// like tuning-phase latencies (µs to minutes).
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, count >= 1")
	}
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Histogram is a cumulative-bucket histogram.
type Histogram struct {
	name, help string
	bounds     []float64 // strictly increasing upper bounds, +Inf implicit

	mu     sync.Mutex
	counts []uint64 // one per bound, plus the +Inf overflow at the end
	sum    float64
	total  uint64
}

// NewHistogram registers a histogram with the given upper bounds (the
// +Inf bucket is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	sorted := append([]float64(nil), bounds...)
	sort.Float64s(sorted)
	h := &Histogram{name: name, help: help, bounds: sorted, counts: make([]uint64, len(sorted)+1)}
	r.register(h)
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.total++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

func (h *Histogram) meta() (string, string, string) { return h.name, h.help, "histogram" }
func (h *Histogram) write(w io.Writer, extra string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", h.name, prefixLabel(extra), formatFloat(b), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", h.name, prefixLabel(extra), h.total)
	if extra == "" {
		fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(h.sum))
		fmt.Fprintf(w, "%s_count %d\n", h.name, h.total)
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %s\n", h.name, extra, formatFloat(h.sum))
	fmt.Fprintf(w, "%s_count{%s} %d\n", h.name, extra, h.total)
}

// HistogramVec is a histogram family partitioned by one label (enough
// for per-phase latency distributions without a full label model).
// Every series shares the same bucket bounds.
type HistogramVec struct {
	name, help, label string
	bounds            []float64

	mu       sync.Mutex
	children map[string]*histSeries
}

type histSeries struct {
	counts []uint64
	sum    float64
	total  uint64
}

// NewHistogramVec registers a one-label histogram family with the given
// upper bounds (the +Inf bucket is implicit).
func (r *Registry) NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	sorted := append([]float64(nil), bounds...)
	sort.Float64s(sorted)
	v := &HistogramVec{
		name: name, help: help, label: label,
		bounds:   sorted,
		children: map[string]*histSeries{},
	}
	r.register(v)
	return v
}

// Observe records one sample in the series with the given label value.
func (v *HistogramVec) Observe(labelValue string, x float64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	s, ok := v.children[labelValue]
	if !ok {
		s = &histSeries{counts: make([]uint64, len(v.bounds)+1)}
		v.children[labelValue] = s
	}
	s.counts[sort.SearchFloat64s(v.bounds, x)]++
	s.sum += x
	s.total++
}

// Count returns the number of observations for one label value.
func (v *HistogramVec) Count(labelValue string) uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if s, ok := v.children[labelValue]; ok {
		return s.total
	}
	return 0
}

func (v *HistogramVec) meta() (string, string, string) { return v.name, v.help, "histogram" }
func (v *HistogramVec) write(w io.Writer, extra string) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	copies := make(map[string]histSeries, len(v.children))
	for k, s := range v.children {
		copies[k] = histSeries{counts: append([]uint64(nil), s.counts...), sum: s.sum, total: s.total}
	}
	v.mu.Unlock()
	sort.Strings(keys)
	pre := prefixLabel(extra)
	for _, k := range keys {
		s := copies[k]
		lbl := escapeLabel(k)
		cum := uint64(0)
		for i, b := range v.bounds {
			cum += s.counts[i]
			fmt.Fprintf(w, "%s_bucket{%s%s=%q,le=%q} %d\n", v.name, pre, v.label, lbl, formatFloat(b), cum)
		}
		fmt.Fprintf(w, "%s_bucket{%s%s=%q,le=\"+Inf\"} %d\n", v.name, pre, v.label, lbl, s.total)
		fmt.Fprintf(w, "%s_sum{%s%s=%q} %s\n", v.name, pre, v.label, lbl, formatFloat(s.sum))
		fmt.Fprintf(w, "%s_count{%s%s=%q} %d\n", v.name, pre, v.label, lbl, s.total)
	}
}

// vec2Key orders two-label series: primary label first, then secondary.
type vec2Key struct{ a, b string }

func sortedVec2Keys(vals map[vec2Key]float64) []vec2Key {
	keys := make([]vec2Key, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	return keys
}

// GaugeVec2 is a gauge partitioned by two labels — the alert engine's
// tuner_alerts_firing{rule,severity} meta-series needs exactly two, and
// the one-label vecs stay the common case everywhere else.
type GaugeVec2 struct {
	name, help     string
	label1, label2 string
	mu             sync.Mutex
	vals           map[vec2Key]float64
}

// NewGaugeVec2 registers a two-label gauge family.
func (r *Registry) NewGaugeVec2(name, help, label1, label2 string) *GaugeVec2 {
	v := &GaugeVec2{name: name, help: help, label1: label1, label2: label2, vals: map[vec2Key]float64{}}
	r.register(v)
	return v
}

// Set replaces the value of the (v1, v2) series.
func (v *GaugeVec2) Set(v1, v2 string, x float64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.vals[vec2Key{v1, v2}] = x
}

// Value returns the value of the (v1, v2) series.
func (v *GaugeVec2) Value(v1, v2 string) float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.vals[vec2Key{v1, v2}]
}

// Delete removes one series.
func (v *GaugeVec2) Delete(v1, v2 string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.vals, vec2Key{v1, v2})
}

func (v *GaugeVec2) meta() (string, string, string) { return v.name, v.help, "gauge" }
func (v *GaugeVec2) write(w io.Writer, extra string) {
	v.mu.Lock()
	vals := make(map[vec2Key]float64, len(v.vals))
	for k, x := range v.vals {
		vals[k] = x
	}
	v.mu.Unlock()
	for _, k := range sortedVec2Keys(vals) {
		fmt.Fprintf(w, "%s{%s%s=%q,%s=%q} %s\n", v.name, prefixLabel(extra),
			v.label1, escapeLabel(k.a), v.label2, escapeLabel(k.b), formatFloat(vals[k]))
	}
}

func (v *GaugeVec2) sample(f sampleFunc) {
	v.mu.Lock()
	vals := make(map[vec2Key]float64, len(v.vals))
	for k, x := range v.vals {
		vals[k] = x
	}
	v.mu.Unlock()
	for _, k := range sortedVec2Keys(vals) {
		f(v.name, fmt.Sprintf("%s=%q,%s=%q", v.label1, escapeLabel(k.a), v.label2, escapeLabel(k.b)), vals[k])
	}
}

// CounterVec2 is a counter partitioned by two labels (e.g.
// tuner_alert_transitions_total{rule,to}).
type CounterVec2 struct {
	name, help     string
	label1, label2 string
	mu             sync.Mutex
	vals           map[vec2Key]float64
}

// NewCounterVec2 registers a two-label counter family.
func (r *Registry) NewCounterVec2(name, help, label1, label2 string) *CounterVec2 {
	v := &CounterVec2{name: name, help: help, label1: label1, label2: label2, vals: map[vec2Key]float64{}}
	r.register(v)
	return v
}

// Add adds d to the (v1, v2) series.
func (v *CounterVec2) Add(v1, v2 string, d float64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.vals[vec2Key{v1, v2}] += d
}

// Value returns the count of the (v1, v2) series.
func (v *CounterVec2) Value(v1, v2 string) float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.vals[vec2Key{v1, v2}]
}

func (v *CounterVec2) meta() (string, string, string) { return v.name, v.help, "counter" }
func (v *CounterVec2) write(w io.Writer, extra string) {
	v.mu.Lock()
	vals := make(map[vec2Key]float64, len(v.vals))
	for k, x := range v.vals {
		vals[k] = x
	}
	v.mu.Unlock()
	for _, k := range sortedVec2Keys(vals) {
		fmt.Fprintf(w, "%s{%s%s=%q,%s=%q} %s\n", v.name, prefixLabel(extra),
			v.label1, escapeLabel(k.a), v.label2, escapeLabel(k.b), formatFloat(vals[k]))
	}
}

func (v *CounterVec2) sample(f sampleFunc) {
	v.mu.Lock()
	vals := make(map[vec2Key]float64, len(v.vals))
	for k, x := range v.vals {
		vals[k] = x
	}
	v.mu.Unlock()
	for _, k := range sortedVec2Keys(vals) {
		f(v.name, fmt.Sprintf("%s=%q,%s=%q", v.label1, escapeLabel(k.a), v.label2, escapeLabel(k.b)), vals[k])
	}
}

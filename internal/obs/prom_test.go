package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestPromTextExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("requests_total", "Total requests.")
	g := reg.NewGauge("window_unique", "Distinct statements in window.")
	v := reg.NewCounterVec("calls_total", "Calls by phase.", "phase")
	h := reg.NewHistogram("latency_seconds", "Latency.", []float64{0.5, 1, 2})

	c.Add(3)
	c.Inc()
	g.Set(12)
	v.Add("search", 2)
	v.Add("optimal-config", 5)
	h.Observe(0.4)
	h.Observe(0.9)
	h.Observe(7)

	var buf bytes.Buffer
	reg.Render(&buf)
	out := buf.String()

	for _, want := range []string{
		"# HELP requests_total Total requests.",
		"# TYPE requests_total counter",
		"requests_total 4",
		"# TYPE window_unique gauge",
		"window_unique 12",
		`calls_total{phase="optimal-config"} 5`,
		`calls_total{phase="search"} 2`,
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.5"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="2"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_sum 8.3",
		"latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative and label values sorted.
	if strings.Index(out, `phase="optimal-config"`) > strings.Index(out, `phase="search"`) {
		t.Fatal("counter vec labels not sorted")
	}
}

func TestPromHandlerContentType(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("x_total", "X.")
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	ct := rec.Header().Get("Content-Type")
	if !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 0") {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.NewCounter("dup_total", "second")
}

func TestHistogramConcurrentObserve(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("h", "H.", []float64{1, 10})
	c := reg.NewCounter("c_total", "C.")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 20))
				c.Inc()
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d", h.Count())
	}
	if c.Value() != 8000 {
		t.Fatalf("counter = %v", c.Value())
	}
}

package obs

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// LintExposition statically checks a Prometheus text exposition
// (version 0.0.4) for the structural mistakes a hand-rolled registry can
// make: samples without a declared family, duplicate or conflicting
// HELP/TYPE headers, invalid metric names or types, duplicate series,
// and counter samples with negative values. It returns one message per
// problem; an empty slice means the exposition is clean.
//
// The checks mirror what promtool's `check metrics` would reject, so CI
// can gate the /metrics surface without the Prometheus toolchain.
func LintExposition(r io.Reader) []string {
	var problems []string
	families := map[string]string{} // name -> type
	helped := map[string]bool{}
	seenSeries := map[string]bool{}
	lineNo := 0

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if !validMetricName(name) {
				problems = append(problems, fmt.Sprintf("line %d: invalid metric name %q in HELP", lineNo, name))
			}
			if strings.TrimSpace(help) == "" {
				problems = append(problems, fmt.Sprintf("line %d: metric %q has empty help text", lineNo, name))
			}
			if helped[name] {
				problems = append(problems, fmt.Sprintf("line %d: duplicate HELP for metric %q", lineNo, name))
			}
			helped[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, _ := strings.Cut(rest, " ")
			typ = strings.TrimSpace(typ)
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				problems = append(problems, fmt.Sprintf("line %d: metric %q has invalid type %q", lineNo, name, typ))
			}
			if prev, dup := families[name]; dup {
				if prev != typ {
					problems = append(problems, fmt.Sprintf("line %d: metric %q redeclared as %q (was %q)", lineNo, name, typ, prev))
				} else {
					problems = append(problems, fmt.Sprintf("line %d: duplicate TYPE for metric %q", lineNo, name))
				}
				continue
			}
			families[name] = typ
		case strings.HasPrefix(line, "#"):
			// Other comments are legal and ignored.
		default:
			name, labels, value, err := parseSample(line)
			if err != nil {
				problems = append(problems, fmt.Sprintf("line %d: %v", lineNo, err))
				continue
			}
			fam, typ := sampleFamily(name, families)
			if fam == "" {
				problems = append(problems, fmt.Sprintf("line %d: sample %q has no TYPE declaration", lineNo, name))
			} else if !helped[fam] {
				problems = append(problems, fmt.Sprintf("line %d: sample %q belongs to family %q which has no HELP", lineNo, name, fam))
			}
			if typ == "counter" && strings.HasPrefix(value, "-") {
				problems = append(problems, fmt.Sprintf("line %d: counter %q has negative value %s", lineNo, name, value))
			}
			series := name + "{" + labels + "}"
			if seenSeries[series] {
				problems = append(problems, fmt.Sprintf("line %d: duplicate series %s", lineNo, series))
			}
			seenSeries[series] = true
		}
	}
	if err := sc.Err(); err != nil {
		problems = append(problems, "read error: "+err.Error())
	}
	for name := range helped {
		if _, ok := families[name]; !ok {
			problems = append(problems, fmt.Sprintf("metric %q has HELP but no TYPE", name))
		}
	}
	return problems
}

// sampleFamily resolves a sample name to its declared family, unwrapping
// the histogram/summary component suffixes, and returns the family name
// and type ("" when undeclared).
func sampleFamily(name string, families map[string]string) (string, string) {
	if typ, ok := families[name]; ok {
		return name, typ
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if typ, ok := families[base]; ok && (typ == "histogram" || typ == "summary") {
			return base, typ
		}
	}
	return "", ""
}

// parseSample splits one exposition sample line into name, the raw label
// body (without braces, "" when unlabeled), and the value text.
func parseSample(line string) (name, labels, value string, err error) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", "", fmt.Errorf("sample %q has unbalanced braces", line)
		}
		labels = line[i+1 : j]
		rest = strings.TrimSpace(line[j+1:])
	} else {
		var ok bool
		name, rest, ok = strings.Cut(line, " ")
		if !ok {
			return "", "", "", fmt.Errorf("sample %q has no value", line)
		}
	}
	if !validMetricName(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", "", fmt.Errorf("sample %q has no value", name)
	}
	// fields[0] is the value; an optional timestamp may follow.
	return name, labels, fields[0], nil
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

package obs

import (
	"strings"
	"testing"
)

// lintTestRegistry builds a registry exercising every metric type.
func lintTestRegistry() *Registry {
	reg := NewRegistry()
	c := reg.NewCounter("demo_ops_total", "Operations performed.")
	c.Add(3)
	g := reg.NewGauge("demo_depth", "Queue depth.")
	g.Set(7)
	cv := reg.NewCounterVec("demo_phase_total", "Per-phase operations.", "phase")
	cv.Add("search", 2)
	cv.Add("evaluate", 5)
	gv := reg.NewGaugeVec("demo_share", "Per-kind share.", "kind")
	gv.Set("select", 0.75)
	gv.Set("update", 0.25)
	h := reg.NewHistogram("demo_latency_seconds", "Latency distribution.", ExpBuckets(0.001, 10, 4))
	h.Observe(0.004)
	h.Observe(2)
	hv := reg.NewHistogramVec("demo_phase_seconds", "Per-phase latency.", "phase", ExpBuckets(0.001, 10, 3))
	hv.Observe("search", 0.01)
	return reg
}

func TestLintCleanRegistry(t *testing.T) {
	var b strings.Builder
	lintTestRegistry().Render(&b)
	if probs := LintExposition(strings.NewReader(b.String())); len(probs) != 0 {
		t.Fatalf("clean registry flagged: %v\n%s", probs, b.String())
	}
}

func TestLintCleanLabeledRegistry(t *testing.T) {
	var b strings.Builder
	lintTestRegistry().RenderLabeled(&b, "tenant", "acme")
	if probs := LintExposition(strings.NewReader(b.String())); len(probs) != 0 {
		t.Fatalf("labeled render flagged: %v\n%s", probs, b.String())
	}
	if !strings.Contains(b.String(), `tenant="acme"`) {
		t.Fatalf("labeled render missing tenant label:\n%s", b.String())
	}
}

func TestLintMergedMatchesSingleTenant(t *testing.T) {
	regA, regB := lintTestRegistry(), lintTestRegistry()
	var merged strings.Builder
	RenderMerged(&merged, "tenant", []LabeledRegistry{
		{Value: "a", Registry: regA},
		{Value: "b", Registry: regB},
	})
	if probs := LintExposition(strings.NewReader(merged.String())); len(probs) != 0 {
		t.Fatalf("merged exposition flagged: %v\n%s", probs, merged.String())
	}

	// Every sample a single-tenant render produces must appear verbatim in
	// the merged exposition (same value, same labels plus tenant), and each
	// family's HELP/TYPE must appear exactly once.
	var single strings.Builder
	regA.RenderLabeled(&single, "tenant", "a")
	for _, line := range strings.Split(strings.TrimSpace(single.String()), "\n") {
		if strings.HasPrefix(line, "#") {
			if strings.Count(merged.String(), line) != 1 {
				t.Errorf("header %q appears %d times in merged output, want 1",
					line, strings.Count(merged.String(), line))
			}
			continue
		}
		if !strings.Contains(merged.String(), line) {
			t.Errorf("merged exposition missing single-tenant sample %q", line)
		}
	}
}

func TestLintCatchesMissingType(t *testing.T) {
	exp := "# HELP demo_x Stuff.\ndemo_x 1\n"
	probs := LintExposition(strings.NewReader(exp))
	if len(probs) == 0 {
		t.Fatal("sample without TYPE not flagged")
	}
}

func TestLintCatchesDuplicateFamily(t *testing.T) {
	exp := "# HELP demo_x Stuff.\n# TYPE demo_x gauge\ndemo_x 1\n" +
		"# HELP demo_x Stuff.\n# TYPE demo_x counter\ndemo_x 2\n"
	probs := LintExposition(strings.NewReader(exp))
	joined := strings.Join(probs, "; ")
	if !strings.Contains(joined, "duplicate HELP") {
		t.Errorf("duplicate HELP not flagged: %v", probs)
	}
	if !strings.Contains(joined, "redeclared") {
		t.Errorf("conflicting TYPE not flagged: %v", probs)
	}
	if !strings.Contains(joined, "duplicate series") {
		t.Errorf("duplicate series not flagged: %v", probs)
	}
}

func TestLintCatchesInvalidTypeAndName(t *testing.T) {
	exp := "# HELP 9bad Stuff.\n# TYPE 9bad thermometer\n9bad 1\n"
	probs := LintExposition(strings.NewReader(exp))
	joined := strings.Join(probs, "; ")
	if !strings.Contains(joined, "invalid metric name") {
		t.Errorf("invalid name not flagged: %v", probs)
	}
	if !strings.Contains(joined, "invalid type") {
		t.Errorf("invalid type not flagged: %v", probs)
	}
}

func TestLintCatchesNegativeCounter(t *testing.T) {
	exp := "# HELP demo_total Stuff.\n# TYPE demo_total counter\ndemo_total -4\n"
	probs := LintExposition(strings.NewReader(exp))
	if len(probs) != 1 || !strings.Contains(probs[0], "negative") {
		t.Fatalf("negative counter not flagged correctly: %v", probs)
	}
}

func TestLintAllowsHistogramComponents(t *testing.T) {
	exp := "# HELP demo_seconds Latency.\n# TYPE demo_seconds histogram\n" +
		"demo_seconds_bucket{le=\"0.1\"} 1\ndemo_seconds_bucket{le=\"+Inf\"} 2\n" +
		"demo_seconds_sum 0.3\ndemo_seconds_count 2\n"
	if probs := LintExposition(strings.NewReader(exp)); len(probs) != 0 {
		t.Fatalf("histogram components flagged: %v", probs)
	}
}

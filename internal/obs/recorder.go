package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// StructureRecord is one physical structure (index or materialized
// view) in a recorded recommendation.
type StructureRecord struct {
	ID   string `json:"id"`
	Kind string `json:"kind"` // "index" or "view"
	// SizeBytes is the structure's estimated on-disk size.
	SizeBytes int64 `json:"size_bytes"`
	// CostShare is the weighted workload cost of the statements whose
	// plans use the structure — a rough "how much rides on this" signal
	// for diffing, not an exact marginal benefit.
	CostShare float64 `json:"cost_share,omitempty"`
	// Required marks base structures that the tuner may not drop.
	Required bool `json:"required,omitempty"`
}

// FrontierSample mirrors core.FrontierPoint for persistence (obs cannot
// import core — core imports obs).
type FrontierSample struct {
	Iteration      int     `json:"iteration"`
	SizeBytes      int64   `json:"size_bytes"`
	Cost           float64 `json:"cost"`
	Fits           bool    `json:"fits"`
	Transformation string  `json:"transformation,omitempty"`
	Penalty        float64 `json:"penalty,omitempty"`
}

// ExplainDigest is the compact footprint of a core.ExplainReport kept
// in the session history (the full report is only held for the latest
// session by the service).
type ExplainDigest struct {
	Source string `json:"source"`
	Winner string `json:"winner,omitempty"`
	Steps  int    `json:"steps"`
	// Outcomes counts structure decisions by outcome ("kept",
	// "dropped", "merged", ...).
	Outcomes map[string]int `json:"outcomes,omitempty"`
}

// DriftDigest records the drift assessment that triggered a session —
// the "why did this retune fire" answer the history serves (obs cannot
// import service, so the service projects its DriftReport into this).
type DriftDigest struct {
	ShapeDistance float64 `json:"shape_distance"`
	CostRatio     float64 `json:"cost_ratio,omitempty"`
	Reason        string  `json:"reason,omitempty"`
	// Movers rank the statement signatures whose share movement drove
	// the distance; MoverShare is the fraction of it they explain.
	Movers     []DriftMoverRecord `json:"movers,omitempty"`
	MoverShare float64            `json:"mover_share,omitempty"`
}

// DriftMoverRecord is one signature's contribution to a recorded drift.
type DriftMoverRecord struct {
	Signature     string  `json:"signature"`
	Direction     string  `json:"direction"` // "up", "down", or "churn"
	BaselineShare float64 `json:"baseline_share"`
	CurrentShare  float64 `json:"current_share"`
	Delta         float64 `json:"delta"`
	DistanceShare float64 `json:"distance_share"`
}

// CalibrationDigest summarizes a CalibrationReport for the history.
type CalibrationDigest struct {
	Samples         int     `json:"samples"`
	MeanTightness   float64 `json:"mean_tightness,omitempty"`
	RankCorrelation float64 `json:"rank_correlation,omitempty"`
	BoundViolations int     `json:"bound_violations"`
}

// SessionRecord is the flight-recorder entry for one completed tuning
// session: the summary an operator needs to audit what the tuner did
// and why the recommendation moved.
type SessionRecord struct {
	ID         string    `json:"id"`
	StartedAt  time.Time `json:"started_at"`
	FinishedAt time.Time `json:"finished_at"`
	// Tenant attributes the session to a fleet tenant (empty outside
	// fleet deployments), so shared or aggregated histories stay
	// disambiguated when several services record side by side.
	Tenant string `json:"tenant,omitempty"`
	// Trigger says what started the session: "manual", "auto" (drift),
	// or "cli".
	Trigger string `json:"trigger,omitempty"`
	// WarmStart reports whether the search was seeded with the previous
	// recommendation.
	WarmStart bool `json:"warm_start,omitempty"`
	// Statements and TotalWeight describe the workload snapshot tuned.
	Statements  int     `json:"statements"`
	TotalWeight float64 `json:"total_weight,omitempty"`

	SpaceBudgetBytes int64 `json:"space_budget_bytes"`
	// InitialCost / OptimalCost / Cost are the workload's estimated
	// total time under the initial configuration, the unconstrained
	// optimum, and the recommendation.
	InitialCost    float64 `json:"initial_cost"`
	OptimalCost    float64 `json:"optimal_cost"`
	Cost           float64 `json:"cost"`
	ImprovementPct float64 `json:"improvement_pct"`
	SizeBytes      int64   `json:"size_bytes"`

	Iterations      int   `json:"iterations"`
	OptimizerCalls  int64 `json:"optimizer_calls"`
	ElapsedMillis   int64 `json:"elapsed_millis"`
	ParallelWorkers int   `json:"parallel_workers,omitempty"`

	Structures  []StructureRecord  `json:"structures"`
	Frontier    []FrontierSample   `json:"frontier"`
	Explain     *ExplainDigest     `json:"explain,omitempty"`
	Calibration *CalibrationDigest `json:"calibration,omitempty"`
	// Drift is the assessment that fired this session, present only on
	// drift-triggered ("auto") retunes.
	Drift *DriftDigest `json:"drift,omitempty"`
	// GroundTruth is the execution-backed replay of this session's
	// recommendation, present only when the service ran one.
	GroundTruth *GroundTruthReport `json:"ground_truth,omitempty"`
}

// SessionSummary is the list-view projection of a SessionRecord.
type SessionSummary struct {
	ID               string    `json:"id"`
	Tenant           string    `json:"tenant,omitempty"`
	StartedAt        time.Time `json:"started_at"`
	FinishedAt       time.Time `json:"finished_at"`
	Trigger          string    `json:"trigger,omitempty"`
	Statements       int       `json:"statements"`
	SpaceBudgetBytes int64     `json:"space_budget_bytes"`
	Cost             float64   `json:"cost"`
	ImprovementPct   float64   `json:"improvement_pct"`
	SizeBytes        int64     `json:"size_bytes"`
	Iterations       int       `json:"iterations"`
	Structures       int       `json:"structures"`
	FrontierPoints   int       `json:"frontier_points"`
	// MeasuredSpeedup is the replay's baseline/recommended measured wall
	// ratio (0 when the session had no ground-truth replay).
	MeasuredSpeedup float64 `json:"measured_speedup,omitempty"`
	// DriftReason and DriftMovers surface why a drift-triggered session
	// fired (empty/0 for manual and CLI sessions).
	DriftReason string `json:"drift_reason,omitempty"`
	DriftMovers int    `json:"drift_movers,omitempty"`
}

// Summary projects the record into its list view.
func (r *SessionRecord) Summary() SessionSummary {
	s := SessionSummary{
		ID:               r.ID,
		Tenant:           r.Tenant,
		StartedAt:        r.StartedAt,
		FinishedAt:       r.FinishedAt,
		Trigger:          r.Trigger,
		Statements:       r.Statements,
		SpaceBudgetBytes: r.SpaceBudgetBytes,
		Cost:             r.Cost,
		ImprovementPct:   r.ImprovementPct,
		SizeBytes:        r.SizeBytes,
		Iterations:       r.Iterations,
		Structures:       len(r.Structures),
		FrontierPoints:   len(r.Frontier),
		MeasuredSpeedup:  r.measuredSpeedup(),
	}
	if r.Drift != nil {
		s.DriftReason = r.Drift.Reason
		s.DriftMovers = len(r.Drift.Movers)
	}
	return s
}

func (r *SessionRecord) measuredSpeedup() float64 {
	if r.GroundTruth == nil {
		return 0
	}
	return r.GroundTruth.SpeedupMeasured
}

// DefaultRecorderLimit bounds how many sessions a recorder retains when
// the caller doesn't choose a limit.
const DefaultRecorderLimit = 256

// Recorder is the bounded session history store. With a path it
// persists each record as one JSONL line and reloads the retained tail
// on construction, so the history survives daemon restarts; with an
// empty path it is memory-only. A nil *Recorder is a valid no-op, the
// same contract as Tracer/Profiler/Progress.
//
// Retention is simple and predictable: the newest `limit` sessions are
// kept in memory and served; the on-disk file is compacted (rewritten
// to exactly the retained tail) whenever it grows past 2×limit lines,
// so the file stays O(limit) without rewriting on every record.
type Recorder struct {
	mu        sync.Mutex
	path      string
	limit     int
	idPrefix  string
	sessions  []*SessionRecord
	nextSeq   int
	f         *os.File
	fileLines int
	// encBuf/enc are the reused JSONL encode buffer for appends: session
	// records marshal to kilobytes, so the buffer warms up once and
	// subsequent Record calls encode without re-allocating a line each
	// time. Guarded by mu like everything else.
	encBuf bytes.Buffer
	enc    *json.Encoder
}

// NewRecorder opens (or creates) a session history. path == "" keeps
// the history in memory only; limit <= 0 takes DefaultRecorderLimit.
// Corrupt lines in an existing file are skipped, not fatal: a partial
// history beats a daemon that won't boot.
func NewRecorder(path string, limit int) (*Recorder, error) {
	return NewRecorderPrefix(path, limit, "")
}

// NewRecorderPrefix is NewRecorder with a session-ID prefix: IDs become
// "<prefix>s-000001", ... . Distinct prefixes make IDs globally unique
// when several recorders coexist in one process — the fleet case, where
// each tenant records its own history ("t1-s-000001" never collides
// with "t2-s-000001") and fleet-wide views can aggregate them without
// ambiguity.
func NewRecorderPrefix(path string, limit int, idPrefix string) (*Recorder, error) {
	if limit <= 0 {
		limit = DefaultRecorderLimit
	}
	r := &Recorder{path: path, limit: limit, idPrefix: idPrefix, nextSeq: 1}
	if path == "" {
		return r, nil
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("obs: recorder dir: %w", err)
		}
	}
	if err := r.load(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: recorder open: %w", err)
	}
	r.f = f
	return r, nil
}

// load reads the retained tail of an existing history file.
func (r *Recorder) load() error {
	f, err := os.Open(r.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("obs: recorder load: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		r.fileLines++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec SessionRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // skip corrupt lines
		}
		r.sessions = append(r.sessions, &rec)
		var seq int
		id, hasPrefix := strings.CutPrefix(rec.ID, r.idPrefix)
		if _, err := fmt.Sscanf(id, "s-%d", &seq); hasPrefix && err == nil && seq >= r.nextSeq {
			r.nextSeq = seq + 1
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("obs: recorder load: %w", err)
	}
	if len(r.sessions) > r.limit {
		r.sessions = append([]*SessionRecord(nil), r.sessions[len(r.sessions)-r.limit:]...)
	}
	return nil
}

// NewSessionID reserves the next session identifier ("s-000001", ...,
// with the recorder's ID prefix prepended when one was configured).
// IDs stay monotonic across restarts because load recovers the highest
// persisted sequence number.
func (r *Recorder) NewSessionID() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	id := fmt.Sprintf("%ss-%06d", r.idPrefix, r.nextSeq)
	r.nextSeq++
	return id
}

// Record appends a completed session, trims retention, and persists.
// Persistence errors are returned but the in-memory history is updated
// regardless, so a full disk degrades to memory-only operation.
func (r *Recorder) Record(rec *SessionRecord) error {
	if r == nil || rec == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := *rec
	r.sessions = append(r.sessions, &cp)
	if len(r.sessions) > r.limit {
		r.sessions = append([]*SessionRecord(nil), r.sessions[len(r.sessions)-r.limit:]...)
	}
	if r.f == nil {
		return nil
	}
	if r.enc == nil {
		r.enc = json.NewEncoder(&r.encBuf)
	}
	r.encBuf.Reset()
	if err := r.enc.Encode(&cp); err != nil {
		return fmt.Errorf("obs: recorder marshal: %w", err)
	}
	if _, err := r.f.Write(r.encBuf.Bytes()); err != nil {
		return fmt.Errorf("obs: recorder append: %w", err)
	}
	r.fileLines++
	if r.fileLines > 2*r.limit {
		return r.compactLocked()
	}
	return nil
}

// Amend replaces the retained record with the given ID by a copy fn has
// modified, then rewrites the persisted tail so the file matches memory.
// Readers holding the old pointer keep seeing the pre-amend record (no
// in-place mutation). Returns false when the ID is not retained. Used by
// on-demand ground-truth replays to attach measurements to an
// already-recorded session.
func (r *Recorder) Amend(id string, fn func(*SessionRecord)) (bool, error) {
	if r == nil || fn == nil {
		return false, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, rec := range r.sessions {
		if rec.ID != id {
			continue
		}
		cp := *rec
		fn(&cp)
		r.sessions[i] = &cp
		if r.f == nil {
			return true, nil
		}
		return true, r.compactLocked()
	}
	return false, nil
}

// compactLocked rewrites the history file to exactly the retained tail.
// Callers hold r.mu.
func (r *Recorder) compactLocked() error {
	tmp := r.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("obs: recorder compact: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, rec := range r.sessions {
		// Encode appends the JSONL newline itself and streams into the
		// buffered writer, so compaction allocates no per-record line.
		if err := enc.Encode(rec); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("obs: recorder compact: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("obs: recorder compact: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("obs: recorder compact: %w", err)
	}
	if err := os.Rename(tmp, r.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("obs: recorder compact: %w", err)
	}
	r.f.Close()
	nf, err := os.OpenFile(r.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		r.f = nil
		return fmt.Errorf("obs: recorder reopen: %w", err)
	}
	r.f = nf
	r.fileLines = len(r.sessions)
	return nil
}

// Get returns the record with the given ID, or nil.
func (r *Recorder) Get(id string) *SessionRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.sessions) - 1; i >= 0; i-- {
		if r.sessions[i].ID == id {
			return r.sessions[i]
		}
	}
	return nil
}

// Sessions returns the retained records, oldest first.
func (r *Recorder) Sessions() []*SessionRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*SessionRecord(nil), r.sessions...)
}

// Summaries returns the retained records' list views, oldest first.
func (r *Recorder) Summaries() []SessionSummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SessionSummary, len(r.sessions))
	for i, rec := range r.sessions {
		out[i] = rec.Summary()
	}
	return out
}

// Len is the number of retained sessions.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Close releases the underlying file, if any.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

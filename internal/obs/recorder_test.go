package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testSession(id string, budget int64) *SessionRecord {
	return &SessionRecord{
		ID:               id,
		StartedAt:        time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC),
		FinishedAt:       time.Date(2026, 8, 6, 12, 0, 1, 0, time.UTC),
		Trigger:          "manual",
		Statements:       3,
		SpaceBudgetBytes: budget,
		InitialCost:      100,
		Cost:             40,
		ImprovementPct:   60,
		SizeBytes:        budget - 1,
		Iterations:       5,
		Structures: []StructureRecord{
			{ID: "ix_a", Kind: "index", SizeBytes: 1000, CostShare: 30},
		},
		Frontier: []FrontierSample{
			{Iteration: 1, SizeBytes: budget + 50, Cost: 35, Transformation: "merge(ix_a,ix_b)", Penalty: 0.2},
			{Iteration: 2, SizeBytes: budget - 1, Cost: 40, Fits: true, Transformation: "remove(ix_c)", Penalty: 0.5},
		},
	}
}

func TestRecorderNilIsNoOp(t *testing.T) {
	var r *Recorder
	if r.NewSessionID() != "" {
		t.Fatal("nil recorder issued an ID")
	}
	if err := r.Record(testSession("s-000001", 100)); err != nil {
		t.Fatal(err)
	}
	if r.Get("s-000001") != nil || r.Sessions() != nil || r.Summaries() != nil || r.Len() != 0 {
		t.Fatal("nil recorder has state")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderMemoryOnly(t *testing.T) {
	r, err := NewRecorder("", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if id := r.NewSessionID(); id != "s-000001" {
		t.Fatalf("first ID = %q", id)
	}
	if id := r.NewSessionID(); id != "s-000002" {
		t.Fatalf("second ID = %q", id)
	}
	if err := r.Record(testSession("s-000001", 100)); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || r.Get("s-000001") == nil || r.Get("s-000099") != nil {
		t.Fatalf("lookup broken: len=%d", r.Len())
	}
	sum := r.Summaries()
	if len(sum) != 1 || sum[0].FrontierPoints != 2 || sum[0].Structures != 1 {
		t.Fatalf("summary projection: %+v", sum)
	}
}

// TestRecorderRecordCopies pins that Record stores a copy: mutating the
// caller's record afterwards must not alter history.
func TestRecorderRecordCopies(t *testing.T) {
	r, _ := NewRecorder("", 0)
	rec := testSession("s-000001", 100)
	r.Record(rec)
	rec.Cost = 999
	if got := r.Get("s-000001").Cost; got != 40 {
		t.Fatalf("history mutated through caller's pointer: cost=%g", got)
	}
}

// TestRecorderPersistenceAcrossRestart is the flight-recorder acceptance
// path: record sessions, drop the recorder (simulated daemon restart),
// reopen the same file, and find the history — and the ID sequence —
// intact.
func TestRecorderPersistenceAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history", "sessions.jsonl")

	r1, err := NewRecorder(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		id := r1.NewSessionID()
		if err := r1.Record(testSession(id, int64(100*i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := NewRecorder(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Len() != 3 {
		t.Fatalf("reloaded %d sessions, want 3", r2.Len())
	}
	rec := r2.Get("s-000002")
	if rec == nil || rec.SpaceBudgetBytes != 200 || len(rec.Frontier) != 2 {
		t.Fatalf("reloaded record mangled: %+v", rec)
	}
	if rec.Frontier[0].Transformation != "merge(ix_a,ix_b)" {
		t.Fatalf("frontier lost detail: %+v", rec.Frontier[0])
	}
	// IDs continue past the persisted maximum.
	if id := r2.NewSessionID(); id != "s-000004" {
		t.Fatalf("post-restart ID = %q, want s-000004", id)
	}
}

// TestRecorderSkipsCorruptLines checks a truncated write doesn't brick
// the daemon: bad lines are skipped, good ones load.
func TestRecorderSkipsCorruptLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.jsonl")
	r1, _ := NewRecorder(path, 16)
	r1.Record(testSession(r1.NewSessionID(), 100))
	r1.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"id": "s-000002", "space_budget`) // torn write
	f.Close()

	r2, err := NewRecorder(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Len() != 1 || r2.Get("s-000001") == nil {
		t.Fatalf("corrupt line poisoned the history: len=%d", r2.Len())
	}
}

// TestRecorderRetentionAndCompaction records far past the limit and
// checks both the in-memory tail and the on-disk file stay bounded.
func TestRecorderRetentionAndCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.jsonl")
	const limit = 4
	r, err := NewRecorder(path, limit)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := r.Record(testSession(r.NewSessionID(), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != limit {
		t.Fatalf("retained %d, want %d", r.Len(), limit)
	}
	sessions := r.Sessions()
	if sessions[0].ID != "s-000017" || sessions[limit-1].ID != "s-000020" {
		t.Fatalf("retained the wrong tail: %s..%s", sessions[0].ID, sessions[limit-1].ID)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Compaction keeps the file O(limit): at most 2×limit lines.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines > 2*limit {
		t.Fatalf("history file has %d lines after compaction, want <= %d", lines, 2*limit)
	}

	// And the reloaded view matches the pre-restart one.
	r2, err := NewRecorder(path, limit)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Len() != limit || r2.Get("s-000020") == nil {
		t.Fatalf("post-compaction reload: len=%d", r2.Len())
	}
}

func TestRecorderConcurrentUse(t *testing.T) {
	r, _ := NewRecorder(filepath.Join(t.TempDir(), "s.jsonl"), 32)
	defer r.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Record(testSession(r.NewSessionID(), int64(i)))
		}
	}()
	for i := 0; i < 50; i++ {
		r.Len()
		r.Summaries()
		r.Get(fmt.Sprintf("s-%06d", i))
	}
	<-done
}

package obs_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/obs"
	"repro/internal/physical"
	"repro/internal/workloads"
)

// TestTraceReplaysToFinalConfiguration checks the trace's correctness
// end to end: the accepted-transformation sequence recorded in eval
// events, applied in order starting from the traced optimal
// configuration, must land exactly on the recommended configuration.
// This guards both halves at once — the search must emit every accepted
// step, and the emitted lineage must be the one it actually took.
func TestTraceReplaysToFinalConfiguration(t *testing.T) {
	db := datagen.TPCH(0.001)
	w, err := workloads.TPCH22()
	if err != nil {
		t.Fatal(err)
	}

	mem := obs.NewMemorySink()
	tuner, err := core.NewTuner(db, w, core.Options{
		SpaceBudget:   4 << 20,
		NoViews:       true,
		MaxIterations: 60,
		Trace:         obs.NewTracer(mem),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tuner.Tune()
	if err != nil {
		t.Fatal(err)
	}

	// Index the eval events: child fingerprint -> (parent, chosen IDs).
	type step struct {
		parent string
		chosen []string
	}
	steps := map[string]step{}
	for _, e := range mem.Events() {
		if e.Type != obs.EvEval {
			continue
		}
		fp, _ := e.Fields["fp"].(string)
		parent, _ := e.Fields["parent_fp"].(string)
		chosen, _ := e.Fields["chosen"].([]string)
		if fp == "" || parent == "" || len(chosen) == 0 {
			t.Fatalf("eval event missing lineage fields: %+v", e.Fields)
		}
		steps[fp] = step{parent: parent, chosen: chosen}
	}
	if len(steps) == 0 {
		t.Fatal("trace recorded no eval events; tune did not search")
	}

	// Walk the lineage back from the recommendation to the search root.
	optimalFP := res.Optimal.Config.Fingerprint()
	bestFP := res.Best.Config.Fingerprint()
	if bestFP == optimalFP || bestFP == res.Initial.Config.Fingerprint() {
		t.Fatalf("budget did not force a relaxed recommendation (source %s); the replay would be vacuous",
			res.Explain.Source)
	}
	var lineage []step
	for fp := bestFP; fp != optimalFP; {
		s, ok := steps[fp]
		if !ok {
			t.Fatalf("no eval event for lineage fingerprint %s", fp)
		}
		lineage = append(lineage, s)
		fp = s.parent
	}
	for i, j := 0, len(lineage)-1; i < j; i, j = i+1, j-1 {
		lineage[i], lineage[j] = lineage[j], lineage[i]
	}
	if res.Explain == nil || res.Explain.Steps != len(lineage) {
		t.Fatalf("explain reports %d steps, trace lineage has %d", res.Explain.Steps, len(lineage))
	}

	// Replay: enumerate the legal transformations at each configuration
	// (exactly as the search does) and apply the recorded choices by ID.
	enumOpts := physical.EnumerateOptions{
		NoViews:    true,
		HeapTables: datagen.HeapTables(db),
	}
	cfg := res.Optimal.Config
	for i, s := range lineage {
		byID := map[string]*physical.Transformation{}
		for _, tr := range physical.Enumerate(cfg, enumOpts) {
			byID[tr.ID()] = tr
		}
		for _, id := range s.chosen {
			tr, ok := byID[id]
			if !ok {
				t.Fatalf("step %d: traced transformation %q is not enumerable at the replayed configuration", i+1, id)
			}
			cfg = tr.Apply(cfg)
		}
	}
	if got := cfg.Fingerprint(); got != bestFP {
		t.Fatalf("replayed configuration fingerprint %s != recommended %s", got, bestFP)
	}
}

package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Sink consumes trace events. Implementations must be safe for
// concurrent use.
type Sink interface {
	Emit(e Event)
	Close() error
}

// JSONLSink writes one JSON object per event, suitable for offline
// analysis (jq, replay, flame-scope style tooling).
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	enc *json.Encoder
}

// NewJSONLSink wraps w; if w is an io.Closer, Close closes it after
// flushing.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	s := &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit writes the event as one JSON line. Encoding errors are dropped:
// tracing must never fail a tuning session.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.enc.Encode(e)
}

// Close flushes buffered events and closes the underlying writer when
// it is closable.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// MemorySink buffers events in memory; tests and the explain pipeline
// read them back with Events.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Emit appends the event.
func (s *MemorySink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, e)
}

// Events returns a copy of everything emitted so far.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Len returns the number of buffered events.
func (s *MemorySink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// Reset discards all buffered events.
func (s *MemorySink) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = nil
}

// Close is a no-op.
func (s *MemorySink) Close() error { return nil }

// multiSink fans events out to several sinks.
type multiSink struct{ sinks []Sink }

// MultiSink fans every event out to all non-nil sinks. With zero or one
// sink it collapses to the trivial form.
func MultiSink(sinks ...Sink) Sink {
	var nz []Sink
	for _, s := range sinks {
		if s != nil {
			nz = append(nz, s)
		}
	}
	switch len(nz) {
	case 0:
		return nil
	case 1:
		return nz[0]
	}
	return &multiSink{sinks: nz}
}

func (m *multiSink) Emit(e Event) {
	for _, s := range m.sinks {
		s.Emit(e)
	}
}

func (m *multiSink) Close() error {
	var err error
	for _, s := range m.sinks {
		if cerr := s.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

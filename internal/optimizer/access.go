package optimizer

import (
	"strings"

	"repro/internal/physical"
	"repro/internal/plan"
	"repro/internal/storage"
)

// accessSpec describes a single-relation access path problem: which
// table/view to read, under which sargable and residual predicates, with
// which required order and needed columns. All column names are local to
// the relation.
type accessSpec struct {
	table  string
	view   *physical.View // nil for base tables
	rows   int64
	sargs  []SargCond
	others []residCond
	order  []string
	needed []string
	// orderOptional marks interesting orders: when no index provides the
	// order the access path stays unsorted and the caller (e.g. the root,
	// which may prefer hash aggregation) decides how to compensate. When
	// false, an explicit sort is appended.
	orderOptional bool
	// qual prefixes column names in plan order properties ("table.col").
	qual string
	// width is the average byte width of the needed columns (sort sizing).
	width int
	// eqBound memoizes eqBoundCols — specs are per-call and
	// single-threaded, and the set is consulted once per candidate plan.
	eqBound map[string]bool
}

// findSarg returns the first sargable condition on col, or nil.
func (s *accessSpec) findSarg(col string) *SargCond {
	for i := range s.sargs {
		if strings.EqualFold(s.sargs[i].Col, col) {
			return &s.sargs[i]
		}
	}
	return nil
}

// residCond is one residual (non-sargable) conjunct: its local columns and
// selectivity.
type residCond struct {
	cols []string
	sel  float64
}

func (s *accessSpec) qualify(cols []string) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = s.qual + "." + c
	}
	return out
}

// eqBoundCols returns the qualified columns bound to single points by the
// sargable predicates; such columns can be skipped when checking order
// satisfaction.
func (s *accessSpec) eqBoundCols() map[string]bool {
	if s.eqBound == nil {
		out := map[string]bool{}
		for _, c := range s.sargs {
			if c.Iv.IsPoint() {
				out[strings.ToLower(s.qual+"."+c.Col)] = true
			}
		}
		s.eqBound = out
	}
	return s.eqBound
}

// accessResult couples a candidate plan with its index usage records.
type accessResult struct {
	node   plan.Node
	usages []*plan.IndexUsage
}

func (r *accessResult) cost() float64 {
	if r == nil || r.node == nil {
		return inf
	}
	return r.node.TotalCost().Total()
}

const inf = 1e308

// bestAccess generates the access path alternatives of Figure 1 — index
// seeks, rid intersections, rid lookups, covering scans, heap scans,
// residual filters and sorts — over the indexes available in cfg, and
// returns the cheapest.
func (o *Optimizer) bestAccess(oc *optCtx, cfg *physical.Configuration, spec *accessSpec) *accessResult {
	indexes := oc.indexesOn(cfg, spec.table)
	clustered := cfg.ClusteredOn(spec.table)

	var best *accessResult
	consider := func(r *accessResult) {
		if r != nil && r.node != nil && (best == nil || r.cost() < best.cost()) {
			best = r
		}
	}

	for _, ix := range indexes {
		consider(o.seekPlan(cfg, spec, ix, clustered))
		consider(o.scanPlan(cfg, spec, ix))
	}
	// Binary rid intersections between seekable secondary indexes; seek
	// prefixes are resolved once per index and shared across pairs.
	var seekable []*physical.Index
	var infos []seekInfo
	for _, ix := range indexes {
		if ix.Clustered {
			continue
		}
		if k, _ := o.seekPrefixLen(spec, ix); k > 0 {
			seekable = append(seekable, ix)
			infos = append(infos, o.seekPrefix(spec, ix))
		}
	}
	for i := 0; i < len(seekable); i++ {
		for j := i + 1; j < len(seekable); j++ {
			consider(o.intersectPlan(cfg, spec, seekable[i], seekable[j], infos[i], infos[j], clustered))
		}
	}
	if clustered == nil {
		consider(o.heapScanPlan(cfg, spec))
	}
	return best
}

// seekInfo is the outcome of matching sargable predicates to a key
// prefix. The consumed sargable columns are exactly the matched prefix,
// so no separate "used" set is tracked; prefixUses answers membership.
type seekInfo struct {
	cols    []string // matched key prefix (aliases the index's Keys)
	colSels []float64
	sel     float64
}

// seekPrefixLen returns the length and combined selectivity of the
// longest usable key prefix — equality-bound columns extend the prefix;
// the first range-bound column is consumed and ends it — without
// materializing per-column data.
func (o *Optimizer) seekPrefixLen(spec *accessSpec, ix *physical.Index) (int, float64) {
	k, sel := 0, 1.0
	for _, key := range ix.Keys {
		cond := spec.findSarg(key)
		if cond == nil {
			break
		}
		k++
		sel *= cond.Sel
		if !cond.Iv.IsPoint() {
			break // a range column ends the seekable prefix
		}
	}
	return k, sel
}

// seekPrefix resolves the longest usable key prefix with its per-column
// selectivities. The cols slice aliases the index's key list.
func (o *Optimizer) seekPrefix(spec *accessSpec, ix *physical.Index) seekInfo {
	k, _ := o.seekPrefixLen(spec, ix)
	info := seekInfo{sel: 1}
	if k == 0 {
		return info
	}
	info.cols = ix.Keys[:k:k]
	info.colSels = make([]float64, k)
	for i := 0; i < k; i++ {
		s := spec.findSarg(ix.Keys[i]).Sel
		info.colSels[i] = s
		info.sel *= s
	}
	return info
}

// prefixUses reports whether the matched key prefix consumed a sargable
// predicate on col (the consumed columns are exactly the prefix).
func prefixUses(prefix []string, col string) bool {
	for _, c := range prefix {
		if strings.EqualFold(c, col) {
			return true
		}
	}
	return false
}

// residualAfter splits the predicates not consumed by a seek into those
// evaluable on the index (before any lookup) and those requiring fetched
// columns, returning the combined selectivities. used is the seek's
// matched key prefix.
func (o *Optimizer) residualAfter(spec *accessSpec, ix *physical.Index, used []string) (onSel, offSel float64, any bool) {
	onSel, offSel = 1, 1
	for _, c := range spec.sargs {
		if prefixUses(used, c.Col) {
			continue
		}
		any = true
		if ix.HasColumn(c.Col) {
			onSel *= c.Sel
		} else {
			offSel *= c.Sel
		}
	}
	for _, rc := range spec.others {
		any = true
		on := true
		for _, c := range rc.cols {
			if !ix.HasColumn(c) {
				on = false
				break
			}
		}
		if on {
			onSel *= rc.sel
		} else {
			offSel *= rc.sel
		}
	}
	return onSel, offSel, any
}

// primaryPages returns the page count of the relation's primary structure
// (clustered index or heap) for rid-lookup costing.
func (o *Optimizer) primaryPages(cfg *physical.Configuration, spec *accessSpec, clustered *physical.Index) int64 {
	if clustered != nil {
		return o.sizer.IndexLeafPages(clustered, cfg)
	}
	return o.sizer.HeapPages(spec.table, cfg)
}

func (o *Optimizer) seekPlan(cfg *physical.Configuration, spec *accessSpec, ix *physical.Index, clustered *physical.Index) *accessResult {
	info := o.seekPrefix(spec, ix)
	if len(info.cols) == 0 {
		return nil
	}
	leafPages := o.sizer.IndexLeafPages(ix, cfg)
	height := o.sizer.IndexHeight(ix, cfg)
	rowsAfterSeek := float64(spec.rows) * info.sel
	access := plan.Cost{
		IO:  float64(height)*o.model.RandPage + storage.FracPages(leafPages, info.sel)*o.model.SeqPage,
		CPU: o.model.CPURow * rowsAfterSeek,
	}
	usage := &plan.IndexUsage{
		Index: ix, Seek: true, SeekCols: info.cols, SeekColSels: info.colSels, Selectivity: info.sel,
		Rows: rowsAfterSeek, AccessCost: access, NeededCols: spec.needed,
	}
	if spec.view != nil {
		usage.ViewName = spec.view.Name
	}
	var node plan.Node = plan.NewIndexSeek(ix, info.cols, info.sel, rowsAfterSeek, access, spec.qualify(ix.Keys))

	onSel, offSel, _ := o.residualAfter(spec, ix, info.cols)
	if onSel < 1 {
		node = plan.NewFilter(node, onSel, "index-residual", node.TotalCost().Add(plan.Cost{CPU: o.model.CPURow * node.OutRows()}))
	}
	if !ix.Covers(spec.needed) {
		k := node.OutRows()
		lk := o.model.RidLookupCost(spec.rows, o.primaryPages(cfg, spec, clustered), k)
		node = plan.NewRidLookup(node, spec.table, node.TotalCost().Add(lk))
		usage.LookedUp = true
	}
	if offSel < 1 {
		node = plan.NewFilter(node, offSel, "post-lookup-residual", node.TotalCost().Add(plan.Cost{CPU: o.model.CPURow * node.OutRows()}))
	}
	node, satisfied := o.enforceOrder(spec, node)
	if satisfied {
		usage.OrderCols = spec.order
	}
	return &accessResult{node: node, usages: []*plan.IndexUsage{usage}}
}

func (o *Optimizer) scanPlan(cfg *physical.Configuration, spec *accessSpec, ix *physical.Index) *accessResult {
	if !ix.Covers(spec.needed) {
		return nil // non-covering full scans are dominated by primary scans
	}
	leafPages := o.sizer.IndexLeafPages(ix, cfg)
	rows := float64(spec.rows)
	access := plan.Cost{IO: float64(leafPages) * o.model.SeqPage, CPU: o.model.CPURow * rows}
	usage := &plan.IndexUsage{
		Index: ix, Seek: false, Selectivity: 1,
		Rows: rows, AccessCost: access, NeededCols: spec.needed,
	}
	if spec.view != nil {
		usage.ViewName = spec.view.Name
	}
	var node plan.Node = plan.NewIndexScan(ix, rows, access, spec.qualify(ix.Keys))
	node = o.filterAll(spec, node)
	node, satisfied := o.enforceOrder(spec, node)
	if satisfied {
		usage.OrderCols = spec.order
	}
	return &accessResult{node: node, usages: []*plan.IndexUsage{usage}}
}

func (o *Optimizer) heapScanPlan(cfg *physical.Configuration, spec *accessSpec) *accessResult {
	pages := o.sizer.HeapPages(spec.table, cfg)
	rows := float64(spec.rows)
	access := plan.Cost{IO: float64(pages) * o.model.SeqPage, CPU: o.model.CPURow * rows}
	var node plan.Node = plan.NewHeapScan(spec.table, rows, access)
	node = o.filterAll(spec, node)
	node, _ = o.enforceOrder(spec, node)
	return &accessResult{node: node}
}

func (o *Optimizer) intersectPlan(cfg *physical.Configuration, spec *accessSpec, i1, i2 *physical.Index, s1, s2 seekInfo, clustered *physical.Index) *accessResult {
	if len(s1.cols) == 0 || len(s2.cols) == 0 {
		return nil
	}
	mkSeek := func(ix *physical.Index, info seekInfo) (plan.Node, *plan.IndexUsage) {
		leafPages := o.sizer.IndexLeafPages(ix, cfg)
		height := o.sizer.IndexHeight(ix, cfg)
		rows := float64(spec.rows) * info.sel
		access := plan.Cost{
			IO:  float64(height)*o.model.RandPage + storage.FracPages(leafPages, info.sel)*o.model.SeqPage,
			CPU: o.model.CPURow * rows,
		}
		u := &plan.IndexUsage{
			Index: ix, Seek: true, SeekCols: info.cols, SeekColSels: info.colSels, Selectivity: info.sel,
			Rows: rows, AccessCost: access, NeededCols: spec.needed,
			InIntersection: true, LookedUp: true,
		}
		if spec.view != nil {
			u.ViewName = spec.view.Name
		}
		return plan.NewIndexSeek(ix, info.cols, info.sel, rows, access, nil), u
	}
	n1, u1 := mkSeek(i1, s1)
	n2, u2 := mkSeek(i2, s2)
	outRows := float64(spec.rows) * s1.sel * s2.sel
	icost := n1.TotalCost().Add(n2.TotalCost()).Add(plan.Cost{CPU: o.model.CPUHash * (n1.OutRows() + n2.OutRows())})
	var node plan.Node = plan.NewRidIntersect(n1, n2, outRows, icost)

	// Intersections produce rids; fetch the rows, then apply residuals.
	lk := o.model.RidLookupCost(spec.rows, o.primaryPages(cfg, spec, clustered), outRows)
	node = plan.NewRidLookup(node, spec.table, node.TotalCost().Add(lk))
	residSel := 1.0
	for _, c := range spec.sargs {
		if !prefixUses(s1.cols, c.Col) && !prefixUses(s2.cols, c.Col) {
			residSel *= c.Sel
		}
	}
	for _, rc := range spec.others {
		residSel *= rc.sel
	}
	if residSel < 1 {
		node = plan.NewFilter(node, residSel, "post-intersect-residual", node.TotalCost().Add(plan.Cost{CPU: o.model.CPURow * node.OutRows()}))
	}
	node, _ = o.enforceOrder(spec, node)
	return &accessResult{node: node, usages: []*plan.IndexUsage{u1, u2}}
}

// filterAll applies every predicate of the spec as one residual filter.
func (o *Optimizer) filterAll(spec *accessSpec, node plan.Node) plan.Node {
	sel := 1.0
	for _, c := range spec.sargs {
		sel *= c.Sel
	}
	for _, rc := range spec.others {
		sel *= rc.sel
	}
	if sel >= 1 {
		return node
	}
	return plan.NewFilter(node, sel, "scan-residual", node.TotalCost().Add(plan.Cost{CPU: o.model.CPURow * node.OutRows()}))
}

// enforceOrder handles the spec's order requirement. It reports whether
// the access path provided the order "for free" (an index supplied it):
// in that case the index usage may record the exploited order. When the
// order is unsatisfied, a sort is appended — unless the order is
// optional, in which case the node is returned unsorted and the caller
// compensates.
func (o *Optimizer) enforceOrder(spec *accessSpec, node plan.Node) (plan.Node, bool) {
	if len(spec.order) == 0 {
		return node, false
	}
	want := spec.qualify(spec.order)
	if plan.OrderSatisfies(node.OutOrder(), want, spec.eqBoundCols()) {
		return node, true
	}
	if spec.orderOptional {
		return node, false
	}
	pages := node.OutRows() * float64(spec.width) / storage.PageSize
	sc := o.model.SortCost(node.OutRows(), pages)
	return plan.NewSort(node, want, node.TotalCost().Add(sc)), false
}

package optimizer

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/physical"
	"repro/internal/plan"
)

// findNode walks the plan tree for a node whose label contains substr.
func findNode(root plan.Node, substr string) plan.Node {
	if strings.Contains(root.Label(), substr) {
		return root
	}
	for _, c := range root.Children() {
		if n := findNode(c, substr); n != nil {
			return n
		}
	}
	return nil
}

func TestSeekChosenOverScanWhenSelective(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	cfg.AddIndex(physical.NewIndex("r", []string{"b"}, []string{"a"}, false))
	q := mustBind(t, db, "SELECT a FROM r WHERE b = 7")
	p := mustPlan(t, o, q, cfg)
	if findNode(p.Root, "IndexSeek") == nil {
		t.Errorf("selective equality should seek:\n%s", plan.Format(p.Root))
	}
	if len(p.Usages) != 1 || !p.Usages[0].Seek {
		t.Errorf("usage should record a seek: %+v", p.Usages)
	}
}

func TestScanWhenNotSelective(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	q := mustBind(t, db, "SELECT a FROM r")
	p := mustPlan(t, o, q, cfg)
	if findNode(p.Root, "IndexScan") == nil {
		t.Errorf("no predicate should scan:\n%s", plan.Format(p.Root))
	}
}

func TestNarrowCoveringIndexBeatsClusteredScan(t *testing.T) {
	db := testDB(t)
	o := New(db)
	base := baseCfg(db)
	q := mustBind(t, db, "SELECT a FROM r")
	pBase := mustPlan(t, o, q, base)

	withNarrow := base.Clone()
	narrow := physical.NewIndex("r", []string{"a"}, nil, false)
	withNarrow.AddIndex(narrow)
	pNarrow := mustPlan(t, o, q, withNarrow)
	if pNarrow.Cost.Total() >= pBase.Cost.Total() {
		t.Errorf("narrow covering index should be cheaper: %g >= %g",
			pNarrow.Cost.Total(), pBase.Cost.Total())
	}
	if !pNarrow.UsesIndex(narrow.ID()) {
		t.Error("plan should use the narrow index")
	}
}

func TestRidLookupWhenNotCovering(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	cfg.AddIndex(physical.NewIndex("r", []string{"b"}, nil, false))
	q := mustBind(t, db, "SELECT pad FROM r WHERE b = 7")
	p := mustPlan(t, o, q, cfg)
	if findNode(p.Root, "RidLookup") == nil {
		t.Errorf("non-covering seek needs rid lookups:\n%s", plan.Format(p.Root))
	}
	var seekUsage *plan.IndexUsage
	for _, u := range p.Usages {
		if u.Seek {
			seekUsage = u
		}
	}
	if seekUsage == nil || !seekUsage.LookedUp {
		t.Errorf("usage should record the lookup: %+v", p.Usages)
	}
}

func TestCoveringIndexAvoidsLookup(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	cfg.AddIndex(physical.NewIndex("r", []string{"b"}, []string{"pad"}, false))
	q := mustBind(t, db, "SELECT pad FROM r WHERE b = 7")
	p := mustPlan(t, o, q, cfg)
	if findNode(p.Root, "RidLookup") != nil {
		t.Errorf("covering index should avoid lookups:\n%s", plan.Format(p.Root))
	}
}

func TestOrderProvidingIndexAvoidsSort(t *testing.T) {
	db := testDB(t)
	o := New(db)
	base := baseCfg(db)
	q := mustBind(t, db, "SELECT b, a FROM r WHERE c = 1 ORDER BY b")

	pBase := mustPlan(t, o, q, base)
	if findNode(pBase.Root, "Sort") == nil {
		t.Errorf("without a b-index a sort is needed:\n%s", plan.Format(pBase.Root))
	}

	withIdx := base.Clone()
	withIdx.AddIndex(physical.NewIndex("r", []string{"b"}, []string{"a", "c"}, false))
	pIdx := mustPlan(t, o, q, withIdx)
	if findNode(pIdx.Root, "Sort") != nil {
		t.Errorf("b-keyed covering index should avoid the sort:\n%s", plan.Format(pIdx.Root))
	}
	if pIdx.Cost.Total() >= pBase.Cost.Total() {
		t.Error("sort-avoiding plan should be cheaper")
	}
	// The usage must record the exploited order (§3.3.2 needs it).
	foundOrder := false
	for _, u := range pIdx.Usages {
		if len(u.OrderCols) > 0 {
			foundOrder = true
		}
	}
	if !foundOrder {
		t.Error("usage should record the required order")
	}
}

func TestEqualityBoundColumnSkippedInOrder(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	// Index on (c, b): with c bound by equality, output is ordered by b.
	cfg.AddIndex(physical.NewIndex("r", []string{"c", "b"}, []string{"a"}, false))
	q := mustBind(t, db, "SELECT b, a FROM r WHERE c = 1 ORDER BY b")
	p := mustPlan(t, o, q, cfg)
	if findNode(p.Root, "Sort") != nil {
		t.Errorf("equality-bound prefix should satisfy ORDER BY b:\n%s", plan.Format(p.Root))
	}
}

func TestRidIntersectionPlan(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	cfg.AddIndex(physical.NewIndex("r", []string{"a"}, nil, false))
	cfg.AddIndex(physical.NewIndex("r", []string{"b"}, nil, false))
	// Fetching the wide pad column: intersection first cuts lookups from
	// ~1000 (a=5) or ~100 (b=7) down to ~1.
	q := mustBind(t, db, "SELECT pad FROM r WHERE a = 5 AND b = 7")
	p := mustPlan(t, o, q, cfg)
	if findNode(p.Root, "RidIntersect") == nil {
		t.Logf("plan:\n%s", plan.Format(p.Root))
		t.Skip("intersection not chosen under this cost model; acceptable if a single seek dominates")
	}
	inIntersection := 0
	for _, u := range p.Usages {
		if u.InIntersection {
			inIntersection++
		}
	}
	if inIntersection != 2 {
		t.Errorf("expected two intersection usages: %+v", p.Usages)
	}
}

func TestSeekPrefixStopsAtRange(t *testing.T) {
	db := testDB(t)
	o := New(db)
	spec := &accessSpec{
		table: "r", rows: 100_000,
		sargs: []SargCond{
			{Col: "c", Iv: physical.PointInterval(1), Sel: 0.1},
			{Col: "b", Iv: physical.Interval{Lo: 0, Hi: 100, LoIncl: true}, Sel: 0.1},
			{Col: "a", Iv: physical.PointInterval(5), Sel: 0.01},
		},
	}
	ix := physical.NewIndex("r", []string{"c", "b", "a"}, nil, false)
	info := o.seekPrefix(spec, ix)
	// c (point) extends, b (range) consumes and stops; a is unreachable.
	if len(info.cols) != 2 {
		t.Errorf("seek prefix: %v", info.cols)
	}
}

func TestHeapScanWhenNoClusteredIndex(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := physical.NewConfiguration() // no indexes at all
	q := mustBind(t, db, "SELECT a FROM r WHERE b = 7")
	p := mustPlan(t, o, q, cfg)
	if findNode(p.Root, "HeapScan") == nil {
		t.Errorf("heap scan expected:\n%s", plan.Format(p.Root))
	}
}

// Property: adding an index to a configuration never increases the
// optimal plan cost (the optimality assumption the paper relies on).
func TestPlanCostMonotoneInIndexes(t *testing.T) {
	db := testDB(t)
	o := New(db)
	rng := rand.New(rand.NewSource(31))
	queries := []string{
		"SELECT a, b FROM r WHERE b < 200",
		"SELECT pad FROM r WHERE a = 5 AND c = 2",
		"SELECT a, SUM(b) FROM r WHERE c = 1 GROUP BY a",
		"SELECT r.a, u.x FROM r, u WHERE r.a = u.fk AND u.x = 3",
		"SELECT b FROM r WHERE a = 1 ORDER BY b",
	}
	cols := []string{"a", "b", "c", "s", "pad"}
	for trial := 0; trial < 30; trial++ {
		cfg := baseCfg(db)
		for i := 0; i < rng.Intn(3); i++ {
			k := cols[rng.Intn(len(cols))]
			s := cols[rng.Intn(len(cols))]
			cfg.AddIndex(physical.NewIndex("r", []string{k}, []string{s}, false))
		}
		src := queries[rng.Intn(len(queries))]
		q := mustBind(t, db, src)
		before := mustPlan(t, o, q, cfg).Cost.Total()

		bigger := cfg.Clone()
		k := cols[rng.Intn(len(cols))]
		bigger.AddIndex(physical.NewIndex("r", []string{k}, []string{"a", "b", "c"}, false))
		after := mustPlan(t, o, q, bigger).Cost.Total()
		if after > before*1.0000001 {
			t.Errorf("trial %d: adding an index increased cost for %q: %g -> %g",
				trial, src, before, after)
		}
	}
}

package optimizer

import (
	"fmt"
	"sync"
	"testing"
)

// allocQuery is the workhorse shape for the allocation pins and
// benchmarks: a two-table join with a sargable range, a projection,
// and an ORDER BY, so one Optimize call walks access-path selection,
// join enumeration, and the interesting-order machinery.
const allocQuery = "SELECT r.b, u.x FROM r, u WHERE r.a = u.fk AND r.b < 100 ORDER BY r.b"

// TestOptimizeAllocsPinned pins the allocation count of a single
// what-if Optimize call. The batch scenarios make tens of thousands of
// these calls, so a per-call creep multiplies into the regression the
// alloc_bytes gate catches late; this pin catches it at the unit level.
// The bounds are ceilings with headroom for GC emptying the optCtx
// pool mid-measurement, not exact counts — moving one of them up in a
// change that doesn't intend to touch the hot path deserves a hard
// look.
func TestOptimizeAllocsPinned(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	q := mustBind(t, db, allocQuery)
	mustPlan(t, o, q, cfg) // warm the pool and the per-query block memo

	t.Run("no-hooks", func(t *testing.T) {
		avg := testing.AllocsPerRun(100, func() {
			if _, err := o.Optimize(q, cfg); err != nil {
				t.Fatal(err)
			}
		})
		// Re-costing calls build plan nodes for the winning candidates
		// but no request objects and no per-call maps: ~37 allocations
		// measured, pinned at 2× for pool-eviction headroom.
		const ceiling = 80
		if avg > ceiling {
			t.Errorf("Optimize without hooks allocates %.1f objects per call, ceiling %d", avg, ceiling)
		}
		t.Logf("Optimize without hooks: %.1f allocs/call", avg)
	})

	t.Run("with-hooks", func(t *testing.T) {
		var requests int
		o.SetHooks(&Hooks{
			OnIndexRequest: func(req *IndexRequest) { requests++ },
			OnViewRequest:  func(req *ViewRequest) { requests++ },
		})
		defer o.SetHooks(nil)
		if _, err := o.Optimize(q, cfg); err != nil { // warm again with hooks
			t.Fatal(err)
		}
		avg := testing.AllocsPerRun(100, func() {
			if _, err := o.Optimize(q, cfg); err != nil {
				t.Fatal(err)
			}
		})
		if requests == 0 {
			t.Fatal("hooks installed but no requests fired; the pin is measuring the wrong path")
		}
		// Hooked calls additionally materialize one IndexRequest (plus
		// its S/N/O/A slices) per first-seen request: ~53 allocations
		// measured, pinned at 2× for pool-eviction headroom.
		const ceiling = 120
		if avg > ceiling {
			t.Errorf("Optimize with hooks allocates %.1f objects per call, ceiling %d", avg, ceiling)
		}
		t.Logf("Optimize with hooks: %.1f allocs/call", avg)
	})
}

// TestForkPoolSharing proves pooled optimization state never leaks
// across concurrent forked workers: many goroutines repeatedly optimize
// the same bound queries (so every worker keeps drawing previously-used
// scratch contexts from the shared pool) and every result must be
// bit-identical to the serial reference. Run under -race this also
// checks the pool handoff and the per-query block memo for data races.
func TestForkPoolSharing(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)

	queries := []*BoundQuery{
		mustBind(t, db, allocQuery),
		mustBind(t, db, "SELECT r.c FROM r WHERE r.b < 500 AND r.c = 3"),
		mustBind(t, db, "SELECT r.a, u.x FROM r, u WHERE r.a = u.fk GROUP BY r.a, u.x"),
	}
	want := make([]float64, len(queries))
	for i, q := range queries {
		want[i] = mustPlan(t, o, q, cfg).Root.TotalCost().Total()
	}

	const workers = 8
	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f := o.Fork()
			for r := 0; r < rounds; r++ {
				for i, q := range queries {
					p, err := f.Optimize(q, cfg)
					if err != nil {
						errs <- err
						return
					}
					if got := p.Root.TotalCost().Total(); got != want[i] {
						errs <- fmt.Errorf("worker %d round %d query %d: cost %v, serial reference %v", w, r, i, got, want[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// BenchmarkOptimize measures one what-if call on the two-table join —
// the unit of work the batch scenarios repeat thousands of times. CI
// runs it with -benchmem; the allocation figures are the per-call view
// of the alloc_bytes scenario gate.
func BenchmarkOptimize(b *testing.B) {
	db := testDB(b)
	o := New(db)
	cfg := baseCfg(db)
	q := mustBind(b, db, allocQuery)
	mustPlan(b, o, q, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Optimize(q, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeHooked is BenchmarkOptimize with the §2 request
// hooks installed, covering the request-materialization path the
// tuner's instrumented calls take.
func BenchmarkOptimizeHooked(b *testing.B) {
	db := testDB(b)
	o := New(db)
	cfg := baseCfg(db)
	o.SetHooks(&Hooks{
		OnIndexRequest: func(*IndexRequest) {},
		OnViewRequest:  func(*ViewRequest) {},
	})
	q := mustBind(b, db, allocQuery)
	mustPlan(b, o, q, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Optimize(q, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeParallel exercises the pooled scratch contexts under
// contention: GOMAXPROCS-many goroutines each optimizing through their
// own Fork, drawing from the shared context pool.
func BenchmarkOptimizeParallel(b *testing.B) {
	db := testDB(b)
	o := New(db)
	cfg := baseCfg(db)
	q := mustBind(b, db, allocQuery)
	mustPlan(b, o, q, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		f := o.Fork()
		for pb.Next() {
			if _, err := f.Optimize(q, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestAllocFixtureCoversAccessPaths guards against the fixture
// drifting into something the pins silently stop covering: the base
// configuration must keep a clustered index per table so seeks, scans,
// and the INL probe path all stay reachable.
func TestAllocFixtureCoversAccessPaths(t *testing.T) {
	db := testDB(t)
	cfg := baseCfg(db)
	for _, tb := range db.Tables() {
		if cfg.ClusteredOn(tb.Name) == nil {
			t.Errorf("fixture table %s has no clustered index; the alloc pins would measure a degenerate plan space", tb.Name)
		}
	}
}

package optimizer

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/physical"
	"repro/internal/sqlx"
)

// SargCond is a sargable single-column condition with its estimated
// selectivity.
type SargCond struct {
	Col string // table-local column name
	Iv  physical.Interval
	Sel float64
}

// OtherCond is a non-sargable conjunct with its estimated selectivity and
// the columns it references.
type OtherCond struct {
	Expr sqlx.Expr
	Sel  float64
	Cols []sqlx.ColRef
}

// TablePreds groups the single-table predicates of one referenced table.
type TablePreds struct {
	Sargs  []SargCond
	Others []OtherCond
}

// SargSelectivity returns the product of sargable selectivities.
func (tp *TablePreds) SargSelectivity() float64 {
	s := 1.0
	for _, c := range tp.Sargs {
		s *= c.Sel
	}
	return s
}

// OtherSelectivity returns the product of non-sargable selectivities.
func (tp *TablePreds) OtherSelectivity() float64 {
	s := 1.0
	for _, c := range tp.Others {
		s *= c.Sel
	}
	return s
}

// TotalSelectivity is the product over all conjuncts.
func (tp *TablePreds) TotalSelectivity() float64 {
	return tp.SargSelectivity() * tp.OtherSelectivity()
}

// BoundQuery is a statement bound against a catalog: aliases resolved to
// real table names, predicates classified into equi-joins, per-table
// sargable ranges, and "other" conjuncts (the three classes of the
// paper), selectivities estimated, and required column sets computed.
type BoundQuery struct {
	SQL  string
	Kind sqlx.StmtKind

	Tables []string // real table names in FROM order (no self-joins)
	Preds  map[string]*TablePreds
	Joins  []physical.JoinPred
	// CrossOthers are non-equi-join predicates spanning tables; applied
	// after the join of all their referenced tables.
	CrossOthers []OtherCond

	SelectCols []physical.ViewColumn // outputs in view-column form
	GroupBy    []sqlx.ColRef
	OrderBy    []sqlx.ColRef
	Top        int

	// Needed maps each table to every column referenced anywhere in the
	// query (outputs, predicates, grouping, ordering).
	Needed map[string][]string

	// Update/insert/delete specifics.
	UpdateTable string
	SetCols     []string
	InsertRows  int

	db *catalog.Database

	// blockMemo caches the SPJG view blocks of table subsets (see
	// Optimizer.viewBlock). Blocks depend only on the bound query and the
	// catalog statistics, never on the configuration being costed, so they
	// are computed once per query. Forked workers optimize the same bound
	// query concurrently, hence the mutex.
	blockMu   sync.Mutex
	blockMemo map[uint64]viewBlockEntry
}

// Bind resolves and classifies a parsed statement against db. Statements
// referencing unknown tables or columns, or joining a table with itself,
// are rejected.
func Bind(db *catalog.Database, stmt sqlx.Statement) (*BoundQuery, error) {
	b := &binder{db: db, q: &BoundQuery{
		SQL:    stmt.SQL(),
		Kind:   stmt.Kind(),
		Preds:  map[string]*TablePreds{},
		Needed: map[string][]string{},
		db:     db,
	}}
	switch s := stmt.(type) {
	case *sqlx.SelectStmt:
		return b.bindSelect(s)
	case *sqlx.UpdateStmt:
		return b.bindUpdate(s)
	case *sqlx.InsertStmt:
		return b.bindInsert(s)
	case *sqlx.DeleteStmt:
		return b.bindDelete(s)
	default:
		return nil, fmt.Errorf("optimizer: unsupported statement type %T", stmt)
	}
}

type binder struct {
	db      *catalog.Database
	q       *BoundQuery
	binding map[string]string // alias/name (lower) -> real table name
}

func (b *binder) bindSelect(s *sqlx.SelectStmt) (*BoundQuery, error) {
	if len(s.From) == 0 {
		return nil, fmt.Errorf("optimizer: SELECT with empty FROM")
	}
	if err := b.bindFrom(s.From); err != nil {
		return nil, err
	}
	for _, it := range s.Items {
		vc, err := b.bindSelectItem(it)
		if err != nil {
			return nil, err
		}
		b.q.SelectCols = append(b.q.SelectCols, vc)
	}
	if err := b.classifyWhere(s.Where); err != nil {
		return nil, err
	}
	for _, g := range s.GroupBy {
		c, err := b.resolveCol(g)
		if err != nil {
			return nil, err
		}
		b.q.GroupBy = append(b.q.GroupBy, c)
	}
	for _, o := range s.OrderBy {
		c, err := b.resolveCol(o.Col)
		if err != nil {
			return nil, err
		}
		b.q.OrderBy = append(b.q.OrderBy, c)
	}
	b.q.Top = s.Top
	b.computeNeeded()
	return b.q, nil
}

func (b *binder) bindUpdate(s *sqlx.UpdateStmt) (*BoundQuery, error) {
	if err := b.bindFrom([]sqlx.TableRef{s.Table}); err != nil {
		return nil, err
	}
	b.q.UpdateTable = b.q.Tables[0]
	t := b.db.Table(b.q.UpdateTable)
	for _, set := range s.Sets {
		col := t.Column(set.Column)
		if col == nil {
			return nil, fmt.Errorf("optimizer: unknown column %s.%s in SET", t.Name, set.Column)
		}
		b.q.SetCols = append(b.q.SetCols, col.Name)
		// The SET expressions become outputs of the pure select part
		// (§3.6's query separation).
		for _, c := range set.Value.Columns(nil) {
			rc, err := b.resolveCol(c)
			if err != nil {
				return nil, err
			}
			w := 8
			if cc := t.Column(rc.Column); cc != nil {
				w = cc.AvgWidth
			}
			b.q.SelectCols = append(b.q.SelectCols, physical.BaseViewColumn(rc, w))
		}
	}
	if err := b.classifyWhere(s.Where); err != nil {
		return nil, err
	}
	b.q.Top = s.Top
	b.computeNeeded()
	return b.q, nil
}

func (b *binder) bindInsert(s *sqlx.InsertStmt) (*BoundQuery, error) {
	if err := b.bindFrom([]sqlx.TableRef{s.Table}); err != nil {
		return nil, err
	}
	b.q.UpdateTable = b.q.Tables[0]
	b.q.InsertRows = s.Rows
	// Inserts touch every column.
	t := b.db.Table(b.q.UpdateTable)
	b.q.SetCols = t.ColumnNames()
	b.computeNeeded()
	return b.q, nil
}

func (b *binder) bindDelete(s *sqlx.DeleteStmt) (*BoundQuery, error) {
	if err := b.bindFrom([]sqlx.TableRef{s.Table}); err != nil {
		return nil, err
	}
	b.q.UpdateTable = b.q.Tables[0]
	// Deletes touch every index regardless of columns.
	t := b.db.Table(b.q.UpdateTable)
	b.q.SetCols = t.ColumnNames()
	if err := b.classifyWhere(s.Where); err != nil {
		return nil, err
	}
	b.computeNeeded()
	return b.q, nil
}

func (b *binder) bindFrom(from []sqlx.TableRef) error {
	b.binding = map[string]string{}
	seen := map[string]bool{}
	for _, tr := range from {
		t := b.db.Table(tr.Name)
		if t == nil {
			return fmt.Errorf("optimizer: unknown table %q", tr.Name)
		}
		lower := strings.ToLower(t.Name)
		if seen[lower] {
			return fmt.Errorf("optimizer: self-joins are not supported (table %s referenced twice)", t.Name)
		}
		seen[lower] = true
		b.binding[strings.ToLower(tr.Binding())] = t.Name
		b.binding[lower] = t.Name
		b.q.Tables = append(b.q.Tables, t.Name)
		b.q.Preds[t.Name] = &TablePreds{}
	}
	return nil
}

// resolveCol maps an AST column reference to a canonical one whose Table
// field is the real catalog table name.
func (b *binder) resolveCol(c sqlx.ColRef) (sqlx.ColRef, error) {
	if c.Table != "" {
		real, ok := b.binding[strings.ToLower(c.Table)]
		if !ok {
			return sqlx.ColRef{}, fmt.Errorf("optimizer: unknown table or alias %q", c.Table)
		}
		t := b.db.Table(real)
		col := t.Column(c.Column)
		if col == nil {
			return sqlx.ColRef{}, fmt.Errorf("optimizer: unknown column %s.%s", real, c.Column)
		}
		return sqlx.ColRef{Table: t.Name, Column: col.Name}, nil
	}
	var found sqlx.ColRef
	matches := 0
	for _, tn := range b.q.Tables {
		t := b.db.Table(tn)
		if col := t.Column(c.Column); col != nil {
			found = sqlx.ColRef{Table: t.Name, Column: col.Name}
			matches++
		}
	}
	switch matches {
	case 0:
		return sqlx.ColRef{}, fmt.Errorf("optimizer: unknown column %q", c.Column)
	case 1:
		return found, nil
	default:
		return sqlx.ColRef{}, fmt.Errorf("optimizer: ambiguous column %q", c.Column)
	}
}

// resolveExpr rewrites every column reference in an expression to its
// canonical form.
func (b *binder) resolveExpr(e sqlx.Expr) (sqlx.Expr, error) {
	switch x := e.(type) {
	case sqlx.ColRef:
		return b.resolveCol(x)
	case sqlx.Const:
		return x, nil
	case *sqlx.BinExpr:
		l, err := b.resolveExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := b.resolveExpr(x.R)
		if err != nil {
			return nil, err
		}
		return &sqlx.BinExpr{Op: x.Op, L: l, R: r}, nil
	case *sqlx.CmpExpr:
		l, err := b.resolveExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := b.resolveExpr(x.R)
		if err != nil {
			return nil, err
		}
		return &sqlx.CmpExpr{Op: x.Op, L: l, R: r}, nil
	case *sqlx.LikeExpr:
		c, err := b.resolveCol(x.Col)
		if err != nil {
			return nil, err
		}
		return &sqlx.LikeExpr{Col: c, Pattern: x.Pattern, Negated: x.Negated}, nil
	case *sqlx.InExpr:
		c, err := b.resolveCol(x.Col)
		if err != nil {
			return nil, err
		}
		return &sqlx.InExpr{Col: c, Values: x.Values}, nil
	case *sqlx.BoolExpr:
		l, err := b.resolveExpr(x.L)
		if err != nil {
			return nil, err
		}
		var r sqlx.Expr
		if x.R != nil {
			r, err = b.resolveExpr(x.R)
			if err != nil {
				return nil, err
			}
		}
		return &sqlx.BoolExpr{Op: x.Op, L: l, R: r}, nil
	default:
		return nil, fmt.Errorf("optimizer: unsupported expression %T", e)
	}
}

func (b *binder) bindSelectItem(it sqlx.SelectItem) (physical.ViewColumn, error) {
	if it.Agg != sqlx.AggNone {
		if it.Expr == nil {
			return physical.AggViewColumn(sqlx.AggCount, sqlx.ColRef{}, 8), nil
		}
		// Aggregates over single columns keep the column identity;
		// aggregates over compound expressions track their source columns
		// through the first referenced column (others land in Needed).
		cols := it.Expr.Columns(nil)
		if len(cols) == 0 {
			return physical.AggViewColumn(it.Agg, sqlx.ColRef{}, 8), nil
		}
		first, err := b.resolveCol(cols[0])
		if err != nil {
			return physical.ViewColumn{}, err
		}
		for _, c := range cols[1:] {
			rc, err := b.resolveCol(c)
			if err != nil {
				return physical.ViewColumn{}, err
			}
			b.noteNeeded(rc)
		}
		return physical.AggViewColumn(it.Agg, first, 8), nil
	}
	cols := it.Expr.Columns(nil)
	if len(cols) == 1 {
		if c, ok := it.Expr.(sqlx.ColRef); ok {
			rc, err := b.resolveCol(c)
			if err != nil {
				return physical.ViewColumn{}, err
			}
			return physical.BaseViewColumn(rc, b.colWidth(rc)), nil
		}
	}
	// Scalar expression output: record all its columns as needed and
	// expose the first as the representative.
	var rep sqlx.ColRef
	for i, c := range cols {
		rc, err := b.resolveCol(c)
		if err != nil {
			return physical.ViewColumn{}, err
		}
		b.noteNeeded(rc)
		if i == 0 {
			rep = rc
		}
	}
	if rep == (sqlx.ColRef{}) {
		return physical.ViewColumn{}, fmt.Errorf("optimizer: constant select item %q is not supported", it)
	}
	return physical.BaseViewColumn(rep, b.colWidth(rep)), nil
}

var extraNeededKey = "\x00extra"

func (b *binder) noteNeeded(c sqlx.ColRef) {
	b.q.Needed[extraNeededKey] = append(b.q.Needed[extraNeededKey], c.Table+"."+c.Column)
}

func (b *binder) colWidth(c sqlx.ColRef) int {
	t := b.db.Table(c.Table)
	if t == nil {
		return 8
	}
	col := t.Column(c.Column)
	if col == nil {
		return 8
	}
	return col.AvgWidth
}

// classifyWhere splits the WHERE conjunction into equi-joins, per-table
// sargable ranges, and "other" predicates, estimating selectivities.
func (b *binder) classifyWhere(where sqlx.Expr) error {
	for _, conj := range sqlx.Conjuncts(where) {
		resolved, err := b.resolveExpr(conj)
		if err != nil {
			return err
		}
		if err := b.classifyConjunct(resolved); err != nil {
			return err
		}
	}
	// Merge multiple sargable conditions on the same column into one
	// interval.
	for table, tp := range b.q.Preds {
		tp.Sargs = mergeSargs(tp.Sargs, b, table)
	}
	return nil
}

func (b *binder) classifyConjunct(e sqlx.Expr) error {
	if cmp, ok := e.(*sqlx.CmpExpr); ok {
		l, lIsCol := cmp.L.(sqlx.ColRef)
		r, rIsCol := cmp.R.(sqlx.ColRef)
		lc, lIsConst := cmp.L.(sqlx.Const)
		rc, rIsConst := cmp.R.(sqlx.Const)
		switch {
		case lIsCol && rIsConst:
			return b.addSargOrOther(l, cmp.Op, rc, e)
		case rIsCol && lIsConst:
			return b.addSargOrOther(r, cmp.Op.Flip(), lc, e)
		case lIsCol && rIsCol && l.Table != r.Table && cmp.Op == sqlx.CmpEQ:
			b.q.Joins = append(b.q.Joins, physical.NewJoinPred(l, r))
			return nil
		}
	}
	// Everything else is an "other" predicate.
	cols := e.Columns(nil)
	tables := map[string]bool{}
	for _, c := range cols {
		tables[strings.ToLower(c.Table)] = true
	}
	oc := OtherCond{Expr: e, Sel: b.estimateOtherSel(e), Cols: cols}
	if len(tables) == 1 && len(cols) > 0 {
		b.q.Preds[b.realName(cols[0].Table)].Others = append(b.q.Preds[b.realName(cols[0].Table)].Others, oc)
	} else {
		b.q.CrossOthers = append(b.q.CrossOthers, oc)
	}
	return nil
}

func (b *binder) realName(t string) string {
	if real, ok := b.binding[strings.ToLower(t)]; ok {
		return real
	}
	return t
}

func (b *binder) addSargOrOther(col sqlx.ColRef, op sqlx.CmpOp, c sqlx.Const, orig sqlx.Expr) error {
	stats := b.stats(col)
	tp := b.q.Preds[col.Table]
	if tp == nil {
		return fmt.Errorf("optimizer: predicate references unknown table %q", col.Table)
	}
	if c.Kind == sqlx.ConstString {
		if op == sqlx.CmpEQ {
			sel := catalog.DefaultEqSelectivity
			if stats != nil {
				sel = stats.EqSelectivity(0, false)
			}
			tp.Sargs = append(tp.Sargs, SargCond{Col: col.Column, Iv: physical.StringPoint(c.Str), Sel: sel})
			return nil
		}
		// String inequalities are non-sargable in this model.
		tp.Others = append(tp.Others, OtherCond{Expr: orig, Sel: catalog.DefaultRangeSelectivity, Cols: []sqlx.ColRef{col}})
		return nil
	}
	v := c.Num
	var iv physical.Interval
	var sel float64
	switch op {
	case sqlx.CmpEQ:
		iv = physical.PointInterval(v)
		if stats != nil {
			sel = stats.EqSelectivity(v, true)
		} else {
			sel = catalog.DefaultEqSelectivity
		}
	case sqlx.CmpLT, sqlx.CmpLE:
		iv = physical.FullInterval()
		iv.Hi, iv.HiIncl = v, op == sqlx.CmpLE
		if stats != nil {
			sel = stats.LtSelectivity(v, op == sqlx.CmpLE)
		} else {
			sel = catalog.DefaultRangeSelectivity
		}
	case sqlx.CmpGT, sqlx.CmpGE:
		iv = physical.FullInterval()
		iv.Lo, iv.LoIncl = v, op == sqlx.CmpGE
		if stats != nil {
			sel = stats.GtSelectivity(v, op == sqlx.CmpGE)
		} else {
			sel = catalog.DefaultRangeSelectivity
		}
	case sqlx.CmpNE:
		// <> is non-sargable.
		tp.Others = append(tp.Others, OtherCond{Expr: orig, Sel: 1 - catalog.DefaultEqSelectivity, Cols: []sqlx.ColRef{col}})
		return nil
	}
	tp.Sargs = append(tp.Sargs, SargCond{Col: col.Column, Iv: iv, Sel: sel})
	return nil
}

func (b *binder) stats(c sqlx.ColRef) *catalog.ColumnStats {
	t := b.db.Table(c.Table)
	if t == nil {
		return nil
	}
	col := t.Column(c.Column)
	if col == nil {
		return nil
	}
	return col.Stats
}

// estimateOtherSel estimates the selectivity of a non-sargable predicate.
func (b *binder) estimateOtherSel(e sqlx.Expr) float64 {
	switch x := e.(type) {
	case *sqlx.BoolExpr:
		switch x.Op {
		case "AND":
			return b.estimateOtherSel(x.L) * b.estimateOtherSel(x.R)
		case "OR":
			l, r := b.estimateOtherSel(x.L), b.estimateOtherSel(x.R)
			return l + r - l*r
		case "NOT":
			return 1 - b.estimateOtherSel(x.L)
		}
	case *sqlx.CmpExpr:
		if col, ok := x.L.(sqlx.ColRef); ok {
			if c, ok := x.R.(sqlx.Const); ok && c.Kind == sqlx.ConstNumber {
				if s := b.stats(col); s != nil {
					switch x.Op {
					case sqlx.CmpEQ:
						return s.EqSelectivity(c.Num, true)
					case sqlx.CmpLT:
						return s.LtSelectivity(c.Num, false)
					case sqlx.CmpLE:
						return s.LtSelectivity(c.Num, true)
					case sqlx.CmpGT:
						return s.GtSelectivity(c.Num, false)
					case sqlx.CmpGE:
						return s.GtSelectivity(c.Num, true)
					}
				}
			}
		}
		if x.Op == sqlx.CmpEQ {
			return catalog.DefaultEqSelectivity * 10
		}
		return catalog.DefaultOtherSelectivity
	case *sqlx.LikeExpr:
		if x.Negated {
			return 1 - catalog.DefaultLikeSelectivity
		}
		return catalog.DefaultLikeSelectivity
	case *sqlx.InExpr:
		if s := b.stats(x.Col); s != nil {
			return s.InSelectivity(len(x.Values))
		}
		return float64(len(x.Values)) * catalog.DefaultEqSelectivity
	}
	return catalog.DefaultOtherSelectivity
}

// mergeSargs collapses multiple sargable conditions on the same column
// into a single interval, re-estimating the merged interval's
// selectivity from the column's histogram (two one-sided bounds combined
// independently would badly overestimate — e.g. BETWEEN).
func mergeSargs(sargs []SargCond, b *binder, table string) []SargCond {
	byCol := map[string][]SargCond{}
	var order []string
	for _, s := range sargs {
		key := strings.ToLower(s.Col)
		if _, ok := byCol[key]; !ok {
			order = append(order, key)
		}
		byCol[key] = append(byCol[key], s)
	}
	var out []SargCond
	for _, key := range order {
		group := byCol[key]
		merged := group[0]
		changed := false
		for _, s := range group[1:] {
			merged.Iv = intersectIntervals(merged.Iv, s.Iv)
			changed = true
			if s.Sel < merged.Sel {
				merged.Sel = s.Sel
			}
		}
		if changed && !merged.Iv.IsString {
			merged.Sel = b.numericIntervalSel(sqlx.ColRef{Table: table, Column: merged.Col}, merged.Iv, merged.Sel)
		}
		out = append(out, merged)
	}
	return out
}

// numericIntervalSel estimates a (possibly two-sided) numeric interval's
// selectivity from column statistics, falling back to the provided value.
func (b *binder) numericIntervalSel(col sqlx.ColRef, iv physical.Interval, fallback float64) float64 {
	s := b.stats(col)
	if s == nil || !s.Numeric {
		return fallback
	}
	if iv.IsPoint() {
		return s.EqSelectivity(iv.Lo, true)
	}
	sel := 1.0
	if !math.IsInf(iv.Hi, 1) {
		sel = s.LtSelectivity(iv.Hi, iv.HiIncl)
	}
	if !math.IsInf(iv.Lo, -1) {
		sel -= s.LtSelectivity(iv.Lo, !iv.LoIncl)
	}
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	return sel
}

func intersectIntervals(a, b physical.Interval) physical.Interval {
	if a.IsString || b.IsString {
		return a
	}
	out := a
	if b.Lo > out.Lo || (b.Lo == out.Lo && !b.LoIncl) {
		out.Lo, out.LoIncl = b.Lo, b.LoIncl
	}
	if b.Hi < out.Hi || (b.Hi == out.Hi && !b.HiIncl) {
		out.Hi, out.HiIncl = b.Hi, b.HiIncl
	}
	return out
}

// computeNeeded fills the per-table needed-column sets.
func (b *binder) computeNeeded() {
	add := func(c sqlx.ColRef) {
		if c == (sqlx.ColRef{}) {
			return
		}
		cols := b.q.Needed[c.Table]
		for _, x := range cols {
			if strings.EqualFold(x, c.Column) {
				return
			}
		}
		b.q.Needed[c.Table] = append(b.q.Needed[c.Table], c.Column)
	}
	for _, vc := range b.q.SelectCols {
		add(vc.Source)
	}
	for _, g := range b.q.GroupBy {
		add(g)
	}
	for _, o := range b.q.OrderBy {
		add(o)
	}
	for _, j := range b.q.Joins {
		add(j.L)
		add(j.R)
	}
	for tn, tp := range b.q.Preds {
		for _, s := range tp.Sargs {
			add(sqlx.ColRef{Table: tn, Column: s.Col})
		}
		for _, o := range tp.Others {
			for _, c := range o.Cols {
				add(c)
			}
		}
	}
	for _, oc := range b.q.CrossOthers {
		for _, c := range oc.Cols {
			add(c)
		}
	}
	// Extra needed columns noted during select-item binding.
	for _, enc := range b.q.Needed[extraNeededKey] {
		parts := strings.SplitN(enc, ".", 2)
		if len(parts) == 2 {
			add(sqlx.ColRef{Table: parts[0], Column: parts[1]})
		}
	}
	delete(b.q.Needed, extraNeededKey)
	for t := range b.q.Needed {
		sort.Strings(b.q.Needed[t])
	}
}

// TablePred returns the predicate group for a table (never nil).
func (q *BoundQuery) TablePred(table string) *TablePreds {
	if tp, ok := q.Preds[table]; ok {
		return tp
	}
	return &TablePreds{}
}

// NeededCols returns the needed columns for a table (possibly empty).
func (q *BoundQuery) NeededCols(table string) []string { return q.Needed[table] }

// IsUpdate reports whether the statement modifies data.
func (q *BoundQuery) IsUpdate() bool { return q.Kind != sqlx.StmtSelect }

// HasAggregates reports whether the select list aggregates.
func (q *BoundQuery) HasAggregates() bool {
	for _, c := range q.SelectCols {
		if c.Agg != sqlx.AggNone {
			return true
		}
	}
	return false
}

package optimizer

import (
	"math"
	"testing"

	"repro/internal/sqlx"
)

func TestBindClassifiesPredicates(t *testing.T) {
	db := testDB(t)
	q := mustBind(t, db, `
		SELECT r.a, u.x FROM r, u
		WHERE r.a = u.fk AND r.b < 100 AND r.c = 3 AND r.a + r.b > 50 AND r.s = 'hello'`)

	if len(q.Joins) != 1 {
		t.Fatalf("joins: %v", q.Joins)
	}
	rp := q.TablePred("r")
	if len(rp.Sargs) != 3 { // b < 100, c = 3, s = 'hello'
		t.Errorf("r sargs: %+v", rp.Sargs)
	}
	if len(rp.Others) != 1 { // a + b > 50
		t.Errorf("r others: %+v", rp.Others)
	}
	if len(q.CrossOthers) != 0 {
		t.Errorf("cross others: %+v", q.CrossOthers)
	}
}

func TestBindSelectivityFromStats(t *testing.T) {
	db := testDB(t)
	q := mustBind(t, db, "SELECT a FROM r WHERE c = 3")
	sel := q.TablePred("r").Sargs[0].Sel
	// c has 10 distinct uniform values: selectivity near 0.1.
	if sel < 0.03 || sel > 0.3 {
		t.Errorf("c = 3 selectivity %g, expected near 0.1", sel)
	}

	q2 := mustBind(t, db, "SELECT a FROM r WHERE b < 500")
	sel2 := q2.TablePred("r").Sargs[0].Sel
	if sel2 < 0.35 || sel2 > 0.65 {
		t.Errorf("b < 500 selectivity %g, expected near 0.5", sel2)
	}
}

func TestBindMergesRangesOnSameColumn(t *testing.T) {
	db := testDB(t)
	q := mustBind(t, db, "SELECT a FROM r WHERE b >= 100 AND b < 300")
	sargs := q.TablePred("r").Sargs
	if len(sargs) != 1 {
		t.Fatalf("expected one merged sarg, got %+v", sargs)
	}
	iv := sargs[0].Iv
	if iv.Lo != 100 || iv.Hi != 300 || !iv.LoIncl || iv.HiIncl {
		t.Errorf("merged interval: %v", iv)
	}
}

func TestBindUnqualifiedResolution(t *testing.T) {
	db := testDB(t)
	q := mustBind(t, db, "SELECT x FROM r, u WHERE fk = 3")
	if len(q.TablePred("u").Sargs) != 1 {
		t.Error("fk should resolve to table u")
	}
	// "id" exists in both tables: ambiguous.
	stmt, _ := sqlx.Parse("SELECT id FROM r, u")
	if _, err := Bind(db, stmt); err == nil {
		t.Error("ambiguous column should fail to bind")
	}
}

func TestBindRejectsSelfJoin(t *testing.T) {
	db := testDB(t)
	stmt, _ := sqlx.Parse("SELECT r1.a FROM r r1, r r2 WHERE r1.id = r2.id")
	if _, err := Bind(db, stmt); err == nil {
		t.Error("self-joins are unsupported and must be rejected")
	}
}

func TestBindRejectsUnknownNames(t *testing.T) {
	db := testDB(t)
	for _, src := range []string{
		"SELECT a FROM missing",
		"SELECT missing FROM r",
		"SELECT a FROM r WHERE nope = 1",
		"SELECT z.a FROM r",
	} {
		stmt, err := sqlx.Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if _, err := Bind(db, stmt); err == nil {
			t.Errorf("Bind(%q) should fail", src)
		}
	}
}

func TestBindNeededColumns(t *testing.T) {
	db := testDB(t)
	q := mustBind(t, db, "SELECT a, SUM(b) FROM r WHERE c = 1 GROUP BY a ORDER BY a")
	needed := q.NeededCols("r")
	want := []string{"a", "b", "c"}
	if len(needed) != len(want) {
		t.Fatalf("needed: %v", needed)
	}
	for i := range want {
		if needed[i] != want[i] {
			t.Errorf("needed[%d] = %s, want %s", i, needed[i], want[i])
		}
	}
}

func TestBindUpdateSeparation(t *testing.T) {
	db := testDB(t)
	q := mustBind(t, db, "UPDATE r SET a = b + 1 WHERE c < 5")
	if q.Kind != sqlx.StmtUpdate || q.UpdateTable != "r" {
		t.Fatalf("update shape: %+v", q)
	}
	if len(q.SetCols) != 1 || q.SetCols[0] != "a" {
		t.Errorf("set cols: %v", q.SetCols)
	}
	// The pure select part needs b (from the SET expression) and c.
	needed := q.NeededCols("r")
	if !containsStr(needed, "b") || !containsStr(needed, "c") {
		t.Errorf("needed: %v", needed)
	}
}

func TestBindDeleteAffectsAllColumns(t *testing.T) {
	db := testDB(t)
	q := mustBind(t, db, "DELETE FROM u WHERE x = 1")
	if len(q.SetCols) != 3 {
		t.Errorf("delete should mark every column: %v", q.SetCols)
	}
}

func TestBindInsert(t *testing.T) {
	db := testDB(t)
	q := mustBind(t, db, "INSERT INTO u VALUES (1, 2, 3), (4, 5, 6)")
	if q.InsertRows != 2 || q.UpdateTable != "u" {
		t.Errorf("insert: %+v", q)
	}
}

func TestBindStringInequalityIsOther(t *testing.T) {
	db := testDB(t)
	q := mustBind(t, db, "SELECT a FROM r WHERE s > 'm'")
	tp := q.TablePred("r")
	if len(tp.Sargs) != 0 || len(tp.Others) != 1 {
		t.Errorf("string inequality should be non-sargable: %+v", tp)
	}
}

func TestBindNotEqualsIsOther(t *testing.T) {
	db := testDB(t)
	q := mustBind(t, db, "SELECT a FROM r WHERE b <> 5")
	tp := q.TablePred("r")
	if len(tp.Sargs) != 0 || len(tp.Others) != 1 {
		t.Errorf("<> should be non-sargable: %+v", tp)
	}
	if tp.Others[0].Sel < 0.9 {
		t.Errorf("<> selectivity should be high: %g", tp.Others[0].Sel)
	}
}

func TestBindDisjunctionSelectivity(t *testing.T) {
	db := testDB(t)
	q := mustBind(t, db, "SELECT a FROM r WHERE (c = 1 OR c = 2)")
	tp := q.TablePred("r")
	if len(tp.Others) != 1 {
		t.Fatalf("disjunction should be one other-conjunct: %+v", tp)
	}
	sel := tp.Others[0].Sel
	if sel < 0.1 || sel > 0.35 {
		t.Errorf("c=1 OR c=2 selectivity %g, expected near 0.2", sel)
	}
}

func TestTotalSelectivityProduct(t *testing.T) {
	db := testDB(t)
	q := mustBind(t, db, "SELECT a FROM r WHERE c = 3 AND b < 500")
	tp := q.TablePred("r")
	want := tp.Sargs[0].Sel * tp.Sargs[1].Sel
	if math.Abs(tp.TotalSelectivity()-want) > 1e-12 {
		t.Errorf("TotalSelectivity %g, want %g", tp.TotalSelectivity(), want)
	}
}

func containsStr(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

package optimizer

import (
	"math"

	"repro/internal/catalog"
	"repro/internal/physical"
	"repro/internal/sqlx"
)

// columnDistinct returns the estimated distinct count of a column
// (at least 1).
func (o *Optimizer) columnDistinct(c sqlx.ColRef) float64 {
	t := o.db.Table(c.Table)
	if t == nil {
		return 1
	}
	col := t.Column(c.Column)
	if col == nil || col.Stats == nil || col.Stats.Distinct < 1 {
		return 1
	}
	return float64(col.Stats.Distinct)
}

// joinSelectivity returns the classical containment-assumption selectivity
// 1/max(dv(l), dv(r)) of an equi-join predicate.
func (o *Optimizer) joinSelectivity(j physical.JoinPred) float64 {
	dv := math.Max(o.columnDistinct(j.L), o.columnDistinct(j.R))
	if dv < 1 {
		dv = 1
	}
	return 1 / dv
}

// intervalSelectivity estimates the fraction of a base table's rows whose
// column falls in iv.
func (o *Optimizer) intervalSelectivity(c sqlx.ColRef, iv physical.Interval) float64 {
	t := o.db.Table(c.Table)
	if t == nil {
		return catalog.DefaultRangeSelectivity
	}
	col := t.Column(c.Column)
	if col == nil || col.Stats == nil {
		return catalog.DefaultRangeSelectivity
	}
	s := col.Stats
	if iv.IsString {
		return s.EqSelectivity(0, false)
	}
	if iv.IsPoint() {
		return s.EqSelectivity(iv.Lo, true)
	}
	sel := 1.0
	if !math.IsInf(iv.Hi, 1) {
		sel = s.LtSelectivity(iv.Hi, iv.HiIncl)
	}
	if !math.IsInf(iv.Lo, -1) {
		sel -= s.LtSelectivity(iv.Lo, !iv.LoIncl)
	}
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	return sel
}

// groupCardinality estimates the number of groups when grouping inputRows
// by the given columns: the product of per-column distinct counts, damped
// and capped by the input cardinality.
func (o *Optimizer) groupCardinality(inputRows float64, groupCols []sqlx.ColRef) float64 {
	if len(groupCols) == 0 {
		return 1
	}
	prod := 1.0
	for _, g := range groupCols {
		prod *= o.columnDistinct(g)
		if prod > inputRows {
			break
		}
	}
	if prod > inputRows {
		prod = inputRows
	}
	if prod < 1 {
		prod = 1
	}
	return prod
}

// selRows estimates the result cardinality of joining the tables in mask
// with all applicable predicates: the product of filtered table
// cardinalities times the selectivities of every join predicate and
// cross-table conjunct contained in the mask. The estimate is independent
// of join order, so every plan for a subset agrees on its cardinality.
// idx is the query's table → FROM-position map (tableIndexMap), threaded
// through by callers so the hot join-enumeration loop never rebuilds it.
func (o *Optimizer) selRows(q *BoundQuery, idx map[string]int, mask uint64) float64 {
	rows := 1.0
	for i, t := range q.Tables {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		tbl := o.db.Table(t)
		tr := 1.0
		if tbl != nil && tbl.Rows > 0 {
			tr = float64(tbl.Rows)
		}
		rows *= tr * q.TablePred(t).TotalSelectivity()
	}
	for _, j := range q.Joins {
		if maskHasCol(idx, mask, j.L) && maskHasCol(idx, mask, j.R) {
			rows *= o.joinSelectivity(j)
		}
	}
	for _, oc := range q.CrossOthers {
		if maskHasAll(idx, mask, oc.Cols) {
			rows *= oc.Sel
		}
	}
	if rows < 1 {
		rows = 1
	}
	return rows
}

func tableIndexMap(q *BoundQuery) map[string]int {
	m := make(map[string]int, len(q.Tables))
	for i, t := range q.Tables {
		m[t] = i
	}
	return m
}

func maskHasCol(idx map[string]int, mask uint64, c sqlx.ColRef) bool {
	i, ok := idx[c.Table]
	return ok && mask&(1<<uint(i)) != 0
}

func maskHasAll(idx map[string]int, mask uint64, cols []sqlx.ColRef) bool {
	for _, c := range cols {
		if !maskHasCol(idx, mask, c) {
			return false
		}
	}
	return true
}

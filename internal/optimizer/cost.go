// Package optimizer implements a cost-based query optimizer over the
// simulated catalog: single-relation access path selection (index seeks,
// scans, rid intersections and lookups, filters, sorts — the template of
// Figure 1 in the paper), materialized view matching, and System-R style
// join enumeration.
//
// Crucially for the reproduction, the optimizer exposes the two
// instrumentation points §2 of the paper relies on: every single-table
// access path request and every SPJG view request is surfaced through
// Hooks before access paths are generated, and optimization runs against
// a hypothetical ("what-if") configuration overlay, so intercepted
// requests can inject simulated physical structures that the optimizer
// then considers.
package optimizer

import (
	"math"
	"strings"

	"repro/internal/catalog"
	"repro/internal/physical"
	"repro/internal/plan"
)

// CostModel holds the coefficients of the execution cost model. One cost
// unit equals one sequential page read.
type CostModel struct {
	SeqPage    float64 // sequential page read
	RandPage   float64 // random page read
	CPURow     float64 // per-row processing
	CPUCompare float64 // per-comparison (sorting)
	CPUHash    float64 // per-row hash build/probe
	SortMemory int64   // pages of sort memory before spilling
}

// DefaultCostModel returns the coefficients used throughout the
// experiments.
func DefaultCostModel() CostModel {
	return CostModel{
		SeqPage:    1.0,
		RandPage:   4.0,
		CPURow:     0.001,
		CPUCompare: 0.0005,
		CPUHash:    0.0015,
		SortMemory: 1024,
	}
}

// SortCost returns the cost of sorting rows rows spanning pages pages.
func (m CostModel) SortCost(rows, pages float64) plan.Cost {
	if rows < 2 {
		return plan.Cost{CPU: m.CPURow * rows}
	}
	cpu := m.CPUCompare * rows * math.Log2(rows)
	io := 0.0
	if pages > float64(m.SortMemory) {
		io = 2 * pages * m.SeqPage // one spill write + read pass
	}
	return plan.Cost{IO: io, CPU: cpu}
}

// HashAggCost returns the cost of hash-aggregating rows input rows.
func (m CostModel) HashAggCost(rows float64) plan.Cost {
	return plan.Cost{CPU: m.CPUHash * rows}
}

// StreamAggCost returns the cost of streaming aggregation over sorted
// input.
func (m CostModel) StreamAggCost(rows float64) plan.Cost {
	return plan.Cost{CPU: m.CPURow * rows}
}

// RidLookupCost returns the cost of k random row fetches into a primary
// structure with rows rows over pages pages.
func (m CostModel) RidLookupCost(rows, pages int64, k float64) plan.Cost {
	touched := randomPages(rows, pages, k)
	return plan.Cost{IO: touched * m.RandPage, CPU: m.CPURow * k}
}

func randomPages(rows, pages int64, k float64) float64 {
	if k <= 0 || pages <= 0 {
		return 0
	}
	p := float64(pages)
	if k >= float64(rows) {
		return p
	}
	touched := p * (1 - math.Pow(1-1/p, k))
	if touched > p {
		touched = p
	}
	if touched < 1 {
		touched = 1
	}
	return touched
}

// Resolver adapts a catalog database to physical.WidthResolver so the
// sizer can compute index sizes.
type Resolver struct {
	DB *catalog.Database

	// cols caches each base table's column-name slice (keyed by lowercased
	// table name): the sizer asks for it on every index resolve, and
	// rebuilding the slice per call dominated resolve-path allocations.
	cols map[string][]string
}

// NewResolver returns a width resolver over db with the per-table column
// lists precomputed.
func NewResolver(db *catalog.Database) Resolver {
	r := Resolver{DB: db, cols: make(map[string][]string)}
	for _, t := range db.Tables() {
		r.cols[strings.ToLower(t.Name)] = t.ColumnNames()
	}
	return r
}

// TableRows implements physical.WidthResolver.
func (r Resolver) TableRows(table string) (int64, bool) {
	t := r.DB.Table(table)
	if t == nil {
		return 0, false
	}
	return t.Rows, true
}

// ColWidth implements physical.WidthResolver.
func (r Resolver) ColWidth(table, col string) (int, bool) {
	t := r.DB.Table(table)
	if t == nil {
		return 0, false
	}
	c := t.Column(col)
	if c == nil {
		return 0, false
	}
	return c.AvgWidth, true
}

// TableCols implements physical.WidthResolver.
func (r Resolver) TableCols(table string) []string {
	if cols, ok := r.cols[strings.ToLower(table)]; ok {
		return cols
	}
	t := r.DB.Table(table)
	if t == nil {
		return nil
	}
	return t.ColumnNames()
}

var _ physical.WidthResolver = Resolver{}

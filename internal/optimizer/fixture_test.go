package optimizer

import (
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/physical"
	"repro/internal/plan"
	"repro/internal/sqlx"
)

// testDB builds a small two-table database with precisely known
// statistics:
//
//	r: 100_000 rows — id (unique), a (100 dv), b (1000 dv), c (10 dv),
//	   s (varchar, 50 dv), pad (wide varchar)
//	u: 2_000 rows — id (unique), fk (joins r.a domain), x (20 dv)
func testDB(t testing.TB) *catalog.Database {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	uniform := func(n int, lo, hi float64, dv int64) *catalog.ColumnStats {
		sample := make([]float64, 4000)
		for i := range sample {
			v := lo + rng.Float64()*(hi-lo)
			if dv > 1 {
				step := (hi - lo) / float64(dv-1)
				v = lo + float64(int((v-lo)/step+0.5))*step
			}
			sample[i] = v
		}
		return &catalog.ColumnStats{
			Distinct: dv, Min: lo, Max: hi, Numeric: true,
			Histogram: catalog.BuildHistogram(sample, 32),
		}
	}
	db := catalog.NewDatabase("testdb")
	r, err := catalog.NewTable("r", 100_000, []catalog.Column{
		{Name: "id", Type: catalog.TypeInt, AvgWidth: 4, Stats: uniform(0, 1, 100_000, 100_000)},
		{Name: "a", Type: catalog.TypeInt, AvgWidth: 4, Stats: uniform(0, 0, 99, 100)},
		{Name: "b", Type: catalog.TypeInt, AvgWidth: 4, Stats: uniform(0, 0, 999, 1000)},
		{Name: "c", Type: catalog.TypeInt, AvgWidth: 4, Stats: uniform(0, 0, 9, 10)},
		{Name: "s", Type: catalog.TypeVarchar, AvgWidth: 12, Stats: &catalog.ColumnStats{Distinct: 50}},
		{Name: "pad", Type: catalog.TypeVarchar, AvgWidth: 80, Stats: &catalog.ColumnStats{Distinct: 90_000}},
	}, []string{"id"})
	if err != nil {
		t.Fatalf("table r: %v", err)
	}
	u, err := catalog.NewTable("u", 2_000, []catalog.Column{
		{Name: "id", Type: catalog.TypeInt, AvgWidth: 4, Stats: uniform(0, 1, 2000, 2000)},
		{Name: "fk", Type: catalog.TypeInt, AvgWidth: 4, Stats: uniform(0, 0, 99, 100)},
		{Name: "x", Type: catalog.TypeInt, AvgWidth: 4, Stats: uniform(0, 0, 19, 20)},
	}, []string{"id"})
	if err != nil {
		t.Fatalf("table u: %v", err)
	}
	db.MustAddTable(r)
	db.MustAddTable(u)
	return db
}

// baseCfg returns the clustered-PK base configuration for testDB.
func baseCfg(db *catalog.Database) *physical.Configuration {
	cfg := physical.NewConfiguration()
	for _, tb := range db.Tables() {
		ix := physical.NewIndex(tb.Name, tb.PrimaryKey, tb.ColumnNames(), true)
		ix.Required = true
		cfg.AddIndex(ix)
	}
	return cfg
}

func mustBind(t testing.TB, db *catalog.Database, src string) *BoundQuery {
	t.Helper()
	stmt, err := sqlx.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	q, err := Bind(db, stmt)
	if err != nil {
		t.Fatalf("bind %q: %v", src, err)
	}
	return q
}

func mustPlan(t testing.TB, o *Optimizer, q *BoundQuery, cfg *physical.Configuration) *plan.QueryPlan {
	t.Helper()
	p, err := o.Optimize(q, cfg)
	if err != nil {
		t.Fatalf("optimize %q: %v", q.SQL, err)
	}
	return p
}

package optimizer

import (
	"testing"

	"repro/internal/physical"
	"repro/internal/plan"
)

func TestJoinProducesPlan(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	q := mustBind(t, db, "SELECT r.b, u.x FROM r, u WHERE r.a = u.fk")
	p := mustPlan(t, o, q, cfg)
	if findNode(p.Root, "Join") == nil {
		t.Fatalf("no join in plan:\n%s", plan.Format(p.Root))
	}
	// Join cardinality: 100k × 2k / max(100,100) = 2M.
	rows := p.Root.OutRows()
	if rows < 5e5 || rows > 8e6 {
		t.Errorf("join cardinality %g, expected near 2e6", rows)
	}
}

func TestIndexNLJoinExploitsJoinIndex(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	// Selective predicate on u, then probe r.a through an index.
	joinIdx := physical.NewIndex("r", []string{"a"}, []string{"b"}, false)
	cfg.AddIndex(joinIdx)
	q := mustBind(t, db, "SELECT r.b, u.x FROM r, u WHERE r.a = u.fk AND u.id = 17")
	p := mustPlan(t, o, q, cfg)
	if findNode(p.Root, "IndexNLJoin") == nil {
		t.Errorf("expected index nested loops:\n%s", plan.Format(p.Root))
	}
	if !p.UsesIndex(joinIdx.ID()) {
		t.Error("probe index not recorded in usages")
	}
}

func TestHashJoinForLargeInputs(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	q := mustBind(t, db, "SELECT r.b, u.x FROM r, u WHERE r.a = u.fk")
	p := mustPlan(t, o, q, cfg)
	if findNode(p.Root, "HashJoin") == nil {
		t.Errorf("unselective join should hash:\n%s", plan.Format(p.Root))
	}
}

func TestCrossProductFallback(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	q := mustBind(t, db, "SELECT r.a, u.x FROM r, u WHERE r.id = 5 AND u.id = 7")
	p := mustPlan(t, o, q, cfg)
	if p.Root.OutRows() > 10 {
		t.Errorf("two point lookups cross-joined should be tiny: %g rows", p.Root.OutRows())
	}
}

func TestCrossTablePredicateApplied(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	with := mustPlan(t, o, mustBind(t, db,
		"SELECT r.b FROM r, u WHERE r.a = u.fk AND r.b + u.x > 500"), cfg)
	without := mustPlan(t, o, mustBind(t, db,
		"SELECT r.b FROM r, u WHERE r.a = u.fk"), cfg)
	if with.Root.OutRows() >= without.Root.OutRows() {
		t.Errorf("cross-table filter should reduce cardinality: %g >= %g",
			with.Root.OutRows(), without.Root.OutRows())
	}
}

func TestGroupByModes(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	q := mustBind(t, db, "SELECT c, SUM(b) FROM r GROUP BY c")
	p := mustPlan(t, o, q, cfg)
	if findNode(p.Root, "HashGroupBy") == nil {
		t.Errorf("unsorted input should hash-aggregate:\n%s", plan.Format(p.Root))
	}
	// Groups ≈ 10 (c has 10 distinct values).
	if p.Root.OutRows() < 2 || p.Root.OutRows() > 50 {
		t.Errorf("group count %g, expected near 10", p.Root.OutRows())
	}

	// With an index ordered on c the aggregate can stream.
	cfg2 := baseCfg(db)
	cfg2.AddIndex(physical.NewIndex("r", []string{"c"}, []string{"b"}, false))
	p2 := mustPlan(t, o, q, cfg2)
	if findNode(p2.Root, "StreamGroupBy") == nil {
		t.Errorf("sorted input should stream-aggregate:\n%s", plan.Format(p2.Root))
	}
	if p2.Cost.Total() >= p.Cost.Total() {
		t.Error("stream aggregation over an ordered index should be cheaper")
	}
}

func TestScalarAggregateWithoutGroupBy(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	q := mustBind(t, db, "SELECT COUNT(*) FROM r WHERE c = 1")
	p := mustPlan(t, o, q, cfg)
	if p.Root.OutRows() != 1 {
		t.Errorf("scalar aggregate returns one row, got %g", p.Root.OutRows())
	}
}

func TestOptimizeCallCounting(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	q := mustBind(t, db, "SELECT a FROM r")
	before := o.Stats()
	mustPlan(t, o, q, cfg)
	mustPlan(t, o, q, cfg)
	after := o.Stats()
	if after.OptimizeCalls-before.OptimizeCalls != 2 {
		t.Errorf("optimize calls: %d", after.OptimizeCalls-before.OptimizeCalls)
	}
	if after.IndexRequests <= before.IndexRequests {
		t.Error("index requests should be counted")
	}
}

func TestRequestDeduplicationWithinOneOptimize(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	// A 2-table join probes the inner table many times during DP, but the
	// identical request must be counted once.
	q := mustBind(t, db, "SELECT r.b FROM r, u WHERE r.a = u.fk")
	before := o.Stats().IndexRequests
	mustPlan(t, o, q, cfg)
	delta := o.Stats().IndexRequests - before
	if delta > 6 {
		t.Errorf("expected few deduplicated requests, got %d", delta)
	}
}

func TestDisconnectedJoinGraphStillPlans(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	q := mustBind(t, db, "SELECT r.a, u.x FROM r, u")
	p := mustPlan(t, o, q, cfg)
	if p.Root == nil {
		t.Fatal("cross join must still produce a plan")
	}
}

func TestInsertHasEmptySelectPart(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	q := mustBind(t, db, "INSERT INTO u VALUES (1, 2, 3)")
	p := mustPlan(t, o, q, cfg)
	if p.Cost.Total() != 0 {
		t.Errorf("insert select-part should be free: %g", p.Cost.Total())
	}
}

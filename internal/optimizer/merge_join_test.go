package optimizer

import (
	"testing"

	"repro/internal/physical"
	"repro/internal/plan"
)

// TestMergeJoinChosenWithOrderedInputs: when both join inputs arrive
// pre-sorted on the join keys (via indexes), a merge join avoids hash
// build costs and should win.
func TestMergeJoinChosenWithOrderedInputs(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	// Covering indexes keyed on the join columns on both sides.
	cfg.AddIndex(physical.NewIndex("r", []string{"a"}, []string{"b", "pad"}, false))
	cfg.AddIndex(physical.NewIndex("u", []string{"fk"}, []string{"x"}, false))
	q := mustBind(t, db, "SELECT r.b, u.x FROM r, u WHERE r.a = u.fk")
	p := mustPlan(t, o, q, cfg)
	mj := findNode(p.Root, "MergeJoin")
	if mj == nil {
		t.Logf("plan:\n%s", plan.Format(p.Root))
		t.Skip("merge join not selected under this cost model; hash may dominate")
	}
	// The large (r) side must come pre-sorted from its index; sorting the
	// tiny side may legitimately beat scanning its secondary index.
	join := mj.(*plan.Join)
	for _, side := range join.Children() {
		if side.OutRows() > 10_000 && findNode(side, "Sort") != nil {
			t.Errorf("large pre-ordered input re-sorted:\n%s", plan.Format(p.Root))
		}
	}
}

// TestMergeJoinPreservesOrderForOrderBy: a merge join's output order can
// satisfy the query's ORDER BY on the join key without a final sort.
func TestMergeJoinPreservesOrderForOrderBy(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	cfg.AddIndex(physical.NewIndex("r", []string{"a"}, []string{"b"}, false))
	cfg.AddIndex(physical.NewIndex("u", []string{"fk"}, []string{"x"}, false))
	q := mustBind(t, db, "SELECT r.b, u.x FROM r, u WHERE r.a = u.fk ORDER BY r.a")
	p := mustPlan(t, o, q, cfg)
	if findNode(p.Root, "MergeJoin") == nil {
		t.Skipf("merge join not selected:\n%s", plan.Format(p.Root))
	}
	if _, isSort := p.Root.(*plan.Sort); isSort {
		t.Errorf("merge join order should satisfy ORDER BY:\n%s", plan.Format(p.Root))
	}
}

// TestMergeJoinNeverWorsensPlans: adding merge join to the search space
// must leave every query's cost at or below the hash-only levels (sanity
// against side-swapped join keys).
func TestMergeJoinCostsAreFinite(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	for _, src := range []string{
		"SELECT r.b, u.x FROM r, u WHERE r.a = u.fk",
		"SELECT r.b FROM r, u WHERE r.a = u.fk AND u.x = 3 ORDER BY r.b",
		"SELECT c, SUM(x) FROM r, u WHERE r.a = u.fk GROUP BY c",
	} {
		p := mustPlan(t, o, mustBind(t, db, src), cfg)
		if p.Cost.Total() <= 0 || p.Cost.Total() > 1e12 {
			t.Errorf("%q: implausible cost %g", src, p.Cost.Total())
		}
	}
}

package optimizer

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/physical"
	"repro/internal/plan"
	"repro/internal/sqlx"
)

// MaxJoinTables bounds dynamic-programming join enumeration.
const MaxJoinTables = 16

// Optimizer is a cost-based query optimizer over a catalog database. It
// optimizes bound queries against a physical configuration (base indexes
// plus hypothetical structures) and reports per-index usage information.
//
// Optimize/OptimizeFull are reentrant: per-call state lives in an optCtx
// threaded through the call tree and the activity counters are atomic, so
// any number of goroutines may optimize concurrently against one
// Optimizer. SetHooks is the exception — hooks are per-Optimizer, so
// concurrent instrumented optimizations must each use a Fork.
type Optimizer struct {
	db    *catalog.Database
	model CostModel
	sizer *physical.Sizer
	hooks *Hooks
	stats statCounters
}

// statCounters are the atomic backing of Stats.
type statCounters struct {
	optimizeCalls atomic.Int64
	indexRequests atomic.Int64
	viewRequests  atomic.Int64
}

// optCtx carries the state of one Optimize call plus its reusable scratch
// buffers. reqSeen deduplicates requests within the call so repeated
// probes of the same relation during join enumeration count (and fire
// hooks) once. Contexts are pooled: every Optimize call — including calls
// from forked workers, which share the package-level pool — takes a
// context whose maps, DP table, and dpEntry arena retain their capacity
// from earlier calls, so the steady-state what-if loop allocates no
// per-call bookkeeping.
type optCtx struct {
	reqSeen map[string]bool // request dedup keys seen this call
	key     []byte          // request dedup key build scratch
	idx     map[string]int  // table → FROM position for the current query
	dp      []*dpEntry      // DP table over table subsets
	arena   []dpEntry       // bump arena backing the dpEntries of one call

	edges        []physical.JoinPred // join-edge scratch (one split live at a time)
	lKeys, rKeys []string            // merge-join key scratch (cost phase only)

	probeSpec   accessSpec // inner-probe spec scratch (innerProbe)
	probeSargs  []SargCond
	probeOthers []residCond

	// ixOn memoizes Configuration.IndexesOn per table: the configuration
	// is fixed for the duration of one call, and join enumeration probes
	// the same tables once per split. views does the same for Views().
	ixOn     map[string][]*physical.Index
	views    []*physical.View
	viewsSet bool
}

var ctxPool = sync.Pool{New: func() any {
	return &optCtx{
		reqSeen: make(map[string]bool, 64),
		key:     make([]byte, 0, 160),
		idx:     make(map[string]int, MaxJoinTables),
		ixOn:    make(map[string][]*physical.Index, 8),
	}
}}

func getOptCtx() *optCtx { return ctxPool.Get().(*optCtx) }

// putOptCtx scrubs every reference the call left behind — plan nodes in
// the DP table and arena, configuration indexes in the memo — so pooled
// scratch never pins a finished plan tree, then returns the context.
func putOptCtx(oc *optCtx) {
	clear(oc.reqSeen)
	clear(oc.idx)
	clear(oc.ixOn)
	clear(oc.dp)
	oc.arena = oc.arena[:cap(oc.arena)]
	clear(oc.arena)
	oc.arena = oc.arena[:0]
	oc.views = nil
	oc.viewsSet = false
	oc.probeSpec = accessSpec{}
	ctxPool.Put(oc)
}

// dpTable returns a zeroed DP table of n slots backed by the context's
// reusable buffer.
func (oc *optCtx) dpTable(n int) []*dpEntry {
	if cap(oc.dp) < n {
		oc.dp = make([]*dpEntry, n)
	} else {
		oc.dp = oc.dp[:n]
		clear(oc.dp)
	}
	return oc.dp
}

// newEntry hands out one dpEntry from the arena. Entries never escape
// Optimize (only their node/usage fields do), so the arena is recycled
// wholesale when the call finishes. When a chunk fills, a larger one
// replaces it; entries already handed out stay valid in the old backing
// array, which lives until the call returns.
func (oc *optCtx) newEntry() *dpEntry {
	if len(oc.arena) == cap(oc.arena) {
		next := 2 * cap(oc.arena)
		if next < 64 {
			next = 64
		}
		oc.arena = make([]dpEntry, 0, next)
	}
	oc.arena = append(oc.arena, dpEntry{})
	return &oc.arena[len(oc.arena)-1]
}

// indexesOn memoizes cfg.IndexesOn for the duration of one call.
func (oc *optCtx) indexesOn(cfg *physical.Configuration, table string) []*physical.Index {
	if oc == nil {
		return cfg.IndexesOn(table)
	}
	if cached, ok := oc.ixOn[table]; ok {
		return cached
	}
	ixs := cfg.IndexesOn(table)
	oc.ixOn[table] = ixs
	return ixs
}

// viewsOf memoizes cfg.Views for the duration of one call.
func (oc *optCtx) viewsOf(cfg *physical.Configuration) []*physical.View {
	if oc == nil {
		return cfg.Views()
	}
	if !oc.viewsSet {
		oc.views = cfg.Views()
		oc.viewsSet = true
	}
	return oc.views
}

// New returns an optimizer over db with the default cost model.
func New(db *catalog.Database) *Optimizer {
	return &Optimizer{
		db:    db,
		model: DefaultCostModel(),
		sizer: physical.NewSizer(NewResolver(db)),
	}
}

// Fork returns an optimizer over the same catalog, cost model, and size
// estimator, with its own hooks and zeroed counters. Parallel workers
// that need hooks (the §2 instrumented optimization) each take a fork
// and merge their counters back with AddStats when done.
func (o *Optimizer) Fork() *Optimizer {
	return &Optimizer{db: o.db, model: o.model, sizer: o.sizer}
}

// SetHooks installs the instrumentation hooks of §2 (nil disables them).
func (o *Optimizer) SetHooks(h *Hooks) { o.hooks = h }

// Stats returns a copy of the activity counters.
func (o *Optimizer) Stats() Stats {
	return Stats{
		OptimizeCalls: o.stats.optimizeCalls.Load(),
		IndexRequests: o.stats.indexRequests.Load(),
		ViewRequests:  o.stats.viewRequests.Load(),
	}
}

// AddStats merges a delta (typically a Fork's counters) into this
// optimizer's counters.
func (o *Optimizer) AddStats(d Stats) {
	o.stats.optimizeCalls.Add(d.OptimizeCalls)
	o.stats.indexRequests.Add(d.IndexRequests)
	o.stats.viewRequests.Add(d.ViewRequests)
}

// ResetStats zeroes the activity counters.
func (o *Optimizer) ResetStats() {
	o.stats.optimizeCalls.Store(0)
	o.stats.indexRequests.Store(0)
	o.stats.viewRequests.Store(0)
}

// Sizer exposes the shared size estimator.
func (o *Optimizer) Sizer() *physical.Sizer { return o.sizer }

// Model exposes the cost model.
func (o *Optimizer) Model() CostModel { return o.model }

// DB exposes the catalog database.
func (o *Optimizer) DB() *catalog.Database { return o.db }

// dpEntry is the best plan found for one table subset. Join entries link
// their inputs through left/right instead of concatenating usage and view
// lists per split (which allocated quadratically); the winning tree is
// flattened once by collectEntryLists. An entry's own usages/views hold
// only the records it adds itself (leaf access, INL probe, view scan).
type dpEntry struct {
	node        plan.Node
	usages      []*plan.IndexUsage
	views       []string
	left, right *dpEntry
	// grouped reports that the sub-plan already produced the query's
	// aggregation (view-based plans may embed it).
	grouped bool
	// ordered reports that the sub-plan already delivers the query's
	// presentation order (view-based plans track it explicitly because
	// their order properties use view-local column names).
	ordered bool
}

func (e *dpEntry) cost() float64 {
	if e == nil || e.node == nil {
		return inf
	}
	return e.node.TotalCost().Total()
}

// Optimize finds the cheapest plan for the query's select part under cfg.
// For UPDATE/DELETE statements this is the "pure select query" of §3.6;
// index-maintenance costs are computed separately by UpdateShellCost.
// INSERT statements have an empty select part.
func (o *Optimizer) Optimize(q *BoundQuery, cfg *physical.Configuration) (*plan.QueryPlan, error) {
	o.stats.optimizeCalls.Add(1)
	if q.Kind == sqlx.StmtInsert {
		root := plan.NewHeapScan(q.UpdateTable, 0, plan.Cost{})
		return &plan.QueryPlan{Root: root, Cost: plan.Cost{}}, nil
	}
	n := len(q.Tables)
	if n == 0 {
		return nil, fmt.Errorf("optimizer: query has no tables")
	}
	if n > MaxJoinTables {
		return nil, fmt.Errorf("optimizer: %d tables exceeds the %d-table join limit", n, MaxJoinTables)
	}

	oc := getOptCtx()
	defer putOptCtx(oc)
	dp := oc.dpTable(1 << uint(n))

	// Leaf level: one access-path request per table.
	for i, t := range q.Tables {
		spec := o.tableSpec(q, t, n == 1)
		res := o.requestAccess(oc, cfg, spec)
		if res == nil {
			return nil, fmt.Errorf("optimizer: no access path for table %s", t)
		}
		e := oc.newEntry()
		e.node, e.usages = res.node, res.usages
		dp[1<<uint(i)] = e
	}

	idx := oc.idx
	for i, t := range q.Tables {
		idx[t] = i
	}
	full := uint64(1<<uint(n)) - 1

	// Join levels in increasing subset size, plus view-based alternatives.
	for mask := uint64(1); mask <= full; mask++ {
		size := bits.OnesCount64(mask)
		best := dp[mask] // leaf access for singletons, nil above

		if size >= 2 {
			// Joins of two disjoint sub-plans.
			lowest := mask & (^mask + 1)
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				if sub&lowest == 0 {
					continue // enumerate each split once
				}
				other := mask ^ sub
				l, r := dp[sub], dp[other]
				if l == nil || r == nil {
					continue
				}
				edges := o.joinEdges(oc, q, idx, sub, other)
				if len(edges) == 0 && o.hasAnyEdge(q, idx, mask) {
					continue // avoid cross products when the mask is joinable
				}
				cand := o.joinPlans(oc, q, cfg, idx, mask, sub, other, l, r, edges)
				if cand != nil && cand.cost() < bestCost(best) {
					best = cand
				}
			}
		}
		if size >= 2 || mask == full {
			if vcand := o.viewPlans(oc, q, cfg, idx, mask, mask == full); vcand != nil && vcand.cost() < bestCost(best) {
				best = vcand
			}
		}
		dp[mask] = best
	}

	final := dp[full]
	if final == nil {
		return nil, fmt.Errorf("optimizer: join enumeration produced no plan (disconnected join graph?)")
	}

	usages, views := collectEntryLists(final)
	root := o.finishRoot(q, final.node, rootState{grouped: final.grouped, ordered: final.ordered})
	return &plan.QueryPlan{
		Root:      root,
		Cost:      root.TotalCost(),
		Usages:    usages,
		UsedViews: views,
	}, nil
}

// collectEntryLists flattens the winning DP tree's deferred usage and
// view lists. The order — left subtree, right subtree, then the entry's
// own records — reproduces exactly what eager per-split concatenation
// (l.usages ++ r.usages ++ extras) used to build.
func collectEntryLists(e *dpEntry) ([]*plan.IndexUsage, []string) {
	nu, nv := countEntry(e)
	var us []*plan.IndexUsage
	var vs []string
	if nu > 0 {
		us = make([]*plan.IndexUsage, 0, nu)
	}
	if nv > 0 {
		vs = make([]string, 0, nv)
	}
	return appendEntry(e, us, vs)
}

func countEntry(e *dpEntry) (nu, nv int) {
	nu, nv = len(e.usages), len(e.views)
	if e.left != nil {
		a, b := countEntry(e.left)
		nu += a
		nv += b
		a, b = countEntry(e.right)
		nu += a
		nv += b
	}
	return nu, nv
}

func appendEntry(e *dpEntry, us []*plan.IndexUsage, vs []string) ([]*plan.IndexUsage, []string) {
	if e.left != nil {
		us, vs = appendEntry(e.left, us, vs)
		us, vs = appendEntry(e.right, us, vs)
	}
	return append(us, e.usages...), append(vs, e.views...)
}

// rootState tracks what compensation the chosen subplan already performed.
type rootState struct{ grouped, ordered bool }

// finishRoot layers grouping and ordering on top of the join result.
func (o *Optimizer) finishRoot(q *BoundQuery, node plan.Node, st rootState) plan.Node {
	eqBound := q.eqBoundQualified()
	needsAgg := (len(q.GroupBy) > 0 || q.HasAggregates()) && !st.grouped
	if needsAgg {
		keys := qualifyRefs(q.GroupBy)
		groups := o.groupCardinality(node.OutRows(), q.GroupBy)
		if len(q.GroupBy) == 0 {
			groups = 1
		}
		if len(keys) > 0 && plan.OrderSatisfies(node.OutOrder(), keys, eqBound) {
			node = plan.NewGroupBy(node, keys, plan.AggStream, groups, node.TotalCost().Add(o.model.StreamAggCost(node.OutRows())))
		} else {
			node = plan.NewGroupBy(node, keys, plan.AggHash, groups, node.TotalCost().Add(o.model.HashAggCost(node.OutRows())))
		}
	}
	if len(q.OrderBy) > 0 && !st.ordered {
		want := qualifyRefs(q.OrderBy)
		if !plan.OrderSatisfies(node.OutOrder(), want, eqBound) {
			pages := node.OutRows() * 64 / 8192
			node = plan.NewSort(node, want, node.TotalCost().Add(o.model.SortCost(node.OutRows(), pages)))
		}
	}
	return node
}

// eqBoundQualified returns the qualified columns pinned to single points
// by the query's sargable predicates; order checks may skip them.
func (q *BoundQuery) eqBoundQualified() map[string]bool {
	out := map[string]bool{}
	for table, tp := range q.Preds {
		for _, s := range tp.Sargs {
			if s.Iv.IsPoint() {
				out[strings.ToLower(table+"."+s.Col)] = true
			}
		}
	}
	return out
}

func qualifyRefs(refs []sqlx.ColRef) []string {
	out := make([]string, len(refs))
	for i, r := range refs {
		out[i] = r.Table + "." + r.Column
	}
	return out
}

func bestCost(e *dpEntry) float64 {
	if e == nil {
		return inf
	}
	return e.cost()
}

// tableSpec builds the access spec for one base table.
func (o *Optimizer) tableSpec(q *BoundQuery, table string, root bool) *accessSpec {
	t := o.db.Table(table)
	tp := q.TablePred(table)
	needed := q.NeededCols(table)
	spec := &accessSpec{
		table:  table,
		rows:   t.Rows,
		sargs:  tp.Sargs,
		needed: needed,
		qual:   table,
		width:  o.neededWidth(table, needed),
	}
	for _, oc := range tp.Others {
		spec.others = append(spec.others, residCond{cols: localCols(oc.Cols), sel: oc.Sel})
	}
	if root {
		// Single-table queries push the interesting order into the
		// request: group-by columns when aggregating (stream aggregation),
		// otherwise the presentation order. The order is optional — when
		// no index provides it, the root compensates (hash aggregation or
		// an explicit sort), so the leaf must not force a sort.
		spec.orderOptional = true
		if len(q.GroupBy) > 0 {
			spec.order = localRefs(q.GroupBy)
		} else if !q.HasAggregates() && len(q.OrderBy) > 0 {
			spec.order = localRefs(q.OrderBy)
		}
	}
	return spec
}

func localCols(cols []sqlx.ColRef) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Column
	}
	return out
}

func localRefs(refs []sqlx.ColRef) []string { return localCols(refs) }

func (o *Optimizer) neededWidth(table string, cols []string) int {
	t := o.db.Table(table)
	if t == nil {
		return 64
	}
	w := 0
	for _, c := range cols {
		if col := t.Column(c); col != nil {
			w += col.AvgWidth
		}
	}
	if w == 0 {
		w = 8
	}
	return w
}

// requestAccess fires the index-request hook (§2) and then generates the
// best access path with whatever structures the hook simulated.
func (o *Optimizer) requestAccess(oc *optCtx, cfg *physical.Configuration, spec *accessSpec) *accessResult {
	o.issueIndexRequest(oc, spec)
	return o.bestAccess(oc, cfg, spec)
}

// issueIndexRequest counts the request and fires the hook, deduplicating
// identical requests within one optimization. The dedup key is rendered
// byte-by-byte into the call's scratch buffer; the full IndexRequest is
// materialized only for first-seen requests with a hook installed, so
// plain re-costing calls build no request objects at all.
func (o *Optimizer) issueIndexRequest(oc *optCtx, spec *accessSpec) {
	if oc != nil {
		oc.key = appendRequestKey(oc.key[:0], spec)
		if oc.reqSeen[string(oc.key)] {
			return
		}
		oc.reqSeen[string(oc.key)] = true
	}
	o.stats.indexRequests.Add(1)
	if o.hooks != nil && o.hooks.OnIndexRequest != nil {
		o.hooks.OnIndexRequest(o.buildIndexRequest(spec))
		if oc != nil {
			// The hook may have injected hypothetical indexes on the
			// requested table (the §2 what-if interceptor does exactly
			// that), so the per-call index memo for it is now stale.
			delete(oc.ixOn, spec.table)
		}
	}
}

// appendRequestKey renders the request-identity key for spec: exactly the
// bytes of "i|" + IndexRequest.String(), so the dedup partition is
// unchanged — table, sargable columns with %.3g selectivities, the count
// of non-sargable conjuncts, the requested order, and the additional
// referenced columns.
func appendRequestKey(key []byte, spec *accessSpec) []byte {
	key = append(key, "i|idxreq{"...)
	key = append(key, spec.table...)
	key = append(key, " S=["...)
	for i := range spec.sargs {
		if i > 0 {
			key = append(key, ',')
		}
		key = append(key, spec.sargs[i].Col...)
		key = append(key, '(')
		key = strconv.AppendFloat(key, spec.sargs[i].Sel, 'g', 3, 64)
		key = append(key, ')')
	}
	key = append(key, "] N="...)
	key = strconv.AppendInt(key, int64(len(spec.others)), 10)
	key = append(key, " O=["...)
	for i, c := range spec.order {
		if i > 0 {
			key = append(key, ' ')
		}
		key = append(key, c...)
	}
	key = append(key, "] A=["...)
	first := true
	for _, c := range spec.needed {
		if specReferences(spec, c) {
			continue
		}
		if !first {
			key = append(key, ' ')
		}
		first = false
		key = append(key, c...)
	}
	return append(key, "]}"...)
}

// specReferences reports whether col already appears in the spec's
// sargable, non-sargable, or order column sets (the request's S/N/O);
// the remaining needed columns form the request's A set.
func specReferences(spec *accessSpec, col string) bool {
	for i := range spec.sargs {
		if strings.EqualFold(spec.sargs[i].Col, col) {
			return true
		}
	}
	for _, rc := range spec.others {
		for _, c := range rc.cols {
			if strings.EqualFold(c, col) {
				return true
			}
		}
	}
	for _, c := range spec.order {
		if strings.EqualFold(c, col) {
			return true
		}
	}
	return false
}

func (o *Optimizer) buildIndexRequest(spec *accessSpec) *IndexRequest {
	req := &IndexRequest{
		Table: spec.table,
		View:  spec.view,
		S:     append([]SargCond(nil), spec.sargs...),
		O:     append([]string(nil), spec.order...),
		Rows:  spec.rows,
	}
	req.NSel = 1
	for _, rc := range spec.others {
		req.N = append(req.N, append([]string(nil), rc.cols...))
		req.NSel *= rc.sel
	}
	// A = referenced columns not already in S, N, or O.
	inSNO := map[string]bool{}
	for _, s := range req.S {
		inSNO[strings.ToLower(s.Col)] = true
	}
	for _, n := range req.N {
		for _, c := range n {
			inSNO[strings.ToLower(c)] = true
		}
	}
	for _, c := range req.O {
		inSNO[strings.ToLower(c)] = true
	}
	for _, c := range spec.needed {
		if !inSNO[strings.ToLower(c)] {
			req.A = append(req.A, c)
		}
	}
	return req
}

// joinEdges returns the join predicates connecting two disjoint masks.
// The result is backed by the call's scratch buffer: it is valid until
// the next joinEdges call, which matches its one-split lifetime.
func (o *Optimizer) joinEdges(oc *optCtx, q *BoundQuery, idx map[string]int, a, b uint64) []physical.JoinPred {
	out := oc.edges[:0]
	for _, j := range q.Joins {
		la, ra := maskHasCol(idx, a, j.L), maskHasCol(idx, a, j.R)
		lb, rb := maskHasCol(idx, b, j.L), maskHasCol(idx, b, j.R)
		if (la && rb) || (ra && lb) {
			out = append(out, j)
		}
	}
	oc.edges = out
	return out
}

func (o *Optimizer) hasAnyEdge(q *BoundQuery, idx map[string]int, mask uint64) bool {
	for _, j := range q.Joins {
		if maskHasCol(idx, mask, j.L) && maskHasCol(idx, mask, j.R) {
			li := idx[j.L.Table]
			ri := idx[j.R.Table]
			if li != ri {
				return true
			}
		}
	}
	return false
}

// join candidate tags, in the evaluation order of the node-per-candidate
// enumeration this replaces (ties keep the earliest candidate).
const (
	candNone = iota
	candHashLR
	candHashRL
	candMerge
	candINLInnerR // inner side = other mask, outer = l
	candINLInnerL // inner side = sub mask, outer = r
	candNLLR
	candNLRL
)

// joinPlans builds the cheapest join of two sub-plans, considering hash
// join (both build directions), merge join, index nested loops
// (single-table inner), and plain nested loops as the universal fallback.
// Cross-table filters that become evaluable at this mask are applied on
// top. Candidates are priced first with plain cost arithmetic — mirroring
// the build functions exactly — and only the winner materializes plan
// nodes; losing candidates used to dominate what-if-path allocation.
func (o *Optimizer) joinPlans(oc *optCtx, q *BoundQuery, cfg *physical.Configuration, idx map[string]int, mask, sub, other uint64, l, r *dpEntry, edges []physical.JoinPred) *dpEntry {
	outRows := o.selRows(q, idx, mask)
	// Filters newly evaluable at this mask.
	extraSel := 1.0
	for _, c := range q.CrossOthers {
		if maskHasAll(idx, mask, c.Cols) && !maskHasAll(idx, sub, c.Cols) && !maskHasAll(idx, other, c.Cols) {
			extraSel *= c.Sel
		}
	}
	// outRows from selRows already includes every predicate in the mask;
	// the join node's raw output (before the extra filters) is larger.
	joinRows := outRows
	if extraSel > 0 && extraSel < 1 {
		joinRows = outRows / extraSel
	}

	cand := candNone
	bestTotal := inf
	consider := func(kind int, c plan.Cost) {
		if t := c.Total(); t < bestTotal {
			cand, bestTotal = kind, t
		}
	}
	var probeR, probeL probeResult
	var colsR, colsL []string
	if len(edges) > 0 {
		consider(candHashLR, o.hashJoinCost(l, r))
		consider(candHashRL, o.hashJoinCost(r, l))
		lk, rk := oc.mergeKeys(idx, sub, edges)
		consider(candMerge, o.mergeJoinCost(l, r, lk, rk))
		// Index nested loops: inner side must be a single base table.
		if pr, pc, total, ok := o.indexNLCost(oc, q, cfg, other, l, edges, joinRows); ok {
			probeR, colsR = pr, pc
			consider(candINLInnerR, total)
		}
		if pr, pc, total, ok := o.indexNLCost(oc, q, cfg, sub, r, edges, joinRows); ok {
			probeL, colsL = pr, pc
			consider(candINLInnerL, total)
		}
	}
	consider(candNLLR, o.nlJoinCost(l, r, joinRows))
	consider(candNLRL, o.nlJoinCost(r, l, joinRows))
	if cand == candNone {
		return nil
	}

	on := joinDesc(edges)
	var node plan.Node
	var extra *plan.IndexUsage
	switch cand {
	case candHashLR:
		node = o.hashJoin(l, r, on, joinRows)
	case candHashRL:
		node = o.hashJoin(r, l, on, joinRows)
	case candMerge:
		node = o.mergeJoin(q, idx, sub, l, r, edges, on, joinRows)
	case candINLInnerR:
		node, extra = o.buildIndexNL(probeR, l, colsR, on, joinRows)
	case candINLInnerL:
		node, extra = o.buildIndexNL(probeL, r, colsL, on, joinRows)
	case candNLLR:
		node = o.nlJoin(l, r, on, joinRows)
	case candNLRL:
		node = o.nlJoin(r, l, on, joinRows)
	}
	if extraSel < 1 {
		var descs []string
		for _, c := range q.CrossOthers {
			if maskHasAll(idx, mask, c.Cols) && !maskHasAll(idx, sub, c.Cols) && !maskHasAll(idx, other, c.Cols) {
				descs = append(descs, c.Expr.String())
			}
		}
		node = plan.NewFilter(node, extraSel, strings.Join(descs, " AND "), node.TotalCost().Add(plan.Cost{CPU: o.model.CPURow * node.OutRows()}))
	}
	e := oc.newEntry()
	e.node, e.left, e.right = node, l, r
	if extra != nil {
		e.usages = []*plan.IndexUsage{extra}
	}
	return e
}

func joinDesc(edges []physical.JoinPred) string {
	if len(edges) == 0 {
		return "cross"
	}
	parts := make([]string, len(edges))
	for i, e := range edges {
		parts[i] = e.String()
	}
	return strings.Join(parts, " AND ")
}

// hashJoinCost prices hashJoin without building its node; the arithmetic
// must stay in lockstep with hashJoin.
func (o *Optimizer) hashJoinCost(probe, build *dpEntry) plan.Cost {
	buildRows := build.node.OutRows()
	probeRows := probe.node.OutRows()
	cost := probe.node.TotalCost().Add(build.node.TotalCost()).
		Add(plan.Cost{CPU: o.model.CPUHash * (buildRows + probeRows)})
	buildPages := buildRows * 64 / 8192
	if buildPages > float64(o.model.SortMemory) {
		cost = cost.Add(plan.Cost{IO: 2 * buildPages * o.model.SeqPage})
	}
	return cost
}

// mergeKeys resolves each join edge's columns onto the left/right input
// (left = the tables in lMask) as qualified names. The returned slices
// are cost-phase scratch: mergeJoin rebuilds its own copies for the
// winner because sort nodes retain their key slices.
func (oc *optCtx) mergeKeys(idx map[string]int, lMask uint64, edges []physical.JoinPred) ([]string, []string) {
	lk, rk := oc.lKeys[:0], oc.rKeys[:0]
	for _, e := range edges {
		lc, rc := e.L, e.R
		if !maskHasCol(idx, lMask, lc) {
			lc, rc = rc, lc
		}
		lk = append(lk, lc.Table+"."+lc.Column)
		rk = append(rk, rc.Table+"."+rc.Column)
	}
	oc.lKeys, oc.rKeys = lk, rk
	return lk, rk
}

// mergeJoinCost prices mergeJoin without building nodes; the arithmetic
// must stay in lockstep with mergeJoin (sorts preserve cardinality, so
// the post-prep row counts equal the input row counts).
func (o *Optimizer) mergeJoinCost(l, r *dpEntry, lKeys, rKeys []string) plan.Cost {
	prepCost := func(n plan.Node, keys []string) plan.Cost {
		if plan.OrderSatisfies(n.OutOrder(), keys, nil) {
			return n.TotalCost()
		}
		pages := n.OutRows() * 64 / 8192
		return n.TotalCost().Add(o.model.SortCost(n.OutRows(), pages))
	}
	return prepCost(l.node, lKeys).Add(prepCost(r.node, rKeys)).
		Add(plan.Cost{CPU: o.model.CPURow * (l.node.OutRows() + r.node.OutRows())})
}

// nlJoinCost prices nlJoin without building its node; the arithmetic must
// stay in lockstep with nlJoin.
func (o *Optimizer) nlJoinCost(outer, inner *dpEntry, rows float64) plan.Cost {
	outerRows := outer.node.OutRows()
	innerCost := inner.node.TotalCost()
	return outer.node.TotalCost().Add(innerCost.Scale(maxf(1, outerRows))).
		Add(plan.Cost{CPU: o.model.CPURow * rows})
}

// hashJoin builds on build and probes with probe; probe-side order is
// preserved.
func (o *Optimizer) hashJoin(probe, build *dpEntry, on string, rows float64) plan.Node {
	buildRows := build.node.OutRows()
	probeRows := probe.node.OutRows()
	cost := probe.node.TotalCost().Add(build.node.TotalCost()).
		Add(plan.Cost{CPU: o.model.CPUHash * (buildRows + probeRows)})
	// Spill when the build side exceeds memory.
	buildPages := buildRows * 64 / 8192
	if buildPages > float64(o.model.SortMemory) {
		cost = cost.Add(plan.Cost{IO: 2 * buildPages * o.model.SeqPage})
	}
	return plan.NewJoin(plan.JoinHash, probe.node, build.node, on, rows, probe.node.OutOrder(), cost)
}

// mergeJoin sorts both inputs on the join keys (skipping sorts an input
// already provides) and merges linearly; output carries the left input's
// join-key order. lMask identifies which tables feed the left input so
// each edge column lands on its own side.
func (o *Optimizer) mergeJoin(q *BoundQuery, idx map[string]int, lMask uint64, l, r *dpEntry, edges []physical.JoinPred, on string, rows float64) plan.Node {
	var lKeys, rKeys []string
	for _, e := range edges {
		lc, rc := e.L, e.R
		if !maskHasCol(idx, lMask, lc) {
			lc, rc = rc, lc
		}
		lKeys = append(lKeys, lc.Table+"."+lc.Column)
		rKeys = append(rKeys, rc.Table+"."+rc.Column)
	}
	prep := func(n plan.Node, keys []string) plan.Node {
		if plan.OrderSatisfies(n.OutOrder(), keys, nil) {
			return n
		}
		pages := n.OutRows() * 64 / 8192
		return plan.NewSort(n, keys, n.TotalCost().Add(o.model.SortCost(n.OutRows(), pages)))
	}
	ln := prep(l.node, lKeys)
	rn := prep(r.node, rKeys)
	cost := ln.TotalCost().Add(rn.TotalCost()).
		Add(plan.Cost{CPU: o.model.CPURow * (ln.OutRows() + rn.OutRows())})
	return plan.NewJoin(plan.JoinMerge, ln, rn, on, rows, ln.OutOrder(), cost)
}

// nlJoin scans the inner input once per outer row (universal fallback,
// also the only method for cross products).
func (o *Optimizer) nlJoin(outer, inner *dpEntry, on string, rows float64) plan.Node {
	outerRows := outer.node.OutRows()
	innerCost := inner.node.TotalCost()
	cost := outer.node.TotalCost().Add(innerCost.Scale(maxf(1, outerRows))).
		Add(plan.Cost{CPU: o.model.CPURow * rows})
	return plan.NewJoin(plan.JoinNestedLoop, outer.node, inner.node, on, rows, outer.node.OutOrder(), cost)
}

// probeResult captures the winning inner-side index of an index
// nested-loops candidate with everything needed to materialize its usage
// record if the candidate wins the join.
type probeResult struct {
	cost     plan.Cost // per-probe access cost
	ix       *physical.Index
	cols     []string // matched key prefix (aliases the index's Keys)
	colSels  []float64
	sel      float64
	rows     float64 // per-probe output rows
	lookedUp bool
	needed   []string
}

// indexNLCost prices an index nested-loops join whose inner side is
// innerMask (which must be a single base table). It issues the
// inner-side index request (§2) and selects the best probe index without
// building plan nodes; ok reports whether the candidate applies.
func (o *Optimizer) indexNLCost(oc *optCtx, q *BoundQuery, cfg *physical.Configuration, innerMask uint64, outer *dpEntry, edges []physical.JoinPred, rows float64) (probeResult, []string, plan.Cost, bool) {
	var none probeResult
	if bits.OnesCount64(innerMask) != 1 {
		return none, nil, plan.Cost{}, false
	}
	innerTable := q.Tables[bits.TrailingZeros64(innerMask)]
	// Join columns on the inner side.
	var probeCols []string
	for _, e := range edges {
		if e.L.Table == innerTable {
			probeCols = append(probeCols, e.L.Column)
		} else if e.R.Table == innerTable {
			probeCols = append(probeCols, e.R.Column)
		}
	}
	if len(probeCols) == 0 {
		return none, nil, plan.Cost{}, false
	}
	pr, ok := o.innerProbe(oc, q, cfg, innerTable, probeCols)
	if !ok {
		return none, nil, plan.Cost{}, false
	}
	outerRows := outer.node.OutRows()
	total := outer.node.TotalCost().Add(pr.cost.Scale(maxf(1, outerRows))).
		Add(plan.Cost{CPU: o.model.CPURow * rows})
	return pr, probeCols, total, true
}

// buildIndexNL materializes the winning index nested-loops candidate; the
// cost arithmetic must stay in lockstep with indexNLCost.
func (o *Optimizer) buildIndexNL(pr probeResult, outer *dpEntry, probeCols []string, on string, rows float64) (plan.Node, *plan.IndexUsage) {
	outerRows := outer.node.OutRows()
	total := outer.node.TotalCost().Add(pr.cost.Scale(maxf(1, outerRows))).
		Add(plan.Cost{CPU: o.model.CPURow * rows})
	// The usage reflects the accumulated access over all probes.
	usage := &plan.IndexUsage{
		Index: pr.ix, Seek: true, SeekCols: pr.cols, SeekColSels: pr.colSels, Selectivity: pr.sel,
		Rows: pr.rows * maxf(1, outerRows), AccessCost: pr.cost.Scale(maxf(1, outerRows)), NeededCols: pr.needed,
		LookedUp: pr.lookedUp,
	}
	node := plan.NewJoin(plan.JoinIndexNL, outer.node, plan.NewIndexSeek(usage.Index, probeCols, usage.Selectivity, usage.Rows, usage.AccessCost, nil), on, rows, outer.node.OutOrder(), total)
	return node, usage
}

// innerProbe finds the best index to look up one join binding on the
// inner table. The probe spec lives in the call's scratch, so repeated
// probes during join enumeration allocate nothing; per-column
// selectivities are captured only when a new best index is found.
func (o *Optimizer) innerProbe(oc *optCtx, q *BoundQuery, cfg *physical.Configuration, table string, probeCols []string) (probeResult, bool) {
	t := o.db.Table(table)
	tp := q.TablePred(table)
	needed := q.NeededCols(table)

	// The inner side of an index nested-loops join is itself an access
	// path request: the join columns appear as (parameterized) equality
	// sargable predicates (§2 intercepts these like any other request).
	spec := &oc.probeSpec
	*spec = accessSpec{table: table, rows: t.Rows, needed: needed, qual: table}
	sargs := oc.probeSargs[:0]
	for _, pc := range probeCols {
		dv := o.columnDistinct(sqlx.ColRef{Table: table, Column: pc})
		sargs = append(sargs, SargCond{
			Col: pc, Iv: physical.PointInterval(0), Sel: 1 / maxf(1, dv),
		})
	}
	sargs = append(sargs, tp.Sargs...)
	others := oc.probeOthers[:0]
	for _, c := range tp.Others {
		others = append(others, residCond{cols: localCols(c.Cols), sel: c.Sel})
	}
	spec.sargs, spec.others = sargs, others
	oc.probeSargs, oc.probeOthers = sargs, others
	o.issueIndexRequest(oc, spec)

	var best probeResult
	bestTotal := inf
	found := false
	for _, ix := range oc.indexesOn(cfg, table) {
		k, sel := o.seekPrefixLen(spec, ix)
		usesProbe := false
		for _, pc := range probeCols {
			if prefixUses(ix.Keys[:k], pc) {
				usesProbe = true
				break
			}
		}
		if !usesProbe {
			continue
		}
		matched := maxf(1e-9, float64(t.Rows)*sel)
		height := o.sizer.IndexHeight(ix, cfg)
		leafPages := o.sizer.IndexLeafPages(ix, cfg)
		perLeaf := maxf(1, matched/maxf(1, float64(t.Rows)/maxf(1, float64(leafPages))))
		cost := plan.Cost{
			IO:  (float64(height) + perLeaf) * o.model.RandPage,
			CPU: o.model.CPURow * matched,
		}
		onSel, offSel, _ := o.residualAfter(spec, ix, ix.Keys[:k])
		if !ix.Covers(needed) {
			clustered := cfg.ClusteredOn(table)
			pp := o.primaryPages(cfg, spec, clustered)
			cost = cost.Add(o.model.RidLookupCost(t.Rows, pp, matched*onSel))
		}
		outRows := matched * onSel * offSel
		if cost.Total() < bestTotal {
			bestTotal = cost.Total()
			colSels := make([]float64, k)
			for i := 0; i < k; i++ {
				colSels[i] = spec.findSarg(ix.Keys[i]).Sel
			}
			best = probeResult{
				cost: cost, ix: ix, cols: ix.Keys[:k:k], colSels: colSels, sel: sel,
				rows: outRows, lookedUp: !ix.Covers(needed), needed: needed,
			}
			found = true
		}
	}
	return best, found
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

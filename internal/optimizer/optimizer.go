package optimizer

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/physical"
	"repro/internal/plan"
	"repro/internal/sqlx"
)

// MaxJoinTables bounds dynamic-programming join enumeration.
const MaxJoinTables = 16

// Optimizer is a cost-based query optimizer over a catalog database. It
// optimizes bound queries against a physical configuration (base indexes
// plus hypothetical structures) and reports per-index usage information.
//
// Optimize/OptimizeFull are reentrant: per-call state lives in an optCtx
// threaded through the call tree and the activity counters are atomic, so
// any number of goroutines may optimize concurrently against one
// Optimizer. SetHooks is the exception — hooks are per-Optimizer, so
// concurrent instrumented optimizations must each use a Fork.
type Optimizer struct {
	db    *catalog.Database
	model CostModel
	sizer *physical.Sizer
	hooks *Hooks
	stats statCounters
}

// statCounters are the atomic backing of Stats.
type statCounters struct {
	optimizeCalls atomic.Int64
	indexRequests atomic.Int64
	viewRequests  atomic.Int64
}

// optCtx carries the state of one Optimize call. reqSeen deduplicates
// requests within the call so repeated probes of the same relation during
// join enumeration count (and fire hooks) once.
type optCtx struct {
	reqSeen map[string]bool
}

// New returns an optimizer over db with the default cost model.
func New(db *catalog.Database) *Optimizer {
	return &Optimizer{
		db:    db,
		model: DefaultCostModel(),
		sizer: physical.NewSizer(NewResolver(db)),
	}
}

// Fork returns an optimizer over the same catalog, cost model, and size
// estimator, with its own hooks and zeroed counters. Parallel workers
// that need hooks (the §2 instrumented optimization) each take a fork
// and merge their counters back with AddStats when done.
func (o *Optimizer) Fork() *Optimizer {
	return &Optimizer{db: o.db, model: o.model, sizer: o.sizer}
}

// SetHooks installs the instrumentation hooks of §2 (nil disables them).
func (o *Optimizer) SetHooks(h *Hooks) { o.hooks = h }

// Stats returns a copy of the activity counters.
func (o *Optimizer) Stats() Stats {
	return Stats{
		OptimizeCalls: o.stats.optimizeCalls.Load(),
		IndexRequests: o.stats.indexRequests.Load(),
		ViewRequests:  o.stats.viewRequests.Load(),
	}
}

// AddStats merges a delta (typically a Fork's counters) into this
// optimizer's counters.
func (o *Optimizer) AddStats(d Stats) {
	o.stats.optimizeCalls.Add(d.OptimizeCalls)
	o.stats.indexRequests.Add(d.IndexRequests)
	o.stats.viewRequests.Add(d.ViewRequests)
}

// ResetStats zeroes the activity counters.
func (o *Optimizer) ResetStats() {
	o.stats.optimizeCalls.Store(0)
	o.stats.indexRequests.Store(0)
	o.stats.viewRequests.Store(0)
}

// Sizer exposes the shared size estimator.
func (o *Optimizer) Sizer() *physical.Sizer { return o.sizer }

// Model exposes the cost model.
func (o *Optimizer) Model() CostModel { return o.model }

// DB exposes the catalog database.
func (o *Optimizer) DB() *catalog.Database { return o.db }

// dpEntry is the best plan found for one table subset.
type dpEntry struct {
	node   plan.Node
	usages []*plan.IndexUsage
	views  []string
	// grouped reports that the sub-plan already produced the query's
	// aggregation (view-based plans may embed it).
	grouped bool
	// ordered reports that the sub-plan already delivers the query's
	// presentation order (view-based plans track it explicitly because
	// their order properties use view-local column names).
	ordered bool
}

func (e *dpEntry) cost() float64 {
	if e == nil || e.node == nil {
		return inf
	}
	return e.node.TotalCost().Total()
}

// Optimize finds the cheapest plan for the query's select part under cfg.
// For UPDATE/DELETE statements this is the "pure select query" of §3.6;
// index-maintenance costs are computed separately by UpdateShellCost.
// INSERT statements have an empty select part.
func (o *Optimizer) Optimize(q *BoundQuery, cfg *physical.Configuration) (*plan.QueryPlan, error) {
	o.stats.optimizeCalls.Add(1)
	oc := &optCtx{reqSeen: map[string]bool{}}
	if q.Kind == sqlx.StmtInsert {
		root := plan.NewHeapScan(q.UpdateTable, 0, plan.Cost{})
		return &plan.QueryPlan{Root: root, Cost: plan.Cost{}}, nil
	}
	n := len(q.Tables)
	if n == 0 {
		return nil, fmt.Errorf("optimizer: query has no tables")
	}
	if n > MaxJoinTables {
		return nil, fmt.Errorf("optimizer: %d tables exceeds the %d-table join limit", n, MaxJoinTables)
	}

	dp := make([]*dpEntry, 1<<uint(n))

	// Leaf level: one access-path request per table.
	for i, t := range q.Tables {
		spec := o.tableSpec(q, t, n == 1)
		res := o.requestAccess(oc, cfg, spec)
		if res == nil {
			return nil, fmt.Errorf("optimizer: no access path for table %s", t)
		}
		dp[1<<uint(i)] = &dpEntry{node: res.node, usages: res.usages}
	}

	idx := tableIndexMap(q)
	full := uint64(1<<uint(n)) - 1

	// Join levels in increasing subset size, plus view-based alternatives.
	for mask := uint64(1); mask <= full; mask++ {
		size := bits.OnesCount64(mask)
		best := dp[mask] // leaf access for singletons, nil above

		if size >= 2 {
			// Joins of two disjoint sub-plans.
			lowest := mask & (^mask + 1)
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				if sub&lowest == 0 {
					continue // enumerate each split once
				}
				other := mask ^ sub
				l, r := dp[sub], dp[other]
				if l == nil || r == nil {
					continue
				}
				edges := o.joinEdges(q, idx, sub, other)
				if len(edges) == 0 && o.hasAnyEdge(q, idx, mask) {
					continue // avoid cross products when the mask is joinable
				}
				cand := o.joinPlans(oc, q, cfg, idx, mask, sub, other, l, r, edges)
				if cand != nil && cand.cost() < bestCost(best) {
					best = cand
				}
			}
		}
		if size >= 2 || mask == full {
			if vcand := o.viewPlans(oc, q, cfg, idx, mask, mask == full); vcand != nil && vcand.cost() < bestCost(best) {
				best = vcand
			}
		}
		dp[mask] = best
	}

	final := dp[full]
	if final == nil {
		return nil, fmt.Errorf("optimizer: join enumeration produced no plan (disconnected join graph?)")
	}

	root := o.finishRoot(q, final.node, rootState{grouped: final.grouped, ordered: final.ordered})
	return &plan.QueryPlan{
		Root:      root,
		Cost:      root.TotalCost(),
		Usages:    final.usages,
		UsedViews: final.views,
	}, nil
}

// rootState tracks what compensation the chosen subplan already performed.
type rootState struct{ grouped, ordered bool }

// finishRoot layers grouping and ordering on top of the join result.
func (o *Optimizer) finishRoot(q *BoundQuery, node plan.Node, st rootState) plan.Node {
	eqBound := q.eqBoundQualified()
	needsAgg := (len(q.GroupBy) > 0 || q.HasAggregates()) && !st.grouped
	if needsAgg {
		keys := qualifyRefs(q.GroupBy)
		groups := o.groupCardinality(node.OutRows(), q.GroupBy)
		if len(q.GroupBy) == 0 {
			groups = 1
		}
		if len(keys) > 0 && plan.OrderSatisfies(node.OutOrder(), keys, eqBound) {
			node = plan.NewGroupBy(node, keys, plan.AggStream, groups, node.TotalCost().Add(o.model.StreamAggCost(node.OutRows())))
		} else {
			node = plan.NewGroupBy(node, keys, plan.AggHash, groups, node.TotalCost().Add(o.model.HashAggCost(node.OutRows())))
		}
	}
	if len(q.OrderBy) > 0 && !st.ordered {
		want := qualifyRefs(q.OrderBy)
		if !plan.OrderSatisfies(node.OutOrder(), want, eqBound) {
			pages := node.OutRows() * 64 / 8192
			node = plan.NewSort(node, want, node.TotalCost().Add(o.model.SortCost(node.OutRows(), pages)))
		}
	}
	return node
}

// eqBoundQualified returns the qualified columns pinned to single points
// by the query's sargable predicates; order checks may skip them.
func (q *BoundQuery) eqBoundQualified() map[string]bool {
	out := map[string]bool{}
	for table, tp := range q.Preds {
		for _, s := range tp.Sargs {
			if s.Iv.IsPoint() {
				out[strings.ToLower(table+"."+s.Col)] = true
			}
		}
	}
	return out
}

func qualifyRefs(refs []sqlx.ColRef) []string {
	out := make([]string, len(refs))
	for i, r := range refs {
		out[i] = r.Table + "." + r.Column
	}
	return out
}

func bestCost(e *dpEntry) float64 {
	if e == nil {
		return inf
	}
	return e.cost()
}

// tableSpec builds the access spec for one base table.
func (o *Optimizer) tableSpec(q *BoundQuery, table string, root bool) *accessSpec {
	t := o.db.Table(table)
	tp := q.TablePred(table)
	spec := &accessSpec{
		table:  table,
		rows:   t.Rows,
		sargs:  tp.Sargs,
		needed: q.NeededCols(table),
		qual:   table,
		width:  o.neededWidth(table, q.NeededCols(table)),
	}
	for _, oc := range tp.Others {
		spec.others = append(spec.others, residCond{cols: localCols(oc.Cols), sel: oc.Sel})
	}
	if root {
		// Single-table queries push the interesting order into the
		// request: group-by columns when aggregating (stream aggregation),
		// otherwise the presentation order. The order is optional — when
		// no index provides it, the root compensates (hash aggregation or
		// an explicit sort), so the leaf must not force a sort.
		spec.orderOptional = true
		if len(q.GroupBy) > 0 {
			spec.order = localRefs(q.GroupBy)
		} else if !q.HasAggregates() && len(q.OrderBy) > 0 {
			spec.order = localRefs(q.OrderBy)
		}
	}
	return spec
}

func localCols(cols []sqlx.ColRef) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Column
	}
	return out
}

func localRefs(refs []sqlx.ColRef) []string { return localCols(refs) }

func (o *Optimizer) neededWidth(table string, cols []string) int {
	t := o.db.Table(table)
	if t == nil {
		return 64
	}
	w := 0
	for _, c := range cols {
		if col := t.Column(c); col != nil {
			w += col.AvgWidth
		}
	}
	if w == 0 {
		w = 8
	}
	return w
}

// requestAccess fires the index-request hook (§2) and then generates the
// best access path with whatever structures the hook simulated.
func (o *Optimizer) requestAccess(oc *optCtx, cfg *physical.Configuration, spec *accessSpec) *accessResult {
	o.issueIndexRequest(oc, spec)
	return o.bestAccess(cfg, spec)
}

// issueIndexRequest counts the request and fires the hook, deduplicating
// identical requests within one optimization.
func (o *Optimizer) issueIndexRequest(oc *optCtx, spec *accessSpec) {
	req := o.buildIndexRequest(spec)
	key := "i|" + req.String()
	if oc != nil && oc.reqSeen != nil {
		if oc.reqSeen[key] {
			return
		}
		oc.reqSeen[key] = true
	}
	o.stats.indexRequests.Add(1)
	if o.hooks != nil && o.hooks.OnIndexRequest != nil {
		o.hooks.OnIndexRequest(req)
	}
}

func (o *Optimizer) buildIndexRequest(spec *accessSpec) *IndexRequest {
	req := &IndexRequest{
		Table: spec.table,
		View:  spec.view,
		S:     append([]SargCond(nil), spec.sargs...),
		O:     append([]string(nil), spec.order...),
		Rows:  spec.rows,
	}
	req.NSel = 1
	for _, rc := range spec.others {
		req.N = append(req.N, append([]string(nil), rc.cols...))
		req.NSel *= rc.sel
	}
	// A = referenced columns not already in S, N, or O.
	inSNO := map[string]bool{}
	for _, s := range req.S {
		inSNO[strings.ToLower(s.Col)] = true
	}
	for _, n := range req.N {
		for _, c := range n {
			inSNO[strings.ToLower(c)] = true
		}
	}
	for _, c := range req.O {
		inSNO[strings.ToLower(c)] = true
	}
	for _, c := range spec.needed {
		if !inSNO[strings.ToLower(c)] {
			req.A = append(req.A, c)
		}
	}
	return req
}

// joinEdges returns the join predicates connecting two disjoint masks.
func (o *Optimizer) joinEdges(q *BoundQuery, idx map[string]int, a, b uint64) []physical.JoinPred {
	var out []physical.JoinPred
	for _, j := range q.Joins {
		la, ra := maskHasCol(idx, a, j.L), maskHasCol(idx, a, j.R)
		lb, rb := maskHasCol(idx, b, j.L), maskHasCol(idx, b, j.R)
		if (la && rb) || (ra && lb) {
			out = append(out, j)
		}
	}
	return out
}

func (o *Optimizer) hasAnyEdge(q *BoundQuery, idx map[string]int, mask uint64) bool {
	for _, j := range q.Joins {
		if maskHasCol(idx, mask, j.L) && maskHasCol(idx, mask, j.R) {
			li := idx[j.L.Table]
			ri := idx[j.R.Table]
			if li != ri {
				return true
			}
		}
	}
	return false
}

// joinPlans builds the cheapest join of two sub-plans, considering hash
// join (both build directions), index nested loops (single-table inner),
// and plain nested loops as the universal fallback. Cross-table filters
// that become evaluable at this mask are applied on top.
func (o *Optimizer) joinPlans(oc *optCtx, q *BoundQuery, cfg *physical.Configuration, idx map[string]int, mask, sub, other uint64, l, r *dpEntry, edges []physical.JoinPred) *dpEntry {
	outRows := o.selRows(q, mask)
	// Filters newly evaluable at this mask.
	extraSel := 1.0
	var extraDesc []string
	for _, oc := range q.CrossOthers {
		if maskHasAll(idx, mask, oc.Cols) && !maskHasAll(idx, sub, oc.Cols) && !maskHasAll(idx, other, oc.Cols) {
			extraSel *= oc.Sel
			extraDesc = append(extraDesc, oc.Expr.String())
		}
	}
	// outRows from selRows already includes every predicate in the mask;
	// the join node's raw output (before the extra filters) is larger.
	joinRows := outRows
	if extraSel > 0 && extraSel < 1 {
		joinRows = outRows / extraSel
	}

	on := joinDesc(edges)
	var best plan.Node
	var bestUsages []*plan.IndexUsage
	consider := func(n plan.Node, extra []*plan.IndexUsage) {
		if n != nil && (best == nil || n.TotalCost().Total() < best.TotalCost().Total()) {
			best = n
			bestUsages = extra
		}
	}

	if len(edges) > 0 {
		consider(o.hashJoin(l, r, on, joinRows), nil)
		consider(o.hashJoin(r, l, on, joinRows), nil)
		consider(o.mergeJoin(q, idx, sub, l, r, edges, on, joinRows), nil)
		// Index nested loops: inner side must be a single base table.
		if n, u := o.indexNLJoin(oc, q, cfg, idx, other, l, edges, on, joinRows); n != nil {
			consider(n, u)
		}
		if n, u := o.indexNLJoin(oc, q, cfg, idx, sub, r, edges, on, joinRows); n != nil {
			consider(n, u)
		}
	}
	consider(o.nlJoin(l, r, on, joinRows), nil)
	consider(o.nlJoin(r, l, on, joinRows), nil)
	if best == nil {
		return nil
	}
	node := best
	if extraSel < 1 {
		node = plan.NewFilter(node, extraSel, strings.Join(extraDesc, " AND "), node.TotalCost().Add(plan.Cost{CPU: o.model.CPURow * node.OutRows()}))
	}
	usages := append(append([]*plan.IndexUsage(nil), l.usages...), r.usages...)
	usages = append(usages, bestUsages...)
	views := append(append([]string(nil), l.views...), r.views...)
	return &dpEntry{node: node, usages: usages, views: views}
}

func joinDesc(edges []physical.JoinPred) string {
	if len(edges) == 0 {
		return "cross"
	}
	parts := make([]string, len(edges))
	for i, e := range edges {
		parts[i] = e.String()
	}
	return strings.Join(parts, " AND ")
}

// hashJoin builds on build and probes with probe; probe-side order is
// preserved.
func (o *Optimizer) hashJoin(probe, build *dpEntry, on string, rows float64) plan.Node {
	buildRows := build.node.OutRows()
	probeRows := probe.node.OutRows()
	cost := probe.node.TotalCost().Add(build.node.TotalCost()).
		Add(plan.Cost{CPU: o.model.CPUHash * (buildRows + probeRows)})
	// Spill when the build side exceeds memory.
	buildPages := buildRows * 64 / 8192
	if buildPages > float64(o.model.SortMemory) {
		cost = cost.Add(plan.Cost{IO: 2 * buildPages * o.model.SeqPage})
	}
	return plan.NewJoin(plan.JoinHash, probe.node, build.node, on, rows, probe.node.OutOrder(), cost)
}

// mergeJoin sorts both inputs on the join keys (skipping sorts an input
// already provides) and merges linearly; output carries the left input's
// join-key order. lMask identifies which tables feed the left input so
// each edge column lands on its own side.
func (o *Optimizer) mergeJoin(q *BoundQuery, idx map[string]int, lMask uint64, l, r *dpEntry, edges []physical.JoinPred, on string, rows float64) plan.Node {
	var lKeys, rKeys []string
	for _, e := range edges {
		lc, rc := e.L, e.R
		if !maskHasCol(idx, lMask, lc) {
			lc, rc = rc, lc
		}
		lKeys = append(lKeys, lc.Table+"."+lc.Column)
		rKeys = append(rKeys, rc.Table+"."+rc.Column)
	}
	prep := func(n plan.Node, keys []string) plan.Node {
		if plan.OrderSatisfies(n.OutOrder(), keys, nil) {
			return n
		}
		pages := n.OutRows() * 64 / 8192
		return plan.NewSort(n, keys, n.TotalCost().Add(o.model.SortCost(n.OutRows(), pages)))
	}
	ln := prep(l.node, lKeys)
	rn := prep(r.node, rKeys)
	cost := ln.TotalCost().Add(rn.TotalCost()).
		Add(plan.Cost{CPU: o.model.CPURow * (ln.OutRows() + rn.OutRows())})
	return plan.NewJoin(plan.JoinMerge, ln, rn, on, rows, ln.OutOrder(), cost)
}

// nlJoin scans the inner input once per outer row (universal fallback,
// also the only method for cross products).
func (o *Optimizer) nlJoin(outer, inner *dpEntry, on string, rows float64) plan.Node {
	outerRows := outer.node.OutRows()
	innerCost := inner.node.TotalCost()
	cost := outer.node.TotalCost().Add(innerCost.Scale(maxf(1, outerRows))).
		Add(plan.Cost{CPU: o.model.CPURow * rows})
	return plan.NewJoin(plan.JoinNestedLoop, outer.node, inner.node, on, rows, outer.node.OutOrder(), cost)
}

// indexNLJoin probes an index on the (single-table) inner side once per
// outer row. Returns nil when the inner mask is not a single table or no
// suitable index exists.
func (o *Optimizer) indexNLJoin(oc *optCtx, q *BoundQuery, cfg *physical.Configuration, idx map[string]int, innerMask uint64, outer *dpEntry, edges []physical.JoinPred, on string, rows float64) (plan.Node, []*plan.IndexUsage) {
	if bits.OnesCount64(innerMask) != 1 {
		return nil, nil
	}
	innerTable := q.Tables[bits.TrailingZeros64(innerMask)]
	// Join columns on the inner side.
	var probeCols []string
	for _, e := range edges {
		if e.L.Table == innerTable {
			probeCols = append(probeCols, e.L.Column)
		} else if e.R.Table == innerTable {
			probeCols = append(probeCols, e.R.Column)
		}
	}
	if len(probeCols) == 0 {
		return nil, nil
	}
	probe, usage := o.innerProbe(oc, q, cfg, innerTable, probeCols)
	if usage == nil {
		return nil, nil
	}
	outerRows := outer.node.OutRows()
	perProbe := probe
	total := outer.node.TotalCost().Add(perProbe.Scale(maxf(1, outerRows))).
		Add(plan.Cost{CPU: o.model.CPURow * rows})
	// The usage reflects the accumulated access over all probes.
	usage.AccessCost = usage.AccessCost.Scale(maxf(1, outerRows))
	usage.Rows *= maxf(1, outerRows)
	node := plan.NewJoin(plan.JoinIndexNL, outer.node, plan.NewIndexSeek(usage.Index, probeCols, usage.Selectivity, usage.Rows, usage.AccessCost, nil), on, rows, outer.node.OutOrder(), total)
	return node, []*plan.IndexUsage{usage}
}

// innerProbe finds the best index to look up one join binding on the
// inner table and returns the per-probe cost plus a usage template.
func (o *Optimizer) innerProbe(oc *optCtx, q *BoundQuery, cfg *physical.Configuration, table string, probeCols []string) (plan.Cost, *plan.IndexUsage) {
	t := o.db.Table(table)
	tp := q.TablePred(table)
	needed := q.NeededCols(table)

	// The inner side of an index nested-loops join is itself an access
	// path request: the join columns appear as (parameterized) equality
	// sargable predicates (§2 intercepts these like any other request).
	probeSpec := &accessSpec{table: table, rows: t.Rows, needed: needed, qual: table}
	for _, pc := range probeCols {
		dv := o.columnDistinct(sqlx.ColRef{Table: table, Column: pc})
		probeSpec.sargs = append(probeSpec.sargs, SargCond{
			Col: pc, Iv: physical.PointInterval(0), Sel: 1 / maxf(1, dv),
		})
	}
	probeSpec.sargs = append(probeSpec.sargs, tp.Sargs...)
	for _, oc := range tp.Others {
		probeSpec.others = append(probeSpec.others, residCond{cols: localCols(oc.Cols), sel: oc.Sel})
	}
	o.issueIndexRequest(oc, probeSpec)

	var bestCostV plan.Cost
	var bestU *plan.IndexUsage
	bestTotal := inf
	for _, ix := range cfg.IndexesOn(table) {
		info := o.seekPrefix(probeSpec, ix)
		usesProbe := false
		for _, pc := range probeCols {
			if info.used[strings.ToLower(pc)] {
				usesProbe = true
				break
			}
		}
		if !usesProbe {
			continue
		}
		matched := maxf(1e-9, float64(t.Rows)*info.sel)
		height := o.sizer.IndexHeight(ix, cfg)
		leafPages := o.sizer.IndexLeafPages(ix, cfg)
		perLeaf := maxf(1, matched/maxf(1, float64(t.Rows)/maxf(1, float64(leafPages))))
		cost := plan.Cost{
			IO:  (float64(height) + perLeaf) * o.model.RandPage,
			CPU: o.model.CPURow * matched,
		}
		onSel, offSel, _ := o.residualAfter(probeSpec, ix, info.used)
		if !ix.Covers(needed) {
			clustered := cfg.ClusteredOn(table)
			pp := o.primaryPages(cfg, &accessSpec{table: table, rows: t.Rows}, clustered)
			cost = cost.Add(o.model.RidLookupCost(t.Rows, pp, matched*onSel))
		}
		outRows := matched * onSel * offSel
		if cost.Total() < bestTotal {
			bestTotal = cost.Total()
			bestCostV = cost
			bestU = &plan.IndexUsage{
				Index: ix, Seek: true, SeekCols: info.cols, SeekColSels: info.colSels, Selectivity: info.sel,
				Rows: outRows, AccessCost: cost, NeededCols: needed,
				LookedUp: !ix.Covers(needed),
			}
		}
	}
	if bestU == nil {
		return plan.Cost{}, nil
	}
	return bestCostV, bestU
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

package optimizer

import (
	"fmt"
	"strings"

	"repro/internal/physical"
)

// IndexRequest is the single-relation access path request of §2 of the
// paper: an index request (S, N, O, A) where S are the sargable
// conditions, N the column sets of non-sargable predicates, O the
// requested order, and A the additional columns referenced upwards in the
// query tree. Requests are issued for base tables and for matched
// materialized views (whose indexes are then requested the same way).
type IndexRequest struct {
	// Table is the base table or view the request targets.
	Table string
	// View is non-nil when the request targets a materialized view.
	View *physical.View
	// S lists the sargable conditions (column + interval + selectivity).
	S []SargCond
	// N lists, per non-sargable conjunct, the referenced local columns.
	N [][]string
	// NSel is the combined selectivity of the non-sargable conjuncts.
	NSel float64
	// O is the requested output order (local column names).
	O []string
	// A lists additional referenced columns (local names) not in S/N/O.
	A []string
	// Rows is the cardinality of the underlying table or view.
	Rows int64
}

// AllColumns returns every column the request touches: S, N, O, then A.
func (r *IndexRequest) AllColumns() []string {
	var out []string
	seen := map[string]bool{}
	add := func(c string) {
		k := strings.ToLower(c)
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	for _, s := range r.S {
		add(s.Col)
	}
	for _, n := range r.N {
		for _, c := range n {
			add(c)
		}
	}
	for _, o := range r.O {
		add(o)
	}
	for _, a := range r.A {
		add(a)
	}
	return out
}

func (r *IndexRequest) String() string {
	var s []string
	for _, c := range r.S {
		s = append(s, fmt.Sprintf("%s(%.3g)", c.Col, c.Sel))
	}
	return fmt.Sprintf("idxreq{%s S=[%s] N=%d O=%v A=%v}", r.Table, strings.Join(s, ","), len(r.N), r.O, r.A)
}

// ViewRequest is a view-matching request: an SPJG sub-query expressed in
// the 6-tuple form, issued once per joined table subset considered during
// optimization (§2: "the input sub-query itself is the most efficient
// view to satisfy the request").
type ViewRequest struct {
	// Block is the sub-query as a view definition. Cols lists every
	// column the rest of the query needs from this subset; EstRows is the
	// optimizer's cardinality estimate for the block's result.
	Block *physical.View
	// Grouped reports whether the block carries the query's GROUP BY
	// (only for requests spanning the full FROM set).
	Grouped bool
}

func (r *ViewRequest) String() string {
	return fmt.Sprintf("viewreq{%s, %d cols, rows=%d}", strings.Join(r.Block.Tables, ","), len(r.Block.Cols), r.Block.EstRows)
}

// Hooks are the optimizer's instrumentation points (§2, Figure 2): when
// set, each access-path or view-matching request suspends optimization,
// hands the request to the hook — which may simulate new hypothetical
// structures in the configuration being optimized — and then resumes with
// the enlarged configuration visible.
type Hooks struct {
	OnIndexRequest func(*IndexRequest)
	OnViewRequest  func(*ViewRequest)
}

// Stats counts optimizer activity; the experiments report request counts
// (Table 1) and optimization call counts (the dominant tuning cost).
type Stats struct {
	OptimizeCalls int64
	IndexRequests int64
	ViewRequests  int64
}

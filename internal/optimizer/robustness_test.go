package optimizer

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/physical"
	"repro/internal/sqlx"
)

// TestJoinLimitEnforced: queries beyond MaxJoinTables are rejected with a
// clear error instead of exploding the DP table.
func TestJoinLimitEnforced(t *testing.T) {
	db := catalog.NewDatabase("wide")
	n := MaxJoinTables + 1
	var froms, joins []string
	for i := 0; i < n; i++ {
		tb, err := catalog.NewTable(fmt.Sprintf("w%d", i), 10, []catalog.Column{
			{Name: "id", Type: catalog.TypeInt, AvgWidth: 4, Stats: &catalog.ColumnStats{Distinct: 10, Min: 0, Max: 9, Numeric: true}},
		}, []string{"id"})
		if err != nil {
			t.Fatal(err)
		}
		db.MustAddTable(tb)
		froms = append(froms, tb.Name)
		if i > 0 {
			joins = append(joins, fmt.Sprintf("w%d.id = w%d.id", i-1, i))
		}
	}
	src := "SELECT w0.id FROM " + strings.Join(froms, ", ") + " WHERE " + strings.Join(joins, " AND ")
	stmt, err := sqlx.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Bind(db, stmt)
	if err != nil {
		t.Fatal(err)
	}
	o := New(db)
	cfg := physical.NewConfiguration()
	if _, err := o.Optimize(q, cfg); err == nil {
		t.Error("over-wide join should be rejected")
	} else if !strings.Contains(err.Error(), "join limit") {
		t.Errorf("unhelpful error: %v", err)
	}
}

// TestEmptyTablePlans: zero-row tables still produce valid plans.
func TestEmptyTablePlans(t *testing.T) {
	db := catalog.NewDatabase("empty")
	tb, err := catalog.NewTable("e", 0, []catalog.Column{
		{Name: "id", Type: catalog.TypeInt, AvgWidth: 4, Stats: &catalog.ColumnStats{Distinct: 1, Min: 0, Max: 0, Numeric: true}},
		{Name: "v", Type: catalog.TypeInt, AvgWidth: 4, Stats: &catalog.ColumnStats{Distinct: 1, Min: 0, Max: 0, Numeric: true}},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	db.MustAddTable(tb)
	o := New(db)
	cfg := physical.NewConfiguration()
	ix := physical.NewIndex("e", []string{"id"}, []string{"v"}, true)
	ix.Required = true
	cfg.AddIndex(ix)
	q := mustBind(t, db, "SELECT v FROM e WHERE id = 3")
	p := mustPlan(t, o, q, cfg)
	if p.Cost.Total() < 0 {
		t.Errorf("negative cost: %v", p.Cost)
	}
}

// TestStatsSnapshotSemantics: Stats() returns a copy, not live counters.
func TestStatsSnapshotSemantics(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	snap := o.Stats()
	mustPlan(t, o, mustBind(t, db, "SELECT a FROM r"), cfg)
	if snap.OptimizeCalls == o.Stats().OptimizeCalls {
		t.Error("counter should have advanced on the optimizer")
	}
	o.ResetStats()
	if o.Stats().OptimizeCalls != 0 {
		t.Error("reset failed")
	}
}

// TestHooksSuspendAndResume: structures created by a hook mid-optimization
// are visible to the same optimization (the §2 suspend/resume loop).
func TestHooksSuspendAndResume(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	injected := physical.NewIndex("r", []string{"b"}, []string{"a"}, false)
	o.SetHooks(&Hooks{OnIndexRequest: func(req *IndexRequest) {
		if strings.EqualFold(req.Table, "r") {
			cfg.AddIndex(injected)
		}
	}})
	defer o.SetHooks(nil)
	q := mustBind(t, db, "SELECT a FROM r WHERE b = 7")
	p := mustPlan(t, o, q, cfg)
	if !p.UsesIndex(injected.ID()) {
		t.Error("hypothetical index injected by the hook was not considered")
	}
}

// TestIndexRequestShape: the (S, N, O, A) decomposition matches §2's
// definition on a representative query.
func TestIndexRequestShape(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	var got *IndexRequest
	o.SetHooks(&Hooks{OnIndexRequest: func(req *IndexRequest) {
		if strings.EqualFold(req.Table, "r") && got == nil {
			got = req
		}
	}})
	defer o.SetHooks(nil)
	// τ_b Π_{b,pad} σ_{a<10 ∧ c=1 ∧ a+b>5}(r)
	q := mustBind(t, db, "SELECT b, pad FROM r WHERE a < 10 AND c = 1 AND a + b > 5 ORDER BY b")
	mustPlan(t, o, q, cfg)
	if got == nil {
		t.Fatal("no index request intercepted")
	}
	if len(got.S) != 2 {
		t.Errorf("S: %+v", got.S)
	}
	if len(got.N) != 1 || len(got.N[0]) != 2 {
		t.Errorf("N: %+v", got.N)
	}
	if len(got.O) != 1 || got.O[0] != "b" {
		t.Errorf("O: %v", got.O)
	}
	// A = referenced columns not in S/N/O: pad.
	if len(got.A) != 1 || got.A[0] != "pad" {
		t.Errorf("A: %v", got.A)
	}
}

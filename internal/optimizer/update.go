package optimizer

import (
	"strings"

	"repro/internal/physical"
	"repro/internal/plan"
	"repro/internal/sqlx"
)

// IndexAffectedByUpdate reports whether maintaining ix is required when q
// runs: INSERT and DELETE touch every index on the table; UPDATE touches
// the clustered index (rows are rewritten in place) and any secondary
// index containing a SET column.
func IndexAffectedByUpdate(q *BoundQuery, ix *physical.Index) bool {
	if q.Kind == sqlx.StmtSelect {
		return false
	}
	if !strings.EqualFold(ix.Table, q.UpdateTable) {
		return false
	}
	if q.Kind != sqlx.StmtUpdate || ix.Clustered {
		return true
	}
	for _, c := range q.SetCols {
		if ix.HasColumn(c) {
			return true
		}
	}
	return false
}

// IndexUpdateCost estimates the cost of applying k row modifications to
// one index: the distinct leaf pages touched (random I/O) plus per-row
// delete/insert CPU work.
func (o *Optimizer) IndexUpdateCost(ix *physical.Index, cfg *physical.Configuration, k float64) float64 {
	if k <= 0 {
		return 0
	}
	rows := o.sizer.IndexRows(ix, cfg)
	pages := o.sizer.IndexLeafPages(ix, cfg)
	touched := randomPages(rows, pages, k)
	height := float64(o.sizer.IndexHeight(ix, cfg))
	return touched*o.model.RandPage + height*o.model.RandPage + 2*k*o.model.CPURow
}

// viewMaintenanceRows estimates how many rows of view v are affected when
// k rows of base table change: scaled by the view-to-table cardinality
// ratio (an aggregated view typically absorbs many base rows per view
// row; an unaggregated join view can amplify them).
func (o *Optimizer) viewMaintenanceRows(v *physical.View, base string, k float64) float64 {
	t := o.db.Table(base)
	if t == nil || t.Rows <= 0 || v.EstRows <= 0 {
		return k
	}
	ratio := float64(v.EstRows) / float64(t.Rows)
	if ratio > 1 {
		ratio = 1 + (ratio-1)*0.5 // dampen join amplification
	}
	rows := k * ratio
	if rows < 1 {
		rows = 1
	}
	if rows > float64(v.EstRows) {
		rows = float64(v.EstRows)
	}
	return rows
}

// UpdateShellCost is the §3.6 update-shell cost of q under cfg for k
// affected rows: the maintenance cost of every affected index on the
// updated table plus the maintenance of every materialized view (and its
// indexes) referencing that table.
func (o *Optimizer) UpdateShellCost(q *BoundQuery, cfg *physical.Configuration, k float64) float64 {
	if q.Kind == sqlx.StmtSelect || q.UpdateTable == "" || k <= 0 {
		return 0
	}
	total := 0.0
	for _, ix := range cfg.IndexesOn(q.UpdateTable) {
		if IndexAffectedByUpdate(q, ix) {
			total += o.IndexUpdateCost(ix, cfg, k)
		}
	}
	for _, v := range cfg.Views() {
		refs := false
		for _, t := range v.Tables {
			if strings.EqualFold(t, q.UpdateTable) {
				refs = true
				break
			}
		}
		if !refs {
			continue
		}
		kv := o.viewMaintenanceRows(v, q.UpdateTable, k)
		for _, ix := range cfg.IndexesOn(v.Name) {
			total += o.IndexUpdateCost(ix, cfg, kv)
		}
	}
	return total
}

// QueryResult couples the optimized select-part plan with the update-shell
// cost under a configuration.
type QueryResult struct {
	Plan *plan.QueryPlan
	// SelectCost is the select part's estimated cost.
	SelectCost float64
	// UpdateCost is the index/view maintenance cost (0 for SELECTs).
	UpdateCost float64
	// AffectedRows is the estimated number of modified rows.
	AffectedRows float64
}

// TotalCost is SelectCost + UpdateCost.
func (r *QueryResult) TotalCost() float64 { return r.SelectCost + r.UpdateCost }

// OptimizeFull optimizes the select part and adds the update-shell cost,
// returning the complete per-query result under cfg.
func (o *Optimizer) OptimizeFull(q *BoundQuery, cfg *physical.Configuration) (*QueryResult, error) {
	p, err := o.Optimize(q, cfg)
	if err != nil {
		return nil, err
	}
	res := &QueryResult{Plan: p, SelectCost: p.Cost.Total()}
	if q.IsUpdate() {
		k := p.Root.OutRows()
		if q.Kind == sqlx.StmtInsert {
			k = float64(q.InsertRows)
		}
		res.AffectedRows = k
		res.UpdateCost = o.UpdateShellCost(q, cfg, k)
	}
	return res, nil
}

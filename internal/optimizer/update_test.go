package optimizer

import (
	"testing"

	"repro/internal/physical"
	"repro/internal/sqlx"
)

func TestIndexAffectedByUpdate(t *testing.T) {
	db := testDB(t)
	q := mustBind(t, db, "UPDATE r SET a = a + 1 WHERE c = 1")
	cases := []struct {
		ix       *physical.Index
		affected bool
	}{
		{physical.NewIndex("r", []string{"a"}, nil, false), true},           // contains SET col
		{physical.NewIndex("r", []string{"b"}, []string{"a"}, false), true}, // suffix counts
		{physical.NewIndex("r", []string{"b"}, nil, false), false},          // untouched columns
		{physical.NewIndex("r", []string{"id"}, nil, true), true},           // clustered always
		{physical.NewIndex("u", []string{"x"}, nil, false), false},          // other table
	}
	for i, c := range cases {
		if got := IndexAffectedByUpdate(q, c.ix); got != c.affected {
			t.Errorf("case %d (%s): affected=%v, want %v", i, c.ix, got, c.affected)
		}
	}
}

func TestDeleteAffectsEverything(t *testing.T) {
	db := testDB(t)
	q := mustBind(t, db, "DELETE FROM r WHERE c = 1")
	ix := physical.NewIndex("r", []string{"b"}, nil, false)
	if !IndexAffectedByUpdate(q, ix) {
		t.Error("deletes touch every index on the table")
	}
}

func TestSelectAffectsNothing(t *testing.T) {
	db := testDB(t)
	q := mustBind(t, db, "SELECT a FROM r")
	ix := physical.NewIndex("r", []string{"a"}, nil, false)
	if IndexAffectedByUpdate(q, ix) {
		t.Error("selects maintain no indexes")
	}
}

func TestUpdateShellCostGrowsWithIndexes(t *testing.T) {
	db := testDB(t)
	o := New(db)
	q := mustBind(t, db, "UPDATE r SET a = a + 1 WHERE c = 1")
	lean := baseCfg(db)
	costLean := o.UpdateShellCost(q, lean, 1000)
	fat := lean.Clone()
	fat.AddIndex(physical.NewIndex("r", []string{"a"}, []string{"b"}, false))
	fat.AddIndex(physical.NewIndex("r", []string{"c", "a"}, nil, false))
	costFat := o.UpdateShellCost(q, fat, 1000)
	if costFat <= costLean {
		t.Errorf("more affected indexes must cost more: %g <= %g", costFat, costLean)
	}
}

func TestUpdateShellCostZeroForSelects(t *testing.T) {
	db := testDB(t)
	o := New(db)
	q := mustBind(t, db, "SELECT a FROM r")
	if got := o.UpdateShellCost(q, baseCfg(db), 100); got != 0 {
		t.Errorf("select shell cost: %g", got)
	}
}

func TestUpdateShellChargesViews(t *testing.T) {
	db := testDB(t)
	o := New(db)
	q := mustBind(t, db, "UPDATE r SET b = b + 1 WHERE c = 1")
	cfg := baseCfg(db)
	withoutView := o.UpdateShellCost(q, cfg, 500)

	v := &physical.View{
		Name:    "vr",
		Tables:  []string{"r"},
		GroupBy: []sqlx.ColRef{{Table: "r", Column: "c"}},
		Cols: []physical.ViewColumn{
			physical.BaseViewColumn(sqlx.ColRef{Table: "r", Column: "c"}, 4),
			physical.AggViewColumn(sqlx.AggSum, sqlx.ColRef{Table: "r", Column: "b"}, 8),
		},
		EstRows: 10,
	}
	cfg.AddView(v)
	cfg.AddIndex(physical.NewIndex("vr", []string{v.Cols[0].Name}, []string{v.Cols[1].Name}, true))
	withView := o.UpdateShellCost(q, cfg, 500)
	if withView <= withoutView {
		t.Errorf("materialized views on the updated table must add maintenance cost: %g <= %g", withView, withoutView)
	}
}

func TestOptimizeFullAddsShellCost(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	q := mustBind(t, db, "UPDATE r SET a = a + 1 WHERE c = 1")
	res, err := o.OptimizeFull(q, cfg)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if res.UpdateCost <= 0 {
		t.Error("update shell cost missing")
	}
	if res.AffectedRows <= 0 {
		t.Error("affected rows missing")
	}
	if res.TotalCost() != res.SelectCost+res.UpdateCost {
		t.Error("total cost mismatch")
	}
}

func TestOptimizeFullInsertUsesRowCount(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	q := mustBind(t, db, "INSERT INTO u VALUES (1,2,3), (4,5,6), (7,8,9)")
	res, err := o.OptimizeFull(q, cfg)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if res.AffectedRows != 3 {
		t.Errorf("affected rows: %g", res.AffectedRows)
	}
	if res.UpdateCost <= 0 {
		t.Error("insert maintenance cost missing")
	}
}

// The core optimality trade-off of §3.6: an index that speeds the select
// part can still lose overall once its maintenance is charged.
func TestUpdateCostCanOutweighSelectBenefit(t *testing.T) {
	db := testDB(t)
	o := New(db)
	q := mustBind(t, db, "UPDATE r SET pad = pad WHERE b = 7")
	lean := baseCfg(db)
	leanRes, err := o.OptimizeFull(q, lean)
	if err != nil {
		t.Fatal(err)
	}
	// A b-keyed index speeds the select part…
	fat := lean.Clone()
	fat.AddIndex(physical.NewIndex("r", []string{"b"}, nil, false))
	// …and several pad-bearing indexes inflate maintenance.
	fat.AddIndex(physical.NewIndex("r", []string{"a"}, []string{"pad"}, false))
	fat.AddIndex(physical.NewIndex("r", []string{"c"}, []string{"pad"}, false))
	fatRes, err := o.OptimizeFull(q, fat)
	if err != nil {
		t.Fatal(err)
	}
	if fatRes.SelectCost >= leanRes.SelectCost {
		t.Errorf("select part should improve: %g >= %g", fatRes.SelectCost, leanRes.SelectCost)
	}
	if fatRes.UpdateCost <= leanRes.UpdateCost {
		t.Errorf("maintenance should grow: %g <= %g", fatRes.UpdateCost, leanRes.UpdateCost)
	}
}

package optimizer

import (
	"repro/internal/catalog"
	"repro/internal/physical"
)

// EstimateViewRows estimates the cardinality of a view definition using
// the optimizer's own cardinality machinery (§3.3.1 prescribes reusing
// the optimizer's cardinality module rather than a parallel estimator).
// It is used to size merged views produced during relaxation.
func (o *Optimizer) EstimateViewRows(v *physical.View) int64 {
	rows := 1.0
	for _, t := range v.Tables {
		tbl := o.db.Table(t)
		if tbl != nil && tbl.Rows > 0 {
			rows *= float64(tbl.Rows)
		}
	}
	for _, j := range v.Joins {
		rows *= o.joinSelectivity(j)
	}
	for _, r := range v.Ranges {
		rows *= o.intervalSelectivity(r.Col, r.Iv)
	}
	for range v.Others {
		rows *= catalog.DefaultOtherSelectivity
	}
	if len(v.GroupBy) > 0 {
		rows = o.groupCardinality(rows, v.GroupBy)
	}
	if rows < 1 {
		rows = 1
	}
	return int64(rows)
}

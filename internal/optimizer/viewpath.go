package optimizer

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/physical"
	"repro/internal/plan"
	"repro/internal/sqlx"
)

// subsetBlock expresses the sub-query over one table subset as a 6-tuple
// view definition (§2: view requests are SPJG sub-queries). When grouped
// is true (full FROM set only) the block carries the query's GROUP BY and
// aggregate outputs.
func (o *Optimizer) subsetBlock(q *BoundQuery, idx map[string]int, mask uint64, grouped bool) *physical.View {
	var tables []string
	for i, t := range q.Tables {
		if mask&(1<<uint(i)) != 0 {
			tables = append(tables, t)
		}
	}
	sort.Strings(tables)
	inMask := func(c sqlx.ColRef) bool { return maskHasCol(idx, mask, c) }

	block := &physical.View{Tables: tables}
	for _, j := range q.Joins {
		if inMask(j.L) && inMask(j.R) {
			block.Joins = append(block.Joins, j)
		}
	}
	for _, t := range tables {
		tp := q.TablePred(t)
		for _, s := range tp.Sargs {
			block.Ranges = append(block.Ranges, physical.RangeCond{
				Col: sqlx.ColRef{Table: t, Column: s.Col}, Iv: s.Iv,
			})
		}
		for _, oc := range tp.Others {
			block.Others = append(block.Others, oc.Expr)
		}
	}
	for _, oc := range q.CrossOthers {
		if maskHasAll(idx, mask, oc.Cols) {
			block.Others = append(block.Others, oc.Expr)
		}
	}

	if grouped {
		block.GroupBy = append([]sqlx.ColRef(nil), q.GroupBy...)
		for _, vc := range q.SelectCols {
			addBlockCol(block, vc)
		}
		for _, g := range q.GroupBy {
			addBlockCol(block, physical.BaseViewColumn(g, o.colWidth(g)))
		}
		for _, ob := range q.OrderBy {
			if len(q.GroupBy) == 0 || containsRef(q.GroupBy, ob) {
				addBlockCol(block, physical.BaseViewColumn(ob, o.colWidth(ob)))
			}
		}
		block.EstRows = int64(o.groupCardinality(o.selRows(q, idx, mask), q.GroupBy))
	} else {
		for _, t := range tables {
			for _, c := range q.NeededCols(t) {
				ref := sqlx.ColRef{Table: t, Column: c}
				addBlockCol(block, physical.BaseViewColumn(ref, o.colWidth(ref)))
			}
		}
		block.EstRows = int64(o.selRows(q, idx, mask))
	}
	if block.EstRows < 1 {
		block.EstRows = 1
	}
	block.Name = physical.ViewNameFor(block)
	return block
}

func addBlockCol(v *physical.View, col physical.ViewColumn) {
	if v.Column(col.Name) == nil {
		v.Cols = append(v.Cols, col)
	}
}

func containsRef(list []sqlx.ColRef, c sqlx.ColRef) bool {
	for _, x := range list {
		if x == c {
			return true
		}
	}
	return false
}

func (o *Optimizer) colWidth(c sqlx.ColRef) int {
	t := o.db.Table(c.Table)
	if t == nil {
		return 8
	}
	col := t.Column(c.Column)
	if col == nil {
		return 8
	}
	return col.AvgWidth
}

// ViewDefinition converts a bound single-block SELECT into the 6-tuple
// view form covering its whole FROM set (with the query's grouping and
// aggregates), estimating the view's cardinality. Used to build
// user-supplied what-if views and baseline candidates.
func (o *Optimizer) ViewDefinition(q *BoundQuery) (*physical.View, error) {
	if q.IsUpdate() || len(q.Tables) == 0 {
		return nil, fmt.Errorf("optimizer: view definitions must be SELECT statements")
	}
	idx := tableIndexMap(q)
	full := uint64(1)<<uint(len(q.Tables)) - 1
	grouped := len(q.GroupBy) > 0 || q.HasAggregates()
	return o.subsetBlock(q, idx, full, grouped), nil
}

// viewPlans fires the view request(s) for a table subset (§2) and builds
// the cheapest plan that answers the subset from a matching materialized
// view in cfg, or nil when no view applies.
func (o *Optimizer) viewPlans(oc *optCtx, q *BoundQuery, cfg *physical.Configuration, idx map[string]int, mask uint64, isFull bool) *dpEntry {
	size := bits.OnesCount64(mask)
	queryGrouped := isFull && (len(q.GroupBy) > 0 || q.HasAggregates())
	if size < 2 && !queryGrouped {
		// Single-table SPJ sub-plans are fully served by index requests;
		// only grouped single-table blocks warrant a view.
		return nil
	}

	ungrouped, ukey := o.viewBlock(q, idx, mask, false)
	o.issueViewRequest(oc, ukey, ungrouped, false)
	var grouped *physical.View
	if queryGrouped {
		var gkey string
		grouped, gkey = o.viewBlock(q, idx, mask, true)
		o.issueViewRequest(oc, gkey, grouped, true)
	}

	var best *dpEntry
	consider := func(e *dpEntry) {
		if e != nil && (best == nil || e.cost() < best.cost()) {
			best = e
		}
	}
	for _, v := range oc.viewsOf(cfg) {
		if !v.HasTableSet(ungrouped.Tables) || v.EstRows <= 0 {
			continue
		}
		if len(oc.indexesOn(cfg, v.Name)) == 0 {
			continue // not materialized
		}
		if m := physical.MatchView(ungrouped, v); m != nil {
			consider(o.viewAccessPlan(oc, q, cfg, idx, v, m, mask, isFull, false))
		}
		if grouped != nil {
			if m := physical.MatchView(grouped, v); m != nil {
				consider(o.viewAccessPlan(oc, q, cfg, idx, v, m, mask, isFull, true))
			}
		}
	}
	return best
}

// viewBlockEntry is one memoized subsetBlock result (see viewBlock).
type viewBlockEntry struct {
	block *physical.View
	key   string
}

// viewBlock returns the memoized SPJG block for (mask, grouped) together
// with its request-dedup key. Blocks depend only on the bound query and
// the catalog statistics — never on the configuration being optimized —
// so each is computed once per query and shared across every what-if
// call and every forked worker. Sharing the block with hooks is safe:
// the interceptor clones it before storing it in a configuration.
func (o *Optimizer) viewBlock(q *BoundQuery, idx map[string]int, mask uint64, grouped bool) (*physical.View, string) {
	memoKey := mask << 1
	if grouped {
		memoKey |= 1
	}
	q.blockMu.Lock()
	e, ok := q.blockMemo[memoKey]
	q.blockMu.Unlock()
	if ok {
		return e.block, e.key
	}
	block := o.subsetBlock(q, idx, mask, grouped)
	key := "v|" + block.Signature()
	q.blockMu.Lock()
	if prev, ok := q.blockMemo[memoKey]; ok {
		// Lost a race with another worker: keep the first instance.
		block, key = prev.block, prev.key
	} else {
		if q.blockMemo == nil {
			q.blockMemo = map[uint64]viewBlockEntry{}
		}
		q.blockMemo[memoKey] = viewBlockEntry{block: block, key: key}
	}
	q.blockMu.Unlock()
	return block, key
}

// issueViewRequest counts the request and fires the hook, deduplicating
// by the block's signature within one optimization. The ViewRequest
// wrapper is materialized only when a hook is installed.
func (o *Optimizer) issueViewRequest(oc *optCtx, key string, block *physical.View, grouped bool) {
	if oc != nil {
		if oc.reqSeen[key] {
			return
		}
		oc.reqSeen[key] = true
	}
	o.stats.viewRequests.Add(1)
	if o.hooks != nil && o.hooks.OnViewRequest != nil {
		o.hooks.OnViewRequest(&ViewRequest{Block: block, Grouped: grouped})
		if oc != nil {
			// The hook may have materialized the block as a hypothetical
			// view with a clustered index, so both the per-call view list
			// and the index memo for the view's name are now stale.
			oc.viewsSet = false
			delete(oc.ixOn, block.Name)
		}
	}
}

// viewAccessPlan builds an access path over a matched view, applying the
// match's compensating filters and (when needed) re-aggregation.
func (o *Optimizer) viewAccessPlan(oc *optCtx, q *BoundQuery, cfg *physical.Configuration, idx map[string]int, v *physical.View, m *physical.ViewMatch, mask uint64, isFull, groupedMatch bool) *dpEntry {
	spec := &accessSpec{
		table: v.Name,
		view:  v,
		rows:  v.EstRows,
		qual:  v.Name,
	}
	// Residual ranges become sargable over the view, with selectivities
	// conditioned on what the view already filters.
	for _, r := range m.ResidualRanges {
		vc := v.ColumnForSource(r.Col)
		qSel := o.intervalSelectivity(r.Col, r.Iv)
		vSel := 1.0
		for _, vr := range v.Ranges {
			if vr.Col == r.Col {
				vSel = o.intervalSelectivity(vr.Col, vr.Iv)
				break
			}
		}
		cond := qSel
		if vSel > 0 {
			cond = qSel / vSel
		}
		if cond > 1 {
			cond = 1
		}
		if vc != nil {
			spec.sargs = append(spec.sargs, SargCond{Col: vc.Name, Iv: r.Iv, Sel: cond})
		} else {
			spec.others = append(spec.others, residCond{sel: cond})
		}
	}
	// Residual joins and other conjuncts become filters.
	for _, j := range m.ResidualJoins {
		spec.others = append(spec.others, residCond{
			cols: o.mapViewCols(v, []sqlx.ColRef{j.L, j.R}),
			sel:  o.joinSelectivity(j),
		})
	}
	for _, e := range m.ResidualOthers {
		sel := o.lookupOtherSel(q, e)
		spec.others = append(spec.others, residCond{cols: o.mapViewCols(v, e.Columns(nil)), sel: sel})
	}

	// Needed columns over the view.
	neededSet := map[string]bool{}
	addNeeded := func(name string) {
		k := strings.ToLower(name)
		if name != "" && !neededSet[k] {
			neededSet[k] = true
			spec.needed = append(spec.needed, name)
		}
	}
	if groupedMatch {
		for _, g := range q.GroupBy {
			if vc := v.ColumnForSource(g); vc != nil {
				addNeeded(vc.Name)
			}
		}
		for _, sc := range q.SelectCols {
			if sc.Agg == sqlx.AggNone {
				if vc := v.ColumnForSource(sc.Source); vc != nil {
					addNeeded(vc.Name)
				}
				continue
			}
			for _, vc := range o.derivableAggCols(v, sc) {
				addNeeded(vc)
			}
		}
	} else {
		for i, t := range q.Tables {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			for _, c := range q.NeededCols(t) {
				if vc := v.ColumnForSource(sqlx.ColRef{Table: t, Column: c}); vc != nil {
					addNeeded(vc.Name)
				}
			}
		}
	}
	for _, s := range spec.sargs {
		addNeeded(s.Col)
	}
	for _, rc := range spec.others {
		for _, c := range rc.cols {
			addNeeded(c)
		}
	}
	spec.width = o.viewNeededWidth(v, spec.needed)

	// Order pushdown only at the root with no re-aggregation pending.
	regroup := m.NeedGroupBy || (!groupedMatch && (len(q.GroupBy) > 0 || q.HasAggregates()))
	if isFull && !regroup && len(q.OrderBy) > 0 {
		var ord []string
		ok := true
		for _, ob := range q.OrderBy {
			vc := v.ColumnForSource(ob)
			if vc == nil {
				ok = false
				break
			}
			ord = append(ord, vc.Name)
		}
		if ok {
			spec.order = ord
		}
	}

	res := o.requestAccess(oc, cfg, spec)
	if res == nil {
		return nil
	}
	node := res.node
	entry := oc.newEntry()
	entry.usages = res.usages
	entry.views = []string{v.Name}
	// The view plan's order properties use view-local names; flag order
	// delivery explicitly so the root does not add a redundant sort.
	if len(spec.order) > 0 && plan.OrderSatisfies(node.OutOrder(), spec.qualify(spec.order), spec.eqBoundCols()) {
		entry.ordered = true
	}
	if regroup {
		keys := make([]string, 0, len(q.GroupBy))
		for _, g := range q.GroupBy {
			if vc := v.ColumnForSource(g); vc != nil {
				keys = append(keys, v.Name+"."+vc.Name)
			}
		}
		groups := o.groupCardinality(o.selRows(q, idx, mask), q.GroupBy)
		if len(q.GroupBy) == 0 {
			groups = 1
		}
		if groupedMatch || isFull {
			node = plan.NewGroupBy(node, keys, plan.AggHash, groups, node.TotalCost().Add(o.model.HashAggCost(node.OutRows())))
			entry.grouped = true
		}
	} else if groupedMatch {
		entry.grouped = true
	}
	entry.node = node
	return entry
}

// derivableAggCols returns the view columns needed to derive an aggregate
// output (SUM→SUM, COUNT→COUNT, AVG→SUM+COUNT or AVG).
func (o *Optimizer) derivableAggCols(v *physical.View, sc physical.ViewColumn) []string {
	var out []string
	switch sc.Agg {
	case sqlx.AggAvg:
		if c := v.AggColumnFor(sqlx.AggSum, sc.Source); c != nil {
			out = append(out, c.Name)
		}
		if c := v.AggColumnFor(sqlx.AggCount, sqlx.ColRef{}); c != nil {
			out = append(out, c.Name)
		} else if c := v.AggColumnFor(sqlx.AggCount, sc.Source); c != nil {
			out = append(out, c.Name)
		}
		if len(out) == 0 {
			if c := v.AggColumnFor(sqlx.AggAvg, sc.Source); c != nil {
				out = append(out, c.Name)
			}
		}
	case sqlx.AggCount:
		if c := v.AggColumnFor(sqlx.AggCount, sc.Source); c != nil {
			out = append(out, c.Name)
		} else if c := v.AggColumnFor(sqlx.AggCount, sqlx.ColRef{}); c != nil {
			out = append(out, c.Name)
		}
	default:
		if c := v.AggColumnFor(sc.Agg, sc.Source); c != nil {
			out = append(out, c.Name)
		}
	}
	return out
}

func (o *Optimizer) mapViewCols(v *physical.View, refs []sqlx.ColRef) []string {
	var out []string
	for _, r := range refs {
		if vc := v.ColumnForSource(r); vc != nil {
			out = append(out, vc.Name)
		}
	}
	return out
}

func (o *Optimizer) lookupOtherSel(q *BoundQuery, e sqlx.Expr) float64 {
	for _, tp := range q.Preds {
		for _, oc := range tp.Others {
			if oc.Expr.EqualExpr(e) {
				return oc.Sel
			}
		}
	}
	for _, oc := range q.CrossOthers {
		if oc.Expr.EqualExpr(e) {
			return oc.Sel
		}
	}
	return 0.5
}

func (o *Optimizer) viewNeededWidth(v *physical.View, needed []string) int {
	w := 0
	for _, n := range needed {
		if c := v.Column(n); c != nil {
			w += c.Width
		}
	}
	if w == 0 {
		w = 8
	}
	return w
}

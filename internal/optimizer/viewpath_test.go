package optimizer

import (
	"testing"

	"repro/internal/physical"
	"repro/internal/plan"
	"repro/internal/sqlx"
)

// addMatViewForQuery materializes the query's own grouped block as a view
// with a clustered index, returning the view.
func addMatViewForQuery(t *testing.T, o *Optimizer, q *BoundQuery, cfg *physical.Configuration, grouped bool) *physical.View {
	t.Helper()
	idx := tableIndexMap(q)
	full := uint64(1)<<uint(len(q.Tables)) - 1
	block := o.subsetBlock(q, idx, full, grouped)
	v := cfg.AddView(block)
	keys := v.AllColumnNames()[:1]
	cfg.AddIndex(physical.NewIndex(v.Name, keys, v.AllColumnNames()[1:], true))
	return v
}

func TestOptimizerUsesExactMatchingView(t *testing.T) {
	db := testDB(t)
	o := New(db)
	q := mustBind(t, db, "SELECT c, SUM(b) FROM r WHERE a = 5 GROUP BY c")
	cfg := baseCfg(db)
	before := mustPlan(t, o, q, cfg)

	v := addMatViewForQuery(t, o, q, cfg, true)
	after := mustPlan(t, o, q, cfg)
	if !after.UsesView(v.Name) {
		t.Fatalf("plan should read the materialized view:\n%s", plan.Format(after.Root))
	}
	if after.Cost.Total() >= before.Cost.Total() {
		t.Errorf("view should be cheaper: %g >= %g", after.Cost.Total(), before.Cost.Total())
	}
	// A pre-aggregated exact view needs no compensating group-by.
	if findNode(after.Root, "GroupBy") != nil {
		t.Errorf("no compensation expected:\n%s", plan.Format(after.Root))
	}
}

func TestOptimizerUsesJoinView(t *testing.T) {
	db := testDB(t)
	o := New(db)
	q := mustBind(t, db, "SELECT r.b, u.x FROM r, u WHERE r.a = u.fk AND r.c = 1")
	cfg := baseCfg(db)
	before := mustPlan(t, o, q, cfg)

	v := addMatViewForQuery(t, o, q, cfg, false)
	after := mustPlan(t, o, q, cfg)
	if !after.UsesView(v.Name) {
		t.Fatalf("plan should read the join view:\n%s", plan.Format(after.Root))
	}
	if after.Cost.Total() >= before.Cost.Total() {
		t.Errorf("pre-joined view should be cheaper: %g >= %g", after.Cost.Total(), before.Cost.Total())
	}
}

func TestViewIgnoredWhenNotMaterialized(t *testing.T) {
	db := testDB(t)
	o := New(db)
	q := mustBind(t, db, "SELECT c, SUM(b) FROM r WHERE a = 5 GROUP BY c")
	cfg := baseCfg(db)
	idx := tableIndexMap(q)
	block := o.subsetBlock(q, idx, 1, true)
	cfg.AddView(block) // view definition without any index
	p := mustPlan(t, o, q, cfg)
	if p.UsesView(block.Name) {
		t.Error("unmaterialized views must not be used")
	}
}

func TestGroupedViewServesCoarserQuery(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	// Materialize a view grouped by (c, a); query groups by c only.
	fine := mustBind(t, db, "SELECT c, a, SUM(b) FROM r GROUP BY c, a")
	v := addMatViewForQuery(t, o, fine, cfg, true)

	coarse := mustBind(t, db, "SELECT c, SUM(b) FROM r GROUP BY c")
	p := mustPlan(t, o, coarse, cfg)
	if !p.UsesView(v.Name) {
		t.Fatalf("finer view should answer the coarser query:\n%s", plan.Format(p.Root))
	}
	if findNode(p.Root, "GroupBy") == nil {
		t.Errorf("re-aggregation required:\n%s", plan.Format(p.Root))
	}
}

func TestSubsetBlockShape(t *testing.T) {
	db := testDB(t)
	o := New(db)
	q := mustBind(t, db, "SELECT r.b, u.x FROM r, u WHERE r.a = u.fk AND r.c = 1 AND r.a + r.b > 10")
	idx := tableIndexMap(q)
	full := uint64(3)
	block := o.subsetBlock(q, idx, full, false)
	if len(block.Tables) != 2 {
		t.Errorf("tables: %v", block.Tables)
	}
	if len(block.Joins) != 1 {
		t.Errorf("joins: %v", block.Joins)
	}
	if len(block.Ranges) != 1 {
		t.Errorf("ranges: %v", block.Ranges)
	}
	if len(block.Others) != 1 {
		t.Errorf("others: %v", block.Others)
	}
	if block.EstRows <= 0 {
		t.Error("block cardinality missing")
	}
	// All needed base columns exposed.
	for _, c := range []sqlx.ColRef{{Table: "r", Column: "b"}, {Table: "u", Column: "x"}} {
		if block.ColumnForSource(c) == nil {
			t.Errorf("missing column %v", c)
		}
	}
}

func TestEstimateViewRows(t *testing.T) {
	db := testDB(t)
	o := New(db)
	q := mustBind(t, db, "SELECT r.b, u.x FROM r, u WHERE r.a = u.fk")
	idx := tableIndexMap(q)
	block := o.subsetBlock(q, idx, 3, false)
	est := o.EstimateViewRows(block)
	// 100k × 2k / 100 = 2M.
	if est < 5e5 || est > 8e6 {
		t.Errorf("view rows %d, expected near 2e6", est)
	}
	grouped := &physical.View{
		Tables:  []string{"r"},
		GroupBy: []sqlx.ColRef{{Table: "r", Column: "c"}},
		Cols:    []physical.ViewColumn{physical.BaseViewColumn(sqlx.ColRef{Table: "r", Column: "c"}, 4)},
	}
	if est := o.EstimateViewRows(grouped); est < 2 || est > 50 {
		t.Errorf("grouped view rows %d, expected near 10", est)
	}
}

func TestViewRequestIssuedForGroupedSingleTable(t *testing.T) {
	db := testDB(t)
	o := New(db)
	cfg := baseCfg(db)
	var got []*ViewRequest
	o.SetHooks(&Hooks{OnViewRequest: func(r *ViewRequest) { got = append(got, r) }})
	defer o.SetHooks(nil)
	q := mustBind(t, db, "SELECT c, SUM(b) FROM r GROUP BY c")
	mustPlan(t, o, q, cfg)
	grouped := false
	for _, r := range got {
		if r.Grouped {
			grouped = true
		}
	}
	if !grouped {
		t.Error("grouped single-table queries must issue a grouped view request")
	}
}

package physical

import (
	"fmt"
	"sort"
	"strings"
)

// Configuration is a set of indexes and materialized views. Configurations
// are treated as immutable values by the search: transformations produce
// new configurations sharing unchanged structures with their parents.
type Configuration struct {
	indexes  map[string]*Index // keyed by Index.ID()
	views    map[string]*View  // keyed by View.Name
	viewSigs map[string]string // signature -> name (deduplication)
}

// NewConfiguration returns an empty configuration.
func NewConfiguration() *Configuration {
	return &Configuration{
		indexes:  make(map[string]*Index),
		views:    make(map[string]*View),
		viewSigs: make(map[string]string),
	}
}

// Clone returns a copy that can be mutated independently. The maps are
// pre-sized from the source so cloning on the penalty-bound hot path
// never rehashes.
func (c *Configuration) Clone() *Configuration {
	n := &Configuration{
		indexes:  make(map[string]*Index, len(c.indexes)),
		views:    make(map[string]*View, len(c.views)),
		viewSigs: make(map[string]string, len(c.viewSigs)),
	}
	for k, v := range c.indexes {
		n.indexes[k] = v
	}
	for k, v := range c.views {
		n.views[k] = v
	}
	for k, v := range c.viewSigs {
		n.viewSigs[k] = v
	}
	return n
}

// AddIndex inserts ix; duplicate definitions are collapsed. Adding a
// clustered index when the table already has one demotes the new index to
// non-clustered (two clustered indexes per table are impossible).
func (c *Configuration) AddIndex(ix *Index) *Index {
	if ix.Clustered {
		if existing := c.ClusteredOn(ix.Table); existing != nil && existing.ID() != ix.ID() {
			ix = ix.Clone()
			ix.Clustered = false
			ix.id = ix.buildID()
		}
	}
	id := ix.ID()
	if old, ok := c.indexes[id]; ok {
		// Keep the Required flag if either copy carries it.
		if ix.Required && !old.Required {
			c.indexes[id] = ix
			return ix
		}
		return old
	}
	c.indexes[id] = ix
	return ix
}

// RemoveIndex deletes the index with the given ID; required indexes are
// never removed. Reports whether a removal happened.
func (c *Configuration) RemoveIndex(id string) bool {
	ix, ok := c.indexes[id]
	if !ok || ix.Required {
		return false
	}
	delete(c.indexes, id)
	return true
}

// HasIndex reports whether an index with this ID is present.
func (c *Configuration) HasIndex(id string) bool {
	_, ok := c.indexes[id]
	return ok
}

// Index returns the index with the given ID, or nil.
func (c *Configuration) Index(id string) *Index { return c.indexes[id] }

// AddView inserts a view definition, deduplicating by signature. It
// returns the canonical view instance present in the configuration.
func (c *Configuration) AddView(v *View) *View {
	sig := v.Signature()
	if name, ok := c.viewSigs[sig]; ok {
		return c.views[name]
	}
	c.views[v.Name] = v
	c.viewSigs[sig] = v.Name
	return v
}

// RemoveView deletes the view and cascades to all indexes defined over it.
// Reports whether the view existed.
func (c *Configuration) RemoveView(name string) bool {
	v, ok := c.views[name]
	if !ok {
		return false
	}
	delete(c.views, name)
	delete(c.viewSigs, v.Signature())
	for id, ix := range c.indexes {
		if strings.EqualFold(ix.Table, name) {
			delete(c.indexes, id)
		}
	}
	return true
}

// View returns the named view, or nil.
func (c *Configuration) View(name string) *View { return c.views[name] }

// ViewBySignature returns the view with the given definition, or nil.
func (c *Configuration) ViewBySignature(sig string) *View {
	name, ok := c.viewSigs[sig]
	if !ok {
		return nil
	}
	return c.views[name]
}

// Views returns all views sorted by name.
func (c *Configuration) Views() []*View {
	out := make([]*View, 0, len(c.views))
	for _, v := range c.views {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Indexes returns all indexes sorted by ID. The map keys are the IDs, so
// sorting compares existing strings instead of rebuilding each ID per
// comparison (the comparator used to dominate search-loop allocations).
func (c *Configuration) Indexes() []*Index {
	ids := make([]string, 0, len(c.indexes))
	for id := range c.indexes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*Index, len(ids))
	for i, id := range ids {
		out[i] = c.indexes[id]
	}
	return out
}

// IndexesOn returns all indexes over the named table or view, sorted.
func (c *Configuration) IndexesOn(table string) []*Index {
	var ids []string
	for id, ix := range c.indexes {
		if strings.EqualFold(ix.Table, table) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	out := make([]*Index, len(ids))
	for i, id := range ids {
		out[i] = c.indexes[id]
	}
	return out
}

// ClusteredOn returns the clustered index on the table/view, or nil.
func (c *Configuration) ClusteredOn(table string) *Index {
	for _, ix := range c.indexes {
		if ix.Clustered && strings.EqualFold(ix.Table, table) {
			return ix
		}
	}
	return nil
}

// MaterializedViews returns views that have at least one index (i.e. are
// actually materialized). In well-formed configurations every view has a
// clustered index; this accessor guards against dangling definitions.
func (c *Configuration) MaterializedViews() []*View {
	var out []*View
	for _, v := range c.Views() {
		if len(c.IndexesOn(v.Name)) > 0 {
			out = append(out, v)
		}
	}
	return out
}

// NumStructures returns the count of indexes plus views.
func (c *Configuration) NumStructures() int { return len(c.indexes) + len(c.views) }

// NumIndexes returns the number of indexes.
func (c *Configuration) NumIndexes() int { return len(c.indexes) }

// NumViews returns the number of views.
func (c *Configuration) NumViews() int { return len(c.views) }

// Fingerprint is a canonical identity for the whole configuration, used to
// deduplicate configurations in the search pool.
func (c *Configuration) Fingerprint() string {
	ids := make([]string, 0, len(c.indexes)+len(c.views))
	for id := range c.indexes {
		ids = append(ids, id)
	}
	for _, v := range c.views {
		ids = append(ids, "v:"+v.Signature())
	}
	sort.Strings(ids)
	return strings.Join(ids, "|")
}

// String renders a compact human-readable description.
func (c *Configuration) String() string {
	return fmt.Sprintf("config{%d indexes, %d views}", len(c.indexes), len(c.views))
}

// Diff returns the IDs of indexes and names of views present in c but not
// in other.
func (c *Configuration) Diff(other *Configuration) (indexIDs, viewNames []string) {
	for id := range c.indexes {
		if _, ok := other.indexes[id]; !ok {
			indexIDs = append(indexIDs, id)
		}
	}
	for name, v := range c.views {
		if other.ViewBySignature(v.Signature()) == nil {
			viewNames = append(viewNames, name)
		}
	}
	sort.Strings(indexIDs)
	sort.Strings(viewNames)
	return indexIDs, viewNames
}

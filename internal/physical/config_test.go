package physical

import (
	"strings"
	"testing"

	"repro/internal/sqlx"
)

func TestConfigurationAddRemove(t *testing.T) {
	c := NewConfiguration()
	ix := NewIndex("t", []string{"a"}, nil, false)
	c.AddIndex(ix)
	if !c.HasIndex(ix.ID()) {
		t.Fatal("index missing after add")
	}
	// Duplicate adds collapse.
	c.AddIndex(NewIndex("t", []string{"a"}, nil, false))
	if c.NumIndexes() != 1 {
		t.Errorf("duplicates should collapse: %d", c.NumIndexes())
	}
	if !c.RemoveIndex(ix.ID()) {
		t.Error("remove failed")
	}
	if c.RemoveIndex(ix.ID()) {
		t.Error("double remove should report false")
	}
}

func TestConfigurationRequiredProtection(t *testing.T) {
	c := NewConfiguration()
	req := NewIndex("t", []string{"a"}, nil, true)
	req.Required = true
	c.AddIndex(req)
	if c.RemoveIndex(req.ID()) {
		t.Error("required indexes must not be removable")
	}
	if !c.HasIndex(req.ID()) {
		t.Error("required index vanished")
	}
}

func TestConfigurationSingleClusteredPerTable(t *testing.T) {
	c := NewConfiguration()
	c.AddIndex(NewIndex("t", []string{"a"}, nil, true))
	added := c.AddIndex(NewIndex("t", []string{"b"}, nil, true))
	if added.Clustered {
		t.Error("second clustered index should be demoted")
	}
	if c.ClusteredOn("t") == nil {
		t.Error("clustered index lookup failed")
	}
	if c.ClusteredOn("T") == nil {
		t.Error("clustered lookup should be case-insensitive")
	}
}

func TestConfigurationCloneIsolation(t *testing.T) {
	c := NewConfiguration()
	ix := NewIndex("t", []string{"a"}, nil, false)
	c.AddIndex(ix)
	clone := c.Clone()
	clone.RemoveIndex(ix.ID())
	if !c.HasIndex(ix.ID()) {
		t.Error("clone mutation leaked into the original")
	}
}

func TestConfigurationViewCascade(t *testing.T) {
	c := NewConfiguration()
	v := &View{Name: "v", Tables: []string{"t"}, Cols: []ViewColumn{BaseViewColumn(sqlx.ColRef{Table: "t", Column: "a"}, 4)}}
	c.AddView(v)
	c.AddIndex(NewIndex("v", []string{v.Cols[0].Name}, nil, true))
	c.AddIndex(NewIndex("t", []string{"a"}, nil, false))
	if !c.RemoveView("v") {
		t.Fatal("remove view failed")
	}
	if len(c.IndexesOn("v")) != 0 {
		t.Error("view removal must cascade to its indexes")
	}
	if len(c.IndexesOn("t")) != 1 {
		t.Error("cascade removed unrelated indexes")
	}
}

func TestConfigurationViewDedupBySignature(t *testing.T) {
	c := NewConfiguration()
	v1 := &View{Name: "v1", Tables: []string{"t"}, Cols: []ViewColumn{BaseViewColumn(sqlx.ColRef{Table: "t", Column: "a"}, 4)}}
	v2 := &View{Name: "v2", Tables: []string{"t"}, Cols: []ViewColumn{BaseViewColumn(sqlx.ColRef{Table: "t", Column: "a"}, 4)}}
	got1 := c.AddView(v1)
	got2 := c.AddView(v2)
	if got1 != got2 {
		t.Error("identical definitions should dedup to one view")
	}
	if c.NumViews() != 1 {
		t.Errorf("views: %d", c.NumViews())
	}
	if c.ViewBySignature(v1.Signature()) == nil {
		t.Error("signature lookup failed")
	}
}

func TestFingerprintIdentity(t *testing.T) {
	build := func() *Configuration {
		c := NewConfiguration()
		c.AddIndex(NewIndex("t", []string{"a"}, []string{"b"}, false))
		c.AddIndex(NewIndex("u", []string{"x"}, nil, true))
		return c
	}
	if build().Fingerprint() != build().Fingerprint() {
		t.Error("fingerprints of equal configurations must match")
	}
	other := build()
	other.AddIndex(NewIndex("t", []string{"c"}, nil, false))
	if build().Fingerprint() == other.Fingerprint() {
		t.Error("different configurations must differ")
	}
}

func TestDiff(t *testing.T) {
	a := NewConfiguration()
	b := NewConfiguration()
	shared := NewIndex("t", []string{"a"}, nil, false)
	only := NewIndex("t", []string{"b"}, nil, false)
	a.AddIndex(shared)
	a.AddIndex(only)
	b.AddIndex(shared)
	idx, views := a.Diff(b)
	if len(idx) != 1 || idx[0] != only.ID() || len(views) != 0 {
		t.Errorf("diff: %v %v", idx, views)
	}
}

func TestMaterializedViews(t *testing.T) {
	c := NewConfiguration()
	v := &View{Name: "v", Tables: []string{"t"}, Cols: []ViewColumn{BaseViewColumn(sqlx.ColRef{Table: "t", Column: "a"}, 4)}}
	c.AddView(v)
	if len(c.MaterializedViews()) != 0 {
		t.Error("a view without indexes is not materialized")
	}
	c.AddIndex(NewIndex("v", []string{v.Cols[0].Name}, nil, true))
	if len(c.MaterializedViews()) != 1 {
		t.Error("indexed view should be materialized")
	}
}

func TestIndexesOnSorted(t *testing.T) {
	c := NewConfiguration()
	c.AddIndex(NewIndex("t", []string{"b"}, nil, false))
	c.AddIndex(NewIndex("t", []string{"a"}, nil, false))
	got := c.IndexesOn("t")
	if len(got) != 2 || strings.Compare(got[0].ID(), got[1].ID()) > 0 {
		t.Errorf("IndexesOn must be sorted: %v", got)
	}
}

package physical

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// IndexDDL renders the index as a CREATE INDEX statement with a derived
// name. The output round-trips through the sqlx parser.
func IndexDDL(ix *Index) string {
	var sb strings.Builder
	sb.WriteString("CREATE ")
	if ix.Clustered {
		sb.WriteString("CLUSTERED ")
	}
	sb.WriteString("INDEX ")
	sb.WriteString(IndexName(ix))
	sb.WriteString(" ON ")
	sb.WriteString(ix.Table)
	sb.WriteString(" (")
	sb.WriteString(strings.Join(ix.Keys, ", "))
	sb.WriteString(")")
	if len(ix.Suffix) > 0 {
		sb.WriteString(" INCLUDE (")
		sb.WriteString(strings.Join(ix.Suffix, ", "))
		sb.WriteString(")")
	}
	return sb.String()
}

// IndexName derives a stable human-readable name for an index. A short
// content hash disambiguates indexes that share keys but differ in
// suffix columns.
func IndexName(ix *Index) string {
	kind := "ix"
	if ix.Clustered {
		kind = "cix"
	}
	cols := strings.Join(ix.Keys, "_")
	if len(cols) > 40 {
		cols = cols[:40]
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(ix.ID()))
	return fmt.Sprintf("%s_%s_%s_%04x", kind, strings.ToLower(ix.Table), strings.ToLower(cols), h.Sum32()&0xffff)
}

// ViewDDL renders the view as a CREATE VIEW statement.
func ViewDDL(v *View) string {
	return "CREATE VIEW " + v.Name + " AS " + v.SQL()
}

// MigrationDDL renders the script that turns configuration `from` into
// configuration `to`: DROP statements for structures only in `from`,
// CREATE statements for structures only in `to`. Required (constraint)
// indexes are never dropped. Views are created before their indexes and
// dropped after them.
func MigrationDDL(from, to *Configuration) string {
	var sb strings.Builder
	// Creates: views first.
	for _, v := range to.Views() {
		if from.ViewBySignature(v.Signature()) == nil {
			sb.WriteString(ViewDDL(v))
			sb.WriteString(";\n")
		}
	}
	for _, ix := range to.Indexes() {
		if !from.HasIndex(ix.ID()) {
			sb.WriteString(IndexDDL(ix))
			sb.WriteString(";\n")
		}
	}
	// Drops: indexes first, then views.
	for _, ix := range from.Indexes() {
		if ix.Required || to.HasIndex(ix.ID()) {
			continue
		}
		// Skip indexes that disappear with their view.
		if v := from.View(ix.Table); v != nil && to.ViewBySignature(v.Signature()) == nil {
			continue
		}
		fmt.Fprintf(&sb, "DROP INDEX %s ON %s;\n", IndexName(ix), ix.Table)
	}
	for _, v := range from.Views() {
		if to.ViewBySignature(v.Signature()) == nil {
			fmt.Fprintf(&sb, "DROP VIEW %s;\n", v.Name)
		}
	}
	return sb.String()
}

// ConfigurationDDL renders the whole configuration as an executable
// script: view definitions first (their indexes depend on them), then all
// indexes. Required base indexes are annotated and commented out since
// they already exist in any deployment.
func ConfigurationDDL(c *Configuration) string {
	var sb strings.Builder
	for _, v := range c.Views() {
		sb.WriteString(ViewDDL(v))
		sb.WriteString(";\n")
	}
	for _, ix := range c.Indexes() {
		if ix.Required {
			sb.WriteString("-- existing (constraint): ")
			sb.WriteString(IndexDDL(ix))
			sb.WriteString(";\n")
			continue
		}
		sb.WriteString(IndexDDL(ix))
		sb.WriteString(";\n")
	}
	return sb.String()
}

package physical

import (
	"strings"
	"testing"

	"repro/internal/sqlx"
)

func TestIndexDDL(t *testing.T) {
	ix := NewIndex("lineitem", []string{"l_shipdate", "l_suppkey"}, []string{"l_extendedprice"}, false)
	ddl := IndexDDL(ix)
	if !strings.HasPrefix(ddl, "CREATE INDEX ") {
		t.Errorf("ddl: %s", ddl)
	}
	stmt, err := sqlx.Parse(ddl)
	if err != nil {
		t.Fatalf("DDL must parse: %v\n%s", err, ddl)
	}
	ci := stmt.(*sqlx.CreateIndexStmt)
	if len(ci.Keys) != 2 || len(ci.Include) != 1 {
		t.Errorf("round trip: %+v", ci)
	}
}

func TestClusteredIndexDDL(t *testing.T) {
	ix := NewIndex("t", []string{"a"}, nil, true)
	if !strings.Contains(IndexDDL(ix), "CREATE CLUSTERED INDEX") {
		t.Error("clustered keyword missing")
	}
}

func TestConfigurationDDLSkipsRequired(t *testing.T) {
	c := NewConfiguration()
	req := NewIndex("t", []string{"id"}, nil, true)
	req.Required = true
	c.AddIndex(req)
	c.AddIndex(NewIndex("t", []string{"a"}, nil, false))
	ddl := ConfigurationDDL(c)
	lines := strings.Split(strings.TrimSpace(ddl), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines: %v", lines)
	}
	if !strings.HasPrefix(lines[0], "-- existing") {
		t.Errorf("required index should be commented: %s", lines[0])
	}
}

func TestMigrationDDL(t *testing.T) {
	from := NewConfiguration()
	req := NewIndex("t", []string{"id"}, nil, true)
	req.Required = true
	from.AddIndex(req)
	dropMe := NewIndex("t", []string{"old"}, nil, false)
	from.AddIndex(dropMe)
	keepMe := NewIndex("t", []string{"keep"}, nil, false)
	from.AddIndex(keepMe)

	to := NewConfiguration()
	to.AddIndex(req)
	to.AddIndex(keepMe)
	addMe := NewIndex("t", []string{"fresh"}, []string{"x"}, false)
	to.AddIndex(addMe)

	ddl := MigrationDDL(from, to)
	if !strings.Contains(ddl, "CREATE INDEX ix_t_fresh") {
		t.Errorf("missing create:\n%s", ddl)
	}
	if !strings.Contains(ddl, "DROP INDEX ix_t_old") {
		t.Errorf("missing drop:\n%s", ddl)
	}
	if strings.Contains(ddl, "keep") {
		t.Errorf("unchanged structure in migration:\n%s", ddl)
	}
	if strings.Contains(ddl, "DROP INDEX cix_t_id") {
		t.Errorf("required index dropped:\n%s", ddl)
	}
}

func TestMigrationDDLViews(t *testing.T) {
	from := NewConfiguration()
	v := from.AddView(&View{Name: "vold", Tables: []string{"t"},
		Cols: []ViewColumn{BaseViewColumn(sqlx.ColRef{Table: "t", Column: "a"}, 4)}})
	from.AddIndex(NewIndex(v.Name, []string{v.Cols[0].Name}, nil, true))

	to := NewConfiguration()
	nv := to.AddView(&View{Name: "vnew", Tables: []string{"t"},
		Cols: []ViewColumn{BaseViewColumn(sqlx.ColRef{Table: "t", Column: "b"}, 4)}})
	to.AddIndex(NewIndex(nv.Name, []string{nv.Cols[0].Name}, nil, true))

	ddl := MigrationDDL(from, to)
	if !strings.Contains(ddl, "CREATE VIEW vnew") {
		t.Errorf("missing view create:\n%s", ddl)
	}
	if !strings.Contains(ddl, "DROP VIEW vold") {
		t.Errorf("missing view drop:\n%s", ddl)
	}
	// The old view's index disappears with the view, not via DROP INDEX.
	if strings.Contains(ddl, "DROP INDEX") && strings.Contains(ddl, "vold") && strings.Contains(ddl, "DROP INDEX cix_vold") {
		t.Errorf("cascaded index dropped explicitly:\n%s", ddl)
	}
	// Creation order: view before its index.
	if strings.Index(ddl, "CREATE VIEW vnew") > strings.Index(ddl, "ON vnew") {
		t.Errorf("view must be created before its index:\n%s", ddl)
	}
}

func TestMigrationDDLEmptyWhenIdentical(t *testing.T) {
	c := NewConfiguration()
	c.AddIndex(NewIndex("t", []string{"a"}, nil, false))
	if got := MigrationDDL(c, c); got != "" {
		t.Errorf("identical configurations need no migration:\n%s", got)
	}
}

// Package physical models physical design structures — indexes,
// materialized views, and configurations — together with the relaxation
// transformations of §3.1 of the paper (index merging, splitting,
// prefixing, promotion to clustered, and removal; view merging and
// removal) and the storage size model used to cost configurations.
package physical

import (
	"fmt"
	"strings"
)

// Index is a B-tree index I = (K; S) with ordered key columns K and a set
// of suffix columns S (paper §"Assumptions"). Suffix columns are stored
// only at the leaves and cannot be used for seeking. An index is defined
// either over a base table or over a materialized view (Table then names
// the view).
type Index struct {
	Table     string   // base table or view name
	Keys      []string // ordered key columns
	Suffix    []string // suffix (included) columns, kept in canonical order
	Clustered bool
	// Required marks constraint-enforcing indexes that belong to the base
	// configuration and can never be removed or transformed away.
	Required bool
	// id caches the canonical identity. It is filled once, before the
	// index is shared (NewIndex, or the in-package mutate-after-Clone
	// sites), so concurrent readers never observe a write. Hand-built or
	// cloned values with an empty id recompute on every ID() call rather
	// than cache lazily — a lazy store would race under parallel workers.
	id string
}

// NewIndex builds an index, deduplicating key columns (first occurrence
// wins) and normalizing the suffix to exclude key columns.
func NewIndex(table string, keys, suffix []string, clustered bool) *Index {
	idx := &Index{Table: table, Keys: dedupKeepOrder(keys), Clustered: clustered}
	idx.Suffix = subtractCols(dedupKeepOrder(suffix), idx.Keys)
	idx.id = idx.buildID()
	return idx
}

// ID returns the canonical identity string of the index. Two indexes with
// the same ID are interchangeable.
func (ix *Index) ID() string {
	if ix.id != "" {
		return ix.id
	}
	return ix.buildID()
}

func (ix *Index) buildID() string {
	var sb strings.Builder
	if ix.Clustered {
		sb.WriteString("cix:")
	} else {
		sb.WriteString("ix:")
	}
	sb.WriteString(ix.Table)
	sb.WriteString("(")
	sb.WriteString(strings.Join(ix.Keys, ","))
	if len(ix.Suffix) > 0 {
		sb.WriteString(";")
		sb.WriteString(strings.Join(ix.Suffix, ","))
	}
	sb.WriteString(")")
	return sb.String()
}

func (ix *Index) String() string { return ix.ID() }

// Columns returns keys followed by suffix columns.
func (ix *Index) Columns() []string {
	out := make([]string, 0, len(ix.Keys)+len(ix.Suffix))
	out = append(out, ix.Keys...)
	return append(out, ix.Suffix...)
}

// HasColumn reports whether the index stores the named column.
func (ix *Index) HasColumn(col string) bool {
	for _, k := range ix.Keys {
		if strings.EqualFold(k, col) {
			return true
		}
	}
	for _, s := range ix.Suffix {
		if strings.EqualFold(s, col) {
			return true
		}
	}
	return false
}

// Covers reports whether the index stores every column in cols. A
// clustered index covers everything on its table by construction (callers
// should have included all table columns in its definition).
func (ix *Index) Covers(cols []string) bool {
	for _, c := range cols {
		if !ix.HasColumn(c) {
			return false
		}
	}
	return true
}

// KeyPrefixLen returns the length of the longest prefix of the index keys
// such that every prefix column appears in cols (order-insensitive match,
// as used when seeking with a set of sargable columns).
func (ix *Index) KeyPrefixLen(cols []string) int {
	n := 0
	for _, k := range ix.Keys {
		if !containsFold(cols, k) {
			break
		}
		n++
	}
	return n
}

// SharedKeyPrefixLen returns the length of the longest common prefix of
// this index's keys and other's keys (exact order match).
func (ix *Index) SharedKeyPrefixLen(other *Index) int {
	n := 0
	for n < len(ix.Keys) && n < len(other.Keys) && strings.EqualFold(ix.Keys[n], other.Keys[n]) {
		n++
	}
	return n
}

// Clone returns a deep copy with Required cleared (derived indexes are
// never constraint-enforcing). The id cache is deliberately not copied:
// callers clone precisely to mutate, and a stale cached identity would be
// silently wrong. Mutating call sites within this package re-seal the id
// before sharing the result.
func (ix *Index) Clone() *Index {
	return &Index{
		Table:     ix.Table,
		Keys:      append([]string(nil), ix.Keys...),
		Suffix:    append([]string(nil), ix.Suffix...),
		Clustered: ix.Clustered,
	}
}

// MergeIndexes returns the ordered merge I1,2 of §3.1.1:
//
//	I1,2 = (K1; (S1 ∪ K2 ∪ S2) − K1), or
//	I1,2 = (K2; (S1 ∪ S2) − K2)  when K1 is a prefix of K2.
//
// The merged index answers every request that I1 or I2 answers and can be
// sought wherever I1 can. Merging is defined only for indexes over the
// same table or view; nil is returned otherwise.
func MergeIndexes(i1, i2 *Index) *Index {
	if !strings.EqualFold(i1.Table, i2.Table) {
		return nil
	}
	if isKeyPrefix(i1.Keys, i2.Keys) {
		cols := unionCols(i1.Suffix, i2.Suffix)
		m := NewIndex(i1.Table, i2.Keys, cols, i1.Clustered || i2.Clustered)
		return m
	}
	cols := unionCols(i1.Suffix, unionCols(i2.Keys, i2.Suffix))
	return NewIndex(i1.Table, i1.Keys, cols, i1.Clustered || i2.Clustered)
}

// SplitIndexes returns the common index IC and residual indexes IR1, IR2
// of the split transformation in §3.1.1:
//
//	IC  = (K1 ∩ K2 ; S1 ∩ S2)  — key intersection in K1 order
//	IR1 = (K1 − KC ; columns of I1 not in IC)   when K1 ≠ KC
//	IR2 = (K2 − KC ; columns of I2 not in IC)   when K2 ≠ KC
//
// Split is undefined (returns nil common index) when the key intersection
// is empty or the indexes live on different tables. Residuals may be nil.
func SplitIndexes(i1, i2 *Index) (common, r1, r2 *Index) {
	if !strings.EqualFold(i1.Table, i2.Table) {
		return nil, nil, nil
	}
	kc := intersectOrdered(i1.Keys, i2.Keys)
	if len(kc) == 0 {
		return nil, nil, nil
	}
	sc := intersectOrdered(i1.Suffix, i2.Suffix)
	common = NewIndex(i1.Table, kc, sc, false)
	if len(kc) != len(i1.Keys) {
		rest := subtractCols(i1.Columns(), common.Columns())
		keys := subtractCols(i1.Keys, kc)
		r1 = NewIndex(i1.Table, keys, subtractCols(rest, keys), false)
	}
	if len(kc) != len(i2.Keys) {
		rest := subtractCols(i2.Columns(), common.Columns())
		keys := subtractCols(i2.Keys, kc)
		r2 = NewIndex(i2.Table, keys, subtractCols(rest, keys), false)
	}
	return common, r1, r2
}

// PrefixIndex returns IP = (K'; ∅) where K' is the first n key columns.
// Per §3.1.1, n may equal len(K) when the index has suffix columns (the
// prefix then drops only the suffix). Returns nil for invalid n or when
// the prefix would equal the original index.
func PrefixIndex(ix *Index, n int) *Index {
	if n <= 0 || n > len(ix.Keys) {
		return nil
	}
	if n == len(ix.Keys) && len(ix.Suffix) == 0 {
		return nil
	}
	return NewIndex(ix.Table, ix.Keys[:n], nil, false)
}

// PromoteToClustered returns a clustered version of the index. The caller
// must ensure the configuration has no other clustered index on the table.
func PromoteToClustered(ix *Index) *Index {
	if ix.Clustered {
		return nil
	}
	p := ix.Clone()
	p.Clustered = true
	p.id = p.buildID()
	return p
}

// --- column-sequence helpers (case-insensitive, order-preserving) ---

func containsFold(cols []string, c string) bool {
	for _, x := range cols {
		if strings.EqualFold(x, c) {
			return true
		}
	}
	return false
}

// unionCols returns a ∪ b keeping a's order then b's unseen elements.
func unionCols(a, b []string) []string {
	out := append([]string(nil), a...)
	for _, c := range b {
		if !containsFold(out, c) {
			out = append(out, c)
		}
	}
	return out
}

// subtractCols returns elements of a not present in b, in a's order.
func subtractCols(a, b []string) []string {
	var out []string
	for _, c := range a {
		if !containsFold(b, c) {
			out = append(out, c)
		}
	}
	return out
}

// intersectOrdered returns elements of a also present in b, in a's order.
func intersectOrdered(a, b []string) []string {
	var out []string
	for _, c := range a {
		if containsFold(b, c) {
			out = append(out, c)
		}
	}
	return out
}

func dedupKeepOrder(a []string) []string {
	var out []string
	for _, c := range a {
		if !containsFold(out, c) {
			out = append(out, c)
		}
	}
	return out
}

// isKeyPrefix reports whether a is a (possibly equal) ordered prefix of b.
func isKeyPrefix(a, b []string) bool {
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if !strings.EqualFold(a[i], b[i]) {
			return false
		}
	}
	return true
}

// FormatCols renders a column list for diagnostics.
func FormatCols(cols []string) string {
	return fmt.Sprintf("[%s]", strings.Join(cols, ","))
}

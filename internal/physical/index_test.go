package physical

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewIndexNormalizes(t *testing.T) {
	ix := NewIndex("t", []string{"a", "b", "a"}, []string{"b", "c", "c", "A"}, false)
	if len(ix.Keys) != 2 {
		t.Errorf("keys should dedup: %v", ix.Keys)
	}
	if len(ix.Suffix) != 1 || ix.Suffix[0] != "c" {
		t.Errorf("suffix should exclude keys and dedup: %v", ix.Suffix)
	}
}

func TestIndexIDStable(t *testing.T) {
	a := NewIndex("t", []string{"a", "b"}, []string{"c"}, false)
	b := NewIndex("t", []string{"a", "b"}, []string{"c"}, false)
	if a.ID() != b.ID() {
		t.Error("identical definitions must share an ID")
	}
	c := NewIndex("t", []string{"a", "b"}, []string{"c"}, true)
	if a.ID() == c.ID() {
		t.Error("clustered flag must distinguish IDs")
	}
}

// TestMergePaperExample reproduces the exact example of §3.1.1:
// merging I1 = ([a,b,c]; {d,e,f}) and I2 = ([c,d,g]; {e}) results in
// I1,2 = ([a,b,c]; {d,e,f,g}).
func TestMergePaperExample(t *testing.T) {
	i1 := NewIndex("t", []string{"a", "b", "c"}, []string{"d", "e", "f"}, false)
	i2 := NewIndex("t", []string{"c", "d", "g"}, []string{"e"}, false)
	m := MergeIndexes(i1, i2)
	if m == nil {
		t.Fatal("merge failed")
	}
	if strings.Join(m.Keys, ",") != "a,b,c" {
		t.Errorf("keys: %v", m.Keys)
	}
	if strings.Join(m.Suffix, ",") != "d,e,f,g" {
		t.Errorf("suffix: %v", m.Suffix)
	}
}

// TestMergePrefixCase: when K1 is a prefix of K2 the merge keeps K2 as
// the key sequence (the minor improvement in §3.1.1).
func TestMergePrefixCase(t *testing.T) {
	i1 := NewIndex("t", []string{"a", "b"}, []string{"x"}, false)
	i2 := NewIndex("t", []string{"a", "b", "c"}, []string{"y"}, false)
	m := MergeIndexes(i1, i2)
	if strings.Join(m.Keys, ",") != "a,b,c" {
		t.Errorf("keys: %v", m.Keys)
	}
	if strings.Join(m.Suffix, ",") != "x,y" {
		t.Errorf("suffix: %v", m.Suffix)
	}
}

func TestMergeDifferentTablesFails(t *testing.T) {
	i1 := NewIndex("t", []string{"a"}, nil, false)
	i2 := NewIndex("u", []string{"a"}, nil, false)
	if MergeIndexes(i1, i2) != nil {
		t.Error("cross-table merge must be nil")
	}
}

// Property: the merged index covers every column of both inputs and is
// seekable wherever I1 is (K1 is a prefix of the merged keys, or K1 is a
// prefix of K2 and the merged keys equal K2).
func TestMergeIndexesProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400, Values: func(vals []reflect.Value, r *rand.Rand) {
		vals[0] = reflect.ValueOf(randomIndex(r))
		vals[1] = reflect.ValueOf(randomIndex(r))
	}}
	if err := quick.Check(func(i1, i2 *Index) bool {
		m := MergeIndexes(i1, i2)
		if m == nil {
			return false
		}
		if !m.Covers(i1.Columns()) || !m.Covers(i2.Columns()) {
			return false
		}
		return isKeyPrefix(i1.Keys, m.Keys) || (isKeyPrefix(i1.Keys, i2.Keys) && isKeyPrefix(m.Keys, i2.Keys) && isKeyPrefix(i2.Keys, m.Keys))
	}, cfg); err != nil {
		t.Error(err)
	}
}

func randomIndex(r *rand.Rand) *Index {
	cols := []string{"a", "b", "c", "d", "e", "f", "g"}
	r.Shuffle(len(cols), func(i, j int) { cols[i], cols[j] = cols[j], cols[i] })
	nk := 1 + r.Intn(3)
	ns := r.Intn(3)
	return NewIndex("t", cols[:nk], cols[nk:nk+ns], false)
}

// TestSplitFormula checks the split definition on a concrete pair:
// IC = (K1∩K2 in K1 order; S1∩S2), residuals carry what is left.
func TestSplitFormula(t *testing.T) {
	i1 := NewIndex("t", []string{"a", "b", "c"}, []string{"d", "e", "f"}, false)
	i2 := NewIndex("t", []string{"c", "a"}, []string{"e"}, false)
	common, r1, r2 := SplitIndexes(i1, i2)
	if common == nil {
		t.Fatal("split failed")
	}
	if strings.Join(common.Keys, ",") != "a,c" {
		t.Errorf("common keys: %v", common.Keys)
	}
	if strings.Join(common.Suffix, ",") != "e" {
		t.Errorf("common suffix: %v", common.Suffix)
	}
	if r1 == nil || strings.Join(r1.Keys, ",") != "b" {
		t.Errorf("residual 1: %v", r1)
	}
	if strings.Join(r1.Suffix, ",") != "d,f" {
		t.Errorf("residual 1 suffix: %v", r1.Suffix)
	}
	// K2 ⊆ KC, so there is no second residual.
	if r2 != nil {
		t.Errorf("residual 2 should be nil: %v", r2)
	}
}

func TestSplitUndefinedWithoutCommonKeys(t *testing.T) {
	i1 := NewIndex("t", []string{"a"}, []string{"x"}, false)
	i2 := NewIndex("t", []string{"b"}, []string{"x"}, false)
	if c, _, _ := SplitIndexes(i1, i2); c != nil {
		t.Error("split without common key columns must be undefined")
	}
}

// Property: the split outputs cover every KEY column of both inputs (so
// index intersections can reconstruct each seek). Suffix columns may be
// dropped — the paper compensates with rid lookups over IC's result when
// a residual does not exist.
func TestSplitCoversKeysProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400, Values: func(vals []reflect.Value, r *rand.Rand) {
		vals[0] = reflect.ValueOf(randomIndex(r))
		vals[1] = reflect.ValueOf(randomIndex(r))
	}}
	if err := quick.Check(func(i1, i2 *Index) bool {
		common, r1, r2 := SplitIndexes(i1, i2)
		if common == nil {
			return len(intersectOrdered(i1.Keys, i2.Keys)) == 0
		}
		have := common.Columns()
		if r1 != nil {
			have = unionCols(have, r1.Columns())
		}
		if r2 != nil {
			have = unionCols(have, r2.Columns())
		}
		for _, c := range unionCols(i1.Keys, i2.Keys) {
			if !containsFold(have, c) {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestPrefixIndex(t *testing.T) {
	ix := NewIndex("t", []string{"a", "b"}, []string{"c"}, false)
	p1 := PrefixIndex(ix, 1)
	if p1 == nil || len(p1.Keys) != 1 || len(p1.Suffix) != 0 {
		t.Errorf("prefix(1): %v", p1)
	}
	// n == len(K) is allowed because the suffix is non-empty.
	p2 := PrefixIndex(ix, 2)
	if p2 == nil || len(p2.Suffix) != 0 {
		t.Errorf("prefix(2): %v", p2)
	}
	bare := NewIndex("t", []string{"a"}, nil, false)
	if PrefixIndex(bare, 1) != nil {
		t.Error("full prefix of a suffix-less index is the index itself")
	}
	if PrefixIndex(ix, 0) != nil || PrefixIndex(ix, 3) != nil {
		t.Error("out-of-range prefix lengths must be nil")
	}
}

func TestPromoteToClustered(t *testing.T) {
	ix := NewIndex("t", []string{"a"}, []string{"b"}, false)
	p := PromoteToClustered(ix)
	if p == nil || !p.Clustered {
		t.Fatal("promotion failed")
	}
	if PromoteToClustered(p) != nil {
		t.Error("promoting a clustered index must fail")
	}
	if ix.Clustered {
		t.Error("promotion must not mutate the input")
	}
}

func TestCoversAndPrefixLen(t *testing.T) {
	ix := NewIndex("t", []string{"a", "b"}, []string{"c"}, false)
	if !ix.Covers([]string{"A", "c"}) {
		t.Error("Covers should be case-insensitive")
	}
	if ix.Covers([]string{"d"}) {
		t.Error("missing column should not be covered")
	}
	if got := ix.KeyPrefixLen([]string{"b", "a"}); got != 2 {
		t.Errorf("KeyPrefixLen order-insensitive match: %d", got)
	}
	if got := ix.KeyPrefixLen([]string{"b"}); got != 0 {
		t.Errorf("prefix must start at the first key: %d", got)
	}
}

func TestSharedKeyPrefixLen(t *testing.T) {
	a := NewIndex("t", []string{"a", "b", "c"}, nil, false)
	b := NewIndex("t", []string{"a", "b", "x"}, nil, false)
	if got := a.SharedKeyPrefixLen(b); got != 2 {
		t.Errorf("shared prefix: %d", got)
	}
}

package physical

import (
	"repro/internal/sqlx"
)

// ViewMatch describes how a query block can be rewritten over a view,
// including the compensating operations the rewriting needs. The optimizer
// uses it to build and cost the rewritten plan.
type ViewMatch struct {
	View *View
	// ResidualJoins are query join predicates not enforced by the view;
	// they must be applied as filters over the view's rows.
	ResidualJoins []JoinPred
	// ResidualRanges are query range predicates stricter than (or absent
	// from) the view's; applied as filters.
	ResidualRanges []RangeCond
	// ResidualOthers are query "other" conjuncts the view does not apply.
	ResidualOthers []sqlx.Expr
	// NeedGroupBy indicates a compensating group-by (re-aggregation) must
	// run on top of the view scan.
	NeedGroupBy bool
	// ResidualFraction is the estimated fraction of view rows surviving
	// the residual predicates (filled in by the optimizer's cardinality
	// module; 1 when no residuals exist).
	ResidualFraction float64
}

// equivClasses is a union-find over column references, built from a set of
// equi-join predicates, implementing the paper's "modulo column
// equivalence" checks.
type equivClasses struct {
	parent map[sqlx.ColRef]sqlx.ColRef
}

func newEquivClasses(joins []JoinPred) *equivClasses {
	e := &equivClasses{parent: make(map[sqlx.ColRef]sqlx.ColRef)}
	for _, j := range joins {
		e.union(j.L, j.R)
	}
	return e
}

func (e *equivClasses) find(c sqlx.ColRef) sqlx.ColRef {
	p, ok := e.parent[c]
	if !ok || p == c {
		return c
	}
	root := e.find(p)
	e.parent[c] = root
	return root
}

func (e *equivClasses) union(a, b sqlx.ColRef) {
	ra, rb := e.find(a), e.find(b)
	if ra != rb {
		if rb.Less(ra) {
			ra, rb = rb, ra
		}
		e.parent[rb] = ra
	}
}

func (e *equivClasses) same(a, b sqlx.ColRef) bool { return e.find(a) == e.find(b) }

// MatchView applies the subsumption tests of §3.1.2 to decide whether
// query block q can be answered from view v. The query block is expressed
// in the same 6-tuple form (q.Cols lists every base column and aggregate
// the query requires from this table set — outputs, group-by columns, and
// columns referenced by predicates the view might not apply).
//
// The tests follow the paper: FQ = FV; OV's conjuncts included in OQ's
// (structural equality); remaining components checked with inclusion tests
// modulo column equivalence. Returns nil when the view does not match.
func MatchView(q, v *View) *ViewMatch {
	if !v.HasTableSet(q.Tables) {
		return nil
	}
	qEq := newEquivClasses(q.Joins)

	// Every view join must be implied by the query's joins.
	for _, j := range v.Joins {
		if !qEq.same(j.L, j.R) {
			return nil
		}
	}
	// Residual joins: query joins not implied by the view's joins.
	vEq := newEquivClasses(v.Joins)
	var residJoins []JoinPred
	for _, j := range q.Joins {
		if !vEq.same(j.L, j.R) {
			residJoins = append(residJoins, j)
			vEq.union(j.L, j.R) // transitively implied joins are not re-applied
		}
	}

	// Range subsumption: the view's interval on a column must contain the
	// query's interval on that column (or an equivalent one).
	qRange := func(col sqlx.ColRef) (Interval, bool) {
		for _, r := range q.Ranges {
			if r.Col == col || qEq.same(r.Col, col) {
				return r.Iv, true
			}
		}
		return Interval{}, false
	}
	for _, vr := range v.Ranges {
		qi, ok := qRange(vr.Col)
		if !ok || !vr.Iv.Contains(qi) {
			return nil
		}
	}
	// Residual ranges: query ranges stricter than the view's.
	vRange := func(col sqlx.ColRef) (Interval, bool) {
		for _, r := range v.Ranges {
			if r.Col == col || qEq.same(r.Col, col) {
				return r.Iv, true
			}
		}
		return Interval{}, false
	}
	var residRanges []RangeCond
	for _, qr := range q.Ranges {
		vi, ok := vRange(qr.Col)
		if !ok || vi != qr.Iv {
			residRanges = append(residRanges, qr)
		}
	}

	// Other predicates: every view conjunct must appear in the query.
	for _, o := range v.Others {
		if !containsExpr(q.Others, o) {
			return nil
		}
	}
	var residOthers []sqlx.Expr
	for _, o := range q.Others {
		if !containsExpr(v.Others, o) {
			residOthers = append(residOthers, o)
		}
	}

	m := &ViewMatch{
		View:             v,
		ResidualJoins:    residJoins,
		ResidualRanges:   residRanges,
		ResidualOthers:   residOthers,
		ResidualFraction: 1,
	}

	// availBase reports whether the view exposes base column col (directly
	// or via an equivalent column).
	availBase := func(col sqlx.ColRef) bool {
		if v.ColumnForSource(col) != nil {
			return true
		}
		for i := range v.Cols {
			if v.Cols[i].Agg == sqlx.AggNone && qEq.same(v.Cols[i].Source, col) {
				return true
			}
		}
		return false
	}

	// Residual predicate columns must be exposed by the view.
	for _, j := range residJoins {
		if !availBase(j.L) || !availBase(j.R) {
			return nil
		}
	}
	for _, r := range residRanges {
		if !availBase(r.Col) {
			return nil
		}
	}
	for _, o := range residOthers {
		for _, c := range o.Columns(nil) {
			if !availBase(c) {
				return nil
			}
		}
	}

	if len(v.GroupBy) == 0 {
		// Unaggregated view: it must expose every base column the query
		// needs; compensation re-applies predicates and any aggregation.
		for _, qc := range q.Cols {
			if qc.Agg != sqlx.AggNone {
				if qc.Source == (sqlx.ColRef{}) {
					continue // COUNT(*) needs no specific column
				}
				if !availBase(qc.Source) {
					return nil
				}
				continue
			}
			if !availBase(qc.Source) {
				return nil
			}
		}
		m.NeedGroupBy = len(q.GroupBy) > 0 || hasAggregate(q.Cols)
		return m
	}

	// Aggregated view. A pure SPJ query cannot be answered from grouped
	// rows; an aggregated query can, when its grouping is coarser and its
	// aggregates are derivable.
	if len(q.GroupBy) == 0 && !hasAggregate(q.Cols) {
		return nil
	}
	inViewGroups := func(col sqlx.ColRef) bool {
		for _, g := range v.GroupBy {
			if g == col || qEq.same(g, col) {
				return true
			}
		}
		return false
	}
	for _, g := range q.GroupBy {
		if !inViewGroups(g) || !availBase(g) {
			return nil
		}
	}
	sameGroups := len(q.GroupBy) == len(v.GroupBy)
	if sameGroups {
		for _, g := range v.GroupBy {
			found := false
			for _, qg := range q.GroupBy {
				if qg == g || qEq.same(qg, g) {
					found = true
					break
				}
			}
			if !found {
				sameGroups = false
				break
			}
		}
	}
	for _, qc := range q.Cols {
		switch qc.Agg {
		case sqlx.AggNone:
			if !availBase(qc.Source) {
				return nil
			}
		case sqlx.AggSum, sqlx.AggMin, sqlx.AggMax:
			if v.AggColumnFor(qc.Agg, qc.Source) == nil {
				return nil
			}
		case sqlx.AggCount:
			if v.AggColumnFor(sqlx.AggCount, qc.Source) == nil &&
				v.AggColumnFor(sqlx.AggCount, sqlx.ColRef{}) == nil {
				return nil
			}
		case sqlx.AggAvg:
			// AVG re-aggregates only from SUM and COUNT; an AVG column
			// suffices when no regrouping or filtering-within-group occurs.
			hasSumCount := v.AggColumnFor(sqlx.AggSum, qc.Source) != nil &&
				(v.AggColumnFor(sqlx.AggCount, sqlx.ColRef{}) != nil ||
					v.AggColumnFor(sqlx.AggCount, qc.Source) != nil)
			hasAvg := v.AggColumnFor(sqlx.AggAvg, qc.Source) != nil
			if !hasSumCount && !(hasAvg && sameGroups) {
				return nil
			}
		}
	}
	m.NeedGroupBy = !sameGroups
	return m
}

func hasAggregate(cols []ViewColumn) bool {
	for _, c := range cols {
		if c.Agg != sqlx.AggNone {
			return true
		}
	}
	return false
}

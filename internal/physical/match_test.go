package physical

import (
	"math"
	"testing"

	"repro/internal/sqlx"
)

// blockFixture builds a query block over {r,s} with a join, a range on
// r.a, and the given grouping.
func blockFixture(grouped bool, rangeHi float64) *View {
	q := &View{
		Tables: []string{"r", "s"},
		Joins:  []JoinPred{NewJoinPred(col("r", "x"), col("s", "y"))},
		Ranges: []RangeCond{{Col: col("r", "a"), Iv: Interval{Lo: math.Inf(-1), Hi: rangeHi}}},
		Cols: []ViewColumn{
			BaseViewColumn(col("r", "a"), 4),
			BaseViewColumn(col("s", "b"), 8),
		},
	}
	if grouped {
		q.GroupBy = []sqlx.ColRef{col("r", "a")}
		q.Cols = append(q.Cols, AggViewColumn(sqlx.AggSum, col("s", "b"), 8))
	}
	return q
}

func TestMatchExactView(t *testing.T) {
	q := blockFixture(false, 10)
	v := blockFixture(false, 10)
	v.Name = "v"
	m := MatchView(q, v)
	if m == nil {
		t.Fatal("identical definitions must match")
	}
	if len(m.ResidualJoins) != 0 || len(m.ResidualRanges) != 0 || m.NeedGroupBy {
		t.Errorf("exact match should need no compensation: %+v", m)
	}
}

func TestMatchWiderRangeNeedsFilter(t *testing.T) {
	q := blockFixture(false, 10)
	v := blockFixture(false, 20) // view keeps more rows
	v.Name = "v"
	m := MatchView(q, v)
	if m == nil {
		t.Fatal("wider view must match")
	}
	if len(m.ResidualRanges) != 1 {
		t.Errorf("expected one residual range, got %v", m.ResidualRanges)
	}
}

func TestMatchNarrowerRangeFails(t *testing.T) {
	q := blockFixture(false, 20)
	v := blockFixture(false, 10) // view drops rows the query needs
	v.Name = "v"
	if MatchView(q, v) != nil {
		t.Error("narrower view must not match")
	}
}

func TestMatchTableSetMustAgree(t *testing.T) {
	q := blockFixture(false, 10)
	v := blockFixture(false, 10)
	v.Tables = []string{"r"}
	if MatchView(q, v) != nil {
		t.Error("different FROM sets must not match")
	}
}

func TestMatchMissingColumnFails(t *testing.T) {
	q := blockFixture(false, 10)
	v := blockFixture(false, 10)
	v.Cols = v.Cols[:1] // drop s.b
	if MatchView(q, v) != nil {
		t.Error("a view missing needed output columns must not match")
	}
}

func TestMatchViewWithFewerJoinsAddsResiduals(t *testing.T) {
	q := blockFixture(false, 10)
	v := blockFixture(false, 10)
	v.Joins = nil // cross-product view
	v.Cols = append(v.Cols, BaseViewColumn(col("r", "x"), 4), BaseViewColumn(col("s", "y"), 4))
	m := MatchView(q, v)
	if m == nil {
		t.Fatal("less restrictive view must match")
	}
	if len(m.ResidualJoins) != 1 {
		t.Errorf("expected residual join, got %v", m.ResidualJoins)
	}
}

func TestMatchViewWithExtraJoinFails(t *testing.T) {
	q := blockFixture(false, 10)
	v := blockFixture(false, 10)
	v.Joins = append(v.Joins, NewJoinPred(col("r", "a"), col("s", "b")))
	if MatchView(q, v) != nil {
		t.Error("a view enforcing joins the query lacks must not match")
	}
}

func TestMatchGroupedQueryOnGroupedView(t *testing.T) {
	q := blockFixture(true, 10)
	v := blockFixture(true, 10)
	v.Name = "v"
	m := MatchView(q, v)
	if m == nil {
		t.Fatal("same grouping must match")
	}
	if m.NeedGroupBy {
		t.Error("identical grouping needs no re-aggregation")
	}
}

func TestMatchCoarserQueryOnFinerView(t *testing.T) {
	q := blockFixture(true, 10)
	v := blockFixture(true, 10)
	v.Name = "v"
	v.GroupBy = append(v.GroupBy, col("s", "b"))
	m := MatchView(q, v)
	if m == nil {
		t.Fatal("finer view must answer a coarser grouped query")
	}
	if !m.NeedGroupBy {
		t.Error("coarser query over finer view needs re-aggregation")
	}
}

func TestMatchFinerQueryOnCoarserViewFails(t *testing.T) {
	q := blockFixture(true, 10)
	q.GroupBy = append(q.GroupBy, col("s", "b"))
	v := blockFixture(true, 10)
	v.Name = "v"
	if MatchView(q, v) != nil {
		t.Error("a coarser view cannot answer a finer grouped query")
	}
}

func TestMatchSPJQueryOnGroupedViewFails(t *testing.T) {
	q := blockFixture(false, 10)
	v := blockFixture(true, 10)
	v.Name = "v"
	if MatchView(q, v) != nil {
		t.Error("aggregated views cannot answer raw-row queries")
	}
}

func TestMatchGroupedQueryOnSPJView(t *testing.T) {
	q := blockFixture(true, 10)
	v := blockFixture(false, 10)
	v.Name = "v"
	m := MatchView(q, v)
	if m == nil {
		t.Fatal("raw view must answer the grouped query with compensation")
	}
	if !m.NeedGroupBy {
		t.Error("compensating aggregation required")
	}
}

func TestMatchAvgDerivation(t *testing.T) {
	q := blockFixture(true, 10)
	q.Cols = append(q.Cols, AggViewColumn(sqlx.AggAvg, col("s", "b"), 8))
	// A view with only SUM cannot derive AVG…
	v := blockFixture(true, 10)
	v.Name = "v"
	if MatchView(q, v) != nil {
		t.Error("AVG requires SUM and COUNT (or AVG with identical groups)")
	}
	// …but SUM + COUNT(*) can.
	v2 := blockFixture(true, 10)
	v2.Name = "v2"
	v2.Cols = append(v2.Cols, AggViewColumn(sqlx.AggCount, sqlx.ColRef{}, 8))
	if MatchView(q, v2) == nil {
		t.Error("SUM + COUNT(*) should derive AVG")
	}
	// …and so can a direct AVG column when the grouping is identical.
	v3 := blockFixture(true, 10)
	v3.Name = "v3"
	v3.Cols = append(v3.Cols, AggViewColumn(sqlx.AggAvg, col("s", "b"), 8))
	if MatchView(q, v3) == nil {
		t.Error("identical-grouping AVG column should match")
	}
}

func TestMatchOtherPredicateSubsumption(t *testing.T) {
	pred := &sqlx.CmpExpr{Op: sqlx.CmpLT, L: col("r", "a"), R: col("r", "b")}
	q := blockFixture(false, 10)
	q.Others = []sqlx.Expr{pred}
	q.Cols = append(q.Cols, BaseViewColumn(col("r", "b"), 4))

	// View without the predicate: residual filter needed, and r.b must be
	// available (it is, via q's needed columns in the view).
	v := blockFixture(false, 10)
	v.Name = "v"
	v.Cols = append(v.Cols, BaseViewColumn(col("r", "b"), 4))
	m := MatchView(q, v)
	if m == nil || len(m.ResidualOthers) != 1 {
		t.Fatalf("expected residual other predicate: %+v", m)
	}

	// View with an other-predicate the query lacks must not match.
	v2 := blockFixture(false, 10)
	v2.Others = []sqlx.Expr{pred}
	q2 := blockFixture(false, 10)
	if MatchView(q2, v2) != nil {
		t.Error("view with extra other-predicate must not match")
	}
}

func TestMatchColumnEquivalence(t *testing.T) {
	// Query joins r.x = s.y; view has a range on s.y while the query's
	// range is on r.x — equivalent through the join.
	q := blockFixture(false, 10)
	q.Ranges = []RangeCond{{Col: col("r", "x"), Iv: Interval{Lo: math.Inf(-1), Hi: 10}}}
	q.Cols = append(q.Cols, BaseViewColumn(col("r", "x"), 4))
	v := blockFixture(false, 10)
	v.Name = "v"
	v.Ranges = []RangeCond{{Col: col("s", "y"), Iv: Interval{Lo: math.Inf(-1), Hi: 10}}}
	v.Cols = append(v.Cols, BaseViewColumn(col("s", "y"), 4))
	if MatchView(q, v) == nil {
		t.Error("ranges on join-equivalent columns should match")
	}
}

package physical

import (
	"strings"
	"sync"

	"repro/internal/storage"
)

// WidthResolver supplies row counts and column widths for base tables. The
// sizer layers the configuration's views on top of it, so indexes over
// views are sized from the views' estimated cardinalities (§3.3.1).
type WidthResolver interface {
	// TableRows returns the row count of a base table.
	TableRows(table string) (int64, bool)
	// ColWidth returns the average width in bytes of a base-table column.
	ColWidth(table, col string) (int, bool)
	// TableCols returns all column names of a base table.
	TableCols(table string) []string
}

// Sizer estimates the storage consumed by indexes, views, and whole
// configurations following the B-tree model of §3.3.1. It caches per-index
// sizes; the cache key includes the owning view's estimated cardinality so
// re-estimated views are re-sized. The cache is mutex-guarded: one sizer is
// shared by every forked optimizer in a parallel evaluation pool.
type Sizer struct {
	base WidthResolver

	mu    sync.Mutex
	cache map[string]int64
}

// NewSizer returns a sizer over the given base resolver.
func NewSizer(base WidthResolver) *Sizer {
	return &Sizer{base: base, cache: make(map[string]int64)}
}

// resolve returns rows, leaf entry width, and internal entry width for an
// index, consulting cfg for view-backed indexes.
func (s *Sizer) resolve(ix *Index, cfg *Configuration) (rows int64, leafW, intW int, ok bool) {
	colWidth := func(col string) (int, bool) { return s.base.ColWidth(ix.Table, col) }
	allCols := func() []string { return s.base.TableCols(ix.Table) }
	if cfg != nil {
		if v := cfg.View(ix.Table); v != nil {
			rows = v.EstRows
			colWidth = func(col string) (int, bool) {
				c := v.Column(col)
				if c == nil {
					return 0, false
				}
				return c.Width, true
			}
			allCols = func() []string { return v.AllColumnNames() }
			return s.widths(ix, rows, colWidth, allCols)
		}
	}
	r, found := s.base.TableRows(ix.Table)
	if !found {
		return 0, 0, 0, false
	}
	return s.widths(ix, r, colWidth, allCols)
}

func (s *Sizer) widths(ix *Index, rows int64, colWidth func(string) (int, bool), allCols func() []string) (int64, int, int, bool) {
	keyW := 0
	for _, k := range ix.Keys {
		w, ok := colWidth(k)
		if !ok {
			return 0, 0, 0, false
		}
		keyW += w
	}
	leafW := keyW
	if ix.Clustered {
		// Clustered leaves store full rows.
		leafW = 0
		for _, c := range allCols() {
			w, ok := colWidth(c)
			if !ok {
				return 0, 0, 0, false
			}
			leafW += w
		}
	} else {
		for _, sc := range ix.Suffix {
			w, ok := colWidth(sc)
			if !ok {
				return 0, 0, 0, false
			}
			leafW += w
		}
		leafW += storage.RidWidth // secondary leaves carry row locators
	}
	return rows, leafW, keyW, true
}

// IndexBytes returns the estimated size in bytes of one index within cfg
// (cfg supplies view cardinalities; it may be nil for base-table indexes).
func (s *Sizer) IndexBytes(ix *Index, cfg *Configuration) int64 {
	key := ix.ID()
	if cfg != nil {
		if v := cfg.View(ix.Table); v != nil {
			key += "@" + itoa64(v.EstRows)
		}
	}
	s.mu.Lock()
	sz, ok := s.cache[key]
	s.mu.Unlock()
	if ok {
		return sz
	}
	rows, leafW, intW, resolved := s.resolve(ix, cfg)
	if resolved {
		sz = storage.BTreeBytes(rows, leafW, intW)
	}
	s.mu.Lock()
	s.cache[key] = sz
	s.mu.Unlock()
	return sz
}

// IndexPages returns the total page count of one index.
func (s *Sizer) IndexPages(ix *Index, cfg *Configuration) int64 {
	return s.IndexBytes(ix, cfg) / storage.PageSize
}

// IndexLeafPages returns the leaf-level page count (what scans touch).
func (s *Sizer) IndexLeafPages(ix *Index, cfg *Configuration) int64 {
	rows, leafW, _, ok := s.resolve(ix, cfg)
	if !ok {
		return 1
	}
	return storage.BTreeLeafPages(rows, leafW)
}

// IndexHeight returns the number of B-tree levels above the leaves.
func (s *Sizer) IndexHeight(ix *Index, cfg *Configuration) int {
	rows, leafW, intW, ok := s.resolve(ix, cfg)
	if !ok {
		return 0
	}
	return storage.BTreeHeight(rows, leafW, intW)
}

// IndexRows returns the number of entries in the index.
func (s *Sizer) IndexRows(ix *Index, cfg *Configuration) int64 {
	rows, _, _, ok := s.resolve(ix, cfg)
	if !ok {
		return 0
	}
	return rows
}

// HeapPages returns the page count of the table stored as a heap (used
// when a table or view has no clustered index).
func (s *Sizer) HeapPages(table string, cfg *Configuration) int64 {
	if cfg != nil {
		if v := cfg.View(table); v != nil {
			return storage.HeapPages(v.EstRows, v.RowWidth())
		}
	}
	rows, ok := s.base.TableRows(table)
	if !ok {
		return 1
	}
	w := 0
	for _, c := range s.base.TableCols(table) {
		cw, _ := s.base.ColWidth(table, c)
		w += cw
	}
	return storage.HeapPages(rows, w)
}

// ConfigBytes returns the total size of every index in the configuration.
// Materialized views are counted through their indexes (a view's clustered
// index stores the view rows), matching §3.3.1.
func (s *Sizer) ConfigBytes(cfg *Configuration) int64 {
	// Iterate the index map directly: integer summation is order-
	// independent, and this accessor sits on the penalty-bound hot path
	// where the sorted Indexes() slice would be pure allocation overhead.
	var total int64
	for _, ix := range cfg.indexes {
		total += s.IndexBytes(ix, cfg)
	}
	return total
}

// DeltaBytes returns Size(c) − Size(other); positive when c is larger.
func (s *Sizer) DeltaBytes(c, other *Configuration) int64 {
	return s.ConfigBytes(c) - s.ConfigBytes(other)
}

func itoa64(v int64) string {
	// small allocation-free helper
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// BaseResolverFunc adapts plain functions to the WidthResolver interface.
type BaseResolverFunc struct {
	RowsFn  func(table string) (int64, bool)
	WidthFn func(table, col string) (int, bool)
	ColsFn  func(table string) []string
}

// TableRows implements WidthResolver.
func (f BaseResolverFunc) TableRows(table string) (int64, bool) { return f.RowsFn(table) }

// ColWidth implements WidthResolver.
func (f BaseResolverFunc) ColWidth(table, col string) (int, bool) { return f.WidthFn(table, col) }

// TableCols implements WidthResolver.
func (f BaseResolverFunc) TableCols(table string) []string { return f.ColsFn(table) }

// EqualFoldAny reports whether name equals any candidate, ignoring case.
func EqualFoldAny(name string, candidates ...string) bool {
	for _, c := range candidates {
		if strings.EqualFold(name, c) {
			return true
		}
	}
	return false
}

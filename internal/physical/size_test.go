package physical

import (
	"testing"

	"repro/internal/sqlx"
	"repro/internal/storage"
)

// testResolver is a fixed two-table schema for size tests.
type testResolver struct{}

func (testResolver) TableRows(table string) (int64, bool) {
	switch table {
	case "big":
		return 1_000_000, true
	case "small":
		return 1_000, true
	}
	return 0, false
}

func (testResolver) ColWidth(table, col string) (int, bool) {
	switch col {
	case "a", "b", "c":
		return 4, true
	case "pad":
		return 100, true
	}
	return 0, false
}

func (testResolver) TableCols(table string) []string {
	return []string{"a", "b", "c", "pad"}
}

func TestSizerIndexBytesScalesWithRows(t *testing.T) {
	s := NewSizer(testResolver{})
	big := s.IndexBytes(NewIndex("big", []string{"a"}, nil, false), nil)
	small := s.IndexBytes(NewIndex("small", []string{"a"}, nil, false), nil)
	if big <= small {
		t.Errorf("bigger table must yield a bigger index: %d <= %d", big, small)
	}
}

func TestSizerClusteredStoresFullRows(t *testing.T) {
	s := NewSizer(testResolver{})
	clustered := s.IndexBytes(NewIndex("big", []string{"a"}, nil, true), nil)
	secondary := s.IndexBytes(NewIndex("big", []string{"a"}, nil, false), nil)
	if clustered <= secondary {
		t.Errorf("clustered leaves carry full rows: %d <= %d", clustered, secondary)
	}
}

func TestSizerSuffixWidensIndex(t *testing.T) {
	s := NewSizer(testResolver{})
	narrow := s.IndexBytes(NewIndex("big", []string{"a"}, nil, false), nil)
	wide := s.IndexBytes(NewIndex("big", []string{"a"}, []string{"pad"}, false), nil)
	if wide <= narrow {
		t.Errorf("suffix columns must grow the index: %d <= %d", wide, narrow)
	}
}

func TestSizerUnknownTable(t *testing.T) {
	s := NewSizer(testResolver{})
	if got := s.IndexBytes(NewIndex("missing", []string{"a"}, nil, false), nil); got != 0 {
		t.Errorf("unknown table should size to 0, got %d", got)
	}
}

func TestSizerViewBackedIndex(t *testing.T) {
	s := NewSizer(testResolver{})
	cfg := NewConfiguration()
	v := &View{
		Name:    "v",
		Tables:  []string{"big"},
		Cols:    []ViewColumn{BaseViewColumn(sqlx.ColRef{Table: "big", Column: "a"}, 4)},
		EstRows: 50_000,
	}
	cfg.AddView(v)
	ix := NewIndex("v", []string{v.Cols[0].Name}, nil, false)
	cfg.AddIndex(ix)
	sz := s.IndexBytes(ix, cfg)
	if sz <= 0 {
		t.Fatal("view index should have a size")
	}
	// Re-estimating the view's cardinality must re-size the index.
	v.EstRows = 500_000
	sz2 := s.IndexBytes(ix, cfg)
	if sz2 <= sz {
		t.Errorf("size should track view cardinality: %d <= %d", sz2, sz)
	}
}

func TestConfigBytesSumsIndexes(t *testing.T) {
	s := NewSizer(testResolver{})
	cfg := NewConfiguration()
	i1 := NewIndex("big", []string{"a"}, nil, false)
	i2 := NewIndex("small", []string{"b"}, nil, false)
	cfg.AddIndex(i1)
	cfg.AddIndex(i2)
	want := s.IndexBytes(i1, cfg) + s.IndexBytes(i2, cfg)
	if got := s.ConfigBytes(cfg); got != want {
		t.Errorf("ConfigBytes = %d, want %d", got, want)
	}
}

func TestIndexPagesConsistentWithBytes(t *testing.T) {
	s := NewSizer(testResolver{})
	ix := NewIndex("big", []string{"a", "b"}, []string{"c"}, false)
	if s.IndexPages(ix, nil)*storage.PageSize != s.IndexBytes(ix, nil) {
		t.Error("pages and bytes disagree")
	}
	if s.IndexLeafPages(ix, nil) > s.IndexPages(ix, nil) {
		t.Error("leaf pages exceed total pages")
	}
}

func TestHeapPagesForViewAndTable(t *testing.T) {
	s := NewSizer(testResolver{})
	if s.HeapPages("big", nil) <= s.HeapPages("small", nil) {
		t.Error("bigger table needs more heap pages")
	}
	cfg := NewConfiguration()
	cfg.AddView(&View{Name: "v", Tables: []string{"big"}, Cols: []ViewColumn{BaseViewColumn(sqlx.ColRef{Table: "big", Column: "a"}, 4)}, EstRows: 10})
	if s.HeapPages("v", cfg) != 1 {
		t.Errorf("tiny view should fit one page: %d", s.HeapPages("v", cfg))
	}
}

package physical

import (
	"fmt"
	"strings"

	"repro/internal/sqlx"
)

// TransKind identifies one of the paper's relaxation transformations.
type TransKind int

// Transformation kinds (§3.1).
const (
	TransMergeIndexes TransKind = iota
	TransSplitIndexes
	TransPrefixIndex
	TransPromoteClustered
	TransRemoveIndex
	TransMergeViews
	TransRemoveView
)

func (k TransKind) String() string {
	switch k {
	case TransMergeIndexes:
		return "merge-indexes"
	case TransSplitIndexes:
		return "split-indexes"
	case TransPrefixIndex:
		return "prefix-index"
	case TransPromoteClustered:
		return "promote-clustered"
	case TransRemoveIndex:
		return "remove-index"
	case TransMergeViews:
		return "merge-views"
	case TransRemoveView:
		return "remove-view"
	default:
		return "unknown"
	}
}

// Transformation relaxes a configuration: it replaces one or two physical
// structures with smaller (generally less efficient) ones. Applying a
// transformation never mutates the source configuration.
type Transformation struct {
	Kind TransKind

	// Index transformations.
	I1, I2    *Index   // inputs (I2 nil for unary transformations)
	PrefixLen int      // for TransPrefixIndex
	NewIdx    []*Index // indexes the transformation adds

	// View transformations.
	V1, V2   *View    // inputs
	VM       *View    // merged view (EstRows estimated by the caller)
	Promoted []*Index // indexes promoted from V1/V2 onto VM

	// id caches the canonical identity. Enumerate seals it while still
	// single-threaded; the search then reads the ID every iteration for
	// penalty caching and dedup without rebuilding the string. Hand-built
	// transformations with an empty id recompute per call (no lazy store —
	// that would race once the transformation is shared across workers).
	id string
}

// ID is a stable identity for caching penalties across iterations.
func (t *Transformation) ID() string {
	if t.id != "" {
		return t.id
	}
	return t.buildID()
}

func (t *Transformation) buildID() string {
	var sb strings.Builder
	sb.WriteString(t.Kind.String())
	if t.I1 != nil {
		sb.WriteString("|" + t.I1.ID())
	}
	if t.I2 != nil {
		sb.WriteString("|" + t.I2.ID())
	}
	if t.Kind == TransPrefixIndex {
		fmt.Fprintf(&sb, "|n=%d", t.PrefixLen)
	}
	if t.V1 != nil {
		sb.WriteString("|" + t.V1.Signature())
	}
	if t.V2 != nil {
		sb.WriteString("|" + t.V2.Signature())
	}
	return sb.String()
}

func (t *Transformation) String() string {
	switch t.Kind {
	case TransMergeIndexes:
		return fmt.Sprintf("merge(%s, %s) -> %s", t.I1, t.I2, t.NewIdx[0])
	case TransSplitIndexes:
		return fmt.Sprintf("split(%s, %s) -> %d indexes", t.I1, t.I2, len(t.NewIdx))
	case TransPrefixIndex:
		return fmt.Sprintf("prefix(%s, %d) -> %s", t.I1, t.PrefixLen, t.NewIdx[0])
	case TransPromoteClustered:
		return fmt.Sprintf("promote(%s)", t.I1)
	case TransRemoveIndex:
		return fmt.Sprintf("remove(%s)", t.I1)
	case TransMergeViews:
		return fmt.Sprintf("merge-views(%s, %s) -> %s", t.V1.Name, t.V2.Name, t.VM.Name)
	case TransRemoveView:
		return fmt.Sprintf("remove-view(%s)", t.V1.Name)
	default:
		return "transformation"
	}
}

// RemovedIndexIDs returns the IDs of indexes the transformation removes
// from its source configuration (directly or by view-removal cascade,
// given that cascade is resolved at Apply time).
func (t *Transformation) RemovedIndexIDs() []string {
	var out []string
	if t.I1 != nil {
		out = append(out, t.I1.ID())
	}
	if t.I2 != nil {
		out = append(out, t.I2.ID())
	}
	return out
}

// RemovedViewNames returns the names of views the transformation removes.
func (t *Transformation) RemovedViewNames() []string {
	var out []string
	switch t.Kind {
	case TransMergeViews:
		out = append(out, t.V1.Name, t.V2.Name)
	case TransRemoveView:
		out = append(out, t.V1.Name)
	}
	return out
}

// Apply produces the relaxed configuration. For view transformations the
// affected views' indexes cascade per §3.1.2.
func (t *Transformation) Apply(c *Configuration) *Configuration {
	n := c.Clone()
	switch t.Kind {
	case TransMergeIndexes, TransSplitIndexes, TransPrefixIndex:
		n.RemoveIndex(t.I1.ID())
		if t.I2 != nil {
			n.RemoveIndex(t.I2.ID())
		}
		for _, ix := range t.NewIdx {
			n.AddIndex(ix)
		}
	case TransPromoteClustered:
		n.RemoveIndex(t.I1.ID())
		for _, ix := range t.NewIdx {
			n.AddIndex(ix)
		}
	case TransRemoveIndex:
		n.RemoveIndex(t.I1.ID())
	case TransMergeViews:
		n.RemoveView(t.V1.Name)
		n.RemoveView(t.V2.Name)
		vm := n.AddView(t.VM)
		for _, ix := range t.Promoted {
			// Re-target in case signature dedup picked an existing name.
			if !strings.EqualFold(ix.Table, vm.Name) {
				ix = ix.Clone()
				ix.Table = vm.Name
				ix.id = ix.buildID()
			}
			n.AddIndex(ix)
		}
	case TransRemoveView:
		n.RemoveView(t.V1.Name)
	}
	return n
}

// EnumerateOptions tunes transformation enumeration.
type EnumerateOptions struct {
	// WidthOf supplies base-column widths for view merging; required when
	// the configuration contains views.
	WidthOf func(sqlx.ColRef) int
	// NoViews suppresses view transformations (index-only tuning).
	NoViews bool
	// HeapTables lists base tables stored as heaps (promotion to
	// clustered applies only there, since clustered-PK tables always
	// carry a required clustered index).
	HeapTables map[string]bool
}

// Enumerate generates every transformation applicable to c, per §3.1:
// index merges (both orders), splits, prefixes, promotions, removals, view
// merges, and view removals. Required (constraint) indexes are untouchable.
// The result is deterministic: inputs are drawn from sorted accessors.
func Enumerate(c *Configuration, opts EnumerateOptions) []*Transformation {
	out := enumerate(c, opts)
	// Seal the identity strings while enumeration is still single-threaded;
	// after this the transformations may be shared read-only across workers.
	for _, t := range out {
		t.id = t.buildID()
	}
	return out
}

func enumerate(c *Configuration, opts EnumerateOptions) []*Transformation {
	var out []*Transformation
	indexes := c.Indexes()

	// Group indexes by table for pairwise transformations.
	byTable := map[string][]*Index{}
	for _, ix := range indexes {
		key := strings.ToLower(ix.Table)
		byTable[key] = append(byTable[key], ix)
	}
	tables := make([]string, 0, len(byTable))
	for t := range byTable {
		tables = append(tables, t)
	}
	sortStrings(tables)

	for _, t := range tables {
		group := byTable[t]
		for i, i1 := range group {
			if i1.Required {
				continue
			}
			// Unary: prefixes.
			if !i1.Clustered {
				for n := 1; n <= len(i1.Keys); n++ {
					if p := PrefixIndex(i1, n); p != nil {
						out = append(out, &Transformation{Kind: TransPrefixIndex, I1: i1, PrefixLen: n, NewIdx: []*Index{p}})
					}
				}
			}
			// Unary: promotion to clustered (heap tables and views only).
			promotable := c.View(i1.Table) != nil || (opts.HeapTables != nil && opts.HeapTables[strings.ToLower(i1.Table)])
			if !i1.Clustered && promotable && c.ClusteredOn(i1.Table) == nil {
				if p := PromoteToClustered(i1); p != nil {
					out = append(out, &Transformation{Kind: TransPromoteClustered, I1: i1, NewIdx: []*Index{p}})
				}
			}
			// Unary: removal.
			out = append(out, &Transformation{Kind: TransRemoveIndex, I1: i1})

			// Binary: merges and splits with every later index.
			for _, i2 := range group[i+1:] {
				if i2.Required || i1.Clustered || i2.Clustered {
					continue
				}
				addMerge(&out, i1, i2)
				addMerge(&out, i2, i1)
				if common, r1, r2 := SplitIndexes(i1, i2); common != nil {
					nw := []*Index{common}
					if r1 != nil {
						nw = append(nw, r1)
					}
					if r2 != nil {
						nw = append(nw, r2)
					}
					out = append(out, &Transformation{Kind: TransSplitIndexes, I1: i1, I2: i2, NewIdx: nw})
				}
			}
		}
	}

	if opts.NoViews {
		return out
	}
	views := c.Views()
	for i, v1 := range views {
		out = append(out, &Transformation{Kind: TransRemoveView, V1: v1})
		for _, v2 := range views[i+1:] {
			if opts.WidthOf == nil {
				continue
			}
			vm := MergeViews(v1, v2, opts.WidthOf)
			if vm == nil {
				continue
			}
			tr := &Transformation{Kind: TransMergeViews, V1: v1, V2: v2, VM: vm}
			for _, ix := range c.IndexesOn(v1.Name) {
				if p := PromoteIndexToView(ix, v1, vm); p != nil {
					tr.Promoted = append(tr.Promoted, p)
				}
			}
			for _, ix := range c.IndexesOn(v2.Name) {
				if p := PromoteIndexToView(ix, v2, vm); p != nil {
					tr.Promoted = append(tr.Promoted, p)
				}
			}
			// A materialized view needs a clustered index; ensure one
			// survives promotion.
			hasClustered := false
			for _, p := range tr.Promoted {
				if p.Clustered {
					hasClustered = true
					break
				}
			}
			if !hasClustered {
				keys := vm.AllColumnNames()
				if len(keys) > 0 {
					tr.Promoted = append(tr.Promoted, NewIndex(vm.Name, keys[:1], keys[1:], true))
				}
			}
			out = append(out, tr)
		}
	}
	return out
}

func addMerge(out *[]*Transformation, i1, i2 *Index) {
	// A merge whose result equals one of its inputs still removes the
	// other index, so it is kept; it relaxes differently from plain
	// removal because the survivor is recorded as replacing both.
	if m := MergeIndexes(i1, i2); m != nil {
		*out = append(*out, &Transformation{Kind: TransMergeIndexes, I1: i1, I2: i2, NewIdx: []*Index{m}})
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

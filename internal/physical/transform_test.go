package physical

import (
	"testing"

	"repro/internal/sqlx"
)

func enumCfg() *Configuration {
	c := NewConfiguration()
	req := NewIndex("t", []string{"id"}, []string{"a", "b", "c"}, true)
	req.Required = true
	c.AddIndex(req)
	c.AddIndex(NewIndex("t", []string{"a", "b"}, []string{"c"}, false))
	c.AddIndex(NewIndex("t", []string{"a", "c"}, nil, false))
	c.AddIndex(NewIndex("u", []string{"x"}, []string{"y"}, false))
	return c
}

func TestEnumerateKinds(t *testing.T) {
	trs := Enumerate(enumCfg(), EnumerateOptions{NoViews: true})
	kinds := map[TransKind]int{}
	for _, tr := range trs {
		kinds[tr.Kind]++
	}
	if kinds[TransRemoveIndex] != 3 {
		t.Errorf("removals: %d (required index must be excluded)", kinds[TransRemoveIndex])
	}
	if kinds[TransMergeIndexes] != 2 {
		t.Errorf("merges: %d (one same-table pair, both orders)", kinds[TransMergeIndexes])
	}
	if kinds[TransSplitIndexes] != 1 {
		t.Errorf("splits: %d", kinds[TransSplitIndexes])
	}
	if kinds[TransPrefixIndex] == 0 {
		t.Error("no prefixes enumerated")
	}
	if kinds[TransPromoteClustered] != 0 {
		t.Error("promotion requires a heap table")
	}
}

func TestEnumeratePromotionOnHeaps(t *testing.T) {
	c := NewConfiguration()
	pk := NewIndex("h", []string{"id"}, nil, false)
	pk.Required = true
	c.AddIndex(pk)
	c.AddIndex(NewIndex("h", []string{"a"}, nil, false))
	trs := Enumerate(c, EnumerateOptions{NoViews: true, HeapTables: map[string]bool{"h": true}})
	found := false
	for _, tr := range trs {
		if tr.Kind == TransPromoteClustered {
			found = true
			if tr.I1.Required {
				t.Error("required index must not be promoted")
			}
		}
	}
	if !found {
		t.Error("expected a promotion transformation on the heap table")
	}
}

func TestApplyMerge(t *testing.T) {
	c := enumCfg()
	var merge *Transformation
	for _, tr := range Enumerate(c, EnumerateOptions{NoViews: true}) {
		if tr.Kind == TransMergeIndexes {
			merge = tr
			break
		}
	}
	if merge == nil {
		t.Fatal("no merge found")
	}
	after := merge.Apply(c)
	mergedID := merge.NewIdx[0].ID()
	// Inputs disappear unless the merge result coincides with one of them
	// (then that input survives as the merged index).
	for _, in := range []*Index{merge.I1, merge.I2} {
		if in.ID() != mergedID && after.HasIndex(in.ID()) {
			t.Errorf("input %s should be removed", in.ID())
		}
	}
	if !after.HasIndex(mergedID) {
		t.Error("merged index missing")
	}
	// Source configuration untouched.
	if !c.HasIndex(merge.I1.ID()) {
		t.Error("Apply mutated the source configuration")
	}
}

func TestApplyNeverRemovesRequired(t *testing.T) {
	c := enumCfg()
	var reqID string
	for _, ix := range c.Indexes() {
		if ix.Required {
			reqID = ix.ID()
		}
	}
	for _, tr := range Enumerate(c, EnumerateOptions{NoViews: true}) {
		after := tr.Apply(c)
		if !after.HasIndex(reqID) {
			t.Fatalf("transformation %s removed a required index", tr)
		}
	}
}

func TestTransformationIDsUnique(t *testing.T) {
	trs := Enumerate(enumCfg(), EnumerateOptions{NoViews: true})
	seen := map[string]bool{}
	for _, tr := range trs {
		id := tr.ID()
		if seen[id] {
			t.Errorf("duplicate transformation ID %q", id)
		}
		seen[id] = true
	}
}

func TestEnumerateViewTransformations(t *testing.T) {
	c := NewConfiguration()
	mk := func(name string, hi float64) *View {
		v := &View{
			Name:   name,
			Tables: []string{"r"},
			Ranges: []RangeCond{{Col: sqlx.ColRef{Table: "r", Column: "a"}, Iv: Interval{Lo: 0, LoIncl: true, Hi: hi}}},
			Cols:   []ViewColumn{BaseViewColumn(sqlx.ColRef{Table: "r", Column: "a"}, 4)},
		}
		return v
	}
	v1 := c.AddView(mk("v1", 10))
	v2 := c.AddView(mk("v2", 20))
	c.AddIndex(NewIndex(v1.Name, []string{v1.Cols[0].Name}, nil, true))
	c.AddIndex(NewIndex(v2.Name, []string{v2.Cols[0].Name}, nil, true))

	trs := Enumerate(c, EnumerateOptions{WidthOf: func(sqlx.ColRef) int { return 8 }})
	var removes, merges int
	for _, tr := range trs {
		switch tr.Kind {
		case TransRemoveView:
			removes++
		case TransMergeViews:
			merges++
			if tr.VM == nil {
				t.Error("merge without result view")
			}
			clustered := false
			for _, p := range tr.Promoted {
				if p.Clustered {
					clustered = true
				}
			}
			if !clustered {
				t.Error("merged view must keep a clustered index")
			}
			after := tr.Apply(c)
			if after.View(v1.Name) != nil || after.View(v2.Name) != nil {
				t.Error("merged inputs should be gone")
			}
			if after.View(tr.VM.Name) == nil {
				t.Error("merged view missing after apply")
			}
			if len(after.IndexesOn(tr.VM.Name)) == 0 {
				t.Error("merged view has no indexes after apply")
			}
		}
	}
	if removes != 2 || merges != 1 {
		t.Errorf("view transformations: %d removes, %d merges", removes, merges)
	}
}

func TestRemoveViewCascadesInApply(t *testing.T) {
	c := NewConfiguration()
	v := c.AddView(&View{Name: "v", Tables: []string{"r"}, Cols: []ViewColumn{BaseViewColumn(sqlx.ColRef{Table: "r", Column: "a"}, 4)}})
	c.AddIndex(NewIndex(v.Name, []string{v.Cols[0].Name}, nil, true))
	tr := &Transformation{Kind: TransRemoveView, V1: v}
	after := tr.Apply(c)
	if after.View("v") != nil || len(after.IndexesOn("v")) != 0 {
		t.Error("view removal must cascade")
	}
}

package physical

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/sqlx"
)

// JoinPred is an equi-join predicate between two base-table columns,
// stored in canonical order (L < R).
type JoinPred struct {
	L, R sqlx.ColRef
}

// NewJoinPred canonicalizes the operand order.
func NewJoinPred(a, b sqlx.ColRef) JoinPred {
	if b.Less(a) {
		a, b = b, a
	}
	return JoinPred{L: a, R: b}
}

func (j JoinPred) String() string { return j.L.String() + " = " + j.R.String() }

// Interval is a (possibly unbounded) range of values for a single column.
// Numeric intervals use Lo/Hi with ±Inf for missing bounds; string-equality
// predicates are represented as string points.
type Interval struct {
	Lo, Hi         float64
	LoIncl, HiIncl bool
	IsString       bool
	StrVal         string
}

// FullInterval is the unbounded interval.
func FullInterval() Interval {
	return Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}
}

// PointInterval returns the degenerate interval [v, v].
func PointInterval(v float64) Interval {
	return Interval{Lo: v, Hi: v, LoIncl: true, HiIncl: true}
}

// StringPoint returns a string-equality interval.
func StringPoint(s string) Interval {
	return Interval{IsString: true, StrVal: s, LoIncl: true, HiIncl: true}
}

// Unbounded reports whether the interval imposes no restriction.
func (iv Interval) Unbounded() bool {
	return !iv.IsString && math.IsInf(iv.Lo, -1) && math.IsInf(iv.Hi, 1)
}

// IsPoint reports whether the interval is a single value.
func (iv Interval) IsPoint() bool {
	return iv.IsString || (iv.Lo == iv.Hi && iv.LoIncl && iv.HiIncl)
}

// Contains reports whether iv contains every value of other.
func (iv Interval) Contains(other Interval) bool {
	if iv.IsString || other.IsString {
		if iv.IsString && other.IsString {
			return iv.StrVal == other.StrVal
		}
		// A numeric unbounded interval contains any string point (it
		// arises when a range predicate was dropped entirely).
		return iv.Unbounded()
	}
	loOK := math.IsInf(iv.Lo, -1) || iv.Lo < other.Lo ||
		(iv.Lo == other.Lo && (iv.LoIncl || !other.LoIncl))
	hiOK := math.IsInf(iv.Hi, 1) || iv.Hi > other.Hi ||
		(iv.Hi == other.Hi && (iv.HiIncl || !other.HiIncl))
	return loOK && hiOK
}

// Hull returns the smallest interval containing both inputs. Hulls
// involving distinct string points are unbounded (the predicate must be
// dropped from a merged view).
func (iv Interval) Hull(other Interval) Interval {
	if iv.IsString || other.IsString {
		if iv.IsString && other.IsString && iv.StrVal == other.StrVal {
			return iv
		}
		return FullInterval()
	}
	out := Interval{}
	if iv.Lo < other.Lo {
		out.Lo, out.LoIncl = iv.Lo, iv.LoIncl
	} else if other.Lo < iv.Lo {
		out.Lo, out.LoIncl = other.Lo, other.LoIncl
	} else {
		out.Lo, out.LoIncl = iv.Lo, iv.LoIncl || other.LoIncl
	}
	if iv.Hi > other.Hi {
		out.Hi, out.HiIncl = iv.Hi, iv.HiIncl
	} else if other.Hi > iv.Hi {
		out.Hi, out.HiIncl = other.Hi, other.HiIncl
	} else {
		out.Hi, out.HiIncl = iv.Hi, iv.HiIncl || other.HiIncl
	}
	return out
}

func (iv Interval) String() string {
	if iv.IsString {
		return fmt.Sprintf("= '%s'", iv.StrVal)
	}
	lo, hi := "(", ")"
	if iv.LoIncl {
		lo = "["
	}
	if iv.HiIncl {
		hi = "]"
	}
	return fmt.Sprintf("%s%g,%g%s", lo, iv.Lo, iv.Hi, hi)
}

// RangeCond restricts one column to an interval.
type RangeCond struct {
	Col sqlx.ColRef
	Iv  Interval
}

func (r RangeCond) String() string { return r.Col.String() + " " + r.Iv.String() }

// ViewColumn is one output column of a view: either a base-table column or
// an aggregate over one. Name is the view-local column name, derived
// deterministically from the source so equal sources map to equal names
// across views (which makes index promotion during view merging a rename).
type ViewColumn struct {
	Name   string
	Agg    sqlx.AggFunc // AggNone for plain columns
	Source sqlx.ColRef  // zero for COUNT(*)
	Width  int          // average stored width in bytes
}

// BaseViewColumn builds a plain column entry.
func BaseViewColumn(src sqlx.ColRef, width int) ViewColumn {
	return ViewColumn{Name: viewColName(sqlx.AggNone, src), Source: src, Width: width}
}

// AggViewColumn builds an aggregate column entry.
func AggViewColumn(agg sqlx.AggFunc, src sqlx.ColRef, width int) ViewColumn {
	return ViewColumn{Name: viewColName(agg, src), Agg: agg, Source: src, Width: width}
}

func viewColName(agg sqlx.AggFunc, src sqlx.ColRef) string {
	base := src.Table + "_" + src.Column
	if src == (sqlx.ColRef{}) {
		base = "star"
	}
	if agg == sqlx.AggNone {
		return base
	}
	return strings.ToLower(agg.String()) + "_" + base
}

func (vc ViewColumn) String() string {
	if vc.Agg == sqlx.AggNone {
		return vc.Source.String()
	}
	if vc.Source == (sqlx.ColRef{}) {
		return vc.Agg.String() + "(*)"
	}
	return fmt.Sprintf("%s(%s)", vc.Agg, vc.Source)
}

// View is the 6-tuple V = (S, F, J, R, O, G) of §3.1.2. A view becomes a
// materialized view when a clustered index over it appears in a
// configuration. EstRows is the optimizer-estimated cardinality
// (§3.3.1: view sizes use the optimizer's cardinality module).
type View struct {
	Name    string
	Cols    []ViewColumn // S
	Tables  []string     // F, sorted
	Joins   []JoinPred   // J
	Ranges  []RangeCond  // R
	Others  []sqlx.Expr  // O, conjuncts
	GroupBy []sqlx.ColRef
	EstRows int64
}

// Signature returns the canonical identity of the view definition. Two
// views with equal signatures are the same physical structure.
func (v *View) Signature() string {
	var sb strings.Builder
	sb.WriteString("view{S:")
	cols := make([]string, len(v.Cols))
	for i, c := range v.Cols {
		cols[i] = c.Name
	}
	sort.Strings(cols)
	sb.WriteString(strings.Join(cols, ","))
	sb.WriteString(" F:")
	sb.WriteString(strings.Join(v.Tables, ","))
	sb.WriteString(" J:")
	js := make([]string, len(v.Joins))
	for i, j := range v.Joins {
		js[i] = j.String()
	}
	sort.Strings(js)
	sb.WriteString(strings.Join(js, " AND "))
	sb.WriteString(" R:")
	rs := make([]string, len(v.Ranges))
	for i, r := range v.Ranges {
		rs[i] = r.String()
	}
	sort.Strings(rs)
	sb.WriteString(strings.Join(rs, " AND "))
	sb.WriteString(" O:")
	os := make([]string, len(v.Others))
	for i, o := range v.Others {
		os[i] = o.String()
	}
	sort.Strings(os)
	sb.WriteString(strings.Join(os, " AND "))
	sb.WriteString(" G:")
	gs := make([]string, len(v.GroupBy))
	for i, g := range v.GroupBy {
		gs[i] = g.String()
	}
	sort.Strings(gs)
	sb.WriteString(strings.Join(gs, ","))
	sb.WriteString("}")
	return sb.String()
}

// SQL renders the view definition as its SELECT statement.
func (v *View) SQL() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, c := range v.Cols {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.String())
		sb.WriteString(" AS ")
		sb.WriteString(c.Name)
	}
	sb.WriteString(" FROM ")
	sb.WriteString(strings.Join(v.Tables, ", "))
	var preds []string
	for _, j := range v.Joins {
		preds = append(preds, j.String())
	}
	for _, r := range v.Ranges {
		preds = append(preds, rangeSQL(r))
	}
	for _, o := range v.Others {
		preds = append(preds, o.String())
	}
	if len(preds) > 0 {
		sb.WriteString(" WHERE ")
		sb.WriteString(strings.Join(preds, " AND "))
	}
	if len(v.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		gs := make([]string, len(v.GroupBy))
		for i, g := range v.GroupBy {
			gs[i] = g.String()
		}
		sb.WriteString(strings.Join(gs, ", "))
	}
	return sb.String()
}

func rangeSQL(r RangeCond) string {
	iv := r.Iv
	if iv.IsString {
		return fmt.Sprintf("%s = '%s'", r.Col, iv.StrVal)
	}
	if iv.IsPoint() {
		return fmt.Sprintf("%s = %g", r.Col, iv.Lo)
	}
	var parts []string
	if !math.IsInf(iv.Lo, -1) {
		op := ">"
		if iv.LoIncl {
			op = ">="
		}
		parts = append(parts, fmt.Sprintf("%s %s %g", r.Col, op, iv.Lo))
	}
	if !math.IsInf(iv.Hi, 1) {
		op := "<"
		if iv.HiIncl {
			op = "<="
		}
		parts = append(parts, fmt.Sprintf("%s %s %g", r.Col, op, iv.Hi))
	}
	if len(parts) == 0 {
		return "1 = 1"
	}
	return strings.Join(parts, " AND ")
}

// RowWidth returns the average width in bytes of one view row.
func (v *View) RowWidth() int {
	w := 0
	for _, c := range v.Cols {
		w += c.Width
	}
	if w == 0 {
		w = 8
	}
	return w
}

// Column returns the named view column, or nil.
func (v *View) Column(name string) *ViewColumn {
	for i := range v.Cols {
		if strings.EqualFold(v.Cols[i].Name, name) {
			return &v.Cols[i]
		}
	}
	return nil
}

// ColumnForSource returns the view column carrying the given base column
// (AggNone entry), or nil.
func (v *View) ColumnForSource(src sqlx.ColRef) *ViewColumn {
	for i := range v.Cols {
		if v.Cols[i].Agg == sqlx.AggNone && v.Cols[i].Source == src {
			return &v.Cols[i]
		}
	}
	return nil
}

// AggColumnFor returns the view column carrying agg(src), or nil.
func (v *View) AggColumnFor(agg sqlx.AggFunc, src sqlx.ColRef) *ViewColumn {
	for i := range v.Cols {
		if v.Cols[i].Agg == agg && v.Cols[i].Source == src {
			return &v.Cols[i]
		}
	}
	return nil
}

// HasTableSet reports whether the view's FROM set equals tables.
func (v *View) HasTableSet(tables []string) bool {
	if len(tables) != len(v.Tables) {
		return false
	}
	sorted := append([]string(nil), tables...)
	sort.Strings(sorted)
	for i := range sorted {
		if !strings.EqualFold(sorted[i], v.Tables[i]) {
			return false
		}
	}
	return true
}

// AllColumnNames returns the view-local names of all output columns.
func (v *View) AllColumnNames() []string {
	out := make([]string, len(v.Cols))
	for i, c := range v.Cols {
		out[i] = c.Name
	}
	return out
}

// Clone returns a deep copy of the view definition.
func (v *View) Clone() *View {
	nv := &View{
		Name:    v.Name,
		Cols:    append([]ViewColumn(nil), v.Cols...),
		Tables:  append([]string(nil), v.Tables...),
		Joins:   append([]JoinPred(nil), v.Joins...),
		Ranges:  append([]RangeCond(nil), v.Ranges...),
		Others:  append([]sqlx.Expr(nil), v.Others...),
		GroupBy: append([]sqlx.ColRef(nil), v.GroupBy...),
		EstRows: v.EstRows,
	}
	return nv
}

package physical

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sqlx"
)

func col(t, c string) sqlx.ColRef { return sqlx.ColRef{Table: t, Column: c} }

func TestIntervalBasics(t *testing.T) {
	full := FullInterval()
	if !full.Unbounded() {
		t.Error("full interval should be unbounded")
	}
	p := PointInterval(5)
	if !p.IsPoint() || p.Unbounded() {
		t.Error("point interval misclassified")
	}
	s := StringPoint("x")
	if !s.IsPoint() || !s.IsString {
		t.Error("string point misclassified")
	}
}

func TestIntervalContains(t *testing.T) {
	outer := Interval{Lo: 0, Hi: 10, LoIncl: true, HiIncl: true}
	inner := Interval{Lo: 2, Hi: 8, LoIncl: true, HiIncl: false}
	if !outer.Contains(inner) || inner.Contains(outer) {
		t.Error("containment wrong")
	}
	// Boundary inclusivity matters.
	open := Interval{Lo: 0, Hi: 10, LoIncl: false, HiIncl: true}
	closed := Interval{Lo: 0, Hi: 10, LoIncl: true, HiIncl: true}
	if open.Contains(closed) {
		t.Error("open interval cannot contain its closed version")
	}
	if !closed.Contains(open) {
		t.Error("closed interval contains its open version")
	}
}

func randomInterval(r *rand.Rand) Interval {
	if r.Intn(6) == 0 {
		return StringPoint(string(rune('a' + r.Intn(3))))
	}
	lo := math.Inf(-1)
	hi := math.Inf(1)
	if r.Intn(3) > 0 {
		lo = float64(r.Intn(100))
	}
	if r.Intn(3) > 0 {
		hi = lo + float64(r.Intn(100))
		if math.IsInf(lo, -1) {
			hi = float64(r.Intn(100))
		}
	}
	return Interval{Lo: lo, Hi: hi, LoIncl: r.Intn(2) == 0, HiIncl: r.Intn(2) == 0}
}

// Property: the hull of two intervals contains both inputs.
func TestIntervalHullContainsInputs(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Values: func(vals []reflect.Value, r *rand.Rand) {
		vals[0] = reflect.ValueOf(randomInterval(r))
		vals[1] = reflect.ValueOf(randomInterval(r))
	}}
	if err := quick.Check(func(a, b Interval) bool {
		h := a.Hull(b)
		return h.Contains(a) && h.Contains(b)
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestHullUnboundedElimination reproduces the paper's example: merging
// R.a < 10 with R.a > 5 yields an unbounded hull, which view merging must
// eliminate.
func TestHullUnboundedElimination(t *testing.T) {
	lt10 := Interval{Lo: math.Inf(-1), Hi: 10}
	gt5 := Interval{Lo: 5, Hi: math.Inf(1)}
	if !lt10.Hull(gt5).Unbounded() {
		t.Error("hull of a<10 and a>5 should be unbounded")
	}
}

func simpleView(name string, grouped bool) *View {
	v := &View{
		Name:   name,
		Tables: []string{"r", "s"},
		Joins:  []JoinPred{NewJoinPred(col("r", "x"), col("s", "y"))},
		Ranges: []RangeCond{{Col: col("r", "a"), Iv: Interval{Lo: math.Inf(-1), Hi: 10}}},
		Cols: []ViewColumn{
			BaseViewColumn(col("r", "a"), 4),
			BaseViewColumn(col("s", "b"), 8),
		},
	}
	if grouped {
		v.GroupBy = []sqlx.ColRef{col("r", "a")}
		v.Cols = append(v.Cols, AggViewColumn(sqlx.AggSum, col("s", "b"), 8))
	}
	v.Name = name
	return v
}

func TestViewSignatureStable(t *testing.T) {
	a := simpleView("v1", true)
	b := simpleView("v2", true)
	if a.Signature() != b.Signature() {
		t.Error("signature must not depend on the name")
	}
	c := simpleView("v3", false)
	if a.Signature() == c.Signature() {
		t.Error("grouping must change the signature")
	}
}

func TestViewColumnLookups(t *testing.T) {
	v := simpleView("v", true)
	if v.ColumnForSource(col("r", "a")) == nil {
		t.Error("base column lookup failed")
	}
	if v.AggColumnFor(sqlx.AggSum, col("s", "b")) == nil {
		t.Error("aggregate column lookup failed")
	}
	if v.AggColumnFor(sqlx.AggMin, col("s", "b")) != nil {
		t.Error("wrong aggregate should not match")
	}
}

func TestViewSQLRendersParseable(t *testing.T) {
	v := simpleView("v", true)
	sql := v.SQL()
	if _, err := sqlx.Parse(sql); err != nil {
		t.Errorf("view SQL %q does not parse: %v", sql, err)
	}
	for _, frag := range []string{"GROUP BY", "SUM(", "r.x = s.y", "< 10"} {
		if !strings.Contains(sql, frag) {
			t.Errorf("view SQL missing %q: %s", frag, sql)
		}
	}
}

func width(sqlx.ColRef) int { return 8 }

// TestMergeViewsGrouped: merging two grouped views unions grouping and
// output columns.
func TestMergeViewsGrouped(t *testing.T) {
	v1 := simpleView("v1", true)
	v2 := simpleView("v2", true)
	v2.Ranges = []RangeCond{{Col: col("r", "a"), Iv: Interval{Lo: 10, LoIncl: true, Hi: 20}}}
	v2.GroupBy = []sqlx.ColRef{col("s", "b")}
	vm := MergeViews(v1, v2, width)
	if vm == nil {
		t.Fatal("merge failed")
	}
	// Hull of (-inf,10) and [10,20) is (-inf,20): still bounded above.
	if len(vm.Ranges) != 1 || vm.Ranges[0].Iv.Hi != 20 {
		t.Errorf("merged ranges: %v", vm.Ranges)
	}
	if len(vm.GroupBy) < 2 {
		t.Errorf("merged group-by should union: %v", vm.GroupBy)
	}
	if vm.AggColumnFor(sqlx.AggSum, col("s", "b")) == nil {
		t.Error("merged view lost the aggregate")
	}
}

// TestMergeViewsUngroupedDropsAggregates: when one input is not grouped,
// the merged view holds raw rows and aggregates revert to base columns.
func TestMergeViewsUngroupedDropsAggregates(t *testing.T) {
	v1 := simpleView("v1", true)
	v2 := simpleView("v2", false)
	vm := MergeViews(v1, v2, width)
	if vm == nil {
		t.Fatal("merge failed")
	}
	if len(vm.GroupBy) != 0 {
		t.Errorf("GM should be empty: %v", vm.GroupBy)
	}
	if vm.AggColumnFor(sqlx.AggSum, col("s", "b")) != nil {
		t.Error("aggregate should be replaced by its base column")
	}
	if vm.ColumnForSource(col("s", "b")) == nil {
		t.Error("base column of the dropped aggregate is missing")
	}
}

// TestMergeViewsUnboundedRangeEliminated: the paper's a<10 ∪ a>5 example.
func TestMergeViewsUnboundedRangeEliminated(t *testing.T) {
	v1 := simpleView("v1", false)
	v2 := simpleView("v2", false)
	v2.Ranges = []RangeCond{{Col: col("r", "a"), Iv: Interval{Lo: 5, Hi: math.Inf(1)}}}
	vm := MergeViews(v1, v2, width)
	if vm == nil {
		t.Fatal("merge failed")
	}
	if len(vm.Ranges) != 0 {
		t.Errorf("unbounded merged range should be eliminated: %v", vm.Ranges)
	}
	// The range column must stay available for compensating filters.
	if vm.ColumnForSource(col("r", "a")) == nil {
		t.Error("range column missing from merged output")
	}
}

func TestMergeViewsRequiresSameTables(t *testing.T) {
	v1 := simpleView("v1", false)
	v2 := simpleView("v2", false)
	v2.Tables = []string{"r"}
	if MergeViews(v1, v2, width) != nil {
		t.Error("different FROM sets must not merge")
	}
}

// Property: a merged view matches whenever either input matched — checked
// through MatchView with the inputs' own definitions as query blocks.
func TestMergedViewMatchesBothInputs(t *testing.T) {
	v1 := simpleView("v1", false)
	v2 := simpleView("v2", false)
	v2.Ranges = []RangeCond{{Col: col("r", "a"), Iv: Interval{Lo: math.Inf(-1), Hi: 5}}}
	v2.Cols = append(v2.Cols, BaseViewColumn(col("s", "y"), 4))
	vm := MergeViews(v1, v2, width)
	if vm == nil {
		t.Fatal("merge failed")
	}
	if MatchView(v1, vm) == nil {
		t.Error("merged view must answer V1's block")
	}
	if MatchView(v2, vm) == nil {
		t.Error("merged view must answer V2's block")
	}
}

func TestPromoteIndexToView(t *testing.T) {
	v1 := simpleView("v1", true)
	v2 := simpleView("v2", true)
	vm := MergeViews(v1, v2, width)
	ix := NewIndex(v1.Name, []string{v1.Cols[0].Name}, []string{v1.Cols[2].Name}, false)
	p := PromoteIndexToView(ix, v1, vm)
	if p == nil {
		t.Fatal("promotion failed")
	}
	if !strings.EqualFold(p.Table, vm.Name) {
		t.Errorf("promoted index table: %s", p.Table)
	}
	if vm.Column(p.Keys[0]) == nil {
		t.Errorf("promoted key %s missing from merged view", p.Keys[0])
	}
}

// TestPromoteIndexAggToBase: promoting an index keyed on an aggregate
// into an unaggregated merged view maps it to the base column.
func TestPromoteIndexAggToBase(t *testing.T) {
	v1 := simpleView("v1", true)
	v2 := simpleView("v2", false)
	vm := MergeViews(v1, v2, width)
	aggName := v1.AggColumnFor(sqlx.AggSum, col("s", "b")).Name
	ix := NewIndex(v1.Name, []string{aggName}, nil, false)
	p := PromoteIndexToView(ix, v1, vm)
	if p == nil {
		t.Fatal("promotion failed")
	}
	if vm.Column(p.Keys[0]) == nil {
		t.Errorf("mapped key %s missing from merged view", p.Keys[0])
	}
}

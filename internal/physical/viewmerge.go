package physical

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/sqlx"
)

// MergeViews computes the merged view VM of §3.1.2 for V1 and V2:
//
//	FM = F1 = F2 (merging requires equal FROM sets)
//	JM = J1 ∩ J2
//	RM = per-column interval hulls; predicates that become unbounded, or
//	     appear in only one input, are eliminated (their columns are kept
//	     in SM — and GM when grouping survives — so compensating filters
//	     can still be evaluated, as the paper's footnote 7 prescribes)
//	OM = O1 ∩ O2 (structural conjunct equality)
//	GM = G1 ∪ G2 when both are non-empty, else ∅
//	SM = S1 ∪ S2 when GM ≠ ∅; otherwise aggregates are replaced by their
//	     underlying base columns
//
// widthOf supplies average column widths for base columns that must be
// added to SM. The merged view's EstRows is left at zero; the caller must
// estimate it with the optimizer's cardinality module. MergeViews returns
// nil when the views are not mergeable.
func MergeViews(v1, v2 *View, widthOf func(sqlx.ColRef) int) *View {
	if !v1.HasTableSet(v2.Tables) {
		return nil
	}
	vm := &View{Tables: append([]string(nil), v1.Tables...)}

	// JM = J1 ∩ J2. Columns of dropped join predicates must stay available
	// for compensating filters.
	var extraCols []sqlx.ColRef
	for _, j := range v1.Joins {
		if containsJoin(v2.Joins, j) {
			vm.Joins = append(vm.Joins, j)
		}
	}
	for _, j := range append(append([]JoinPred(nil), v1.Joins...), v2.Joins...) {
		if !containsJoin(vm.Joins, j) {
			extraCols = append(extraCols, j.L, j.R)
		}
	}

	// RM: hull per column; single-sided or unbounded hulls are dropped.
	ranges := map[sqlx.ColRef][]Interval{}
	for _, r := range v1.Ranges {
		ranges[r.Col] = append(ranges[r.Col], r.Iv)
	}
	for _, r := range v2.Ranges {
		ranges[r.Col] = append(ranges[r.Col], r.Iv)
	}
	rangeCols := make([]sqlx.ColRef, 0, len(ranges))
	for col := range ranges {
		rangeCols = append(rangeCols, col)
	}
	sort.Slice(rangeCols, func(i, j int) bool { return rangeCols[i].Less(rangeCols[j]) })
	for _, col := range rangeCols {
		ivs := ranges[col]
		// Every range column can carry a compensating filter after the
		// merge, so it must be exposed in the view output.
		extraCols = append(extraCols, col)
		if len(ivs) != 2 {
			continue // present in only one input: predicate dropped
		}
		hull := ivs[0].Hull(ivs[1])
		if hull.Unbounded() {
			continue // eliminated altogether (paper's example: a<10 ∪ a>5)
		}
		vm.Ranges = append(vm.Ranges, RangeCond{Col: col, Iv: hull})
	}

	// OM = O1 ∩ O2 with structural equality; dropped conjuncts keep their
	// columns available.
	for _, o := range v1.Others {
		if containsExpr(v2.Others, o) {
			vm.Others = append(vm.Others, o)
		}
	}
	for _, o := range append(append([]sqlx.Expr(nil), v1.Others...), v2.Others...) {
		if !containsExpr(vm.Others, o) {
			extraCols = append(extraCols, o.Columns(nil)...)
		}
	}

	grouped := len(v1.GroupBy) > 0 && len(v2.GroupBy) > 0
	if grouped {
		// GM = G1 ∪ G2; SM = S1 ∪ S2 plus compensating columns, and every
		// base column of SM joins the grouping so the view stays
		// well-formed (footnote 7's "small number of additional columns").
		vm.GroupBy = unionColRefs(v1.GroupBy, v2.GroupBy)
		for _, c := range v1.Cols {
			addViewCol(vm, c)
		}
		for _, c := range v2.Cols {
			addViewCol(vm, c)
		}
		for _, col := range sqlx.DedupColRefs(extraCols) {
			addViewCol(vm, BaseViewColumn(col, widthOf(col)))
		}
		for _, c := range vm.Cols {
			if c.Agg == sqlx.AggNone && !containsColRef(vm.GroupBy, c.Source) {
				vm.GroupBy = append(vm.GroupBy, c.Source)
			}
		}
	} else {
		// GM = ∅: the merged view holds raw SPJ rows, so aggregates are
		// replaced by the base columns they aggregate (S'A in the paper).
		for _, c := range append(append([]ViewColumn(nil), v1.Cols...), v2.Cols...) {
			if c.Agg == sqlx.AggNone {
				addViewCol(vm, c)
				continue
			}
			if c.Source == (sqlx.ColRef{}) {
				continue // COUNT(*) needs no stored column in a raw view
			}
			addViewCol(vm, BaseViewColumn(c.Source, widthOf(c.Source)))
		}
		// Group-by columns of either input become plain columns.
		for _, g := range append(append([]sqlx.ColRef(nil), v1.GroupBy...), v2.GroupBy...) {
			addViewCol(vm, BaseViewColumn(g, widthOf(g)))
		}
		for _, col := range sqlx.DedupColRefs(extraCols) {
			addViewCol(vm, BaseViewColumn(col, widthOf(col)))
		}
	}
	vm.Name = ViewNameFor(vm)
	return vm
}

// addViewCol appends col unless an identically named column exists.
func addViewCol(v *View, col ViewColumn) {
	if v.Column(col.Name) == nil {
		v.Cols = append(v.Cols, col)
	}
}

// ViewNameFor derives a stable short name from the view's signature.
func ViewNameFor(v *View) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(v.Signature()))
	return fmt.Sprintf("v_%s_%08x", strings.ToLower(strings.Join(shortTables(v.Tables), "_")), h.Sum64()&0xffffffff)
}

func shortTables(tables []string) []string {
	out := make([]string, len(tables))
	for i, t := range tables {
		if len(t) > 4 {
			t = t[:4]
		}
		out[i] = t
	}
	return out
}

// PromoteIndexToView maps an index defined over src onto the merged view
// vm, renaming columns: identical view-column names carry over; aggregate
// columns that were replaced by base columns during the merge map to those
// base columns. Returns nil if any key column cannot be mapped (the index
// is then dropped rather than promoted).
func PromoteIndexToView(ix *Index, src, vm *View) *Index {
	mapCol := func(name string) (string, bool) {
		if vm.Column(name) != nil {
			return name, true
		}
		sc := src.Column(name)
		if sc == nil {
			return "", false
		}
		if sc.Agg != sqlx.AggNone && sc.Source != (sqlx.ColRef{}) {
			base := viewColName(sqlx.AggNone, sc.Source)
			if vm.Column(base) != nil {
				return base, true
			}
		}
		return "", false
	}
	keys := make([]string, 0, len(ix.Keys))
	for _, k := range ix.Keys {
		m, ok := mapCol(k)
		if !ok {
			return nil
		}
		keys = append(keys, m)
	}
	var suffix []string
	for _, s := range ix.Suffix {
		if m, ok := mapCol(s); ok {
			suffix = append(suffix, m)
		}
	}
	return NewIndex(vm.Name, keys, suffix, ix.Clustered)
}

// --- small helpers over view components ---

func containsJoin(list []JoinPred, j JoinPred) bool {
	for _, x := range list {
		if x == j {
			return true
		}
	}
	return false
}

func containsExpr(list []sqlx.Expr, e sqlx.Expr) bool {
	for _, x := range list {
		if x.EqualExpr(e) {
			return true
		}
	}
	return false
}

func containsColRef(list []sqlx.ColRef, c sqlx.ColRef) bool {
	for _, x := range list {
		if x == c {
			return true
		}
	}
	return false
}

func unionColRefs(a, b []sqlx.ColRef) []sqlx.ColRef {
	out := append([]sqlx.ColRef(nil), a...)
	for _, c := range b {
		if !containsColRef(out, c) {
			out = append(out, c)
		}
	}
	return out
}

package physical

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/sqlx"
)

// randomViewOver builds a random view over tables {r,s} with random
// ranges, optional grouping, and the standard join.
func randomViewOver(r *rand.Rand) *View {
	v := &View{
		Tables: []string{"r", "s"},
		Joins:  []JoinPred{NewJoinPred(col("r", "x"), col("s", "y"))},
	}
	cols := []sqlx.ColRef{col("r", "a"), col("r", "b"), col("s", "c"), col("s", "d")}
	// Random ranges on a subset of columns.
	for _, c := range cols[:2+r.Intn(2)] {
		if r.Intn(2) == 0 {
			continue
		}
		lo, hi := math.Inf(-1), math.Inf(1)
		if r.Intn(2) == 0 {
			lo = float64(r.Intn(50))
		}
		if r.Intn(2) == 0 {
			hi = lo + 1 + float64(r.Intn(50))
			if math.IsInf(lo, -1) {
				hi = float64(r.Intn(100))
			}
		}
		if math.IsInf(lo, -1) && math.IsInf(hi, 1) {
			continue
		}
		v.Ranges = append(v.Ranges, RangeCond{Col: c, Iv: Interval{Lo: lo, Hi: hi, LoIncl: true}})
	}
	// Outputs: all base columns plus join columns.
	for _, c := range append(cols, col("r", "x"), col("s", "y")) {
		v.Cols = append(v.Cols, BaseViewColumn(c, 4))
	}
	if r.Intn(2) == 0 {
		v.GroupBy = []sqlx.ColRef{cols[r.Intn(2)]}
		// Keep the view well-formed: every output base column grouped.
		for _, c := range v.Cols {
			if !containsColRef(v.GroupBy, c.Source) {
				v.GroupBy = append(v.GroupBy, c.Source)
			}
		}
		v.Cols = append(v.Cols, AggViewColumn(sqlx.AggSum, cols[2], 8))
	}
	v.Name = ViewNameFor(v)
	return v
}

// TestMergedViewAlwaysMatchesInputs is the §3.1.2 guarantee the bound
// machinery relies on: "we require that VM be matched whenever either V1
// or V2 are" — checked on randomized view pairs using the inputs' own
// definitions as query blocks.
func TestMergedViewAlwaysMatchesInputs(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Values: func(vals []reflect.Value, r *rand.Rand) {
		vals[0] = reflect.ValueOf(randomViewOver(r))
		vals[1] = reflect.ValueOf(randomViewOver(r))
	}}
	if err := quick.Check(func(v1, v2 *View) bool {
		vm := MergeViews(v1, v2, func(sqlx.ColRef) int { return 4 })
		if vm == nil {
			return false // same table set: merging must be defined
		}
		vm.EstRows = 1000
		return MatchView(v1, vm) != nil && MatchView(v2, vm) != nil
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestMergeViewsCommutesOnSignature: merging is symmetric up to the
// definition signature.
func TestMergeViewsCommutesOnSignature(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Values: func(vals []reflect.Value, r *rand.Rand) {
		vals[0] = reflect.ValueOf(randomViewOver(r))
		vals[1] = reflect.ValueOf(randomViewOver(r))
	}}
	if err := quick.Check(func(v1, v2 *View) bool {
		a := MergeViews(v1, v2, func(sqlx.ColRef) int { return 4 })
		b := MergeViews(v2, v1, func(sqlx.ColRef) int { return 4 })
		if a == nil || b == nil {
			return a == nil && b == nil
		}
		return a.Signature() == b.Signature()
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestMergeViewsIdempotentOnEqualInputs: merging a view with itself
// yields an equivalent definition.
func TestMergeViewsIdempotentOnEqualInputs(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Values: func(vals []reflect.Value, r *rand.Rand) {
		vals[0] = reflect.ValueOf(randomViewOver(r))
	}}
	if err := quick.Check(func(v *View) bool {
		vm := MergeViews(v, v.Clone(), func(sqlx.ColRef) int { return 4 })
		if vm == nil {
			return false
		}
		// The merged view must still match the original exactly, with no
		// residual predicates.
		m := MatchView(v, vm)
		return m != nil && len(m.ResidualRanges) == 0 && len(m.ResidualJoins) == 0
	}, cfg); err != nil {
		t.Error(err)
	}
}

// Package plan defines physical execution plan nodes, their cost vectors,
// and the per-index usage records ("explain" output) that the relaxation
// tuner consumes when bounding the cost of relaxed configurations
// (§3.3.2 of the paper: estimated I/O and CPU cost, rows returned, seek
// vs. scan usage, required order, seek columns with selectivity, and the
// additional columns required upwards in the tree).
package plan

import (
	"fmt"
	"strings"

	"repro/internal/physical"
)

// Cost is a two-component cost vector. Units are abstract "time units":
// one unit ≈ one sequential page read; random I/O and CPU work are scaled
// into the same unit by the cost model.
type Cost struct {
	IO  float64
	CPU float64
}

// Total returns the scalar cost.
func (c Cost) Total() float64 { return c.IO + c.CPU }

// Add returns the component-wise sum.
func (c Cost) Add(o Cost) Cost { return Cost{IO: c.IO + o.IO, CPU: c.CPU + o.CPU} }

// Scale returns the cost multiplied by f.
func (c Cost) Scale(f float64) Cost { return Cost{IO: c.IO * f, CPU: c.CPU * f} }

func (c Cost) String() string { return fmt.Sprintf("io=%.1f cpu=%.1f", c.IO, c.CPU) }

// Less compares total costs.
func (c Cost) Less(o Cost) bool { return c.Total() < o.Total() }

// Node is a physical plan operator. TotalCost is cumulative (includes
// children); OutRows is the estimated output cardinality; OutOrder is the
// column sequence the output is sorted by (nil when unordered).
type Node interface {
	TotalCost() Cost
	OutRows() float64
	OutOrder() []string
	Children() []Node
	Label() string
}

// base carries the fields shared by every node.
type base struct {
	cost  Cost
	rows  float64
	order []string
}

func (b *base) TotalCost() Cost    { return b.cost }
func (b *base) OutRows() float64   { return b.rows }
func (b *base) OutOrder() []string { return b.order }

// IndexSeek seeks a fraction of an index using sargable predicates over a
// prefix of its keys.
type IndexSeek struct {
	base
	Index       *physical.Index
	SeekCols    []string
	Selectivity float64 // fraction of index entries touched
}

// NewIndexSeek constructs a seek node. order is the (qualified) output
// order the caller attributes to the index's key sequence.
func NewIndexSeek(ix *physical.Index, seekCols []string, sel float64, rows float64, cost Cost, order []string) *IndexSeek {
	return &IndexSeek{base: base{cost: cost, rows: rows, order: order}, Index: ix, SeekCols: seekCols, Selectivity: sel}
}

// Children implements Node.
func (n *IndexSeek) Children() []Node { return nil }

// Label implements Node.
func (n *IndexSeek) Label() string {
	return fmt.Sprintf("IndexSeek(%s on %s, sel=%.4g)", n.Index.ID(), strings.Join(n.SeekCols, ","), n.Selectivity)
}

// IndexScan reads an entire index.
type IndexScan struct {
	base
	Index *physical.Index
}

// NewIndexScan constructs a full-scan node with the given output order.
func NewIndexScan(ix *physical.Index, rows float64, cost Cost, order []string) *IndexScan {
	return &IndexScan{base: base{cost: cost, rows: rows, order: order}, Index: ix}
}

// Children implements Node.
func (n *IndexScan) Children() []Node { return nil }

// Label implements Node.
func (n *IndexScan) Label() string { return fmt.Sprintf("IndexScan(%s)", n.Index.ID()) }

// HeapScan reads an entire heap table (no clustered index).
type HeapScan struct {
	base
	Table string
}

// NewHeapScan constructs a heap scan node.
func NewHeapScan(table string, rows float64, cost Cost) *HeapScan {
	return &HeapScan{base: base{cost: cost, rows: rows}, Table: table}
}

// Children implements Node.
func (n *HeapScan) Children() []Node { return nil }

// Label implements Node.
func (n *HeapScan) Label() string { return fmt.Sprintf("HeapScan(%s)", n.Table) }

// RidLookup fetches missing columns from the table's primary structure for
// each input row.
type RidLookup struct {
	base
	Child Node
	Table string
}

// NewRidLookup constructs a rid-lookup node; cost must already include
// the child's cost. Lookups fetch row by row, so the driving input's
// order is preserved.
func NewRidLookup(child Node, table string, cost Cost) *RidLookup {
	return &RidLookup{base: base{cost: cost, rows: child.OutRows(), order: child.OutOrder()}, Child: child, Table: table}
}

// Children implements Node.
func (n *RidLookup) Children() []Node { return []Node{n.Child} }

// Label implements Node.
func (n *RidLookup) Label() string { return fmt.Sprintf("RidLookup(%s)", n.Table) }

// RidIntersect intersects the rids produced by two index seeks.
type RidIntersect struct {
	base
	L, R Node
}

// NewRidIntersect constructs an intersection node.
func NewRidIntersect(l, r Node, rows float64, cost Cost) *RidIntersect {
	return &RidIntersect{base: base{cost: cost, rows: rows}, L: l, R: r}
}

// Children implements Node.
func (n *RidIntersect) Children() []Node { return []Node{n.L, n.R} }

// Label implements Node.
func (n *RidIntersect) Label() string { return "RidIntersect" }

// Filter applies residual (non-sargable) predicates.
type Filter struct {
	base
	Child       Node
	Selectivity float64
	Desc        string
}

// NewFilter constructs a filter node; cost must include the child's cost.
func NewFilter(child Node, sel float64, desc string, cost Cost) *Filter {
	return &Filter{
		base:  base{cost: cost, rows: child.OutRows() * sel, order: child.OutOrder()},
		Child: child, Selectivity: sel, Desc: desc,
	}
}

// Children implements Node.
func (n *Filter) Children() []Node { return []Node{n.Child} }

// Label implements Node.
func (n *Filter) Label() string { return fmt.Sprintf("Filter(%s, sel=%.4g)", n.Desc, n.Selectivity) }

// Sort enforces an output order.
type Sort struct {
	base
	Child Node
	By    []string
}

// NewSort constructs a sort node; cost must include the child's cost.
func NewSort(child Node, by []string, cost Cost) *Sort {
	return &Sort{base: base{cost: cost, rows: child.OutRows(), order: by}, Child: child, By: by}
}

// Children implements Node.
func (n *Sort) Children() []Node { return []Node{n.Child} }

// Label implements Node.
func (n *Sort) Label() string { return fmt.Sprintf("Sort(%s)", strings.Join(n.By, ",")) }

// JoinMethod identifies the physical join algorithm.
type JoinMethod int

// Join methods.
const (
	JoinHash JoinMethod = iota
	JoinNestedLoop
	JoinIndexNL
	JoinMerge
)

func (m JoinMethod) String() string {
	switch m {
	case JoinHash:
		return "HashJoin"
	case JoinNestedLoop:
		return "NLJoin"
	case JoinIndexNL:
		return "IndexNLJoin"
	case JoinMerge:
		return "MergeJoin"
	default:
		return "Join"
	}
}

// Join combines two inputs on equi-join predicates.
type Join struct {
	base
	Method JoinMethod
	L, R   Node
	On     string
}

// NewJoin constructs a join node with the given output order.
func NewJoin(m JoinMethod, l, r Node, on string, rows float64, order []string, cost Cost) *Join {
	return &Join{base: base{cost: cost, rows: rows, order: order}, Method: m, L: l, R: r, On: on}
}

// Children implements Node.
func (n *Join) Children() []Node { return []Node{n.L, n.R} }

// Label implements Node.
func (n *Join) Label() string { return fmt.Sprintf("%s(%s)", n.Method, n.On) }

// AggMode distinguishes hash aggregation from order-exploiting streaming.
type AggMode int

// Aggregation modes.
const (
	AggHash AggMode = iota
	AggStream
)

// GroupBy aggregates its input.
type GroupBy struct {
	base
	Child Node
	Keys  []string
	Mode  AggMode
}

// NewGroupBy constructs an aggregation node.
func NewGroupBy(child Node, keys []string, mode AggMode, groups float64, cost Cost) *GroupBy {
	var order []string
	if mode == AggStream {
		order = child.OutOrder()
	}
	return &GroupBy{base: base{cost: cost, rows: groups, order: order}, Child: child, Keys: keys, Mode: mode}
}

// Children implements Node.
func (n *GroupBy) Children() []Node { return []Node{n.Child} }

// Label implements Node.
func (n *GroupBy) Label() string {
	mode := "Hash"
	if n.Mode == AggStream {
		mode = "Stream"
	}
	return fmt.Sprintf("%sGroupBy(%s)", mode, strings.Join(n.Keys, ","))
}

// Format renders a plan tree as an indented multi-line string.
func Format(n Node) string {
	var sb strings.Builder
	format(&sb, n, 0)
	return sb.String()
}

func format(sb *strings.Builder, n Node, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(sb, "%s  [rows=%.0f %s]\n", n.Label(), n.OutRows(), n.TotalCost())
	for _, c := range n.Children() {
		format(sb, c, depth+1)
	}
}

// OrderSatisfies reports whether the order "have" satisfies the
// requirement "want": want must be a prefix-wise match of have, skipping
// have-columns bound to equality constants listed in eqBound.
func OrderSatisfies(have, want []string, eqBound map[string]bool) bool {
	hi := 0
	for _, w := range want {
		for hi < len(have) && eqBound[strings.ToLower(have[hi])] && !strings.EqualFold(have[hi], w) {
			hi++
		}
		if hi >= len(have) || !strings.EqualFold(have[hi], w) {
			return false
		}
		hi++
	}
	return true
}

package plan

import (
	"strings"
	"testing"

	"repro/internal/physical"
)

func TestCostArithmetic(t *testing.T) {
	a := Cost{IO: 10, CPU: 2}
	b := Cost{IO: 1, CPU: 1}
	if got := a.Add(b); got.IO != 11 || got.CPU != 3 {
		t.Errorf("Add: %+v", got)
	}
	if got := a.Scale(2); got.IO != 20 || got.CPU != 4 {
		t.Errorf("Scale: %+v", got)
	}
	if a.Total() != 12 {
		t.Errorf("Total: %g", a.Total())
	}
	if !b.Less(a) || a.Less(b) {
		t.Error("Less ordering wrong")
	}
}

func TestOrderSatisfies(t *testing.T) {
	cases := []struct {
		have, want []string
		eq         map[string]bool
		ok         bool
	}{
		{[]string{"t.a", "t.b"}, []string{"t.a"}, nil, true},
		{[]string{"t.a", "t.b"}, []string{"t.a", "t.b"}, nil, true},
		{[]string{"t.a", "t.b"}, []string{"t.b"}, nil, false},
		{[]string{"t.a", "t.b"}, []string{"t.b"}, map[string]bool{"t.a": true}, true},
		{[]string{"t.a", "t.b", "t.c"}, []string{"t.c"}, map[string]bool{"t.a": true, "t.b": true}, true},
		{[]string{"t.a"}, []string{"t.a", "t.b"}, nil, false},
		{nil, []string{"t.a"}, nil, false},
		{[]string{"t.a"}, nil, nil, true},
		// Case-insensitive matching.
		{[]string{"T.A"}, []string{"t.a"}, nil, true},
	}
	for i, c := range cases {
		if got := OrderSatisfies(c.have, c.want, c.eq); got != c.ok {
			t.Errorf("case %d: OrderSatisfies(%v, %v) = %v, want %v", i, c.have, c.want, got, c.ok)
		}
	}
}

func buildTree() Node {
	ix := physical.NewIndex("t", []string{"a"}, []string{"b"}, false)
	seek := NewIndexSeek(ix, []string{"a"}, 0.1, 100, Cost{IO: 5, CPU: 0.1}, []string{"t.a"})
	look := NewRidLookup(seek, "t", seek.TotalCost().Add(Cost{IO: 40}))
	filt := NewFilter(look, 0.5, "b > 3", look.TotalCost().Add(Cost{CPU: 0.1}))
	return NewSort(filt, []string{"t.b"}, filt.TotalCost().Add(Cost{CPU: 1}))
}

func TestPlanTreeProperties(t *testing.T) {
	root := buildTree()
	if root.OutRows() != 50 {
		t.Errorf("rows through filter: %g", root.OutRows())
	}
	if got := root.TotalCost(); got.IO != 45 || got.CPU != 1.2 {
		t.Errorf("cumulative cost: %+v", got)
	}
	if len(root.OutOrder()) != 1 || root.OutOrder()[0] != "t.b" {
		t.Errorf("sort order: %v", root.OutOrder())
	}
}

func TestFilterPreservesOrder(t *testing.T) {
	ix := physical.NewIndex("t", []string{"a"}, nil, false)
	scan := NewIndexScan(ix, 1000, Cost{IO: 10}, []string{"t.a"})
	f := NewFilter(scan, 0.1, "pred", scan.TotalCost())
	if len(f.OutOrder()) != 1 {
		t.Error("filter must preserve input order")
	}
}

func TestGroupByOrderSemantics(t *testing.T) {
	ix := physical.NewIndex("t", []string{"a"}, nil, false)
	scan := NewIndexScan(ix, 1000, Cost{IO: 10}, []string{"t.a"})
	hash := NewGroupBy(scan, []string{"t.a"}, AggHash, 10, scan.TotalCost())
	if hash.OutOrder() != nil {
		t.Error("hash aggregation destroys order")
	}
	stream := NewGroupBy(scan, []string{"t.a"}, AggStream, 10, scan.TotalCost())
	if len(stream.OutOrder()) != 1 {
		t.Error("stream aggregation preserves order")
	}
}

func TestFormatRendersTree(t *testing.T) {
	out := Format(buildTree())
	for _, frag := range []string{"Sort", "Filter", "RidLookup", "IndexSeek"} {
		if !strings.Contains(out, frag) {
			t.Errorf("formatted plan missing %q:\n%s", frag, out)
		}
	}
	if strings.Count(out, "\n") != 4 {
		t.Errorf("expected 4 lines:\n%s", out)
	}
}

func TestQueryPlanUsageHelpers(t *testing.T) {
	i1 := physical.NewIndex("t", []string{"a"}, nil, false)
	i2 := physical.NewIndex("u", []string{"b"}, nil, false)
	p := &QueryPlan{
		Usages: []*IndexUsage{
			{Index: i1}, {Index: i2}, {Index: i1},
		},
		UsedViews: []string{"v1"},
	}
	if !p.UsesIndex(i1.ID()) || p.UsesIndex("nope") {
		t.Error("UsesIndex wrong")
	}
	if !p.UsesView("V1") || p.UsesView("v2") {
		t.Error("UsesView wrong (should be case-insensitive)")
	}
	if got := p.UsedIndexIDs(); len(got) != 2 {
		t.Errorf("UsedIndexIDs should dedup: %v", got)
	}
}

func TestJoinOrderPropagation(t *testing.T) {
	ix := physical.NewIndex("t", []string{"a"}, nil, false)
	outer := NewIndexScan(ix, 100, Cost{IO: 1}, []string{"t.a"})
	inner := NewHeapScan("u", 50, Cost{IO: 1})
	j := NewJoin(JoinHash, outer, inner, "t.a = u.b", 500, outer.OutOrder(), Cost{IO: 2})
	if len(j.OutOrder()) != 1 || j.OutOrder()[0] != "t.a" {
		t.Error("probe-side order should propagate")
	}
	if len(j.Children()) != 2 {
		t.Error("join has two children")
	}
}

package plan

import (
	"fmt"
	"strings"

	"repro/internal/physical"
)

// IndexUsage records how one index access contributed to a query plan; it
// is the information §3.3.2 assumes "explain" interfaces expose:
// estimated I/O and CPU cost, estimated rows returned, usage type (seek or
// scan), the optional required order on the returned rows, the seek
// columns and their combined selectivity, and the additional columns
// required upwards in the tree.
type IndexUsage struct {
	Index *physical.Index
	// Seek is true when the index was sought; false for full scans.
	Seek bool
	// SeekCols are the key columns consumed by the seek.
	SeekCols []string
	// SeekColSels are the per-column selectivities of SeekCols (used by
	// the §3.3.2 bound to re-derive the selectivity of a shared prefix).
	SeekColSels []float64
	// Selectivity is the fraction of index entries touched by the seek
	// (1 for scans).
	Selectivity float64
	// Rows is the estimated number of rows the access returned.
	Rows float64
	// AccessCost is the cost of the index access itself, excluding any
	// lookups, filters, or sorts layered above it.
	AccessCost Cost
	// OrderCols is the order the plan required from this access (nil when
	// no order was exploited).
	OrderCols []string
	// NeededCols are all columns the plan required from this table,
	// whether the index provided them directly or via rid lookups.
	NeededCols []string
	// LookedUp is true when the plan performed rid lookups above this
	// access (the index did not cover NeededCols).
	LookedUp bool
	// InIntersection is true when this access fed a rid intersection.
	InIntersection bool
	// ViewName is the owning view when the index is a view index; empty
	// for base-table indexes.
	ViewName string
}

func (u *IndexUsage) String() string {
	kind := "scan"
	if u.Seek {
		kind = fmt.Sprintf("seek[%s sel=%.4g]", strings.Join(u.SeekCols, ","), u.Selectivity)
	}
	return fmt.Sprintf("%s %s rows=%.0f cost=%.1f", u.Index.ID(), kind, u.Rows, u.AccessCost.Total())
}

// QueryPlan is a fully optimized query: the root node, total cost, and the
// usage records for every index access in the plan.
type QueryPlan struct {
	Root Node
	// Cost is the plan's total estimated cost (equals Root.TotalCost()).
	Cost Cost
	// Usages lists every index access in the plan.
	Usages []*IndexUsage
	// UsedViews lists the names of materialized views the plan reads.
	UsedViews []string
}

// UsesIndex reports whether the plan reads the index with the given ID.
func (p *QueryPlan) UsesIndex(id string) bool {
	for _, u := range p.Usages {
		if u.Index.ID() == id {
			return true
		}
	}
	return false
}

// UsesView reports whether the plan reads the named view.
func (p *QueryPlan) UsesView(name string) bool {
	for _, v := range p.UsedViews {
		if strings.EqualFold(v, name) {
			return true
		}
	}
	return false
}

// UsedIndexIDs returns the distinct IDs of all indexes the plan reads.
func (p *QueryPlan) UsedIndexIDs() []string {
	seen := map[string]bool{}
	var out []string
	for _, u := range p.Usages {
		id := u.Index.ID()
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

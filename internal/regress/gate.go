package regress

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Tolerance bounds how far a run may drift from the baseline before
// the gate fails. Deterministic counters (optimizer calls, iterations)
// get tight factors; wall time and allocations get looser ones plus an
// absolute slack so sub-millisecond scenarios don't flap on noise.
// Zero-valued fields take the defaults below.
type Tolerance struct {
	// WallFactor caps current wall time at baseline×factor (+50 ms
	// slack). The default must stay below 2 so a 2× slowdown is caught.
	WallFactor float64
	// AllocFactor caps heap allocations at baseline×factor (+1 MiB).
	// Allocation counts are deterministic up to GC timing, so the
	// default is tight (1.10×): the what-if hot path is allocation-
	// disciplined and a 10% creep is already a real regression.
	AllocFactor float64
	// CallsFactor caps optimizer calls and iterations — both
	// deterministic for a fixed seed — at baseline×factor (+2).
	CallsFactor float64
	// QualityPoints is the allowed drop in improvement (and rise in
	// quality gap), in absolute percentage points.
	QualityPoints float64
	// CoverageFloorPct is the minimum profile coverage; checked only
	// when the baseline recorded a non-zero coverage.
	CoverageFloorPct float64
}

// DefaultTolerance returns the gate defaults (wall 1.5×, alloc 1.10×,
// calls 1.05×, quality ±0.5 points, coverage floor 80%).
func DefaultTolerance() Tolerance {
	return Tolerance{
		WallFactor:       1.5,
		AllocFactor:      1.10,
		CallsFactor:      1.05,
		QualityPoints:    0.5,
		CoverageFloorPct: 80,
	}
}

func (t Tolerance) withDefaults() Tolerance {
	d := DefaultTolerance()
	if t.WallFactor <= 0 {
		t.WallFactor = d.WallFactor
	}
	if t.AllocFactor <= 0 {
		t.AllocFactor = d.AllocFactor
	}
	if t.CallsFactor <= 0 {
		t.CallsFactor = d.CallsFactor
	}
	if t.QualityPoints <= 0 {
		t.QualityPoints = d.QualityPoints
	}
	if t.CoverageFloorPct <= 0 {
		t.CoverageFloorPct = d.CoverageFloorPct
	}
	return t
}

// Violation is one gate failure: a metric that crossed its tolerance.
type Violation struct {
	Scenario string  `json:"scenario"`
	Metric   string  `json:"metric"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	Limit    float64 `json:"limit"`
	// Detail carries the human-readable explanation shown in CI logs.
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s: %s (current %.4g, baseline %.4g, limit %.4g)",
		v.Scenario, v.Metric, v.Detail, v.Current, v.Baseline, v.Limit)
}

// Gate compares a run against the baseline and returns every tolerance
// violation, grouped by scenario in baseline order. An empty slice
// means the run passes.
func Gate(baseline, current *Bench, tol Tolerance) []Violation {
	tol = tol.withDefaults()
	var vs []Violation
	if baseline.SchemaVersion != current.SchemaVersion {
		return []Violation{{
			Scenario: "-", Metric: "schema_version",
			Baseline: float64(baseline.SchemaVersion),
			Current:  float64(current.SchemaVersion),
			Limit:    float64(baseline.SchemaVersion),
			Detail:   "benchmark schema changed; regenerate the baseline",
		}}
	}
	cur := make(map[string]ScenarioResult, len(current.Scenarios))
	for _, sr := range current.Scenarios {
		cur[sr.Name] = sr
	}
	for _, base := range baseline.Scenarios {
		c, ok := cur[base.Name]
		if !ok {
			vs = append(vs, Violation{
				Scenario: base.Name, Metric: "scenario",
				Detail: "scenario present in baseline but missing from this run",
			})
			continue
		}
		vs = append(vs, gateScenario(base, c, tol)...)
	}
	return vs
}

func gateScenario(base, c ScenarioResult, tol Tolerance) []Violation {
	var vs []Violation
	check := func(metric string, baseline, current, limit float64, detail string) {
		vs = append(vs, Violation{
			Scenario: base.Name, Metric: metric,
			Baseline: baseline, Current: current, Limit: limit,
			Detail: detail,
		})
	}

	if limit := base.WallSeconds*tol.WallFactor + 0.05; c.WallSeconds > limit {
		check("wall_seconds", base.WallSeconds, c.WallSeconds, limit,
			fmt.Sprintf("wall time regressed %.2fx", c.WallSeconds/base.WallSeconds))
	}
	if limit := float64(base.AllocBytes)*tol.AllocFactor + float64(1<<20); float64(c.AllocBytes) > limit {
		check("alloc_bytes", float64(base.AllocBytes), float64(c.AllocBytes), limit,
			fmt.Sprintf("heap allocations regressed %.2fx", float64(c.AllocBytes)/float64(base.AllocBytes)))
	}
	if limit := float64(base.OptimizerCalls)*tol.CallsFactor + 2; float64(c.OptimizerCalls) > limit {
		check("optimizer_calls", float64(base.OptimizerCalls), float64(c.OptimizerCalls), limit,
			"the search spends more optimizer calls than the baseline")
	}
	if limit := float64(base.Iterations)*tol.CallsFactor + 2; float64(c.Iterations) > limit {
		check("iterations", float64(base.Iterations), float64(c.Iterations), limit,
			"the search needs more relaxation iterations than the baseline")
	}
	if floor := base.ImprovementPct - tol.QualityPoints; c.ImprovementPct < floor {
		check("improvement_pct", base.ImprovementPct, c.ImprovementPct, floor,
			"recommendation quality dropped below the baseline")
	}
	if limit := base.QualityGapPct + tol.QualityPoints; c.QualityGapPct > limit {
		check("quality_gap_pct", base.QualityGapPct, c.QualityGapPct, limit,
			"the recommendation landed farther from the unconstrained optimum")
	}
	if c.BoundViolations > base.BoundViolations {
		check("bound_violations", float64(base.BoundViolations), float64(c.BoundViolations),
			float64(base.BoundViolations),
			"new §3.3.2 ΔT bound violations (realized cost above the proved upper bound)")
	}
	if base.ProfileCoveragePct > 0 && c.ProfileCoveragePct < tol.CoverageFloorPct {
		check("profile_coverage_pct", base.ProfileCoveragePct, c.ProfileCoveragePct, tol.CoverageFloorPct,
			"profiler phases no longer account for the scenario's wall time")
	}
	// Flight-recorder lower bounds: these counters are deterministic for
	// a fixed seed, and dropping to zero means the observability surface
	// silently broke (frontier capture or session recording), which no
	// upper-bound check would catch.
	if base.FrontierPoints > 0 && c.FrontierPoints == 0 {
		check("frontier_points", float64(base.FrontierPoints), 0, 1,
			"the search no longer records its (space, cost) frontier trajectory")
	}
	if c.RecordedSessions < base.RecordedSessions {
		check("recorded_sessions", float64(base.RecordedSessions), float64(c.RecordedSessions),
			float64(base.RecordedSessions),
			"the flight recorder retained fewer sessions than the baseline")
	}
	// Fleet lower bound: cross-tenant fragment reuse is the point of the
	// fleet-throughput scenario. Shared hits dropping to zero while the
	// baseline recorded some means multi-tenant cache sharing silently
	// broke (tenants still get correct recommendations — just without
	// the optimizer-call savings — so only this gate would catch it).
	if base.SharedCacheHits > 0 && c.SharedCacheHits == 0 {
		check("shared_cache_hits", float64(base.SharedCacheHits), 0, 1,
			"the fleet no longer shares cached fragments across tenants")
	}
	// Ground-truth lower bounds, from the execution-backed replay.
	// MeasuredSpeedup is a ratio of two wall-time measurements, so noise
	// compounds; gate it against the committed baseline (recorded ≥ 1)
	// with a loose factor rather than an absolute floor. A recommendation
	// that executes materially slower than the record — the regression
	// every estimate-based metric above is blind to — still fails. The
	// rows-scanned comparison is deterministic: the recommended
	// configuration scanning more rows than the baseline means its
	// structures went unused.
	if base.MeasuredSpeedup > 0 {
		if floor := base.MeasuredSpeedup * 0.75; c.MeasuredSpeedup < floor {
			check("measured_speedup", base.MeasuredSpeedup, c.MeasuredSpeedup, floor,
				"the recommendation measures materially slower than the baseline record when actually executed")
		}
	}
	if base.ReplayRowsBaseline > 0 && c.ReplayRowsRecommended > c.ReplayRowsBaseline {
		check("replay_rows", float64(base.ReplayRowsRecommended), float64(c.ReplayRowsRecommended),
			float64(c.ReplayRowsBaseline),
			"the recommended configuration scans more rows than the unindexed baseline")
	}
	// Workload-introspection lower bounds (online-drift). The signature
	// count is deterministic for a fixed seed: fewer distinct signatures
	// than the baseline means canonicalization started merging shapes it
	// should keep apart, or the sketch lost streams. The top-k weight
	// coverage dropping below the baseline (less 5% slack for decay
	// timing) means the sketch evicts live traffic it used to track.
	if base.WorkloadSignatures > 0 && c.WorkloadSignatures < base.WorkloadSignatures {
		check("workload_signatures", float64(base.WorkloadSignatures), float64(c.WorkloadSignatures),
			float64(base.WorkloadSignatures),
			"the sketch tracks fewer distinct statement signatures than the baseline")
	}
	if base.TopKWeightShare > 0 {
		if floor := base.TopKWeightShare * 0.95; c.TopKWeightShare < floor {
			check("topk_weight_share", base.TopKWeightShare, c.TopKWeightShare, floor,
				"the top-k sketch covers less of the window's weight than the baseline")
		}
	}
	// Self-monitoring lower bounds (online-drift). The baseline records
	// a populated metrics history and a synthetic rule left firing with
	// at least one logged transition; any of them collapsing to zero
	// means the sampler stopped capturing series or the alert engine
	// stopped evaluating — observability regressions no quality metric
	// would catch.
	if base.HistorySeries > 0 && c.HistorySeries == 0 {
		check("history_series", float64(base.HistorySeries), 0, 1,
			"the metrics-history sampler retained no series")
	}
	if base.AlertsFired > 0 && c.AlertsFired == 0 {
		check("alerts_fired", float64(base.AlertsFired), 0, 1,
			"the synthetic retune-completed rule no longer fires")
	}
	if base.AlertTransitions > 0 && c.AlertTransitions == 0 {
		check("alert_transitions", float64(base.AlertTransitions), 0, 1,
			"the alert engine logged no state transitions")
	}
	// The parallel evaluation engine must not run slower than the serial
	// algorithm (ratio ≤ 1 + 5% noise slack). Only meaningful when the
	// run actually had more than one worker; single-core runners record
	// workers = 1 and a vacuous ratio.
	if c.ParallelWorkers > 1 && c.ParallelWallRatio > 1.05 {
		check("parallel_wall_ratio", base.ParallelWallRatio, c.ParallelWallRatio, 1.05,
			fmt.Sprintf("parallel evaluation (%d workers) ran %.2fx the serial wall time", c.ParallelWorkers, c.ParallelWallRatio))
	}
	return vs
}

// FormatViolations renders the gate report the way CI logs it.
func FormatViolations(w io.Writer, vs []Violation) {
	if len(vs) == 0 {
		fmt.Fprintln(w, "gate: PASS")
		return
	}
	fmt.Fprintf(w, "gate: FAIL (%d violation(s))\n", len(vs))
	for _, v := range vs {
		fmt.Fprintf(w, "  %s\n", v)
	}
}

// WriteJSON writes the benchmark record as indented JSON.
func (b *Bench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// WriteFile writes the benchmark record to path.
func WriteFile(path string, b *Bench) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a benchmark record, verifying the schema version.
func ReadFile(path string) (*Bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("regress: parsing %s: %w", path, err)
	}
	if b.SchemaVersion == 0 {
		return nil, fmt.Errorf("regress: %s has no schema_version (pre-versioned record?)", path)
	}
	return &b, nil
}

package regress

import (
	"path/filepath"
	"strings"
	"testing"
)

func baselineBench() *Bench {
	return &Bench{
		SchemaVersion: SchemaVersion,
		Suite:         "smoke",
		Scenarios: []ScenarioResult{
			{
				Name:               "batch-tpch",
				WallSeconds:        0.500,
				AllocBytes:         200 << 20,
				OptimizerCalls:     150,
				Iterations:         40,
				ImprovementPct:     56.6,
				QualityGapPct:      73.4,
				CalibSamples:       39,
				MeanTightness:      0.49,
				RankCorrelation:    0.76,
				BoundViolations:    1,
				PlansReusedPct:     89.9,
				ProfileCoveragePct: 99.9,

				MeasuredSpeedup:       1.25,
				ReplayRowsBaseline:    119420,
				ReplayRowsRecommended: 74197,
			},
			{
				Name:               "online-drift",
				WallSeconds:        1.200,
				AllocBytes:         550 << 20,
				OptimizerCalls:     293,
				ImprovementPct:     59.9,
				BoundViolations:    1,
				ProfileCoveragePct: 99.9,
				FrontierPoints:     6,
				RecordedSessions:   2,
				WorkloadSignatures: 14,
				TopKWeightShare:    1.0,
				HistorySeries:      40,
				AlertsFired:        1,
				AlertTransitions:   1,
			},
		},
	}
}

func TestGateWithinTolerancePasses(t *testing.T) {
	base := baselineBench()
	cur := baselineBench()
	// Ordinary run-to-run noise: slightly slower, slightly more
	// allocation, identical deterministic counters.
	cur.Scenarios[0].WallSeconds *= 1.2
	cur.Scenarios[0].AllocBytes += 10 << 20
	cur.Scenarios[1].WallSeconds *= 0.9

	if vs := Gate(base, cur, Tolerance{}); len(vs) != 0 {
		t.Fatalf("within-tolerance run failed the gate: %v", vs)
	}
}

func TestGateCatchesTwoTimesSlowdown(t *testing.T) {
	base := baselineBench()
	cur := baselineBench()
	// The injected regression the harness exists to catch.
	cur.Scenarios[0].WallSeconds = base.Scenarios[0].WallSeconds * 2

	vs := Gate(base, cur, Tolerance{})
	if len(vs) != 1 {
		t.Fatalf("want exactly one violation, got %v", vs)
	}
	v := vs[0]
	if v.Scenario != "batch-tpch" || v.Metric != "wall_seconds" {
		t.Errorf("violation misattributed: %+v", v)
	}
	// The rendered diff must be readable: scenario, metric, the 2×
	// factor, and the numbers involved.
	s := v.String()
	for _, want := range []string{"batch-tpch", "wall_seconds", "2.00x", "baseline"} {
		if !strings.Contains(s, want) {
			t.Errorf("violation text missing %q: %s", want, s)
		}
	}
}

func TestGateDeterministicCountersAreTight(t *testing.T) {
	base := baselineBench()
	cur := baselineBench()
	// +20% optimizer calls is a real search regression even though the
	// wall clock may absorb it.
	cur.Scenarios[0].OptimizerCalls = 180

	vs := Gate(base, cur, Tolerance{})
	if len(vs) != 1 || vs[0].Metric != "optimizer_calls" {
		t.Fatalf("want one optimizer_calls violation, got %v", vs)
	}
}

func TestGateQualityDrop(t *testing.T) {
	base := baselineBench()
	cur := baselineBench()
	cur.Scenarios[0].ImprovementPct -= 2 // two points of recommendation quality

	vs := Gate(base, cur, Tolerance{})
	if len(vs) != 1 || vs[0].Metric != "improvement_pct" {
		t.Fatalf("want one improvement_pct violation, got %v", vs)
	}
	// Within the ±0.5-point default it must pass.
	cur.Scenarios[0].ImprovementPct = base.Scenarios[0].ImprovementPct - 0.3
	if vs := Gate(base, cur, Tolerance{}); len(vs) != 0 {
		t.Fatalf("0.3-point wobble should pass: %v", vs)
	}
}

func TestGateNewBoundViolationsFail(t *testing.T) {
	base := baselineBench()
	cur := baselineBench()
	cur.Scenarios[0].BoundViolations = base.Scenarios[0].BoundViolations + 3

	vs := Gate(base, cur, Tolerance{})
	if len(vs) != 1 || vs[0].Metric != "bound_violations" {
		t.Fatalf("want one bound_violations violation, got %v", vs)
	}
}

// TestGateFlightRecorderLowerBounds: losing the frontier trajectory or
// recorded sessions is a regression even though every other metric only
// improves when observability silently turns off.
func TestGateFlightRecorderLowerBounds(t *testing.T) {
	base := baselineBench()
	cur := baselineBench()
	cur.Scenarios[1].FrontierPoints = 0

	vs := Gate(base, cur, Tolerance{})
	if len(vs) != 1 || vs[0].Metric != "frontier_points" {
		t.Fatalf("lost frontier not flagged: %v", vs)
	}

	cur = baselineBench()
	cur.Scenarios[1].RecordedSessions = 1
	vs = Gate(base, cur, Tolerance{})
	if len(vs) != 1 || vs[0].Metric != "recorded_sessions" {
		t.Fatalf("lost session not flagged: %v", vs)
	}

	// A longer frontier or more sessions is not a violation.
	cur = baselineBench()
	cur.Scenarios[1].FrontierPoints = 9
	cur.Scenarios[1].RecordedSessions = 3
	if vs := Gate(base, cur, Tolerance{}); len(vs) != 0 {
		t.Fatalf("growth flagged: %v", vs)
	}
}

// TestGateGroundTruthLowerBounds: the replay gates are lower bounds on
// measured reality — a recommendation that executes materially slower
// than the committed record, or scans more rows than the unindexed
// baseline, fails even when every estimate-based metric looks fine.
func TestGateGroundTruthLowerBounds(t *testing.T) {
	base := baselineBench()
	cur := baselineBench()
	cur.Scenarios[0].MeasuredSpeedup = 0.85 // below 0.75 × the 1.25 record

	vs := Gate(base, cur, Tolerance{})
	if len(vs) != 1 || vs[0].Metric != "measured_speedup" {
		t.Fatalf("sub-1 measured speedup not flagged: %v", vs)
	}

	cur = baselineBench()
	cur.Scenarios[0].ReplayRowsRecommended = cur.Scenarios[0].ReplayRowsBaseline + 1
	vs = Gate(base, cur, Tolerance{})
	if len(vs) != 1 || vs[0].Metric != "replay_rows" {
		t.Fatalf("rows-scanned regression not flagged: %v", vs)
	}

	// Fewer rows or a larger speedup is improvement, not violation; and a
	// baseline without replay data (pre-v4 regeneration) gates nothing.
	cur = baselineBench()
	cur.Scenarios[0].MeasuredSpeedup = 2.0
	cur.Scenarios[0].ReplayRowsRecommended = 50000
	if vs := Gate(base, cur, Tolerance{}); len(vs) != 0 {
		t.Fatalf("improvement flagged: %v", vs)
	}
	base.Scenarios[0].MeasuredSpeedup = 0
	base.Scenarios[0].ReplayRowsBaseline = 0
	cur.Scenarios[0].MeasuredSpeedup = 0.5
	cur.Scenarios[0].ReplayRowsRecommended = 1 << 40
	if vs := Gate(base, cur, Tolerance{}); len(vs) != 0 {
		t.Fatalf("gates fired without baseline replay data: %v", vs)
	}
}

// TestGateWorkloadIntrospectionLowerBounds: the signature count and the
// top-k weight coverage are lower bounds — losing tracked signatures or
// sketch coverage is a regression of the introspection surface even
// though tuning results stay identical.
func TestGateWorkloadIntrospectionLowerBounds(t *testing.T) {
	base := baselineBench()
	cur := baselineBench()
	cur.Scenarios[1].WorkloadSignatures = base.Scenarios[1].WorkloadSignatures - 2

	vs := Gate(base, cur, Tolerance{})
	if len(vs) != 1 || vs[0].Metric != "workload_signatures" {
		t.Fatalf("lost signatures not flagged: %v", vs)
	}

	cur = baselineBench()
	cur.Scenarios[1].TopKWeightShare = 0.80 // below 0.95 × the 1.0 record
	vs = Gate(base, cur, Tolerance{})
	if len(vs) != 1 || vs[0].Metric != "topk_weight_share" {
		t.Fatalf("lost sketch coverage not flagged: %v", vs)
	}

	// Within the 5% decay slack it must pass, as must a run tracking more
	// signatures than the baseline.
	cur = baselineBench()
	cur.Scenarios[1].TopKWeightShare = 0.96
	cur.Scenarios[1].WorkloadSignatures = base.Scenarios[1].WorkloadSignatures + 3
	if vs := Gate(base, cur, Tolerance{}); len(vs) != 0 {
		t.Fatalf("within-slack run flagged: %v", vs)
	}
	// A pre-v5 baseline without introspection counters gates nothing.
	base.Scenarios[1].WorkloadSignatures = 0
	base.Scenarios[1].TopKWeightShare = 0
	cur.Scenarios[1].WorkloadSignatures = 0
	cur.Scenarios[1].TopKWeightShare = 0
	if vs := Gate(base, cur, Tolerance{}); len(vs) != 0 {
		t.Fatalf("gates fired without baseline introspection data: %v", vs)
	}
}

func TestGateSelfMonitoringLowerBounds(t *testing.T) {
	for _, tc := range []struct {
		metric string
		zero   func(sr *ScenarioResult)
	}{
		{"history_series", func(sr *ScenarioResult) { sr.HistorySeries = 0 }},
		{"alerts_fired", func(sr *ScenarioResult) { sr.AlertsFired = 0 }},
		{"alert_transitions", func(sr *ScenarioResult) { sr.AlertTransitions = 0 }},
	} {
		base := baselineBench()
		cur := baselineBench()
		tc.zero(&cur.Scenarios[1])
		vs := Gate(base, cur, Tolerance{})
		if len(vs) != 1 || vs[0].Metric != tc.metric {
			t.Fatalf("zeroed %s not flagged: %v", tc.metric, vs)
		}
	}

	// More series / transitions than the record is fine, and a pre-v7
	// baseline without the counters gates nothing.
	base := baselineBench()
	cur := baselineBench()
	cur.Scenarios[1].HistorySeries = base.Scenarios[1].HistorySeries + 5
	cur.Scenarios[1].AlertTransitions = 3
	if vs := Gate(base, cur, Tolerance{}); len(vs) != 0 {
		t.Fatalf("healthier run flagged: %v", vs)
	}
	base.Scenarios[1].HistorySeries = 0
	base.Scenarios[1].AlertsFired = 0
	base.Scenarios[1].AlertTransitions = 0
	cur.Scenarios[1].HistorySeries = 0
	cur.Scenarios[1].AlertsFired = 0
	cur.Scenarios[1].AlertTransitions = 0
	if vs := Gate(base, cur, Tolerance{}); len(vs) != 0 {
		t.Fatalf("gates fired without baseline monitor data: %v", vs)
	}
}

func TestGateMissingScenario(t *testing.T) {
	base := baselineBench()
	cur := baselineBench()
	cur.Scenarios = cur.Scenarios[:1] // drop online-drift

	vs := Gate(base, cur, Tolerance{})
	if len(vs) != 1 || vs[0].Scenario != "online-drift" || vs[0].Metric != "scenario" {
		t.Fatalf("missing scenario not flagged: %v", vs)
	}
	// A scenario that is new in the current run is not a violation: it
	// joins the baseline when the baseline is next regenerated.
	cur2 := baselineBench()
	cur2.Scenarios = append(cur2.Scenarios, ScenarioResult{Name: "brand-new"})
	if vs := Gate(base, cur2, Tolerance{}); len(vs) != 0 {
		t.Fatalf("new scenario flagged: %v", vs)
	}
}

func TestGateSchemaVersionMismatch(t *testing.T) {
	base := baselineBench()
	cur := baselineBench()
	cur.SchemaVersion = base.SchemaVersion + 1

	vs := Gate(base, cur, Tolerance{})
	if len(vs) != 1 || vs[0].Metric != "schema_version" {
		t.Fatalf("schema mismatch not flagged: %v", vs)
	}
}

func TestGateCustomToleranceLoosens(t *testing.T) {
	base := baselineBench()
	cur := baselineBench()
	cur.Scenarios[0].WallSeconds = base.Scenarios[0].WallSeconds * 3

	// A CI override (-wall-tolerance 4) must absorb the 3× slowdown...
	if vs := Gate(base, cur, Tolerance{WallFactor: 4}); len(vs) != 0 {
		t.Fatalf("loosened gate still failed: %v", vs)
	}
	// ...while zero-valued fields keep their defaults.
	cur.Scenarios[0].OptimizerCalls *= 2
	vs := Gate(base, cur, Tolerance{WallFactor: 4})
	if len(vs) != 1 || vs[0].Metric != "optimizer_calls" {
		t.Fatalf("defaults not preserved under partial override: %v", vs)
	}
}

func TestBenchFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_tuner.json")
	base := baselineBench()
	base.GeneratedAt = "2026-08-06T00:00:00Z"
	if err := WriteFile(path, base); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != SchemaVersion || len(got.Scenarios) != 2 ||
		got.Scenarios[0].Name != "batch-tpch" || got.Scenarios[0].OptimizerCalls != 150 {
		t.Fatalf("round trip mangled the record: %+v", got)
	}
	if vs := Gate(base, got, Tolerance{}); len(vs) != 0 {
		t.Fatalf("record fails gate against itself after round trip: %v", vs)
	}
}

func TestReadFileRejectsUnversioned(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "old.json")
	if err := WriteFile(path, &Bench{Suite: "smoke"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), "schema_version") {
		t.Fatalf("unversioned record accepted: %v", err)
	}
}
